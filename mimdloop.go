// Package mimdloop parallelizes non-vectorizable loops for asynchronous
// MIMD machines, reproducing Kim & Nicolau, "Parallelizing Non-Vectorizable
// Loops for MIMD Machines" (ICPP 1990 / UC Irvine TR 90-01).
//
// A loop is modeled as a data dependence graph whose edges carry iteration
// distances. The library:
//
//   - classifies nodes into Flow-in / Cyclic / Flow-out subsets (the Cyclic
//     subset alone determines the achievable steady-state rate);
//   - greedily schedules the conceptually infinite unwinding of the Cyclic
//     subset onto processors under an explicit communication-cost model,
//     detecting the repeating pattern the paper's Theorem 1 guarantees (with
//     a modulo-scheduling fallback when the transient is chaotic);
//   - schedules the Flow-in and Flow-out fringes on extra processors so they
//     never delay the cyclic core;
//   - lowers schedules to per-processor COMPUTE/SEND/RECV programs and
//     runs them behind a pluggable execution Backend: a deterministic
//     simulated multiprocessor with communication fluctuation (the
//     paper's Table 1 experiment) and real goroutine-per-processor
//     hardware with channel messaging, both driving the same repeated-
//     trial harness (SimBackend, GoroutineBackend);
//   - provides the DOACROSS iteration-pipelining baseline [Cytron86], a
//     miniature loop-language front end with dependence analysis and
//     if-conversion [AlKe83], and the paper's example workloads;
//   - wraps the whole flow in a Pipeline whose content-addressed plan store
//     makes repeat scheduling a map lookup, with concurrent
//     machine-parameter sweeps (Pipeline.Sweep), sweep-driven (p, k)
//     auto-tuning under pluggable objectives (AutoTune) and pluggable plan
//     scoring (Evaluator: the static scheduled rate, or measured Sp over
//     repeated trials on an execution backend — simulated or real — with
//     spread-aware mean/worst/p95 ranking; NewMeasuredEvaluator), batch
//     scheduling
//     with per-item error isolation (Pipeline.Batch), cache warm-up from a
//     schedule corpus (Pipeline.Warmup), and an HTTP serving mode
//     (`loopsched serve`, NewPipelineServer: schedule, batch, tune, stored
//     plans);
//   - persists plans behind a pluggable PlanStore: the default in-memory
//     sharded LRU (NewMemStore), a durable content-addressed DiskStore
//     (NewDiskStore), and a write-through TieredStore (NewTieredStore)
//     that lets a restarted process serve its predecessor's plans — and
//     AutoTune winners — without rescheduling (`loopsched serve -store`).
//
// Quick start:
//
//	c := mimdloop.MustCompileLoop(`
//	    loop f(N = 100) {
//	        A[i] = A[i-1] + E[i-1]
//	        B[i] = A[i]
//	        C[i] = B[i]
//	        D[i] = D[i-1] + C[i-1]
//	        E[i] = D[i]
//	    }`)
//	ls, _ := mimdloop.ScheduleLoop(c.Graph, mimdloop.Options{Processors: 2, CommCost: 2}, 100)
//	fmt.Printf("steady state: %.1f cycles/iteration\n", ls.RatePerIteration())
package mimdloop

import (
	"mimdloop/internal/calib"
	"mimdloop/internal/classify"
	"mimdloop/internal/core"
	"mimdloop/internal/doacross"
	"mimdloop/internal/exec"
	"mimdloop/internal/graph"
	"mimdloop/internal/loopir"
	"mimdloop/internal/machine"
	"mimdloop/internal/mimdrt"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/plan"
	"mimdloop/internal/program"
	"mimdloop/internal/store"
	"mimdloop/internal/textfmt"
	"mimdloop/internal/workload"
)

// Graph construction and analysis.
type (
	// Graph is a loop's data dependence graph.
	Graph = graph.Graph
	// GraphBuilder assembles a Graph node by node.
	GraphBuilder = graph.Builder
	// Node is one unit of computation with an integer latency.
	Node = graph.Node
	// Edge is a dependence link with an iteration distance.
	Edge = graph.Edge
	// InstanceID names one dynamic execution of a node.
	InstanceID = graph.InstanceID
	// Classification partitions nodes into Flow-in / Cyclic / Flow-out.
	Classification = classify.Result
	// NodeClass is one of FlowIn, Cyclic, FlowOut.
	NodeClass = classify.Class
)

// Classification labels.
const (
	FlowIn  = classify.FlowIn
	Cyclic  = classify.Cyclic
	FlowOut = classify.FlowOut
)

// Scheduling.
type (
	// Options configures the pattern scheduler.
	Options = core.Options
	// LoopSchedule is the composed result of the full pipeline.
	LoopSchedule = core.LoopSchedule
	// Pattern is a verified steady-state period.
	Pattern = core.Pattern
	// CyclicResult is the Cyclic-sched outcome on one connected graph.
	CyclicResult = core.CyclicResult
	// MultiResult holds per-component Cyclic-sched outcomes.
	MultiResult = core.MultiResult
	// Schedule is a set of timed placements on processors.
	Schedule = plan.Schedule
	// Placement assigns one node instance to a processor and start cycle.
	Placement = plan.Placement
	// Timing is the communication-cost model.
	Timing = plan.Timing
)

// Pipeline: cached scheduling, concurrent parameter sweeps, serving.
type (
	// Pipeline is a concurrency-safe scheduling front end whose
	// content-addressed plan store makes repeat scheduling a lookup.
	Pipeline = pipeline.Pipeline
	// PipelineConfig tunes store capacity (and, via Store, plugs in a
	// custom storage layer such as a TieredStore).
	PipelineConfig = pipeline.Config
	// PipelineStats snapshots request counters plus the storage layer's
	// nested per-tier snapshot.
	PipelineStats = pipeline.Stats
	// Plan is one stored artifact: a LoopSchedule plus its lowered
	// per-processor programs. Plans are shared and must not be mutated.
	Plan = pipeline.Plan
	// SweepPoint is one (processors, comm cost) grid cell.
	SweepPoint = pipeline.Point
	// SweepOptions configures a concurrent parameter sweep.
	SweepOptions = pipeline.SweepOptions
	// SweepResult is the outcome at one grid point.
	SweepResult = pipeline.Result
	// PipelineServer serves schedules over HTTP (see NewPipelineServer).
	PipelineServer = pipeline.Server
	// PipelineServerConfig tunes the serving layer (compute-slot bound);
	// the zero value is the GOMAXPROCS-derived default.
	PipelineServerConfig = pipeline.ServerConfig
)

// Plan storage: the pluggable persistence layer behind a Pipeline.
type (
	// PlanStore is the storage interface: Get/Put/Delete keyed plans,
	// size accounting, Flush, Close, Stats.
	PlanStore = pipeline.PlanStore
	// PlanLister is the optional enumeration interface behind
	// GET /v1/plans and `loopsched store ls`; all built-in stores
	// implement it.
	PlanLister = pipeline.PlanLister
	// RecordOpener is the optional raw-record read interface behind the
	// streamed GET /v1/plans/{fp}?key= path; DiskStore and TieredStore
	// implement it.
	RecordOpener = pipeline.RecordOpener
	// RecordSink is the streamed-validation write interface peer fills
	// use (PeerStoreConfig.RecordSink); DiskStore implements it.
	RecordSink = store.RecordSink
	// PlanInfo is one stored plan's summary row.
	PlanInfo = pipeline.PlanInfo
	// PlanStoreStats is one store's counter snapshot (nested per tier
	// for a TieredStore).
	PlanStoreStats = pipeline.StoreStats
	// MemStore is the in-memory sharded LRU store (the default).
	MemStore = pipeline.MemStore
	// MemStoreConfig bounds a MemStore by entries and bytes.
	MemStoreConfig = pipeline.MemConfig
	// DiskStore persists plans as content-addressed JSON records under a
	// directory: atomic writes, corrupt-record quarantine, size-bounded
	// GC.
	DiskStore = store.DiskStore
	// DiskStoreConfig locates and bounds a DiskStore.
	DiskStoreConfig = store.DiskConfig
	// TieredStore write-throughs a fast upper tier over a durable lower
	// tier, promoting on lower-tier hits.
	TieredStore = store.TieredStore
	// PeerStore is the cluster tier: a consistent-hash ring over the
	// configured peers, filling local misses from the owning peer's
	// durable records and forwarding cold schedule requests to the
	// owner (cluster-wide singleflight). Slot it between the memory and
	// disk tiers and pass it as PipelineServerConfig.Cluster.
	PeerStore = store.PeerStore
	// PeerStoreConfig names this node, the full peer membership, and
	// the ring/transport/fault-handling knobs.
	PeerStoreConfig = store.PeerConfig
	// ClusterStats is the "cluster" block of GET /v1/stats.
	ClusterStats = pipeline.ClusterStats
	// ScheduleForwarder is the cluster hook a PipelineServer consults on
	// every schedule request; PeerStore is the built-in implementation.
	ScheduleForwarder = pipeline.ScheduleForwarder
)

// NewPeerStore builds the cluster tier for one node of a loopsched
// cluster:
//
//	peer, _ := mimdloop.NewPeerStore(mimdloop.PeerStoreConfig{
//	    Self:  "10.0.0.1:8080",
//	    Peers: []string{"10.0.0.1:8080", "10.0.0.2:8080"},
//	})
//	p := mimdloop.NewPipeline(mimdloop.PipelineConfig{
//	    Store: mimdloop.NewTieredStore(mimdloop.NewMemStore(mimdloop.MemStoreConfig{}), peer),
//	})
//	h := mimdloop.NewPipelineServerWith(p, mimdloop.PipelineServerConfig{Cluster: peer})
func NewPeerStore(cfg PeerStoreConfig) (*PeerStore, error) { return store.NewPeer(cfg) }

// NewMemStore returns an empty in-memory plan store.
func NewMemStore(cfg MemStoreConfig) *MemStore { return pipeline.NewMemStore(cfg) }

// NewDiskStore opens (creating if needed) a durable plan store over
// cfg.Dir, indexing any plan records already present so a new process
// serves its predecessor's plans.
func NewDiskStore(cfg DiskStoreConfig) (*DiskStore, error) { return store.Open(cfg) }

// NewTieredStore composes upper (fast, typically a MemStore) over lower
// (durable, typically a DiskStore). Use it as PipelineConfig.Store for
// restart-durable serving:
//
//	disk, _ := mimdloop.NewDiskStore(mimdloop.DiskStoreConfig{Dir: "plans"})
//	p := mimdloop.NewPipeline(mimdloop.PipelineConfig{
//	    Store: mimdloop.NewTieredStore(mimdloop.NewMemStore(mimdloop.MemStoreConfig{}), disk),
//	})
//	defer p.Close()
func NewTieredStore(upper, lower PlanStore) *TieredStore { return store.NewTiered(upper, lower) }

// PlanKey derives the canonical store key of a plan from its
// ingredients: graph fingerprint, scheduling options, iteration count.
func PlanKey(fingerprint string, opts Options, iterations int) string {
	return pipeline.PlanKey(fingerprint, opts, iterations)
}

// Plan evaluation: the pluggable scoring layer behind Sweep and AutoTune.
type (
	// Evaluator scores a plan's goodness; Sweep, AutoTune and the tune
	// endpoint rank grid points through it.
	Evaluator = pipeline.Evaluator
	// EvalScore is one evaluator's verdict (rate, processors, optional
	// measured trial spread).
	EvalScore = pipeline.Score
	// MeasuredStats is the Sp/makespan spread of a measured evaluation —
	// tagged with the backend that produced it — as persisted in
	// version-3 plan records and tune replies.
	MeasuredStats = pipeline.MeasuredStats
	// StaticEvaluator scores by the compile-time scheduled rate (the
	// default everywhere).
	StaticEvaluator = pipeline.StaticEvaluator
	// MeasuredEvaluator scores by executing plans on an ExecBackend for
	// repeated trials: the simulated MIMD machine under seeded
	// communication fluctuation (default), or the real goroutine runtime
	// timed on the wall clock.
	MeasuredEvaluator = pipeline.MeasuredEvaluator
	// EvalObjective selects the distribution statistic a measured
	// evaluation ranks by: EvalMean, EvalWorst or EvalP95.
	EvalObjective = pipeline.EvalObjective
	// EvalStats counts evaluator activity in PipelineStats.
	EvalStats = pipeline.EvalStats
	// TuneRequest is the POST /v1/tune envelope; its Eval block selects
	// the evaluator.
	TuneRequest = pipeline.TuneRequest
	// EvalRequest is the eval block of a TuneRequest (mode, backend,
	// objective, trials, fluctuation).
	EvalRequest = pipeline.EvalRequest
	// FluctModel is the machine's seeded, per-message-deterministic
	// communication-fluctuation model.
	FluctModel = machine.FluctModel
	// TrialStats aggregates repeated simulated runs (see SimulateTrials).
	TrialStats = machine.TrialStats
)

// Spread-aware evaluation objectives.
const (
	// EvalMean ranks plans by their mean measured makespan (the default).
	EvalMean = pipeline.EvalMean
	// EvalWorst ranks by the worst trial.
	EvalWorst = pipeline.EvalWorst
	// EvalP95 ranks by the nearest-rank 95th-percentile trial.
	EvalP95 = pipeline.EvalP95
)

// ParseEvalObjective maps "mean", "worst" or "p95" to its EvalObjective.
func ParseEvalObjective(s string) (EvalObjective, error) { return pipeline.ParseEvalObjective(s) }

// Execution backends: the pluggable layer measured evaluation runs on.
type (
	// ExecBackend runs lowered programs repeatedly and reports the trial
	// spread; plug one into MeasuredEvaluator.Backend.
	ExecBackend = exec.Backend
	// ExecTrialConfig shapes one ExecBackend.RunTrials call.
	ExecTrialConfig = exec.TrialConfig
	// ExecTrialStats is a backend's raw trial distribution (makespans in
	// backend-native units plus a sequential baseline).
	ExecTrialStats = exec.TrialStats
)

// SimBackend returns the deterministic simulated-machine backend
// ("sim"): seeded fluctuation trials on internal/machine, cheap and
// exactly replayable. It is the default when MeasuredEvaluator.Backend
// is nil.
func SimBackend() ExecBackend { return exec.Sim{} }

// GoroutineBackend returns the real-execution backend ("gort"): each
// trial runs the programs on goroutine-per-processor hardware with
// channel messaging, timed on the wall clock and value-checked against
// the sequential interpretation. Honest but noisy, and it burns real
// CPU per trial:
//
//	res, _ := mimdloop.AutoTune(g, 100, mimdloop.TuneOptions{
//	    Evaluator: &mimdloop.MeasuredEvaluator{
//	        Trials:    3,
//	        Backend:   mimdloop.GoroutineBackend(),
//	        Objective: mimdloop.EvalWorst,
//	    },
//	})
func GoroutineBackend() ExecBackend { return exec.Goroutine{} }

// ExecBackendFor resolves a backend wire name: "" or "sim" for the
// simulated machine, "gort" for the goroutine runtime, "csim" for the
// calibrated simulator (unfitted until given a CostModel — see
// CalibratedBackend).
func ExecBackendFor(name string) (ExecBackend, error) { return exec.ForName(name) }

// Cost-model calibration: fitting the simulated machine's accounting to
// measured goroutine-runtime makespans so the "csim" backend ranks
// plans in predicted wall-clock nanoseconds at simulator cost.
type (
	// CostModel is the fitted linear map from sim accounting (cycles,
	// messages, iterations) to nanoseconds; the zero value means "no
	// profile" and leaves csim a transparent raw-sim passthrough.
	CostModel = exec.CostModel
	// CalibProfile is one fitted calibration: the model plus its fit
	// residuals and provenance, persisted as a versioned JSON record.
	CalibProfile = calib.Profile
	// CalibConfig shapes one calibration pass (probe loops, trials,
	// grid); the zero value takes defaults sized well under a second.
	CalibConfig = calib.Config
	// CalibManager holds a serving process's live profile: background
	// refresh, persistence beside the plan store, and the
	// PipelineServerConfig.Calibration seam behind `eval.backend=csim`.
	CalibManager = calib.Manager
)

// CalibratedBackend returns the calibrated-simulator backend ("csim"):
// deterministic sim trials rescaled through a fitted CostModel, so the
// ranking approximates gort's at sim cost. A zero model degrades to the
// raw sim backend byte-identically.
func CalibratedBackend(m CostModel) ExecBackend { return exec.Calibrated{Model: m} }

// Calibrate runs one calibration pass: a seeded probe suite through
// both backends, least-squares fitted. See `loopsched calibrate`.
func Calibrate(cfg CalibConfig) (*CalibProfile, error) { return calib.Calibrate(cfg) }

// QuickCalibConfig is the CI-sized calibration pass (-quick).
func QuickCalibConfig() CalibConfig { return calib.Quick() }

// NewCalibManager returns a CalibManager persisting to path ("" =
// memory only); CalibProfilePath names the canonical location inside a
// plan-store directory.
func NewCalibManager(path string) *CalibManager { return calib.NewManager(path) }

// CalibProfilePath is the canonical profile path inside a plan-store
// directory (`loopsched serve -store DIR`).
func CalibProfilePath(dir string) string { return calib.ProfilePath(dir) }

// LoadCalibProfile reads a persisted profile record; a file that fails
// to decode is quarantined beside the store's corrupt plan records.
func LoadCalibProfile(path string) (*CalibProfile, error) { return calib.LoadProfile(path) }

// SaveCalibProfile writes the versioned profile record atomically.
func SaveCalibProfile(path string, p *CalibProfile) error { return calib.SaveProfile(path, p) }

// NewMeasuredEvaluator returns an Evaluator running `trials` seeded
// simulations per plan with fluctuation mm on the sim backend, for
// TuneOptions.Evaluator or SweepOptions.Evaluator:
//
//	res, _ := mimdloop.AutoTune(g, 100, mimdloop.TuneOptions{
//	    Evaluator: mimdloop.NewMeasuredEvaluator(5, 3, 1),
//	})
func NewMeasuredEvaluator(trials, fluct int, seed int64) *MeasuredEvaluator {
	return pipeline.NewMeasuredEvaluator(trials, fluct, seed)
}

// SimulateTrials executes programs on the simulated machine `trials`
// times under deterministically derived per-trial seeds and aggregates
// the makespan/utilization spread.
func SimulateTrials(g *Graph, progs []Program, cfg MachineConfig, trials int) (*TrialStats, error) {
	return machine.RunTrials(g, progs, cfg, trials)
}

// Auto-tuning, batching and warm-up on top of the pipeline.
type (
	// TuneObjective selects what AutoTune optimizes: ObjectiveMinRate,
	// ObjectiveMinProcs or ObjectiveEfficiency.
	TuneObjective = pipeline.Objective
	// TuneOptions configures an AutoTune grid search.
	TuneOptions = pipeline.TuneOptions
	// TuneResult is the winning point plus the full evaluated grid.
	TuneResult = pipeline.TuneResult
	// BatchItem is one loop of a Pipeline.Batch call.
	BatchItem = pipeline.BatchItem
	// BatchResult is one item's isolated outcome.
	BatchResult = pipeline.BatchResult
	// BatchOptions sizes the batch worker pool.
	BatchOptions = pipeline.BatchOptions
	// ScheduleRequest is the HTTP schedule envelope, also one entry of a
	// warm-up corpus (see ParseCorpus, Pipeline.Warmup).
	ScheduleRequest = pipeline.ScheduleRequest
	// WarmupStats summarizes a cache warm-up pass.
	WarmupStats = pipeline.WarmupStats
)

// AutoTune objectives.
const (
	// ObjectiveMinRate picks the fastest steady state.
	ObjectiveMinRate = pipeline.ObjectiveMinRate
	// ObjectiveMinProcs picks the fewest processors within Epsilon of the
	// best rate.
	ObjectiveMinProcs = pipeline.ObjectiveMinProcs
	// ObjectiveEfficiency maximizes speedup per processor.
	ObjectiveEfficiency = pipeline.ObjectiveEfficiency
)

// AutoTune explores a processors × comm-cost grid on a fresh pipeline and
// returns the best (p, k) plan under the configured objective. For
// repeated tuning (or to share the plan cache with serving traffic), keep
// a Pipeline and call its AutoTune method instead.
func AutoTune(g *Graph, n int, opt TuneOptions) (*TuneResult, error) {
	return pipeline.New(pipeline.Config{}).AutoTune(g, n, opt)
}

// ParseObjective maps "min_rate", "min_procs" or "efficiency" to its
// TuneObjective.
func ParseObjective(s string) (TuneObjective, error) { return pipeline.ParseObjective(s) }

// ParseCorpus decodes a schedule corpus file: a JSON array whose elements
// are loop sources or schedule-request objects, for Pipeline.Warmup.
func ParseCorpus(data []byte) ([]ScheduleRequest, error) { return pipeline.ParseCorpus(data) }

// NewPipeline returns an empty pipeline with its own plan cache.
func NewPipeline(cfg PipelineConfig) *Pipeline { return pipeline.New(cfg) }

// NewPipelineServer wraps a pipeline in an http.Handler exposing
// POST /v1/schedule, POST /v1/batch, POST /v1/tune, GET /v1/stats and
// GET /healthz (documented in docs/API.md).
func NewPipelineServer(p *Pipeline) *PipelineServer { return pipeline.NewServer(p) }

// NewPipelineServerWith is NewPipelineServer with an explicit serving
// configuration (`loopsched serve -slots`).
func NewPipelineServerWith(p *Pipeline, cfg PipelineServerConfig) *PipelineServer {
	return pipeline.NewServerWith(p, cfg)
}

// SweepGrid returns the cross product procs x commCosts in row-major
// order, for Pipeline.Sweep.
func SweepGrid(procs, commCosts []int) []SweepPoint { return pipeline.Grid(procs, commCosts) }

// Baseline.
type (
	// DoacrossOptions configures the iteration-pipelining baseline.
	DoacrossOptions = doacross.Options
	// DoacrossResult is the baseline's schedule and chosen parameters.
	DoacrossResult = doacross.Result
)

// Execution.
type (
	// Program is one processor's COMPUTE/SEND/RECV stream.
	Program = program.Program
	// Instr is one program instruction.
	Instr = program.Instr
	// MachineConfig controls the simulated multiprocessor.
	MachineConfig = machine.Config
	// MachineStats reports a simulated run.
	MachineStats = machine.Stats
	// Semantics gives nodes meaning for real execution.
	Semantics = mimdrt.Semantics
	// MixSemantics is a synthetic, misrouting-sensitive Semantics.
	MixSemantics = mimdrt.MixSemantics
)

// Front end.
type (
	// Loop is a parsed loop-language program.
	Loop = loopir.Loop
	// CompiledLoop couples a Loop with its dependence graph and runnable
	// semantics.
	CompiledLoop = loopir.Compiled
)

// ErrNoPattern reports that no steady state was found within budget.
var ErrNoPattern = core.ErrNoPattern

// NewGraphBuilder returns an empty dependence-graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// NewGraph builds a graph from explicit node and edge lists.
func NewGraph(nodes []Node, edges []Edge) (*Graph, error) { return graph.New(nodes, edges) }

// Classify partitions a graph's nodes (paper Figure 2).
func Classify(g *Graph) *Classification { return classify.Partition(g) }

// ScheduleLoop runs the complete pipeline of paper Figure 6 for n
// iterations: classification, Cyclic-sched per connected component,
// Flow-in-sched, Flow-out-sched, composition.
func ScheduleLoop(g *Graph, opts Options, n int) (*LoopSchedule, error) {
	return core.ScheduleLoop(g, opts, n)
}

// CyclicSched schedules one connected graph's infinite unwinding until a
// pattern is verified (paper Figure 4).
func CyclicSched(g *Graph, opts Options) (*CyclicResult, error) {
	return core.CyclicSched(g, opts)
}

// CyclicSchedAll schedules each weakly-connected component independently.
func CyclicSchedAll(g *Graph, opts Options) (*MultiResult, error) {
	return core.CyclicSchedAll(g, opts)
}

// GreedySchedule schedules exactly n iterations without pattern machinery.
func GreedySchedule(g *Graph, opts Options, n int) (*Schedule, error) {
	return core.GreedyN(g, opts, n)
}

// UnwoundSchedule is the result of the normalize-then-schedule path.
type UnwoundSchedule = core.UnwoundSchedule

// ScheduleUnwound normalizes dependence distances to <= 1 by unwinding
// [MuSi87], schedules the unwound body, and maps placements back to the
// original loop's iteration space.
func ScheduleUnwound(g *Graph, opts Options, n int) (*UnwoundSchedule, error) {
	return core.ScheduleUnwound(g, opts, n)
}

// Doacross builds the best DOACROSS schedule for n iterations [Cytron86].
func Doacross(g *Graph, opts DoacrossOptions, n int) (*DoacrossResult, error) {
	return doacross.Schedule(g, opts, n)
}

// SequentialSchedule runs everything on one processor: the baseline "s" of
// the percentage-parallelism metric.
func SequentialSchedule(g *Graph, timing Timing, n int) *Schedule {
	return plan.Sequential(g, timing, n)
}

// BuildPrograms lowers a schedule to per-processor instruction streams.
func BuildPrograms(s *Schedule) ([]Program, error) { return program.Build(s) }

// Simulate executes programs on the deterministic simulated MIMD machine.
func Simulate(g *Graph, progs []Program, cfg MachineConfig) (*MachineStats, error) {
	return machine.Run(g, progs, cfg)
}

// Execute runs programs concurrently — one goroutine per processor,
// channel messaging — and returns every computed value.
func Execute(g *Graph, progs []Program, sem Semantics) (map[InstanceID]float64, error) {
	return mimdrt.Run(g, progs, sem)
}

// ExecuteSequential interprets the graph in body order: ground truth for
// Execute.
func ExecuteSequential(g *Graph, sem Semantics, n int) map[InstanceID]float64 {
	return mimdrt.Sequential(g, sem, n)
}

// ParseLoop parses loop-language source.
func ParseLoop(src string) (*Loop, error) { return loopir.Parse(src) }

// CompileLoop parses and analyzes loop-language source into a dependence
// graph with runnable semantics (if-converting guarded statements).
func CompileLoop(src string) (*CompiledLoop, error) {
	l, err := loopir.Parse(src)
	if err != nil {
		return nil, err
	}
	return loopir.Compile(l)
}

// MustCompileLoop is CompileLoop for known-good sources.
func MustCompileLoop(src string) *CompiledLoop { return loopir.MustCompile(src) }

// Gantt renders a schedule as the step-by-processor tables of the paper's
// figures. maxCycles <= 0 renders the whole schedule.
func Gantt(s *Schedule, maxCycles int) string { return textfmt.Gantt(s, maxCycles) }

// Pseudocode renders a scheduled loop as per-processor communicating
// subloops in the style of the paper's Figures 7(e) and 10.
func Pseudocode(ls *LoopSchedule) (string, error) {
	pat := ls.Pattern()
	if pat == nil {
		return "", ErrNoPattern
	}
	var prologue []Placement
	if !pat.Forced && ls.Multi != nil && len(ls.Multi.Components) == 1 {
		for _, pl := range ls.Multi.Components[0].Result.Greedy.Placements {
			if pl.Start < pat.Start {
				prologue = append(prologue, pl)
			}
		}
	}
	return program.Pseudocode(program.CodegenInput{
		Graph:     componentGraph(ls),
		Prologue:  prologue,
		Pattern:   pat.Placements,
		IterShift: pat.IterShift,
	})
}

func componentGraph(ls *LoopSchedule) *Graph {
	if ls.Multi != nil && len(ls.Multi.Components) == 1 {
		return ls.Multi.Components[0].Result.Graph
	}
	return ls.Graph
}

// Example workloads from the paper.

// Figure7Loop returns the exact loop of paper Figure 7(a).
func Figure7Loop() *CompiledLoop { return workload.Figure7() }

// Livermore18Loop returns the Figure 11 workload (LFK 18 reconstruction).
func Livermore18Loop() *CompiledLoop { return workload.Livermore18() }

// EllipticLoop returns the Figure 12 workload (fifth-order elliptic wave
// filter reconstruction).
func EllipticLoop() *CompiledLoop { return workload.Elliptic() }

// RandomCyclicLoop returns one of the Section 4 random workloads: the
// Cyclic subset of a 40-node, 20+20-dependence random loop.
func RandomCyclicLoop(seed int64) (*Graph, error) {
	return workload.Random(workload.PaperSpec, seed)
}
