// Command loopsched parallelizes a loop written in the mini loop language:
// it prints the dependence graph, the Flow-in/Cyclic/Flow-out
// classification, the steady-state pattern, a Gantt view of the schedule,
// the generated communicating subloops, and a comparison against the
// DOACROSS baseline.
//
// It can also run as a scheduling service: `loopsched serve` starts an
// HTTP server that schedules POSTed loop source through a content-addressed
// plan cache, so repeated requests for the same loop are answered without
// rescheduling.
//
// Usage:
//
//	loopsched [-k cost] [-p procs] [-n iters] [-fold] [-gantt cycles] file.loop
//	loopsched -example fig7|lfk18|ewf
//	loopsched serve [-addr :8080] [-cache entries]
//
// Serving endpoints:
//
//	POST /v1/schedule   loop source (raw text or {"source": ..., "comm_cost": ...,
//	                    "processors": ..., "iterations": ..., "fold": ...});
//	                    replies with the JSON plan and a cache_hit flag
//	GET  /v1/stats      plan-cache hit/miss/eviction counters
//	GET  /healthz       liveness probe
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"mimdloop"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serve(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "loopsched:", err)
			os.Exit(1)
		}
		return
	}
	var (
		k        = flag.Int("k", 2, "communication cost estimate in cycles")
		procs    = flag.Int("p", 0, "processors for the Cyclic subset (0 = sufficient)")
		iters    = flag.Int("n", 100, "iterations to schedule and simulate")
		fold     = flag.Bool("fold", false, "fold non-Cyclic nodes into idle Cyclic slots (Section 3 heuristic)")
		gantt    = flag.Int("gantt", 24, "cycles of schedule to display (0 = none)")
		example  = flag.String("example", "", "run a built-in workload: fig7, lfk18, ewf")
		jsonPath = flag.String("json", "", "write the composed schedule (with its graph) to this file as JSON")
	)
	flag.Parse()
	if err := run(*k, *procs, *iters, *fold, *gantt, *example, *jsonPath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "loopsched:", err)
		os.Exit(1)
	}
}

// serve runs the HTTP scheduling service until the listener fails.
func serve(args []string) error {
	fs := flag.NewFlagSet("loopsched serve", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "listen address")
		cache = fs.Int("cache", 0, "maximum cached plans and compiled sources (0 = 1024)")
	)
	// The parse error is reported once, by our caller — but -h/-help must
	// still print the flag listing.
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stdout)
			fs.Usage()
			return nil
		}
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments, got %v", fs.Args())
	}
	handler, err := newServeHandler(*cache)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("loopsched: serving on %s (POST /v1/schedule, GET /v1/stats)\n", ln.Addr())
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// The write deadline covers handler compute plus the body write;
		// near-cap replies run to tens of MB, so leave slow links room.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	return srv.Serve(ln)
}

// newServeHandler builds the service handler around a fresh pipeline.
func newServeHandler(maxEntries int) (http.Handler, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("negative cache size %d", maxEntries)
	}
	pipe := mimdloop.NewPipeline(mimdloop.PipelineConfig{MaxEntries: maxEntries})
	return mimdloop.NewPipelineServer(pipe), nil
}

func run(k, procs, iters int, fold bool, gantt int, example, jsonPath string, args []string) error {
	var compiled *mimdloop.CompiledLoop
	switch {
	case example == "fig7":
		compiled = mimdloop.Figure7Loop()
	case example == "lfk18":
		compiled = mimdloop.Livermore18Loop()
	case example == "ewf":
		compiled = mimdloop.EllipticLoop()
	case example != "":
		return fmt.Errorf("unknown example %q (want fig7, lfk18 or ewf)", example)
	case len(args) != 1:
		return fmt.Errorf("usage: loopsched [flags] file.loop (or -example fig7)")
	default:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		compiled, err = mimdloop.CompileLoop(string(src))
		if err != nil {
			return err
		}
	}

	g := compiled.Graph
	fmt.Printf("loop %s: %d nodes, %d dependences, %d cycles/iteration sequential\n\n",
		compiled.Loop.Name, g.N(), len(g.Edges), g.TotalLatency())

	cls := mimdloop.Classify(g)
	fmt.Printf("classification: %d Flow-in, %d Cyclic, %d Flow-out\n",
		len(cls.FlowIn), len(cls.Cyclic), len(cls.FlowOut))
	if cls.IsDOALL() {
		fmt.Println("no Cyclic nodes: this is a DOALL loop")
	}
	fmt.Println()

	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{
		Processors:    procs,
		CommCost:      k,
		FoldNonCyclic: fold,
	}, iters)
	if err != nil {
		return err
	}
	if p := ls.Pattern(); p != nil {
		forced := ""
		if p.Forced {
			forced = " (modulo-scheduling fallback)"
		}
		fmt.Printf("pattern%s: %d cycles advancing %d iteration(s) = %.3g cycles/iteration\n",
			forced, p.Cycles(), p.IterShift, p.RatePerIteration())
	} else if ls.GreedyFallback {
		fmt.Println("no pattern: bounded greedy schedule")
	}
	fmt.Printf("processors: %d Cyclic + %d Flow-in + %d Flow-out (folded: %v)\n",
		ls.CyclicProcs, ls.FlowInProcs, ls.FlowOutProcs, ls.Folded)

	progs, err := mimdloop.BuildPrograms(ls.Full)
	if err != nil {
		return err
	}
	stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
	if err != nil {
		return err
	}
	seq := iters * g.TotalLatency()
	fmt.Printf("simulated: %d cycles for %d iterations (sequential %d) -> percentage parallelism %.1f%%\n",
		stats.Makespan, iters, seq, pct(seq, stats.Makespan))

	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 8, CommCost: k}, iters)
	if err != nil {
		return err
	}
	daProgs, err := mimdloop.BuildPrograms(da.Schedule)
	if err != nil {
		return err
	}
	daStats, err := mimdloop.Simulate(g, daProgs, mimdloop.MachineConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("DOACROSS:  %d cycles on %d processor(s) -> percentage parallelism %.1f%%\n\n",
		daStats.Makespan, da.Processors, pct(seq, daStats.Makespan))

	if jsonPath != "" {
		data, err := json.MarshalIndent(ls.Full, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n\n", jsonPath)
	}

	if gantt > 0 {
		fmt.Println("schedule (prefix):")
		fmt.Println(mimdloop.Gantt(ls.Full, gantt))
	}

	if code, err := mimdloop.Pseudocode(ls); err == nil {
		fmt.Println("generated subloops (steady state):")
		fmt.Print(code)
	}
	return nil
}

func pct(seq, par int) float64 {
	if seq == 0 {
		return 0
	}
	p := float64(seq-par) / float64(seq) * 100
	if p < 0 {
		p = 0
	}
	return p
}
