// Command loopsched parallelizes a loop written in the mini loop language:
// it prints the dependence graph, the Flow-in/Cyclic/Flow-out
// classification, the steady-state pattern, a Gantt view of the schedule,
// the generated communicating subloops, and a comparison against the
// DOACROSS baseline.
//
// It can also run as a scheduling service: `loopsched serve` starts an
// HTTP server that schedules POSTed loop source through a content-addressed
// plan store, so repeated requests for the same loop are answered without
// rescheduling; `-warmup corpus.json` pre-populates the store before the
// listener opens, and `-store DIR` backs the in-memory tier with durable
// plan records under DIR so a restarted server serves its predecessor's
// plans. `loopsched tune` searches a processors × comm-cost grid for the
// best (p, k) under an objective — optionally ranked by measured trials
// on an execution backend (`-measured`, `-backend gort` for the real
// goroutine runtime, `-backend csim -calib profile.json` for the
// calibrated simulator) and by a spread statistic (`-objective worst`).
// `loopsched calibrate` fits the calibration profile csim ranks with
// (`serve -calibrate-every` refreshes it in the background), `loopsched
// batch` schedules many loop files at once with per-file error
// isolation, and `loopsched store` inspects or maintains a plan-store
// directory offline.
//
// Usage:
//
//	loopsched [-k cost] [-p procs] [-n iters] [-fold] [-gantt cycles] file.loop
//	loopsched -example fig7|lfk18|ewf|chain
//	loopsched tune [-n iters] [-p list] [-k list] [-grains list] [-serial-below c]
//	               [-objective o] [-epsilon e]
//	               [-measured [-backend sim|gort|csim] [-calib FILE] [-trials r] [-fluct mm] [-seed s]]
//	               [-example name] [file.loop]
//	loopsched batch [-k cost] [-p procs] [-n iters] [-fold] [-workers w] file.loop...
//	loopsched serve [-addr :8080] [-cache entries] [-warmup corpus.json] [-store DIR] [-store-bytes n]
//	               [-calibrate-every DUR] [-peers host1:8080,host2:8080,... -self host1:8080 [-vnodes n]]
//	loopsched store -dir DIR [-max-bytes n] ls|gc|flush
//	loopsched bench [-addr URL] [-workers w] [-quick] [-json report.json]
//	loopsched calibrate [-quick] [-probes n] [-trials r] [-seed s] [-store DIR | -o FILE]
//
// Serving endpoints (full reference in docs/API.md):
//
//	POST   /v1/schedule            loop source (raw text or {"source": ..., "comm_cost": ...,
//	                               "processors": ..., "iterations": ..., "fold": ...});
//	                               replies with the JSON plan and a cache_hit flag
//	POST   /v1/batch               {"items": [...]}: many loops, per-item error isolation
//	POST   /v1/tune                auto-tune (p, k) over a grid under an objective
//	GET    /v1/plans/{fingerprint} list the stored plans for one graph
//	DELETE /v1/plans/{fingerprint} drop the stored plans for one graph
//	GET    /v1/stats               request counters plus the storage-layer snapshot
//	GET    /healthz                liveness probe
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mimdloop"
	"mimdloop/internal/loadgen"
)

func main() {
	if len(os.Args) > 1 {
		var sub func([]string) error
		switch os.Args[1] {
		case "serve":
			sub = serve
		case "tune":
			sub = tune
		case "batch":
			sub = batch
		case "store":
			sub = storeCmd
		case "bench":
			sub = benchCmd
		case "calibrate":
			sub = calibrateCmd
		}
		if sub != nil {
			if err := sub(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "loopsched:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		k        = flag.Int("k", 2, "communication cost estimate in cycles")
		procs    = flag.Int("p", 0, "processors for the Cyclic subset (0 = sufficient)")
		iters    = flag.Int("n", 100, "iterations to schedule and simulate")
		fold     = flag.Bool("fold", false, "fold non-Cyclic nodes into idle Cyclic slots (Section 3 heuristic)")
		gantt    = flag.Int("gantt", 24, "cycles of schedule to display (0 = none)")
		example  = flag.String("example", "", "run a built-in workload: fig7, lfk18, ewf, chain")
		jsonPath = flag.String("json", "", "write the composed schedule (with its graph) to this file as JSON")
	)
	flag.Parse()
	if err := run(*k, *procs, *iters, *fold, *gantt, *example, *jsonPath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "loopsched:", err)
		os.Exit(1)
	}
}

// parseFlags parses a subcommand flag set, keeping the parse-error
// reporting in one place: the error is printed once by main, but -h/-help
// still prints the flag listing. It reports done = true when the caller
// should return immediately (help was requested).
func parseFlags(fs *flag.FlagSet, args []string) (done bool, err error) {
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stdout)
			fs.Usage()
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// serve runs the HTTP scheduling service until the listener fails.
func serve(args []string) error {
	fs := flag.NewFlagSet("loopsched serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cache      = fs.Int("cache", 0, "maximum in-memory plans and compiled sources (0 = 1024)")
		warmup     = fs.String("warmup", "", "pre-populate the plan store from this schedule corpus (JSON array of sources or request objects)")
		storeDir   = fs.String("store", "", "back the in-memory tier with durable plan records under this directory")
		storeBytes = fs.Int64("store-bytes", 0, "disk-store byte budget before GC (0 = 1 GiB); requires -store")
		slots      = fs.Int("slots", 0, "concurrent compute slots for schedule/batch/tune work (0 = 4 x GOMAXPROCS)")
		calibEvery = fs.Duration("calibrate-every", 0, "refresh the cost-model calibration behind eval.backend=csim on this interval (0 = no background refresh; a profile persisted under -store still loads at startup)")
		peers      = fs.String("peers", "", "comma-separated cluster membership (host:port or URL per node, this node included) — enables cluster mode")
		self       = fs.String("self", "", "this node's own entry in -peers (required with -peers)")
		vnodes     = fs.Int("vnodes", 0, "consistent-hash virtual nodes per peer (0 = default; every node must agree)")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments, got %v", fs.Args())
	}
	// The disk tier opens before the peer tier so cluster fills can
	// stream fetched records through it (the peer store's RecordSink).
	disk, err := newServeDisk(*storeDir, *storeBytes)
	if err != nil {
		return err
	}
	peer, err := newClusterPeer(*peers, *self, *vnodes, disk)
	if err != nil {
		return err
	}
	pipe, err := newServePipeline(*cache, disk, peer)
	if err != nil {
		return err
	}
	defer pipe.Close()
	if *warmup != "" {
		stats, err := warmupFromFile(pipe, *warmup)
		if err != nil {
			return err
		}
		for _, msg := range stats.Errors {
			fmt.Fprintf(os.Stderr, "loopsched: warmup %s\n", msg)
		}
		fmt.Printf("loopsched: %s\n", warmupSummary(stats))
	}
	if *slots < 0 {
		return fmt.Errorf("negative compute slots %d", *slots)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	scfg := mimdloop.PipelineServerConfig{ComputeSlots: *slots}
	if peer != nil {
		scfg.Cluster = peer
	}
	if *calibEvery < 0 {
		return fmt.Errorf("negative -calibrate-every %v", *calibEvery)
	}
	if *calibEvery > 0 || *storeDir != "" {
		// Calibration serving: csim tunes read the manager's live
		// profile. With -store the profile persists beside the plan
		// records and a restarted server resumes calibrated; with
		// -calibrate-every a background pass keeps it fresh (and fits
		// the first profile one interval in).
		profilePath := ""
		if *storeDir != "" {
			profilePath = mimdloop.CalibProfilePath(*storeDir)
		}
		calib := mimdloop.NewCalibManager(profilePath)
		if err := calib.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "loopsched: calibration profile: %v\n", err)
		} else if p := calib.Profile(); p != nil {
			fmt.Printf("loopsched: calibration profile loaded (age %s, fit error %.1f%% over %d samples)\n",
				p.Age().Round(time.Second), p.FitError*100, p.Samples)
		}
		scfg.Calibration = calib
		if *calibEvery > 0 {
			logf := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "loopsched: "+format+"\n", args...)
			}
			stop := calib.Start(*calibEvery, mimdloop.CalibConfig{}, logf)
			defer stop()
		}
	}
	handler := mimdloop.NewPipelineServerWith(pipe, scfg)
	cluster := ""
	if peer != nil {
		cs := peer.ClusterStats()
		cluster = fmt.Sprintf("; cluster node %s of %d peers, %d vnodes", cs.Self, len(cs.Peers), cs.VNodes)
	}
	fmt.Printf("loopsched: serving on %s (POST /v1/schedule /v1/batch /v1/tune, GET /v1/plans /v1/stats; GOMAXPROCS=%d, %d compute slots%s)\n",
		ln.Addr(), runtime.GOMAXPROCS(0), handler.ComputeSlots(), cluster)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// The write deadline covers handler compute plus the body write;
		// near-cap replies run to tens of MB, so leave slow links room.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	return srv.Serve(ln)
}

// warmupSummary renders one human line from a warm-up pass, splitting
// the warmed count into store hits (disk-satisfied ones called out — on
// a restart with -store these should be nearly all of them) and fresh
// schedules.
func warmupSummary(stats mimdloop.WarmupStats) string {
	return fmt.Sprintf("warmed %d/%d corpus plans (%d from store, %d of those from disk; %d freshly scheduled; %d failed)",
		stats.Warmed, stats.Entries, stats.FromStore, stats.FromDisk, stats.Scheduled, stats.Failed)
}

// newClusterPeer validates the -peers/-self/-vnodes flags and builds
// the cluster tier, or nil when -peers is unset (single-node serving).
// A non-nil sink (the node's disk store) makes peer fills stream
// fetched records through it instead of buffering them whole.
func newClusterPeer(peersCSV, self string, vnodes int, sink *mimdloop.DiskStore) (*mimdloop.PeerStore, error) {
	if strings.TrimSpace(peersCSV) == "" {
		if self != "" {
			return nil, errors.New("-self requires -peers")
		}
		if vnodes != 0 {
			return nil, errors.New("-vnodes requires -peers")
		}
		return nil, nil
	}
	var peers []string
	for _, part := range strings.Split(peersCSV, ",") {
		if p := strings.TrimSpace(part); p != "" {
			peers = append(peers, p)
		}
	}
	if self == "" {
		return nil, errors.New("-peers requires -self (this node's own entry in the list)")
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("negative vnodes %d", vnodes)
	}
	cfg := mimdloop.PeerStoreConfig{
		Self:   self,
		Peers:  peers,
		VNodes: vnodes,
	}
	if sink != nil {
		cfg.RecordSink = sink
	}
	return mimdloop.NewPeerStore(cfg)
}

// newServeDisk validates the -store/-store-bytes flags and opens the
// durable tier, or nil when -store is unset.
func newServeDisk(storeDir string, storeBytes int64) (*mimdloop.DiskStore, error) {
	if storeDir == "" {
		if storeBytes != 0 {
			return nil, errors.New("-store-bytes requires -store")
		}
		return nil, nil
	}
	if storeBytes < 0 {
		return nil, fmt.Errorf("negative store byte budget %d", storeBytes)
	}
	return mimdloop.NewDiskStore(mimdloop.DiskStoreConfig{Dir: storeDir, MaxBytes: storeBytes})
}

// newServePipeline builds the pipeline behind the service: memory-only
// by default, memory over a durable disk store with -store, and the
// cluster peer-fill tier slotted between the two with -peers.
func newServePipeline(maxEntries int, disk *mimdloop.DiskStore, peer *mimdloop.PeerStore) (*mimdloop.Pipeline, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("negative cache size %d", maxEntries)
	}
	cfg := mimdloop.PipelineConfig{MaxEntries: maxEntries}
	switch {
	case disk == nil && peer == nil:
		// Memory-only: the pipeline's default MemStore.
	case disk == nil:
		cfg.Store = mimdloop.NewTieredStore(
			mimdloop.NewMemStore(mimdloop.MemStoreConfig{MaxEntries: maxEntries}), peer)
	default:
		var lower mimdloop.PlanStore = disk
		if peer != nil {
			lower = mimdloop.NewTieredStore(peer, disk)
		}
		cfg.Store = mimdloop.NewTieredStore(
			mimdloop.NewMemStore(mimdloop.MemStoreConfig{MaxEntries: maxEntries}), lower)
	}
	return mimdloop.NewPipeline(cfg), nil
}

// newServeHandler builds the service handler around a fresh pipeline.
func newServeHandler(maxEntries int) (http.Handler, error) {
	pipe, err := newServePipeline(maxEntries, nil, nil)
	if err != nil {
		return nil, err
	}
	return mimdloop.NewPipelineServer(pipe), nil
}

// benchCmd replays the trajectory phases of `paperbench -json` against
// a live `loopsched serve` instance: cold schedules, cache hits, tuning
// on both backends, batch throughput, and the concurrent load mix — the
// same loadgen phases, so a live deployment's numbers are directly
// comparable to the committed BENCH_*.json files (same schema; persist
// with -json).
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("loopsched bench", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "base URL of a running loopsched serve")
		workers = fs.Int("workers", 0, "concurrent load workers (0 = GOMAXPROCS)")
		quick   = fs.Bool("quick", false, "CI-sized phase counts")
		out     = fs.String("json", "", "also write the trajectory report to this file")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench takes no positional arguments, got %v", fs.Args())
	}
	// The cold phase needs plan keys the server has never seen. Against
	// a long-lived server a fixed iteration base would be warm from the
	// previous bench run, so derive one from the clock (keeping every
	// sample under the serving iteration cap).
	base := 200 + int(time.Now().Unix()%9500)
	rep, err := loadgen.Bench(*addr, nil, loadgen.Options{
		Quick:        *quick,
		Workers:      *workers,
		ColdIterBase: base,
	})
	if err != nil {
		return err
	}
	fmt.Printf("bench against %s (%s schema v%d)\n%s", *addr, loadgen.Format, loadgen.Version, rep.Summary())
	if *out != "" {
		data, err := rep.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	}
	return nil
}

// calibrateCmd runs one cost-model calibration pass — a seeded probe
// suite through both execution backends, least-squares fitted — and
// writes the versioned profile record `loopsched tune -backend csim
// -calib` and `loopsched serve` consume. With -store the profile lands
// at its canonical path inside a plan-store directory (where a serving
// process loads it at startup); with -o it lands at an explicit file;
// with neither the fit is printed and discarded.
func calibrateCmd(args []string) error {
	fs := flag.NewFlagSet("loopsched calibrate", flag.ContinueOnError)
	var (
		probes   = fs.Int("probes", 0, "distinct seeded probe loops (0 = default)")
		trials   = fs.Int("trials", 0, "goroutine-runtime trials per probe observation (0 = default)")
		seed     = fs.Int64("seed", 0, "first probe loop's workload seed (0 = default)")
		quick    = fs.Bool("quick", false, "CI-sized probe suite")
		storeDir = fs.String("store", "", "write the profile to its canonical path inside this plan-store directory")
		out      = fs.String("o", "", "write the profile to this file")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("calibrate takes no positional arguments, got %v", fs.Args())
	}
	if *storeDir != "" && *out != "" {
		return errors.New("-store and -o are mutually exclusive")
	}
	cfg := mimdloop.CalibConfig{}
	if *quick {
		cfg = mimdloop.QuickCalibConfig()
	}
	if *probes > 0 {
		cfg.Probes = *probes
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	start := time.Now()
	p, err := mimdloop.Calibrate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated in %s over %d samples (%d probes x %d trials):\n",
		time.Since(start).Round(time.Millisecond), p.Samples, p.Probes, p.Trials)
	fmt.Printf("  %.2f ns/cycle, %.0f ns/message, %.0f ns/iteration, %.2f seq ns/cycle\n",
		p.Model.ComputeNsPerCycle, p.Model.CommNsPerMessage, p.Model.IterOverheadNs, p.Model.SeqNsPerCycle)
	fmt.Printf("  fit error %.1f%% (rmse %.0f ns)\n", p.FitError*100, p.RMSENs)
	path := *out
	if *storeDir != "" {
		path = mimdloop.CalibProfilePath(*storeDir)
	}
	if path == "" {
		return nil
	}
	if err := mimdloop.SaveCalibProfile(path, p); err != nil {
		return err
	}
	fmt.Printf("profile written to %s\n", path)
	return nil
}

// storeCmd inspects or maintains a plan-store directory offline:
// `ls` lists the stored plans, `gc` trims to the byte budget, `flush`
// removes every record. It operates on the same records a `serve -store`
// process writes; run maintenance against a live server's directory from
// the server itself (DELETE /v1/plans), not from here.
func storeCmd(args []string) error {
	fs := flag.NewFlagSet("loopsched store", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", "", "plan store directory (required)")
		maxBytes = fs.Int64("max-bytes", 0, "byte budget for gc (0 = 1 GiB)")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("usage: loopsched store -dir DIR [-max-bytes n] ls|gc|flush")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("store wants exactly one action (ls, gc or flush), got %v", fs.Args())
	}
	disk, err := mimdloop.NewDiskStore(mimdloop.DiskStoreConfig{Dir: *dir, MaxBytes: *maxBytes})
	if err != nil {
		return err
	}
	defer disk.Close()
	switch action := fs.Arg(0); action {
	case "ls":
		plans := disk.Plans()
		fmt.Printf("%-16s %5s %5s %6s %10s %6s %10s\n", "fingerprint", "p", "k", "n", "rate", "procs", "bytes")
		for _, info := range plans {
			fmt.Printf("%-16s %5d %5d %6d %10.3g %6d %10d\n",
				info.GraphHash[:16], info.Options.Processors, info.Options.CommCost,
				info.Iterations, info.Rate, info.Procs, info.Bytes)
		}
		fmt.Printf("%d plans, %d bytes in %s\n", disk.Len(), disk.Bytes(), *dir)
	case "gc":
		removed, reclaimed := disk.GC()
		fmt.Printf("removed %d plans, reclaimed %d bytes (%d plans, %d bytes kept)\n",
			removed, reclaimed, disk.Len(), disk.Bytes())
	case "flush":
		n := disk.Len()
		if err := disk.Flush(); err != nil {
			return err
		}
		fmt.Printf("removed %d plans from %s\n", n, *dir)
	default:
		return fmt.Errorf("unknown store action %q (want ls, gc or flush)", action)
	}
	return nil
}

// warmupFromFile loads a schedule corpus and schedules every entry
// through the pipeline's caches.
func warmupFromFile(pipe *mimdloop.Pipeline, path string) (mimdloop.WarmupStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return mimdloop.WarmupStats{}, err
	}
	reqs, err := mimdloop.ParseCorpus(data)
	if err != nil {
		return mimdloop.WarmupStats{}, fmt.Errorf("%s: %w", path, err)
	}
	return pipe.Warmup(reqs, 0), nil
}

// tune searches a processors × comm-cost grid for the best (p, k) under
// an objective and prints the evaluated grid plus the winner. With
// -measured the grid is ranked by measured Sp from repeated trials on an
// execution backend instead of the scheduled rate — the deterministic
// simulated machine by default, the real goroutine runtime with
// `-backend gort` — and the winner is compared against the static
// ranking's choice under the same measurement. -objective also accepts
// the spread statistics mean, worst and p95, which rank the measured
// distribution's tail instead of its center (`loopsched tune -backend
// gort -objective worst`).
func tune(args []string) error {
	fs := flag.NewFlagSet("loopsched tune", flag.ContinueOnError)
	var (
		iters     = fs.Int("n", 100, "iterations to schedule per grid point")
		procsCSV  = fs.String("p", "", "comma-separated processor budgets (default 1..min(nodes, 8))")
		costsCSV  = fs.String("k", "", "comma-separated comm-cost estimates (default 1,2,3,4)")
		grainsCSV = fs.String("grains", "", "comma-separated chunking grains to add as a grid axis (default: unchunked only)")
		serialBlw = fs.Int("serial-below", 0, "emit the 1-processor sequential plan when n x body latency is below this (0 = off)")
		objective = fs.String("objective", "min_rate", "tuning objective: min_rate, min_procs or efficiency; or a measured spread statistic: mean, worst, p95")
		epsilon   = fs.Float64("epsilon", 0.05, "min_procs relative rate slack")
		workers   = fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		example   = fs.String("example", "", "tune a built-in workload: fig7, lfk18, ewf, chain")
		measured  = fs.Bool("measured", false, "rank grid points by measured Sp on an execution backend")
		backend   = fs.String("backend", "", "execution backend for measured ranking: sim (simulated machine, default), gort (real goroutine runtime) or csim (calibrated simulator; see -calib); implies -measured")
		calibPath = fs.String("calib", "", "calibration profile for -backend csim (from `loopsched calibrate -o` or a serve -store directory); without it csim degrades to raw sim")
		trials    = fs.Int("trials", 5, "trials per grid point (with -measured)")
		fluct     = fs.Int("fluct", 3, "communication fluctuation mm: extra delay in [0, mm-1] (sim backend only)")
		seed      = fs.Int64("seed", 1, "fluctuation seed (sim backend only)")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	compiled, err := loadLoop(*example, fs.Args())
	if err != nil {
		return err
	}
	// -objective accepts both vocabularies: a tune objective
	// (min_rate/min_procs/efficiency), or a measured spread statistic
	// (mean/worst/p95) — the latter implies measured min-rate tuning
	// ranked by that statistic.
	evalObj := mimdloop.EvalMean
	obj, objErr := mimdloop.ParseObjective(*objective)
	if objErr != nil {
		eo, evalErr := mimdloop.ParseEvalObjective(*objective)
		if evalErr != nil {
			return fmt.Errorf("-objective %q: want min_rate, min_procs, efficiency, mean, worst or p95", *objective)
		}
		evalObj, obj = eo, mimdloop.ObjectiveMinRate
		*measured = true
	}
	if *backend != "" {
		*measured = true
	}
	be, err := mimdloop.ExecBackendFor(*backend)
	if err != nil {
		return fmt.Errorf("-backend: %w", err)
	}
	if *calibPath != "" && be.Name() != "csim" {
		return errors.New("-calib requires -backend csim")
	}
	if be.Name() == "csim" {
		if *calibPath == "" {
			fmt.Fprintln(os.Stderr, "loopsched: no -calib profile: csim scores as raw sim (run `loopsched calibrate -o profile.json` first)")
		} else {
			p, err := mimdloop.LoadCalibProfile(*calibPath)
			if err != nil {
				return fmt.Errorf("-calib: %w", err)
			}
			be = mimdloop.CalibratedBackend(p.Model)
		}
	}
	if be.Name() == "gort" {
		// The goroutine runtime has no fluctuation model; its noise is
		// physical. Zero the sim-only parameter instead of silently
		// recording a meaningless mm in the annotation.
		*fluct = 0
	}
	procs, err := parseIntList(*procsCSV)
	if err != nil {
		return fmt.Errorf("-p: %w", err)
	}
	costs, err := parseIntList(*costsCSV)
	if err != nil {
		return fmt.Errorf("-k: %w", err)
	}
	grains, err := parseIntList(*grainsCSV)
	if err != nil {
		return fmt.Errorf("-grains: %w", err)
	}
	opt := mimdloop.TuneOptions{
		Processors:      procs,
		CommCosts:       costs,
		Grains:          grains,
		SerialThreshold: *serialBlw,
		Objective:       obj,
		Epsilon:         *epsilon,
		Workers:         *workers,
	}
	var ev *mimdloop.MeasuredEvaluator
	if *measured {
		ev = &mimdloop.MeasuredEvaluator{
			Trials:    *trials,
			Fluct:     *fluct,
			Seed:      *seed,
			Backend:   be,
			Objective: evalObj,
		}
		opt.Evaluator = ev
	}
	pipe := mimdloop.NewPipeline(mimdloop.PipelineConfig{})
	res, err := pipe.AutoTune(compiled.Graph, *iters, opt)
	if err != nil {
		return err
	}
	evaluator := res.Evaluator
	if res.Backend != "" {
		evaluator += fmt.Sprintf(" (%s backend, %s statistic)", res.Backend, evalObj)
	}
	fmt.Printf("loop %s: %d nodes, tuning %d grid points (%d scheduled), objective %s, evaluator %s\n\n",
		compiled.Loop.Name, compiled.Graph.N(), len(res.Results), res.Evaluated, res.Objective, evaluator)
	if res.SerialFallback {
		fmt.Printf("serial fallback: total sequential work %d cycles is below -serial-below %d; grid skipped\n\n",
			*iters*compiled.Graph.TotalLatency(), *serialBlw)
	}
	grained := len(grains) > 0
	header := fmt.Sprintf("%5s %5s", "p", "k")
	if grained {
		header += fmt.Sprintf(" %5s", "grain")
	}
	header += fmt.Sprintf(" %12s %8s", "rate", "procs")
	if *measured {
		header += fmt.Sprintf(" %8s %16s", "Sp", "[min, max]")
	}
	fmt.Println(header)
	for _, r := range res.Results {
		pk := fmt.Sprintf("%5d %5d", r.Point.Processors, r.Point.CommCost)
		if grained {
			pk += fmt.Sprintf(" %5d", r.Point.Grain)
		}
		if r.Err != nil {
			fmt.Printf("%s %12s %8s  (%v)\n", pk, "-", "-", r.Err)
			continue
		}
		line := fmt.Sprintf("%s %12.3g %8d", pk, r.Rate, r.Procs)
		if m := r.Score.Measured; m != nil {
			line += fmt.Sprintf(" %7.1f%% [%5.1f%%, %5.1f%%]", m.SpMean, m.SpMin, m.SpMax)
		}
		if r.Point == res.Best.Point {
			line += "  <-- best"
		}
		fmt.Println(line)
	}
	bestPt := fmt.Sprintf("p=%d k=%d", res.Best.Point.Processors, res.Best.Point.CommCost)
	if res.Best.Point.Grain > 1 {
		bestPt += fmt.Sprintf(" grain=%d", res.Best.Point.Grain)
	}
	fmt.Printf("\nbest: %s -> %.3g cycles/iteration on %d processors (score %.3g)\n",
		bestPt, res.Best.Rate, res.Best.Procs, res.Score)
	if !*measured {
		return nil
	}

	// Compare against the static ranking's winner under the same
	// measurement: the gap is what measuring (rather than trusting the
	// compile-time cost model) buys on this loop.
	best := res.Best.Score.Measured
	if best.Backend == "gort" {
		fmt.Printf("measured: Sp %.1f%% mean over %d wall-clock trials on the %s backend (p95 %.1f%%, worst %.1f%%)\n",
			best.SpMean, best.Trials, best.Backend, best.SpP95, best.SpMin)
	} else {
		fmt.Printf("measured: Sp %.1f%% mean over %d trials (fluct mm=%d, seed %d), utilization %.0f%%\n",
			best.SpMean, best.Trials, best.Fluct, best.Seed, 100*best.Utilization)
	}
	opt.Evaluator = nil
	staticRes, err := pipe.AutoTune(compiled.Graph, *iters, opt)
	if err != nil {
		return err
	}
	staticScore, err := pipe.Evaluate(ev, staticRes.Best.Plan)
	if err != nil {
		return err
	}
	fmt.Printf("static ranking would pick p=%d k=%d: measured Sp %.1f%% (%+.1f points vs measured ranking)\n",
		staticRes.Best.Point.Processors, staticRes.Best.Point.CommCost,
		staticScore.Measured.SpMean, staticScore.Measured.SpMean-best.SpMean)
	return nil
}

// batch schedules every argument loop file concurrently with per-file
// error isolation: a file that fails to read, compile or schedule reports
// its error without stopping the rest; the command exits nonzero at the
// end when any file failed.
func batch(args []string) error {
	fs := flag.NewFlagSet("loopsched batch", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 2, "communication cost estimate in cycles")
		procs   = fs.Int("p", 0, "processors for the Cyclic subset (0 = sufficient)")
		iters   = fs.Int("n", 100, "iterations to schedule")
		fold    = fs.Bool("fold", false, "fold non-Cyclic nodes into idle Cyclic slots")
		workers = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	if done, err := parseFlags(fs, args); done || err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return errors.New("usage: loopsched batch [flags] file.loop...")
	}
	items := make([]mimdloop.BatchItem, len(files))
	for i, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			// An unreadable file is isolated like any other per-item
			// failure: an empty Source fails inside Batch.
			fmt.Fprintf(os.Stderr, "loopsched: %s: %v\n", path, err)
			continue
		}
		items[i] = mimdloop.BatchItem{
			Source:     string(src),
			Opts:       mimdloop.Options{Processors: *procs, CommCost: *k, FoldNonCyclic: *fold},
			Iterations: *iters,
		}
	}
	results := mimdloop.NewPipeline(mimdloop.PipelineConfig{}).Batch(items, mimdloop.BatchOptions{Workers: *workers})
	failed := 0
	for i, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("%-24s ERROR %v\n", files[i], r.Err)
			continue
		}
		fmt.Printf("%-24s loop %-12s %3d nodes  %8.3g cycles/iteration  %3d procs\n",
			files[i], r.Loop, r.Compiled.Graph.N(), r.Plan.Rate(), r.Plan.Procs())
	}
	fmt.Printf("%d/%d loops scheduled\n", len(results)-failed, len(results))
	if failed > 0 {
		return fmt.Errorf("%d of %d loops failed", failed, len(results))
	}
	return nil
}

// parseIntList parses a comma-separated integer list; empty means nil
// (take the defaults).
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// chainLoop is the built-in chunk-friendly example: every statement
// carries a distance-1 self-recurrence and feeds the next, so the loop
// splits across processors at any grain while figure 7 is infeasible at
// every grain > 1 — the shape `tune -grains` exists for.
const chainLoop = `loop chain(N = 64) {
    A[i] = A[i-1] + U[i]
    B[i] = B[i-1] + A[i]
    C[i] = C[i-1] + B[i]
    D[i] = D[i-1] + C[i]
}`

// loadLoop resolves a built-in example name or a single loop file.
func loadLoop(example string, args []string) (*mimdloop.CompiledLoop, error) {
	switch {
	case example == "fig7":
		return mimdloop.Figure7Loop(), nil
	case example == "lfk18":
		return mimdloop.Livermore18Loop(), nil
	case example == "ewf":
		return mimdloop.EllipticLoop(), nil
	case example == "chain":
		return mimdloop.CompileLoop(chainLoop)
	case example != "":
		return nil, fmt.Errorf("unknown example %q (want fig7, lfk18, ewf or chain)", example)
	case len(args) != 1:
		return nil, errors.New("want exactly one loop file (or -example fig7)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return mimdloop.CompileLoop(string(src))
}

func run(k, procs, iters int, fold bool, gantt int, example, jsonPath string, args []string) error {
	compiled, err := loadLoop(example, args)
	if err != nil {
		return err
	}

	g := compiled.Graph
	fmt.Printf("loop %s: %d nodes, %d dependences, %d cycles/iteration sequential\n\n",
		compiled.Loop.Name, g.N(), len(g.Edges), g.TotalLatency())

	cls := mimdloop.Classify(g)
	fmt.Printf("classification: %d Flow-in, %d Cyclic, %d Flow-out\n",
		len(cls.FlowIn), len(cls.Cyclic), len(cls.FlowOut))
	if cls.IsDOALL() {
		fmt.Println("no Cyclic nodes: this is a DOALL loop")
	}
	fmt.Println()

	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{
		Processors:    procs,
		CommCost:      k,
		FoldNonCyclic: fold,
	}, iters)
	if err != nil {
		return err
	}
	if p := ls.Pattern(); p != nil {
		forced := ""
		if p.Forced {
			forced = " (modulo-scheduling fallback)"
		}
		fmt.Printf("pattern%s: %d cycles advancing %d iteration(s) = %.3g cycles/iteration\n",
			forced, p.Cycles(), p.IterShift, p.RatePerIteration())
	} else if ls.GreedyFallback {
		fmt.Println("no pattern: bounded greedy schedule")
	}
	fmt.Printf("processors: %d Cyclic + %d Flow-in + %d Flow-out (folded: %v)\n",
		ls.CyclicProcs, ls.FlowInProcs, ls.FlowOutProcs, ls.Folded)

	progs, err := mimdloop.BuildPrograms(ls.Full)
	if err != nil {
		return err
	}
	stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
	if err != nil {
		return err
	}
	seq := iters * g.TotalLatency()
	fmt.Printf("simulated: %d cycles for %d iterations (sequential %d) -> percentage parallelism %.1f%%\n",
		stats.Makespan, iters, seq, pct(seq, stats.Makespan))

	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 8, CommCost: k}, iters)
	if err != nil {
		return err
	}
	daProgs, err := mimdloop.BuildPrograms(da.Schedule)
	if err != nil {
		return err
	}
	daStats, err := mimdloop.Simulate(g, daProgs, mimdloop.MachineConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("DOACROSS:  %d cycles on %d processor(s) -> percentage parallelism %.1f%%\n\n",
		daStats.Makespan, da.Processors, pct(seq, daStats.Makespan))

	if jsonPath != "" {
		data, err := json.MarshalIndent(ls.Full, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n\n", jsonPath)
	}

	if gantt > 0 {
		fmt.Println("schedule (prefix):")
		fmt.Println(mimdloop.Gantt(ls.Full, gantt))
	}

	if code, err := mimdloop.Pseudocode(ls); err == nil {
		fmt.Println("generated subloops (steady state):")
		fmt.Print(code)
	}
	return nil
}

func pct(seq, par int) float64 {
	if seq == 0 {
		return 0
	}
	p := float64(seq-par) / float64(seq) * 100
	if p < 0 {
		p = 0
	}
	return p
}
