package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltinExamples(t *testing.T) {
	for _, ex := range []string{"fig7", "lfk18", "ewf"} {
		if err := run(2, 2, 20, false, 4, ex, "", nil); err != nil {
			t.Fatalf("example %s: %v", ex, err)
		}
	}
}

func TestRunLoopFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.loop")
	src := `loop t(N = 10) {
        A[i] = A[i-1] + U[i]
        B[i] = A[i] * 2.0
    }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sched.json")
	if err := run(1, 2, 10, true, 0, "", jsonPath, []string{path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON schedule")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(2, 0, 10, false, 0, "nope", "", nil); err == nil {
		t.Fatal("unknown example accepted")
	}
	if err := run(2, 0, 10, false, 0, "", "", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(2, 0, 10, false, 0, "", "", []string{"/does/not/exist.loop"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestServeHandler(t *testing.T) {
	h, err := newServeHandler(0)
	if err != nil {
		t.Fatal(err)
	}
	src := `loop t(N = 10) {
        A[i] = A[i-1] + U[i]
        B[i] = A[i] * 2.0
    }`
	for i, wantHit := range []bool{false, true} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(src)))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body)
		}
		var resp struct {
			Loop     string `json:"loop"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Loop != "t" || resp.CacheHit != wantHit {
			t.Fatalf("request %d: %+v, want hit=%v", i, resp, wantHit)
		}
	}
}

func TestServeArgErrors(t *testing.T) {
	if _, err := newServeHandler(-1); err == nil {
		t.Fatal("negative cache size accepted")
	}
	if err := serve([]string{"stray"}); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := serve([]string{"-nosuchflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 60); got != 40 {
		t.Fatalf("pct = %v", got)
	}
	if got := pct(100, 120); got != 0 {
		t.Fatalf("pct clamps = %v", got)
	}
	if got := pct(0, 5); got != 0 {
		t.Fatalf("pct zero seq = %v", got)
	}
}
