package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mimdloop"
)

func TestRunBuiltinExamples(t *testing.T) {
	for _, ex := range []string{"fig7", "lfk18", "ewf"} {
		if err := run(2, 2, 20, false, 4, ex, "", nil); err != nil {
			t.Fatalf("example %s: %v", ex, err)
		}
	}
}

func TestRunLoopFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.loop")
	src := `loop t(N = 10) {
        A[i] = A[i-1] + U[i]
        B[i] = A[i] * 2.0
    }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sched.json")
	if err := run(1, 2, 10, true, 0, "", jsonPath, []string{path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON schedule")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(2, 0, 10, false, 0, "nope", "", nil); err == nil {
		t.Fatal("unknown example accepted")
	}
	if err := run(2, 0, 10, false, 0, "", "", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(2, 0, 10, false, 0, "", "", []string{"/does/not/exist.loop"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestServeHandler(t *testing.T) {
	h, err := newServeHandler(0)
	if err != nil {
		t.Fatal(err)
	}
	src := `loop t(N = 10) {
        A[i] = A[i-1] + U[i]
        B[i] = A[i] * 2.0
    }`
	for i, wantHit := range []bool{false, true} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(src)))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body)
		}
		var resp struct {
			Loop     string `json:"loop"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Loop != "t" || resp.CacheHit != wantHit {
			t.Fatalf("request %d: %+v, want hit=%v", i, resp, wantHit)
		}
	}
}

func TestTuneSubcommand(t *testing.T) {
	if err := tune([]string{"-example", "fig7", "-p", "1,2", "-k", "2", "-objective", "min_procs"}); err != nil {
		t.Fatal(err)
	}
	if err := tune([]string{"-example", "nope"}); err == nil {
		t.Fatal("unknown example accepted")
	}
	if err := tune([]string{"-objective", "fastest", "-example", "fig7"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if err := tune([]string{"-p", "1,x", "-example", "fig7"}); err == nil {
		t.Fatal("bad -p list accepted")
	}
	if err := tune(nil); err == nil {
		t.Fatal("missing loop file accepted")
	}
}

func TestTuneMeasuredSubcommand(t *testing.T) {
	// The acceptance path: measured ranking on the Figure 7 loop with
	// seeded trials under fluctuation, including the static comparison.
	if err := tune([]string{"-example", "fig7", "-measured", "-trials", "5", "-fluct", "3", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	// Measured tuning composes with the other objectives.
	if err := tune([]string{"-example", "fig7", "-measured", "-trials", "2", "-objective", "min_procs", "-p", "1,2", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestTuneGortBackend(t *testing.T) {
	// The issue's spelling: -backend gort implies -measured, and
	// -objective accepts spread statistics (worst ranks the measured
	// tail under min-rate tuning).
	if err := tune([]string{"-example", "fig7", "-backend", "gort", "-objective", "worst",
		"-trials", "2", "-p", "1,2", "-k", "2", "-n", "40"}); err != nil {
		t.Fatal(err)
	}
	// The sim backend takes the spread statistics too.
	if err := tune([]string{"-example", "fig7", "-measured", "-objective", "p95",
		"-trials", "4", "-fluct", "3", "-p", "1,2", "-k", "2", "-n", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := tune([]string{"-example", "fig7", "-backend", "fpga"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestBatchSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.loop")
	bad := filepath.Join(dir, "bad.loop")
	if err := os.WriteFile(good, []byte("loop g(N = 10) {\n A[i] = A[i-1] + U[i]\n}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("loop ???"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := batch([]string{good, good}); err != nil {
		t.Fatalf("all-good batch failed: %v", err)
	}
	// Per-item isolation: the command still processes every file, then
	// reports the failure via its exit error.
	if err := batch([]string{good, bad}); err == nil {
		t.Fatal("batch with a bad file reported success")
	}
	if err := batch([]string{good, filepath.Join(dir, "missing.loop")}); err == nil {
		t.Fatal("batch with a missing file reported success")
	}
	if err := batch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestServeWarmup(t *testing.T) {
	pipe, err := newServePipeline(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.json")
	body := `[
		"loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}",
		{"source": "loop b(N = 10) {\n B[i] = B[i-1] + V[i]\n}", "processors": 1},
		{"source": "loop broken("}
	]`
	if err := os.WriteFile(corpus, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := warmupFromFile(pipe, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 3 || stats.Warmed != 2 || stats.Failed != 1 {
		t.Fatalf("warmup stats = %+v", stats)
	}

	// A served request matching a warmed entry is a cache hit.
	h := mimdloop.NewPipelineServer(pipe)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule",
		strings.NewReader("loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}")))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("warmed loop not served from cache")
	}

	if _, err := warmupFromFile(pipe, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing corpus accepted")
	}
	badCorpus := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badCorpus, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := warmupFromFile(pipe, badCorpus); err == nil {
		t.Fatal("malformed corpus accepted")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList(" 1, 2,8 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := parseIntList(""); got != nil || err != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	if _, err := parseIntList("1,,2"); err == nil {
		t.Fatal("empty element accepted")
	}
}

func TestServeArgErrors(t *testing.T) {
	if _, err := newServeHandler(-1); err == nil {
		t.Fatal("negative cache size accepted")
	}
	if err := serve([]string{"stray"}); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := serve([]string{"-nosuchflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 60); got != 40 {
		t.Fatalf("pct = %v", got)
	}
	if got := pct(100, 120); got != 0 {
		t.Fatalf("pct clamps = %v", got)
	}
	if got := pct(0, 5); got != 0 {
		t.Fatalf("pct zero seq = %v", got)
	}
}

// TestServeStorePipeline exercises the durable serving path end to end:
// a -store pipeline schedules and persists, a second pipeline over the
// same directory answers the same request as a store hit, and a warm-up
// replay reports the corpus as disk-satisfied rather than scheduled.
func TestServeStorePipeline(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "plans")
	corpus := filepath.Join(dir, "corpus.json")
	body := `[
		"loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}",
		{"source": "loop b(N = 10) {\n B[i] = B[i-1] + V[i]\n}", "processors": 1}
	]`
	if err := os.WriteFile(corpus, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	disk1, err := newServeDisk(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe1, err := newServePipeline(0, disk1, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats1, err := warmupFromFile(pipe1, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Warmed != 2 || stats1.Scheduled != 2 || stats1.FromDisk != 0 {
		t.Fatalf("cold warmup stats = %+v", stats1)
	}
	if err := pipe1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the same corpus is satisfied from the disk store.
	disk2, err := newServeDisk(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := newServePipeline(0, disk2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe2.Close()
	stats2, err := warmupFromFile(pipe2, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Warmed != 2 || stats2.FromStore != 2 || stats2.FromDisk != 2 || stats2.Scheduled != 0 {
		t.Fatalf("restart warmup stats = %+v", stats2)
	}
	if c := pipe2.Stats().Computes; c != 0 {
		t.Fatalf("restart warmup rescheduled %d plans", c)
	}
	summary := warmupSummary(stats2)
	for _, want := range []string{"warmed 2/2", "2 from store", "2 of those from disk", "0 freshly scheduled"} {
		if !strings.Contains(summary, want) {
			t.Fatalf("summary %q missing %q", summary, want)
		}
	}

	// The warmed plans serve over HTTP as cache hits.
	h := mimdloop.NewPipelineServer(pipe2)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule",
		strings.NewReader("loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}")))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("persisted plan not served from the store")
	}
}

func TestStoreSubcommand(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "plans")

	// Populate the store through a serve-shaped pipeline.
	sdisk, err := newServeDisk(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := newServePipeline(0, sdisk, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mimdloop.MustCompileLoop("loop s(N = 10) {\n A[i] = A[i-1] + U[i]\n}")
	if _, _, err := pipe.Schedule(c.Graph, mimdloop.Options{CommCost: 2}, 50); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	if err := storeCmd([]string{"-dir", storeDir, "ls"}); err != nil {
		t.Fatalf("ls: %v", err)
	}
	if err := storeCmd([]string{"-dir", storeDir, "gc"}); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if err := storeCmd([]string{"-dir", storeDir, "flush"}); err != nil {
		t.Fatalf("flush: %v", err)
	}
	disk, err := mimdloop.NewDiskStore(mimdloop.DiskStoreConfig{Dir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 0 {
		t.Fatalf("flush left %d plans", disk.Len())
	}

	// Argument errors.
	if err := storeCmd([]string{"ls"}); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := storeCmd([]string{"-dir", storeDir}); err == nil {
		t.Fatal("missing action accepted")
	}
	if err := storeCmd([]string{"-dir", storeDir, "explode"}); err == nil {
		t.Fatal("unknown action accepted")
	}
	if err := storeCmd([]string{"-dir", storeDir, "ls", "extra"}); err == nil {
		t.Fatal("extra argument accepted")
	}
}

func TestClusterFlagValidation(t *testing.T) {
	// No -peers: single-node serving, and the cluster-only flags are
	// rejected rather than silently ignored.
	if peer, err := newClusterPeer("", "", 0, nil); peer != nil || err != nil {
		t.Fatalf("no -peers: peer=%v err=%v", peer, err)
	}
	if _, err := newClusterPeer("", "node0", 0, nil); err == nil {
		t.Fatal("-self without -peers accepted")
	}
	if _, err := newClusterPeer("", "", 64, nil); err == nil {
		t.Fatal("-vnodes without -peers accepted")
	}

	// With -peers: -self is required and must name one of the peers.
	if _, err := newClusterPeer("a:1,b:2", "", 0, nil); err == nil {
		t.Fatal("-peers without -self accepted")
	}
	if _, err := newClusterPeer("a:1,b:2", "c:3", 0, nil); err == nil {
		t.Fatal("-self outside -peers accepted")
	}
	if _, err := newClusterPeer("a:1,b:2", "a:1", -1, nil); err == nil {
		t.Fatal("negative -vnodes accepted")
	}
	if _, err := newClusterPeer("a:1,a:1", "a:1", 0, nil); err == nil {
		t.Fatal("duplicate peers accepted")
	}

	peer, err := newClusterPeer(" a:1 , b:2 ", "a:1", 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := peer.ClusterStats()
	if cs.Self != "a:1" || len(cs.Peers) != 2 || cs.VNodes != 32 {
		t.Fatalf("cluster stats = %+v", cs)
	}

	// A clustered pipeline builds with and without a disk tier.
	for _, dir := range []string{"", t.TempDir()} {
		peer, err := newClusterPeer("a:1,b:2", "a:1", 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		disk, err := newServeDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := newServePipeline(0, disk, peer)
		if err != nil {
			t.Fatal(err)
		}
		if kind := pipe.Stats().Store.Kind; kind != "tiered" {
			t.Fatalf("clustered store kind = %q", kind)
		}
		if err := pipe.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeStoreArgErrors(t *testing.T) {
	if _, err := newServeDisk("", 5); err == nil {
		t.Fatal("-store-bytes without -store accepted")
	}
	if _, err := newServeDisk(t.TempDir(), -1); err == nil {
		t.Fatal("negative -store-bytes accepted")
	}
}
