package main

import "testing"

func TestRunFigures(t *testing.T) {
	// The fast artifacts; the full set runs in TestRunAllSmall below.
	for _, fig := range []int{1, 3, 7, 8} {
		if err := runFigure(fig, 30); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
	if err := runFigure(99, 10); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunTables(t *testing.T) {
	if err := runTable("1a", 30, 3, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := runTable("1b", 30, 3, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := runTable("1m", 30, 2, 2, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := runTable("1g", 20, 2, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := runTable("1c", 20, 2, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := runTable("2x", 30, 3, 0, 0, false); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestRunSweep(t *testing.T) {
	if err := runSweep(20, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	if err := runAblations(30); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full paperbench in -short mode")
	}
	if err := runAll(20, 2, 0); err != nil {
		t.Fatal(err)
	}
}
