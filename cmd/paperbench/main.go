// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints paper-reported numbers next to measured ones.
//
// Usage:
//
//	paperbench            # everything
//	paperbench -fig 7     # one figure (1, 3, 7, 8, 9, 11, 12)
//	paperbench -table 1a  # Table 1(a), 1b, 1t (auto-tuned), 1m (measured tuning),
//	                      # 1g (goroutine-runtime tuning), 1c (calibrated-sim
//	                      # agreement) or 1ad (adaptive granularity)
//	paperbench -ablations # design-choice ablations
//	paperbench -sweep     # concurrent processors x comm-cost sweep (Figure 7 loop)
//	paperbench -workers 8 # worker-pool size for Table 1 and the sweep
//	paperbench -table 1m -quick  # CI-sized smoke run of the measured-tuning table
//	paperbench -table 1g -quick  # CI-sized smoke run of the goroutine-backend table
//	paperbench -table 1c -quick  # CI-sized smoke run of the calibration agreement table
//	paperbench -table 1ad -quick # CI-sized smoke run of the adaptive-granularity table
//	paperbench -json BENCH_7.json -quick           # persist a serving trajectory point
//	paperbench -json BENCH_7.json -against BENCH_6.json  # ... and gate on the previous one
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"

	"mimdloop"
	"mimdloop/internal/calib"
	"mimdloop/internal/classify"
	"mimdloop/internal/core"
	"mimdloop/internal/experiments"
	"mimdloop/internal/loadgen"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/textfmt"
	"mimdloop/internal/workload"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate one figure (1, 3, 7, 8, 9, 11, 12)")
		table     = flag.String("table", "", "regenerate a table: 1a, 1b, 1t (sweep-tuned (p, k) variant), 1m (measured-ranking variant), 1g (goroutine-runtime ranking), 1c (calibrated-sim agreement) or 1ad (adaptive granularity)")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		sweep     = flag.Bool("sweep", false, "sweep processors x comm cost on the Figure 7 loop")
		iters     = flag.Int("n", 100, "iterations per measurement")
		loops     = flag.Int("loops", 25, "random loops for Table 1")
		trials    = flag.Int("trials", 5, "simulation trials per grid point for -table 1m")
		workers   = flag.Int("workers", 0, "worker-pool size for Table 1 and -sweep (0 = GOMAXPROCS)")
		quick     = flag.Bool("quick", false, "CI-sized run: fewer loops, iterations and trials")
		jsonOut   = flag.String("json", "", "run the serving benchmark phases against an in-process server and write the trajectory report (BENCH_<n>.json) to this file")
		against   = flag.String("against", "", "previous BENCH_*.json to gate the -json run against (missing file seeds the trajectory)")
	)
	flag.Parse()

	if *quick {
		*loops, *iters, *trials = 5, 40, 3
	}
	if *against != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "paperbench: -against requires -json")
		os.Exit(1)
	}
	all := *fig == 0 && *table == "" && !*ablations && !*sweep && *jsonOut == ""
	var err error
	switch {
	case *jsonOut != "":
		err = runBenchJSON(*jsonOut, *against, *quick, *workers)
	case all:
		err = runAll(*iters, *loops, *workers)
	case *fig != 0:
		err = runFigure(*fig, *iters)
	case *table != "":
		err = runTable(*table, *iters, *loops, *trials, *workers, *quick)
	case *ablations:
		err = runAblations(*iters)
	case *sweep:
		err = runSweep(*iters, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// runBenchJSON measures the serving trajectory against an in-process
// server and persists it as a BENCH_*.json file; with -against it gates
// the run on the previous trajectory point (warn past 25% cache-hit p50
// regression, fail past 200% — a lost fast lane regresses the HTTP hit
// path well past 3x, so the fail bar tolerates machine noise without
// letting a real regression through).
func runBenchJSON(out, against string, quick bool, workers int) error {
	// The in-process server carries a freshly fitted calibration so the
	// tune_csim phase measures the calibrated path, not the unprofiled
	// degradation (a live `loopsched bench` measures whatever the
	// deployment's calibration state is).
	m := calib.NewManager("")
	if _, err := m.Refresh(calib.Quick()); err != nil {
		return err
	}
	ts := httptest.NewServer(pipeline.NewServerWith(pipeline.New(pipeline.Config{}),
		pipeline.ServerConfig{Calibration: m}))
	defer ts.Close()
	rep, err := loadgen.Bench(ts.URL, ts.Client(), loadgen.Options{Quick: quick, Workers: workers})
	if err != nil {
		return err
	}
	data, err := rep.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("== Serving trajectory (%s schema v%d) ==\n%s", loadgen.Format, loadgen.Version, rep.Summary())
	fmt.Printf("report written to %s\n", out)

	if against == "" {
		return nil
	}
	prev, err := os.ReadFile(against)
	if os.IsNotExist(err) {
		fmt.Printf("no previous trajectory at %s: this run seeds it\n", against)
		return nil
	}
	if err != nil {
		return err
	}
	prevRep, err := loadgen.Decode(prev)
	if err != nil {
		return fmt.Errorf("%s: %w", against, err)
	}
	delta, err := loadgen.CompareHit(prevRep, rep)
	if err != nil {
		// Schema or mode changed between the two points: the trajectory
		// restarts here rather than comparing unlike runs.
		fmt.Printf("trajectory restarts: %v\n", err)
		return nil
	}
	fmt.Printf("cache-hit p50 vs %s: %+.1f%%\n", against, delta*100)
	switch {
	case delta > loadgen.FailHitRegression:
		return fmt.Errorf("cache-hit p50 regressed %.0f%% vs %s (fail threshold %.0f%%)",
			delta*100, against, loadgen.FailHitRegression*100)
	case delta > loadgen.WarnHitRegression:
		fmt.Printf("WARNING: cache-hit p50 regressed %.0f%% vs %s (warn threshold %.0f%%, fail at %.0f%%)\n",
			delta*100, against, loadgen.WarnHitRegression*100, loadgen.FailHitRegression*100)
	}
	return nil
}

func runAll(iters, loops, workers int) error {
	for _, f := range []int{1, 3, 7, 8, 9, 11, 12} {
		if err := runFigure(f, iters); err != nil {
			return err
		}
		fmt.Println()
	}
	// Compute Table 1 once and print both renderings from it.
	res, err := experiments.Table1Workers(loops, iters, workers)
	if err != nil {
		return err
	}
	printTable("1a", res)
	fmt.Println()
	printTable("1b", res)
	fmt.Println()
	if err := runAblations(iters); err != nil {
		return err
	}
	fmt.Println()
	return runSweep(iters, workers)
}

// runSweep evaluates a processors x comm-cost grid on the Figure 7 loop
// concurrently through the pipeline and prints Sp at every point.
func runSweep(iters, workers int) error {
	fmt.Println("== Sweep: percentage parallelism, Figure 7 loop, processors x k ==")
	procs := []int{2, 3, 4, 6, 8}
	costs := []int{0, 1, 2, 3, 4, 5}
	pipe := mimdloop.NewPipeline(mimdloop.PipelineConfig{})
	results := pipe.Sweep(mimdloop.Figure7Loop().Graph, mimdloop.SweepGrid(procs, costs),
		mimdloop.SweepOptions{Iterations: iters, Workers: workers, Simulate: true})

	header := []string{"procs \\ k"}
	for _, k := range costs {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := &metrics.Table{Header: header}
	i := 0
	for _, p := range procs {
		row := []string{fmt.Sprint(p)}
		for range costs {
			r := results[i]
			i++
			if r.Err != nil {
				return r.Err
			}
			row = append(row, metrics.F1(r.Sp))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}

func runFigure(fig, iters int) error {
	switch fig {
	case 1:
		g := workload.Figure1()
		cls := classify.Partition(g)
		fmt.Println("== Figure 1: classification example ==")
		names := func(ids []int) []string {
			out := make([]string, len(ids))
			for i, v := range ids {
				out[i] = g.Nodes[v].Name
			}
			return out
		}
		fmt.Printf("Flow-in : %v (paper: [A B C D F])\n", names(cls.FlowIn))
		fmt.Printf("Cyclic  : %v (paper: [E I K L])\n", names(cls.Cyclic))
		fmt.Printf("Flow-out: %v (paper: [G H J])\n", names(cls.FlowOut))
		return nil
	case 3:
		fmt.Println("== Figure 3: pattern emergence (k=1, unit latencies) ==")
		g := workload.Figure3()
		res, err := core.CyclicSchedAll(g, core.Options{Processors: 4, CommCost: 1})
		if err != nil {
			return err
		}
		fmt.Printf("pattern: %.3g cycles/iteration over %d processors\n",
			res.RatePerIteration(), res.Processors)
		full, err := res.Expand(8)
		if err != nil {
			return err
		}
		fmt.Println(textfmt.Gantt(full, 16))
		return nil
	case 7:
		fmt.Println("== Figure 7: non-trivial scheduling example ==")
		c, err := experiments.Figure7(iters)
		if err != nil {
			return err
		}
		fmt.Println(c)
		return printFig7Details()
	case 8:
		fmt.Println("== Figure 8: DOACROSS on the Figure 7 loop ==")
		r, err := experiments.Figure8(iters)
		if err != nil {
			return err
		}
		fmt.Printf("natural order:   makespan %d vs sequential %d -> Sp %.1f%% (paper: 0)\n",
			r.NaturalMakespan, r.SequentialTime, r.NaturalSp)
		fmt.Printf("optimal reorder: makespan %d -> Sp %.1f%% (paper: 0)\n",
			r.ReorderedMakespan, r.ReorderedSp)
		return nil
	case 9:
		fmt.Println("== Figure 9/10: [Cytron86] example ==")
		c, err := experiments.Figure9(iters)
		if err != nil {
			return err
		}
		fmt.Println(c)
		return nil
	case 11:
		fmt.Println("== Figure 11: 18th Livermore Loop ==")
		c, err := experiments.Figure11(iters)
		if err != nil {
			return err
		}
		fmt.Println(c)
		return nil
	case 12:
		fmt.Println("== Figure 12: fifth-order elliptic wave filter ==")
		c, err := experiments.Figure12(iters)
		if err != nil {
			return err
		}
		fmt.Println(c)
		return nil
	default:
		return fmt.Errorf("unknown figure %d (have 1, 3, 7, 8, 9, 11, 12)", fig)
	}
}

func printFig7Details() error {
	ls, err := mimdloop.ScheduleLoop(mimdloop.Figure7Loop().Graph,
		mimdloop.Options{Processors: 2, CommCost: 2}, 12)
	if err != nil {
		return err
	}
	fmt.Println("\nschedule (compare paper Figure 7(d)):")
	fmt.Println(mimdloop.Gantt(ls.Full, 18))
	code, err := mimdloop.Pseudocode(ls)
	if err != nil {
		return err
	}
	fmt.Println("transformed loop (compare paper Figure 7(e)):")
	fmt.Print(code)
	return nil
}

func runTable(name string, iters, loops, trials, workers int, quick bool) error {
	if name == "1t" {
		res, err := experiments.Table1Tuned(loops, iters, workers)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (auto-tuned): sweep-chosen (p, k) vs sufficient processors ==")
		fmt.Print(res.Format())
		return nil
	}
	if name == "1m" {
		res, err := experiments.Table1Measured(loops, iters, trials, workers)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (measured tuning): static-ranked vs measured-ranked winners ==")
		fmt.Print(res.Format())
		return nil
	}
	if name == "1g" {
		res, err := experiments.Table1Goroutine(loops, iters, trials)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (goroutine runtime): simulator-ranked vs goroutine-ranked winners ==")
		fmt.Print(res.Format())
		return nil
	}
	if name == "1ad" {
		res, err := experiments.Table1Adaptive(loops, iters, trials)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (adaptive granularity): grain-tuned vs grain-1 gort winners on the small-n suite ==")
		fmt.Print(res.Format())
		return nil
	}
	if name == "1c" {
		// The calibration table ignores -trials: the gort trial count is
		// the experiment's own stability default (20/cell), the number
		// its latency comparison is defined against.
		ccfg := calib.Config{}
		if quick {
			ccfg = calib.Quick()
		}
		res, err := experiments.Table1Calibrated(loops, iters, 0, ccfg)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (calibrated sim): sim- and csim-ranked winners vs goroutine ground truth ==")
		fmt.Print(res.Format())
		return nil
	}
	if name != "1a" && name != "1b" {
		return fmt.Errorf("unknown table %q (have 1a, 1b, 1t, 1m, 1g, 1c, 1ad)", name)
	}
	res, err := experiments.Table1Workers(loops, iters, workers)
	if err != nil {
		return err
	}
	printTable(name, res)
	return nil
}

func printTable(name string, res *experiments.Table1Result) {
	if name == "1a" {
		fmt.Println("== Table 1(a): percentage parallelism, 25 random loops ==")
		fmt.Print(res.FormatA())
		return
	}
	fmt.Println("== Table 1(b): averages and speedup factors ==")
	fmt.Print(res.FormatB())
}

func runAblations(iters int) error {
	fmt.Println("== Ablations ==")
	fig7 := mimdloop.Figure7Loop().Graph

	rows, err := experiments.AblationKEstimate(fig7, []int{0, 1, 2, 3, 5, 7}, 3, iters)
	if err != nil {
		return err
	}
	fmt.Println("A1: communication-estimate robustness on Figure 7 (true cost 3):")
	for _, r := range rows {
		fmt.Printf("    estimate k=%d -> Sp %.1f%%\n", r.EstimatedK, r.Sp)
	}

	suite0, err := workload.Random(workload.PaperSpec, 1)
	if err != nil {
		return err
	}
	for _, ab := range []struct {
		name string
		f    func() ([]experiments.RateRow, error)
	}{
		{"A2: placement rule (random loop 0, k=3)", func() ([]experiments.RateRow, error) {
			return experiments.AblationPlacement(suite0, 3)
		}},
		{"A3: ready-queue order (random loop 0, k=3)", func() ([]experiments.RateRow, error) {
			return experiments.AblationQueueOrder(suite0, 3)
		}},
		{"A4: processors per component (random loop 0, k=3)", func() ([]experiments.RateRow, error) {
			return experiments.AblationProcessors(suite0, 3, []int{2, 4, 8, 16})
		}},
		{"A5: Perfect Pipelining limit (Figure 3)", func() ([]experiments.RateRow, error) {
			return experiments.AblationPerfectPipelining([]int{0, 1, 2, 4})
		}},
		{"A6: communication timing model (Figure 7, k=2)", func() ([]experiments.RateRow, error) {
			return experiments.AblationCommModel(fig7, 2)
		}},
	} {
		rows, err := ab.f()
		if err != nil {
			return err
		}
		fmt.Println(ab.name + ":")
		for _, r := range rows {
			fmt.Printf("    %-12s %.3g cycles/iteration\n", r.Name, r.Rate)
		}
	}
	return nil
}
