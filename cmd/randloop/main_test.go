package main

import (
	"strings"
	"testing"
)

// TestRunEmitsWorkload smoke-tests the default command path: a paper-spec
// random loop renders as a commented node/edge listing.
func TestRunEmitsWorkload(t *testing.T) {
	var sb strings.Builder
	if err := run(config{seed: 1, k: 3, nodes: 40, sd: 20, lcd: 20}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "// seed 1: cyclic subset") {
		t.Fatalf("missing header:\n%.200s", out)
	}
	if !strings.Contains(out, "node") && !strings.Contains(out, "edge") {
		t.Fatalf("no graph listing:\n%.200s", out)
	}
	if strings.Contains(out, "steady state") {
		t.Fatal("unscheduled run reported a steady state")
	}
}

// TestRunSchedules covers -sched: the listing gains the steady-state
// line, and the run is deterministic per seed.
func TestRunSchedules(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := run(config{seed: 7, sched: true, k: 3, nodes: 40, sd: 20, lcd: 20}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	out := render()
	if !strings.Contains(out, "// steady state at k=3:") {
		t.Fatalf("missing steady-state line:\n%.200s", out)
	}
	if again := render(); again != out {
		t.Fatal("same seed produced different output")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if err := run(config{seed: 1, nodes: 1}, &strings.Builder{}); err == nil {
		t.Fatal("degenerate spec accepted")
	}
}
