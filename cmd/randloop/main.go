// Command randloop emits the Section 4 random workloads: the Cyclic subset
// of a 40-node random loop with 20 simple and 20 loop-carried dependences,
// printed as a node/edge listing (and optionally its classification and
// steady-state rate).
//
// Usage:
//
//	randloop -seed 7
//	randloop -seed 7 -sched -k 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mimdloop/internal/core"
	"mimdloop/internal/workload"
)

// config carries the generator parameters from the flags to run.
type config struct {
	seed           int64
	sched          bool
	k              int
	nodes, sd, lcd int
}

func main() {
	var cfg config
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed (paper uses 1..25)")
	flag.BoolVar(&cfg.sched, "sched", false, "also schedule the loop and report its steady-state rate")
	flag.IntVar(&cfg.k, "k", 3, "communication cost for -sched")
	flag.IntVar(&cfg.nodes, "nodes", 40, "nodes in the base loop")
	flag.IntVar(&cfg.sd, "sd", 20, "simple dependences")
	flag.IntVar(&cfg.lcd, "lcd", 20, "loop-carried dependences")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "randloop:", err)
		os.Exit(1)
	}
}

// run generates (and optionally schedules) one random workload, writing
// the listing to w.
func run(cfg config, w io.Writer) error {
	spec := workload.PaperSpec
	spec.Nodes, spec.Simple, spec.LoopCarry = cfg.nodes, cfg.sd, cfg.lcd
	g, err := workload.Random(spec, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "// seed %d: cyclic subset with %d nodes, %d edges, %d cycles/iteration sequential\n",
		cfg.seed, g.N(), len(g.Edges), g.TotalLatency())
	fmt.Fprint(w, g.Format())

	if cfg.sched {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: cfg.k})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "// steady state at k=%d: %.3g cycles/iteration on %d processors\n",
			cfg.k, multi.RatePerIteration(), multi.Processors)
	}
	return nil
}
