// Command randloop emits the Section 4 random workloads: the Cyclic subset
// of a 40-node random loop with 20 simple and 20 loop-carried dependences,
// printed as a node/edge listing (and optionally its classification and
// steady-state rate).
//
// Usage:
//
//	randloop -seed 7
//	randloop -seed 7 -sched -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"mimdloop/internal/core"
	"mimdloop/internal/workload"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "generator seed (paper uses 1..25)")
		sched = flag.Bool("sched", false, "also schedule the loop and report its steady-state rate")
		k     = flag.Int("k", 3, "communication cost for -sched")
		nodes = flag.Int("nodes", 40, "nodes in the base loop")
		sd    = flag.Int("sd", 20, "simple dependences")
		lcd   = flag.Int("lcd", 20, "loop-carried dependences")
	)
	flag.Parse()

	spec := workload.PaperSpec
	spec.Nodes, spec.Simple, spec.LoopCarry = *nodes, *sd, *lcd
	g, err := workload.Random(spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "randloop:", err)
		os.Exit(1)
	}
	fmt.Printf("// seed %d: cyclic subset with %d nodes, %d edges, %d cycles/iteration sequential\n",
		*seed, g.N(), len(g.Edges), g.TotalLatency())
	fmt.Print(g.Format())

	if *sched {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: *k})
		if err != nil {
			fmt.Fprintln(os.Stderr, "randloop:", err)
			os.Exit(1)
		}
		fmt.Printf("// steady state at k=%d: %.3g cycles/iteration on %d processors\n",
			*k, multi.RatePerIteration(), multi.Processors)
	}
}
