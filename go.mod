module mimdloop

go 1.22
