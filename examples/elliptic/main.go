// Elliptic: the fifth-order elliptic wave filter (paper Figure 12) — a
// classic high-level-synthesis benchmark — scheduled across a processor
// sweep, showing where communication cost stops extra processors from
// helping a tightly-coupled recurrence.
package main

import (
	"fmt"
	"log"

	"mimdloop"
)

func main() {
	compiled := mimdloop.EllipticLoop()
	g := compiled.Graph
	fmt.Printf("elliptic wave filter: %d ops (26 add @1, 8 mult @2), %d cycles/iteration sequential\n",
		g.N(), g.TotalLatency())

	cls := mimdloop.Classify(g)
	fmt.Printf("classification: %d Cyclic + %d Flow-out (the output tap)\n\n",
		len(cls.Cyclic), len(cls.FlowOut))

	const iters = 100
	seq := iters * g.TotalLatency()

	fmt.Println("processor sweep at k=2:")
	for _, p := range []int{1, 2, 3, 4, 8} {
		ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: p, CommCost: 2}, iters)
		if err != nil {
			log.Fatal(err)
		}
		progs, err := mimdloop.BuildPrograms(ls.Full)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%d: rate %.3g cyc/iter, Sp %.1f%% on %d PEs used\n",
			p, ls.RatePerIteration(), float64(seq-stats.Makespan)/float64(seq)*100, ls.TotalProcs())
	}

	// Communication-cost sweep: the recurrence is 28 of 42 cycles, so the
	// schedule tolerates k until cross-chain messages hit the chain.
	fmt.Println("\ncommunication-cost sweep (2 processors):")
	for _, k := range []int{0, 1, 2, 4, 8} {
		ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 2, CommCost: k}, iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: rate %.3g cyc/iter\n", k, ls.RatePerIteration())
	}

	// Paper's headline for this workload: ours 30.9% vs DOACROSS 0%.
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 8, CommCost: 2}, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDOACROSS: Sp %.1f%% (paper: 0%% — the r1 -> a1 feedback spans the whole body)\n",
		float64(seq-da.Schedule.Makespan())/float64(seq)*100)
}
