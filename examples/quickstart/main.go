// Quickstart: parallelize a small non-vectorizable loop end to end —
// parse, classify, schedule, inspect the steady-state pattern, generate
// communicating subloops, and check the speedup against both sequential
// execution and the DOACROSS baseline.
package main

import (
	"fmt"
	"log"

	"mimdloop"
)

func main() {
	// The paper's Figure 7 loop: every statement is tangled in a
	// loop-carried recurrence, so it cannot be vectorized, and the (E, A)
	// dependence defeats iteration pipelining outright.
	compiled, err := mimdloop.CompileLoop(`
		loop fig7(N = 100) {
		    A[i] = A[i-1] + E[i-1]
		    B[i] = A[i]
		    C[i] = B[i]
		    D[i] = D[i-1] + C[i-1]
		    E[i] = D[i]
		}`)
	if err != nil {
		log.Fatal(err)
	}
	g := compiled.Graph

	cls := mimdloop.Classify(g)
	fmt.Printf("classification: %d Flow-in, %d Cyclic, %d Flow-out\n",
		len(cls.FlowIn), len(cls.Cyclic), len(cls.FlowOut))

	const iters = 100
	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 2, CommCost: 2}, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state: %s\n", ls.Pattern())

	// Lower to per-processor programs and measure on the simulated
	// machine.
	progs, err := mimdloop.BuildPrograms(ls.Full)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	seq := iters * g.TotalLatency()
	fmt.Printf("parallel %d cycles vs sequential %d: percentage parallelism %.1f%%\n",
		stats.Makespan, seq, float64(seq-stats.Makespan)/float64(seq)*100)

	// The DOACROSS baseline cannot pipeline this loop at all.
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 4, CommCost: 2}, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DOACROSS best effort: %d cycles on %d processor(s) (sequential fallback)\n",
		da.Schedule.Makespan(), da.Processors)

	// Finally, the generated communicating subloops (paper Figure 7(e)).
	code, err := mimdloop.Pseudocode(ls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransformed loop:")
	fmt.Print(code)
}
