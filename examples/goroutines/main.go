// Goroutines: run a partitioned loop for real — one goroutine per
// simulated processor, values flowing through channels — and verify the
// parallel execution computes exactly what sequential execution computes.
// This is the paper's premise made concrete: the generated subloops
// synchronize purely through messages, so they are correct on an
// asynchronous MIMD machine no matter how communication timing fluctuates.
package main

import (
	"fmt"
	"log"
	"math"

	"mimdloop"
)

func main() {
	compiled, err := mimdloop.CompileLoop(`
		// An if-converted guarded recurrence: the control dependence on
		// the comparison becomes a data dependence.
		loop guarded(N = 1000) {
		    A[i] = A[i-1] * 0.99 + U[i]
		    B[i] = A[i] + A[i-1]
		    if (B[i] > 1.0) S[i] = S[i-1] + B[i]
		    T[i] = S[i] - B[i]
		}`)
	if err != nil {
		log.Fatal(err)
	}
	g := compiled.Graph
	const iters = 1000

	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 2, CommCost: 2}, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d iterations at %.3g cycles/iteration on %d processors\n",
		iters, ls.RatePerIteration(), ls.TotalProcs())

	progs, err := mimdloop.BuildPrograms(ls.Full)
	if err != nil {
		log.Fatal(err)
	}
	sends := 0
	for _, p := range progs {
		for _, in := range p.Instrs {
			if in.Kind == 1 { // OpSend
				sends++
			}
		}
	}
	fmt.Printf("lowered to %d programs exchanging %d messages\n", len(progs), sends)

	// Parallel execution with real goroutines and channels. The compiled
	// loop itself supplies the semantics (expression evaluation).
	parallel, err := mimdloop.Execute(g, progs, compiled)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: sequential interpretation.
	sequential := compiled.Interpret(iters)

	worst := 0.0
	for k, want := range sequential {
		if d := math.Abs(parallel[k] - want); d > worst {
			worst = d
		}
	}
	fmt.Printf("verified %d values against sequential execution; max |Δ| = %g\n",
		len(sequential), worst)

	final := compiled.FinalValues(parallel, iters)
	fmt.Printf("final values: A=%.6g B=%.6g S=%.6g T=%.6g\n",
		final["A"], final["B"], final["S"], final["T"])
}
