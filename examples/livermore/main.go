// Livermore: schedule the 18th Livermore Loop reconstruction (paper
// Figure 11) and walk through what the classifier and scheduler do with a
// loop that mixes a Flow-in fringe with deep cyclic recurrences.
package main

import (
	"fmt"
	"log"

	"mimdloop"
)

func main() {
	compiled := mimdloop.Livermore18Loop()
	g := compiled.Graph
	fmt.Printf("LFK18: %d nodes, %d cycles/iteration sequential\n", g.N(), g.TotalLatency())

	cls := mimdloop.Classify(g)
	fmt.Printf("Flow-in nodes (%d): ", len(cls.FlowIn))
	for _, v := range cls.FlowIn {
		fmt.Printf("%s ", g.Nodes[v].Name)
	}
	fmt.Println()

	const iters = 100
	// The Section 3 folding heuristic packs the Flow-in work into the
	// Cyclic processors' idle slots when that costs (almost) nothing.
	for _, fold := range []bool{false, true} {
		ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{
			Processors:    2,
			CommCost:      2,
			FoldNonCyclic: fold,
		}, iters)
		if err != nil {
			log.Fatal(err)
		}
		progs, err := mimdloop.BuildPrograms(ls.Full)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
		if err != nil {
			log.Fatal(err)
		}
		seq := iters * g.TotalLatency()
		fmt.Printf("fold=%-5v rate %.3g cyc/iter on %d PEs, simulated Sp %.1f%% (paper: 49.4%%)\n",
			fold, ls.RatePerIteration(), ls.TotalProcs(),
			float64(seq-stats.Makespan)/float64(seq)*100)
	}

	// Against DOACROSS (paper: 12.6%).
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 8, CommCost: 2}, iters)
	if err != nil {
		log.Fatal(err)
	}
	seq := iters * g.TotalLatency()
	fmt.Printf("DOACROSS: Sp %.1f%% on %d processor(s) (paper: 12.6%%)\n",
		float64(seq-da.Schedule.Makespan())/float64(seq)*100, da.Processors)

	// Show the first cycles of the composed schedule.
	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 2, CommCost: 2}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschedule prefix (Cyclic PEs first, then Flow-in PE):")
	fmt.Println(mimdloop.Gantt(ls.Full, 20))
}
