// Compilerpass: use the library the way a parallelizing compiler would —
// take loop source, analyze dependences, decide DOALL vs DOACROSS vs
// pattern partitioning, and emit the transformed program text.
package main

import (
	"fmt"
	"log"

	"mimdloop"
)

var sources = []string{
	// DOALL: no loop-carried dependences at all.
	`loop doall(N = 64) {
	    A[i] = U[i] * 2.0
	    B[i] = A[i] + V[i]
	}`,
	// Pipelinable: one cheap recurrence followed by heavy independent
	// work — DOACROSS territory.
	`loop pipeline(N = 64) {
	    A[i] = A[i-1] + U[i]
	    W1[i] = A[i] * 3.0 @lat(3)
	    W2[i] = A[i] * 5.0 @lat(3)
	    W3[i] = W1[i] + W2[i] @lat(3)
	}`,
	// Non-vectorizable and non-pipelinable: the paper's Figure 7 loop,
	// where only pattern partitioning wins.
	`loop entangled(N = 64) {
	    A[i] = A[i-1] + E[i-1]
	    B[i] = A[i]
	    C[i] = B[i]
	    D[i] = D[i-1] + C[i-1]
	    E[i] = D[i]
	}`,
}

func main() {
	for _, src := range sources {
		if err := compile(src); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func compile(src string) error {
	compiled, err := mimdloop.CompileLoop(src)
	if err != nil {
		return err
	}
	g := compiled.Graph
	const iters, k = 64, 2
	seq := iters * g.TotalLatency()

	cls := mimdloop.Classify(g)
	fmt.Printf("loop %q: %d statements, classification %d/%d/%d (in/cyclic/out)\n",
		compiled.Loop.Name, g.N(), len(cls.FlowIn), len(cls.Cyclic), len(cls.FlowOut))

	if cls.IsDOALL() {
		fmt.Println("  decision: DOALL — iterations are independent, spread them freely")
		ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 4, CommCost: k}, iters)
		if err != nil {
			return err
		}
		fmt.Printf("  4 processors: %d cycles vs %d sequential\n", ls.Full.Makespan(), seq)
		return nil
	}

	// Compare DOACROSS and pattern partitioning; pick the winner like a
	// compiler's cost model would.
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 4, CommCost: k}, iters)
	if err != nil {
		return err
	}
	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 4, CommCost: k}, iters)
	if err != nil {
		return err
	}
	fmt.Printf("  DOACROSS: %d cycles on %d PEs; pattern: %d cycles on %d PEs (sequential %d)\n",
		da.Schedule.Makespan(), da.Processors, ls.Full.Makespan(), ls.TotalProcs(), seq)
	if da.Schedule.Makespan() <= ls.Full.Makespan() {
		fmt.Println("  decision: DOACROSS pipelining wins")
		return nil
	}
	fmt.Println("  decision: pattern partitioning wins; emitted subloops:")
	code, err := mimdloop.Pseudocode(ls)
	if err != nil {
		return err
	}
	fmt.Print(indent(code))
	return nil
}

func indent(s string) string {
	out := ""
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out += "    " + s[:i] + "\n"
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}
