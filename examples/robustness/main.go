// Robustness: the paper's Section 4 experiment in miniature — schedule a
// random non-vectorizable loop with an estimated communication cost, then
// watch what happens when the machine's real communication fluctuates far
// above the estimate (mm = 1, 3, 5) or is simply a different constant.
package main

import (
	"fmt"
	"log"

	"mimdloop"
)

func main() {
	const seed, k, iters = 7, 3, 100
	g, err := mimdloop.RandomCyclicLoop(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random loop (seed %d): %d cyclic nodes, %d cycles/iteration sequential\n",
		seed, g.N(), g.TotalLatency())

	multi, err := mimdloop.CyclicSchedAll(g, mimdloop.Options{CommCost: k})
	if err != nil {
		log.Fatal(err)
	}
	full, err := multi.Expand(iters)
	if err != nil {
		log.Fatal(err)
	}
	progs, err := mimdloop.BuildPrograms(full)
	if err != nil {
		log.Fatal(err)
	}
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 8, CommCost: k}, iters)
	if err != nil {
		log.Fatal(err)
	}
	daProgs, err := mimdloop.BuildPrograms(da.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	seq := iters * g.TotalLatency()
	sp := func(par int) float64 {
		v := float64(seq-par) / float64(seq) * 100
		if v < 0 {
			v = 0
		}
		return v
	}

	fmt.Printf("\nschedule built with k=%d; run-time cost varies in [k, k+mm-1]:\n", k)
	for _, mm := range []int{1, 3, 5} {
		cfg := mimdloop.MachineConfig{Fluct: mm, Seed: seed}
		ours, err := mimdloop.Simulate(g, progs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		base, err := mimdloop.Simulate(g, daProgs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  mm=%d: ours Sp %.1f%%  DOACROSS Sp %.1f%%\n",
			mm, sp(ours.Makespan), sp(base.Makespan))
	}

	fmt.Println("\nestimate-vs-reality sweep (true cost forced to 3):")
	for _, est := range []int{0, 1, 3, 5, 7} {
		m, err := mimdloop.CyclicSchedAll(g, mimdloop.Options{CommCost: est})
		if err != nil {
			log.Fatal(err)
		}
		f, err := m.Expand(iters)
		if err != nil {
			log.Fatal(err)
		}
		p, err := mimdloop.BuildPrograms(f)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := mimdloop.Simulate(g, p, mimdloop.MachineConfig{Override: true, OverrideCost: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  scheduled with k=%d -> Sp %.1f%%\n", est, sp(stats.Makespan))
	}
}
