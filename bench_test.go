// Benchmarks, one per table and figure of the paper's evaluation plus the
// DESIGN.md ablations. Each benchmark regenerates its artifact end to end
// (schedule + lowering + simulated execution) and reports the headline
// number via b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. cmd/paperbench prints the same artifacts in
// human-readable form.
package mimdloop_test

import (
	"testing"

	"mimdloop/internal/classify"
	"mimdloop/internal/core"
	"mimdloop/internal/experiments"
	"mimdloop/internal/workload"
)

// BenchmarkFig1Classification regenerates the Figure 1 example: the O(m)
// Flow-in/Cyclic/Flow-out partition.
func BenchmarkFig1Classification(b *testing.B) {
	g := workload.Figure1()
	for i := 0; i < b.N; i++ {
		r := classify.Partition(g)
		if len(r.Cyclic) != 4 {
			b.Fatalf("cyclic = %d, want 4", len(r.Cyclic))
		}
	}
}

// BenchmarkFig3Pattern regenerates Figure 3: pattern emergence on the
// all-Cyclic seven-node loop at k=1.
func BenchmarkFig3Pattern(b *testing.B) {
	g := workload.Figure3()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := core.CyclicSchedAll(g, core.Options{Processors: 4, CommCost: 1})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.RatePerIteration()
	}
	b.ReportMetric(rate, "cycles/iter")
}

// BenchmarkFig7Schedule regenerates Figure 7(d,e): the full pipeline on the
// paper's headline loop (expect Sp = 40% vs paper 40%).
func BenchmarkFig7Schedule(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.Figure7(100)
		if err != nil {
			b.Fatal(err)
		}
		sp = c.OursSp
	}
	b.ReportMetric(sp, "Sp%")
	b.ReportMetric(40, "paperSp%")
}

// BenchmarkFig8Doacross regenerates Figure 8: DOACROSS (natural and
// optimally reordered) gains nothing on the Figure 7 loop.
func BenchmarkFig8Doacross(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(100)
		if err != nil {
			b.Fatal(err)
		}
		sp = r.ReorderedSp
	}
	b.ReportMetric(sp, "Sp%")
	b.ReportMetric(0, "paperSp%")
}

// BenchmarkFig9Cytron regenerates the Figure 9/10 [Cytron86] example
// (paper: ours 72.7% vs DOACROSS 31.8%).
func BenchmarkFig9Cytron(b *testing.B) {
	var ours, da float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.Figure9(100)
		if err != nil {
			b.Fatal(err)
		}
		ours, da = c.OursSp, c.DoacrossSp
	}
	b.ReportMetric(ours, "Sp%")
	b.ReportMetric(da, "doacrossSp%")
}

// BenchmarkFig11Livermore regenerates Figure 11 (paper: 49.4% vs 12.6%).
func BenchmarkFig11Livermore(b *testing.B) {
	var ours, da float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.Figure11(100)
		if err != nil {
			b.Fatal(err)
		}
		ours, da = c.OursSp, c.DoacrossSp
	}
	b.ReportMetric(ours, "Sp%")
	b.ReportMetric(da, "doacrossSp%")
}

// BenchmarkFig12Elliptic regenerates Figure 12 (paper: 30.9% vs 0%).
func BenchmarkFig12Elliptic(b *testing.B) {
	var ours, da float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.Figure12(100)
		if err != nil {
			b.Fatal(err)
		}
		ours, da = c.OursSp, c.DoacrossSp
	}
	b.ReportMetric(ours, "Sp%")
	b.ReportMetric(da, "doacrossSp%")
}

// BenchmarkTable1a regenerates Table 1(a): the 25 random loops under
// mm = 1, 3, 5 with k = 3 (paper means: ours 47.4/39.1/30.3, DOACROSS
// 16.3/13.1/9.5).
func BenchmarkTable1a(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(25, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OursMean[0], "oursSp%mm1")
	b.ReportMetric(res.OursMean[2], "oursSp%mm5")
	b.ReportMetric(res.DoacrossMean[0], "doacrossSp%mm1")
}

// BenchmarkTable1b regenerates Table 1(b): the speedup factors over
// DOACROSS, whose growth under fluctuation is the paper's robustness
// headline (paper: 2.9 -> 3.0 -> 3.3).
func BenchmarkTable1b(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(25, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Factor[0], "factor-mm1")
	b.ReportMetric(res.Factor[1], "factor-mm3")
	b.ReportMetric(res.Factor[2], "factor-mm5")
}

// BenchmarkAblationKEstimate (A1): schedule quality as the compile-time
// communication estimate diverges from the machine's true cost.
func BenchmarkAblationKEstimate(b *testing.B) {
	g := workload.Figure7().Graph
	var worst, best float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationKEstimate(g, []int{0, 1, 2, 3, 5, 7}, 3, 100)
		if err != nil {
			b.Fatal(err)
		}
		worst, best = rows[0].Sp, rows[0].Sp
		for _, r := range rows {
			if r.Sp < worst {
				worst = r.Sp
			}
			if r.Sp > best {
				best = r.Sp
			}
		}
	}
	b.ReportMetric(best, "bestSp%")
	b.ReportMetric(worst, "worstSp%")
}

// BenchmarkAblationGapFill (A2): gap-filling vs append-only placement.
func BenchmarkAblationGapFill(b *testing.B) {
	g, err := workload.Random(workload.PaperSpec, 1)
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.RateRow
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationPlacement(g, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "gapfill-cyc/iter")
	b.ReportMetric(rows[1].Rate, "append-cyc/iter")
}

// BenchmarkAblationQueueOrder (A3): ready-queue ordering policies.
func BenchmarkAblationQueueOrder(b *testing.B) {
	g, err := workload.Random(workload.PaperSpec, 2)
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.RateRow
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationQueueOrder(g, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "iterrank-cyc/iter")
	b.ReportMetric(rows[1].Rate, "fifo-cyc/iter")
}

// BenchmarkAblationProcs (A4): processor-count sweep.
func BenchmarkAblationProcs(b *testing.B) {
	g, err := workload.Random(workload.PaperSpec, 3)
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.RateRow
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationProcessors(g, 3, []int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "p2-cyc/iter")
	b.ReportMetric(rows[len(rows)-1].Rate, "p16-cyc/iter")
}

// BenchmarkAblationPerfectPipelining (A5): the k=0 idealized pattern
// against communication-aware schedules.
func BenchmarkAblationPerfectPipelining(b *testing.B) {
	var rows []experiments.RateRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationPerfectPipelining([]int{0, 1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "k0-cyc/iter")
	b.ReportMetric(rows[len(rows)-1].Rate, "k4-cyc/iter")
}

// BenchmarkAblationCommModel (A6): finish+k vs the overlapped start+k
// availability reading.
func BenchmarkAblationCommModel(b *testing.B) {
	g := workload.Figure7().Graph
	var rows []experiments.RateRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationCommModel(g, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "finishk-cyc/iter")
	b.ReportMetric(rows[1].Rate, "startk-cyc/iter")
}
