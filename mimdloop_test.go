package mimdloop_test

import (
	"math"
	"strings"
	"testing"

	"mimdloop"
)

// TestPublicAPIEndToEnd drives the whole library through the public facade
// only: compile source, classify, schedule, lower, simulate, execute with
// goroutines, verify values, and render both presentation formats.
func TestPublicAPIEndToEnd(t *testing.T) {
	compiled, err := mimdloop.CompileLoop(`
		loop demo(N = 40) {
		    A[i] = A[i-1] + U[i]
		    B[i] = A[i] * 2.0
		    C[i] = C[i-1] + B[i-1]
		}`)
	if err != nil {
		t.Fatal(err)
	}
	g := compiled.Graph

	cls := mimdloop.Classify(g)
	if cls.IsDOALL() {
		t.Fatal("recurrences classified DOALL")
	}
	for _, v := range cls.Cyclic {
		if cls.Of[v] != mimdloop.Cyclic {
			t.Fatal("classification labels inconsistent")
		}
	}

	const iters = 40
	ls, err := mimdloop.ScheduleLoop(g, mimdloop.Options{Processors: 2, CommCost: 1}, iters)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Full.Validate(true); err != nil {
		t.Fatal(err)
	}

	progs, err := mimdloop.BuildPrograms(ls.Full)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mimdloop.Simulate(g, progs, mimdloop.MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan <= 0 || stats.Makespan > ls.Full.Makespan() {
		t.Fatalf("simulated makespan %d vs static %d", stats.Makespan, ls.Full.Makespan())
	}

	got, err := mimdloop.Execute(g, progs, compiled)
	if err != nil {
		t.Fatal(err)
	}
	want := compiled.Interpret(iters)
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9*math.Max(1, math.Abs(w)) {
			t.Fatalf("value %+v = %v, want %v", k, got[k], w)
		}
	}

	if s := mimdloop.Gantt(ls.Full, 10); !strings.Contains(s, "PE0") {
		t.Fatalf("Gantt: %q", s)
	}
	code, err := mimdloop.Pseudocode(ls)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "PARBEGIN") {
		t.Fatalf("Pseudocode: %q", code)
	}
}

func TestPublicGraphBuilder(t *testing.T) {
	b := mimdloop.NewGraphBuilder()
	x := b.AddNode("X", 1)
	y := b.AddNode("Y", 1)
	b.AddEdge(x, y, 0)
	b.AddEdge(y, x, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mimdloop.CyclicSched(g, mimdloop.Options{Processors: 2, CommCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern == nil {
		t.Fatal("no pattern")
	}
	if _, err := mimdloop.NewGraph(nil, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPublicDoacrossAndSequential(t *testing.T) {
	g := mimdloop.Figure7Loop().Graph
	n := 20
	da, err := mimdloop.Doacross(g, mimdloop.DoacrossOptions{MaxProcessors: 4, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	seq := mimdloop.SequentialSchedule(g, mimdloop.Timing{CommCost: 2}, n)
	if da.Schedule.Makespan() > seq.Makespan() {
		t.Fatalf("DOACROSS %d worse than sequential %d", da.Schedule.Makespan(), seq.Makespan())
	}
	greedy, err := mimdloop.GreedySchedule(g, mimdloop.Options{Processors: 2, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Makespan() >= seq.Makespan() {
		t.Fatalf("greedy %d not better than sequential %d", greedy.Makespan(), seq.Makespan())
	}
}

func TestPublicWorkloads(t *testing.T) {
	if g := mimdloop.Livermore18Loop().Graph; g.N() != 29 {
		t.Fatalf("LFK18 nodes = %d", g.N())
	}
	if g := mimdloop.EllipticLoop().Graph; g.N() != 34 {
		t.Fatalf("elliptic nodes = %d", g.N())
	}
	g, err := mimdloop.RandomCyclicLoop(5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCycle() {
		t.Fatal("random loop has no cycle")
	}
}

func TestPublicExecuteSequentialMatchesMixSemantics(t *testing.T) {
	g := mimdloop.Figure7Loop().Graph
	vals := mimdloop.ExecuteSequential(g, mimdloop.MixSemantics{}, 5)
	if len(vals) != 5*g.N() {
		t.Fatalf("values = %d", len(vals))
	}
}

func TestPublicExecBackends(t *testing.T) {
	for name, be := range map[string]mimdloop.ExecBackend{
		"sim": mimdloop.SimBackend(), "gort": mimdloop.GoroutineBackend(),
	} {
		if be.Name() != name {
			t.Fatalf("backend %q names itself %q", name, be.Name())
		}
		got, err := mimdloop.ExecBackendFor(name)
		if err != nil || got.Name() != name {
			t.Fatalf("ExecBackendFor(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := mimdloop.ExecBackendFor("tpu"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if obj, err := mimdloop.ParseEvalObjective("worst"); err != nil || obj != mimdloop.EvalWorst {
		t.Fatalf("ParseEvalObjective: %v, %v", obj, err)
	}

	// A goroutine-backend measured tune through the public API: the
	// winner carries wall-clock stats tagged with the backend identity.
	g := mimdloop.Figure7Loop().Graph
	res, err := mimdloop.AutoTune(g, 40, mimdloop.TuneOptions{
		Processors: []int{1, 2},
		CommCosts:  []int{2},
		Evaluator: &mimdloop.MeasuredEvaluator{
			Trials:    2,
			Backend:   mimdloop.GoroutineBackend(),
			Objective: mimdloop.EvalWorst,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "gort" {
		t.Fatalf("tune backend echo %q", res.Backend)
	}
	m := res.Best.Score.Measured
	if m == nil || m.Backend != "gort" || m.Trials != 2 || m.MakespanMin <= 0 {
		t.Fatalf("winner's measured stats: %+v", m)
	}
}

func TestPseudocodeWithoutPattern(t *testing.T) {
	// DOALL loop: no pattern, Pseudocode reports ErrNoPattern.
	c, err := mimdloop.CompileLoop(`loop d(N=4) { A[i] = U[i] }`)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := mimdloop.ScheduleLoop(c.Graph, mimdloop.Options{Processors: 2, CommCost: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mimdloop.Pseudocode(ls); err == nil {
		t.Fatal("Pseudocode succeeded without a pattern")
	}
}
