package mimdloop_test

import (
	"fmt"

	"mimdloop"
)

// ExampleScheduleLoop is the README quickstart: compile the Figure 7 loop
// and schedule it on 2 processors with communication cost 2.
func ExampleScheduleLoop() {
	c := mimdloop.MustCompileLoop(`
	    loop f(N = 100) {
	        A[i] = A[i-1] + E[i-1]
	        B[i] = A[i]
	        C[i] = B[i]
	        D[i] = D[i-1] + C[i-1]
	        E[i] = D[i]
	    }`)
	ls, err := mimdloop.ScheduleLoop(c.Graph, mimdloop.Options{Processors: 2, CommCost: 2}, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady state: %.1f cycles/iteration\n", ls.RatePerIteration())
	// Output: steady state: 3.0 cycles/iteration
}

// ExamplePipeline schedules the same loop twice through a Pipeline: the
// second request is answered from the content-addressed plan cache.
func ExamplePipeline() {
	p := mimdloop.NewPipeline(mimdloop.PipelineConfig{})
	g := mimdloop.Figure7Loop().Graph
	opts := mimdloop.Options{Processors: 2, CommCost: 2}

	_, hit1, err := p.Schedule(g, opts, 100)
	if err != nil {
		panic(err)
	}
	plan, hit2, err := p.Schedule(g, opts, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first request cached: %v\n", hit1)
	fmt.Printf("second request cached: %v\n", hit2)
	fmt.Printf("rate: %.1f cycles/iteration on %d processors\n", plan.Rate(), plan.Procs())
	// Output:
	// first request cached: false
	// second request cached: true
	// rate: 3.0 cycles/iteration on 2 processors
}
