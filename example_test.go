package mimdloop_test

import (
	"fmt"
	"os"

	"mimdloop"
)

// ExampleScheduleLoop is the README quickstart: compile the Figure 7 loop
// and schedule it on 2 processors with communication cost 2.
func ExampleScheduleLoop() {
	c := mimdloop.MustCompileLoop(`
	    loop f(N = 100) {
	        A[i] = A[i-1] + E[i-1]
	        B[i] = A[i]
	        C[i] = B[i]
	        D[i] = D[i-1] + C[i-1]
	        E[i] = D[i]
	    }`)
	ls, err := mimdloop.ScheduleLoop(c.Graph, mimdloop.Options{Processors: 2, CommCost: 2}, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady state: %.1f cycles/iteration\n", ls.RatePerIteration())
	// Output: steady state: 3.0 cycles/iteration
}

// ExampleAutoTune searches a processors × comm-cost grid for the
// cheapest plan within 5% of the best achievable rate: the Figure 7 loop
// reaches its steady-state optimum of 3 cycles/iteration already on 2
// processors, so min_procs refuses to pay for more.
func ExampleAutoTune() {
	g := mimdloop.Figure7Loop().Graph
	res, err := mimdloop.AutoTune(g, 100, mimdloop.TuneOptions{
		Processors: []int{1, 2, 3, 4},
		CommCosts:  []int{2},
		Objective:  mimdloop.ObjectiveMinProcs,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("evaluated %d grid points\n", res.Evaluated)
	fmt.Printf("best: p=%d k=%d -> %.1f cycles/iteration on %d processors\n",
		res.Best.Point.Processors, res.Best.Point.CommCost, res.Best.Rate, res.Best.Procs)
	// Output:
	// evaluated 4 grid points
	// best: p=2 k=2 -> 3.0 cycles/iteration on 2 processors
}

// ExampleAutoTune_grain adds the chunking-grain axis for a small loop:
// each grain fuses that many consecutive iterations into one scheduled
// chunk, so only chunk-boundary dependences pay the communication cost.
// On a stream chain the rate per original iteration falls as k is
// amortized across the chunk, then rises again when over-fusing
// serializes too much work per chunk — the sweet spot is why this is an
// axis to tune, not a constant. A SerialThreshold would instead skip
// the grid entirely when the loop's total sequential work is too small
// to pay for any messaging.
func ExampleAutoTune_grain() {
	c := mimdloop.MustCompileLoop(`
	    loop chain(N = 64) {
	        A[i] = A[i-1] + U[i]
	        B[i] = B[i-1] + A[i]
	        C[i] = C[i-1] + B[i]
	        D[i] = D[i-1] + C[i]
	    }`)
	res, err := mimdloop.AutoTune(c.Graph, 64, mimdloop.TuneOptions{
		Processors: []int{2},
		CommCosts:  []int{2},
		Grains:     []int{1, 4, 8},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range res.Results {
		fmt.Printf("grain %d: %.2f cycles/iteration\n", r.Point.Grain, r.Rate)
	}
	fmt.Printf("best: grain %d\n", res.Best.Point.Grain)
	// Output:
	// grain 1: 3.00 cycles/iteration
	// grain 4: 2.00 cycles/iteration
	// grain 8: 2.25 cycles/iteration
	// best: grain 4
}

// ExampleNewMeasuredEvaluator tunes the Figure 7 loop by measured Sp:
// every grid point is executed on the simulated MIMD machine for 5
// seeded trials under communication fluctuation (mm = 3), and the
// objective ranks what the machine actually delivered instead of the
// compile-time scheduled rate.
func ExampleNewMeasuredEvaluator() {
	g := mimdloop.Figure7Loop().Graph
	res, err := mimdloop.AutoTune(g, 100, mimdloop.TuneOptions{
		Processors: []int{1, 2, 3, 4},
		CommCosts:  []int{1, 2},
		Evaluator:  mimdloop.NewMeasuredEvaluator(5, 3, 1),
	})
	if err != nil {
		panic(err)
	}
	m := res.Best.Score.Measured
	fmt.Printf("evaluator: %s\n", res.Evaluator)
	fmt.Printf("best: p=%d k=%d, measured Sp %.1f%% over %d trials\n",
		res.Best.Point.Processors, res.Best.Point.CommCost, m.SpMean, m.Trials)
	// Output:
	// evaluator: measured
	// best: p=2 k=1, measured Sp 33.7% over 5 trials
}

// ExamplePipeline_batch schedules several loops at once with per-item
// error isolation: the broken loop reports its own error while its
// neighbours still come back with plans.
func ExamplePipeline_batch() {
	p := mimdloop.NewPipeline(mimdloop.PipelineConfig{})
	results := p.Batch([]mimdloop.BatchItem{
		{Source: "loop a(N = 50) {\n A[i] = A[i-1] + U[i]\n}"},
		{Source: "loop broken("},
		{Source: "loop c(N = 50) {\n X[i] = X[i-2] + Y[i-1]\n Y[i] = X[i]\n}"},
	}, mimdloop.BatchOptions{})
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("item %d: failed to schedule\n", r.Index)
			continue
		}
		fmt.Printf("item %d: loop %s at %.1f cycles/iteration\n", r.Index, r.Loop, r.Plan.Rate())
	}
	// Output:
	// item 0: loop a at 1.0 cycles/iteration
	// item 1: failed to schedule
	// item 2: loop c at 2.0 cycles/iteration
}

// ExamplePipeline schedules the same loop twice through a Pipeline: the
// second request is answered from the content-addressed plan cache.
func ExamplePipeline() {
	p := mimdloop.NewPipeline(mimdloop.PipelineConfig{})
	g := mimdloop.Figure7Loop().Graph
	opts := mimdloop.Options{Processors: 2, CommCost: 2}

	_, hit1, err := p.Schedule(g, opts, 100)
	if err != nil {
		panic(err)
	}
	plan, hit2, err := p.Schedule(g, opts, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first request cached: %v\n", hit1)
	fmt.Printf("second request cached: %v\n", hit2)
	fmt.Printf("rate: %.1f cycles/iteration on %d processors\n", plan.Rate(), plan.Procs())
	// Output:
	// first request cached: false
	// second request cached: true
	// rate: 3.0 cycles/iteration on 2 processors
}

// ExampleNewTieredStore shows restart-durable scheduling: two pipelines
// over the same store directory, where the second serves the first's
// plan from disk instead of rescheduling.
func ExampleNewTieredStore() {
	dir, err := os.MkdirTemp("", "plans")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	g := mimdloop.Figure7Loop().Graph
	opts := mimdloop.Options{Processors: 2, CommCost: 2}

	open := func() *mimdloop.Pipeline {
		disk, err := mimdloop.NewDiskStore(mimdloop.DiskStoreConfig{Dir: dir})
		if err != nil {
			panic(err)
		}
		return mimdloop.NewPipeline(mimdloop.PipelineConfig{
			Store: mimdloop.NewTieredStore(mimdloop.NewMemStore(mimdloop.MemStoreConfig{}), disk),
		})
	}

	p1 := open()
	if _, hit, err := p1.Schedule(g, opts, 100); err != nil {
		panic(err)
	} else {
		fmt.Printf("first process served from store: %v\n", hit)
	}
	p1.Close()

	p2 := open() // a "restarted" process: cold memory, warm disk
	plan, hit, err := p2.Schedule(g, opts, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("second process served from store: %v\n", hit)
	fmt.Printf("rescheduled: %d, rate: %.1f cycles/iteration\n",
		p2.Stats().Computes, plan.Rate())
	p2.Close()
	// Output:
	// first process served from store: false
	// second process served from store: true
	// rescheduled: 0, rate: 3.0 cycles/iteration
}
