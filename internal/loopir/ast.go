package loopir

import (
	"fmt"
	"strings"
)

// Loop is a parsed single-loop program.
type Loop struct {
	Name string
	// N is the default iteration count from the header (0 if omitted).
	N     int
	Stmts []*Stmt
}

// Stmt is one (possibly guarded) single-assignment statement.
type Stmt struct {
	Target  string // array being assigned
	Cond    *Expr  // guard, nil when unconditional
	RHS     *Expr
	Latency int // estimated execution time of the statement node
	Line    int
}

// ExprKind discriminates expression nodes.
type ExprKind int8

const (
	// ExprNum is a literal constant.
	ExprNum ExprKind = iota
	// ExprRef is an array reference Name[i-Offset].
	ExprRef
	// ExprParam is a scalar loop-invariant parameter.
	ExprParam
	// ExprBin is a binary operation; Op one of + - * / < > l g e n
	// (l: <=, g: >=, e: ==, n: !=).
	ExprBin
	// ExprNeg is unary negation.
	ExprNeg
)

// Expr is an expression tree node.
type Expr struct {
	Kind   ExprKind
	Num    float64
	Name   string
	Offset int
	Op     byte
	L, R   *Expr
}

func (e *Expr) String() string {
	switch e.Kind {
	case ExprNum:
		return fmt.Sprintf("%g", e.Num)
	case ExprRef:
		return e.Name + renderOffset(e.Offset)
	case ExprParam:
		return e.Name
	case ExprNeg:
		return "-" + e.L.String()
	case ExprBin:
		op := string(e.Op)
		switch e.Op {
		case 'l':
			op = "<="
		case 'g':
			op = ">="
		case 'e':
			op = "=="
		case 'n':
			op = "!="
		}
		return fmt.Sprintf("(%s %s %s)", e.L.String(), op, e.R.String())
	}
	return "?"
}

// walkRefs visits every array reference in the expression.
func (e *Expr) walkRefs(fn func(name string, offset int)) {
	switch e.Kind {
	case ExprRef:
		fn(e.Name, e.Offset)
	case ExprBin:
		e.L.walkRefs(fn)
		e.R.walkRefs(fn)
	case ExprNeg:
		e.L.walkRefs(fn)
	}
}

// String renders the loop back to parseable source.
func (l *Loop) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %s", l.Name)
	if l.N > 0 {
		fmt.Fprintf(&sb, "(N = %d)", l.N)
	}
	sb.WriteString(" {\n")
	for _, s := range l.Stmts {
		sb.WriteString("    ")
		if s.Cond != nil {
			fmt.Fprintf(&sb, "if %s ", s.Cond.String())
		}
		fmt.Fprintf(&sb, "%s[i] = %s", s.Target, s.RHS.String())
		if s.Latency != 1 {
			fmt.Fprintf(&sb, " @lat(%d)", s.Latency)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Defined reports whether name is assigned by some statement.
func (l *Loop) Defined(name string) bool {
	for _, s := range l.Stmts {
		if s.Target == name {
			return true
		}
	}
	return false
}
