// Package loopir is a miniature loop-language front end for the scheduler:
// it parses single-loop programs whose statements assign array elements with
// constant iteration offsets, analyzes flow dependences to build the data
// dependence graph the paper's algorithms consume, if-converts guarded
// assignments into data dependences [AlKe83], and interprets loops
// sequentially to provide ground truth for the parallel runtimes.
//
// Grammar (informal):
//
//	loop   := "loop" IDENT [ "(" "N" "=" INT ")" ] "{" stmt* "}"
//	stmt   := [ "if" "(" cond ")" ] IDENT "[" "i" "]" "=" expr [ "@lat" "(" INT ")" ]
//	cond   := expr relop expr            relop: < > <= >= == !=
//	expr   := term (("+"|"-") term)*
//	term   := factor (("*"|"/") factor)*
//	factor := NUMBER | IDENT | IDENT "[" "i" [ "-" INT ] "]" | "(" expr ")" | "-" factor
//
// An identifier with brackets is an array reference; without brackets it is
// a scalar loop-invariant parameter. Arrays assigned in the loop are
// computed; arrays only read are external inputs. Each array may be
// assigned at most once per iteration (single assignment), the standard
// restriction for dependence-distance analysis with constant offsets.
package loopir

import (
	"fmt"
	"unicode"
)

type tokKind int8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single/double-char operator or delimiter, in text
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes the whole input up front; loop sources are tiny.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, text: ""})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.advance()
			}
			l.emitAt(token{kind: tokIdent, text: l.src[start:l.pos]}, start)
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			start := l.pos
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					l.advance()
					continue
				}
				if !unicode.IsDigit(rune(ch)) {
					break
				}
				l.advance()
			}
			text := l.src[start:l.pos]
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return nil, fmt.Errorf("loopir: line %d: bad number %q", l.line, text)
			}
			l.emitAt(token{kind: tokNumber, text: text, num: f}, start)
		default:
			start := l.pos
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "==", "!=":
				l.advance()
				l.advance()
				l.emitAt(token{kind: tokPunct, text: two}, start)
				continue
			}
			switch c {
			case '=', '+', '-', '*', '/', '(', ')', '[', ']', '{', '}', '<', '>', '@', ',':
				l.advance()
				l.emitAt(token{kind: tokPunct, text: string(c)}, start)
			default:
				return nil, fmt.Errorf("loopir: line %d col %d: unexpected character %q", l.line, l.col, c)
			}
		}
	}
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) emit(t token) {
	t.line = l.line
	t.col = l.col
	l.toks = append(l.toks, t)
}

func (l *lexer) emitAt(t token, start int) {
	// Recompute line/col of start for error messages.
	line, col := 1, 1
	for i := 0; i < start; i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	t.line = line
	t.col = col
	l.toks = append(l.toks, t)
}

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// renderOffset prints the [i-k] suffix of a reference.
func renderOffset(off int) string {
	if off == 0 {
		return "[i]"
	}
	return fmt.Sprintf("[i-%d]", off)
}
