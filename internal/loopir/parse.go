package loopir

import "fmt"

// Parse parses a loop program.
func Parse(src string) (*Loop, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	loop, err := p.parseLoop()
	if err != nil {
		return nil, err
	}
	if err := validate(loop); err != nil {
		return nil, err
	}
	return loop, nil
}

// MustParse is Parse for statically-known-good sources; it panics on error.
func MustParse(src string) *Loop {
	l, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return l
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("loopir: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(text string) (token, error) {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return t, p.errf(t, "expected %q, found %s", text, t.describe())
	}
	return t, nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %s", t.describe())
	}
	return t, nil
}

func (p *parser) parseLoop() (*Loop, error) {
	kw, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if kw.text != "loop" {
		return nil, p.errf(kw, `program must start with "loop", found %q`, kw.text)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	loop := &Loop{Name: name.text}
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		p.next()
		nTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if nTok.text != "N" {
			return nil, p.errf(nTok, `loop header parameter must be "N"`)
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		num := p.next()
		if num.kind != tokNumber || num.num != float64(int(num.num)) || num.num < 1 {
			return nil, p.errf(num, "N must be a positive integer")
		}
		loop.N = int(num.num)
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.peek().kind == tokPunct && p.peek().text == "}" {
			p.next()
			break
		}
		if p.atEOF() {
			return nil, p.errf(p.peek(), "unterminated loop body")
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		loop.Stmts = append(loop.Stmts, stmt)
	}
	if !p.atEOF() {
		return nil, p.errf(p.peek(), "trailing input after loop body")
	}
	return loop, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	stmt := &Stmt{Latency: 1, Line: p.peek().line}
	if p.peek().kind == tokIdent && p.peek().text == "if" {
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		stmt.Cond = cond
	}
	target, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Target = target.text
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	iv, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if iv.text != "i" {
		return nil, p.errf(iv, `assignment target index must be "i"`)
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	stmt.RHS = rhs
	if p.peek().kind == tokPunct && p.peek().text == "@" {
		p.next()
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if kw.text != "lat" {
			return nil, p.errf(kw, `only "@lat(n)" annotations are supported`)
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		num := p.next()
		if num.kind != tokNumber || num.num != float64(int(num.num)) || num.num < 1 {
			return nil, p.errf(num, "latency must be a positive integer")
		}
		stmt.Latency = int(num.num)
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseCond() (*Expr, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.next()
	var op byte
	switch {
	case t.kind != tokPunct:
		return nil, p.errf(t, "expected comparison operator, found %s", t.describe())
	case t.text == "<":
		op = '<'
	case t.text == ">":
		op = '>'
	case t.text == "<=":
		op = 'l'
	case t.text == ">=":
		op = 'g'
	case t.text == "==":
		op = 'e'
	case t.text == "!=":
		op = 'n'
	default:
		return nil, p.errf(t, "expected comparison operator, found %s", t.describe())
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ExprBin, Op: op, L: l, R: r}, nil
}

func (p *parser) parseExpr() (*Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPunct && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text[0]
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Expr{Kind: ExprBin, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (*Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPunct && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next().text[0]
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Expr{Kind: ExprBin, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (*Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return &Expr{Kind: ExprNum, Num: t.num}, nil
	case t.kind == tokPunct && t.text == "-":
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprNeg, L: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		if p.peek().kind == tokPunct && p.peek().text == "[" {
			p.next()
			iv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if iv.text != "i" {
				return nil, p.errf(iv, `array index must be "i" or "i-k"`)
			}
			offset := 0
			if p.peek().kind == tokPunct && p.peek().text == "-" {
				p.next()
				num := p.next()
				if num.kind != tokNumber || num.num != float64(int(num.num)) || num.num < 0 {
					return nil, p.errf(num, "offset must be a non-negative integer")
				}
				offset = int(num.num)
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprRef, Name: t.text, Offset: offset}, nil
		}
		return &Expr{Kind: ExprParam, Name: t.text}, nil
	default:
		return nil, p.errf(t, "expected expression, found %s", t.describe())
	}
}

// validate enforces single assignment and self-consistency rules that the
// dependence analysis relies on.
func validate(l *Loop) error {
	if len(l.Stmts) == 0 {
		return fmt.Errorf("loopir: loop %s has no statements", l.Name)
	}
	defined := map[string]int{}
	for _, s := range l.Stmts {
		if prev, dup := defined[s.Target]; dup {
			return fmt.Errorf("loopir: line %d: %s assigned twice (first at line %d); single assignment required",
				s.Line, s.Target, prev)
		}
		defined[s.Target] = s.Line
	}
	// A same-iteration self reference (X[i] in the RHS of X[i] = ...)
	// would be a zero-distance self loop.
	for _, s := range l.Stmts {
		bad := false
		s.RHS.walkRefs(func(name string, off int) {
			if name == s.Target && off == 0 {
				bad = true
			}
		})
		if s.Cond != nil {
			s.Cond.walkRefs(func(name string, off int) {
				if name == s.Target && off == 0 {
					bad = true
				}
			})
		}
		if bad {
			return fmt.Errorf("loopir: line %d: %s[i] used in its own definition", s.Line, s.Target)
		}
	}
	return nil
}
