package loopir

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mimdloop/internal/graph"
)

// randomLoopSource generates a random, guaranteed-valid loop program.
func randomLoopSource(rng *rand.Rand) string {
	n := 1 + rng.Intn(8)
	var sb strings.Builder
	sb.WriteString("loop fuzz {\n")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%d", i)
		// Guard some statements.
		if i > 0 && rng.Intn(4) == 0 {
			ref := fmt.Sprintf("v%d", rng.Intn(i))
			fmt.Fprintf(&sb, "  if (%s[i] > 0.5) ", ref)
		}
		fmt.Fprintf(&sb, "%s[i] = ", name)
		terms := 1 + rng.Intn(3)
		for t := 0; t < terms; t++ {
			if t > 0 {
				sb.WriteString([]string{" + ", " - ", " * "}[rng.Intn(3)])
			}
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&sb, "%.2f", rng.Float64()*4-2)
			case 1: // previously-defined array, same iteration
				if i == 0 {
					fmt.Fprintf(&sb, "IN[i-%d]", rng.Intn(2))
				} else {
					fmt.Fprintf(&sb, "v%d[i]", rng.Intn(i))
				}
			case 2: // any array, previous iterations
				fmt.Fprintf(&sb, "v%d[i-%d]", rng.Intn(n), 1+rng.Intn(2))
			default:
				sb.WriteString("p")
			}
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " @lat(%d)", 1+rng.Intn(3))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func TestPropertyParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomLoopSource(rng)
		l1, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, src)
			return false
		}
		l2, err := Parse(l1.String())
		if err != nil {
			t.Logf("seed %d round trip: %v\n%s", seed, err, l1.String())
			return false
		}
		if len(l1.Stmts) != len(l2.Stmts) {
			return false
		}
		for i := range l1.Stmts {
			a, b := l1.Stmts[i], l2.Stmts[i]
			if a.Target != b.Target || a.Latency != b.Latency ||
				a.RHS.String() != b.RHS.String() {
				return false
			}
			if (a.Cond == nil) != (b.Cond == nil) {
				return false
			}
			if a.Cond != nil && a.Cond.String() != b.Cond.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompileAndInterpretTotal(t *testing.T) {
	// Every generated program compiles to a valid graph, and the
	// interpreter is deterministic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomLoopSource(rng)
		c1, err := Compile(MustParse(src))
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, src)
			return false
		}
		c2, err := Compile(MustParse(src))
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(8)
		v1 := c1.Interpret(n)
		v2 := c2.Interpret(n)
		if len(v1) != len(v2) || len(v1) != n*c1.Graph.N() {
			return false
		}
		for k, a := range v1 {
			b := v2[k]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGuardedStatementsHaveSelfLoop(t *testing.T) {
	// If-conversion must introduce the distance-1 self dependence (the
	// select's false leg) for every guarded statement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomLoopSource(rng)
		c, err := Compile(MustParse(src))
		if err != nil {
			return false
		}
		for si, s := range c.Loop.Stmts {
			if s.Cond == nil {
				continue
			}
			node := c.AssignNode[si]
			found := false
			for _, ei := range c.Graph.In(node) {
				e := c.Graph.Edges[ei]
				if e.From == node && e.Distance == 1 {
					found = true
				}
			}
			if !found {
				return false
			}
			// And the condition node feeds the select at distance 0.
			condFeeds := false
			for _, ei := range c.Graph.In(node) {
				e := c.Graph.Edges[ei]
				if e.From == c.CondNode[si] && e.Distance == 0 {
					condFeeds = true
				}
			}
			if !condFeeds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryEdgeNaming(t *testing.T) {
	c := MustCompile(`loop b { X[i] = X[i-2] + 1.0 }`)
	c.Initial = func(name string, idx int) float64 {
		if name != "X" {
			t.Fatalf("boundary asked for %q", name)
		}
		return float64(idx)
	}
	vals := c.Interpret(2)
	// X[0] = X[-2] + 1 = -2 + 1; X[1] = X[-1] + 1 = 0.
	if got := vals[graph.InstanceID{Node: 0, Iter: 0}]; got != -1 {
		t.Fatalf("X[0] = %v, want -1", got)
	}
	if got := vals[graph.InstanceID{Node: 0, Iter: 1}]; got != 0 {
		t.Fatalf("X[1] = %v, want 0", got)
	}
}
