package loopir

import (
	"math"
	"strings"
	"testing"

	"mimdloop/internal/classify"
	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/mimdrt"
	"mimdloop/internal/program"
)

const fig7Src = `
// Paper Figure 7(a).
loop fig7(N = 100) {
    A[i] = A[i-1] + E[i-1]
    B[i] = A[i]
    C[i] = B[i]
    D[i] = D[i-1] + C[i-1]
    E[i] = D[i]
}
`

func TestParseFigure7(t *testing.T) {
	l, err := Parse(fig7Src)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "fig7" || l.N != 100 || len(l.Stmts) != 5 {
		t.Fatalf("parsed %s N=%d stmts=%d", l.Name, l.N, len(l.Stmts))
	}
	if l.Stmts[0].Target != "A" || l.Stmts[0].Latency != 1 {
		t.Fatalf("stmt 0: %+v", l.Stmts[0])
	}
	if !l.Defined("E") || l.Defined("Z") {
		t.Fatal("Defined misreports")
	}
	// Round trip: String() must re-parse to the same shape.
	l2, err := Parse(l.String())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, l.String())
	}
	if len(l2.Stmts) != len(l.Stmts) {
		t.Fatalf("round trip changed statement count")
	}
}

func TestCompileFigure7Graph(t *testing.T) {
	c := MustCompile(fig7Src)
	g := c.Graph
	if g.N() != 5 {
		t.Fatalf("nodes = %d, want 5", g.N())
	}
	// Expected edges: A->A(1), E->A(1), A->B(0), B->C(0), D->D(1),
	// C->D(1), D->E(0).
	if len(g.Edges) != 7 {
		t.Fatalf("edges = %d, want 7:\n%s", len(g.Edges), g.Format())
	}
	cls := classify.Partition(g)
	if len(cls.Cyclic) != 5 {
		t.Fatalf("classification = %v, want all Cyclic", cls)
	}
	// Latency annotations default to 1.
	for _, nd := range g.Nodes {
		if nd.Latency != 1 {
			t.Fatalf("latency of %s = %d", nd.Name, nd.Latency)
		}
	}
}

func TestLatencyAnnotation(t *testing.T) {
	c := MustCompile(`loop l { X[i] = X[i-1] * 2.0 @lat(3) }`)
	if c.Graph.Nodes[0].Latency != 3 {
		t.Fatalf("latency = %d, want 3", c.Graph.Nodes[0].Latency)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"empty", ``, "loop"},
		{"no body", `loop l {}`, "no statements"},
		{"double assign", `loop l { X[i] = 1.0
			X[i] = 2.0 }`, "twice"},
		{"self zero", `loop l { X[i] = X[i] + 1.0 }`, "own definition"},
		{"bad index", `loop l { X[j] = 1.0 }`, `"i"`},
		{"bad offset", `loop l { X[i] = X[i-1.5] }`, "offset"},
		{"bad header", `loop l(M = 3) { X[i] = 1.0 }`, `"N"`},
		{"bad latency", `loop l { X[i] = 1.0 @lat(0) }`, "latency"},
		{"bad annotation", `loop l { X[i] = 1.0 @foo(1) }`, "@lat"},
		{"trailing", `loop l { X[i] = 1.0 } extra`, "trailing"},
		{"unterminated", `loop l { X[i] = 1.0`, "unterminated"},
		{"bad char", `loop l { X[i] = 1.0 ; }`, "unexpected character"},
		{"missing op", `loop l { if (X[i-1]) X[i] = 1.0 }`, "comparison"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestInterpretRecurrence(t *testing.T) {
	// X[i] = X[i-1] + 1 with Initial(X, -1) = v0: X[n-1] = v0 + n.
	c := MustCompile(`loop count { X[i] = X[i-1] + 1.0 }`)
	c.Initial = func(string, int) float64 { return 10 }
	vals := c.Interpret(5)
	got := vals[graph.InstanceID{Node: 0, Iter: 4}]
	if got != 15 {
		t.Fatalf("X[4] = %v, want 15", got)
	}
	final := c.FinalValues(vals, 5)
	if final["X"] != 15 {
		t.Fatalf("FinalValues = %v", final)
	}
}

func TestInterpretExpressions(t *testing.T) {
	c := MustCompile(`loop e { X[i] = (2.0 + 3.0) * 2.0 - 6.0 / 2.0
		Y[i] = -X[i] }`)
	vals := c.Interpret(1)
	if got := vals[graph.InstanceID{Node: 0, Iter: 0}]; got != 7 {
		t.Fatalf("X = %v, want 7", got)
	}
	if got := vals[graph.InstanceID{Node: 1, Iter: 0}]; got != -7 {
		t.Fatalf("Y = %v, want -7", got)
	}
}

func TestParamsAndInputs(t *testing.T) {
	c := MustCompile(`loop p { X[i] = alpha * U[i-1] }`)
	c.Param = func(name string) float64 { return 4 }
	c.Input = func(name string, idx int) float64 { return float64(idx) }
	vals := c.Interpret(3)
	// X[2] = 4 * U[1] = 4.
	if got := vals[graph.InstanceID{Node: 0, Iter: 2}]; got != 4 {
		t.Fatalf("X[2] = %v, want 4", got)
	}
	// No edges: U is external, alpha is a scalar.
	if len(c.Graph.Edges) != 0 {
		t.Fatalf("edges = %v, want none", c.Graph.Edges)
	}
}

func TestIfConversion(t *testing.T) {
	src := `loop cond {
		A[i] = A[i-1] + 1.0
		if (A[i] > 3.0) S[i] = S[i-1] + A[i]
	}`
	c := MustCompile(src)
	g := c.Graph
	// Nodes: A, S? (cond), S (select).
	if g.N() != 3 {
		t.Fatalf("nodes = %d, want 3:\n%s", g.N(), g.Format())
	}
	condNode := c.CondNode[1]
	if condNode < 0 {
		t.Fatal("guarded statement has no condition node")
	}
	if c.Info[condNode].Kind != NodeCond {
		t.Fatal("condition node mislabeled")
	}
	// Edges: A->A(1), A->S?(0), S?->S(0), S->S(1), A->S(0).
	if len(g.Edges) != 5 {
		t.Fatalf("edges = %d, want 5:\n%s", len(g.Edges), g.Format())
	}
	// Semantics: guard false keeps previous value.
	c.Initial = func(name string, idx int) float64 { return 0 }
	vals := c.Interpret(6)
	// A: 1,2,3,4,5,6. Guard A>3: false,false,false,true,true,true.
	// S: 0,0,0,4,9,15.
	sNode := c.AssignNode[1]
	want := []float64{0, 0, 0, 4, 9, 15}
	for i, w := range want {
		if got := vals[graph.InstanceID{Node: sNode, Iter: i}]; got != w {
			t.Fatalf("S[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestIfConvertedLoopSchedulesAndRuns(t *testing.T) {
	// End to end: guarded loop -> if-convert -> schedule -> programs ->
	// concurrent execution == interpreter.
	src := `loop guarded {
		A[i] = A[i-1] + 1.0
		B[i] = A[i] * 0.5
		if (B[i] > 2.0) S[i] = S[i-1] + B[i]
		T[i] = S[i] - B[i]
	}`
	c := MustCompile(src)
	n := 30
	ls, err := core.ScheduleLoop(c.Graph, core.Options{Processors: 2, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mimdrt.Run(c.Graph, progs, c)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Interpret(n)
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Fatalf("%+v = %v, want %v", k, got[k], w)
		}
	}
}

func TestFigure7EndToEndValues(t *testing.T) {
	c := MustCompile(fig7Src)
	n := 50
	res, err := core.CyclicSched(c.Graph, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(n)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mimdrt.Run(c.Graph, progs, c)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Interpret(n)
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-6*math.Max(1, math.Abs(w)) {
			t.Fatalf("%+v = %v, want %v", k, got[k], w)
		}
	}
}

func TestDivisionByZeroIsInf(t *testing.T) {
	c := MustCompile(`loop z { X[i] = 1.0 / 0.0 }`)
	vals := c.Interpret(1)
	if !math.IsInf(vals[graph.InstanceID{Node: 0, Iter: 0}], 1) {
		t.Fatal("1/0 not +Inf")
	}
}

func TestExprString(t *testing.T) {
	l := MustParse(`loop s { if (A[i-1] >= 2.0) X[i] = -A[i-2] * (p + 1.0) }`)
	s := l.Stmts[0]
	if got := s.Cond.String(); got != "(A[i-1] >= 2)" {
		t.Fatalf("cond = %q", got)
	}
	if got := s.RHS.String(); got != "(-A[i-2] * (p + 1))" {
		t.Fatalf("rhs = %q", got)
	}
}
