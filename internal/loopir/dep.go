package loopir

import (
	"fmt"
	"math"

	"mimdloop/internal/graph"
)

// NodeKind distinguishes the DDG nodes a compiled loop produces.
type NodeKind int8

const (
	// NodeAssign evaluates a statement's right-hand side (or, for guarded
	// statements, the if-converted select).
	NodeAssign NodeKind = iota
	// NodeCond evaluates a guard condition to 0/1. Introduced by
	// if-conversion [AlKe83]: control dependence becomes a data dependence
	// from the condition node to the select node.
	NodeCond
)

// NodeInfo describes one DDG node of a compiled loop.
type NodeInfo struct {
	Kind NodeKind
	// Stmt indexes Loop.Stmts.
	Stmt int
}

// Compiled couples a loop with its data dependence graph and enough
// metadata to evaluate nodes — it implements the runtime Semantics contract
// (Eval/Boundary) used by the goroutine executor and the interpreter.
type Compiled struct {
	Loop  *Loop
	Graph *graph.Graph
	// Info[v] describes graph node v.
	Info []NodeInfo
	// CondNode[s] is the condition node for guarded statement s (-1 none).
	CondNode []int
	// AssignNode[s] is the assign/select node for statement s.
	AssignNode []int

	// Initial supplies X[j] for j < 0 (loop-entry state). Defaults to a
	// deterministic function of the name and index.
	Initial func(name string, idx int) float64
	// Input supplies external (never-assigned) array values.
	Input func(name string, idx int) float64
	// Param supplies scalar parameter values.
	Param func(name string) float64

	// operand lookup: for node v, edgeValue maps (producer node, distance)
	// to the operand slot aligned with Graph.In(v).
	inEdges [][]graph.Edge
}

// Compile runs dependence analysis and if-conversion, producing the DDG:
//
//   - one NodeAssign per statement (latency from @lat);
//   - one NodeCond per guarded statement (latency 1), feeding its select;
//   - a flow edge for every reference X[i-c] to the statement defining X,
//     with distance c (deduplicated per (producer, distance));
//   - for guarded statements, an additional distance-1 self edge: the
//     if-converted select needs the previous value of its own target.
//
// References to arrays never assigned in the loop are external inputs and
// produce no edges.
func Compile(l *Loop) (*Compiled, error) {
	b := graph.NewBuilder()
	c := &Compiled{
		Loop:       l,
		CondNode:   make([]int, len(l.Stmts)),
		AssignNode: make([]int, len(l.Stmts)),
		Initial: func(name string, idx int) float64 {
			return float64(len(name))*0.35 + float64(idx)*0.21
		},
		Input: func(name string, idx int) float64 {
			return float64(len(name))*0.17 + float64(idx)*0.13
		},
		Param: func(name string) float64 {
			return 1 + float64(len(name))*0.5
		},
	}
	definer := map[string]int{} // array -> stmt index
	for si, s := range l.Stmts {
		definer[s.Target] = si
	}
	for si, s := range l.Stmts {
		c.CondNode[si] = -1
		if s.Cond != nil {
			c.CondNode[si] = b.AddNode(s.Target+"?", 1)
			c.Info = append(c.Info, NodeInfo{Kind: NodeCond, Stmt: si})
		}
		c.AssignNode[si] = b.AddNode(s.Target, s.Latency)
		c.Info = append(c.Info, NodeInfo{Kind: NodeAssign, Stmt: si})
	}

	addRefEdges := func(dst int, e *Expr, extra map[[2]int]bool) {
		e.walkRefs(func(name string, off int) {
			src, ok := definer[name]
			if !ok {
				return // external input
			}
			key := [2]int{c.AssignNode[src], off}
			if extra[key] {
				return
			}
			extra[key] = true
			b.AddEdge(c.AssignNode[src], dst, off)
		})
	}
	for si, s := range l.Stmts {
		seen := map[[2]int]bool{}
		if s.Cond != nil {
			condSeen := map[[2]int]bool{}
			addRefEdges(c.CondNode[si], s.Cond, condSeen)
			// Control dependence converted to data dependence.
			b.AddEdge(c.CondNode[si], c.AssignNode[si], 0)
			// The select's false leg is the previous value of the target.
			seen[[2]int{c.AssignNode[si], 1}] = true
			b.AddEdge(c.AssignNode[si], c.AssignNode[si], 1)
		}
		addRefEdges(c.AssignNode[si], s.RHS, seen)
	}

	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("loopir: %s: %w", l.Name, err)
	}
	c.Graph = g
	c.inEdges = make([][]graph.Edge, g.N())
	for v := 0; v < g.N(); v++ {
		for _, ei := range g.In(v) {
			c.inEdges[v] = append(c.inEdges[v], g.Edges[ei])
		}
	}
	return c, nil
}

// MustCompile parses and compiles, panicking on error.
func MustCompile(src string) *Compiled {
	l := MustParse(src)
	c, err := Compile(l)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval computes node (node, iter) from operand values aligned with
// Graph.In(node); it satisfies the runtime Semantics contract.
func (c *Compiled) Eval(node, iter int, args []float64) float64 {
	vals := map[[2]int]float64{}
	for i, e := range c.inEdges[node] {
		vals[[2]int{e.From, e.Distance}] = args[i]
	}
	info := c.Info[node]
	s := c.Loop.Stmts[info.Stmt]
	lookup := func(name string, off int) float64 {
		if si, ok := c.lookupDefiner(name); ok {
			if iter-off < 0 {
				return c.Initial(name, iter-off)
			}
			return vals[[2]int{c.AssignNode[si], off}]
		}
		return c.Input(name, iter-off)
	}
	switch info.Kind {
	case NodeCond:
		if c.evalCond(s.Cond, iter, lookup) {
			return 1
		}
		return 0
	default:
		if s.Cond != nil {
			condVal := vals[[2]int{c.CondNode[info.Stmt], 0}]
			if condVal == 0 {
				// Guard false: keep the previous value (if-conversion
				// select's false leg).
				if iter-1 < 0 {
					return c.Initial(s.Target, iter-1)
				}
				return vals[[2]int{c.AssignNode[info.Stmt], 1}]
			}
		}
		return c.evalExpr(s.RHS, iter, lookup)
	}
}

// Boundary supplies the value read through edge e when the source iteration
// is negative; it satisfies the runtime Semantics contract.
func (c *Compiled) Boundary(e graph.Edge, iter int) float64 {
	name := c.Graph.Nodes[e.From].Name
	return c.Initial(name, iter-e.Distance)
}

func (c *Compiled) lookupDefiner(name string) (int, bool) {
	for si, s := range c.Loop.Stmts {
		if s.Target == name {
			return si, true
		}
	}
	return 0, false
}

func (c *Compiled) evalExpr(e *Expr, iter int, lookup func(string, int) float64) float64 {
	switch e.Kind {
	case ExprNum:
		return e.Num
	case ExprRef:
		return lookup(e.Name, e.Offset)
	case ExprParam:
		return c.Param(e.Name)
	case ExprNeg:
		return -c.evalExpr(e.L, iter, lookup)
	case ExprBin:
		l := c.evalExpr(e.L, iter, lookup)
		r := c.evalExpr(e.R, iter, lookup)
		switch e.Op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		case '/':
			if r == 0 {
				return math.Inf(1)
			}
			return l / r
		}
	}
	panic(fmt.Sprintf("loopir: unevaluable expression %v", e))
}

func (c *Compiled) evalCond(e *Expr, iter int, lookup func(string, int) float64) bool {
	l := c.evalExpr(e.L, iter, lookup)
	r := c.evalExpr(e.R, iter, lookup)
	switch e.Op {
	case '<':
		return l < r
	case '>':
		return l > r
	case 'l':
		return l <= r
	case 'g':
		return l >= r
	case 'e':
		return l == r
	case 'n':
		return l != r
	}
	panic(fmt.Sprintf("loopir: bad comparison op %q", e.Op))
}

// Interpret runs the loop sequentially for n iterations and returns every
// node instance's value — the ground truth for the parallel executions.
func (c *Compiled) Interpret(n int) map[graph.InstanceID]float64 {
	g := c.Graph
	order := g.BodyOrder()
	vals := make(map[graph.InstanceID]float64, n*g.N())
	for iter := 0; iter < n; iter++ {
		for _, v := range order {
			args := make([]float64, 0, len(c.inEdges[v]))
			for _, e := range c.inEdges[v] {
				srcIter := iter - e.Distance
				if srcIter < 0 {
					args = append(args, c.Boundary(e, iter))
					continue
				}
				args = append(args, vals[graph.InstanceID{Node: e.From, Iter: srcIter}])
			}
			vals[graph.InstanceID{Node: v, Iter: iter}] = c.Eval(v, iter, args)
		}
	}
	return vals
}

// FinalValues extracts, for each computed array, its value at the last
// iteration — the observable result of the loop.
func (c *Compiled) FinalValues(vals map[graph.InstanceID]float64, n int) map[string]float64 {
	out := make(map[string]float64)
	for si, s := range c.Loop.Stmts {
		out[s.Target] = vals[graph.InstanceID{Node: c.AssignNode[si], Iter: n - 1}]
	}
	return out
}
