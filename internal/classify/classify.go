// Package classify implements the paper's Flow-in / Cyclic / Flow-out node
// classification (Figure 2).
//
// A node is Flow-in if it has no predecessors or all of its predecessors
// are Flow-in; a node is Flow-out if it is not Flow-in and has no successors
// or all of its successors are Flow-out; the remaining nodes are Cyclic.
// Predecessors and successors are taken over ALL dependence edges,
// regardless of distance: a loop-carried self-dependence keeps a node out of
// Flow-in.
//
// The Cyclic nodes are the ones that determine the loop's steady-state
// execution rate (given enough processors); if the Cyclic subset is empty
// the loop is a DOALL loop.
package classify

import (
	"fmt"
	"strings"

	"mimdloop/internal/graph"
)

// Class labels one node.
type Class int8

const (
	// FlowIn nodes feed the cyclic core but receive nothing from it; their
	// scheduling is constrained only by the latest time they can run.
	FlowIn Class = iota
	// Cyclic nodes participate in (or are sandwiched between parts of) the
	// loop-carried dependence structure and bound the achievable rate.
	Cyclic
	// FlowOut nodes consume from the cyclic core but feed nothing back;
	// their scheduling is constrained only by the earliest time they can
	// run.
	FlowOut
)

func (c Class) String() string {
	switch c {
	case FlowIn:
		return "Flow-in"
	case Cyclic:
		return "Cyclic"
	case FlowOut:
		return "Flow-out"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Result is the partition of a graph's nodes into the three subsets.
type Result struct {
	// Of maps node ID -> class.
	Of []Class
	// FlowIn, Cyclic, FlowOut list node IDs in ascending order.
	FlowIn  []int
	Cyclic  []int
	FlowOut []int
}

// IsDOALL reports whether the loop has no Cyclic nodes, i.e. every
// iteration is independent once Flow-in/Flow-out ordering is respected.
func (r *Result) IsDOALL() bool { return len(r.Cyclic) == 0 }

// Counts returns the subset sizes (flow-in, cyclic, flow-out).
func (r *Result) Counts() (int, int, int) {
	return len(r.FlowIn), len(r.Cyclic), len(r.FlowOut)
}

// String renders the partition compactly using node IDs.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Flow-in=%v Cyclic=%v Flow-out=%v", r.FlowIn, r.Cyclic, r.FlowOut)
	return sb.String()
}

// Partition runs algorithm "classification" (paper Figure 2). Its running
// time is O(m) in the number of dependence links: every edge is examined a
// constant number of times per endpoint settlement.
func Partition(g *graph.Graph) *Result {
	n := g.N()
	of := make([]Class, n)
	settled := make([]bool, n)

	// Step 1-4: grow Flow-in from the roots. pendingPred[v] counts
	// predecessors of v not yet settled as Flow-in. Self-edges and multi-
	// edges are counted per distinct predecessor node.
	pendingPred := make([]int, n)
	for v := 0; v < n; v++ {
		pendingPred[v] = len(g.Preds(v))
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if pendingPred[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if settled[v] {
			continue
		}
		settled[v] = true
		of[v] = FlowIn
		for _, w := range g.Succs(v) {
			if settled[w] {
				continue
			}
			pendingPred[w]--
			if pendingPred[w] == 0 {
				queue = append(queue, w)
			}
		}
	}

	// Step 5-8: grow Flow-out backwards from the sinks, among nodes not in
	// Flow-in. pendingSucc[v] counts successors not yet settled as
	// Flow-out; successors already in Flow-in never settle as Flow-out, so
	// they keep v out of Flow-out, matching the definition ("all of its
	// successors are in Flow-out").
	pendingSucc := make([]int, n)
	for v := 0; v < n; v++ {
		pendingSucc[v] = len(g.Succs(v))
	}
	for v := 0; v < n; v++ {
		if !settled[v] && pendingSucc[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if settled[v] {
			continue
		}
		settled[v] = true
		of[v] = FlowOut
		for _, u := range g.Preds(v) {
			if settled[u] {
				continue
			}
			pendingSucc[u]--
			if pendingSucc[u] == 0 {
				queue = append(queue, u)
			}
		}
	}

	// Step 9: everything else is Cyclic.
	res := &Result{Of: of}
	for v := 0; v < n; v++ {
		if !settled[v] {
			of[v] = Cyclic
		}
		switch of[v] {
		case FlowIn:
			res.FlowIn = append(res.FlowIn, v)
		case Cyclic:
			res.Cyclic = append(res.Cyclic, v)
		case FlowOut:
			res.FlowOut = append(res.FlowOut, v)
		}
	}
	return res
}

// CyclicSubgraph extracts the subgraph induced by the Cyclic nodes,
// returning it together with the newID -> oldID mapping. It returns nil for
// DOALL loops.
func CyclicSubgraph(g *graph.Graph, r *Result) (*graph.Graph, []int, error) {
	if r.IsDOALL() {
		return nil, nil, nil
	}
	return g.InducedSubgraph(r.Cyclic)
}

// Check verifies the defining closure properties of a partition against the
// graph; it is used by tests and by callers that construct partitions by
// hand. It returns nil if the partition is exactly the one Partition
// computes (the partition is unique, so structural checks suffice).
func Check(g *graph.Graph, r *Result) error {
	if len(r.Of) != g.N() {
		return fmt.Errorf("classify: partition covers %d nodes, graph has %d", len(r.Of), g.N())
	}
	for v := 0; v < g.N(); v++ {
		switch r.Of[v] {
		case FlowIn:
			for _, u := range g.Preds(v) {
				if r.Of[u] != FlowIn {
					return fmt.Errorf("classify: Flow-in node %d has non-Flow-in predecessor %d", v, u)
				}
			}
		case FlowOut:
			for _, w := range g.Succs(v) {
				if r.Of[w] != FlowOut {
					return fmt.Errorf("classify: Flow-out node %d has non-Flow-out successor %d", v, w)
				}
			}
		}
	}
	// Maximality: recomputing must give the same labels (the fixed point is
	// unique because Flow-in is the least fixed point of its closure rule
	// and Flow-out is taken over the complement).
	want := Partition(g)
	for v := range want.Of {
		if want.Of[v] != r.Of[v] {
			return fmt.Errorf("classify: node %d labeled %s, canonical partition says %s", v, r.Of[v], want.Of[v])
		}
	}
	return nil
}
