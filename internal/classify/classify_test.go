package classify

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mimdloop/internal/graph"
)

// figure1 reconstructs the paper's Figure 1 example: 12 nodes A..L with
// Flow-in = {A,B,C,D,F}, Flow-out = {G,H,J}, Cyclic = {E,I,K,L}, and
// strongly connected subgraphs (E,I) and (L) inside the Cyclic subset.
func figure1(t testing.TB) (*graph.Graph, map[string]int) {
	b := graph.NewBuilder()
	ids := make(map[string]int)
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L"} {
		ids[name] = b.AddNode(name, 1)
	}
	e := func(from, to string, dist int) { b.AddEdge(ids[from], ids[to], dist) }
	// Flow-in feeding the cyclic core.
	e("A", "E", 0)
	e("B", "E", 0)
	e("C", "F", 0)
	e("D", "F", 0)
	e("F", "I", 0)
	// Cyclic core: (E,I) strongly connected, K between, (L) self loop.
	e("E", "I", 0)
	e("I", "E", 1)
	e("I", "K", 0)
	e("K", "L", 0)
	e("L", "L", 1)
	// Flow-out tail.
	e("K", "G", 0)
	e("L", "J", 0)
	e("G", "H", 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	return g, ids
}

func names(ids map[string]int, nodes []int) []string {
	rev := make(map[int]string)
	for n, id := range ids {
		rev[id] = n
	}
	out := make([]string, len(nodes))
	for i, v := range nodes {
		out[i] = rev[v]
	}
	return out
}

func TestFigure1Classification(t *testing.T) {
	g, ids := figure1(t)
	r := Partition(g)
	if got, want := names(ids, r.FlowIn), []string{"A", "B", "C", "D", "F"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Flow-in = %v, want %v", got, want)
	}
	if got, want := names(ids, r.Cyclic), []string{"E", "I", "K", "L"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Cyclic = %v, want %v", got, want)
	}
	if got, want := names(ids, r.FlowOut), []string{"G", "H", "J"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Flow-out = %v, want %v", got, want)
	}
	if r.IsDOALL() {
		t.Error("IsDOALL = true, want false")
	}
	fi, cy, fo := r.Counts()
	if fi != 5 || cy != 4 || fo != 3 {
		t.Errorf("Counts = %d,%d,%d, want 5,4,3", fi, cy, fo)
	}
	if err := Check(g, r); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestFigure1CyclicSubgraphHasSCC(t *testing.T) {
	// Lemma 1: the Cyclic subset contains at least one strongly connected
	// subgraph; here (E,I) and (L).
	g, ids := figure1(t)
	r := Partition(g)
	sub, back, err := CyclicSubgraph(g, r)
	if err != nil {
		t.Fatal(err)
	}
	sccs := sub.NonTrivialSCCs()
	if len(sccs) != 2 {
		t.Fatalf("NonTrivialSCCs in Cyclic subset = %d, want 2", len(sccs))
	}
	var all []string
	for _, comp := range sccs {
		for _, v := range comp {
			all = append(all, names(ids, []int{back[v]})[0])
		}
	}
	want := map[string]bool{"E": true, "I": true, "L": true}
	if len(all) != 3 {
		t.Fatalf("SCC members = %v", all)
	}
	for _, n := range all {
		if !want[n] {
			t.Fatalf("unexpected SCC member %s", n)
		}
	}
}

func TestDOALLLoop(t *testing.T) {
	// Pure chain with no loop-carried dependence: everything is Flow-in.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	d := b.AddNode("C", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, d, 0)
	g := b.MustBuild()
	r := Partition(g)
	if !r.IsDOALL() {
		t.Fatalf("chain not classified DOALL: %v", r)
	}
	if len(r.FlowIn) != 3 {
		t.Fatalf("Flow-in = %v, want all nodes", r.FlowIn)
	}
	sub, _, err := CyclicSubgraph(g, r)
	if err != nil || sub != nil {
		t.Fatalf("CyclicSubgraph on DOALL = %v, %v; want nil, nil", sub, err)
	}
}

func TestSelfLoopOnlyNode(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddNode("X", 1)
	b.AddEdge(x, x, 1)
	g := b.MustBuild()
	r := Partition(g)
	if got := r.Cyclic; !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Cyclic = %v, want [0]", got)
	}
}

func TestFigure7AllCyclic(t *testing.T) {
	// The Figure 7 loop: A=A[i-1]+E[i-1]; B=A; C=B; D=D[i-1]+C[i-1]; E=D.
	// The paper notes it has only Cyclic nodes.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g := b.MustBuild()
	r := Partition(g)
	if len(r.Cyclic) != 5 || len(r.FlowIn) != 0 || len(r.FlowOut) != 0 {
		t.Fatalf("classification = %v, want all 5 Cyclic", r)
	}
}

func TestFlowOutChain(t *testing.T) {
	// Cyclic core X (self loop) with a two-node tail X -> Y -> Z.
	b := graph.NewBuilder()
	x := b.AddNode("X", 1)
	y := b.AddNode("Y", 1)
	z := b.AddNode("Z", 1)
	b.AddEdge(x, x, 1)
	b.AddEdge(x, y, 0)
	b.AddEdge(y, z, 0)
	g := b.MustBuild()
	r := Partition(g)
	if !reflect.DeepEqual(r.Cyclic, []int{x}) {
		t.Fatalf("Cyclic = %v, want [X]", r.Cyclic)
	}
	if !reflect.DeepEqual(r.FlowOut, []int{y, z}) {
		t.Fatalf("Flow-out = %v, want [Y Z]", r.FlowOut)
	}
}

func TestSandwichedAcyclicNodeIsCyclic(t *testing.T) {
	// A node on a path between two cycles is neither Flow-in nor Flow-out,
	// hence Cyclic, even though it lies on no cycle itself (like node K in
	// Figure 1).
	b := graph.NewBuilder()
	x := b.AddNode("X", 1)
	mid := b.AddNode("M", 1)
	y := b.AddNode("Y", 1)
	b.AddEdge(x, x, 1)
	b.AddEdge(x, mid, 0)
	b.AddEdge(mid, y, 0)
	b.AddEdge(y, y, 1)
	g := b.MustBuild()
	r := Partition(g)
	if r.Of[mid] != Cyclic {
		t.Fatalf("middle node class = %v, want Cyclic", r.Of[mid])
	}
}

func TestClassString(t *testing.T) {
	if FlowIn.String() != "Flow-in" || Cyclic.String() != "Cyclic" || FlowOut.String() != "Flow-out" {
		t.Fatal("Class.String mismatch")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class renders empty")
	}
}

func TestCheckRejectsWrongPartition(t *testing.T) {
	g, _ := figure1(t)
	r := Partition(g)
	bad := &Result{Of: append([]Class(nil), r.Of...)}
	bad.Of[0] = Cyclic // A is really Flow-in
	for v := range bad.Of {
		switch bad.Of[v] {
		case FlowIn:
			bad.FlowIn = append(bad.FlowIn, v)
		case Cyclic:
			bad.Cyclic = append(bad.Cyclic, v)
		case FlowOut:
			bad.FlowOut = append(bad.FlowOut, v)
		}
	}
	if err := Check(g, bad); err == nil {
		t.Fatal("Check accepted a non-canonical partition")
	}
	short := &Result{Of: bad.Of[:3]}
	if err := Check(g, short); err == nil {
		t.Fatal("Check accepted a short partition")
	}
}

// randomGraph mirrors the generator used in graph tests.
func randomGraph(rng *rand.Rand, n, sd, lcd int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("n", 1+rng.Intn(3))
	}
	for i := 0; i < sd; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(u, v, 0)
	}
	for i := 0; i < lcd; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
	}
	return b.MustBuild()
}

func TestPropertyPartitionLawful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(2*n), rng.Intn(n))
		r := Partition(g)
		// Disjoint cover.
		if len(r.FlowIn)+len(r.Cyclic)+len(r.FlowOut) != g.N() {
			return false
		}
		// Defining closure properties.
		if err := Check(g, r); err != nil {
			return false
		}
		// Lemma 1: a non-empty Cyclic subset contains an SCC.
		if len(r.Cyclic) > 0 {
			sub, _, err := CyclicSubgraph(g, r)
			if err != nil || len(sub.NonTrivialSCCs()) == 0 {
				return false
			}
		}
		// No cycle in the whole graph => DOALL.
		if !g.HasCycle() && !r.IsDOALL() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
