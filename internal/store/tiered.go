package store

import (
	"errors"
	"io"
	"sync/atomic"

	"mimdloop/internal/pipeline"
)

// TieredStore composes two PlanStores into one: a fast upper tier that
// absorbs the hot path and a durable lower tier that survives restarts.
// Reads check the upper tier first and promote lower-tier hits upward;
// writes go through to both tiers (write-through, not write-back — a
// plan is durable the moment Put returns, so there is nothing to lose on
// a crash and no dirty state to reconcile). The design follows the
// classic sharded/write-through cache composition: all cross-tier
// coordination is per-call, the tiers never know about each other, and
// the only added state is three counters.
type TieredStore struct {
	upper, lower pipeline.PlanStore

	hits     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	promotes atomic.Uint64

	// deletes versions the delete history: Get skips promotion when a
	// Delete intervened between its upper-tier miss and its lower-tier
	// hit, so an explicitly deleted plan is not immediately resurrected
	// into the memory tier by a racing reader. (The residual window —
	// a Delete beginning after the version check — is benign: plans are
	// deterministic pure values, the durable tier stays deleted, and the
	// stale memory entry ages out by LRU.)
	deletes atomic.Uint64
}

// NewTiered composes upper (fast, typically a pipeline.MemStore) over
// lower (durable, typically a DiskStore). The TieredStore takes
// ownership of both: Close closes them.
func NewTiered(upper, lower pipeline.PlanStore) *TieredStore {
	return &TieredStore{upper: upper, lower: lower}
}

// Get serves from the upper tier when possible; a lower-tier hit is
// promoted into the upper tier so the next request for the same key is
// a memory lookup.
func (t *TieredStore) Get(key string) (*pipeline.Plan, bool) {
	if p, ok := t.upper.Get(key); ok {
		t.hits.Add(1)
		return p, true
	}
	version := t.deletes.Load()
	p, ok := t.lower.Get(key)
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	if t.deletes.Load() == version {
		t.upper.Put(key, p)
		t.promotes.Add(1)
	}
	t.hits.Add(1)
	return p, true
}

// Put writes through to both tiers.
func (t *TieredStore) Put(key string, p *pipeline.Plan) {
	t.puts.Add(1)
	t.upper.Put(key, p)
	t.lower.Put(key, p)
}

// Delete removes key from both tiers.
func (t *TieredStore) Delete(key string) {
	t.deletes.Add(1)
	t.upper.Delete(key)
	t.lower.Delete(key)
}

// Len reports the larger tier's count. Write-through keeps the upper
// tier a subset of the lower one (up to each tier's own evictions), so
// the maximum approximates the distinct-plan count without enumerating
// either tier.
func (t *TieredStore) Len() int {
	u, l := t.upper.Len(), t.lower.Len()
	if u > l {
		return u
	}
	return l
}

// Bytes sums the tiers: they retain on different media, so their
// footprints add rather than alias.
func (t *TieredStore) Bytes() int64 { return t.upper.Bytes() + t.lower.Bytes() }

// Flush empties both tiers.
func (t *TieredStore) Flush() error {
	return errors.Join(t.upper.Flush(), t.lower.Flush())
}

// Close closes both tiers.
func (t *TieredStore) Close() error {
	return errors.Join(t.upper.Close(), t.lower.Close())
}

// Stats reports the tiered counters with each tier nested, upper first.
func (t *TieredStore) Stats() pipeline.StoreStats {
	upper, lower := t.upper.Stats(), t.lower.Stats()
	return pipeline.StoreStats{
		Kind:     "tiered",
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Puts:     t.puts.Load(),
		Promotes: t.promotes.Load(),
		Entries:  t.Len(),
		Bytes:    upper.Bytes + lower.Bytes,
		Tiers:    []pipeline.StoreStats{upper, lower},
	}
}

// OpenRecord delegates to whichever tier holds the raw record,
// preferring the upper one; in the standard serving stacks only the
// disk tier implements pipeline.RecordOpener, so this walks the
// composition down to it. A plan held only in a non-record tier (e.g.
// memory) is an error here — the server falls back to Get.
func (t *TieredStore) OpenRecord(key string) (io.ReadCloser, int64, error) {
	var firstErr error
	for _, tier := range []pipeline.PlanStore{t.upper, t.lower} {
		op, ok := tier.(pipeline.RecordOpener)
		if !ok {
			continue
		}
		rc, size, err := op.OpenRecord(key)
		if err == nil {
			return rc, size, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = errors.New("store: no tier holds raw records")
	}
	return nil, 0, firstErr
}

// Plans enumerates the distinct plans across both tiers, preferring the
// lower (durable, complete) tier's row when a key appears in both.
func (t *TieredStore) Plans() []pipeline.PlanInfo {
	var out []pipeline.PlanInfo
	seen := make(map[string]bool)
	if lister, ok := t.lower.(pipeline.PlanLister); ok {
		for _, info := range lister.Plans() {
			out = append(out, info)
			seen[info.Key] = true
		}
	}
	if lister, ok := t.upper.(pipeline.PlanLister); ok {
		for _, info := range lister.Plans() {
			if !seen[info.Key] {
				out = append(out, info)
			}
		}
	}
	return out
}
