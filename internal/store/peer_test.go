package store

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mimdloop/internal/pipeline"
)

// goldenRingPeers / goldenRingVNodes / goldenRingOwners pin the
// consistent-hash ring: a fixed peer set and fingerprint corpus map to
// this exact ownership table. Any change to the point derivation, the
// hash, or the virtual-node layout reshuffles ownership across a live
// cluster (every node's cache of peer-owned plans goes stale at once),
// so it must show up here as a reviewed diff, never ride in silently.
var (
	goldenRingPeers  = []string{"alpha:9001", "beta:9002", "gamma:9003"}
	goldenRingVNodes = 128
	goldenRingOwners = map[string]string{
		"c694e8c364eee73c|{Processors:1 CommCost:1}|n50":  "beta:9002",
		"c694e9c364eee8ef|{Processors:2 CommCost:2}|n60":  "alpha:9001",
		"c694eac364eeeaa2|{Processors:3 CommCost:3}|n70":  "beta:9002",
		"c694ebc364eeec55|{Processors:4 CommCost:1}|n80":  "alpha:9001",
		"c694e4c364eee070|{Processors:1 CommCost:2}|n90":  "beta:9002",
		"c694e5c364eee223|{Processors:2 CommCost:3}|n100": "beta:9002",
		"c694e6c364eee3d6|{Processors:3 CommCost:1}|n110": "beta:9002",
		"c694e7c364eee589|{Processors:4 CommCost:2}|n120": "alpha:9001",
		"c694f0c364eef4d4|{Processors:1 CommCost:3}|n130": "alpha:9001",
		"c694f1c364eef687|{Processors:2 CommCost:1}|n140": "gamma:9003",
		"5df2160481f5b2ed|{Processors:3 CommCost:2}|n150": "beta:9002",
		"5df2150481f5b13a|{Processors:4 CommCost:3}|n160": "beta:9002",
		"5df2140481f5af87|{Processors:1 CommCost:1}|n170": "alpha:9001",
		"5df2130481f5add4|{Processors:2 CommCost:2}|n180": "alpha:9001",
		"5df2120481f5ac21|{Processors:3 CommCost:3}|n190": "beta:9002",
		"5df2110481f5aa6e|{Processors:4 CommCost:1}|n200": "beta:9002",
	}
)

func TestRingGolden(t *testing.T) {
	r, err := NewRing(goldenRingPeers, goldenRingVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range goldenRingOwners {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q — the ring layout changed; "+
				"this reshuffles ownership across a live cluster", key, got, want)
		}
	}
}

// TestRingBalance guards the point derivation's spread: each of three
// peers owns a roughly fair share of a large synthetic key corpus.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(goldenRingPeers, 0) // DefaultVNodes
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / len(goldenRingPeers)
	for peer, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair share %d)", peer, n, keys, fair)
		}
	}
}

// TestRingStabilityOnPeerRemoval is the consistent-hashing property:
// dropping one peer moves only the keys that peer owned.
func TestRingStabilityOnPeerRemoval(t *testing.T) {
	full, err := NewRing(goldenRingPeers, goldenRingVNodes)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(goldenRingPeers[:2], goldenRingVNodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := goldenRingPeers[2]
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		if before == removed {
			continue
		}
		if after := reduced.Owner(key); after != before {
			t.Fatalf("key %q moved %s -> %s though %s was the removed peer", key, before, after, removed)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Error("empty peer name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 8); err == nil {
		t.Error("duplicate peer accepted")
	}
}

// peerTransport routes logical peer names to live httptest listeners
// and injects transport failures for peers marked down — the same
// shape the cluster harness uses, reduced to one hop.
type peerTransport struct {
	mu    sync.Mutex
	addrs map[string]string // logical name -> live host:port
	down  map[string]bool
}

func newPeerTransport() *peerTransport {
	return &peerTransport{addrs: make(map[string]string), down: make(map[string]bool)}
}

func (pt *peerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pt.mu.Lock()
	addr, ok := pt.addrs[req.URL.Host]
	isDown := pt.down[req.URL.Host]
	pt.mu.Unlock()
	if isDown || !ok {
		return nil, fmt.Errorf("peer %s unreachable", req.URL.Host)
	}
	req = req.Clone(req.Context())
	req.URL.Host = addr
	return http.DefaultTransport.RoundTrip(req)
}

func (pt *peerTransport) setAddr(name, addr string) {
	pt.mu.Lock()
	pt.addrs[name] = addr
	pt.mu.Unlock()
}

func (pt *peerTransport) setDown(name string, down bool) {
	pt.mu.Lock()
	pt.down[name] = down
	pt.mu.Unlock()
}

// newTestPeer builds a two-node view from "self"'s side with fast
// retry/breaker timings, routing "other" through tr.
func newTestPeer(t *testing.T, tr http.RoundTripper) *PeerStore {
	t.Helper()
	p, err := NewPeer(PeerConfig{
		Self:            "self",
		Peers:           []string{"self", "other"},
		Transport:       tr,
		FetchTimeout:    2 * time.Second,
		ForwardTimeout:  2 * time.Second,
		Retries:         1,
		Backoff:         time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// keyOwnedBy searches Figure 7 plan keys (varying n) for one the given
// peer owns, returning the key and its plan.
func keyOwnedBy(t *testing.T, r *Ring, peer string) (string, *pipeline.Plan) {
	t.Helper()
	for n := 20; n < 200; n++ {
		key, plan := buildPlan(t, n)
		if r.Owner(key) == peer {
			return key, plan
		}
	}
	t.Fatalf("no Figure 7 key owned by %s in the probed range", peer)
	return "", nil
}

func TestPeerStoreSelfOwnedKeyMissesWithoutNetwork(t *testing.T) {
	// No transport routes exist, so any network attempt would error; a
	// self-owned key must miss instantly without one.
	p := newTestPeer(t, newPeerTransport())
	key, _ := keyOwnedBy(t, p.Ring(), "self")
	if _, ok := p.Get(key); ok {
		t.Fatal("self-owned key filled from a peer")
	}
	s := p.Stats()
	if s.Misses != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v, want one clean miss", s)
	}
}

func TestPeerStoreFillsByteIdenticalPlan(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, plan := keyOwnedBy(t, p.Ring(), "other")
	rec, err := pipeline.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	var gotPath, gotKey, gotHdr string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotKey = r.URL.Query().Get("key")
		gotHdr = r.Header.Get(pipeline.PeerFetchHeader)
		w.Write(rec)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	filled, ok := p.Get(key)
	if !ok {
		t.Fatal("peer-owned key not filled")
	}
	if gotHdr != "self" {
		t.Fatalf("peer fetch header = %q, want the caller's name", gotHdr)
	}
	if gotKey != key {
		t.Fatalf("fetched key = %q, want %q", gotKey, key)
	}
	if want := "/v1/plans/" + key[:bytes.IndexByte([]byte(key), '|')]; gotPath != want {
		t.Fatalf("fetched path = %q, want %q", gotPath, want)
	}
	wantJSON, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := filled.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("filled plan's schedule JSON is not byte-identical to the owner's")
	}
	if s := p.Stats(); s.Hits != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeerStoreRejectsCorruptOrMismatchedRecord(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, _ := keyOwnedBy(t, p.Ring(), "other")

	body := []byte("garbage")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	if _, ok := p.Get(key); ok {
		t.Fatal("undecodable record served as a fill")
	}
	// A valid record for a different key must be rejected too.
	otherKey, otherPlan := buildPlan(t, 201)
	if otherKey == key {
		t.Fatal("probe key collided")
	}
	rec, err := pipeline.EncodePlan(otherPlan)
	if err != nil {
		t.Fatal(err)
	}
	body = rec
	if _, ok := p.Get(key); ok {
		t.Fatal("record for a different key served as a fill")
	}
	if s := p.ClusterStats(); s.FillErrors != 2 || s.Fills != 0 {
		t.Fatalf("cluster stats = %+v", s)
	}
}

func TestPeerStore404IsAMissNotAFailure(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, _ := keyOwnedBy(t, p.Ring(), "other")

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such plan", http.StatusNotFound)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	// Far more 404s than the breaker threshold: an owner that simply has
	// not scheduled the key yet must never be treated as unhealthy.
	for i := 0; i < 10; i++ {
		if _, ok := p.Get(key); ok {
			t.Fatal("404 served as a fill")
		}
	}
	s := p.ClusterStats()
	if s.FillMisses != 10 || s.FillErrors != 0 || s.BreakerSkips != 0 || len(s.BreakerOpen) != 0 {
		t.Fatalf("cluster stats = %+v", s)
	}
}

func TestPeerStoreRetriesTransportFailures(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, plan := keyOwnedBy(t, p.Ring(), "other")
	rec, err := pipeline.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	// The transport fails the first attempt of each operation, then the
	// listener serves the retry.
	var calls atomic.Int64
	flaky := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("connection reset")
		}
		return tr.RoundTrip(req)
	})
	p2 := newTestPeer(t, flaky)
	_ = p
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(rec)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	if _, ok := p2.Get(key); !ok {
		t.Fatal("fill did not survive one transport failure")
	}
	if calls.Load() != 2 {
		t.Fatalf("transport saw %d attempts, want 2", calls.Load())
	}
	// The retried success reset the failure streak: no breaker state.
	if s := p2.ClusterStats(); s.Fills != 1 || s.FillErrors != 0 || len(s.BreakerOpen) != 0 {
		t.Fatalf("cluster stats = %+v", s)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func TestPeerStoreBreakerOpensAndRecovers(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, plan := keyOwnedBy(t, p.Ring(), "other")
	rec, err := pipeline.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(rec)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())
	tr.setDown("other", true)

	// Two failed operations (each retried once) reach the threshold.
	for i := 0; i < 2; i++ {
		if _, ok := p.Get(key); ok {
			t.Fatal("down peer served a fill")
		}
	}
	s := p.ClusterStats()
	if s.FillErrors != 2 || len(s.BreakerOpen) != 1 || s.BreakerOpen[0] != "other" {
		t.Fatalf("breaker not open after threshold: %+v", s)
	}
	// While open, calls are skipped outright — no transport traffic.
	if _, ok := p.Get(key); ok {
		t.Fatal("open breaker served a fill")
	}
	if s := p.ClusterStats(); s.BreakerSkips == 0 {
		t.Fatalf("no breaker skip counted: %+v", s)
	}

	// After the cooldown the next call probes the recovered peer and the
	// breaker closes.
	tr.setDown("other", false)
	time.Sleep(100 * time.Millisecond)
	if _, ok := p.Get(key); !ok {
		t.Fatal("recovered peer not probed after cooldown")
	}
	if s := p.ClusterStats(); len(s.BreakerOpen) != 0 {
		t.Fatalf("breaker still open after successful probe: %+v", s)
	}
}

func TestPeerStoreForwardProxiesOwnerReply(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, _ := keyOwnedBy(t, p.Ring(), "other")

	reply := []byte(`{"loop":"x"}` + "\n")
	var status atomic.Int64
	status.Store(http.StatusOK)
	var gotForwarded, gotBody atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded.Store(r.Header.Get(pipeline.ForwardedHeader))
		b := new(bytes.Buffer)
		b.ReadFrom(r.Body)
		gotBody.Store(b.String())
		w.WriteHeader(int(status.Load()))
		w.Write(reply)
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	st, body, ok := p.Forward(key, []byte(`{"loop":"..."}`))
	if !ok || st != http.StatusOK || !bytes.Equal(body, reply) {
		t.Fatalf("forward: ok=%v status=%d body=%q", ok, st, body)
	}
	if gotForwarded.Load() != "self" {
		t.Fatalf("forwarded header = %q, want the caller's name", gotForwarded.Load())
	}
	if gotBody.Load() != `{"loop":"..."}` {
		t.Fatalf("owner saw body %q", gotBody.Load())
	}

	// An owner-side client error (bad request) is proxied verbatim, not
	// recomputed locally: the request would fail identically here.
	status.Store(http.StatusBadRequest)
	st, _, ok = p.Forward(key, []byte("{}"))
	if !ok || st != http.StatusBadRequest {
		t.Fatalf("4xx not proxied: ok=%v status=%d", ok, st)
	}

	// An owner-side 5xx means degrade: ok=false, caller computes.
	status.Store(http.StatusInternalServerError)
	if _, _, ok := p.Forward(key, []byte("{}")); ok {
		t.Fatal("owner 5xx reported as a proxied success")
	}
	s := p.ClusterStats()
	if s.Forwards != 2 || s.ForwardErrors != 1 {
		t.Fatalf("cluster stats = %+v", s)
	}

	// A self-owned key is never forwarded.
	selfKey, _ := keyOwnedBy(t, p.Ring(), "self")
	if _, _, ok := p.Forward(selfKey, []byte("{}")); ok {
		t.Fatal("self-owned key forwarded")
	}
}

func TestPeerStoreForwardSingleflight(t *testing.T) {
	tr := newPeerTransport()
	p := newTestPeer(t, tr)
	key, _ := keyOwnedBy(t, p.Ring(), "other")

	var posts atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			close(entered)
		}
		<-release
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()
	tr.setAddr("other", srv.Listener.Addr().String())

	const callers = 8
	var wg sync.WaitGroup
	results := make([]bool, callers)
	bodies := make([][]byte, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			_, body, ok := p.Forward(key, []byte("{}"))
			results[i], bodies[i] = ok, body
		}(i)
	}
	// One caller reaches the owner; give the rest a moment to pile onto
	// the in-flight request, then let it finish.
	<-entered
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if posts.Load() != 1 {
		t.Fatalf("owner saw %d POSTs for one key, want 1", posts.Load())
	}
	for i := 0; i < callers; i++ {
		if !results[i] || !bytes.Equal(bodies[i], []byte("ok\n")) {
			t.Fatalf("caller %d: ok=%v body=%q", i, results[i], bodies[i])
		}
	}
}

func TestPeerConfigValidation(t *testing.T) {
	if _, err := NewPeer(PeerConfig{Peers: []string{"a", "b"}}); err == nil {
		t.Error("missing Self accepted")
	}
	if _, err := NewPeer(PeerConfig{Self: "c", Peers: []string{"a", "b"}}); err == nil {
		t.Error("Self outside the peer set accepted")
	}
	if _, err := NewPeer(PeerConfig{Self: "a", Peers: nil}); err == nil {
		t.Error("empty peer set accepted")
	}
}
