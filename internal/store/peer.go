package store

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mimdloop/internal/pipeline"
)

// Cluster mode: every plan key is owned by exactly one node under a
// consistent-hash ring, so the expensive scheduling work partitions
// cleanly across the fleet — ownership instead of shared mutable state.
// PeerStore is both halves of a node's view of that arrangement:
//
//   - as a pipeline.PlanStore it is the peer-fill tier, slotted between
//     the memory and disk tiers of a TieredStore: a local miss on a key
//     owned by a peer is filled by fetching the owner's durable plan
//     record (GET /v1/plans/{fingerprint}?key=..., the same record
//     format DiskStore persists), decoded and re-validated locally, and
//     promoted into the memory tier by the surrounding TieredStore;
//
//   - as a pipeline.ScheduleForwarder it extends the per-process
//     singleflight cluster-wide: a non-owner that misses everywhere
//     forwards the schedule request to the owner (POST /v1/schedule
//     with the forwarded marker header), whose own singleflight
//     collapses the fleet's concurrent cold misses into one
//     computation.
//
// Peers that fail get retry-with-backoff and a short circuit breaker;
// while a breaker is open every call to that peer degrades instantly
// (miss for fills, local compute for forwards), so the cluster is
// never slower than N independent single nodes.

// Ring is a consistent-hash ring over a fixed peer set: each peer
// contributes VNodes points on the circle (the peer name's FNV-1a hash
// offset by the point index, then finalized with a splitmix64 mix —
// raw FNV-1a of "peer#i" strings clusters badly for near-identical
// inputs), and a key is owned by the peer of the first point at or
// after the key's own hash. Virtual nodes smooth the partition (the
// classic construction); changing the point derivation reshuffles
// ownership cluster-wide, which is why TestRingGolden pins a full
// ownership table.
type Ring struct {
	vnodes int
	peers  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash uint64
	peer string
}

// DefaultVNodes is the virtual-node count per peer when the
// configuration leaves it zero. 128 points per peer keeps the largest
// partition within a few percent of fair on small clusters.
const DefaultVNodes = 128

// NewRing builds a ring over peers (order-insensitive: the point set
// depends only on the peer names). vnodes <= 0 means DefaultVNodes.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("store: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		vnodes: vnodes,
		peers:  append([]string(nil), peers...),
		points: make([]ringPoint, 0, len(peers)*vnodes),
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("store: ring peer name must not be empty")
		}
		if seen[p] {
			return nil, fmt.Errorf("store: duplicate ring peer %q", p)
		}
		seen[p] = true
		base := fnvHash(p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between two peers' points is vanishingly
		// rare but must still order deterministically on every node.
		return r.points[a].peer < r.points[b].peer
	})
	return r, nil
}

// fnvHash is 64-bit FNV-1a of s.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix that
// spreads FNV's weakly-diffused low bits across the whole ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the peer owning key: the first ring point clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := mix64(fnvHash(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].peer
}

// Peers returns the ring membership in configuration order.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// VNodes returns the virtual nodes per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// PeerConfig configures a PeerStore.
type PeerConfig struct {
	// Self is this node's own name; it must appear in Peers. Keys owned
	// by Self never leave the process (the peer tier reports an instant
	// miss and the pipeline computes locally).
	Self string
	// Peers is the full cluster membership, self included. Each entry
	// is both the peer's ring identity and its base URL ("http://" is
	// assumed when no scheme is given), so the ring only depends on the
	// configured names — restarts and transient failures never change
	// ownership.
	Peers []string
	// VNodes is the virtual-node count per peer (<= 0 means
	// DefaultVNodes). Every node of a cluster must use the same value.
	VNodes int

	// Transport overrides the HTTP transport (nil means
	// http.DefaultTransport); the cluster test harness injects fault-
	// aware transports here.
	Transport http.RoundTripper
	// FetchTimeout bounds one record-fetch attempt (0 means 2s);
	// ForwardTimeout bounds one forwarded schedule request (0 means 30s
	// — the owner may be cold-scheduling a near-cap loop).
	FetchTimeout   time.Duration
	ForwardTimeout time.Duration
	// Retries is how many extra attempts follow a transport failure
	// (HTTP error statuses are never retried — the peer answered).
	// 0 means 1 retry; negative means none.
	Retries int
	// Backoff is the pause before each retry (0 means 50ms).
	Backoff time.Duration
	// BreakerFailures is how many consecutive failed operations open a
	// peer's circuit breaker (0 means 3); BreakerCooldown is how long
	// the breaker stays open before the next call probes the peer again
	// (0 means 5s). A probe failure re-opens the breaker immediately.
	BreakerFailures int
	BreakerCooldown time.Duration

	// RecordSink, when non-nil, receives fetched peer records as a
	// stream: a fill flows from the owner's socket through the sink's
	// bounded copy window, is decode-validated there, and lands durable
	// (the standard sink is the node's own DiskStore) — instead of
	// being slurped whole into one record-sized buffer. nil keeps the
	// buffered fill path.
	RecordSink RecordSink
}

// RecordSink consumes a streamed encoded plan record, validating it
// before admission. *DiskStore implements it; PutRecord is the
// contract's shape.
type RecordSink interface {
	// PutRecord reads one encoded record from r, validates it against
	// key, stores it, and returns the decoded plan. An error means
	// nothing was admitted.
	PutRecord(key string, r io.Reader) (*pipeline.Plan, error)
}

// withDefaults resolves the zero values.
func (c PeerConfig) withDefaults() PeerConfig {
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// PeerStore is the cluster tier: a read-only pipeline.PlanStore that
// fills misses from the owning peer, doubling as the server's
// pipeline.ScheduleForwarder. See the package comment above for how
// the two halves compose.
type PeerStore struct {
	cfg     PeerConfig
	ring    *Ring
	fetch   *http.Client
	forward *http.Client

	// breakers holds one circuit breaker per remote peer (self
	// excluded); the map is fixed at construction, so reads need no
	// lock.
	breakers map[string]*breaker

	// flights collapses concurrent forwards of one key into a single
	// POST to the owner — the local half of the cluster-wide
	// singleflight (the owner's own flight group is the global half).
	flightMu sync.Mutex
	flights  map[string]*forwardFlight

	fills         atomic.Uint64
	fillMisses    atomic.Uint64
	fillErrors    atomic.Uint64
	forwards      atomic.Uint64
	forwardErrors atomic.Uint64
	breakerSkips  atomic.Uint64
	misses        atomic.Uint64 // every Get miss, self-owned probes included
}

// forwardFlight is one in-flight forwarded schedule request.
type forwardFlight struct {
	done   chan struct{}
	status int
	body   []byte
	ok     bool
}

// NewPeer builds the cluster tier for one node. The returned store
// should be slotted between the memory and disk tiers —
// NewTiered(mem, NewTiered(peer, disk)) — and passed to the server as
// ServerConfig.Cluster.
func NewPeer(cfg PeerConfig) (*PeerStore, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("store: peer config needs Self")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("store: self %q is not among the peers %v", cfg.Self, cfg.Peers)
	}
	tr := cfg.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	p := &PeerStore{
		cfg:      cfg,
		ring:     ring,
		fetch:    &http.Client{Transport: tr, Timeout: cfg.FetchTimeout},
		forward:  &http.Client{Transport: tr, Timeout: cfg.ForwardTimeout},
		breakers: make(map[string]*breaker),
		flights:  make(map[string]*forwardFlight),
	}
	for _, peer := range cfg.Peers {
		if peer != cfg.Self {
			p.breakers[peer] = &breaker{}
		}
	}
	return p, nil
}

// Ring returns the store's ring (shared, read-only).
func (p *PeerStore) Ring() *Ring { return p.ring }

// Owns reports whether this node owns key.
func (p *PeerStore) Owns(key string) bool { return p.ring.Owner(key) == p.cfg.Self }

// baseURL resolves a peer name to its base URL.
func baseURL(peer string) string {
	if strings.Contains(peer, "://") {
		return strings.TrimRight(peer, "/")
	}
	return "http://" + peer
}

// maxPeerResponse bounds a peer reply: near-cap schedule replies and
// plan records run to tens of MB, so the cap is generous — it exists
// to keep a misbehaving peer from streaming without end, not to limit
// legitimate plans.
const maxPeerResponse = 256 << 20

// Get fills a local store miss from the owning peer. Keys owned by
// this node miss instantly (the local tiers and the pipeline's own
// computation are authoritative for them); so do keys whose owner has
// an open breaker. A fetched record is decoded and re-validated before
// it is returned, so a corrupt or mismatched peer reply is an error,
// never a cache entry.
func (p *PeerStore) Get(key string) (*pipeline.Plan, bool) {
	owner := p.ring.Owner(key)
	if owner == p.cfg.Self {
		p.misses.Add(1)
		return nil, false
	}
	br := p.breakers[owner]
	if !br.allow(time.Now()) {
		p.breakerSkips.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	fp := key
	if i := strings.IndexByte(key, '|'); i >= 0 {
		fp = key[:i]
	}
	target := baseURL(owner) + "/v1/plans/" + fp + "?key=" + url.QueryEscape(key)
	mkReq := func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, target, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set(pipeline.PeerFetchHeader, p.cfg.Self)
		return req, nil
	}
	if sink := p.cfg.RecordSink; sink != nil {
		return p.fillStreamed(sink, owner, key, mkReq)
	}
	status, body, err := p.do(p.fetch, owner, mkReq)
	if err != nil {
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	if status == http.StatusNotFound {
		// The owner simply has not scheduled this key: a healthy miss,
		// not a failure — it must never trip the breaker.
		p.fillMisses.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	if status != http.StatusOK {
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	gotKey, plan, err := pipeline.DecodePlan(body)
	if err != nil || gotKey != key {
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	p.fills.Add(1)
	return plan, true
}

// fillStreamed fills one miss through the record sink: the owner's
// reply body streams through the sink's validation into durable
// storage (a bounded copy window end to end) and the decoded plan
// comes back out — the record is never slurped whole. The miss/error
// accounting mirrors the buffered path exactly; a mid-body transport
// failure surfaces as a sink error (fill_errors), not a retry, since
// the partial record may already be flowing and request bodies cannot
// be replayed mid-stream.
func (p *PeerStore) fillStreamed(sink RecordSink, owner, key string, mkReq func() (*http.Request, error)) (*pipeline.Plan, bool) {
	status, body, err := p.doStream(p.fetch, owner, mkReq)
	if err != nil {
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	if body != nil {
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(body, maxPeerResponse))
			body.Close()
		}()
	}
	switch {
	case status == http.StatusNotFound:
		// The owner simply has not scheduled this key: a healthy miss,
		// not a failure — it must never trip the breaker.
		p.fillMisses.Add(1)
		p.misses.Add(1)
		return nil, false
	case status != http.StatusOK:
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	plan, err := sink.PutRecord(key, io.LimitReader(body, maxPeerResponse))
	if err != nil {
		p.fillErrors.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	p.fills.Add(1)
	return plan, true
}

// Forward proxies a schedule request to key's owner, collapsing
// concurrent forwards of the same key into one POST. ok = false means
// the owner could not answer (self-owned key, open breaker, transport
// failure, or an owner-side 5xx) and the caller must compute locally.
func (p *PeerStore) Forward(key string, body []byte) (int, []byte, bool) {
	owner := p.ring.Owner(key)
	if owner == p.cfg.Self {
		return 0, nil, false
	}
	p.flightMu.Lock()
	if f, ok := p.flights[key]; ok {
		p.flightMu.Unlock()
		<-f.done
		return f.status, f.body, f.ok
	}
	f := &forwardFlight{done: make(chan struct{})}
	p.flights[key] = f
	p.flightMu.Unlock()

	f.status, f.body, f.ok = p.forwardOnce(owner, body)
	close(f.done)

	p.flightMu.Lock()
	delete(p.flights, key)
	p.flightMu.Unlock()
	return f.status, f.body, f.ok
}

// forwardOnce sends one (possibly retried) forwarded schedule request.
func (p *PeerStore) forwardOnce(owner string, body []byte) (int, []byte, bool) {
	br := p.breakers[owner]
	if !br.allow(time.Now()) {
		p.breakerSkips.Add(1)
		p.forwardErrors.Add(1)
		return 0, nil, false
	}
	target := baseURL(owner) + "/v1/schedule"
	status, resp, err := p.do(p.forward, owner, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(pipeline.ForwardedHeader, p.cfg.Self)
		return req, nil
	})
	if err != nil || status >= http.StatusInternalServerError {
		// A 5xx is an owner that answered but could not serve; the
		// caller's local compute is strictly better than proxying it.
		p.forwardErrors.Add(1)
		return 0, nil, false
	}
	p.forwards.Add(1)
	return status, resp, true
}

// do runs one peer HTTP operation with retry-with-backoff and breaker
// accounting. make builds a fresh request per attempt (bodies cannot
// be replayed). Transport failures and 5xx statuses count against the
// peer's breaker and transport failures are retried; any HTTP answer
// below 500 — 200, 404, 4xx — is a live peer and resets the breaker.
func (p *PeerStore) do(client *http.Client, owner string, make func() (*http.Request, error)) (int, []byte, error) {
	br := p.breakers[owner]
	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(p.cfg.Backoff)
		}
		req, err := make()
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			br.failure(time.Now(), p.cfg.BreakerFailures, p.cfg.BreakerCooldown)
			return resp.StatusCode, body, nil
		}
		br.success()
		return resp.StatusCode, body, nil
	}
	br.failure(time.Now(), p.cfg.BreakerFailures, p.cfg.BreakerCooldown)
	return 0, nil, lastErr
}

// doStream is do's streaming sibling: the same per-attempt retry and
// breaker accounting, but any answer below 500 hands the response body
// to the caller still open (the caller must drain and close it) so
// record bytes can flow through a sink instead of into one buffer. A
// 5xx is drained and closed here, counts against the breaker, and
// returns a nil body.
func (p *PeerStore) doStream(client *http.Client, owner string, mkReq func() (*http.Request, error)) (int, io.ReadCloser, error) {
	br := p.breakers[owner]
	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(p.cfg.Backoff)
		}
		req, err := mkReq()
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerResponse))
			resp.Body.Close()
			br.failure(time.Now(), p.cfg.BreakerFailures, p.cfg.BreakerCooldown)
			return resp.StatusCode, nil, nil
		}
		br.success()
		return resp.StatusCode, resp.Body, nil
	}
	br.failure(time.Now(), p.cfg.BreakerFailures, p.cfg.BreakerCooldown)
	return 0, nil, lastErr
}

// Put is a no-op: ownership means the owner computes and retains, and
// a non-owner's degraded local compute stays local (it is re-filled
// from the owner once the owner recovers). The PlanStore contract
// allows a tier to decline retention.
func (p *PeerStore) Put(string, *pipeline.Plan) {}

// Delete is a no-op: deletes are a per-node administrative action
// (DELETE /v1/plans against each node), not a replicated one.
func (p *PeerStore) Delete(string) {}

// Len reports 0: the tier retains nothing.
func (p *PeerStore) Len() int { return 0 }

// Bytes reports 0: the tier retains nothing.
func (p *PeerStore) Bytes() int64 { return 0 }

// Flush is a no-op.
func (p *PeerStore) Flush() error { return nil }

// Close releases idle peer connections.
func (p *PeerStore) Close() error {
	if tr, ok := p.fetch.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	return nil
}

// Stats snapshots the tier's counters in PlanStore form: Hits are
// peer fills, Errors failed fill operations.
func (p *PeerStore) Stats() pipeline.StoreStats {
	return pipeline.StoreStats{
		Kind:   "peer",
		Hits:   p.fills.Load(),
		Misses: p.misses.Load(),
		Errors: p.fillErrors.Load(),
	}
}

// ClusterStats snapshots the cluster counters for /v1/stats.
func (p *PeerStore) ClusterStats() pipeline.ClusterStats {
	cs := pipeline.ClusterStats{
		Self:          p.cfg.Self,
		Peers:         p.ring.Peers(),
		VNodes:        p.ring.VNodes(),
		Fills:         p.fills.Load(),
		FillMisses:    p.fillMisses.Load(),
		FillErrors:    p.fillErrors.Load(),
		Forwards:      p.forwards.Load(),
		ForwardErrors: p.forwardErrors.Load(),
		BreakerSkips:  p.breakerSkips.Load(),
	}
	now := time.Now()
	for _, peer := range cs.Peers {
		if br, ok := p.breakers[peer]; ok && !br.allow(now) {
			cs.BreakerOpen = append(cs.BreakerOpen, peer)
		}
	}
	return cs
}

// breaker is a per-peer circuit breaker: consecutive failures open it
// for a cooldown, during which every call is skipped; the first call
// after the cooldown probes the peer, and a probe failure re-opens it
// immediately.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// allow reports whether a call may proceed. It has no side effects, so
// concurrent callers during the half-open window may all probe — a
// bounded, self-limiting burst.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.openUntil)
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records one failed operation, opening the breaker at the
// threshold. fails keeps counting across an open period, so the first
// post-cooldown probe failure re-opens instantly.
func (b *breaker) failure(now time.Time, threshold int, cooldown time.Duration) {
	b.mu.Lock()
	b.fails++
	if b.fails >= threshold {
		b.openUntil = now.Add(cooldown)
	}
	b.mu.Unlock()
}
