// Package store provides durable and tiered implementations of the
// pipeline's PlanStore interface: DiskStore persists plans as
// content-addressed JSON records under a directory, and TieredStore
// composes a fast upper tier (typically a pipeline.MemStore) with a
// durable lower tier so plans survive process restarts — scheduling
// (and AutoTune grid sweeps) run once, and every later process serves
// the same plans from disk instead of rescheduling.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mimdloop/internal/pipeline"
)

// Filesystem layout: one file per plan, named by the SHA-256 of the full
// plan key (fingerprint + options + iterations) so arbitrary key bytes
// never reach the filesystem, with the record's own key field closing the
// loop on collisions. Writes land in a temp file first and are renamed
// into place, so a reader (or a crash) never observes a half-written
// record. Records that fail to decode are moved aside into quarantineDir
// rather than deleted — they are evidence, not garbage.
const (
	planExt       = ".plan.json"
	tmpPrefix     = ".tmp-"
	quarantineDir = "quarantine"
)

// DiskConfig configures a DiskStore.
type DiskConfig struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxBytes bounds the total size of retained plan records; exceeding
	// it garbage-collects least-recently-used records after each Put.
	// <= 0 means 1 GiB. Quarantined records do not count.
	MaxBytes int64
}

// DiskStore is a durable PlanStore: content-addressed plan records on a
// local filesystem. It is safe for concurrent use by one process; the
// lock is deliberately coarse (one mutex across index and file IO)
// because the disk tier sits behind a sharded memory tier in every
// serving configuration — it sees cold misses and write-throughs, never
// the hot path.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*diskEntry // file base name -> entry
	bytes int64
	// counters are guarded by mu too: the store is cold-path only, and
	// one lock keeps the index and its aggregates trivially consistent.
	hits, misses, puts, evictions, errors uint64
}

// diskEntry is the in-memory index record for one plan file.
type diskEntry struct {
	size int64
	// used orders GC: refreshed on every Get and Put. Initialized from
	// the file's mtime when the index is rebuilt at Open, so recency
	// survives restarts approximately.
	used time.Time
}

// Open returns a DiskStore over cfg.Dir, creating the directory if
// needed and indexing any plan records already present — that index scan
// is what makes a restarted process see its predecessor's plans.
func Open(cfg DiskConfig) (*DiskStore, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 30
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &DiskStore{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		index:    make(map[string]*diskEntry),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, planExt) {
			// Stray temp files from a crashed writer are dead weight.
			if strings.HasPrefix(name, tmpPrefix) {
				_ = os.Remove(filepath.Join(cfg.Dir, name))
			}
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		d.index[name] = &diskEntry{size: info.Size(), used: info.ModTime()}
		d.bytes += info.Size()
	}
	return d, nil
}

// fileName derives the content address of a plan key.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + planExt
}

// Get reads and decodes the plan stored under key. A record that fails
// to decode — torn write survived by a crash, format drift, manual
// corruption — is quarantined and reported as a miss, so one bad file
// can never take the store down or poison a key forever.
func (d *DiskStore) Get(key string) (*pipeline.Plan, bool) {
	name := fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.index[name]
	if !ok {
		d.misses++
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		// The index is stale (file removed behind our back): drop it.
		delete(d.index, name)
		d.bytes -= e.size
		d.misses++
		d.errors++
		return nil, false
	}
	gotKey, plan, err := pipeline.DecodePlan(data)
	if err != nil || gotKey != key {
		d.quarantineLocked(name, e)
		d.misses++
		return nil, false
	}
	e.used = time.Now()
	d.hits++
	return plan, true
}

// OpenRecord opens the raw encoded record stored under key, returning
// the file and its indexed size. This is the zero-copy read side of the
// record-streaming path: the server hands the file straight to the
// socket (io.Copy over an *os.File can use sendfile) instead of
// decoding and re-encoding the plan through a record-sized buffer. The
// caller owns the returned reader; the open file stays valid even if
// the record is GC'd or replaced mid-stream (the rename/remove unlinks
// the name, not the open handle).
func (d *DiskStore) OpenRecord(key string) (io.ReadCloser, int64, error) {
	name := fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.index[name]
	if !ok {
		d.misses++
		return nil, 0, fmt.Errorf("store: no record for key %q", key)
	}
	f, err := os.Open(filepath.Join(d.dir, name))
	if err != nil {
		// The index is stale (file removed behind our back): drop it.
		delete(d.index, name)
		d.bytes -= e.size
		d.misses++
		d.errors++
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	e.used = time.Now()
	d.hits++
	return f, e.size, nil
}

// PutRecord streams an encoded plan record from r into the store under
// key. The bytes flow through a bounded copy window into a temp file —
// never into one record-sized heap buffer — then the temp file is read
// back, decode-validated exactly like Get would (key match included),
// and renamed into place. This is the write side of the streaming
// peer-fill path: a peer's record lands on disk through validation
// without being slurped whole off the wire, and the decoded plan comes
// back for the caller to serve. An invalid or mismatched record never
// enters the store.
func (d *DiskStore) PutRecord(key string, r io.Reader) (*pipeline.Plan, error) {
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return nil, fmt.Errorf("store: %w", err)
	}
	size, werr := io.Copy(tmp, r)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	var data []byte
	if werr == nil {
		// Validation needs the whole record once (decode is not
		// streamable); os.ReadFile sizes its buffer from the file, so
		// this is one exact-size allocation that dies with this call —
		// unlike the pre-streaming path, which grew a wire buffer, kept
		// the decode copy, and re-encoded a third for disk.
		data, werr = os.ReadFile(tmp.Name())
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return nil, fmt.Errorf("store: %w", werr)
	}
	gotKey, plan, err := pipeline.DecodePlan(data)
	if err == nil && gotKey != key {
		err = fmt.Errorf("record key %q does not match requested key %q", gotKey, key)
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return nil, fmt.Errorf("store: %w", err)
	}
	name := fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.puts++
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, name)); err != nil {
		_ = os.Remove(tmp.Name())
		d.errors++
		return nil, fmt.Errorf("store: %w", err)
	}
	if old, ok := d.index[name]; ok {
		d.bytes -= old.size
	}
	d.index[name] = &diskEntry{size: size, used: time.Now()}
	d.bytes += size
	d.gcLocked()
	return plan, nil
}

// quarantineLocked moves a corrupt record aside and drops it from the
// index. Caller holds d.mu.
func (d *DiskStore) quarantineLocked(name string, e *diskEntry) {
	d.errors++
	dst := filepath.Join(d.dir, quarantineDir, name)
	if err := os.Rename(filepath.Join(d.dir, name), dst); err != nil {
		// Rename failed (e.g. the quarantine dir was removed): delete
		// rather than serve corruption forever.
		_ = os.Remove(filepath.Join(d.dir, name))
	}
	delete(d.index, name)
	d.bytes -= e.size
}

// Put encodes and durably stores p under key: the record is written to a
// temp file in the store directory, synced, and renamed into place, so
// concurrent readers and crash-interrupted writes observe either the old
// record or the new one — never a prefix.
func (d *DiskStore) Put(key string, p *pipeline.Plan) {
	if pipeline.PlanKey(p.GraphHash, p.Opts, p.Iterations) != key {
		// An aliased key could never be answered consistently after a
		// restart (records are verified against their ingredients), so
		// decline it rather than persist a lie.
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	data, err := pipeline.EncodePlan(p)
	if err != nil {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return
	}
	name := fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.puts++
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		d.errors++
		return
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(d.dir, name))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		d.errors++
		return
	}
	if old, ok := d.index[name]; ok {
		d.bytes -= old.size
	}
	d.index[name] = &diskEntry{size: int64(len(data)), used: time.Now()}
	d.bytes += int64(len(data))
	d.gcLocked()
}

// Delete removes the record stored under key, if any.
func (d *DiskStore) Delete(key string) {
	name := fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.index[name]; ok {
		_ = os.Remove(filepath.Join(d.dir, name))
		delete(d.index, name)
		d.bytes -= e.size
	}
}

// gcLocked trims the store to its byte budget, least-recently-used
// records first, always keeping the most recent record. Caller holds
// d.mu. Returns how many records were removed and their total size.
func (d *DiskStore) gcLocked() (removed int, reclaimed int64) {
	if d.bytes <= d.maxBytes || len(d.index) <= 1 {
		return 0, 0
	}
	type cand struct {
		name string
		e    *diskEntry
	}
	cands := make([]cand, 0, len(d.index))
	for name, e := range d.index {
		cands = append(cands, cand{name, e})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].e.used.Before(cands[b].e.used) })
	for _, c := range cands {
		if d.bytes <= d.maxBytes || len(d.index) <= 1 {
			break
		}
		_ = os.Remove(filepath.Join(d.dir, c.name))
		delete(d.index, c.name)
		d.bytes -= c.e.size
		d.evictions++
		removed++
		reclaimed += c.e.size
	}
	return removed, reclaimed
}

// GC trims the store to its byte budget immediately (Put already does
// this incrementally; GC exists for `loopsched store gc`, which opens a
// store over an existing directory purely to shrink it). It reports how
// many records were removed and how many bytes were reclaimed.
func (d *DiskStore) GC() (removed int, reclaimed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gcLocked()
}

// Len reports the number of stored plan records.
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Bytes reports the total size of the stored plan records.
func (d *DiskStore) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Flush removes every stored plan record (quarantined records are kept:
// they document corruption until an operator inspects them).
func (d *DiskStore) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var firstErr error
	for name, e := range d.index {
		if err := os.Remove(filepath.Join(d.dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(d.index, name)
		d.bytes -= e.size
	}
	return firstErr
}

// Close releases the store. Records are already durable, so this only
// bars further use of the in-memory index.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.index = nil
	return nil
}

// Stats snapshots the store's counters.
func (d *DiskStore) Stats() pipeline.StoreStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return pipeline.StoreStats{
		Kind:      "disk",
		Hits:      d.hits,
		Misses:    d.misses,
		Puts:      d.puts,
		Evictions: d.evictions,
		Errors:    d.errors,
		Entries:   len(d.index),
		Bytes:     d.bytes,
	}
}

// Plans enumerates the stored records by reading and decoding each file;
// corrupt records are quarantined along the way. This is the slow,
// operator-facing path behind GET /v1/plans and `loopsched store ls` —
// so the index is snapshotted first and all file IO runs outside the
// lock, keeping concurrent Gets and Puts from stalling behind a full
// store scan.
func (d *DiskStore) Plans() []pipeline.PlanInfo {
	type snap struct {
		name string
		size int64
	}
	d.mu.Lock()
	snaps := make([]snap, 0, len(d.index))
	for name, e := range d.index {
		snaps = append(snaps, snap{name, e.size})
	}
	d.mu.Unlock()
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].name < snaps[b].name })

	var out []pipeline.PlanInfo
	for _, s := range snaps {
		data, err := os.ReadFile(filepath.Join(d.dir, s.name))
		if err != nil {
			// Deleted or GC'd between snapshot and read: not an error,
			// just no longer part of the listing.
			continue
		}
		key, plan, err := pipeline.DecodePlan(data)
		if err != nil {
			d.mu.Lock()
			if e, ok := d.index[s.name]; ok {
				d.quarantineLocked(s.name, e)
			}
			d.mu.Unlock()
			continue
		}
		out = append(out, pipeline.PlanInfo{
			Key:        key,
			GraphHash:  plan.GraphHash,
			Options:    plan.Opts,
			Iterations: plan.Iterations,
			Rate:       plan.Rate(),
			Procs:      plan.Procs(),
			Makespan:   plan.Makespan(),
			Bytes:      s.size,
		})
	}
	return out
}
