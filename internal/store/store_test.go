package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

var fig7Opts = core.Options{Processors: 2, CommCost: 2}

// buildPlan builds one uncached Figure 7 plan and its canonical store
// key.
func buildPlan(t *testing.T, n int) (string, *pipeline.Plan) {
	t.Helper()
	g := workload.Figure7().Graph
	plan, _, err := pipeline.New(pipeline.Config{DisableCache: true}).Schedule(g, fig7Opts, n)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.PlanKey(g.Fingerprint(), fig7Opts, n), plan
}

func TestDiskStoreBasics(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key, plan := buildPlan(t, 20)

	if _, ok := d.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	d.Put(key, plan)
	if d.Len() != 1 || d.Bytes() <= 0 {
		t.Fatalf("Len=%d Bytes=%d", d.Len(), d.Bytes())
	}
	got, ok := d.Get(key)
	if !ok {
		t.Fatal("stored plan not found")
	}
	if got.Rate() != plan.Rate() || got.GraphHash != plan.GraphHash {
		t.Fatalf("loaded plan differs: %+v", got)
	}

	// Listing decodes the stored record.
	infos := d.Plans()
	if len(infos) != 1 || infos[0].Key != key || infos[0].Rate != plan.Rate() {
		t.Fatalf("plans = %+v", infos)
	}

	s := d.Stats()
	if s.Kind != "disk" || s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}

	d.Delete(key)
	if _, ok := d.Get(key); ok || d.Len() != 0 || d.Bytes() != 0 {
		t.Fatalf("after Delete: Len=%d Bytes=%d", d.Len(), d.Bytes())
	}

	d.Put(key, plan)
	if err := d.Flush(); err != nil || d.Len() != 0 {
		t.Fatalf("Flush: err=%v Len=%d", err, d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(DiskConfig{}); err == nil {
		t.Fatal("empty directory accepted")
	}
}

// TestDiskStoreReopenSeesRecords pins the restart path at the store
// level: a fresh DiskStore over the same directory indexes and serves
// its predecessor's records.
func TestDiskStoreReopenSeesRecords(t *testing.T) {
	dir := t.TempDir()
	d1, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key, plan := buildPlan(t, 25)
	d1.Put(key, plan)
	wantJSON, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("reopened store has %d records", d2.Len())
	}
	got, ok := d2.Get(key)
	if !ok {
		t.Fatal("reopened store missed the stored plan")
	}
	gotJSON, err := got.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("schedule JSON differs across restart")
	}
}

// TestDiskStoreQuarantinesCorruption overwrites a record with garbage:
// the store must report a miss, move the file aside (not delete it), and
// keep serving other keys.
func TestDiskStoreQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	keyA, planA := buildPlan(t, 20)
	keyB, planB := buildPlan(t, 30)
	d.Put(keyA, planA)
	d.Put(keyB, planB)

	// Corrupt A's record on disk behind the store's back.
	var corrupted string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), planExt) {
			corrupted = de.Name()
			if err := os.WriteFile(filepath.Join(dir, de.Name()), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if corrupted == "" {
		t.Fatal("no plan records on disk")
	}

	// One of the two keys now decodes to garbage; both Gets must be safe
	// and exactly one must be quarantined.
	_, okA := d.Get(keyA)
	_, okB := d.Get(keyB)
	if okA && okB {
		t.Fatal("corrupt record served")
	}
	if s := d.Stats(); s.Errors == 0 {
		t.Fatalf("no error counted: %+v", s)
	}
	if d.Len() != 1 {
		t.Fatalf("store kept %d records, want 1", d.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, corrupted)); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
}

// TestDiskStoreGCBoundsBytes floods a tiny store and checks the byte
// budget holds, oldest records going first.
func TestDiskStoreGCBoundsBytes(t *testing.T) {
	dir := t.TempDir()
	_, probe := buildPlan(t, 20)
	rec, err := pipeline.EncodePlan(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Budget: roughly three records.
	budget := int64(3*len(rec) + len(rec)/2)
	d, err := Open(DiskConfig{Dir: dir, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for n := 20; n < 30; n++ {
		key, plan := buildPlan(t, n)
		d.Put(key, plan)
		keys = append(keys, key)
	}
	if d.Bytes() > budget {
		t.Fatalf("store bytes %d over budget %d", d.Bytes(), budget)
	}
	if s := d.Stats(); s.Evictions == 0 {
		t.Fatalf("no GC evictions: %+v", s)
	}
	// The most recent record survives.
	if _, ok := d.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent record was collected")
	}
	// An explicit GC on an already-trimmed store is a no-op.
	if removed, reclaimed := d.GC(); removed != 0 || reclaimed != 0 {
		t.Fatalf("GC removed %d (%d bytes) under budget", removed, reclaimed)
	}
}

// TestTieredPromotesDiskHits checks the read path: a key present only on
// disk is served, counted as a promote, and lands in the memory tier.
func TestTieredPromotesDiskHits(t *testing.T) {
	dir := t.TempDir()
	disk, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mem := pipeline.NewMemStore(pipeline.MemConfig{})
	tiered := NewTiered(mem, disk)

	key, plan := buildPlan(t, 40)
	tiered.Put(key, plan)
	if mem.Len() != 1 || disk.Len() != 1 {
		t.Fatalf("write-through: mem=%d disk=%d", mem.Len(), disk.Len())
	}

	// Drop the memory tier (simulating restart or eviction).
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	got, ok := tiered.Get(key)
	if !ok || got.Rate() != plan.Rate() {
		t.Fatalf("disk-backed Get: ok=%v", ok)
	}
	s := tiered.Stats()
	if s.Kind != "tiered" || s.Promotes != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if mem.Len() != 1 {
		t.Fatal("disk hit not promoted into the memory tier")
	}
	// The next Get is a pure memory hit: no further promotes.
	if _, ok := tiered.Get(key); !ok {
		t.Fatal("promoted key missed")
	}
	if s := tiered.Stats(); s.Promotes != 1 || s.Hits != 2 {
		t.Fatalf("post-promotion stats = %+v", s)
	}

	// Enumeration sees the plan exactly once despite both tiers holding it.
	if infos := tiered.Plans(); len(infos) != 1 || infos[0].Key != key {
		t.Fatalf("plans = %+v", infos)
	}

	tiered.Delete(key)
	if mem.Len() != 0 || disk.Len() != 0 {
		t.Fatal("Delete left a tier populated")
	}
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTieredPipeline builds a serving-shaped pipeline: memory over disk
// at dir.
func newTieredPipeline(t *testing.T, dir string) *pipeline.Pipeline {
	t.Helper()
	disk, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.New(pipeline.Config{
		Store: NewTiered(pipeline.NewMemStore(pipeline.MemConfig{}), disk),
	})
}

// TestRestartServesFromDiskWithoutRescheduling is the acceptance test
// for the storage redesign: schedule and auto-tune against a tiered
// store, then construct a fresh pipeline over the same directory and
// replay the same requests. Every one must be served as a store hit
// with zero rescheduling (store counters prove it) and byte-identical
// plan JSON.
func TestRestartServesFromDiskWithoutRescheduling(t *testing.T) {
	dir := t.TempDir()
	g := workload.Figure7().Graph
	lfk := workload.Livermore18().Graph

	requests := []struct {
		opts core.Options
		n    int
	}{
		{core.Options{Processors: 2, CommCost: 2}, 100},
		{core.Options{Processors: 3, CommCost: 1}, 60},
		{core.Options{Processors: 2, CommCost: 2, FoldNonCyclic: true}, 80},
	}

	p1 := newTieredPipeline(t, dir)
	wantJSON := make(map[int][]byte)
	for i, req := range requests {
		plan, hit, err := p1.Schedule(g, req.opts, req.n)
		if err != nil || hit {
			t.Fatalf("request %d: hit=%v err=%v", i, hit, err)
		}
		js, err := plan.ScheduleJSON()
		if err != nil {
			t.Fatal(err)
		}
		wantJSON[i] = js
	}
	// An AutoTune sweep: every grid point's winner and loser plans land
	// in the store too.
	tuned1, err := p1.AutoTune(lfk, 50, pipeline.TuneOptions{
		Processors: []int{1, 2, 3},
		CommCosts:  []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := p1.Stats().Computes; c == 0 {
		t.Fatal("first process computed nothing")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh pipeline over the same directory: cold memory, warm disk.
	p2 := newTieredPipeline(t, dir)
	for i, req := range requests {
		plan, hit, err := p2.Schedule(g, req.opts, req.n)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("request %d rescheduled after restart", i)
		}
		js, err := plan.ScheduleJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, wantJSON[i]) {
			t.Fatalf("request %d: plan JSON not byte-identical across restart", i)
		}
	}
	// The same tune replays entirely from disk and picks the same winner.
	tuned2, err := p2.AutoTune(lfk, 50, pipeline.TuneOptions{
		Processors: []int{1, 2, 3},
		CommCosts:  []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned2.Best.Point != tuned1.Best.Point || tuned2.Best.Rate != tuned1.Best.Rate {
		t.Fatalf("tune winner changed across restart: %+v vs %+v", tuned2.Best.Point, tuned1.Best.Point)
	}

	s := p2.Stats()
	if s.Computes != 0 {
		t.Fatalf("restarted pipeline rescheduled %d plans", s.Computes)
	}
	if s.Misses != 0 {
		t.Fatalf("restarted pipeline missed %d requests", s.Misses)
	}
	disk, ok := s.Store.Tier("disk")
	if !ok || disk.Hits == 0 {
		t.Fatalf("no disk-tier hits recorded: %+v", s.Store)
	}
	if s.Store.Promotes == 0 {
		t.Fatalf("no promotions recorded: %+v", s.Store)
	}
	// Promotion means repeat requests stop touching the disk tier.
	before, _ := p2.Stats().Store.Tier("disk")
	if _, hit, err := p2.Schedule(g, requests[0].opts, requests[0].n); err != nil || !hit {
		t.Fatalf("repeat request: hit=%v err=%v", hit, err)
	}
	after, _ := p2.Stats().Store.Tier("disk")
	if after.Hits != before.Hits {
		t.Fatal("repeat request read the disk tier despite promotion")
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMeasuredAnnotationPersists: a measured evaluation re-puts the
// annotated plan through the tiered store, so the on-disk v2 record
// carries the measured block and a restarted process reloads it.
func TestMeasuredAnnotationPersists(t *testing.T) {
	dir := t.TempDir()
	disk, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(pipeline.Config{
		Store: NewTiered(pipeline.NewMemStore(pipeline.MemConfig{}), disk),
	})
	g := workload.Figure7().Graph
	res, err := p.AutoTune(g, 50, pipeline.TuneOptions{
		Processors: []int{2},
		CommCosts:  []int{2},
		Evaluator:  &pipeline.MeasuredEvaluator{Trials: 3, Fluct: 3, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Best.Score.Measured
	if want == nil {
		t.Fatal("tune returned no measured score")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory serves the measurement.
	disk2, err := Open(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	key := pipeline.PlanKey(g.Fingerprint(), core.Options{Processors: 2, CommCost: 2}, 50)
	plan, ok := disk2.Get(key)
	if !ok {
		t.Fatal("tuned plan not on disk")
	}
	got := plan.Measured()
	if got == nil {
		t.Fatal("reloaded plan lost its measured annotation")
	}
	if *got != *want {
		t.Fatalf("measured annotation drifted across restart: %+v vs %+v", got, want)
	}
}

// TestDiskRecordRoundTrip covers the raw-record pair behind the
// streaming paths: OpenRecord hands back exactly the encoded bytes Put
// persisted (sized to match), and PutRecord streams those bytes into a
// fresh store through full decode validation — so a record can travel
// disk -> socket -> peer disk without ever being re-encoded.
func TestDiskRecordRoundTrip(t *testing.T) {
	d, err := Open(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key, plan := buildPlan(t, 20)
	d.Put(key, plan)
	want, err := pipeline.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	rc, size, err := d.OpenRecord(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || size != int64(len(want)) {
		t.Fatalf("OpenRecord returned %d bytes (size %d), want %d", len(got), size, len(want))
	}
	if _, _, err := d.OpenRecord(key + "x"); err == nil {
		t.Fatal("OpenRecord succeeded for an unknown key")
	}

	// The streamed write side: a second store ingests the raw record.
	d2, err := Open(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	filled, err := d2.PutRecord(key, bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if filled.Rate() != plan.Rate() || filled.GraphHash != plan.GraphHash {
		t.Fatalf("PutRecord decoded a different plan: %+v", filled)
	}
	rc, _, err = d2.OpenRecord(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("record bytes changed across a streamed fill")
	}
	if loaded, ok := d2.Get(key); !ok || loaded.Rate() != plan.Rate() {
		t.Fatalf("filled record not servable: ok=%v", ok)
	}

	// Invalid fills never enter the store: a key mismatch and raw
	// garbage both error out, leave no record, and count as errors.
	d3, err := Open(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d3.PutRecord(key+"x", bytes.NewReader(want)); err == nil {
		t.Fatal("PutRecord accepted a record under the wrong key")
	}
	if _, err := d3.PutRecord(key, strings.NewReader("not a record")); err == nil {
		t.Fatal("PutRecord accepted garbage")
	}
	if s := d3.Stats(); s.Entries != 0 || s.Errors != 2 {
		t.Fatalf("rejected fills left state behind: %+v", s)
	}
	if names, err := filepath.Glob(filepath.Join(d3.dir, "*"+planExt)); err != nil || len(names) != 0 {
		t.Fatalf("rejected fills left files behind: %v %v", names, err)
	}
}

// TestServePlanRecordStreamsFromDisk is the end-to-end record-streaming
// test over a real disk tier: GET /v1/plans/{fp}?key=... streams the
// content-addressed file with an exact Content-Length, on a warm
// process (hit) and on a restarted one whose memory tier is cold — and
// the restarted serve decodes nothing (the bytes go file -> socket).
func TestServePlanRecordStreamsFromDisk(t *testing.T) {
	dir := t.TempDir()
	g := workload.Figure7().Graph
	fp := g.Fingerprint()
	key := pipeline.PlanKey(fp, fig7Opts, 100)
	target := "/v1/plans/" + fp + "?key=" + url.QueryEscape(key)
	body := fmt.Sprintf(`{"source": %q, "processors": 2}`, workload.Figure7Source)

	p1 := newTieredPipeline(t, dir)
	srv1 := pipeline.NewServer(p1)
	rec := httptest.NewRecorder()
	srv1.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule: status %d: %.200s", rec.Code, rec.Body)
	}

	get := func(srv *pipeline.Server) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET record: status %d: %.200s", rec.Code, rec.Body)
		}
		if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
			t.Fatalf("Content-Length %q for a %d-byte record reply", cl, rec.Body.Len())
		}
		return rec
	}
	warm := get(srv1)
	plan, ok := p1.Store().Get(key)
	if !ok {
		t.Fatal("scheduled plan not in the store")
	}
	want, err := pipeline.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.Body.Bytes(), append(want, '\n')) {
		t.Fatal("streamed record differs from the encoded plan")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: cold memory, warm disk. The record streams straight off
	// the file — byte-identical, zero rescheduling, zero decodes (a
	// disk Get would have decoded; the disk hit here is OpenRecord).
	p2 := newTieredPipeline(t, dir)
	srv2 := pipeline.NewServer(p2)
	cold := get(srv2)
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("record bytes changed across restart")
	}
	if s := p2.Stats(); s.Computes != 0 {
		t.Fatalf("restarted serve rescheduled %d plans", s.Computes)
	}
	disk, ok := p2.Stats().Store.Tier("disk")
	if !ok || disk.Hits != 1 {
		t.Fatalf("cold record serve did not hit the disk tier once: %+v", disk)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}
