// Package loadgen measures the serving stack and persists the results
// as the repo's benchmark trajectory (the committed BENCH_*.json files).
//
// The package has two halves. Report (this file) is the versioned wire
// schema every trajectory file conforms to: nine sections — cold
// schedule latency, cache-hit latency, streamed near-cap reply latency
// (first byte and full body), tune latency per backend (sim, gort and
// the calibrated csim), the grain-axis tune phase, batch throughput,
// and a concurrent HTTP load phase — all expressed in integer
// nanoseconds so files diff cleanly across PRs. Runner (runner.go) is
// the concurrent load generator behind the last section, and Bench
// (bench.go) drives all nine phases over plain HTTP so the same code
// measures an in-process httptest server (paperbench -json) and a live
// deployment (loopsched bench).
//
// The schema is guarded by a golden-fixture test (golden_test.go): any
// field added, removed or renamed fails the test until Version is
// bumped and the fixture regenerated, so a BENCH_7.json is always
// diffable against BENCH_6.json or self-describes why it is not.
package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Format and Version identify the trajectory schema. Bump Version (and
// regenerate the testdata/bench_v<N>.json fixture) whenever a field is
// added, removed or renamed in Report or any section struct.
//
// Version history:
//
//	1: initial schema — cold/hit/tune_sim/tune_gort/batch/http_load.
//	2: added tune_csim (the calibrated-simulator tune phase); v1 files
//	   stop being comparable (CompareHit restarts the trajectory).
//	3: added tune_grain (the grain-axis gort tune on a chunk-friendly
//	   stream chain, with a serial-threshold warmup); v2 files stop
//	   being comparable (CompareHit restarts the trajectory).
//	4: added stream (near-cap /v1/schedule replies through the chunked
//	   streaming lane: first-byte and full-body latency plus the peak
//	   reply size); v3 files stop being comparable (CompareHit restarts
//	   the trajectory).
const (
	Format  = "mimdloop/bench"
	Version = 4
)

// Report is one trajectory point: everything a BENCH_<n>.json file
// holds. Sections deliberately avoid omitempty so every file carries
// the full key set and files stay structurally diffable.
type Report struct {
	// Format is always the Format constant; Version the schema version.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Quick records whether this was a CI-sized run; quick numbers are
	// comparable only to other quick numbers.
	Quick bool `json:"quick"`
	// GoMaxProcs is the parallelism the run had available.
	GoMaxProcs int `json:"gomaxprocs"`

	// Cold is the uncached /v1/schedule path: compile + classify +
	// Cyclic-sched + compose + lower per request.
	Cold Latency `json:"cold_schedule"`
	// Hit is the warm /v1/schedule path: plan-cache lookup plus the
	// pre-rendered response body.
	Hit Latency `json:"cache_hit"`
	// Stream is the near-cap /v1/schedule path: a multi-MB reply served
	// through the streaming lane (chunked, envelope prefix flushed before
	// the schedule bytes), with first-byte and full-body latency measured
	// separately — the gap is what streaming buys.
	Stream StreamStats `json:"stream"`
	// TuneSim, TuneGort and TuneCsim are /v1/tune with a measured
	// evaluator on the simulated machine, the goroutine runtime, and
	// the calibrated simulator (profile-scaled sim) respectively.
	TuneSim  Latency `json:"tune_sim"`
	TuneGort Latency `json:"tune_gort"`
	TuneCsim Latency `json:"tune_csim"`
	// TuneGrain is /v1/tune with the grain axis on the goroutine
	// runtime: a chunk-friendly stream chain tuned over grains {1, 4, 8},
	// the request shape the adaptive-granularity table sends.
	TuneGrain Latency `json:"tune_grain"`
	// Batch is /v1/batch throughput in loops scheduled per second.
	Batch Throughput `json:"batch"`
	// Load is the concurrent mixed-endpoint phase.
	Load LoadStats `json:"http_load"`
}

// Latency summarises one phase's per-request latency distribution.
type Latency struct {
	Samples int   `json:"samples"`
	MeanNS  int64 `json:"mean_ns"`
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	P99NS   int64 `json:"p99_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// StreamStats summarises the streamed near-cap reply phase: the peak
// reply size observed and two latency distributions over the same
// requests — time to the first body byte and time to the drained body.
type StreamStats struct {
	Samples    int     `json:"samples"`
	ReplyBytes int64   `json:"reply_bytes"`
	FirstByte  Latency `json:"first_byte"`
	FullBody   Latency `json:"full_body"`
}

// Throughput summarises the batch phase.
type Throughput struct {
	Requests    int     `json:"requests"`
	Loops       int     `json:"loops"`
	WallNS      int64   `json:"wall_ns"`
	LoopsPerSec float64 `json:"loops_per_sec"`
}

// LoadStats summarises the concurrent load phase.
type LoadStats struct {
	Workers   int     `json:"workers"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	WallNS    int64   `json:"wall_ns"`
	ReqPerSec float64 `json:"req_per_sec"`
	Latency   Latency `json:"latency"`
}

// summarize folds raw per-request durations into a Latency section.
func summarize(samples []time.Duration) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, d := range sorted {
		sum += int64(d)
	}
	pct := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return int64(sorted[i])
	}
	return Latency{
		Samples: len(sorted),
		MeanNS:  sum / int64(len(sorted)),
		P50NS:   pct(0.50),
		P95NS:   pct(0.95),
		P99NS:   pct(0.99),
		MinNS:   int64(sorted[0]),
		MaxNS:   int64(sorted[len(sorted)-1]),
	}
}

// CompareHit reports the relative change of cache-hit p50 latency from
// prev to cur: 0.25 means cur is 25% slower. paperbench -against uses
// this as the trajectory gate (warn past WarnHitRegression, fail past
// FailHitRegression). An error means the reports are not comparable.
func CompareHit(prev, cur *Report) (float64, error) {
	switch {
	case prev.Format != Format || cur.Format != Format:
		return 0, fmt.Errorf("format mismatch: %q vs %q (want %q)", prev.Format, cur.Format, Format)
	case prev.Version != cur.Version:
		return 0, fmt.Errorf("schema version changed (%d -> %d); trajectory restarts at the new version", prev.Version, cur.Version)
	case prev.Quick != cur.Quick:
		return 0, fmt.Errorf("quick=%v run is not comparable to quick=%v", cur.Quick, prev.Quick)
	case prev.Hit.P50NS <= 0:
		return 0, fmt.Errorf("previous report has no cache-hit samples")
	}
	return float64(cur.Hit.P50NS-prev.Hit.P50NS) / float64(prev.Hit.P50NS), nil
}

// Summary renders the report as the human lines paperbench and
// `loopsched bench` print next to the persisted JSON.
func (r *Report) Summary() string {
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf(
		"mode %s, GOMAXPROCS %d\n"+
			"cold schedule   p50 %-10v (%d samples)\n"+
			"cache hit       p50 %-10v p99 %v (%d samples)\n"+
			"stream          first byte p50 %-10v full body p50 %v (%s reply, %d samples)\n"+
			"tune sim        p50 %-10v (%d samples)\n"+
			"tune gort       p50 %-10v (%d samples)\n"+
			"tune csim       p50 %-10v (%d samples)\n"+
			"tune grain      p50 %-10v (%d samples)\n"+
			"batch           %.0f loops/s (%d loops)\n"+
			"http load       %.0f req/s, p50 %v p95 %v p99 %v (%d workers, %d requests, %d errors)\n",
		mode, r.GoMaxProcs,
		d(r.Cold.P50NS), r.Cold.Samples,
		d(r.Hit.P50NS), d(r.Hit.P99NS), r.Hit.Samples,
		d(r.Stream.FirstByte.P50NS), d(r.Stream.FullBody.P50NS),
		fmtBytes(r.Stream.ReplyBytes), r.Stream.Samples,
		d(r.TuneSim.P50NS), r.TuneSim.Samples,
		d(r.TuneGort.P50NS), r.TuneGort.Samples,
		d(r.TuneCsim.P50NS), r.TuneCsim.Samples,
		d(r.TuneGrain.P50NS), r.TuneGrain.Samples,
		r.Batch.LoopsPerSec, r.Batch.Loops,
		r.Load.ReqPerSec, d(r.Load.Latency.P50NS), d(r.Load.Latency.P95NS), d(r.Load.Latency.P99NS),
		r.Load.Workers, r.Load.Requests, r.Load.Errors)
}

// fmtBytes renders a byte count human-readably for Summary.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// Regression thresholds for CompareHit: past Warn the run prints a
// warning, past Fail it exits non-zero. Quick-mode p50s on shared CI
// runners jitter under 2x run-to-run, while losing the fast lane (a
// re-encode back in the hit path) regresses the HTTP hit p50 well past
// 3x — so Fail sits between the two.
const (
	WarnHitRegression = 0.25
	FailHitRegression = 2.00
)
