package loadgen

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"mimdloop/internal/pipeline"
)

// TestRunnerConcurrentLoad hammers a real in-process server from 8
// workers while a watcher polls Snapshot, asserting (under -race, which
// CI runs for this package):
//   - zero request errors over the whole run,
//   - both counters are monotone as observed mid-run,
//   - the reported req/s is internally consistent with the wall clock.
func TestRunnerConcurrentLoad(t *testing.T) {
	ts := httptest.NewServer(pipeline.NewServer(pipeline.New(pipeline.Config{})))
	defer ts.Close()

	const requests = 320
	r := &Runner{BaseURL: ts.URL, Client: ts.Client(), Workers: 8, Requests: requests}

	done := make(chan LoadStats, 1)
	go func() {
		stats, err := r.Run()
		if err != nil {
			t.Error(err)
		}
		done <- stats
	}()

	// Watch the counters while workers run: every observation must be
	// >= the previous one.
	var prev Snapshot
	watching := true
	for watching {
		select {
		case stats := <-done:
			done <- stats
			watching = false
		default:
			s := r.Snapshot()
			if s.Requests < prev.Requests || s.Errors < prev.Errors {
				t.Fatalf("counters went backwards: %+v after %+v", s, prev)
			}
			prev = s
			time.Sleep(time.Millisecond)
		}
	}
	stats := <-done

	if stats.Errors != 0 {
		t.Fatalf("%d of %d requests failed", stats.Errors, stats.Requests)
	}
	if stats.Requests != requests {
		t.Fatalf("ran %d requests, want %d", stats.Requests, requests)
	}
	if got := r.Snapshot(); got.Requests != requests || got.Errors != 0 {
		t.Fatalf("final snapshot %+v disagrees with stats %+v", got, stats)
	}
	if stats.Latency.Samples != requests {
		t.Fatalf("recorded %d latencies for %d successful requests", stats.Latency.Samples, requests)
	}

	// req/s must be what the counters and wall clock imply.
	implied := float64(stats.Requests) / (time.Duration(stats.WallNS).Seconds())
	if math.Abs(stats.ReqPerSec-implied)/implied > 1e-6 {
		t.Fatalf("req_per_sec %.3f inconsistent with %d requests over %v",
			stats.ReqPerSec, stats.Requests, time.Duration(stats.WallNS))
	}
	if stats.WallNS <= 0 {
		t.Fatal("non-positive wall time")
	}
}

// TestSummarize pins the percentile convention (nearest-rank on the
// sorted samples) so Latency sections mean the same thing in every
// BENCH_*.json.
func TestSummarize(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Microsecond)
	}
	l := summarize(samples)
	want := Latency{Samples: 100, MeanNS: 50500,
		P50NS: 50000, P95NS: 95000, P99NS: 99000, MinNS: 1000, MaxNS: 100000}
	if l != want {
		t.Fatalf("summarize = %+v, want %+v", l, want)
	}
	if z := summarize(nil); z != (Latency{}) {
		t.Fatalf("summarize(nil) = %+v, want zero", z)
	}
}
