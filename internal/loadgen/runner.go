package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mimdloop/internal/workload"
)

// Runner drives a fixed number of mixed requests (/v1/schedule plus a
// /v1/batch every batchEvery-th request) at a server from Workers
// concurrent goroutines. Counters are updated atomically as requests
// complete, so a concurrent observer — the race test, a progress
// printer — can call Snapshot mid-run and always see monotone values.
type Runner struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// Workers defaults to 4.
	Workers int
	// Requests is the total request count across workers (default 200).
	Requests int

	requests atomic.Int64
	errors   atomic.Int64
}

// batchEvery spaces the batch requests through the mix: every eighth
// request is a 6-loop /v1/batch, the rest are single /v1/schedule posts.
const batchEvery = 8

// Snapshot is a consistent-enough view of the counters for liveness
// checks; each field is individually monotone over the run.
type Snapshot struct {
	Requests int64
	Errors   int64
}

// Snapshot reads the counters. Safe to call concurrently with Run.
func (r *Runner) Snapshot() Snapshot {
	return Snapshot{Requests: r.requests.Load(), Errors: r.errors.Load()}
}

// scheduleBodies is the request mix: three real workloads at small
// processor budgets, so a warm server answers most of them from cache —
// deliberately, since steady-state serving is what the load phase rates.
var scheduleBodies = func() [][]byte {
	var out [][]byte
	for _, src := range []string{
		workload.Figure7Source,
		workload.Livermore18Source,
		workload.EllipticSource,
	} {
		for _, procs := range []int{2, 3} {
			out = append(out, []byte(fmt.Sprintf(`{"source": %q, "processors": %d}`, src, procs)))
		}
	}
	return out
}()

// batchBody schedules all six mix entries in one /v1/batch request.
var batchBody = func() []byte {
	var b bytes.Buffer
	b.WriteString(`{"items": [`)
	for i, item := range scheduleBodies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.Write(item)
	}
	b.WriteString(`]}`)
	return b.Bytes()
}()

// Run issues the configured number of requests and reports the phase's
// load statistics. The error is non-nil only for harness failures
// (unreachable server before the run starts); per-request failures are
// counted in LoadStats.Errors instead.
func (r *Runner) Run() (LoadStats, error) {
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := r.Workers
	if workers <= 0 {
		workers = 4
	}
	total := r.Requests
	if total <= 0 {
		total = 200
	}

	// Fail fast on a dead server rather than recording N dial errors.
	if _, err := post(client, r.BaseURL+"/v1/schedule", scheduleBodies[0]); err != nil {
		return LoadStats{}, fmt.Errorf("server unreachable: %w", err)
	}

	var (
		next      atomic.Int64 // request sequence numbers
		wg        sync.WaitGroup
		latencies = make([][]time.Duration, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if seq >= int64(total) {
					return
				}
				url, body := r.BaseURL+"/v1/schedule", scheduleBodies[seq%int64(len(scheduleBodies))]
				if seq%batchEvery == batchEvery-1 {
					url, body = r.BaseURL+"/v1/batch", batchBody
				}
				t0 := time.Now()
				status, err := post(client, url, body)
				d := time.Since(t0)
				r.requests.Add(1)
				if err != nil || status != http.StatusOK {
					r.errors.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], d)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	n := r.requests.Load()
	return LoadStats{
		Workers:   workers,
		Requests:  n,
		Errors:    r.errors.Load(),
		WallNS:    int64(wall),
		ReqPerSec: float64(n) / wall.Seconds(),
		Latency:   summarize(all),
	}, nil
}

// post issues one JSON POST and fully drains the response so the
// transport can reuse the connection.
func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
