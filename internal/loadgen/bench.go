package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"mimdloop/internal/workload"
)

// Options sizes a Bench run.
type Options struct {
	// Quick selects the CI-sized phase counts.
	Quick bool
	// Workers for the load phase (0 = GOMAXPROCS).
	Workers int
	// ColdIterBase offsets the iteration counts used by the cold phase.
	// Each cold sample schedules the Figure 7 loop for a distinct
	// iteration count — a distinct plan key, hence a guaranteed cache
	// miss against a fresh server. Against a long-lived server that has
	// already been benched, pass a new base (loopsched bench derives one
	// from the clock) so the keys are again unseen. 0 means 101.
	ColdIterBase int
}

// phase sizes: {full, quick}.
var (
	coldSamples   = [2]int{30, 8}
	hitSamples    = [2]int{2000, 300}
	streamSamples = [2]int{20, 5}
	tuneSamples   = [2]int{10, 3}
	gortSamples   = [2]int{5, 2}
	batchReqs     = [2]int{100, 20}
	loadRequests  = [2]int{2000, 200}
)

// streamIterations sizes the stream phase's loop: Figure 7 (5 nodes) at
// the iteration cap is the near-cap request shape — 50,000 placements,
// a multi-MB reply, comfortably over the server's 1 MiB streaming
// threshold.
const streamIterations = 10_000

func pick(v [2]int, quick bool) int {
	if quick {
		return v[1]
	}
	return v[0]
}

// chainSource is the grain-tune phase's loop: a stream chain whose
// self-recurrences survive any chunking grain while its distance-0
// links batch into block messages — the shape the grain axis exists
// for (figure 7 itself is infeasible at every grain > 1).
const chainSource = `loop chain(N = 100) {
    A[i] = A[i-1] + U[i]
    B[i] = B[i-1] + A[i]
    C[i] = C[i-1] + B[i]
    D[i] = D[i-1] + C[i]
}`

// Bench runs the nine trajectory phases against the server at baseURL
// and returns the Report to persist. The server only needs the standard
// /v1 routes; the same call measures an in-process httptest server
// (paperbench -json) or a live deployment (loopsched bench).
func Bench(baseURL string, client *http.Client, opt Options) (*Report, error) {
	if client == nil {
		client = http.DefaultClient
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{
		Format:     Format,
		Version:    Version,
		Quick:      opt.Quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Phase 1: cold schedules — one unseen plan key per sample.
	base := opt.ColdIterBase
	if base <= 0 {
		base = 101
	}
	cold := make([]time.Duration, 0, pick(coldSamples, opt.Quick))
	for i := 0; i < cap(cold); i++ {
		body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2, "iterations": %d}`,
			workload.Figure7Source, base+i))
		d, err := timedPost(client, baseURL+"/v1/schedule", body)
		if err != nil {
			return nil, fmt.Errorf("cold phase: %w", err)
		}
		cold = append(cold, d)
	}
	rep.Cold = summarize(cold)

	// Phase 2: cache hits — the same request over and over, first one
	// discarded as the warmer.
	hitBody := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, workload.Figure7Source))
	if _, err := timedPost(client, baseURL+"/v1/schedule", hitBody); err != nil {
		return nil, fmt.Errorf("hit warmup: %w", err)
	}
	hits := make([]time.Duration, 0, pick(hitSamples, opt.Quick))
	for i := 0; i < cap(hits); i++ {
		d, err := timedPost(client, baseURL+"/v1/schedule", hitBody)
		if err != nil {
			return nil, fmt.Errorf("hit phase: %w", err)
		}
		hits = append(hits, d)
	}
	rep.Hit = summarize(hits)

	// Phase 3: streamed near-cap replies — the same Figure 7 loop at the
	// iteration cap, whose multi-MB reply rides the chunked streaming
	// lane. The first request is the warmer (it pays the cold schedule);
	// the samples then measure time to first body byte and time to the
	// fully drained body separately, so the trajectory records what
	// streaming buys (first byte no longer scales with body size) without
	// conflating it with transfer time.
	streamBody := []byte(fmt.Sprintf(`{"source": %q, "processors": 2, "iterations": %d}`,
		workload.Figure7Source, streamIterations))
	if _, _, _, err := timedStreamPost(client, baseURL+"/v1/schedule", streamBody); err != nil {
		return nil, fmt.Errorf("stream warmup: %w", err)
	}
	nStream := pick(streamSamples, opt.Quick)
	firsts := make([]time.Duration, 0, nStream)
	fulls := make([]time.Duration, 0, nStream)
	var peak int64
	for i := 0; i < nStream; i++ {
		first, full, n, err := timedStreamPost(client, baseURL+"/v1/schedule", streamBody)
		if err != nil {
			return nil, fmt.Errorf("stream phase: %w", err)
		}
		firsts = append(firsts, first)
		fulls = append(fulls, full)
		if n > peak {
			peak = n
		}
	}
	rep.Stream = StreamStats{
		Samples:    nStream,
		ReplyBytes: peak,
		FirstByte:  summarize(firsts),
		FullBody:   summarize(fulls),
	}

	// Phases 4-6: measured tuning on each backend over a small 2-point
	// grid (well inside the gort serving caps). The csim phase degrades
	// to raw-sim scoring against a server with no calibration profile —
	// the latency is the same either way, which is the phase's point.
	for _, be := range []struct {
		backend string
		eval    string // fluct/seed are sim-only parameters
		samples int
		out     *Latency
	}{
		{"sim", `{"mode": "measured", "backend": "sim", "trials": 3, "fluct": 2, "seed": 1}`,
			pick(tuneSamples, opt.Quick), &rep.TuneSim},
		{"gort", `{"mode": "measured", "backend": "gort", "trials": 3}`,
			pick(gortSamples, opt.Quick), &rep.TuneGort},
		{"csim", `{"mode": "measured", "backend": "csim", "trials": 3, "fluct": 2, "seed": 1}`,
			pick(tuneSamples, opt.Quick), &rep.TuneCsim},
	} {
		body := []byte(fmt.Sprintf(
			`{"source": %q, "processors": [2, 3], "comm_costs": [2], "iterations": 40, "eval": %s}`,
			workload.Figure7Source, be.eval))
		samples := make([]time.Duration, 0, be.samples)
		for i := 0; i < be.samples; i++ {
			d, err := timedPost(client, baseURL+"/v1/tune", body)
			if err != nil {
				return nil, fmt.Errorf("tune %s phase: %w", be.backend, err)
			}
			samples = append(samples, d)
		}
		*be.out = summarize(samples)
	}

	// Phase 7: the grain-axis tune — the adaptive-granularity request
	// shape: a chunk-friendly stream chain, measured gort scoring, a
	// grain axis on the grid. The serial-threshold warmup request pins
	// the fallback path's latency into the same section's first sample
	// window (it shares the phase's plan cache).
	grainWarm := []byte(fmt.Sprintf(
		`{"source": %q, "iterations": 8, "serial_threshold": 100, "processors": [2], "comm_costs": [2], "grains": [1, 4], "eval": {"mode": "measured", "backend": "gort", "trials": 2}}`,
		chainSource))
	if _, err := timedPost(client, baseURL+"/v1/tune", grainWarm); err != nil {
		return nil, fmt.Errorf("tune grain warmup: %w", err)
	}
	grainBody := []byte(fmt.Sprintf(
		`{"source": %q, "iterations": 40, "processors": [2], "comm_costs": [2], "grains": [1, 4, 8], "eval": {"mode": "measured", "backend": "gort", "trials": 3}}`,
		chainSource))
	grain := make([]time.Duration, 0, pick(gortSamples, opt.Quick))
	for i := 0; i < cap(grain); i++ {
		d, err := timedPost(client, baseURL+"/v1/tune", grainBody)
		if err != nil {
			return nil, fmt.Errorf("tune grain phase: %w", err)
		}
		grain = append(grain, d)
	}
	rep.TuneGrain = summarize(grain)

	// Phase 8: batch throughput — the standard 6-loop mix per request.
	reqs := pick(batchReqs, opt.Quick)
	t0 := time.Now()
	for i := 0; i < reqs; i++ {
		if _, err := timedPost(client, baseURL+"/v1/batch", batchBody); err != nil {
			return nil, fmt.Errorf("batch phase: %w", err)
		}
	}
	wall := time.Since(t0)
	loops := reqs * len(scheduleBodies)
	rep.Batch = Throughput{
		Requests:    reqs,
		Loops:       loops,
		WallNS:      int64(wall),
		LoopsPerSec: float64(loops) / wall.Seconds(),
	}

	// Phase 9: concurrent mixed load.
	runner := &Runner{
		BaseURL:  baseURL,
		Client:   client,
		Workers:  workers,
		Requests: pick(loadRequests, opt.Quick),
	}
	load, err := runner.Run()
	if err != nil {
		return nil, fmt.Errorf("load phase: %w", err)
	}
	if load.Errors > 0 {
		return nil, fmt.Errorf("load phase: %d of %d requests failed", load.Errors, load.Requests)
	}
	rep.Load = load
	return rep, nil
}

// timedStreamPost posts one request and measures first-byte and
// full-body latency separately, counting the body bytes drained. It
// reads the body incrementally, so chunked replies (the streaming
// lane sets no Content-Length) and framed ones measure identically.
func timedStreamPost(client *http.Client, url string, body []byte) (firstByte, fullBody time.Duration, n int64, err error) {
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	var one [1]byte
	m, rerr := resp.Body.Read(one[:])
	firstByte = time.Since(t0)
	n = int64(m)
	if rerr != nil && rerr != io.EOF {
		return 0, 0, 0, rerr
	}
	c, rerr := io.Copy(io.Discard, resp.Body)
	fullBody = time.Since(t0)
	n += c
	if rerr != nil {
		return 0, 0, 0, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	return firstByte, fullBody, n, nil
}

// timedPost posts one request and returns its wall-clock latency; a
// non-200 status is an error (phases send only valid requests).
func timedPost(client *http.Client, url string, body []byte) (time.Duration, error) {
	t0 := time.Now()
	status, err := post(client, url, body)
	d := time.Since(t0)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("POST %s: status %d", url, status)
	}
	return d, nil
}

// Encode renders the report as the canonical indented JSON committed to
// BENCH_*.json files (trailing newline included, so files are
// POSIX-clean and `git diff` stays quiet about EOF).
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a trajectory file and checks it is ours.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Format != Format {
		return nil, fmt.Errorf("not a %s file (format %q)", Format, r.Format)
	}
	return &r, nil
}
