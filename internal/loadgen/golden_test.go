package loadgen

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
)

// keyPaths flattens decoded JSON into sorted dotted key paths
// ("cache_hit.p50_ns", ...). Arrays contribute their element paths
// without indices, so the comparison is purely structural.
func keyPaths(prefix string, v any, out map[string]bool) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			keyPaths(p, sub, out)
		}
	case []any:
		for _, sub := range t {
			keyPaths(prefix, sub, out)
		}
	}
}

func sortedPaths(data []byte, t *testing.T) []string {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool)
	keyPaths("", v, set)
	var out []string
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TestBenchSchemaGolden pins the BENCH_*.json wire format to the
// committed fixture: the key set of a freshly marshaled Report must
// equal the fixture's key set exactly, and the fixture must decode with
// the current Format and Version. Trajectory files across PRs are only
// diffable if this holds.
//
// If this test fails because you changed the schema on purpose: bump
// Version in report.go, regenerate the fixture as
// testdata/bench_v<N>.json (marshal a fully-populated Report), update
// the path below, and note the break in docs/API.md — older BENCH_*.json
// files stop being comparable at that point.
func TestBenchSchemaGolden(t *testing.T) {
	const fixture = "testdata/bench_v4.json"
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}

	rep, err := Decode(data)
	if err != nil {
		t.Fatalf("fixture does not decode as a trajectory file: %v", err)
	}
	if rep.Version != Version {
		t.Fatalf("fixture is schema version %d but the code is version %d: regenerate testdata/bench_v%d.json and update this test",
			rep.Version, Version, Version)
	}

	// Round-trip the decoded fixture through the current structs: any
	// field the structs dropped or renamed changes the key set.
	current, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, got := sortedPaths(data, t), sortedPaths(current, t)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("BENCH schema changed.\nfixture keys: %v\ncurrent keys: %v\n"+
			"If intentional: bump Version in report.go, regenerate testdata/bench_v%d.json, and update docs/API.md.",
			want, got, Version+1)
	}
}

// TestBenchSchemaFixtureComplete guards the fixture itself: every field
// must be populated (non-zero), so "all fields present" cannot be
// satisfied by a fixture that accidentally lost sections.
func TestBenchSchemaFixtureComplete(t *testing.T) {
	data, err := os.ReadFile("testdata/bench_v4.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(prefix string, v reflect.Value)
	walk = func(prefix string, v reflect.Value) {
		for i := 0; i < v.NumField(); i++ {
			f, ft := v.Field(i), v.Type().Field(i)
			name := prefix + ft.Name
			if f.Kind() == reflect.Struct {
				walk(name+".", f)
				continue
			}
			if f.IsZero() && ft.Name != "Quick" { // false is a fine Quick value
				t.Errorf("fixture field %s is zero; populate it so the golden covers every field", name)
			}
		}
	}
	walk("", reflect.ValueOf(*rep))
}

// TestCompareHit covers the trajectory gate paperbench -against uses.
func TestCompareHit(t *testing.T) {
	mk := func(p50 int64) *Report {
		return &Report{Format: Format, Version: Version, Hit: Latency{Samples: 10, P50NS: p50}}
	}
	if d, err := CompareHit(mk(1000), mk(1300)); err != nil || d < 0.29 || d > 0.31 {
		t.Fatalf("delta = %v, %v; want 0.30", d, err)
	}
	if d, err := CompareHit(mk(1000), mk(900)); err != nil || d > -0.09 || d < -0.11 {
		t.Fatalf("delta = %v, %v; want -0.10", d, err)
	}
	bad := mk(1000)
	bad.Version = Version + 1
	if _, err := CompareHit(mk(1000), bad); err == nil {
		t.Fatal("version mismatch must not be comparable")
	}
	quick := mk(1000)
	quick.Quick = true
	if _, err := CompareHit(mk(1000), quick); err == nil {
		t.Fatal("quick vs full must not be comparable")
	}
	if _, err := CompareHit(&Report{Format: Format, Version: Version}, mk(10)); err == nil {
		t.Fatal("empty previous report must not be comparable")
	}
}
