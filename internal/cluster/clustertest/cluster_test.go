package clustertest

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// suiteSpec is a scaled-down cut of the paper's random-loop generator:
// the same shape (simple + loop-carried dependences, uniform
// latencies, Cyclic subset extraction), sized so a multi-node replay
// under -race stays fast.
var suiteSpec = workload.RandomSpec{Nodes: 16, Simple: 10, LoopCarry: 10, MaxLatency: 3, MinCyclic: 5}

const (
	suiteProcs = 2
	suiteIters = 40
)

// randomSuite renders `count` seeded random loops to loop source.
func randomSuite(t *testing.T, count int) []string {
	t.Helper()
	out := make([]string, 0, count)
	for seed := int64(1); len(out) < count; seed++ {
		g, err := workload.Random(suiteSpec, seed)
		if err != nil {
			t.Fatal(err)
		}
		src, err := LoopSource(fmt.Sprintf("r%d", seed), g)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, src)
	}
	return out
}

// TestLoopSourceCompiles pins the renderer against the real compiler:
// every rendered suite loop compiles back to a graph with the same
// node count and schedules successfully.
func TestLoopSourceCompiles(t *testing.T) {
	p := pipeline.New(pipeline.Config{DisableCache: true})
	for seed := int64(1); seed <= 8; seed++ {
		g, err := workload.Random(suiteSpec, seed)
		if err != nil {
			t.Fatal(err)
		}
		src, err := LoopSource(fmt.Sprintf("r%d", seed), g)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := p.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: rendered source does not compile: %v\n%s", seed, err, src)
		}
		if got, want := compiled.Graph.N(), len(g.Nodes); got != want {
			t.Fatalf("seed %d: compiled to %d nodes, want %d\n%s", seed, got, want, src)
		}
	}
}

// TestClusterSchedulesOnceAndByteIdentical is the cross-process
// singleflight acceptance test: a 3-node cluster under concurrent
// replay of the seeded random suite — every node asked for every loop,
// twice, all in flight together — schedules each unique loop exactly
// once cluster-wide, and every node serves byte-identical ScheduleJSON.
func TestClusterSchedulesOnceAndByteIdentical(t *testing.T) {
	c := New(t, Options{Nodes: 3})
	suite := randomSuite(t, 5)

	const rounds = 2
	type result struct {
		node string
		loop int
		body []byte
	}
	var wg sync.WaitGroup
	results := make(chan result, len(c.Names())*len(suite)*rounds)
	for r := 0; r < rounds; r++ {
		for _, name := range c.Names() {
			for i, src := range suite {
				wg.Add(1)
				go func(name string, i int, src string) {
					defer wg.Done()
					results <- result{name, i, c.ScheduleJSON(name, src, suiteProcs, suiteIters)}
				}(name, i, src)
			}
		}
	}
	wg.Wait()
	close(results)

	// Byte identity: all replies for one loop carry the same schedule.
	want := make(map[int][]byte)
	for res := range results {
		if prev, ok := want[res.loop]; !ok {
			want[res.loop] = res.body
		} else if !bytes.Equal(prev, res.body) {
			t.Fatalf("loop %d: node %s served different schedule bytes", res.loop, res.node)
		}
	}
	if len(want) != len(suite) {
		t.Fatalf("replies for %d loops, want %d", len(want), len(suite))
	}

	// Exactly-once: the whole fleet computed each unique loop once.
	if got, wantN := c.Computes(), uint64(len(suite)); got != wantN {
		t.Fatalf("cluster computed %d plans for %d unique loops", got, wantN)
	}

	// The answers crossed the wire: every non-owner reply came from a
	// peer fill or a forward (it cannot have computed — the count above
	// proves that), so cross-node traffic is structural, not timing.
	var crossNode uint64
	for _, name := range c.Names() {
		cs := c.Node(name).Peer.ClusterStats()
		crossNode += cs.Fills + cs.Forwards
	}
	if crossNode == 0 {
		t.Fatal("no peer fill or forward ever happened")
	}
}

// TestClusterForwardToOwner pins the forward path deterministically: a
// non-owner asked about a cold loop forwards to the owner, which
// computes it; the non-owner computes nothing.
func TestClusterForwardToOwner(t *testing.T) {
	c := New(t, Options{Nodes: 3})
	src := randomSuite(t, 1)[0]
	owner := c.OwnerOf(c.Key(src, suiteProcs, suiteIters))
	var other string
	for _, name := range c.Names() {
		if name != owner {
			other = name
			break
		}
	}

	body := c.ScheduleJSON(other, src, suiteProcs, suiteIters)
	if got := c.Node(other).Pipe.Stats().Computes; got != 0 {
		t.Fatalf("non-owner computed %d plans", got)
	}
	if got := c.Node(owner).Pipe.Stats().Computes; got != 1 {
		t.Fatalf("owner computed %d plans, want 1", got)
	}
	if cs := c.Node(other).Peer.ClusterStats(); cs.Forwards != 1 {
		t.Fatalf("non-owner cluster stats = %+v, want one forward", cs)
	}
	// The owner serves the same bytes directly.
	if direct := c.ScheduleJSON(owner, src, suiteProcs, suiteIters); !bytes.Equal(direct, body) {
		t.Fatal("owner and forwarded replies differ")
	}
}

// TestClusterStatsEndpoint: every node's /v1/stats carries the cluster
// block with the fixed membership.
func TestClusterStatsEndpoint(t *testing.T) {
	c := New(t, Options{Nodes: 3})
	for _, name := range c.Names() {
		resp, err := http.Get(c.Node(name).URL() + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		for _, frag := range []string{`"cluster"`, `"self":"` + name + `"`, `"virtual_nodes"`, `"fills"`, `"forwards"`} {
			if !bytes.Contains(buf.Bytes(), []byte(frag)) {
				t.Fatalf("node %s stats missing %s: %s", name, frag, buf.Bytes())
			}
		}
	}
}

// TestClusterOwnerDownDegradesToLocalCompute: with a loop's owner
// killed, a non-owner answers the request itself — promptly, no error
// surfaced, and repeat traffic skips the dead peer via the breaker.
func TestClusterOwnerDownDegradesToLocalCompute(t *testing.T) {
	c := New(t, Options{Nodes: 3})
	suite := randomSuite(t, 3)

	// Find a loop with distinct owner and non-owner.
	var src, owner, other string
	for _, s := range suite {
		owner = c.OwnerOf(c.Key(s, suiteProcs, suiteIters))
		for _, name := range c.Names() {
			if name != owner {
				src, other = s, name
				break
			}
		}
		if src != "" {
			break
		}
	}
	c.Kill(owner)

	// The deadline: a dead owner must cost a failed dial and a retry,
	// not a hang. The bound is generous for -race CI boxes yet far
	// below any client-visible timeout.
	start := time.Now()
	status, body := c.Schedule(other, src, suiteProcs, suiteIters)
	if status != http.StatusOK {
		t.Fatalf("degraded schedule: %d %s", status, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("degraded schedule took %v", elapsed)
	}
	if got := c.Node(other).Pipe.Stats().Computes; got != 1 {
		t.Fatalf("non-owner computed %d plans, want 1 (local degrade)", got)
	}

	// Repeats are local cache hits; nothing else is computed and no
	// request fails while the owner stays dead.
	for i := 0; i < 5; i++ {
		if status, body := c.Schedule(other, src, suiteProcs, suiteIters); status != http.StatusOK {
			t.Fatalf("repeat %d: %d %s", i, status, body)
		}
	}
	if got := c.Node(other).Pipe.Stats().Computes; got != 1 {
		t.Fatalf("repeats recomputed: computes = %d", got)
	}
	cs := c.Node(other).Peer.ClusterStats()
	if cs.ForwardErrors == 0 {
		t.Fatalf("no forward error recorded against the dead owner: %+v", cs)
	}
}

// TestClusterOwnerRestartResumesByteIdentical: killing and restarting
// an owner changes nothing about the ring and nothing about the bytes —
// membership and ownership are identical, and the restarted node (and
// its peers, via peer fill) serve the pre-crash plans byte-for-byte
// from its durable store without rescheduling.
func TestClusterOwnerRestartResumesByteIdentical(t *testing.T) {
	c := New(t, Options{Nodes: 3, Disk: true})
	suite := randomSuite(t, 3)

	// Schedule everything through its owner so every plan lands on the
	// owner's disk.
	kind := make(map[string]string, len(suite))
	before := make(map[string][]byte, len(suite))
	for _, src := range suite {
		owner := c.OwnerOf(c.Key(src, suiteProcs, suiteIters))
		kind[src] = owner
		before[src] = c.ScheduleJSON(owner, src, suiteProcs, suiteIters)
	}

	victim := kind[suite[0]]
	ringBefore := c.Node(victim).Peer.Ring().Peers()
	c.Kill(victim)
	c.Restart(victim)

	// Ring membership and ownership are configuration, not liveness:
	// both survive the restart unchanged.
	ringAfter := c.Node(victim).Peer.Ring().Peers()
	if len(ringBefore) != len(ringAfter) {
		t.Fatalf("ring size changed across restart: %v -> %v", ringBefore, ringAfter)
	}
	for i := range ringBefore {
		if ringBefore[i] != ringAfter[i] {
			t.Fatalf("ring membership changed across restart: %v -> %v", ringBefore, ringAfter)
		}
	}
	for _, src := range suite {
		if got := c.OwnerOf(c.Key(src, suiteProcs, suiteIters)); got != kind[src] {
			t.Fatalf("ownership moved across restart: %s -> %s", kind[src], got)
		}
	}

	// The restarted owner's loops replay from disk: byte-identical,
	// zero rescheduling.
	for _, src := range suite {
		if kind[src] != victim {
			continue
		}
		if got := c.ScheduleJSON(victim, src, suiteProcs, suiteIters); !bytes.Equal(got, before[src]) {
			t.Fatal("restarted owner served different schedule bytes")
		}
	}
	if got := c.Node(victim).Pipe.Stats().Computes; got != 0 {
		t.Fatalf("restarted owner rescheduled %d plans", got)
	}

	// A peer that never saw these loops fills them from the restarted
	// owner — same bytes over the peer-fill path.
	for _, src := range suite {
		if kind[src] != victim {
			continue
		}
		for _, name := range c.Names() {
			if name == victim {
				continue
			}
			if got := c.ScheduleJSON(name, src, suiteProcs, suiteIters); !bytes.Equal(got, before[src]) {
				t.Fatalf("node %s served different bytes after the owner restart", name)
			}
		}
	}

	// Streamed peer fills are durable: with a disk tier configured the
	// fill flows through DiskStore.PutRecord (validated, then renamed
	// into place), so every filler's own disk now holds the record — a
	// filler restart would serve it locally instead of re-fetching.
	for _, name := range c.Names() {
		if name == victim {
			continue
		}
		if cs := c.Node(name).Peer.ClusterStats(); cs.Fills == 0 {
			t.Fatalf("node %s recorded no fills", name)
		}
		disk, ok := c.Node(name).Pipe.Stats().Store.Tier("disk")
		if !ok || disk.Puts == 0 {
			t.Fatalf("node %s: streamed fill did not land on the disk tier: %+v", name, disk)
		}
	}
}

// TestClusterPartitionMidReplay: a partition between two nodes midway
// through a replay costs no request — the cut-off node degrades to
// local compute for keys across the partition and recovers after the
// heal.
func TestClusterPartitionMidReplay(t *testing.T) {
	c := New(t, Options{Nodes: 3})
	suite := randomSuite(t, 4)

	replay := func(round string) {
		var wg sync.WaitGroup
		for _, name := range c.Names() {
			for i, src := range suite {
				wg.Add(1)
				go func(name string, i int, src string) {
					defer wg.Done()
					if status, body := c.Schedule(name, src, suiteProcs, suiteIters); status != http.StatusOK {
						t.Errorf("%s: node %s loop %d: %d %s", round, name, i, status, body)
					}
				}(name, i, src)
			}
		}
		wg.Wait()
	}

	replay("pre-partition")
	a, b := c.Names()[0], c.Names()[1]
	c.Partition(a, b)
	replay("partitioned")
	c.Heal(a, b)
	replay("healed")

	// Liveness held throughout (any failed request already t.Errored);
	// the suite itself was computed at most once per (loop, side of the
	// partition) — never more than 2x the unique loops.
	if got, max := c.Computes(), uint64(2*len(suite)); got > max {
		t.Fatalf("cluster computed %d plans for %d unique loops under one partition", got, max)
	}
}
