// Package clustertest is an in-process multi-node harness for cluster
// mode: N real loopsched servers (httptest listeners over the real
// pipeline.Server mux) that share nothing but the wire protocol, wired
// together by a fault-injecting transport. Peers are addressed by
// stable logical names ("node0", "node1", ...) that the transport
// resolves to whatever listener currently backs the name, so a node
// can be killed and restarted — new listener, new process-equivalent
// state — without the ring membership ever changing, exactly like a
// production node rejoining under its configured address.
//
// Faults are deterministic and reversible: Kill marks a node down (its
// peers' dials fail) and closes its listener; Restart brings up a
// fresh server over the node's durable directory; Partition severs one
// pair of nodes in both directions while each keeps serving its own
// clients. External test traffic talks straight to a node's listener
// and is never subject to the injected faults — only intra-cluster
// calls route through the fault transport, as in a real deployment
// where the client network and the cluster interconnect fail
// independently.
package clustertest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/store"
)

// Options shapes a test cluster.
type Options struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// VNodes is the ring's virtual-node count per peer (default
	// store.DefaultVNodes).
	VNodes int
	// Disk gives every node its own durable plan directory under the
	// test's temp dir, so a restarted node resumes from its records.
	Disk bool
}

// Cluster is a running in-process cluster.
type Cluster struct {
	t     *testing.T
	opts  Options
	names []string
	reg   *registry
	dirs  map[string]string

	mu    sync.Mutex
	nodes map[string]*Node
}

// Node is one live cluster member.
type Node struct {
	Name string
	Pipe *pipeline.Pipeline
	Peer *store.PeerStore
	srv  *httptest.Server
}

// URL is the node's client-facing base URL.
func (n *Node) URL() string { return n.srv.URL }

// New starts a cluster and registers its teardown with t.Cleanup.
func New(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	c := &Cluster{
		t:     t,
		opts:  opts,
		reg:   newRegistry(),
		dirs:  make(map[string]string),
		nodes: make(map[string]*Node),
	}
	for i := 0; i < opts.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		c.names = append(c.names, name)
		if opts.Disk {
			c.dirs[name] = t.TempDir()
		}
	}
	for _, name := range c.names {
		c.start(name)
	}
	t.Cleanup(c.Close)
	return c
}

// start builds and registers a fresh server for name (initial boot and
// restarts alike).
func (c *Cluster) start(name string) *Node {
	c.t.Helper()
	// The disk tier opens first so the peer tier can stream fetched
	// records through it (RecordSink) instead of slurping them whole.
	var disk *store.DiskStore
	if dir := c.dirs[name]; dir != "" {
		var err error
		disk, err = store.Open(store.DiskConfig{Dir: dir})
		if err != nil {
			c.t.Fatal(err)
		}
	}
	cfg := store.PeerConfig{
		Self:      name,
		Peers:     c.names,
		VNodes:    c.opts.VNodes,
		Transport: &faultTransport{from: name, reg: c.reg},
		// Test-speed fault handling: short fetches, one quick retry, a
		// breaker that opens after two failed operations and re-probes
		// fast, so a degrade-and-recover cycle fits in a test run.
		FetchTimeout:    5 * time.Second,
		ForwardTimeout:  30 * time.Second,
		Retries:         1,
		Backoff:         5 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
	}
	if disk != nil {
		cfg.RecordSink = disk
	}
	peer, err := store.NewPeer(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	// The serving store stack, peer tier between memory and disk:
	// Tiered(mem, Tiered(peer, disk)) — or Tiered(mem, peer) when the
	// node runs without durable storage.
	var lower pipeline.PlanStore = peer
	if disk != nil {
		lower = store.NewTiered(peer, disk)
	}
	pipe := pipeline.New(pipeline.Config{
		Store: store.NewTiered(pipeline.NewMemStore(pipeline.MemConfig{}), lower),
	})
	hs := httptest.NewServer(pipeline.NewServerWith(pipe, pipeline.ServerConfig{Cluster: peer}))
	n := &Node{Name: name, Pipe: pipe, Peer: peer, srv: hs}
	c.reg.setAddr(name, hs.Listener.Addr().String())
	c.reg.setDown(name, false)
	c.mu.Lock()
	c.nodes[name] = n
	c.mu.Unlock()
	return n
}

// Names returns the fixed ring membership.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// Node returns the live node of that name.
func (c *Cluster) Node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		c.t.Fatalf("clustertest: no node %q", name)
	}
	return n
}

// Kill takes a node down: peers' calls to it fail at dial time and its
// listener closes mid-flight. The node's durable directory survives.
func (c *Cluster) Kill(name string) {
	c.t.Helper()
	n := c.Node(name)
	c.reg.setDown(name, true)
	n.srv.Close()
	if err := n.Pipe.Close(); err != nil {
		c.t.Fatal(err)
	}
}

// Restart boots a fresh server for a killed node — cold memory, the
// same durable directory, the same ring name and membership.
func (c *Cluster) Restart(name string) *Node {
	c.t.Helper()
	return c.start(name)
}

// Partition severs a<->b in both directions; each side still serves
// its own clients and reaches every other peer.
func (c *Cluster) Partition(a, b string) { c.reg.setPartition(a, b, true) }

// Heal undoes Partition.
func (c *Cluster) Heal(a, b string) { c.reg.setPartition(a, b, false) }

// Close shuts every live node down.
func (c *Cluster) Close() {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.nodes = make(map[string]*Node)
	c.mu.Unlock()
	for _, n := range nodes {
		n.srv.Close()
		_ = n.Pipe.Close()
	}
}

// Computes sums Stats.Computes over the live nodes: how many plans the
// cluster actually scheduled.
func (c *Cluster) Computes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total uint64
	for _, n := range c.nodes {
		total += n.Pipe.Stats().Computes
	}
	return total
}

// Key compiles source and derives the plan key a server would compute
// for it, using a throwaway cache-less pipeline (compilation is pure).
func (c *Cluster) Key(source string, procs, iters int) string {
	c.t.Helper()
	compiled, err := pipeline.New(pipeline.Config{DisableCache: true}).Compile(source)
	if err != nil {
		c.t.Fatalf("clustertest: key compile: %v", err)
	}
	return pipeline.PlanKey(compiled.Graph.Fingerprint(), core.Options{Processors: procs, CommCost: 2}, iters)
}

// OwnerOf names the ring owner of a plan key (every node agrees; the
// harness asks node0's ring).
func (c *Cluster) OwnerOf(key string) string {
	return c.Node(c.names[0]).Peer.Ring().Owner(key)
}

// Schedule posts one schedule request to the named node and returns
// the HTTP status and raw body.
func (c *Cluster) Schedule(node, source string, procs, iters int) (int, []byte) {
	c.t.Helper()
	body := fmt.Sprintf(`{"source":%s,"processors":%d,"iterations":%d}`,
		strconv.Quote(source), procs, iters)
	resp, err := http.Post(c.Node(node).URL()+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		c.t.Fatalf("clustertest: schedule on %s: %v", node, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("clustertest: schedule on %s: %v", node, err)
	}
	return resp.StatusCode, data
}

// ScheduleJSON posts one schedule request and returns the embedded raw
// schedule bytes — the byte-identity currency of the acceptance tests.
func (c *Cluster) ScheduleJSON(node, source string, procs, iters int) []byte {
	c.t.Helper()
	status, data := c.Schedule(node, source, procs, iters)
	if status != http.StatusOK {
		c.t.Fatalf("clustertest: schedule on %s: status %d: %s", node, status, data)
	}
	var out pipeline.ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		c.t.Fatalf("clustertest: schedule on %s: %v", node, err)
	}
	return out.Schedule
}

// registry is the cluster's single source of truth for where each
// logical peer name currently listens and which faults are active.
type registry struct {
	mu    sync.Mutex
	addrs map[string]string
	down  map[string]bool
	parts map[[2]string]bool
}

func newRegistry() *registry {
	return &registry{
		addrs: make(map[string]string),
		down:  make(map[string]bool),
		parts: make(map[[2]string]bool),
	}
}

func (r *registry) setAddr(name, addr string) {
	r.mu.Lock()
	r.addrs[name] = addr
	r.mu.Unlock()
}

func (r *registry) setDown(name string, down bool) {
	r.mu.Lock()
	r.down[name] = down
	r.mu.Unlock()
}

func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (r *registry) setPartition(a, b string, cut bool) {
	r.mu.Lock()
	r.parts[partKey(a, b)] = cut
	r.mu.Unlock()
}

// resolve maps a logical target to its live address, or an error when
// a fault blocks the path.
func (r *registry) resolve(from, to string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down[to] {
		return "", fmt.Errorf("clustertest: %s is down", to)
	}
	if r.parts[partKey(from, to)] {
		return "", fmt.Errorf("clustertest: %s and %s are partitioned", from, to)
	}
	addr, ok := r.addrs[to]
	if !ok {
		return "", fmt.Errorf("clustertest: unknown peer %s", to)
	}
	return addr, nil
}

// faultTransport is each node's view of the interconnect: it resolves
// logical peer names through the registry (injecting the active
// faults) and hands the rewritten request to the real TCP transport.
// Connections are deliberately not pooled across calls — a restarted
// node must be re-dialed at its new listener, not reached over a stale
// kept-alive conn.
type faultTransport struct {
	from string
	reg  *registry
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	addr, err := ft.reg.resolve(ft.from, req.URL.Host)
	if err != nil {
		return nil, err
	}
	req = req.Clone(req.Context())
	req.URL.Host = addr
	return http.DefaultTransport.RoundTrip(req)
}

// LoopSource renders a dependence graph back to loop-language source:
// one statement per node (array n<ID>, the node's latency pinned via
// @lat), one reference per distinct incoming (producer, distance)
// edge. Statements are emitted in a topological order of the
// distance-0 edges so every same-iteration reference reads an array
// assigned earlier in the body — the workload generators orient simple
// dependences acyclically, so such an order always exists. This is how
// the random suite (graphs, not programs) is replayed over the
// cluster's HTTP-only surface.
func LoopSource(name string, g *graph.Graph) (string, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.Edges {
		if e.Distance == 0 {
			if e.From == e.To {
				return "", fmt.Errorf("clustertest: node %d has a distance-0 self edge", e.From)
			}
			succ[e.From] = append(succ[e.From], e.To)
			indeg[e.To]++
		}
	}
	// Kahn's algorithm, smallest ready ID first for a deterministic
	// rendering (n is tiny; the quadratic scan is fine).
	order := make([]int, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		pick := -1
		for v := 0; v < n; v++ {
			if !done[v] && indeg[v] == 0 {
				pick = v
				break
			}
		}
		if pick < 0 {
			return "", fmt.Errorf("clustertest: distance-0 edges of %s form a cycle", name)
		}
		done[pick] = true
		order = append(order, pick)
		for _, w := range succ[pick] {
			indeg[w]--
		}
	}

	// One reference per distinct (producer, distance) pair, sorted for
	// stable output.
	type ref struct{ from, dist int }
	refs := make(map[int][]ref, n)
	for _, e := range g.Edges {
		r := ref{e.From, e.Distance}
		dup := false
		for _, have := range refs[e.To] {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			refs[e.To] = append(refs[e.To], r)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %s {\n", name)
	for _, v := range order {
		rs := refs[v]
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].from != rs[b].from {
				return rs[a].from < rs[b].from
			}
			return rs[a].dist < rs[b].dist
		})
		terms := make([]string, 0, len(rs))
		for _, r := range rs {
			if r.dist == 0 {
				terms = append(terms, fmt.Sprintf("n%d[i]", r.from))
			} else {
				terms = append(terms, fmt.Sprintf("n%d[i-%d]", r.from, r.dist))
			}
		}
		expr := "1.0"
		if len(terms) > 0 {
			expr = strings.Join(terms, " + ")
		}
		fmt.Fprintf(&sb, "    n%d[i] = %s @lat(%d)\n", v, expr, g.Nodes[v].Latency)
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
