package metrics

import (
	"strings"
	"testing"
)

func TestPercentParallelism(t *testing.T) {
	if got := PercentParallelism(100, 60); got != 40 {
		t.Fatalf("Sp = %v, want 40", got)
	}
	if got := PercentParallelism(100, 100); got != 0 {
		t.Fatalf("Sp = %v, want 0", got)
	}
	if got := PercentParallelism(100, 150); got != -50 {
		t.Fatalf("Sp = %v, want -50", got)
	}
	if got := PercentParallelism(0, 10); got != 0 {
		t.Fatalf("Sp with zero sequential = %v", got)
	}
}

func TestClampZero(t *testing.T) {
	if got := ClampZero(-3); got != 0 {
		t.Fatalf("clamp = %v", got)
	}
	if got := ClampZero(7.5); got != 7.5 {
		t.Fatalf("clamp = %v", got)
	}
}

func TestMeanAndFactor(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := SpeedupFactor(45, 15); got != 3 {
		t.Fatalf("factor = %v", got)
	}
	if got := SpeedupFactor(45, 0); got != 0 {
		t.Fatalf("factor/0 = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"loop", "x", "doacross"}}
	tbl.AddRow("0", F1(45.25), F1(18.6))
	tbl.AddRow("1", F4(36.1), F1(0))
	s := tbl.String()
	for _, want := range []string{"loop", "45.2", "36.1000", "0.0", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Count(s, "\n")
	if lines != 4 { // header + separator + 2 rows
		t.Fatalf("lines = %d, want 4:\n%s", lines, s)
	}
}
