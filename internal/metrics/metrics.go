// Package metrics implements the paper's evaluation metric — percentage
// parallelism — and the aggregate statistics of Table 1.
package metrics

import (
	"fmt"
	"strings"
)

// PercentParallelism is the paper's Sp = (s - p) / s * 100 ([Cytron84]),
// where s and p are sequential and parallel execution times. Negative
// values mean the parallel execution was slower.
func PercentParallelism(seq, par int) float64 {
	return PercentParallelismF(seq, float64(par))
}

// PercentParallelismF is PercentParallelism for a fractional parallel
// time — e.g. a mean makespan over repeated trials.
func PercentParallelismF(seq int, par float64) float64 {
	return PercentParallelismFloat(float64(seq), par)
}

// PercentParallelismFloat is the metric for fully fractional times —
// e.g. wall-clock nanoseconds from the goroutine execution backend. All
// three spellings share this one formula (integer baselines convert
// exactly: schedule lengths are far below 2^53).
func PercentParallelismFloat(seq, par float64) float64 {
	if seq <= 0 {
		return 0
	}
	return (seq - par) / seq * 100
}

// ClampZero reports a percentage the way the paper's tables do: a scheduler
// would fall back to sequential execution rather than run a slower parallel
// version, so negative parallelism is reported as 0.
func ClampZero(sp float64) float64 {
	if sp < 0 {
		return 0
	}
	return sp
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SpeedupFactor is the paper's Table 1(b) "factor of speed-up over
// DOACROSS": the ratio of mean percentage parallelisms.
func SpeedupFactor(ours, doacross float64) float64 {
	if doacross == 0 {
		return 0
	}
	return ours / doacross
}

// Table renders rows of labeled float columns with a header, space-aligned,
// in the spirit of the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F1 formats with one decimal, as the paper's per-loop entries.
func F1(x float64) string { return fmt.Sprintf("%.1f", x) }

// F4 formats with four decimals, as the paper's Table 1(b) averages.
func F4(x float64) string { return fmt.Sprintf("%.4f", x) }
