package calib

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mimdloop/internal/exec"
)

// TestFitRecoversSyntheticModel pins the solver: observations generated
// from a known linear model fit back to it (near-)exactly, residuals
// reported as zero.
func TestFitRecoversSyntheticModel(t *testing.T) {
	want := exec.CostModel{ComputeNsPerCycle: 4.5, CommNsPerMessage: 900, IterOverheadNs: 120}
	var rows []obs
	for _, x := range [][3]float64{
		{100, 10, 20}, {250, 40, 20}, {400, 5, 60}, {800, 80, 60}, {1200, 0, 100}, {60, 25, 10},
	} {
		rows = append(rows, obs{x: x, y: want.PlanNs(x[0], int(x[1]), int(x[2]))})
	}
	got, rmse, mae, err := fit(rows)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-6
	if diff := got.ComputeNsPerCycle - want.ComputeNsPerCycle; diff > tol || diff < -tol {
		t.Errorf("compute %v, want %v", got.ComputeNsPerCycle, want.ComputeNsPerCycle)
	}
	if diff := got.CommNsPerMessage - want.CommNsPerMessage; diff > tol || diff < -tol {
		t.Errorf("comm %v, want %v", got.CommNsPerMessage, want.CommNsPerMessage)
	}
	if diff := got.IterOverheadNs - want.IterOverheadNs; diff > tol || diff < -tol {
		t.Errorf("iter %v, want %v", got.IterOverheadNs, want.IterOverheadNs)
	}
	if rmse > 1e-3 || mae > 1e-6 {
		t.Errorf("exact data left residuals: rmse %v, mae %v", rmse, mae)
	}
}

// TestFitClampsNegativeCoefficients pins the nonnegativity guard: data
// that pulls a coefficient negative refits with that column dropped
// rather than shipping a physically meaningless (and ranking-inverting)
// negative cost.
func TestFitClampsNegativeCoefficients(t *testing.T) {
	// y depends on cycles only, with messages anticorrelated to cycles:
	// the unconstrained comm coefficient comes out negative.
	var rows []obs
	for _, x := range [][3]float64{
		{100, 90, 20}, {200, 80, 20}, {400, 60, 60}, {800, 20, 60}, {1600, 5, 100},
	} {
		rows = append(rows, obs{x: x, y: 10*x[0] - 3*x[1]})
	}
	got, _, _, err := fit(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got.CommNsPerMessage < 0 || got.ComputeNsPerCycle < 0 || got.IterOverheadNs < 0 {
		t.Fatalf("negative coefficient survived: %+v", got)
	}
}

// TestFitSingularSuite pins the degenerate-suite error path: identical
// observation rows cannot determine three coefficients.
func TestFitSingularSuite(t *testing.T) {
	rows := []obs{
		{x: [3]float64{100, 10, 20}, y: 1000},
		{x: [3]float64{100, 10, 20}, y: 1000},
		{x: [3]float64{100, 10, 20}, y: 1000},
		{x: [3]float64{100, 10, 20}, y: 1000},
	}
	if _, _, _, err := fit(rows); err == nil {
		t.Fatal("singular normal equations accepted")
	}
}

// TestCalibrateEndToEnd runs a real (quick) probe pass: the profile
// must carry a usable nonzero model, plausible residual accounting, and
// its provenance.
func TestCalibrateEndToEnd(t *testing.T) {
	p, err := Calibrate(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.IsZero() {
		t.Fatal("calibration fitted the zero model")
	}
	if p.Model.SeqNsPerCycle <= 0 {
		t.Fatalf("sequential scale not fitted: %+v", p.Model)
	}
	if p.Samples < 4 || p.RMSENs < 0 || p.FitError < 0 {
		t.Fatalf("implausible fit accounting: %+v", p)
	}
	if p.Probes != 2 || p.Trials != 2 || p.Seed != 1 {
		t.Fatalf("provenance drifted: %+v", p)
	}
	if p.CreatedUnixNs <= 0 || p.Age() < 0 || p.Age() > time.Minute {
		t.Fatalf("created timestamp implausible: %d", p.CreatedUnixNs)
	}
}

// TestManagerLifecycle pins the manager: unfitted stats, refresh
// installing + persisting + counting, and a restarted manager resuming
// from the persisted profile.
func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(ProfilePath(dir))
	if err := m.Load(); err != nil {
		t.Fatalf("load with no profile file: %v", err)
	}
	if _, ok := m.Model(); ok {
		t.Fatal("unfitted manager reported a model")
	}
	cs := m.CalibStats()
	if cs.Present || cs.Refreshes != 0 {
		t.Fatalf("unfitted stats: %+v", cs)
	}

	p, err := m.Refresh(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if model, ok := m.Model(); !ok || model != p.Model {
		t.Fatalf("refresh did not install the fit: %v", model)
	}
	cs = m.CalibStats()
	if !cs.Present || cs.Refreshes != 1 || cs.Samples != p.Samples || cs.Model != p.Model {
		t.Fatalf("stats after refresh: %+v", cs)
	}
	if _, err := os.Stat(ProfilePath(dir)); err != nil {
		t.Fatalf("refresh did not persist: %v", err)
	}

	m2 := NewManager(ProfilePath(dir))
	if err := m2.Load(); err != nil {
		t.Fatal(err)
	}
	p2 := m2.Profile()
	if p2 == nil || p2.Model != p.Model || p2.CreatedUnixNs != p.CreatedUnixNs {
		t.Fatalf("restart did not resume the persisted profile: %+v", p2)
	}
}

// TestManagerStartStop pins the background loop: it refreshes on the
// ticker and stop() halts it (no goroutine leak under -race).
func TestManagerStartStop(t *testing.T) {
	m := NewManager("")
	stop := m.Start(5*time.Millisecond, Quick(), t.Logf)
	deadline := time.Now().Add(10 * time.Second)
	for m.CalibStats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background refresh never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	n := m.CalibStats().Refreshes
	time.Sleep(30 * time.Millisecond)
	if got := m.CalibStats().Refreshes; got != n {
		t.Fatalf("refreshes kept running after stop: %d -> %d", n, got)
	}
}

// TestManagerLoadCorrupt pins the corrupt-profile startup path: Load
// reports the error and the file lands in quarantine.
func TestManagerLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := ProfilePath(dir)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(path)
	if err := m.Load(); err == nil {
		t.Fatal("corrupt profile loaded silently")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, ProfileFile)); err != nil {
		t.Fatalf("corrupt profile not quarantined: %v", err)
	}
}
