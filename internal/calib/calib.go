// Package calib closes the sim-vs-gort loop: it fits the simulated
// machine's cost accounting to measured goroutine-runtime makespans, so
// the deterministic simulator can rank plans in predicted wall-clock
// nanoseconds — the real runtime's ordering — at simulator cost.
//
// The pieces:
//
//   - A Calibrator (Calibrate) runs a small seeded probe suite — random
//     paper-spec loops scheduled at a few (p, k) grid points and
//     iteration counts — through both exec backends, and least-squares
//     fits a linear exec.CostModel (ns per simulated cycle, ns per
//     cross-processor message, ns per iteration of runtime overhead)
//     from the sim accounting to the measured gort makespans.
//   - A Profile wraps the fitted model with its fit quality (residuals,
//     sample count) and provenance, versioned and persisted as JSON
//     beside the disk plan store (codec.go).
//   - A Manager (manager.go) holds the live profile for a serving
//     process, refreshing it from a background goroutine and answering
//     the pipeline.Calibration seam behind `eval.backend=csim`.
//
// The fit is deliberately tiny — four coefficients, tens of
// observations, normal equations — because its job is ordinal, not
// metric: csim only has to rank plans the way gort would. Parallel-plan
// rows and sequential-baseline rows are fitted separately (plan rows
// drive ComputeNsPerCycle / CommNsPerMessage / IterOverheadNs, the
// sequential rows drive SeqNsPerCycle alone): a parallel simulated
// cycle costs channel blocking and scheduler wakeups that a sequential
// cycle does not, and one shared coefficient would split the difference
// and mispredict both.
package calib

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"mimdloop/internal/core"
	"mimdloop/internal/exec"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// Profile is one fitted calibration: the cost model plus the evidence
// behind it. It is what persists on disk and what /v1/stats reports on.
type Profile struct {
	// Model is the fitted linear map from sim accounting to nanoseconds.
	Model exec.CostModel `json:"model"`
	// Samples is the number of probe observations the fit saw.
	Samples int `json:"samples"`
	// RMSENs is the root-mean-square fit residual in nanoseconds.
	RMSENs float64 `json:"rmse_ns"`
	// FitError is the mean absolute relative residual (0.10 = probe
	// makespans mispredicted by 10% on average).
	FitError float64 `json:"fit_error"`
	// Probes, Trials and Seed echo the calibration configuration.
	Probes int   `json:"probes"`
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// GoMaxProcs records the parallelism the probes ran under: a
	// profile fitted on a different processor budget is suspect.
	GoMaxProcs int `json:"gomaxprocs"`
	// CreatedUnixNs is the fit time (UnixNano), the basis of Age.
	CreatedUnixNs int64 `json:"created_unix_ns"`
}

// Age is the time since the profile was fitted.
func (p *Profile) Age() time.Duration {
	return time.Since(time.Unix(0, p.CreatedUnixNs))
}

// Config shapes one calibration pass. The zero value takes defaults
// sized so a full pass costs well under a second.
type Config struct {
	// Probes is the number of distinct seeded random loops (default 3).
	Probes int
	// Trials is the gort trial count per observation (default 3); the
	// fit targets the trial mean.
	Trials int
	// Iterations are the scheduled iteration counts each probe runs at
	// (default {20, 60}) — varying them is what separates per-iteration
	// overhead from per-cycle compute.
	Iterations []int
	// Points are the (p, k) grid cells each probe is scheduled at
	// (default {2,2}, {4,2}, {8,3}) — varying p is what exposes the
	// per-message cost. Unschedulable points are skipped.
	Points []pipeline.Point
	// Seed is the first probe loop's workload seed (default 1);
	// probe i uses Seed+i.
	Seed int64
	// Spec generates the probe loops (default workload.PaperSpec).
	Spec workload.RandomSpec
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.Probes == 0 {
		c.Probes = 3
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if len(c.Iterations) == 0 {
		c.Iterations = []int{20, 60}
	}
	if len(c.Points) == 0 {
		c.Points = []pipeline.Point{{Processors: 2, CommCost: 2}, {Processors: 4, CommCost: 2}, {Processors: 8, CommCost: 3}}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Spec == (workload.RandomSpec{}) {
		c.Spec = workload.PaperSpec
	}
	return c
}

// Quick is the cheap configuration CLI -quick and smoke tests use: two
// probes, two trials, the extreme grid points. Two iteration counts are
// kept even here — with a single count the iteration column is constant
// and the fit degenerates into pure per-iteration overhead.
func Quick() Config {
	return Config{
		Probes:     2,
		Trials:     2,
		Iterations: []int{15, 45},
		Points:     []pipeline.Point{{Processors: 2, CommCost: 2}, {Processors: 8, CommCost: 2}},
	}
}

// obs is one parallel-plan fit row: x = (sim makespan cycles, messages,
// iterations), y = measured gort nanoseconds.
type obs struct {
	x [3]float64
	y float64
}

// seqObs is one sequential-baseline fit row: x = sequential schedule
// cycles, y = measured sequential nanoseconds.
type seqObs struct {
	x, y float64
}

// Calibrate runs the probe suite and fits a Profile. It resets the gort
// backend's memoized sequential baselines first, so the fit never
// inherits timings from a differently-loaded moment of the host.
func Calibrate(cfg Config) (*Profile, error) {
	cfg = cfg.withDefaults()
	exec.ResetSequentialBaselines()
	var rows []obs
	var seqRows []seqObs
	for i := 0; i < cfg.Probes; i++ {
		seed := cfg.Seed + int64(i)
		g, err := workload.Random(cfg.Spec, seed)
		if err != nil {
			return nil, fmt.Errorf("calib: probe seed %d: %w", seed, err)
		}
		for _, iters := range cfg.Iterations {
			seqRow := false
			for _, pt := range cfg.Points {
				ls, err := core.ScheduleLoop(g, core.Options{Processors: pt.Processors, CommCost: pt.CommCost}, iters)
				if err != nil {
					continue // no pattern at this point; the suite tolerates holes
				}
				progs, err := program.Build(ls.Full)
				if err != nil {
					continue
				}
				sim, err := exec.Sim{}.RunTrials(g, progs, iters, exec.TrialConfig{Trials: 1})
				if err != nil {
					return nil, fmt.Errorf("calib: probe seed %d sim run: %w", seed, err)
				}
				gort, err := exec.Goroutine{}.RunTrials(g, progs, iters, exec.TrialConfig{Trials: cfg.Trials})
				if err != nil {
					return nil, fmt.Errorf("calib: probe seed %d p=%d k=%d gort run: %w",
						seed, pt.Processors, pt.CommCost, err)
				}
				rows = append(rows, obs{
					x: [3]float64{sim.Makespans[0], float64(sim.Messages), float64(iters)},
					y: gort.Mean(),
				})
				if !seqRow {
					// The sequential baseline is an observation of a
					// different runtime — the channel-free interpreter —
					// so it gets its own coefficient rather than a seat
					// in the plan fit. One row per (probe, iterations).
					seqRows = append(seqRows, seqObs{x: sim.Sequential, y: gort.Sequential})
					seqRow = true
				}
			}
		}
	}
	if len(rows) < 4 {
		return nil, fmt.Errorf("calib: only %d plan observations (need >= 4): the probe grid failed to schedule", len(rows))
	}
	model, rmse, mae, err := fit(rows)
	if err != nil {
		return nil, err
	}
	model.SeqNsPerCycle = fitSeq(seqRows)
	return &Profile{
		Model:         model,
		Samples:       len(rows) + len(seqRows),
		RMSENs:        rmse,
		FitError:      mae,
		Probes:        cfg.Probes,
		Trials:        cfg.Trials,
		Seed:          cfg.Seed,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		CreatedUnixNs: time.Now().UnixNano(),
	}, nil
}

// fit least-squares-fits y ≈ x·coef with nonnegative coefficients: an
// unconstrained normal-equations solve, then any negative coefficient
// is clamped out (its column dropped) and the rest refit — negative
// costs would be physically meaningless and could invert rankings.
// Returns the model plus RMSE and mean absolute relative error over
// the observations.
func fit(rows []obs) (exec.CostModel, float64, float64, error) {
	active := [3]bool{true, true, true}
	var coef [3]float64
	for {
		c, ok := solveNormal(rows, active)
		if !ok {
			return exec.CostModel{}, 0, 0, fmt.Errorf("calib: singular normal equations over %d observations (degenerate probe suite)", len(rows))
		}
		clamped := false
		for i := range c {
			if active[i] && c[i] < 0 {
				active[i] = false
				clamped = true
			}
		}
		if !clamped {
			coef = c
			break
		}
		if !active[0] && !active[1] && !active[2] {
			return exec.CostModel{}, 0, 0, fmt.Errorf("calib: every fitted coefficient was negative over %d observations", len(rows))
		}
	}
	var sse, relSum float64
	for _, r := range rows {
		pred := coef[0]*r.x[0] + coef[1]*r.x[1] + coef[2]*r.x[2]
		resid := pred - r.y
		sse += resid * resid
		if r.y > 0 {
			relSum += math.Abs(resid) / r.y
		}
	}
	model := exec.CostModel{ComputeNsPerCycle: coef[0], CommNsPerMessage: coef[1], IterOverheadNs: coef[2]}
	return model, math.Sqrt(sse / float64(len(rows))), relSum / float64(len(rows)), nil
}

// fitSeq fits the sequential scale alone: d = Σxy/Σx², the 1-D least
// squares through the origin. Sequential rows have one regressor, so no
// normal-equations machinery; a degenerate suite yields 0 (csim then
// reports a zero sequential baseline rather than a fabricated one).
func fitSeq(rows []seqObs) float64 {
	var xy, xx float64
	for _, r := range rows {
		xy += r.x * r.y
		xx += r.x * r.x
	}
	if xx == 0 || xy < 0 {
		return 0
	}
	return xy / xx
}

// solveNormal solves the normal equations AᵀA c = Aᵀy over the active
// columns by Gaussian elimination with partial pivoting; ok is false
// when the system is (numerically) singular.
func solveNormal(rows []obs, active [3]bool) ([3]float64, bool) {
	var cols []int
	for i, on := range active {
		if on {
			cols = append(cols, i)
		}
	}
	n := len(cols)
	a := make([][]float64, n) // augmented [AᵀA | Aᵀy]
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for _, r := range rows {
		for i, ci := range cols {
			for j, cj := range cols {
				a[i][j] += r.x[ci] * r.x[cj]
			}
			a[i][n] += r.x[ci] * r.y
		}
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return [3]float64{}, false
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [3]float64
	for i, ci := range cols {
		v := a[i][n] / a[i][i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [3]float64{}, false
		}
		out[ci] = v
	}
	return out, true
}
