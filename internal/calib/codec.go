package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Profile persistence: one JSON record per host, written atomically
// beside the disk plan store so a restarted server resumes calibrated.
// The record is versioned exactly like the plan codec —
//
// Version history:
//
//	1: initial record — format/version header wrapping the Profile
//	   (fitted exec.CostModel, fit residuals, provenance).
//
// Records from a newer build (or an unknown format) are rejected with
// instructions rather than half-read; a file that fails to decode is
// moved aside into quarantineDir (never deleted — evidence beats
// convenience), mirroring the DiskStore conventions.
const (
	// ProfileFormat names the record type.
	ProfileFormat = "mimdloop/calib"
	// ProfileVersion is what this build writes.
	ProfileVersion = 1
	// profileMinVersion is the oldest version this build still reads.
	profileMinVersion = 1
	// ProfileFile is the record's file name inside a store directory.
	ProfileFile = "calib.profile.json"

	tmpPrefix     = ".tmp-"
	quarantineDir = "quarantine"
)

// profileRecord is the on-disk envelope.
type profileRecord struct {
	Format  string  `json:"format"`
	Version int     `json:"version"`
	Profile Profile `json:"profile"`
}

// ProfilePath is the canonical profile location inside a store
// directory (the disk plan store's dir in serve mode).
func ProfilePath(dir string) string { return filepath.Join(dir, ProfileFile) }

// EncodeProfile renders the versioned record. Encoding is
// deterministic: the same profile always yields the same bytes.
func EncodeProfile(p *Profile) ([]byte, error) {
	data, err := json.MarshalIndent(profileRecord{
		Format:  ProfileFormat,
		Version: ProfileVersion,
		Profile: *p,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("calib: encode profile: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeProfile parses and validates a record.
func DecodeProfile(data []byte) (*Profile, error) {
	var rec profileRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("calib: profile record: %w", err)
	}
	if rec.Format != ProfileFormat {
		return nil, fmt.Errorf("calib: record format %q, want %q", rec.Format, ProfileFormat)
	}
	if rec.Version < profileMinVersion || rec.Version > ProfileVersion {
		return nil, fmt.Errorf(
			"calib: profile version %d outside [%d, %d] readable by this build: regenerate it with `loopsched calibrate` — and if you changed the record shape, bump ProfileVersion, extend the version history above, and note the break in docs/API.md",
			rec.Version, profileMinVersion, ProfileVersion)
	}
	p := rec.Profile
	for name, v := range map[string]float64{
		"compute_ns_per_cycle": p.Model.ComputeNsPerCycle,
		"comm_ns_per_message":  p.Model.CommNsPerMessage,
		"iter_overhead_ns":     p.Model.IterOverheadNs,
		"seq_ns_per_cycle":     p.Model.SeqNsPerCycle,
		"rmse_ns":              p.RMSENs,
		"fit_error":            p.FitError,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("calib: profile field %s = %v, want finite and >= 0", name, v)
		}
	}
	if p.Samples < 4 {
		return nil, fmt.Errorf("calib: profile fitted on %d samples, want >= 4", p.Samples)
	}
	return &p, nil
}

// SaveProfile writes the record atomically (temp file in the target
// directory, fsync, rename), the DiskStore write protocol: a crashed
// write leaves the previous profile intact.
func SaveProfile(path string, p *Profile) error {
	data, err := EncodeProfile(p)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("calib: save profile: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"profile-")
	if err != nil {
		return fmt.Errorf("calib: save profile: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("calib: save profile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("calib: save profile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("calib: save profile: %w", err)
	}
	return nil
}

// LoadProfile reads and decodes path. A missing file returns an error
// satisfying os.IsNotExist (the caller's "no profile yet" case); a file
// that fails to decode is quarantined and reported.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodeProfile(data)
	if err != nil {
		quarantine(path)
		return nil, fmt.Errorf("calib: %s quarantined: %w", filepath.Base(path), err)
	}
	return p, nil
}

// quarantine moves a corrupt record aside (DiskStore conventions: into
// quarantineDir next to the record, delete only if even that fails).
func quarantine(path string) {
	dir := filepath.Join(filepath.Dir(path), quarantineDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	if err := os.Rename(path, filepath.Join(dir, filepath.Base(path))); err != nil {
		os.Remove(path)
	}
}
