package calib

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// TestRefreshRacesTune is the -race pin for serve mode's background
// calibration: refreshes replacing the live profile while concurrent
// /v1/tune requests read it through the csim path must be clean — no
// data race between Manager.Refresh's store and the server's per-tune
// Model loads, and every tune must succeed and come back csim-scored.
func TestRefreshRacesTune(t *testing.T) {
	m := NewManager(ProfilePath(t.TempDir()))
	if _, err := m.Refresh(Quick()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pipeline.NewServerWith(pipeline.New(pipeline.Config{}), pipeline.ServerConfig{
		Calibration: m,
	}))
	defer srv.Close()

	// The grain axis rides along: figure 7 is infeasible at grains 2 and
	// 4 (its dependence cycle folds to distance zero), so the tune
	// exercises both the chunked-cell error path and the grain-1 csim
	// path under concurrent profile replacement.
	body := fmt.Sprintf(
		`{"source": %q, "processors": [2, 3], "comm_costs": [2], "grains": [1, 2, 4], "iterations": 30, "eval": {"mode": "measured", "backend": "csim", "trials": 2}}`,
		workload.Figure7Source)
	// A chunk-friendly chain makes the grain cells actually execute
	// chunked csim runs, racing the same refreshes.
	chainBody := `{"source": "loop chain(N = 100) {\n A[i] = A[i-1] + U[i]\n B[i] = B[i-1] + A[i]\n C[i] = C[i-1] + B[i]\n}", "processors": [2], "comm_costs": [2], "grains": [1, 2, 4], "iterations": 30, "eval": {"mode": "measured", "backend": "csim", "trials": 2}}`
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := m.Refresh(Quick()); err != nil {
				errs <- fmt.Errorf("refresh %d: %w", i, err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				b := body
				if (w+i)%2 == 1 {
					b = chainBody
				}
				resp, err := http.Post(srv.URL+"/v1/tune", "application/json", strings.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				var out pipeline.TuneResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d tune %d: status %d", w, i, resp.StatusCode)
					return
				}
				if out.Backend != "csim" || out.Best.Measured == nil || out.Best.Measured.Backend != "csim" {
					errs <- fmt.Errorf("worker %d tune %d not csim-scored: backend %q measured %+v",
						w, i, out.Backend, out.Best.Measured)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cs := m.CalibStats(); cs.Refreshes != 4 || !cs.Present {
		t.Fatalf("refresh accounting: %+v", cs)
	}
}
