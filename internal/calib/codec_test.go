package calib

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mimdloop/internal/exec"
)

func sampleProfile() *Profile {
	return &Profile{
		Model:         exec.CostModel{ComputeNsPerCycle: 3.25, CommNsPerMessage: 1100, IterOverheadNs: 240},
		Samples:       24,
		RMSENs:        5200.5,
		FitError:      0.12,
		Probes:        3,
		Trials:        3,
		Seed:          1,
		GoMaxProcs:    4,
		CreatedUnixNs: 1700000000000000000,
	}
}

// TestProfileCodecRoundTrip pins the codec: decode(encode(p)) preserves
// every field, and re-encoding is byte-identical — the property that
// makes persisted profiles diff- and fingerprint-stable.
func TestProfileCodecRoundTrip(t *testing.T) {
	p := sampleProfile()
	data, err := EncodeProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, p)
	}
	again, err := EncodeProfile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode not byte-identical:\n%s\nvs\n%s", data, again)
	}
	for _, fragment := range []string{ProfileFormat, `"version": 1`, `"compute_ns_per_cycle"`} {
		if !bytes.Contains(data, []byte(fragment)) {
			t.Errorf("encoded record missing %q:\n%s", fragment, data)
		}
	}
}

// TestProfileCodecRejectsVersions pins the version gate: records from a
// newer build (or an alien format) are refused with regeneration and
// version-bump instructions, never half-read.
func TestProfileCodecRejectsVersions(t *testing.T) {
	p := sampleProfile()
	data, err := EncodeProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	_, err = DecodeProfile(future)
	if err == nil {
		t.Fatal("future-version record accepted")
	}
	for _, want := range []string{"loopsched calibrate", "bump ProfileVersion"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version error %q does not instruct %q", err, want)
		}
	}
	alien := bytes.Replace(data, []byte(ProfileFormat), []byte("mimdloop/plan"), 1)
	if _, err := DecodeProfile(alien); err == nil {
		t.Fatal("alien-format record accepted")
	}
}

// TestProfileCodecRejectsImplausible pins field validation: NaN or
// negative coefficients and starved sample counts are refused.
func TestProfileCodecRejectsImplausible(t *testing.T) {
	for name, mutate := range map[string]func(*Profile){
		"negative comm":  func(p *Profile) { p.Model.CommNsPerMessage = -1 },
		"starved fit":    func(p *Profile) { p.Samples = 2 },
		"negative error": func(p *Profile) { p.FitError = -0.5 },
	} {
		p := sampleProfile()
		mutate(p)
		data, err := EncodeProfile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeProfile(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSaveLoadProfile pins persistence: an atomic save loads back
// byte-identically, with no temp files left behind.
func TestSaveLoadProfile(t *testing.T) {
	dir := t.TempDir()
	path := ProfilePath(dir)
	p := sampleProfile()
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("persisted profile drifted: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestLoadProfileQuarantinesCorrupt pins the DiskStore convention: a
// record that fails to decode is moved aside into quarantine/ (kept as
// evidence, not deleted) and the load reports it.
func TestLoadProfileQuarantinesCorrupt(t *testing.T) {
	for name, body := range map[string]string{
		"not json":       "}{",
		"future version": `{"format":"mimdloop/calib","version":99,"profile":{}}`,
	} {
		dir := t.TempDir()
		path := ProfilePath(dir)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadProfile(path); err == nil {
			t.Fatalf("%s: corrupt record loaded", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt record still in place", name)
		}
		q := filepath.Join(dir, quarantineDir, ProfileFile)
		if _, err := os.Stat(q); err != nil {
			t.Errorf("%s: quarantined copy missing: %v", name, err)
		}
	}
}

// TestLoadProfileMissing pins the no-profile case: the error satisfies
// os.IsNotExist so callers can treat it as "start unfitted".
func TestLoadProfileMissing(t *testing.T) {
	_, err := LoadProfile(ProfilePath(t.TempDir()))
	if !os.IsNotExist(err) {
		t.Fatalf("missing profile: %v", err)
	}
}
