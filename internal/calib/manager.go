package calib

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mimdloop/internal/exec"
	"mimdloop/internal/pipeline"
)

// Manager holds a serving process's live calibration profile: an atomic
// pointer the csim path reads on every tune, a refresh entry point the
// serve loop calls on a timer, and optional persistence so a restarted
// server resumes calibrated instead of degrading to raw sim until its
// first refresh. It implements pipeline.Calibration.
type Manager struct {
	// path, when non-empty, is where profiles persist (normally
	// calib.ProfilePath of the disk plan store's directory).
	path      string
	profile   atomic.Pointer[Profile]
	refreshes atomic.Uint64
}

// NewManager returns a Manager persisting to path ("" = memory only).
func NewManager(path string) *Manager { return &Manager{path: path} }

// Load installs the persisted profile, if any. A missing file is not an
// error (the manager simply starts unfitted); a corrupt file is
// quarantined by LoadProfile and reported.
func (m *Manager) Load() error {
	if m.path == "" {
		return nil
	}
	p, err := LoadProfile(m.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	m.profile.Store(p)
	return nil
}

// Set installs p as the live profile.
func (m *Manager) Set(p *Profile) { m.profile.Store(p) }

// Profile returns the live profile (nil when unfitted).
func (m *Manager) Profile() *Profile { return m.profile.Load() }

// Model implements pipeline.Calibration.
func (m *Manager) Model() (exec.CostModel, bool) {
	p := m.profile.Load()
	if p == nil {
		return exec.CostModel{}, false
	}
	return p.Model, true
}

// CalibStats implements pipeline.Calibration.
func (m *Manager) CalibStats() pipeline.CalibStats {
	cs := pipeline.CalibStats{Refreshes: m.refreshes.Load()}
	if p := m.profile.Load(); p != nil {
		cs.Present = true
		cs.AgeSeconds = p.Age().Seconds()
		cs.Samples = p.Samples
		cs.RMSENs = p.RMSENs
		cs.FitError = p.FitError
		cs.Model = p.Model
	}
	return cs
}

// Refresh runs one calibration pass, installs the result, persists it
// when the manager has a path, and counts the refresh. A failed pass
// leaves the previous profile live.
func (m *Manager) Refresh(cfg Config) (*Profile, error) {
	p, err := Calibrate(cfg)
	if err != nil {
		return nil, err
	}
	m.profile.Store(p)
	m.refreshes.Add(1)
	if m.path != "" {
		if err := SaveProfile(m.path, p); err != nil {
			return p, err
		}
	}
	return p, nil
}

// Start refreshes every interval from a background goroutine until the
// returned stop function is called (stop waits for an in-flight pass to
// finish). Failures go to logf and the previous profile stays live.
func (m *Manager) Start(interval time.Duration, cfg Config, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if p, err := m.Refresh(cfg); err != nil {
					logf("calibration refresh failed: %v", err)
				} else {
					logf("calibration refreshed: %.2f ns/cycle, %.0f ns/message, %.0f ns/iteration (fit error %.1f%% over %d samples)",
						p.Model.ComputeNsPerCycle, p.Model.CommNsPerMessage, p.Model.IterOverheadNs,
						p.FitError*100, p.Samples)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
