// Package machine is the simulated asynchronous MIMD multiprocessor of the
// paper's Section 4: it executes per-processor instruction streams
// self-timed (each processor runs as fast as its program order and message
// arrivals allow), with fully-overlapped communication whose per-message
// run-time cost fluctuates between the compile-time estimate k and
// k + mm - 1. Compile-time schedules only determine placement and order;
// the simulator measures what actually happens when the communication
// estimate is wrong — the paper's robustness experiment (Table 1).
package machine

import (
	"fmt"
	"hash/fnv"

	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// FluctModel is the machine's communication-cost fluctuation: each
// message's run-time latency is its compile-time cost plus an extra delay
// in [0, MM-1], the paper's mm parameter. The extra is derived by hashing
// the message identity together with Seed, so it is a pure function of
// (model, message): independent of execution interleaving, identical on
// every replay, and free of shared mutable state — concurrent simulations
// (and concurrent trials of one plan) never contend on a global random
// stream. Distinct seeds select distinct deterministic delay assignments,
// which is what makes repeated-trial measurement (RunTrials) meaningful.
type FluctModel struct {
	// MM bounds the extra delay: each message is slowed by a value in
	// [0, MM-1]. Values <= 1 mean no fluctuation.
	MM int
	// Seed selects the delay assignment.
	Seed int64
}

// Delay returns the model's extra latency for one message. It is
// deterministic per (model, key) and safe for concurrent use.
func (m FluctModel) Delay(key program.MsgKey) int {
	if m.MM <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [40]byte
	put := func(off int, v int64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, m.Seed)
	put(8, int64(key.Node))
	put(16, int64(key.Iter))
	put(24, int64(key.From))
	put(32, int64(key.To))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(m.MM))
}

// Config controls run-time communication behaviour.
type Config struct {
	// Fluct is the paper's mm: each message's latency is its compile-time
	// cost plus a deterministic pseudo-random extra in [0, mm-1]. Values
	// <= 1 mean no fluctuation. Fluct and Seed together form the run's
	// FluctModel.
	Fluct int
	// Seed selects the fluctuation stream.
	Seed int64
	// LinkFIFO forces in-order delivery per (src, dst) link: a message
	// cannot arrive before an earlier-sent message on the same link.
	LinkFIFO bool
	// Override, when true, replaces every message's compile-time cost with
	// OverrideCost: the machine's real communication latency regardless of
	// what the scheduler assumed. Used to study robustness of the
	// communication-cost estimate (Section 5's "even when the estimation
	// of communication cost is far off the mark").
	Override     bool
	OverrideCost int
	// Grain bills each COMPUTE as Grain fused iterations of its node
	// (values <= 1 bill plain node latency). Grain-G program sets are in
	// chunk space, and the simulator executes them against the original
	// graph, so the fused latency enters here; a partial final chunk is
	// conservatively billed at the full grain.
	Grain int
}

// ProcStats reports one processor's activity.
type ProcStats struct {
	Finish int // cycle its last instruction completed
	Busy   int // cycles spent computing
	Wait   int // cycles stalled in RECV
	Sends  int
	Recvs  int
}

// Stats reports a whole run.
type Stats struct {
	Makespan int
	Messages int
	PerProc  []ProcStats
}

// Utilization returns total busy cycles / (makespan * processors).
func (s *Stats) Utilization() float64 {
	if s.Makespan == 0 || len(s.PerProc) == 0 {
		return 0
	}
	busy := 0
	for _, p := range s.PerProc {
		busy += p.Busy
	}
	return float64(busy) / float64(s.Makespan*len(s.PerProc))
}

// Run executes the programs and returns timing statistics. It fails on
// deadlock (a RECV whose message is never sent) with a diagnostic of the
// blocked processors.
func Run(g *graph.Graph, progs []program.Program, cfg Config) (*Stats, error) {
	if cfg.Fluct < 0 {
		return nil, fmt.Errorf("machine: negative fluctuation %d", cfg.Fluct)
	}
	model := FluctModel{MM: cfg.Fluct, Seed: cfg.Seed}
	n := len(progs)
	arrivals := make(map[program.MsgKey]int)
	lastOnLink := make(map[[2]int]int)
	pc := make([]int, n)
	clock := make([]int, n)
	stats := &Stats{PerProc: make([]ProcStats, n)}

	for {
		progress := false
		done := true
		for p := 0; p < n; p++ {
			prog := &progs[p]
			for pc[p] < len(prog.Instrs) {
				in := prog.Instrs[pc[p]]
				switch in.Kind {
				case program.OpCompute:
					lat := g.Nodes[in.Node].Latency
					if cfg.Grain > 1 {
						lat *= cfg.Grain
					}
					clock[p] += lat
					stats.PerProc[p].Busy += lat
				case program.OpSend:
					key := program.MsgKey{Node: in.Node, Iter: in.Iter, From: p, To: in.Peer}
					cost := in.Cost
					if cfg.Override {
						cost = cfg.OverrideCost
					}
					delay := cost + model.Delay(key)
					arr := clock[p] + delay
					if cfg.LinkFIFO {
						link := [2]int{p, in.Peer}
						if prev, ok := lastOnLink[link]; ok && prev > arr {
							arr = prev
						}
						lastOnLink[link] = arr
					}
					arrivals[key] = arr
					stats.PerProc[p].Sends++
					stats.Messages++
				case program.OpRecv:
					key := program.MsgKey{Node: in.Node, Iter: in.Iter, From: in.Peer, To: p}
					arr, ok := arrivals[key]
					if !ok {
						// Blocked: try again after other processors run.
						goto nextProc
					}
					if arr > clock[p] {
						stats.PerProc[p].Wait += arr - clock[p]
						clock[p] = arr
					}
					stats.PerProc[p].Recvs++
				}
				pc[p]++
				progress = true
			}
		nextProc:
			if pc[p] < len(prog.Instrs) {
				done = false
			}
		}
		if done {
			break
		}
		if !progress {
			return nil, deadlockError(progs, pc)
		}
	}
	for p := 0; p < n; p++ {
		stats.PerProc[p].Finish = clock[p]
		if clock[p] > stats.Makespan {
			stats.Makespan = clock[p]
		}
	}
	return stats, nil
}

func deadlockError(progs []program.Program, pc []int) error {
	msg := "machine: deadlock:"
	for p := range progs {
		if pc[p] < len(progs[p].Instrs) {
			in := progs[p].Instrs[pc[p]]
			msg += fmt.Sprintf(" PE%d blocked at instr %d (%s node=%d iter=%d peer=%d);",
				p, pc[p], in.Kind, in.Node, in.Iter, in.Peer)
		}
	}
	return fmt.Errorf("%s", msg)
}
