package machine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mimdloop/internal/classify"
	"mimdloop/internal/core"
	"mimdloop/internal/doacross"
	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

func figure7(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulatedTimeTracksStaticSchedule(t *testing.T) {
	// Self-timed execution under exact communication estimates can never
	// be slower than the static schedule (ASAP execution of the same
	// order), and for the Fig. 7 loop it matches the static makespan.
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(30)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan > s.Makespan() {
		t.Fatalf("simulated %d > static %d", stats.Makespan, s.Makespan())
	}
	if stats.Makespan < s.Makespan()-res.Pattern.Cycles() {
		t.Fatalf("simulated %d improbably far below static %d", stats.Makespan, s.Makespan())
	}
	if stats.Messages == 0 {
		t.Fatal("no messages simulated")
	}
	if u := stats.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestFluctuationSlowsExecution(t *testing.T) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(40)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(g, progs, Config{Fluct: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= base.Makespan {
		t.Fatalf("mm=5 makespan %d not worse than mm=1 %d", slow.Makespan, base.Makespan)
	}
	// Determinism.
	again, err := Run(g, progs, Config{Fluct: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != slow.Makespan {
		t.Fatalf("same seed, different makespan: %d vs %d", again.Makespan, slow.Makespan)
	}
	other, err := Run(g, progs, Config{Fluct: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other.Makespan == slow.Makespan && other.PerProc[0].Wait == slow.PerProc[0].Wait {
		t.Log("different seeds gave identical stats (possible but unlikely)")
	}
}

func TestLinkFIFOOrdering(t *testing.T) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(20)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(g, progs, Config{Fluct: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Run(g, progs, Config{Fluct: 4, Seed: 3, LinkFIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Makespan < free.Makespan {
		t.Fatalf("FIFO links made execution faster: %d < %d", fifo.Makespan, free.Makespan)
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := figure7(t)
	progs := []program.Program{
		{Proc: 0, Instrs: []program.Instr{{Kind: program.OpRecv, Node: 0, Iter: 0, Peer: 1}}},
		{Proc: 1, Instrs: []program.Instr{{Kind: program.OpRecv, Node: 1, Iter: 0, Peer: 0}}},
	}
	_, err := Run(g, progs, Config{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestNegativeFluctRejected(t *testing.T) {
	g := figure7(t)
	if _, err := Run(g, nil, Config{Fluct: -1}); err == nil {
		t.Fatal("negative fluct accepted")
	}
}

func TestPropertySimulationNeverBeatsCriticalPath(t *testing.T) {
	// For any random cyclic loop: simulated makespan (exact comm) is at
	// least iterations x critical-path rate, and no more than the static
	// schedule's makespan.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1+rng.Intn(3))
		}
		for i, sd := 0, rng.Intn(n); i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		for i, lcd := 0, 1+rng.Intn(n); i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.MustBuild()
		cls := classify.Partition(g)
		if cls.IsDOALL() {
			return true
		}
		sub, _, err := classify.CyclicSubgraph(g, cls)
		if err != nil {
			return false
		}
		multi, err := core.CyclicSchedAll(sub, core.Options{Processors: 3, CommCost: rng.Intn(3)})
		if err != nil {
			return false
		}
		iters := 12
		s, err := multi.Expand(iters)
		if err != nil {
			return false
		}
		progs, err := program.Build(s)
		if err != nil {
			return false
		}
		stats, err := Run(sub, progs, Config{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if stats.Makespan > s.Makespan() {
			t.Logf("seed %d: sim %d > static %d", seed, stats.Makespan, s.Makespan())
			return false
		}
		// CriticalPathPerIteration is the ceiling of the rational rate
		// max L(C)/D(C); cpi-1 strictly lower-bounds the true rate.
		cpi := sub.CriticalPathPerIteration()
		if cpi > 1 && stats.Makespan < (iters-1)*(cpi-1) {
			t.Logf("seed %d: sim %d below critical bound %d", seed, stats.Makespan, (iters-1)*(cpi-1))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDoacrossProgramsRunOnMachine(t *testing.T) {
	g := figure7(t)
	res, err := doacross.Schedule(g, doacross.Options{MaxProcessors: 3, CommCost: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan > res.Schedule.Makespan() {
		t.Fatalf("sim %d > static %d", stats.Makespan, res.Schedule.Makespan())
	}
}
