package machine

import (
	"reflect"
	"sync"
	"testing"

	"mimdloop/internal/program"
)

func TestFluctModelDeterministicPerMessage(t *testing.T) {
	m := FluctModel{MM: 5, Seed: 7}
	key := program.MsgKey{Node: 1, Iter: 2, From: 0, To: 1}
	first := m.Delay(key)
	for i := 0; i < 10; i++ {
		if got := m.Delay(key); got != first {
			t.Fatalf("delay changed across calls: %d then %d", first, got)
		}
	}
	if first < 0 || first >= 5 {
		t.Fatalf("delay %d outside [0, 4]", first)
	}
	if (FluctModel{MM: 1, Seed: 7}).Delay(key) != 0 {
		t.Fatal("mm=1 must mean no fluctuation")
	}
	if (FluctModel{MM: 0, Seed: 7}).Delay(key) != 0 {
		t.Fatal("mm=0 must mean no fluctuation")
	}
	// Distinct seeds must (for some message) assign distinct delays,
	// otherwise trials would all measure the same run.
	varies := false
	for n := 0; n < 32 && !varies; n++ {
		k := program.MsgKey{Node: n, Iter: n, From: 0, To: 1}
		if (FluctModel{MM: 5, Seed: 1}).Delay(k) != (FluctModel{MM: 5, Seed: 2}).Delay(k) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("seeds 1 and 2 assign identical delays to 32 messages")
	}
}

func TestTrialSeedDerivation(t *testing.T) {
	if TrialSeed(42, 0) != 42 {
		t.Fatal("trial 0 must use the base seed unchanged")
	}
	seen := map[int64]bool{}
	for trial := 0; trial < 16; trial++ {
		s := TrialSeed(42, trial)
		if seen[s] {
			t.Fatalf("trial seed %d repeats within 16 trials", s)
		}
		seen[s] = true
		if s != TrialSeed(42, trial) {
			t.Fatalf("trial %d seed not deterministic", trial)
		}
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	g := figure7(t)
	progs, static := fig7Programs(t, 2)

	// One fluctuation-free trial is exactly one plain Run.
	one, err := RunTrials(g, progs, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if one.MakespanMin != single.Makespan || one.MakespanMax != single.Makespan ||
		one.MakespanMean != float64(single.Makespan) {
		t.Fatalf("1 trial fluct=0: %+v != single run makespan %d", one, single.Makespan)
	}
	if one.MakespanMax > static {
		t.Fatalf("self-timed run %d beyond static makespan %d", one.MakespanMax, static)
	}
	if one.Messages != single.Messages {
		t.Fatalf("messages %d != %d", one.Messages, single.Messages)
	}
	if one.Utilization <= 0 || one.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", one.Utilization)
	}

	// Under fluctuation the spread is ordered and repeatable.
	ts, err := RunTrials(g, progs, Config{Fluct: 5, Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ts.MakespanMin > int(ts.MakespanMean) || float64(ts.MakespanMax) < ts.MakespanMean {
		t.Fatalf("spread out of order: %+v", ts)
	}
	if ts.MakespanMin < single.Makespan {
		t.Fatalf("fluctuation sped execution up: %d < %d", ts.MakespanMin, single.Makespan)
	}
	again, err := RunTrials(g, progs, Config{Fluct: 5, Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts, again) {
		t.Fatalf("repeat run differs: %+v vs %+v", ts, again)
	}

	if _, err := RunTrials(g, progs, Config{}, 0); err == nil {
		t.Fatal("0 trials accepted")
	}
}

// Concurrent trial runs share no state: this test exists to fail under
// -race if the fluctuation path ever grows a shared random stream.
func TestRunTrialsConcurrent(t *testing.T) {
	g := figure7(t)
	progs, _ := fig7Programs(t, 2)
	want, err := RunTrials(g, progs, Config{Fluct: 5, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*TrialStats, 8)
	errs := make([]error, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = RunTrials(g, progs, Config{Fluct: 5, Seed: 9}, 4)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("concurrent run %d differs: %+v vs %+v", i, got[i], want)
		}
	}
}
