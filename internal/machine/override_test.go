package machine

import (
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/program"
)

func fig7Programs(t testing.TB, k int) ([]program.Program, int) {
	t.Helper()
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: k})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(50)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return progs, s.Makespan()
}

func TestOverrideCostChangesTiming(t *testing.T) {
	g := figure7(t)
	progs, static := fig7Programs(t, 2)

	exact, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Makespan > static {
		t.Fatalf("exact run %d > static %d", exact.Makespan, static)
	}

	// True cost 0: communication free, execution can only speed up.
	free, err := Run(g, progs, Config{Override: true, OverrideCost: 0})
	if err != nil {
		t.Fatal(err)
	}
	if free.Makespan > exact.Makespan {
		t.Fatalf("free comm %d slower than scheduled comm %d", free.Makespan, exact.Makespan)
	}

	// True cost far above the estimate: execution slows but still
	// completes correctly (self-timed).
	slow, err := Run(g, progs, Config{Override: true, OverrideCost: 9})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= exact.Makespan {
		t.Fatalf("9-cycle comm %d not slower than 2-cycle %d", slow.Makespan, exact.Makespan)
	}
}

func TestOverrideZeroValueIsInert(t *testing.T) {
	// Config{} must not override costs (Override defaults to false even
	// though OverrideCost is 0).
	g := figure7(t)
	progs, _ := fig7Programs(t, 2)
	a, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, progs, Config{OverrideCost: 0}) // Override not set
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("inert override changed timing: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := figure7(t)
	progs, _ := fig7Programs(t, 2)
	stats, err := Run(g, progs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Busy cycles = 50 iterations x 5 unit-latency nodes.
	busy := 0
	for _, p := range stats.PerProc {
		busy += p.Busy
	}
	if busy != 250 {
		t.Fatalf("busy = %d, want 250", busy)
	}
	sends, recvs := 0, 0
	for _, p := range stats.PerProc {
		sends += p.Sends
		recvs += p.Recvs
	}
	if sends != recvs || sends != stats.Messages {
		t.Fatalf("sends %d recvs %d messages %d", sends, recvs, stats.Messages)
	}
	for i, p := range stats.PerProc {
		if p.Finish > stats.Makespan {
			t.Fatalf("PE%d finish %d beyond makespan %d", i, p.Finish, stats.Makespan)
		}
	}
}
