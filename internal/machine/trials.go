package machine

import (
	"fmt"
	"hash/fnv"

	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// TrialStats aggregates repeated simulated runs of one program set under
// communication fluctuation: Table 1's measurement protocol packaged as a
// reusable primitive. Each trial re-runs the same programs under a
// distinct, deterministically derived fluctuation seed, so the spread
// reflects how robust the schedule is to the communication estimate being
// wrong — not random noise: the same (config, trials) always yields the
// same stats.
type TrialStats struct {
	// Trials is the number of runs aggregated.
	Trials int `json:"trials"`
	// MakespanMin/Mean/Max spread the finishing cycle over the trials.
	MakespanMin  int     `json:"makespan_min"`
	MakespanMax  int     `json:"makespan_max"`
	MakespanMean float64 `json:"makespan_mean"`
	// Utilization is the mean busy/(makespan*procs) over the trials.
	Utilization float64 `json:"utilization"`
	// Messages is the per-trial message count (identical every trial:
	// fluctuation changes timing, never routing).
	Messages int `json:"messages"`
	// Makespans are the per-trial samples in run order. Min/Mean/Max
	// above digest them; callers ranking by other statistics (p95,
	// spread) read the raw distribution.
	Makespans []int `json:"makespans,omitempty"`
}

// TrialSeed derives trial t's fluctuation seed from the base seed. Trial
// 0 uses base unchanged — a 1-trial run is byte-identical to a plain Run
// with the same Config — and later trials mix the trial index through
// FNV-64a so neighbouring bases do not produce overlapping streams.
func TrialSeed(base int64, trial int) int64 {
	if trial == 0 {
		return base
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(base >> (8 * i))
		buf[8+i] = byte(int64(trial) >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64())
}

// RunTrials executes progs `trials` times, trial t under cfg with its
// seed replaced by TrialSeed(cfg.Seed, t), and aggregates the spread.
// Every run is independent and deterministic, so RunTrials is safe to
// call concurrently from many goroutines (concurrent plan evaluations
// share no state).
func RunTrials(g *graph.Graph, progs []program.Program, cfg Config, trials int) (*TrialStats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("machine: trial count %d, want >= 1", trials)
	}
	ts := &TrialStats{Trials: trials, Makespans: make([]int, 0, trials)}
	sumMakespan, sumUtil := 0, 0.0
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = TrialSeed(cfg.Seed, t)
		stats, err := Run(g, progs, c)
		if err != nil {
			return nil, fmt.Errorf("machine: trial %d: %w", t, err)
		}
		ts.Makespans = append(ts.Makespans, stats.Makespan)
		if t == 0 || stats.Makespan < ts.MakespanMin {
			ts.MakespanMin = stats.Makespan
		}
		if stats.Makespan > ts.MakespanMax {
			ts.MakespanMax = stats.Makespan
		}
		sumMakespan += stats.Makespan
		sumUtil += stats.Utilization()
		ts.Messages = stats.Messages
	}
	ts.MakespanMean = float64(sumMakespan) / float64(trials)
	ts.Utilization = sumUtil / float64(trials)
	return ts, nil
}
