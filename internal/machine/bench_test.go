package machine

import (
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/program"
)

func BenchmarkSimulatedRun(b *testing.B) {
	g := figure7(b)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		b.Fatal(err)
	}
	s, err := res.Expand(1000)
	if err != nil {
		b.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, progs, Config{Fluct: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(progs[0].Instrs)+len(progs[1].Instrs))/1000, "instrs/iter")
}
