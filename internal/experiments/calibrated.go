package experiments

import (
	"fmt"
	"time"

	"mimdloop/internal/calib"
	"mimdloop/internal/exec"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// calibratedRegretTol is the agreement tolerance: a deterministic
// ranking "agrees" with gort when it picks gort's own winner, or a cell
// gort itself measures within 25% of that winner. The slack is not
// generosity — gort's per-trial spread on a contended host runs tens of
// percent, so two cells inside the tolerance band are statistically
// tied and picking either is a correct read of the measurement.
const calibratedRegretTol = 0.25

// calibratedTimingRuns is how many times the deterministic (csim) tune
// is repeated for its latency figure; the minimum is reported. A
// deterministic computation's true cost is its unhindered run — the min
// filters scheduler jitter — while for gort a single run is reported
// because its jitter is the phenomenon being paid for.
const calibratedTimingRuns = 3

// CalibratedRow is one random loop of the calibration agreement table:
// the (p, k) winner picked by three rankings of the same grid — raw
// measured sim (abstract cycles), calibrated sim (profile-scaled
// nanoseconds) and the real goroutine runtime (wall clock) — with the
// goroutine ranking as ground truth, plus what each deterministic tune
// cost in wall-clock time next to the measured one.
type CalibratedRow struct {
	Loop  int // paper's loop number, 0-based seed-1
	Nodes int
	// SimPoint / CsimPoint / GortPoint are the winning grid cells.
	SimPoint  pipeline.Point
	CsimPoint pipeline.Point
	GortPoint pipeline.Point
	// SimRegret / CsimRegret are each ranking's regret under gort's own
	// measurements: how much slower (fractionally) the chosen cell's
	// gort-measured mean is than the gort winner's. 0 means the same
	// winner (or a cell gort measured as exactly tied).
	SimRegret  float64
	CsimRegret float64
	// SimAgree / CsimAgree report regret <= calibratedRegretTol.
	SimAgree  bool
	CsimAgree bool
	// CsimTuneNs / GortTuneNs are the wall-clock cost of the csim and
	// gort tunes over the (cache-warm) grid — the latency a serving
	// process pays for calibrated vs measured ranking.
	CsimTuneNs int64
	GortTuneNs int64
}

// Table1CalibratedResult aggregates the calibration experiment.
type Table1CalibratedResult struct {
	Rows []CalibratedRow
	// Trials is the gort trial count per grid cell. It defaults high
	// (20): at the tens-of-percent per-trial spread gort shows on a
	// loaded host, that is roughly what a measured tune needs before
	// its ranking is as stable as the deterministic ones it is judging
	// — fewer trials would make the "ground truth" a coin toss and the
	// latency comparison flattering. csim and sim are deterministic at
	// fluct 0 and collapse to one trial regardless.
	Trials int
	// Profile is the fitted calibration the csim ranking used.
	Profile *calib.Profile
	// SimAgreements / CsimAgreements count loops within the regret
	// tolerance; the Pct forms are percentages of the suite.
	SimAgreements  int
	CsimAgreements int
	SimAgreePct    float64
	CsimAgreePct   float64
	// CsimTuneNsMean / GortTuneNsMean are the mean tune costs;
	// LatencyRatio is csim's share of gort's (0.01 = 1%).
	CsimTuneNsMean float64
	GortTuneNsMean float64
	LatencyRatio   float64
}

// Table1Calibrated runs the calibration closing-the-loop experiment:
// fit one profile from the probe suite (ccfg), then for each random
// loop rank the same (p, k) grid three ways — raw measured sim,
// calibrated sim, real goroutine runtime — and score the two
// simulator rankings by their regret under the goroutine ranking's own
// per-cell measurements. The grid brackets the channel-overhead
// trade-off the raw simulator is blind to (few processors and few
// messages vs many of both); the calibrated ranking rescales the sim
// accounting into fitted nanoseconds and should land within the regret
// tolerance of gort's winner at simulator cost. Plans are scheduled
// (cache-warm) before the timed tunes, so the latency columns compare
// evaluation cost, not scheduling cost; loops run serially for honest
// wall-clock.
func Table1Calibrated(count, iters, trials int, ccfg calib.Config) (*Table1CalibratedResult, error) {
	if count < 1 || count > 25 {
		return nil, fmt.Errorf("experiments: table 1 loop count %d, want 1..25", count)
	}
	if iters == 0 {
		iters = 100
	}
	if trials == 0 {
		trials = 20
	}
	profile, err := calib.Calibrate(ccfg)
	if err != nil {
		return nil, err
	}
	res := &Table1CalibratedResult{
		Rows:    make([]CalibratedRow, count),
		Trials:  trials,
		Profile: profile,
	}
	pipe := pipeline.New(pipeline.Config{})
	for i := 0; i < count; i++ {
		row, err := calibratedRow(pipe, profile, int64(i+1), iters, trials)
		if err != nil {
			return nil, err
		}
		res.Rows[i] = row
	}
	var csimNs, gortNs []float64
	for _, row := range res.Rows {
		csimNs = append(csimNs, float64(row.CsimTuneNs))
		gortNs = append(gortNs, float64(row.GortTuneNs))
		if row.SimAgree {
			res.SimAgreements++
		}
		if row.CsimAgree {
			res.CsimAgreements++
		}
	}
	res.SimAgreePct = float64(res.SimAgreements) / float64(count) * 100
	res.CsimAgreePct = float64(res.CsimAgreements) / float64(count) * 100
	res.CsimTuneNsMean = metrics.Mean(csimNs)
	res.GortTuneNsMean = metrics.Mean(gortNs)
	if res.GortTuneNsMean > 0 {
		res.LatencyRatio = res.CsimTuneNsMean / res.GortTuneNsMean
	}
	return res, nil
}

// calibratedGrid is the experiment's search space: the extremes of the
// processor budget at the presumed comm estimate. Two cells whose
// message counts differ by the width of the machine, so the rankings
// genuinely disagree about the channel-overhead trade-off rather than
// about noise between near-identical neighbors.
var calibratedGrid = pipeline.TuneOptions{
	Processors: []int{2, 8},
	CommCosts:  []int{2},
	Objective:  pipeline.ObjectiveMinRate,
	Workers:    1,
}

// calibratedRow tunes one random loop under the three rankings, timing
// the csim and gort tunes over a pre-scheduled (cache-warm) grid.
func calibratedRow(pipe *pipeline.Pipeline, profile *calib.Profile, seed int64, iters, trials int) (CalibratedRow, error) {
	var row CalibratedRow
	g, err := workload.Random(workload.PaperSpec, seed)
	if err != nil {
		return row, err
	}
	row = CalibratedRow{Loop: int(seed - 1), Nodes: g.N()}

	// Warm the plan cache with an untimed static tune: the timed tunes
	// below then compare how the rankings evaluate, not how they
	// schedule (both would pay the identical scheduling cost once).
	grid := calibratedGrid
	if _, err := pipe.AutoTune(g, iters, grid); err != nil {
		return row, fmt.Errorf("experiments: loop %d warmup tune: %w", seed-1, err)
	}

	grid.Evaluator = &pipeline.MeasuredEvaluator{Trials: trials, Fluct: measuredMM, Seed: seed}
	sim, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d sim tune: %w", seed-1, err)
	}

	grid.Evaluator = &pipeline.MeasuredEvaluator{Trials: trials, Backend: exec.Calibrated{Model: profile.Model}}
	var csim *pipeline.TuneResult
	for r := 0; r < calibratedTimingRuns; r++ {
		t0 := time.Now()
		csim, err = pipe.AutoTune(g, iters, grid)
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			return row, fmt.Errorf("experiments: loop %d csim tune: %w", seed-1, err)
		}
		if row.CsimTuneNs == 0 || ns < row.CsimTuneNs {
			row.CsimTuneNs = ns
		}
	}

	grid.Evaluator = &pipeline.MeasuredEvaluator{Trials: trials, Backend: exec.Goroutine{}}
	t0 := time.Now()
	gort, err := pipe.AutoTune(g, iters, grid)
	row.GortTuneNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d gort tune: %w", seed-1, err)
	}

	row.SimPoint = sim.Best.Point
	row.CsimPoint = csim.Best.Point
	row.GortPoint = gort.Best.Point
	row.SimRegret = gortRegret(gort, row.SimPoint)
	row.CsimRegret = gortRegret(gort, row.CsimPoint)
	row.SimAgree = row.SimRegret <= calibratedRegretTol
	row.CsimAgree = row.CsimRegret <= calibratedRegretTol
	return row, nil
}

// gortRegret scores a chosen grid cell by gort's own measurements: the
// fractional slowdown of the cell's gort-measured mean rate over the
// gort winner's. The winner itself (and any exact tie) scores 0.
func gortRegret(gort *pipeline.TuneResult, chosen pipeline.Point) float64 {
	best := gort.Best.Score.Rate
	if best <= 0 {
		return 0
	}
	for _, r := range gort.Results {
		if r.Point == chosen && r.Err == nil {
			return r.Score.Rate/best - 1
		}
	}
	// The chosen cell did not schedule under gort — a disagreement by
	// construction, scored beyond any tolerance.
	return 1
}

// Format renders the agreement table and the latency comparison.
func (r *Table1CalibratedResult) Format() string {
	t := &metrics.Table{Header: []string{
		"loop", "sim p,k", "csim p,k", "gort p,k", "sim rgt", "csim rgt", "csim µs", "gort µs",
	}}
	point := func(p pipeline.Point) string {
		return fmt.Sprintf("%d,%d", p.Processors, p.CommCost)
	}
	regret := func(v float64, agree bool) string {
		s := fmt.Sprintf("%.0f%%", v*100)
		if !agree {
			s += "!"
		}
		return s
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Loop),
			point(row.SimPoint), point(row.CsimPoint), point(row.GortPoint),
			regret(row.SimRegret, row.SimAgree), regret(row.CsimRegret, row.CsimAgree),
			fmt.Sprintf("%.0f", float64(row.CsimTuneNs)/1e3),
			fmt.Sprintf("%.0f", float64(row.GortTuneNs)/1e3),
		)
	}
	t.AddRow("mean", "", "", "", "", "",
		fmt.Sprintf("%.0f", r.CsimTuneNsMean/1e3), fmt.Sprintf("%.0f", r.GortTuneNsMean/1e3))
	return t.String() + fmt.Sprintf(
		"calibrated sim within %.0f%% of gort's winner on %d/%d loops (%.0f%%) vs raw sim %d/%d (%.0f%%); csim tune costs %.2f%% of gort tune (%d gort trials/cell)\n"+
			"profile: %.2f ns/cycle, %.0f ns/message, %.0f ns/iteration, %.2f seq ns/cycle (fit error %.0f%% over %d samples)\n",
		calibratedRegretTol*100,
		r.CsimAgreements, len(r.Rows), r.CsimAgreePct,
		r.SimAgreements, len(r.Rows), r.SimAgreePct,
		r.LatencyRatio*100, r.Trials,
		r.Profile.Model.ComputeNsPerCycle, r.Profile.Model.CommNsPerMessage, r.Profile.Model.IterOverheadNs,
		r.Profile.Model.SeqNsPerCycle,
		r.Profile.FitError*100, r.Profile.Samples)
}
