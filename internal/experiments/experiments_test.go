package experiments

import (
	"strings"
	"testing"

	"mimdloop/internal/workload"
)

// The figure tests assert the reproduction bands recorded in
// EXPERIMENTS.md: exact where the paper's artifact is exact (Figure 7/8),
// and shape-preserving (who wins, roughly by how much) for the
// reconstructed workloads.

func TestFigure7ReproducesExactly(t *testing.T) {
	c, err := Figure7(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.OursSp != 40 {
		t.Fatalf("ours Sp = %v, want exactly 40 (paper)", c.OursSp)
	}
	if c.DoacrossSp != 0 {
		t.Fatalf("DOACROSS Sp = %v, want 0 (paper)", c.DoacrossSp)
	}
	if c.OursRate != 3 {
		t.Fatalf("rate = %v, want 3 cycles/iteration", c.OursRate)
	}
}

func TestFigure8ReproducesExactly(t *testing.T) {
	r, err := Figure8(100)
	if err != nil {
		t.Fatal(err)
	}
	if r.NaturalSp != 0 || r.ReorderedSp != 0 {
		t.Fatalf("Sp = %v/%v, want 0/0", r.NaturalSp, r.ReorderedSp)
	}
	if r.NaturalMakespan != r.SequentialTime {
		t.Fatalf("natural DOACROSS %d != sequential %d", r.NaturalMakespan, r.SequentialTime)
	}
}

func TestFigure9ShapePreserved(t *testing.T) {
	c, err := Figure9(100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 72.7 vs 31.8. Bands: ours in [65, 80], DOACROSS in [15, 40],
	// ours clearly ahead.
	if c.OursSp < 65 || c.OursSp > 80 {
		t.Fatalf("ours Sp = %v, want ~72.7", c.OursSp)
	}
	if c.DoacrossSp < 15 || c.DoacrossSp > 40 {
		t.Fatalf("DOACROSS Sp = %v, want ~31.8", c.DoacrossSp)
	}
	if c.OursSp <= c.DoacrossSp {
		t.Fatal("ours does not beat DOACROSS")
	}
}

func TestFigure11ShapePreserved(t *testing.T) {
	c, err := Figure11(100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 49.4 vs 12.6.
	if c.OursSp < 40 || c.OursSp > 58 {
		t.Fatalf("ours Sp = %v, want ~49.4", c.OursSp)
	}
	if c.DoacrossSp < 5 || c.DoacrossSp > 30 {
		t.Fatalf("DOACROSS Sp = %v, want ~12.6", c.DoacrossSp)
	}
	if c.OursSp <= 1.5*c.DoacrossSp {
		t.Fatalf("advantage collapsed: %v vs %v", c.OursSp, c.DoacrossSp)
	}
}

func TestFigure12ShapePreserved(t *testing.T) {
	c, err := Figure12(100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 30.9 vs 0.
	if c.OursSp < 25 || c.OursSp > 40 {
		t.Fatalf("ours Sp = %v, want ~30.9", c.OursSp)
	}
	if c.DoacrossSp != 0 {
		t.Fatalf("DOACROSS Sp = %v, want exactly 0", c.DoacrossSp)
	}
}

func TestTable1ShapePreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("full 25-loop suite in -short mode")
	}
	res, err := Table1(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper's qualitative claims:
	// (1) ours beats DOACROSS on (almost) every loop at mm=1 — the paper
	//     itself had 0 exceptions at mm=1, 1 at mm=3, 2 at mm=5;
	worse := 0
	for _, row := range res.Rows {
		if row.Ours[0] < row.Doacross[0] {
			worse++
		}
	}
	if worse > 1 {
		t.Fatalf("%d loops where DOACROSS wins at mm=1", worse)
	}
	// (2) the average factor is large;
	if res.Factor[0] < 2 {
		t.Fatalf("factor at mm=1 = %v, want >= 2", res.Factor[0])
	}
	// (3) the factor does not shrink as communication degrades (the
	//     robustness headline: paper 2.9 -> 3.0 -> 3.3).
	if res.Factor[2] < res.Factor[0] {
		t.Fatalf("factor shrank under fluctuation: %v -> %v", res.Factor[0], res.Factor[2])
	}
	// (4) our own absolute degradation under mm=5 stays moderate.
	if res.OursMean[2] < res.OursMean[0]-20 {
		t.Fatalf("ours degraded too much: %v -> %v", res.OursMean[0], res.OursMean[2])
	}

	// Formatting smoke checks.
	if a := res.FormatA(); !strings.Contains(a, "loop") || strings.Count(a, "\n") != 27 {
		t.Fatalf("FormatA:\n%s", a)
	}
	if b := res.FormatB(); !strings.Contains(b, "paper factor") {
		t.Fatalf("FormatB:\n%s", b)
	}
}

func TestTable1Validation(t *testing.T) {
	if _, err := Table1(0, 10); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Table1(26, 10); err == nil {
		t.Fatal("count 26 accepted")
	}
}

func TestAblationKEstimateMonotoneNearTruth(t *testing.T) {
	g := workload.Figure7().Graph
	rows, err := AblationKEstimate(g, []int{0, 2, 3, 7}, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Estimating the true cost can not be worse than wildly
	// overestimating by more than the schedule-length slack.
	var atTruth, far float64
	for _, r := range rows {
		if r.EstimatedK == 3 {
			atTruth = r.Sp
		}
		if r.EstimatedK == 7 {
			far = r.Sp
		}
	}
	if atTruth+10 < far {
		t.Fatalf("true-estimate Sp %v far below overestimate %v", atTruth, far)
	}
}

func TestAblationsRun(t *testing.T) {
	g, err := workload.Random(workload.PaperSpec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := AblationPlacement(g, 3); err != nil || len(rows) != 2 {
		t.Fatalf("placement: %v %v", rows, err)
	}
	if rows, err := AblationQueueOrder(g, 3); err != nil || len(rows) != 2 {
		t.Fatalf("queue order: %v %v", rows, err)
	}
	rows, err := AblationProcessors(g, 3, []int{2, 8})
	if err != nil || len(rows) != 2 {
		t.Fatalf("processors: %v %v", rows, err)
	}
	// More processors never hurt the steady-state rate.
	if rows[1].Rate > rows[0].Rate+0.001 {
		t.Fatalf("p=8 rate %v worse than p=2 rate %v", rows[1].Rate, rows[0].Rate)
	}
	pp, err := AblationPerfectPipelining([]int{0, 2})
	if err != nil || len(pp) != 2 {
		t.Fatalf("perfect pipelining: %v %v", pp, err)
	}
	if pp[0].Rate > pp[1].Rate {
		t.Fatalf("k=0 rate %v worse than k=2 rate %v", pp[0].Rate, pp[1].Rate)
	}
	if rows, err := AblationCommModel(workload.Figure7().Graph, 2); err != nil || len(rows) != 2 {
		t.Fatalf("comm model: %v %v", rows, err)
	}
}

func TestComparisonString(t *testing.T) {
	c, err := Figure7(10)
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "figure7") || !strings.Contains(s, "paper") {
		t.Fatalf("String = %q", s)
	}
}
