package experiments

import (
	"strings"
	"testing"
)

func TestTable1MeasuredInvariants(t *testing.T) {
	res, err := Table1Measured(4, 50, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Trials != 3 || res.Fluct != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, row := range res.Rows {
		// The measured ranking optimizes measured Sp, so its winner can
		// never measure below the static-ranked winner — the acceptance
		// inequality of the experiment.
		if row.MeasuredSp < row.StaticSp {
			t.Errorf("loop %d: measured winner Sp %.2f < static winner Sp %.2f",
				row.Loop, row.MeasuredSp, row.StaticSp)
		}
		if row.Agree != (row.StaticPoint == row.MeasuredPoint) {
			t.Errorf("loop %d: agree flag inconsistent", row.Loop)
		}
		if row.Agree && row.MeasuredSp != row.StaticSp {
			t.Errorf("loop %d: same winner, different Sp: %.2f vs %.2f",
				row.Loop, row.MeasuredSp, row.StaticSp)
		}
		if row.StaticSpread < 0 || row.MeasuredSpread < 0 {
			t.Errorf("loop %d: negative spread", row.Loop)
		}
	}
	if res.Gain != res.MeasuredMean-res.StaticMean {
		t.Fatalf("gain %.3f != %.3f - %.3f", res.Gain, res.MeasuredMean, res.StaticMean)
	}
	if res.Gain < 0 {
		t.Fatalf("measured ranking lost to static ranking: gain %.3f", res.Gain)
	}
	out := res.Format()
	for _, want := range []string{"static p,k", "measured p,k", "mean", "mm=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format lacks %q:\n%s", want, out)
		}
	}
}

// Table1Measured is deterministic: worker count changes wall-clock only.
func TestTable1MeasuredDeterministicAcrossWorkers(t *testing.T) {
	a, err := Table1Measured(3, 40, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1Measured(3, 40, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs across worker counts: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
