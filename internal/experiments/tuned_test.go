package experiments

import "testing"

func TestTable1TunedSavesProcessors(t *testing.T) {
	res, err := Table1Tuned(3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Procs <= 0 || row.BaseProcs <= 0 || row.Rate <= 0 {
			t.Fatalf("row %+v", row)
		}
		if row.Point.Processors < 1 || row.Point.Processors > 8 {
			t.Fatalf("loop %d chose p=%d outside the grid", row.Loop, row.Point.Processors)
		}
	}
	// The point of the min-procs objective: tuning never costs processors
	// on average, and on this suite it saves them outright.
	if res.ProcsMean >= res.BaseProcsMean {
		t.Fatalf("tuned procs mean %.2f >= sufficient %.2f", res.ProcsMean, res.BaseProcsMean)
	}
	// Sp stays in the same band as the baseline (within the epsilon-sized
	// slack plus fluctuation noise), not collapsed.
	for mi := range MMValues {
		if res.TunedMean[mi] < res.BaseMean[mi]-10 {
			t.Fatalf("mm=%d tuned Sp mean %.1f far below baseline %.1f",
				MMValues[mi], res.TunedMean[mi], res.BaseMean[mi])
		}
	}
	if res.Format() == "" {
		t.Fatal("empty render")
	}
}

// Worker count must not change any measurement: rows are pure in
// (seed, iters) and the inner sweep is deterministic.
func TestTable1TunedDeterministic(t *testing.T) {
	serial, err := Table1Tuned(2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table1Tuned(2, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Fatalf("row %d differs: serial %+v parallel %+v", i, serial.Rows[i], parallel.Rows[i])
		}
	}
}

func TestTable1TunedBadCount(t *testing.T) {
	if _, err := Table1Tuned(0, 100, 0); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Table1Tuned(26, 100, 0); err == nil {
		t.Fatal("count 26 accepted")
	}
}
