package experiments

import (
	"fmt"

	"mimdloop/internal/exec"
	"mimdloop/internal/graph"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// adaptiveSerialTol is the no-loss tolerance of the serial-fallback
// check: the fallback "loses" only when its measured rate exceeds the
// replaced parallel winner's by more than this fraction. The slack
// absorbs gort's per-trial wall-clock spread, not a real loss — on
// loops small enough to trip the threshold the sequential plan runs
// no slower than any plan that pays goroutine setup or channel sends.
const adaptiveSerialTol = 0.25

// adaptiveSerialIters is the iteration count of the serial-fallback
// probe. The fallback's contract is about loops whose total work is
// tiny — at this n the goroutine runtime's fixed costs and channel
// sends dwarf any pipelining gain, so the sequential plan must win (or
// tie) against whatever the grid would have picked. Probing at the
// table's full n would instead test a mis-set threshold: on loops with
// enough work the parallel winner genuinely beats sequential, which is
// exactly why the threshold is a *lower* bound.
const adaptiveSerialIters = 8

// adaptiveSerialTrials is the trial count of the head-to-head probe
// re-measurement. A probe run is a few dozen microseconds, so single
// trials scatter by 2x or more; the comparison uses the minimum over
// this many fresh trials of each plan (wall-clock noise on an otherwise
// deterministic interpretation is one-sided, so the min estimates the
// true floor).
const adaptiveSerialTrials = 32

// adaptiveShape is one loop of the adaptive-granularity suite: a
// workload.Streams or workload.Braid shape.
type adaptiveShape struct {
	Braid   bool // Braid(A, B, Latency) instead of Streams(A, B, Latency)
	A, B    int  // chains x perChain (streams) or length, skip (braid)
	Latency int
}

func (s adaptiveShape) String() string {
	if s.Braid {
		return fmt.Sprintf("braid%d/%d", s.A, s.B)
	}
	return fmt.Sprintf("%dx%d/l%d", s.A, s.B, s.Latency)
}

func (s adaptiveShape) build() (*graph.Graph, error) {
	if s.Braid {
		return workload.Braid(s.A, s.B, s.Latency)
	}
	return workload.Streams(s.A, s.B, s.Latency)
}

// adaptiveShapes is the small-n suite: stream loops whose self-
// recurrences survive every chunking grain while their distance-0
// cross-node flow edges batch into block messages. Single chains and
// few-chain streams force the scheduler to split a chain's segment
// across processors (parallelism on these loops is pipelining, and
// pipelining needs the split), so the grain-1 plan pays per-iteration
// channel sends that chunking amortizes; the braid adds flow-dependence
// density. Multi-chain shapes where the scheduler can co-locate whole
// chains (and pay no messages at any grain) deliberately stay out —
// they measure nothing about granularity.
var adaptiveShapes = []adaptiveShape{
	{false, 1, 6, 1},
	{false, 1, 4, 1},
	{false, 1, 5, 1},
	{false, 2, 4, 1},
	{false, 2, 5, 1},
	{false, 1, 8, 1},
	{true, 6, 2, 1},
	{false, 1, 10, 1},
}

// AdaptiveRow is one loop of the adaptive-granularity table: the same
// measured-gort tune run without and with the grain axis, both winners
// judged by their own gort measurements, plus the serial-fallback probe.
type AdaptiveRow struct {
	Loop  int
	Shape string
	Nodes int
	// FixedPoint / TunedPoint are the winning cells of the grain-1 grid
	// and the grain-axis grid.
	FixedPoint pipeline.Point
	TunedPoint pipeline.Point
	// FixedNs / TunedNs are the winners' mean wall-clock nanoseconds
	// per iteration on the goroutine runtime; Speedup is their ratio.
	FixedNs float64
	TunedNs float64
	Speedup float64
	// SerialNs / SerialParNs are the tiny-n probe (adaptiveSerialIters
	// iterations): the best-of-trials rate of the sequential plan the
	// serial-threshold fallback returns, next to the parallel winner
	// the grid would have picked at the same n, both re-measured head
	// to head with fresh trials. SerialOK reports the fallback did not
	// lose (within adaptiveSerialTol) to the plan it replaced.
	SerialNs    float64
	SerialParNs float64
	SerialOK    bool
}

// Table1AdaptiveResult aggregates the adaptive-granularity experiment.
type Table1AdaptiveResult struct {
	Rows       []AdaptiveRow
	Iterations int
	Trials     int
	// FixedNsMean / TunedNsMean are suite-mean wall-clock ns/iteration
	// of the two tunes' winners; MeanSpeedup is their ratio — the
	// aggregate factor the grain axis buys on small loops.
	FixedNsMean float64
	TunedNsMean float64
	MeanSpeedup float64
	// SerialLosses counts loops where the serial fallback measured
	// slower (beyond tolerance) than the parallel plan it replaced.
	SerialLosses int
}

// Table1Adaptive runs the adaptive-granularity experiment: for each
// stream loop of the small-n suite the same (p, k) grid is auto-tuned
// twice on the real goroutine runtime — once pinned to grain 1 (every
// cross-processor value pays one channel send) and once with the grain
// axis {1..32} — and each tune's winner is judged by its own
// gort measurements. Result values are equal by construction: the
// goroutine backend cross-checks every plan's values against the
// sequential interpretation, so a plan that computed anything different
// would fail its trial, not win the tune.
//
// Each row also probes the serial-threshold fallback at tiny n
// (adaptiveSerialIters): the same grid is tuned once normally and once
// with a threshold above the loop's total work, then both winners are
// re-measured head to head on fresh trials and compared on their
// best-of-trials rate. The fallback's one-processor sequential plan
// must not measure slower than the parallel winner it replaced — the
// fallback exists to skip the grid on loops too small to amortize
// channels and goroutine setup, and would be a pessimization anywhere
// it lost.
//
// Loops run serially (Workers 1, one tune at a time) for honest wall
// clock, like the other goroutine-backed tables.
func Table1Adaptive(count, iters, trials int) (*Table1AdaptiveResult, error) {
	if count < 1 {
		return nil, fmt.Errorf("experiments: adaptive table loop count %d, want >= 1", count)
	}
	if count > len(adaptiveShapes) {
		count = len(adaptiveShapes)
	}
	if iters == 0 {
		iters = 128
	}
	if trials == 0 {
		trials = 8
	}
	res := &Table1AdaptiveResult{
		Rows:       make([]AdaptiveRow, count),
		Iterations: iters,
		Trials:     trials,
	}
	pipe := pipeline.New(pipeline.Config{})
	for i := 0; i < count; i++ {
		row, err := adaptiveRow(pipe, i, adaptiveShapes[i], iters, trials)
		if err != nil {
			return nil, err
		}
		res.Rows[i] = row
	}
	var fixed, tuned []float64
	for _, row := range res.Rows {
		fixed = append(fixed, row.FixedNs)
		tuned = append(tuned, row.TunedNs)
		if !row.SerialOK {
			res.SerialLosses++
		}
	}
	res.FixedNsMean = metrics.Mean(fixed)
	res.TunedNsMean = metrics.Mean(tuned)
	if res.TunedNsMean > 0 {
		res.MeanSpeedup = res.FixedNsMean / res.TunedNsMean
	}
	return res, nil
}

// adaptiveGrid is the experiment's (p, k) search space: both processor
// budgets the stream shapes spread across, at the presumed comm
// estimate. The grain axis is added per tune.
var adaptiveGrid = pipeline.TuneOptions{
	Processors: []int{2, 4},
	CommCosts:  []int{2},
	Objective:  pipeline.ObjectiveMinRate,
	Workers:    1,
}

// adaptiveGrains is the grain axis of the tuned run. Grain 1 is
// included so the grid strictly contains the fixed grid — the tuned
// winner can only lose to the fixed one by measurement noise.
var adaptiveGrains = []int{1, 2, 4, 8, 16, 32}

// adaptiveRow tunes one stream loop three ways on the goroutine
// runtime: grain-pinned, grain-tuned, and serial-fallback.
func adaptiveRow(pipe *pipeline.Pipeline, loop int, shape adaptiveShape, iters, trials int) (AdaptiveRow, error) {
	var row AdaptiveRow
	g, err := shape.build()
	if err != nil {
		return row, err
	}
	row = AdaptiveRow{Loop: loop, Shape: shape.String(), Nodes: g.N()}

	grid := adaptiveGrid
	grid.Evaluator = &pipeline.MeasuredEvaluator{Trials: trials, Backend: exec.Goroutine{}}
	fixed, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d grain-1 tune: %w", loop, err)
	}

	grid.Grains = adaptiveGrains
	tuned, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d grain tune: %w", loop, err)
	}

	// The fallback probe runs at tiny n, where the fallback is meant to
	// fire: tune the same grid once without a threshold (the plan the
	// fallback replaces) and once with a threshold just above the
	// loop's total work (always trips). The comparison does NOT reuse
	// the tunes' own scores: the grid winner's score is the minimum of a
	// dozen noisy microsecond-scale measurements — a winner's-curse
	// estimate biased low — while the fallback's plan got a single draw.
	// Both plans are instead re-measured head to head with fresh trials
	// and judged on their best-of-trials rate.
	par, err := pipe.AutoTune(g, adaptiveSerialIters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d small-n tune: %w", loop, err)
	}
	grid.SerialThreshold = adaptiveSerialIters*g.TotalLatency() + 1
	serial, err := pipe.AutoTune(g, adaptiveSerialIters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d serial tune: %w", loop, err)
	}
	if !serial.SerialFallback {
		return row, fmt.Errorf("experiments: loop %d: threshold %d did not trip the serial fallback", loop, grid.SerialThreshold)
	}
	probe := &pipeline.MeasuredEvaluator{Trials: adaptiveSerialTrials, Backend: exec.Goroutine{}, Transient: true}
	parScore, err := pipe.Evaluate(probe, par.Best.Plan)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d parallel probe: %w", loop, err)
	}
	serialScore, err := pipe.Evaluate(probe, serial.Best.Plan)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d serial probe: %w", loop, err)
	}

	row.FixedPoint = fixed.Best.Point
	row.TunedPoint = tuned.Best.Point
	row.FixedNs = fixed.Best.Score.Rate
	row.TunedNs = tuned.Best.Score.Rate
	if row.TunedNs > 0 {
		row.Speedup = row.FixedNs / row.TunedNs
	}
	row.SerialNs = float64(serialScore.Measured.MakespanMin) / float64(adaptiveSerialIters)
	row.SerialParNs = float64(parScore.Measured.MakespanMin) / float64(adaptiveSerialIters)
	row.SerialOK = row.SerialNs <= row.SerialParNs*(1+adaptiveSerialTol)
	return row, nil
}

// Format renders the adaptive-granularity table.
func (r *Table1AdaptiveResult) Format() string {
	t := &metrics.Table{Header: []string{
		"loop", "shape", "nodes", "g1 p,k", "ad p,k,g", "g1 ns/it", "ad ns/it", "speedup", "ser ns/it", "par ns/it",
	}}
	for _, row := range r.Rows {
		serial := fmt.Sprintf("%.0f", row.SerialNs)
		if !row.SerialOK {
			serial += "!"
		}
		t.AddRow(
			fmt.Sprint(row.Loop), row.Shape, fmt.Sprint(row.Nodes),
			fmt.Sprintf("%d,%d", row.FixedPoint.Processors, row.FixedPoint.CommCost),
			fmt.Sprintf("%d,%d,%d", row.TunedPoint.Processors, row.TunedPoint.CommCost, row.TunedPoint.Grain),
			fmt.Sprintf("%.0f", row.FixedNs),
			fmt.Sprintf("%.0f", row.TunedNs),
			fmt.Sprintf("%.2fx", row.Speedup),
			serial,
			fmt.Sprintf("%.0f", row.SerialParNs),
		)
	}
	t.AddRow("mean", "", "", "", "",
		fmt.Sprintf("%.0f", r.FixedNsMean),
		fmt.Sprintf("%.0f", r.TunedNsMean),
		fmt.Sprintf("%.2fx", r.MeanSpeedup), "", "")
	return t.String() + fmt.Sprintf(
		"grain-tuned gort %.2fx faster than grain-1 gort over %d stream loops (n=%d, %d trials/cell); serial fallback (probed at n=%d) lost on %d loops\n",
		r.MeanSpeedup, len(r.Rows), r.Iterations, r.Trials, adaptiveSerialIters, r.SerialLosses)
}
