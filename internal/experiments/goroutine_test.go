package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestTable1GoroutineSmoke runs a CI-sized goroutine-backend comparison:
// the numbers are wall-clock samples, so the test pins structure and
// finiteness, never specific timings or which ranking wins.
func TestTable1GoroutineSmoke(t *testing.T) {
	res, err := Table1Goroutine(2, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Trials != 1 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, row := range res.Rows {
		if row.Nodes <= 0 {
			t.Fatalf("row %+v", row)
		}
		for _, ns := range []float64{row.SimNs, row.GortNs} {
			if ns <= 0 || math.IsInf(ns, 0) || math.IsNaN(ns) {
				t.Fatalf("wall-clock rate %v ns/iter: %+v", ns, row)
			}
		}
		if row.SimPoint.Processors == 0 || row.GortPoint.Processors == 0 {
			t.Fatalf("missing winner: %+v", row)
		}
	}
	out := res.Format()
	for _, want := range []string{"sim p,k", "gort p,k", "winners agree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestTable1GoroutineRejectsBadCount(t *testing.T) {
	if _, err := Table1Goroutine(0, 10, 1); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Table1Goroutine(26, 10, 1); err == nil {
		t.Fatal("count 26 accepted")
	}
}
