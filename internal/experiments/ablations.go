package experiments

import (
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// KEstimateRow measures schedule robustness when the compile-time estimate
// k differs from the machine's true communication cost (Section 5: the
// approach stays profitable "even when the estimation of communication cost
// is far off the mark").
type KEstimateRow struct {
	EstimatedK int
	TrueCost   int
	Sp         float64
}

// AblationKEstimate schedules the given loop with each estimate and runs it
// on a machine whose true cost is trueCost.
func AblationKEstimate(g *graph.Graph, estimates []int, trueCost, iters int) ([]KEstimateRow, error) {
	var rows []KEstimateRow
	seq := iters * g.TotalLatency()
	for _, k := range estimates {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k})
		if err != nil {
			return nil, fmt.Errorf("experiments: k=%d: %w", k, err)
		}
		full, err := multi.Expand(iters)
		if err != nil {
			return nil, err
		}
		progs, err := program.Build(full)
		if err != nil {
			return nil, err
		}
		stats, err := machine.Run(g, progs, machine.Config{Override: true, OverrideCost: trueCost})
		if err != nil {
			return nil, err
		}
		rows = append(rows, KEstimateRow{
			EstimatedK: k,
			TrueCost:   trueCost,
			Sp:         metrics.ClampZero(metrics.PercentParallelism(seq, stats.Makespan)),
		})
	}
	return rows, nil
}

// RateRow is a named steady-state rate measurement.
type RateRow struct {
	Name string
	Rate float64 // cycles per iteration
}

// AblationPlacement compares gap-filling placement against append-only
// placement on the given loop.
func AblationPlacement(g *graph.Graph, k int) ([]RateRow, error) {
	var rows []RateRow
	for _, cfg := range []struct {
		name       string
		appendOnly bool
	}{{"gap-fill", false}, {"append-only", true}} {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k, AppendOnly: cfg.appendOnly})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateRow{Name: cfg.name, Rate: multi.RatePerIteration()})
	}
	return rows, nil
}

// AblationQueueOrder compares the deterministic (iteration, body-rank)
// ready order against FIFO arrival order.
func AblationQueueOrder(g *graph.Graph, k int) ([]RateRow, error) {
	var rows []RateRow
	for _, cfg := range []struct {
		name string
		fifo bool
	}{{"iter-rank", false}, {"fifo", true}} {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k, FIFOOrder: cfg.fifo})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateRow{Name: cfg.name, Rate: multi.RatePerIteration()})
	}
	return rows, nil
}

// AblationProcessors sweeps the per-component processor budget through the
// pipeline's concurrent Sweep. The reported rate is the composed
// schedule's steady-state cycles/iteration — the verified pattern rate
// when one exists (iteration-count independent), else the measured
// average over the scheduled iterations (DOALL and no-pattern graphs).
// Unlike the seed, flow-bearing graphs are classified first, so the rate
// reflects the Cyclic core rather than flow nodes scheduled as if cyclic.
func AblationProcessors(g *graph.Graph, k int, procs []int) ([]RateRow, error) {
	pipe := pipeline.New(pipeline.Config{})
	results := pipe.Sweep(g, pipeline.Grid(procs, []int{k}), pipeline.SweepOptions{Iterations: 100})
	rows := make([]RateRow, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		rows = append(rows, RateRow{Name: fmt.Sprintf("p=%d", r.Point.Processors), Rate: r.Rate})
	}
	return rows, nil
}

// AblationCommModel compares the finish+k availability model against the
// overlapped start+k reading (CommFromStart).
func AblationCommModel(g *graph.Graph, k int) ([]RateRow, error) {
	var rows []RateRow
	for _, cfg := range []struct {
		name      string
		fromStart bool
	}{{"finish+k", false}, {"start+k", true}} {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k, CommFromStart: cfg.fromStart})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateRow{Name: cfg.name, Rate: multi.RatePerIteration()})
	}
	return rows, nil
}

// AblationPerfectPipelining contrasts the zero-communication idealized
// pattern (Perfect Pipelining, [AiNi88a]) with communication-aware
// schedules at increasing k on the Figure 3 example.
func AblationPerfectPipelining(ks []int) ([]RateRow, error) {
	g := workload.Figure3()
	var rows []RateRow
	for _, k := range ks {
		multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateRow{Name: fmt.Sprintf("k=%d", k), Rate: multi.RatePerIteration()})
	}
	return rows, nil
}
