package experiments

import (
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/doacross"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// MMValues are the communication-fluctuation settings of Table 1: mm = 1
// (no fluctuation), 3 (up to 67% extra delay on k=3), and 5 (up to 130%).
var MMValues = [3]int{1, 3, 5}

// Table1Row is one random loop's percentage parallelism under each mm.
type Table1Row struct {
	Loop     int // paper's loop number, 0-based seed-1
	Nodes    int
	Ours     [3]float64
	Doacross [3]float64
}

// Table1Result aggregates the suite, mirroring Table 1(a) and 1(b).
type Table1Result struct {
	Rows         []Table1Row
	OursMean     [3]float64
	DoacrossMean [3]float64
	Factor       [3]float64
	// PaperOursMean etc. are the paper's reported aggregates for
	// side-by-side display.
	PaperOursMean     [3]float64
	PaperDoacrossMean [3]float64
	PaperFactor       [3]float64
}

// Table1 runs the Section 4 experiment: loops 0..count-1 of the random
// suite (the paper uses all 25), scheduled by both algorithms with an
// estimated k = 3 and executed on the simulated multiprocessor with
// run-time communication costs in [k, k+mm-1] for mm in {1, 3, 5}. Loops
// are evaluated concurrently on up to GOMAXPROCS workers; every
// measurement is deterministic per loop, so the result is identical to the
// serial run.
func Table1(count, iters int) (*Table1Result, error) {
	return Table1Workers(count, iters, 0)
}

// Table1Workers is Table1 with an explicit worker-pool size (0 =
// GOMAXPROCS, 1 = the seed's serial behaviour).
func Table1Workers(count, iters, workers int) (*Table1Result, error) {
	if count < 1 || count > 25 {
		return nil, fmt.Errorf("experiments: table 1 loop count %d, want 1..25", count)
	}
	if iters == 0 {
		iters = 100
	}
	res := &Table1Result{
		PaperOursMean:     [3]float64{47.4046, 39.0674, 30.2776},
		PaperDoacrossMean: [3]float64{16.3135, 13.0623, 9.4823},
		PaperFactor:       [3]float64{2.9, 3.0, 3.3},
	}
	res.Rows = make([]Table1Row, count)
	errs := make([]error, count)
	pipeline.RunPool(count, workers, func(i int) {
		res.Rows[i], errs[i] = table1Row(int64(i+1), iters)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for mi := range MMValues {
		var ours, da []float64
		for _, row := range res.Rows {
			ours = append(ours, row.Ours[mi])
			da = append(da, row.Doacross[mi])
		}
		res.OursMean[mi] = metrics.Mean(ours)
		res.DoacrossMean[mi] = metrics.Mean(da)
		res.Factor[mi] = metrics.SpeedupFactor(res.OursMean[mi], res.DoacrossMean[mi])
	}
	return res, nil
}

// table1Row measures one random loop under both algorithms and all mm
// values. It is pure in seed and iters, which is what makes the
// worker-pool evaluation in Table1Workers order-independent.
func table1Row(seed int64, iters int) (Table1Row, error) {
	const k = 3
	var row Table1Row
	g, err := workload.Random(workload.PaperSpec, seed)
	if err != nil {
		return row, err
	}
	row = Table1Row{Loop: int(seed - 1), Nodes: g.N()}
	seq := iters * g.TotalLatency()

	// Ours: pattern schedule with sufficient processors.
	multi, err := core.CyclicSchedAll(g, core.Options{CommCost: k})
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d ours: %w", seed-1, err)
	}
	full, err := multi.Expand(iters)
	if err != nil {
		return row, err
	}
	oursProgs, err := program.Build(full)
	if err != nil {
		return row, err
	}

	// DOACROSS baseline, with the reordering courtesy of footnote 16.
	da, err := doacross.Schedule(g, doacross.Options{MaxProcessors: 8, CommCost: k, HeuristicReorder: true}, iters)
	if err != nil {
		return row, err
	}
	daProgs, err := program.Build(da.Schedule)
	if err != nil {
		return row, err
	}

	for mi, mm := range MMValues {
		cfg := machine.Config{Fluct: mm, Seed: seed}
		os, err := machine.Run(g, oursProgs, cfg)
		if err != nil {
			return row, fmt.Errorf("experiments: loop %d mm=%d ours sim: %w", seed-1, mm, err)
		}
		ds, err := machine.Run(g, daProgs, cfg)
		if err != nil {
			return row, fmt.Errorf("experiments: loop %d mm=%d doacross sim: %w", seed-1, mm, err)
		}
		row.Ours[mi] = metrics.ClampZero(metrics.PercentParallelism(seq, os.Makespan))
		row.Doacross[mi] = metrics.ClampZero(metrics.PercentParallelism(seq, ds.Makespan))
	}
	return row, nil
}

// FormatA renders Table 1(a).
func (r *Table1Result) FormatA() string {
	t := &metrics.Table{Header: []string{
		"loop", "x mm=1", "doacross", "x mm=3", "doacross", "x mm=5", "doacross",
	}}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Loop),
			metrics.F1(row.Ours[0]), metrics.F1(row.Doacross[0]),
			metrics.F1(row.Ours[1]), metrics.F1(row.Doacross[1]),
			metrics.F1(row.Ours[2]), metrics.F1(row.Doacross[2]),
		)
	}
	return t.String()
}

// FormatB renders Table 1(b) with the paper's numbers alongside.
func (r *Table1Result) FormatB() string {
	t := &metrics.Table{Header: []string{"", "mm=1", "mm=3", "mm=5"}}
	t.AddRow("x mean", metrics.F4(r.OursMean[0]), metrics.F4(r.OursMean[1]), metrics.F4(r.OursMean[2]))
	t.AddRow("doacross mean", metrics.F4(r.DoacrossMean[0]), metrics.F4(r.DoacrossMean[1]), metrics.F4(r.DoacrossMean[2]))
	t.AddRow("factor", metrics.F1(r.Factor[0]), metrics.F1(r.Factor[1]), metrics.F1(r.Factor[2]))
	t.AddRow("paper x mean", metrics.F4(r.PaperOursMean[0]), metrics.F4(r.PaperOursMean[1]), metrics.F4(r.PaperOursMean[2]))
	t.AddRow("paper doacross", metrics.F4(r.PaperDoacrossMean[0]), metrics.F4(r.PaperDoacrossMean[1]), metrics.F4(r.PaperDoacrossMean[2]))
	t.AddRow("paper factor", metrics.F1(r.PaperFactor[0]), metrics.F1(r.PaperFactor[1]), metrics.F1(r.PaperFactor[2]))
	return t.String()
}
