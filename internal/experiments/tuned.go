package experiments

import (
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// TunedRow is one random loop of the auto-tuned Table 1 variant: the
// sweep-chosen (p, k) plan next to the paper's sufficient-processor
// baseline, both executed on the same simulated machine (true
// communication cost 3, fluctuation mm).
type TunedRow struct {
	Loop  int // paper's loop number, 0-based seed-1
	Nodes int
	// Point is the auto-tuned (processors, comm-cost estimate).
	Point pipeline.Point
	// Procs / BaseProcs are the processors actually occupied by the
	// tuned plan and by the sufficient-processor baseline.
	Procs     int
	BaseProcs int
	// Rate / BaseRate are steady-state cycles/iteration.
	Rate     float64
	BaseRate float64
	// Sp / BaseSp are simulated percentage parallelism under each mm of
	// MMValues.
	Sp     [3]float64
	BaseSp [3]float64
}

// Table1TunedResult aggregates the auto-tuned variant of the Table 1
// experiment.
type Table1TunedResult struct {
	Rows []TunedRow
	// TunedMean / BaseMean are mean Sp per mm; ProcsMean / BaseProcsMean
	// are mean occupied processors.
	TunedMean     [3]float64
	BaseMean      [3]float64
	ProcsMean     float64
	BaseProcsMean float64
}

// tunedGrid is the (p, k) search space of Table1Tuned: every processor
// budget up to the paper's DOACROSS maximum, and comm-cost estimates
// bracketing the machine's true cost of 3.
var tunedGrid = pipeline.TuneOptions{
	Processors: []int{1, 2, 3, 4, 5, 6, 7, 8},
	CommCosts:  []int{2, 3, 4},
	Objective:  pipeline.ObjectiveMinProcs,
	Epsilon:    0.05,
}

// Table1Tuned runs the auto-tuned variant of the Section 4 experiment:
// instead of the paper's sufficiency assumption (one processor per Cyclic
// node), each random loop's (p, k) is chosen by pipeline.AutoTune under
// the min-processors objective — the cheapest plan within 5% of the best
// achievable rate. Both the tuned plan and the sufficient-processor
// baseline are executed on a machine whose true communication cost is 3
// (the k the baseline was scheduled with) under each Table 1 fluctuation
// setting, so the comparison isolates what tuning buys: the same
// steady-state behaviour on far fewer processors. Loops are evaluated
// concurrently on up to `workers` pool workers (0 = GOMAXPROCS); every
// measurement is deterministic per loop.
func Table1Tuned(count, iters, workers int) (*Table1TunedResult, error) {
	if count < 1 || count > 25 {
		return nil, fmt.Errorf("experiments: table 1 loop count %d, want 1..25", count)
	}
	if iters == 0 {
		iters = 100
	}
	res := &Table1TunedResult{Rows: make([]TunedRow, count)}
	pipe := pipeline.New(pipeline.Config{})
	errs := make([]error, count)
	pipeline.RunPool(count, workers, func(i int) {
		res.Rows[i], errs[i] = tunedRow(pipe, int64(i+1), iters)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var procs, baseProcs []float64
	for mi := range MMValues {
		var tuned, base []float64
		for _, row := range res.Rows {
			tuned = append(tuned, row.Sp[mi])
			base = append(base, row.BaseSp[mi])
		}
		res.TunedMean[mi] = metrics.Mean(tuned)
		res.BaseMean[mi] = metrics.Mean(base)
	}
	for _, row := range res.Rows {
		procs = append(procs, float64(row.Procs))
		baseProcs = append(baseProcs, float64(row.BaseProcs))
	}
	res.ProcsMean = metrics.Mean(procs)
	res.BaseProcsMean = metrics.Mean(baseProcs)
	return res, nil
}

// tunedRow measures one random loop: baseline (sufficient processors,
// k=3) and the auto-tuned plan, simulated on the same machine. The inner
// sweep runs serially (Workers: 1) because loops are already evaluated in
// parallel by the caller.
func tunedRow(pipe *pipeline.Pipeline, seed int64, iters int) (TunedRow, error) {
	const trueCost = 3
	var row TunedRow
	g, err := workload.Random(workload.PaperSpec, seed)
	if err != nil {
		return row, err
	}
	row = TunedRow{Loop: int(seed - 1), Nodes: g.N()}
	seq := iters * g.TotalLatency()

	base, _, err := pipe.Schedule(g, core.Options{CommCost: trueCost}, iters)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d baseline: %w", seed-1, err)
	}
	row.BaseProcs = base.Procs()
	row.BaseRate = base.Rate()

	opt := tunedGrid
	opt.Workers = 1
	tuned, err := pipe.AutoTune(g, iters, opt)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d tune: %w", seed-1, err)
	}
	row.Point = tuned.Best.Point
	row.Procs = tuned.Best.Procs
	row.Rate = tuned.Best.Rate

	for mi, mm := range MMValues {
		// Override pins the machine's true cost to 3 whatever estimate
		// tuning picked; fluctuation still adds [0, mm-1] per message.
		cfg := machine.Config{Fluct: mm, Seed: seed, Override: true, OverrideCost: trueCost}
		bs, err := machine.Run(g, base.Programs, cfg)
		if err != nil {
			return row, fmt.Errorf("experiments: loop %d mm=%d baseline sim: %w", seed-1, mm, err)
		}
		ts, err := machine.Run(g, tuned.Best.Plan.Programs, cfg)
		if err != nil {
			return row, fmt.Errorf("experiments: loop %d mm=%d tuned sim: %w", seed-1, mm, err)
		}
		row.BaseSp[mi] = metrics.ClampZero(metrics.PercentParallelism(seq, bs.Makespan))
		row.Sp[mi] = metrics.ClampZero(metrics.PercentParallelism(seq, ts.Makespan))
	}
	return row, nil
}

// Format renders the auto-tuned comparison: chosen point, processor
// savings, and Sp under each fluctuation setting.
func (r *Table1TunedResult) Format() string {
	t := &metrics.Table{Header: []string{
		"loop", "p*", "k*", "procs", "suff", "mm=1", "suff", "mm=3", "suff", "mm=5", "suff",
	}}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Loop),
			fmt.Sprint(row.Point.Processors), fmt.Sprint(row.Point.CommCost),
			fmt.Sprint(row.Procs), fmt.Sprint(row.BaseProcs),
			metrics.F1(row.Sp[0]), metrics.F1(row.BaseSp[0]),
			metrics.F1(row.Sp[1]), metrics.F1(row.BaseSp[1]),
			metrics.F1(row.Sp[2]), metrics.F1(row.BaseSp[2]),
		)
	}
	t.AddRow("mean", "", "",
		metrics.F1(r.ProcsMean), metrics.F1(r.BaseProcsMean),
		metrics.F1(r.TunedMean[0]), metrics.F1(r.BaseMean[0]),
		metrics.F1(r.TunedMean[1]), metrics.F1(r.BaseMean[1]),
		metrics.F1(r.TunedMean[2]), metrics.F1(r.BaseMean[2]),
	)
	return t.String()
}
