package experiments

import (
	"fmt"

	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// MeasuredRow is one random loop of the measured-tuning Table 1 variant:
// the (p, k) winner picked by ranking the grid on the *scheduled* rate
// (static, what PR 2 shipped) next to the winner picked by ranking on
// *measured* Sp over repeated seeded trials on the simulated machine —
// both then judged by the same measured yardstick.
type MeasuredRow struct {
	Loop  int // paper's loop number, 0-based seed-1
	Nodes int
	// StaticPoint / MeasuredPoint are the winning grid cells under each
	// ranking.
	StaticPoint   pipeline.Point
	MeasuredPoint pipeline.Point
	// StaticSp / MeasuredSp are the mean measured Sp of each winner over
	// the same trials; MeasuredSp >= StaticSp by construction (the
	// measured ranking optimizes exactly this quantity).
	StaticSp   float64
	MeasuredSp float64
	// StaticSpread / MeasuredSpread are max-min Sp over the trials.
	StaticSpread   float64
	MeasuredSpread float64
	// Agree reports both rankings picked the same grid cell.
	Agree bool
}

// Table1MeasuredResult aggregates the measured-tuning experiment.
type Table1MeasuredResult struct {
	Rows []MeasuredRow
	// Trials and Fluct echo the measurement protocol.
	Trials int
	Fluct  int
	// StaticMean / MeasuredMean are mean measured Sp of the two rankings'
	// winners; Gain is their difference (what measuring buys, in Sp
	// percentage points).
	StaticMean   float64
	MeasuredMean float64
	Gain         float64
	// Agreements counts loops where both rankings picked the same cell.
	Agreements int
}

// Table1Measured runs the measured-tuning variant of the Section 4
// experiment: for each random loop the same (p, k) grid is auto-tuned
// twice under the min-rate objective — once ranking by the static
// scheduled rate, once by measured Sp from `trials` seeded simulations
// under fluctuation mm on a machine whose true communication cost is 3 —
// and both winners are then measured with identical trials. The gap
// between the two means is exactly the value of evaluating on the
// simulated machine instead of trusting the compile-time cost model
// (cf. Baghdadi et al., arXiv:1111.6756, on static-only cost models
// mispredicting the best variant). Loops run concurrently on up to
// `workers` pool workers; every measurement is deterministic per loop.
func Table1Measured(count, iters, trials, workers int) (*Table1MeasuredResult, error) {
	if count < 1 || count > 25 {
		return nil, fmt.Errorf("experiments: table 1 loop count %d, want 1..25", count)
	}
	if iters == 0 {
		iters = 100
	}
	if trials == 0 {
		trials = 5
	}
	res := &Table1MeasuredResult{
		Rows:   make([]MeasuredRow, count),
		Trials: trials,
		Fluct:  measuredMM,
	}
	pipe := pipeline.New(pipeline.Config{})
	errs := make([]error, count)
	pipeline.RunPool(count, workers, func(i int) {
		res.Rows[i], errs[i] = measuredRow(pipe, int64(i+1), iters, trials)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var static, measured []float64
	for _, row := range res.Rows {
		static = append(static, row.StaticSp)
		measured = append(measured, row.MeasuredSp)
		if row.Agree {
			res.Agreements++
		}
	}
	res.StaticMean = metrics.Mean(static)
	res.MeasuredMean = metrics.Mean(measured)
	res.Gain = res.MeasuredMean - res.StaticMean
	return res, nil
}

// measuredRow tunes one random loop under both rankings and scores both
// winners with the same measured evaluator. The inner sweeps run
// serially (Workers: 1) because loops are already evaluated in parallel
// by the caller.
func measuredRow(pipe *pipeline.Pipeline, seed int64, iters, trials int) (MeasuredRow, error) {
	const trueCost = 3
	var row MeasuredRow
	g, err := workload.Random(workload.PaperSpec, seed)
	if err != nil {
		return row, err
	}
	row = MeasuredRow{Loop: int(seed - 1), Nodes: g.N()}

	// The measured evaluator pins the machine's true communication cost
	// to 3 whatever estimate k a grid cell scheduled with, and perturbs
	// each message by [0, mm-1]; each trial reruns under a derived seed.
	ev := &pipeline.MeasuredEvaluator{
		Trials: trials,
		Fluct:  measuredMM,
		Seed:   seed,
		Base:   machine.Config{Override: true, OverrideCost: trueCost},
	}
	grid := tunedGrid // same (p, k) search space as Table1Tuned
	grid.Objective = pipeline.ObjectiveMinRate
	grid.Workers = 1

	static, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d static tune: %w", seed-1, err)
	}
	grid.Evaluator = ev
	measured, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d measured tune: %w", seed-1, err)
	}

	row.StaticPoint = static.Best.Point
	row.MeasuredPoint = measured.Best.Point
	row.Agree = row.StaticPoint == row.MeasuredPoint

	// Judge both winners by the same yardstick.
	staticScore, err := pipe.Evaluate(ev, static.Best.Plan)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d static winner eval: %w", seed-1, err)
	}
	row.StaticSp = staticScore.Measured.SpMean
	row.StaticSpread = staticScore.Measured.SpMax - staticScore.Measured.SpMin
	m := measured.Best.Score.Measured
	row.MeasuredSp = m.SpMean
	row.MeasuredSpread = m.SpMax - m.SpMin
	return row, nil
}

// measuredMM is the fluctuation amplitude of the experiment (Table 1's
// middle setting, mm = 3).
const measuredMM = 3

// Format renders the comparison: both winners and their measured Sp.
func (r *Table1MeasuredResult) Format() string {
	t := &metrics.Table{Header: []string{
		"loop", "static p,k", "Sp", "spread", "measured p,k", "Sp", "spread", "agree",
	}}
	point := func(p pipeline.Point) string {
		return fmt.Sprintf("%d,%d", p.Processors, p.CommCost)
	}
	for _, row := range r.Rows {
		agree := ""
		if row.Agree {
			agree = "="
		}
		t.AddRow(
			fmt.Sprint(row.Loop),
			point(row.StaticPoint), metrics.F1(row.StaticSp), metrics.F1(row.StaticSpread),
			point(row.MeasuredPoint), metrics.F1(row.MeasuredSp), metrics.F1(row.MeasuredSpread),
			agree,
		)
	}
	t.AddRow("mean", "", metrics.F1(r.StaticMean), "", "", metrics.F1(r.MeasuredMean), "", "")
	return t.String() + fmt.Sprintf(
		"measured ranking (%d trials, mm=%d) gains %+.1f Sp points over static ranking; %d/%d winners agree\n",
		r.Trials, r.Fluct, r.Gain, r.Agreements, len(r.Rows))
}
