// Package experiments regenerates every table and figure of the paper's
// evaluation: the worked examples of Section 3 (Figures 3, 7, 8, 9, 11, 12)
// and the 25-random-loop robustness study of Section 4 (Table 1), plus the
// ablations of design choices called out in DESIGN.md. It is shared by
// cmd/paperbench (human-readable reports) and the repository benchmarks.
package experiments

import (
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/doacross"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/plan"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// Comparison is one "our algorithm vs DOACROSS" measurement on a loop,
// using the simulated multiprocessor with exact communication estimates.
type Comparison struct {
	Name       string
	Iterations int
	CommCost   int

	SeqTime       int
	OursTime      int
	DoacrossTime  int
	OursSp        float64 // percentage parallelism, clamped at 0
	DoacrossSp    float64
	OursProcs     int
	DoacrossProcs int
	OursRate      float64 // steady-state cycles/iteration (0 if no pattern)

	// PaperOursSp / PaperDoacrossSp record the numbers the paper reports
	// for this artifact, for side-by-side presentation (0 when the paper
	// gives none).
	PaperOursSp     float64
	PaperDoacrossSp float64
}

func (c *Comparison) String() string {
	return fmt.Sprintf(
		"%s (k=%d, N=%d): seq=%d ours=%d (%d PEs, Sp=%.1f%%, paper %.1f%%) doacross=%d (%d PEs, Sp=%.1f%%, paper %.1f%%)",
		c.Name, c.CommCost, c.Iterations,
		c.SeqTime,
		c.OursTime, c.OursProcs, c.OursSp, c.PaperOursSp,
		c.DoacrossTime, c.DoacrossProcs, c.DoacrossSp, c.PaperDoacrossSp)
}

// CompareOptions tunes a comparison run.
type CompareOptions struct {
	CommCost   int
	Iterations int
	// Processors for our algorithm's Cyclic subset (0 = sufficient).
	Processors int
	// Fold applies the Section 3 non-Cyclic folding heuristic.
	Fold bool
	// DoacrossMaxProcs bounds the baseline's search (0 = 8).
	DoacrossMaxProcs int
	// Fluct / Seed forward to the simulated machine (Table 1's mm).
	Fluct int
	Seed  int64
}

// Compare schedules g with both algorithms and measures parallel execution
// time on the simulated machine.
func Compare(name string, g *graph.Graph, opt CompareOptions) (*Comparison, error) {
	if opt.Iterations == 0 {
		opt.Iterations = 100
	}
	n := opt.Iterations
	seq := n * g.TotalLatency()
	cmp := &Comparison{Name: name, Iterations: n, CommCost: opt.CommCost, SeqTime: seq}

	ls, err := core.ScheduleLoop(g, core.Options{
		Processors:    opt.Processors,
		CommCost:      opt.CommCost,
		FoldNonCyclic: opt.Fold,
	}, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s ours: %w", name, err)
	}
	oursProgs, err := program.Build(ls.Full)
	if err != nil {
		return nil, err
	}
	oursStats, err := machine.Run(g, oursProgs, machine.Config{Fluct: opt.Fluct, Seed: opt.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s ours sim: %w", name, err)
	}
	cmp.OursTime = oursStats.Makespan
	cmp.OursProcs = ls.TotalProcs()
	cmp.OursRate = ls.RatePerIteration()
	cmp.OursSp = metrics.ClampZero(metrics.PercentParallelism(seq, cmp.OursTime))

	da, err := doacross.Schedule(g, doacross.Options{
		MaxProcessors: opt.DoacrossMaxProcs,
		CommCost:      opt.CommCost,
	}, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s doacross: %w", name, err)
	}
	daProgs, err := program.Build(da.Schedule)
	if err != nil {
		return nil, err
	}
	daStats, err := machine.Run(g, daProgs, machine.Config{Fluct: opt.Fluct, Seed: opt.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s doacross sim: %w", name, err)
	}
	cmp.DoacrossTime = daStats.Makespan
	cmp.DoacrossProcs = da.Processors
	cmp.DoacrossSp = metrics.ClampZero(metrics.PercentParallelism(seq, cmp.DoacrossTime))
	return cmp, nil
}

// Figure7 reproduces the Section 3 headline example: ours 40% vs
// DOACROSS 0% at k=2 on 2 processors.
func Figure7(iters int) (*Comparison, error) {
	c, err := Compare("figure7", workload.Figure7().Graph, CompareOptions{
		CommCost:   2,
		Iterations: iters,
		Processors: 2,
	})
	if err != nil {
		return nil, err
	}
	c.PaperOursSp, c.PaperDoacrossSp = 40, 0
	return c, nil
}

// Figure9 reproduces the [Cytron86] example: paper reports 72.7% vs 31.8%
// at k=2.
func Figure9(iters int) (*Comparison, error) {
	c, err := Compare("figure9-cytron86", workload.Figure9(), CompareOptions{
		CommCost:   2,
		Iterations: iters,
		Processors: 2,
	})
	if err != nil {
		return nil, err
	}
	c.PaperOursSp, c.PaperDoacrossSp = 72.7, 31.8
	return c, nil
}

// Figure11 reproduces the 18th Livermore Loop comparison: paper reports
// 49.4% vs 12.6% at k=2 with the non-Cyclic folding heuristic.
func Figure11(iters int) (*Comparison, error) {
	c, err := Compare("figure11-livermore18", workload.Livermore18().Graph, CompareOptions{
		CommCost:   2,
		Iterations: iters,
		Processors: 2,
		Fold:       true,
	})
	if err != nil {
		return nil, err
	}
	c.PaperOursSp, c.PaperDoacrossSp = 49.4, 12.6
	return c, nil
}

// Figure12 reproduces the fifth-order elliptic filter comparison: paper
// reports 30.9% vs 0% at k=2 with folding.
func Figure12(iters int) (*Comparison, error) {
	c, err := Compare("figure12-elliptic", workload.Elliptic().Graph, CompareOptions{
		CommCost:   2,
		Iterations: iters,
		Processors: 2,
		Fold:       true,
	})
	if err != nil {
		return nil, err
	}
	c.PaperOursSp, c.PaperDoacrossSp = 30.9, 0
	return c, nil
}

// Figure8 reproduces the DOACROSS-only study on the Figure 7 loop: natural
// order and exhaustively reordered, both gaining nothing.
type Figure8Result struct {
	NaturalMakespan   int
	ReorderedMakespan int
	SequentialTime    int
	NaturalSp         float64
	ReorderedSp       float64
}

// Figure8 runs both DOACROSS variants of Figure 8.
func Figure8(iters int) (*Figure8Result, error) {
	g := workload.Figure7().Graph
	timing := plan.Timing{CommCost: 2}
	seq := plan.Sequential(g, timing, iters).Makespan()
	nat, err := doacross.Schedule(g, doacross.Options{MaxProcessors: 4, CommCost: 2}, iters)
	if err != nil {
		return nil, err
	}
	reord, err := doacross.Schedule(g, doacross.Options{MaxProcessors: 4, CommCost: 2, BestReorder: true}, iters)
	if err != nil {
		return nil, err
	}
	return &Figure8Result{
		NaturalMakespan:   nat.Schedule.Makespan(),
		ReorderedMakespan: reord.Schedule.Makespan(),
		SequentialTime:    seq,
		NaturalSp:         metrics.ClampZero(metrics.PercentParallelism(seq, nat.Schedule.Makespan())),
		ReorderedSp:       metrics.ClampZero(metrics.PercentParallelism(seq, reord.Schedule.Makespan())),
	}, nil
}
