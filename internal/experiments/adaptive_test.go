package experiments

import (
	"strings"
	"testing"
)

// TestTable1AdaptiveAcceptance pins the PR's two perf claims on the real
// goroutine runtime: the grain-tuned winner beats the grain-1 winner by
// at least 1.5x in aggregate over the small-n suite, and the serial
// fallback never loses (beyond tolerance) to the parallel plan it
// replaced. Wall-clock measurements on a shared CI machine scatter, so
// the whole predicate retries a few times; a genuine regression fails
// every attempt.
func TestTable1AdaptiveAcceptance(t *testing.T) {
	const attempts = 3
	var last string
	for a := 0; a < attempts; a++ {
		res, err := Table1Adaptive(len(adaptiveShapes), 0, 0)
		if err != nil {
			t.Fatalf("attempt %d: %v", a, err)
		}
		checkAdaptiveRows(t, res)
		if res.MeanSpeedup >= 1.5 && res.SerialLosses == 0 {
			return
		}
		last = res.Format()
		t.Logf("attempt %d: mean speedup %.2fx, %d serial losses",
			a, res.MeanSpeedup, res.SerialLosses)
	}
	t.Fatalf("no attempt reached 1.5x mean speedup with 0 serial losses; last table:\n%s", last)
}

// checkAdaptiveRows sanity-checks table structure: every row measured
// both tunes, the tuned grid strictly contains the fixed one (so its
// winner carries a real grain), and the probe produced rates.
func checkAdaptiveRows(t *testing.T, res *Table1AdaptiveResult) {
	t.Helper()
	if len(res.Rows) != len(adaptiveShapes) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(adaptiveShapes))
	}
	for i, row := range res.Rows {
		if row.Loop != i || row.Shape == "" || row.Nodes < 4 {
			t.Fatalf("row %d malformed: %+v", i, row)
		}
		if row.FixedNs <= 0 || row.TunedNs <= 0 || row.SerialNs <= 0 || row.SerialParNs <= 0 {
			t.Fatalf("row %d has unmeasured rates: %+v", i, row)
		}
		if row.FixedPoint.Grain > 1 {
			t.Fatalf("row %d: grain-1 tune picked grain %d", i, row.FixedPoint.Grain)
		}
		if row.TunedPoint.Grain < 1 {
			t.Fatalf("row %d: grain tune returned grain %d", i, row.TunedPoint.Grain)
		}
	}
	if res.Iterations != 128 || res.Trials != 8 {
		t.Fatalf("defaults not applied: n=%d trials=%d", res.Iterations, res.Trials)
	}
	out := res.Format()
	for _, want := range []string{"speedup", "ser ns/it", "grain-tuned gort"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestTable1AdaptiveArgs pins argument validation and clamping.
func TestTable1AdaptiveArgs(t *testing.T) {
	if _, err := Table1Adaptive(0, 0, 0); err == nil {
		t.Fatal("count 0 accepted")
	}
	res, err := Table1Adaptive(1000, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(adaptiveShapes) {
		t.Fatalf("count not clamped: %d rows", len(res.Rows))
	}
	if res.Iterations != 16 || res.Trials != 1 {
		t.Fatalf("explicit n/trials not kept: n=%d trials=%d", res.Iterations, res.Trials)
	}
}
