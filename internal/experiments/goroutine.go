package experiments

import (
	"fmt"

	"mimdloop/internal/exec"
	"mimdloop/internal/metrics"
	"mimdloop/internal/pipeline"
	"mimdloop/internal/workload"
)

// GoroutineRow is one random loop of the goroutine-backend Table 1
// variant: the (p, k) winner picked by ranking the grid on the
// deterministic simulated machine next to the winner picked by ranking
// on real goroutine execution — both then judged by the same goroutine
// yardstick, wall-clock nanoseconds per iteration.
type GoroutineRow struct {
	Loop  int // paper's loop number, 0-based seed-1
	Nodes int
	// SimPoint / GortPoint are the winning grid cells under each ranking.
	SimPoint  pipeline.Point
	GortPoint pipeline.Point
	// SimNs / GortNs are each winner's mean wall-clock nanoseconds per
	// iteration when executed on the goroutine runtime.
	SimNs  float64
	GortNs float64
	// SimSp / GortSp are each winner's mean wall-clock Sp against the
	// timed sequential interpretation (often 0 on small loops: channel
	// synchronization per value dwarfs MixSemantics compute).
	SimSp  float64
	GortSp float64
	// Agree reports both rankings picked the same grid cell.
	Agree bool
}

// Table1GoroutineResult aggregates the goroutine-backend experiment.
type Table1GoroutineResult struct {
	Rows []GoroutineRow
	// Trials echoes the per-point goroutine trial count.
	Trials int
	// SimNsMean / GortNsMean are mean wall-clock ns/iteration of the two
	// rankings' winners under the goroutine yardstick; Gain is the
	// relative improvement of ranking on the real runtime, in percent.
	SimNsMean  float64
	GortNsMean float64
	Gain       float64
	// Agreements counts loops where both rankings picked the same cell.
	Agreements int
}

// Table1Goroutine runs the goroutine-backend variant of the Section 4
// experiment: for each random loop the same (p, k) grid is auto-tuned
// twice under the min-rate objective — once ranked by measured Sp on
// the simulated machine (deterministic seeded trials, the Table 1m
// protocol), once ranked by wall-clock time on the real
// goroutine-per-processor runtime — and both winners are then timed on
// the goroutine runtime. The gap between the two means is what ranking
// against real asynchronous execution buys over ranking against the
// simulator's model of it; unlike the 1m table the numbers are honest
// wall-clock samples, so loops run *serially* (a pool would time
// interference, not plans) and repeat runs vary.
func Table1Goroutine(count, iters, trials int) (*Table1GoroutineResult, error) {
	if count < 1 || count > 25 {
		return nil, fmt.Errorf("experiments: table 1 loop count %d, want 1..25", count)
	}
	if iters == 0 {
		iters = 100
	}
	if trials == 0 {
		trials = 3
	}
	res := &Table1GoroutineResult{
		Rows:   make([]GoroutineRow, count),
		Trials: trials,
	}
	pipe := pipeline.New(pipeline.Config{})
	for i := 0; i < count; i++ {
		row, err := goroutineRow(pipe, int64(i+1), iters, trials)
		if err != nil {
			return nil, err
		}
		res.Rows[i] = row
	}
	var sim, gort []float64
	for _, row := range res.Rows {
		sim = append(sim, row.SimNs)
		gort = append(gort, row.GortNs)
		if row.Agree {
			res.Agreements++
		}
	}
	res.SimNsMean = metrics.Mean(sim)
	res.GortNsMean = metrics.Mean(gort)
	if res.SimNsMean > 0 {
		res.Gain = (res.SimNsMean - res.GortNsMean) / res.SimNsMean * 100
	}
	return res, nil
}

// goroutineRow tunes one random loop under both rankings and times both
// winners on the goroutine runtime. The grid is deliberately smaller
// than the 1m table's (real executions are not free) but brackets the
// same trade-off: a few processor budgets around the Cyclic width, comm
// estimates around the machine's presumed cost.
func goroutineRow(pipe *pipeline.Pipeline, seed int64, iters, trials int) (GoroutineRow, error) {
	var row GoroutineRow
	g, err := workload.Random(workload.PaperSpec, seed)
	if err != nil {
		return row, err
	}
	row = GoroutineRow{Loop: int(seed - 1), Nodes: g.N()}

	grid := pipeline.TuneOptions{
		Processors: []int{2, 4, 8},
		CommCosts:  []int{2, 3},
		Objective:  pipeline.ObjectiveMinRate,
		Workers:    1,
	}
	grid.Evaluator = &pipeline.MeasuredEvaluator{Trials: trials, Fluct: measuredMM, Seed: seed}
	sim, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d sim tune: %w", seed-1, err)
	}
	gortEv := &pipeline.MeasuredEvaluator{Trials: trials, Backend: exec.Goroutine{}}
	grid.Evaluator = gortEv
	gort, err := pipe.AutoTune(g, iters, grid)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d gort tune: %w", seed-1, err)
	}

	row.SimPoint = sim.Best.Point
	row.GortPoint = gort.Best.Point
	row.Agree = row.SimPoint == row.GortPoint

	// Judge both winners by the same goroutine yardstick.
	simScore, err := pipe.Evaluate(gortEv, sim.Best.Plan)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d sim winner on gort: %w", seed-1, err)
	}
	row.SimNs = simScore.Rate
	row.SimSp = simScore.Measured.SpMean
	gortScore, err := pipe.Evaluate(gortEv, gort.Best.Plan)
	if err != nil {
		return row, fmt.Errorf("experiments: loop %d gort winner re-eval: %w", seed-1, err)
	}
	row.GortNs = gortScore.Rate
	row.GortSp = gortScore.Measured.SpMean
	return row, nil
}

// Format renders the comparison: both winners and their wall-clock
// cost per iteration on the goroutine runtime.
func (r *Table1GoroutineResult) Format() string {
	t := &metrics.Table{Header: []string{
		"loop", "sim p,k", "ns/iter", "Sp", "gort p,k", "ns/iter", "Sp", "agree",
	}}
	point := func(p pipeline.Point) string {
		return fmt.Sprintf("%d,%d", p.Processors, p.CommCost)
	}
	for _, row := range r.Rows {
		agree := ""
		if row.Agree {
			agree = "="
		}
		t.AddRow(
			fmt.Sprint(row.Loop),
			point(row.SimPoint), fmt.Sprintf("%.0f", row.SimNs), metrics.F1(row.SimSp),
			point(row.GortPoint), fmt.Sprintf("%.0f", row.GortNs), metrics.F1(row.GortSp),
			agree,
		)
	}
	t.AddRow("mean", "", fmt.Sprintf("%.0f", r.SimNsMean), "",
		"", fmt.Sprintf("%.0f", r.GortNsMean), "", "")
	return t.String() + fmt.Sprintf(
		"goroutine ranking (%d wall-clock trials/point) is %+.1f%% vs simulator ranking on the goroutine runtime; %d/%d winners agree\n",
		r.Trials, r.Gain, r.Agreements, len(r.Rows))
}
