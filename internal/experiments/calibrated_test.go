package experiments

import (
	"math"
	"strings"
	"testing"

	"mimdloop/internal/calib"
)

// TestTable1CalibratedAcceptance pins the PR's two acceptance bounds on
// a real run: the calibrated ranking lands within the regret tolerance
// of gort's winner on at least 80% of the suite, and a csim tune costs
// under 1% of the equivalent gort tune's wall-clock. The run is real
// timing on whatever host CI gives us, so everything else (regrets,
// profiles, which cell wins) is checked for shape and finiteness only.
func TestTable1CalibratedAcceptance(t *testing.T) {
	res, err := Table1Calibrated(10, 40, 0, calib.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CsimAgreePct < 80 {
		t.Errorf("csim within %.0f%% of gort's winner on only %d/%d loops (%.0f%%), acceptance floor 80%%\n%s",
			calibratedRegretTol*100, res.CsimAgreements, len(res.Rows), res.CsimAgreePct, res.Format())
	}
	if res.LatencyRatio <= 0 || res.LatencyRatio >= 0.01 {
		t.Errorf("csim tune costs %.2f%% of gort tune, acceptance ceiling 1%%\n%s",
			res.LatencyRatio*100, res.Format())
	}
	if res.Profile == nil || res.Profile.Model.IsZero() {
		t.Fatalf("experiment ran without a fitted profile: %+v", res.Profile)
	}
	if res.Trials != 20 {
		t.Fatalf("default gort trial count drifted: %d", res.Trials)
	}
	for _, row := range res.Rows {
		if row.Nodes <= 0 || row.CsimTuneNs <= 0 || row.GortTuneNs <= 0 {
			t.Fatalf("row shape: %+v", row)
		}
		for _, rgt := range []float64{row.SimRegret, row.CsimRegret} {
			if rgt < 0 || math.IsInf(rgt, 0) || math.IsNaN(rgt) {
				t.Fatalf("regret %v: %+v", rgt, row)
			}
		}
	}
	out := res.Format()
	for _, want := range []string{"csim p,k", "csim rgt", "of gort tune", "profile:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestTable1CalibratedRejectsBadCount(t *testing.T) {
	if _, err := Table1Calibrated(0, 10, 1, calib.Quick()); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Table1Calibrated(26, 10, 1, calib.Quick()); err == nil {
		t.Fatal("count 26 accepted")
	}
}
