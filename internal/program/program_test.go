package program

import (
	"strings"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

func figure7(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fig7Schedule(t testing.TB, n int) (*graph.Graph, *plan.Schedule, *core.CyclicResult) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(n)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, res
}

func TestBuildInstructionInvariants(t *testing.T) {
	g, s, _ := fig7Schedule(t, 12)
	progs, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("programs = %d, want 2", len(progs))
	}
	st := Summarize(progs)
	if st.Computes != 12*g.N() {
		t.Fatalf("computes = %d, want %d", st.Computes, 12*g.N())
	}
	if st.Sends != st.Recvs {
		t.Fatalf("sends %d != recvs %d", st.Sends, st.Recvs)
	}
	if st.Sends == 0 {
		t.Fatal("no communication generated for a cross-processor schedule")
	}
	// Per program: every recv precedes the first compute that needs it;
	// every send follows its producing compute. Verify by replaying
	// available-value sets.
	for _, prog := range progs {
		have := map[graph.InstanceID]bool{}
		for i, in := range prog.Instrs {
			id := graph.InstanceID{Node: in.Node, Iter: in.Iter}
			switch in.Kind {
			case OpRecv:
				have[id] = true
			case OpSend:
				if !have[id] {
					t.Fatalf("PE%d instr %d sends value it does not have", prog.Proc, i)
				}
			case OpCompute:
				for _, ei := range g.In(in.Node) {
					e := g.Edges[ei]
					src := graph.InstanceID{Node: e.From, Iter: in.Iter - e.Distance}
					if src.Iter < 0 {
						continue
					}
					if !have[src] {
						t.Fatalf("PE%d instr %d computes (%s,%d) missing operand (%s,%d)",
							prog.Proc, i, g.Nodes[in.Node].Name, in.Iter, g.Nodes[e.From].Name, src.Iter)
					}
				}
				have[id] = true
			}
		}
	}
}

func TestBuildDeduplicatesMessages(t *testing.T) {
	// Two consumers of the same value on the same destination processor
	// must share one message.
	b := graph.NewBuilder()
	src := b.AddNode("S", 1)
	c1 := b.AddNode("C1", 1)
	c2 := b.AddNode("C2", 1)
	b.AddEdge(src, c1, 0)
	b.AddEdge(src, c2, 0)
	g := b.MustBuild()
	s := &plan.Schedule{
		Graph:      g,
		Timing:     plan.Timing{CommCost: 1},
		Processors: 2,
		Placements: []plan.Placement{
			{Node: src, Iter: 0, Proc: 0, Start: 0},
			{Node: c1, Iter: 0, Proc: 1, Start: 2},
			{Node: c2, Iter: 0, Proc: 1, Start: 3},
		},
	}
	if err := s.Validate(true); err != nil {
		t.Fatal(err)
	}
	progs, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(progs)
	if st.Sends != 1 || st.Recvs != 1 {
		t.Fatalf("sends/recvs = %d/%d, want 1/1 (deduplicated)", st.Sends, st.Recvs)
	}
}

func TestBuildMissingProducer(t *testing.T) {
	g := figure7(t)
	s := &plan.Schedule{
		Graph:      g,
		Timing:     plan.Timing{CommCost: 2},
		Processors: 1,
		Placements: []plan.Placement{{Node: 1, Iter: 1, Proc: 0, Start: 0}}, // B iter 1 without A
	}
	if _, err := Build(s); err == nil {
		t.Fatal("missing producer accepted")
	}
}

func TestPseudocodeFigure7Shape(t *testing.T) {
	g, _, res := fig7Schedule(t, 12)
	var prologue []plan.Placement
	for _, pl := range res.Greedy.Placements {
		if pl.Start < res.Pattern.Start {
			prologue = append(prologue, pl)
		}
	}
	text, err := Pseudocode(CodegenInput{
		Graph:     g,
		Prologue:  prologue,
		Pattern:   res.Pattern.Placements,
		IterShift: res.Pattern.IterShift,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PARBEGIN", "PAREND", "PE0:", "PE1:", "FOR I", "SEND", "RECEIVE", "ENDFOR"} {
		if !strings.Contains(text, want) {
			t.Fatalf("pseudocode missing %q:\n%s", want, text)
		}
	}
	// Fig 7(e): the loop is partitioned into two subloops stepping by the
	// iteration shift.
	if res.Pattern.IterShift >= 2 && !strings.Contains(text, "STEP 2") {
		t.Fatalf("expected STEP 2 loops:\n%s", text)
	}
}

func TestPseudocodeRejectsBadInput(t *testing.T) {
	g := figure7(t)
	if _, err := Pseudocode(CodegenInput{Graph: g, IterShift: 0}); err == nil {
		t.Fatal("iterShift 0 accepted")
	}
	if _, err := Pseudocode(CodegenInput{Graph: g, IterShift: 1}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestOpKindString(t *testing.T) {
	if OpCompute.String() != "compute" || OpSend.String() != "send" || OpRecv.String() != "recv" {
		t.Fatal("OpKind strings")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown OpKind empty")
	}
}
