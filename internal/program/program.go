// Package program lowers a static schedule to per-processor instruction
// streams of COMPUTE / SEND / RECV operations — the form in which the
// parallelized loop actually executes on an asynchronous MIMD machine
// (paper Figures 7(e) and 10). The streams synchronize purely through
// messages: a SEND is emitted right after the producing compute, and a RECV
// right before the earliest consumer on the destination processor, so
// execution is correct under any communication timing.
package program

import (
	"fmt"
	"sort"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// OpKind discriminates instruction types.
type OpKind int8

const (
	// OpCompute executes one dynamic node instance.
	OpCompute OpKind = iota
	// OpSend ships the value of instance (Node, Iter) to processor Peer.
	OpSend
	// OpRecv blocks until the value of instance (Node, Iter) arrives from
	// processor Peer.
	OpRecv
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	}
	return fmt.Sprintf("OpKind(%d)", int8(k))
}

// Instr is one instruction of a processor's stream.
type Instr struct {
	Kind OpKind
	// Node, Iter identify the value: the instance computed, sent or
	// received.
	Node int
	Iter int
	// Peer is the destination (send) or source (recv) processor.
	Peer int
	// Cost is the communication cost of the message in cycles (sends
	// only); when several dependence edges share one message it is their
	// maximum.
	Cost int
}

// Program is one processor's instruction stream.
type Program struct {
	Proc   int
	Instrs []Instr
}

// MsgKey identifies a message: one value moving between two processors.
// Each needed (value, src, dst) triple is sent exactly once, regardless of
// how many dependence edges it serves.
type MsgKey struct {
	Node, Iter int
	From, To   int
}

// Build lowers the schedule to one program per processor (indices
// 0..Processors-1; processors with no work get empty programs). It returns
// an error if the schedule misses a producer for any dependence.
//
// Grain-G schedules lower in chunk space: instructions reference chunk
// indices, one COMPUTE stands for G fused iterations, and messages are
// discovered over the chunk graph's boundary dependences — so a chunk of
// values crossing processors costs one SEND/RECV pair, not G.
func Build(s *plan.Schedule) ([]Program, error) {
	g := s.EffectiveGraph()
	idx := s.Index()
	byProc := s.ByProc()

	// Discover messages: for each cross-processor dependence, record the
	// earliest consuming placement per (value, dst) and the max edge cost.
	type msgInfo struct {
		firstConsumer int // placement index of earliest consumer on To
		cost          int
	}
	msgs := make(map[MsgKey]*msgInfo)
	for pi, p := range s.Placements {
		for _, ei := range g.In(p.Node) {
			e := g.Edges[ei]
			srcIter := p.Iter - e.Distance
			if srcIter < 0 {
				continue
			}
			prodIdx, ok := idx[graph.InstanceID{Node: e.From, Iter: srcIter}]
			if !ok {
				return nil, fmt.Errorf("program: (%s, iter %d) has no producer for %s",
					g.Nodes[p.Node].Name, p.Iter, g.Nodes[e.From].Name)
			}
			prod := s.Placements[prodIdx]
			if prod.Proc == p.Proc {
				continue
			}
			key := MsgKey{Node: e.From, Iter: srcIter, From: prod.Proc, To: p.Proc}
			info := msgs[key]
			if info == nil {
				info = &msgInfo{firstConsumer: pi, cost: graph.EdgeCost(e, s.Timing.CommCost)}
				msgs[key] = info
			} else {
				if c := graph.EdgeCost(e, s.Timing.CommCost); c > info.cost {
					info.cost = c
				}
				if earlier(s, pi, info.firstConsumer) {
					info.firstConsumer = pi
				}
			}
		}
	}

	// Group receives by consumer placement and sends by producer placement.
	recvsBefore := make(map[int][]MsgKey)
	sendsAfter := make(map[int][]MsgKey)
	for key, info := range msgs {
		recvsBefore[info.firstConsumer] = append(recvsBefore[info.firstConsumer], key)
		prodIdx := idx[graph.InstanceID{Node: key.Node, Iter: key.Iter}]
		sendsAfter[prodIdx] = append(sendsAfter[prodIdx], key)
	}
	for _, list := range recvsBefore {
		sortKeys(list, true)
	}
	for _, list := range sendsAfter {
		sortKeys(list, false)
	}

	progs := make([]Program, len(byProc))
	for proc, placements := range byProc {
		progs[proc].Proc = proc
		for _, pi := range placements {
			p := s.Placements[pi]
			for _, key := range recvsBefore[pi] {
				progs[proc].Instrs = append(progs[proc].Instrs, Instr{
					Kind: OpRecv, Node: key.Node, Iter: key.Iter, Peer: key.From,
				})
			}
			progs[proc].Instrs = append(progs[proc].Instrs, Instr{
				Kind: OpCompute, Node: p.Node, Iter: p.Iter,
			})
			for _, key := range sendsAfter[pi] {
				progs[proc].Instrs = append(progs[proc].Instrs, Instr{
					Kind: OpSend, Node: key.Node, Iter: key.Iter, Peer: key.To,
					Cost: msgs[key].cost,
				})
			}
		}
	}
	return progs, nil
}

// earlier orders placements by (start, iteration, node) for deterministic
// first-consumer selection.
func earlier(s *plan.Schedule, a, b int) bool {
	pa, pb := s.Placements[a], s.Placements[b]
	if pa.Start != pb.Start {
		return pa.Start < pb.Start
	}
	if pa.Iter != pb.Iter {
		return pa.Iter < pb.Iter
	}
	return pa.Node < pb.Node
}

func sortKeys(keys []MsgKey, byFrom bool) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if byFrom && a.From != b.From {
			return a.From < b.From
		}
		if !byFrom && a.To != b.To {
			return a.To < b.To
		}
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		return a.Node < b.Node
	})
}

// Stats summarizes a program set.
type Stats struct {
	Computes, Sends, Recvs int
}

// Summarize counts instruction kinds across all programs.
func Summarize(progs []Program) Stats {
	var st Stats
	for _, p := range progs {
		for _, in := range p.Instrs {
			switch in.Kind {
			case OpCompute:
				st.Computes++
			case OpSend:
				st.Sends++
			case OpRecv:
				st.Recvs++
			}
		}
	}
	return st
}
