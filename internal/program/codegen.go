package program

import (
	"fmt"
	"sort"
	"strings"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// CodegenInput describes a pattern-partitioned loop for pseudo-code
// rendering in the style of the paper's Figures 7(e) and 10.
type CodegenInput struct {
	Graph *graph.Graph
	// Prologue are the placements before the steady state (concrete
	// iteration numbers).
	Prologue []plan.Placement
	// Pattern are the steady-state placements of one period.
	Pattern []plan.Placement
	// IterShift is d, iterations advanced per period.
	IterShift int
	// LoopVar names the symbolic iteration variable (default "I").
	LoopVar string
}

// Pseudocode renders per-processor subloops: straight-line prologue code
// followed by a FOR loop over periods whose body contains the period's
// computes with RECEIVE lines before cross-processor uses and SEND lines
// after cross-processor definitions. Synchronization in the prologue is
// elided for readability; the executable artifact is Build's instruction
// streams, which carry full synchronization.
func Pseudocode(in CodegenInput) (string, error) {
	g := in.Graph
	d := in.IterShift
	if d < 1 {
		return "", fmt.Errorf("program: iteration shift %d", d)
	}
	if len(in.Pattern) == 0 {
		return "", fmt.Errorf("program: empty pattern")
	}
	loopVar := in.LoopVar
	if loopVar == "" {
		loopVar = "I"
	}

	// classProc[node][iter mod d] = processor running that residue class
	// in steady state.
	classProc := make(map[int]map[int]int)
	baseIter := in.Pattern[0].Iter
	for _, pl := range in.Pattern {
		if pl.Iter < baseIter {
			baseIter = pl.Iter
		}
	}
	for _, pl := range in.Pattern {
		m := classProc[pl.Node]
		if m == nil {
			m = make(map[int]int)
			classProc[pl.Node] = m
		}
		m[((pl.Iter%d)+d)%d] = pl.Proc
	}
	procOf := func(node, iter int) (int, bool) {
		m := classProc[node]
		if m == nil {
			return 0, false
		}
		p, ok := m[((iter%d)+d)%d]
		return p, ok
	}

	// Group pattern and prologue ops per processor in start order.
	perProc := map[int][]plan.Placement{}
	prologueProc := map[int][]plan.Placement{}
	procSeen := map[int]bool{}
	var procIDs []int
	note := func(proc int) {
		if !procSeen[proc] {
			procSeen[proc] = true
			procIDs = append(procIDs, proc)
		}
	}
	for _, pl := range in.Pattern {
		note(pl.Proc)
		perProc[pl.Proc] = append(perProc[pl.Proc], pl)
	}
	for _, pl := range in.Prologue {
		note(pl.Proc)
		prologueProc[pl.Proc] = append(prologueProc[pl.Proc], pl)
	}
	sort.Ints(procIDs)
	for _, m := range []map[int][]plan.Placement{perProc, prologueProc} {
		for _, list := range m {
			sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
		}
	}

	var sb strings.Builder
	sb.WriteString("PARBEGIN\n")
	for _, proc := range procIDs {
		fmt.Fprintf(&sb, "PE%d:\n", proc)
		for _, pl := range prologueProc[proc] {
			fmt.Fprintf(&sb, "    %s[%d] = ...            /* prologue */\n", g.Nodes[pl.Node].Name, pl.Iter)
		}
		body := perProc[proc]
		if len(body) == 0 {
			sb.WriteString("    /* idle in steady state */\n")
			continue
		}
		fmt.Fprintf(&sb, "    FOR %s = %d TO N-1 STEP %d\n", loopVar, baseIter, d)
		for _, pl := range body {
			delta := pl.Iter - baseIter
			// Receives for cross-processor inputs.
			for _, ei := range g.In(pl.Node) {
				e := g.Edges[ei]
				srcProc, ok := procOf(e.From, pl.Iter-e.Distance)
				if !ok || srcProc == proc {
					continue
				}
				fmt.Fprintf(&sb, "        RECEIVE %s[%s] FROM PE%d\n",
					g.Nodes[e.From].Name, offsetExpr(loopVar, delta-e.Distance), srcProc)
			}
			fmt.Fprintf(&sb, "        %s[%s] = ...\n", g.Nodes[pl.Node].Name, offsetExpr(loopVar, delta))
			// Sends for cross-processor consumers (deduplicated per peer).
			sent := map[int]bool{}
			for _, ei := range g.Out(pl.Node) {
				e := g.Edges[ei]
				dstProc, ok := procOf(e.To, pl.Iter+e.Distance)
				if !ok || dstProc == proc || sent[dstProc] {
					continue
				}
				sent[dstProc] = true
				fmt.Fprintf(&sb, "        SEND %s[%s] TO PE%d\n",
					g.Nodes[pl.Node].Name, offsetExpr(loopVar, delta), dstProc)
			}
		}
		sb.WriteString("    ENDFOR\n")
	}
	sb.WriteString("PAREND\n")
	return sb.String(), nil
}

func offsetExpr(v string, delta int) string {
	switch {
	case delta == 0:
		return v
	case delta > 0:
		return fmt.Sprintf("%s+%d", v, delta)
	default:
		return fmt.Sprintf("%s-%d", v, -delta)
	}
}
