package exec

import (
	"reflect"
	"testing"
)

// TestCalibratedZeroModelIsRawSim is the degradation pin from the
// acceptance criteria: with no profile (zero CostModel) the csim
// backend's output is byte-identical to the raw Sim backend's — same
// samples, same sequential baseline, same "sim" label — so an
// unprofiled csim request is exactly a sim request.
func TestCalibratedZeroModelIsRawSim(t *testing.T) {
	g, progs := fig7Programs(t, 50)
	cfg := TrialConfig{Trials: 4, Fluct: 3, Seed: 11}
	want, err := Sim{}.RunTrials(g, progs, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Calibrated{}.RunTrials(g, progs, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-model csim drifted from raw sim:\n got %+v\nwant %+v", got, want)
	}
}

// TestCalibratedScalesSimStats pins the rescaling: each makespan cycle
// sample maps through the fitted linear model (compute × cycles + comm
// × messages + overhead × iterations), the sequential baseline maps
// through its own per-cycle scale, and the stats are relabeled "csim".
func TestCalibratedScalesSimStats(t *testing.T) {
	g, progs := fig7Programs(t, 50)
	cfg := TrialConfig{Trials: 3, Fluct: 2, Seed: 5}
	raw, err := Sim{}.RunTrials(g, progs, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := CostModel{ComputeNsPerCycle: 7.5, CommNsPerMessage: 120, IterOverheadNs: 33, SeqNsPerCycle: 11}
	got, err := Calibrated{Model: m}.RunTrials(g, progs, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != "csim" || got.Trials != raw.Trials || got.Messages != raw.Messages {
		t.Fatalf("header drifted: %+v vs %+v", got, raw)
	}
	for i, cycles := range raw.Makespans {
		want := m.PlanNs(cycles, raw.Messages, 50)
		if got.Makespans[i] != want {
			t.Fatalf("trial %d: %v ns, want %v (from %v cycles)", i, got.Makespans[i], want, cycles)
		}
	}
	if want := m.SequentialNs(raw.Sequential, 50); got.Sequential != want {
		t.Fatalf("sequential %v ns, want %v", got.Sequential, want)
	}
	if got.Utilization != raw.Utilization {
		t.Fatalf("utilization must pass through unit-free: %v vs %v", got.Utilization, raw.Utilization)
	}
}

// TestCalibratedBilling pins the metadata: csim is deterministic and
// bills like Sim (fluctuation-free repeats collapse to one trial).
func TestCalibratedBilling(t *testing.T) {
	c := Calibrated{Model: CostModel{ComputeNsPerCycle: 1}}
	if !c.Deterministic() {
		t.Error("csim must be deterministic")
	}
	for _, tc := range []struct{ trials, fluct, want int }{
		{8, 0, 1}, {8, 1, 1}, {8, 2, 8},
	} {
		if got := c.EffectiveTrials(tc.trials, tc.fluct); got != tc.want {
			t.Errorf("EffectiveTrials(%d, %d) = %d, want %d", tc.trials, tc.fluct, got, tc.want)
		}
	}
	if (CostModel{}).IsZero() != true || c.Model.IsZero() {
		t.Error("IsZero drifted")
	}
}

// TestResetSequentialBaselines pins the satellite fix: the gort
// baseline memo is droppable, so a calibration refresh re-measures
// rather than fitting against a stale timing.
func TestResetSequentialBaselines(t *testing.T) {
	g, _ := fig7Programs(t, 30)
	d1, v1 := sequentialBaseline(g, 30)
	d2, _ := sequentialBaseline(g, 30)
	if d1 != d2 {
		t.Fatalf("memoized baseline re-measured without reset: %v vs %v", d1, d2)
	}
	ResetSequentialBaselines()
	seqBaselines.Lock()
	n := len(seqBaselines.entries)
	seqBaselines.Unlock()
	if n != 0 {
		t.Fatalf("reset left %d memo entries", n)
	}
	_, v3 := sequentialBaseline(g, 30)
	if len(v3) != len(v1) {
		t.Fatalf("re-measured baseline computed %d values, want %d", len(v3), len(v1))
	}
}

// TestSequentialBaselineCap pins the bound: distinct (graph, iters)
// pairs never grow the memo past its cap.
func TestSequentialBaselineCap(t *testing.T) {
	ResetSequentialBaselines()
	g, _ := fig7Programs(t, 10)
	for i := 1; i <= seqBaselineCap+5; i++ {
		sequentialBaseline(g, i)
	}
	seqBaselines.Lock()
	n := len(seqBaselines.entries)
	seqBaselines.Unlock()
	if n > seqBaselineCap {
		t.Fatalf("memo grew to %d entries, cap %d", n, seqBaselineCap)
	}
}
