package exec

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mimdloop/internal/graph"
	"mimdloop/internal/mimdrt"
	"mimdloop/internal/program"
)

// Goroutine ("gort") executes programs for real on the
// goroutine-per-processor runtime of internal/mimdrt: one goroutine per
// simulated processor, channel messaging, values tagged with their
// (node, iteration) identity. Each trial is one timed wall-clock pass
// over a reused mimdrt.Runner (the goroutines and link channels are set
// up once, so trials measure execution rather than spawning), and every
// trial's computed values are cross-checked against the sequential
// interpretation — a measurement that also silently mis-executed would
// be worse than no measurement.
//
// Makespans are wall-clock nanoseconds; the sequential baseline is a
// timed mimdrt.Sequential pass over the same semantics. Unlike the sim
// backend the numbers are noisy (scheduler jitter, cache state), which
// is exactly why trial spreads and spread-aware objectives exist.
type Goroutine struct{}

// Name implements Backend.
func (Goroutine) Name() string { return "gort" }

// Deterministic implements Backend: wall-clock measurements never
// replay exactly.
func (Goroutine) Deterministic() bool { return false }

// EffectiveTrials implements Backend: real executions always differ, so
// a request's trial count is never collapsed (fluctuation is a sim
// concept — the goroutine runtime's variation is physical).
func (Goroutine) EffectiveTrials(trials, fluct int) int { return trials }

// RunTrials implements Backend.
func (Goroutine) RunTrials(g *graph.Graph, progs []program.Program, iterations int, cfg TrialConfig) (*TrialStats, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("exec: gort trial count %d, want >= 1", cfg.Trials)
	}
	if iterations <= 0 {
		return nil, fmt.Errorf("exec: gort execution of a %d-iteration program set", iterations)
	}
	seq, want := sequentialBaseline(g, iterations)
	// Grain-chunked program sets run the chunk-space interpreter; it
	// computes the same real-iteration values (chunk COMPUTEs expand to
	// ascending real iterations over the original graph), so the value
	// cross-check against the sequential baseline is shared unchanged.
	var runner *mimdrt.Runner
	if cfg.Grain > 1 {
		runner = mimdrt.NewChunkedRunner(g, progs, mimdrt.MixSemantics{}, cfg.Grain, iterations)
	} else {
		runner = mimdrt.NewRunner(g, progs, mimdrt.MixSemantics{})
	}
	defer runner.Close()
	ts := &TrialStats{
		Backend:    "gort",
		Trials:     cfg.Trials,
		Makespans:  make([]float64, 0, cfg.Trials),
		Sequential: seq,
		Messages:   countSends(progs),
	}
	for t := 0; t < cfg.Trials; t++ {
		t0 := time.Now()
		got, err := runner.Run()
		d := float64(time.Since(t0).Nanoseconds())
		if err != nil {
			return nil, fmt.Errorf("exec: gort trial %d: %w", t, err)
		}
		if err := checkValues(g, got, want); err != nil {
			return nil, fmt.Errorf("exec: gort trial %d: %w", t, err)
		}
		ts.Makespans = append(ts.Makespans, d)
	}
	return ts, nil
}

// seqBaselines memoizes timed sequential interpretations keyed by
// (graph, iterations). A tune evaluates one such pair across its whole
// grid, so without memoization every grid point would re-run two full
// sequential passes — half the measured work — and, worse, each point's
// Sp would divide by its own independently-jittered baseline, making
// identical plans score differently for baseline-noise reasons alone.
// The map is capped (interleaved workloads, e.g. calibration probes
// racing serving traffic, stay bounded) and a timed baseline is a
// host-load-dependent measurement, so ResetSequentialBaselines exists
// for callers — the calibrator above all — that must not fit against
// stale timings.
const seqBaselineCap = 16

type seqKey struct {
	g     *graph.Graph
	iters int
}

type seqEntry struct {
	dur  float64
	vals map[graph.InstanceID]float64
}

var seqBaselines struct {
	sync.Mutex
	entries map[seqKey]seqEntry
}

// ResetSequentialBaselines drops every memoized timed sequential
// baseline, forcing the next RunTrials per (graph, iterations) pair to
// re-measure. Calibration refreshes call this first so fitted profiles
// never inherit timings from a differently-loaded moment of the host.
func ResetSequentialBaselines() {
	seqBaselines.Lock()
	seqBaselines.entries = nil
	seqBaselines.Unlock()
}

// sequentialBaseline returns the timed duration and ground-truth values
// of the sequential interpretation for (g, iterations), computing them
// once per distinct pair (warm-up pass first, then the timed pass).
func sequentialBaseline(g *graph.Graph, iterations int) (float64, map[graph.InstanceID]float64) {
	key := seqKey{g, iterations}
	seqBaselines.Lock()
	defer seqBaselines.Unlock()
	if e, ok := seqBaselines.entries[key]; ok {
		return e.dur, e.vals
	}
	sem := mimdrt.MixSemantics{}
	want := mimdrt.Sequential(g, sem, iterations)
	t0 := time.Now()
	mimdrt.Sequential(g, sem, iterations)
	dur := float64(time.Since(t0).Nanoseconds())
	if len(seqBaselines.entries) >= seqBaselineCap {
		seqBaselines.entries = nil // cheap full reset; correctness is unaffected
	}
	if seqBaselines.entries == nil {
		seqBaselines.entries = make(map[seqKey]seqEntry, seqBaselineCap)
	}
	seqBaselines.entries[key] = seqEntry{dur, want}
	return dur, want
}

// countSends totals the cross-processor messages one pass sends.
func countSends(progs []program.Program) int {
	n := 0
	for _, prog := range progs {
		for _, in := range prog.Instrs {
			if in.Kind == program.OpSend {
				n++
			}
		}
	}
	return n
}

// checkValues asserts the concurrent execution computed exactly the
// sequential interpretation's values: same instance set, same numbers to
// relative 1e-9. Any misrouted, missing or duplicated operand fails.
func checkValues(g *graph.Graph, got, want map[graph.InstanceID]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("computed %d instance values, sequential computed %d", len(got), len(want))
	}
	for id, w := range want {
		v, ok := got[id]
		if !ok {
			return fmt.Errorf("instance (%s, iter %d) never computed", g.Nodes[id.Node].Name, id.Iter)
		}
		if math.Abs(v-w) > 1e-9*math.Max(1, math.Abs(w)) {
			return fmt.Errorf("instance (%s, iter %d) = %v, sequential %v",
				g.Nodes[id.Node].Name, id.Iter, v, w)
		}
	}
	return nil
}
