package exec

import (
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/program"
)

// MachineConfig re-exports the simulated machine's configuration so
// backend callers configure trials without importing internal/machine.
type MachineConfig = machine.Config

// Sim executes programs on the discrete-event simulated MIMD machine of
// internal/machine: each trial reruns the same programs under a
// deterministically derived fluctuation seed (machine.TrialSeed), so the
// spread reflects robustness to the communication estimate being wrong,
// not random noise. This is exactly the seeded trial protocol the
// measured evaluator ran before the backend layer existed, pinned
// byte-for-byte: Sim delegates to machine.RunTrials unchanged.
type Sim struct{}

// Name implements Backend.
func (Sim) Name() string { return "sim" }

// Deterministic implements Backend: identical configs replay identical
// stats.
func (Sim) Deterministic() bool { return true }

// EffectiveTrials implements Backend: without fluctuation (mm <= 1)
// every trial is bit-identical — FluctModel is the only per-trial
// variation — so one run measures them all and the request collapses to
// a single trial.
func (Sim) EffectiveTrials(trials, fluct int) int {
	if fluct <= 1 {
		return 1
	}
	return trials
}

// RunTrials implements Backend. Makespans are cycles; the sequential
// baseline is the one-processor schedule length, iterations × total
// body latency.
func (Sim) RunTrials(g *graph.Graph, progs []program.Program, iterations int, cfg TrialConfig) (*TrialStats, error) {
	mc := cfg.Machine
	mc.Fluct = cfg.Fluct
	mc.Seed = cfg.Seed
	mc.Grain = cfg.Grain
	ts, err := machine.RunTrials(g, progs, mc, cfg.Trials)
	if err != nil {
		return nil, err
	}
	out := &TrialStats{
		Backend:     "sim",
		Trials:      ts.Trials,
		Makespans:   make([]float64, len(ts.Makespans)),
		Sequential:  float64(iterations * g.TotalLatency()),
		Utilization: ts.Utilization,
		Messages:    ts.Messages,
	}
	for i, m := range ts.Makespans {
		out.Makespans[i] = float64(m)
	}
	return out, nil
}
