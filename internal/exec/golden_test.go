package exec

import (
	"math"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/machine"
	"mimdloop/internal/mimdrt"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// TestGoldenGortMatchesSequentialOnRandomSuite is the golden equivalence
// test over the paper's seeded random workload suite: for each random
// loop, the exact program set the sim backend times must (a) execute on
// the goroutine runtime computing instance values identical to
// mimdrt.Sequential — the gort backend's own cross-check, exercised here
// end to end — and (b) run deadlock-free on the simulated machine, so
// both backends agree the programs are well-formed. Values are also
// compared explicitly (not just through the backend's internal check) so
// a regression in the check itself cannot hide a mis-execution.
func TestGoldenGortMatchesSequentialOnRandomSuite(t *testing.T) {
	const iters = 24
	for seed := int64(1); seed <= 6; seed++ {
		g, err := workload.Random(workload.PaperSpec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ls, err := core.ScheduleLoop(g, core.Options{CommCost: 3}, iters)
		if err != nil {
			t.Fatalf("seed %d: schedule: %v", seed, err)
		}
		progs, err := program.Build(ls.Full)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}

		// (a) Goroutine execution computes the sequential values.
		got, err := mimdrt.Run(g, progs, mimdrt.MixSemantics{})
		if err != nil {
			t.Fatalf("seed %d: gort run: %v", seed, err)
		}
		want := mimdrt.Sequential(g, mimdrt.MixSemantics{}, iters)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d values, sequential computed %d", seed, len(got), len(want))
		}
		for id, w := range want {
			if v := got[id]; math.Abs(v-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("seed %d: instance %+v = %v, sequential %v", seed, id, v, w)
			}
		}

		// The backend harness agrees (its internal cross-check passes and
		// it reports the full trial spread).
		ts, err := Goroutine{}.RunTrials(g, progs, iters, TrialConfig{Trials: 2})
		if err != nil {
			t.Fatalf("seed %d: gort backend: %v", seed, err)
		}
		if ts.Trials != 2 || len(ts.Makespans) != 2 {
			t.Fatalf("seed %d: trial spread %+v", seed, ts)
		}

		// (b) The sim backend runs the same programs deadlock-free.
		if _, err := machine.Run(g, progs, machine.Config{}); err != nil {
			t.Fatalf("seed %d: sim run: %v", seed, err)
		}
	}
}
