// Package exec is the pluggable execution layer behind plan evaluation:
// a Backend runs a plan's lowered per-processor programs repeatedly and
// reports the distribution of finishing times, so everything above it —
// the measured Evaluator, AutoTune, the HTTP tune endpoint, the
// experiments — can rank plans against more than one execution model
// without knowing how any of them runs.
//
// Two backends ship:
//
//   - Sim executes programs on the discrete-event simulated MIMD machine
//     (internal/machine) under a seeded communication-fluctuation model:
//     deterministic, cheap, cycle-accurate for the paper's cost model.
//   - Goroutine ("gort") executes programs for real on the
//     goroutine-per-processor runtime (internal/mimdrt), timing each
//     trial's wall clock and cross-checking computed values against the
//     sequential interpretation: noisy, burns real CPU, but measures
//     actual asynchronous hardware rather than a model of it.
//
// Backends report makespans in their own native units (Sim: cycles,
// Goroutine: nanoseconds) alongside a sequential baseline in the same
// units, so percentage parallelism (Sp) is computable uniformly while
// raw makespans are never compared across backends.
package exec

import (
	"fmt"
	"sort"

	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// TrialConfig shapes one RunTrials call. Trials is the number of
// repeated executions a backend should aggregate (already resolved by
// the caller through EffectiveTrials); Fluct and Seed select the sim
// backend's communication-fluctuation model and are ignored by backends
// whose variation is physical rather than modeled; Machine carries the
// remaining simulated-machine settings (LinkFIFO, Override) for the sim
// backend.
type TrialConfig struct {
	// Trials is the number of runs to aggregate (>= 1).
	Trials int
	// Fluct is the paper's mm: per-message extra delay in [0, mm-1]
	// (sim backend only).
	Fluct int
	// Seed selects the fluctuation streams (sim backend only).
	Seed int64
	// Grain is the plan's chunking factor: values > 1 mean progs are in
	// chunk space over the original graph (one COMPUTE = Grain fused
	// iterations), so the sim backend bills fused compute latency and
	// the goroutine backend runs its chunk-space interpreter. Values <= 1
	// leave both backends on their unchanged per-iteration paths.
	Grain int
	// Machine supplies the remaining simulated-machine settings; its
	// Fluct, Seed and Grain fields are overwritten by the fields above.
	Machine MachineConfig
}

// TrialStats is the outcome of one RunTrials call: the per-trial
// makespan samples in the backend's native units, the sequential
// baseline in the same units, and whatever extra accounting the backend
// can offer. Keeping the raw samples (rather than a pre-digested
// min/mean/max) is what lets callers rank by spread-aware statistics —
// worst case and p95 as well as the mean.
type TrialStats struct {
	// Backend is the producing backend's wire name ("sim", "gort").
	Backend string
	// Trials is the number of samples aggregated (== len(Makespans)).
	Trials int
	// Makespans are the per-trial finishing times in run order, in the
	// backend's native units (sim: cycles, gort: wall-clock nanoseconds).
	Makespans []float64
	// Sequential is the one-processor baseline in the same units, the
	// "s" of the percentage-parallelism metric.
	Sequential float64
	// Utilization is mean busy/(makespan × procs) over the trials; 0
	// when the backend cannot account it (gort).
	Utilization float64
	// Messages is the per-trial cross-processor message count.
	Messages int
}

// Min returns the smallest makespan sample (0 for no samples).
func (ts *TrialStats) Min() float64 {
	if len(ts.Makespans) == 0 {
		return 0
	}
	m := ts.Makespans[0]
	for _, v := range ts.Makespans[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest makespan sample (0 for no samples).
func (ts *TrialStats) Max() float64 {
	m := 0.0
	for _, v := range ts.Makespans {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the makespan samples.
func (ts *TrialStats) Mean() float64 {
	if len(ts.Makespans) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts.Makespans {
		sum += v
	}
	return sum / float64(len(ts.Makespans))
}

// P95 returns the nearest-rank 95th percentile of the makespan samples:
// the smallest sample at or above which 95% of the distribution sits.
// For small trial counts this degrades gracefully (n = 1 returns the
// sample, n < 20 returns the maximum; at n = 20 the rank-19 sample —
// the second-largest — is the first to cover 95%).
func (ts *TrialStats) P95() float64 {
	n := len(ts.Makespans)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), ts.Makespans...)
	sort.Float64s(sorted)
	rank := (95*n + 99) / 100 // ceil(0.95 n), nearest-rank definition
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Backend executes lowered programs repeatedly and reports the trial
// spread. Implementations must be safe for concurrent use: RunTrials is
// fanned out across sweep workers with no shared mutable state.
type Backend interface {
	// Name is the backend's wire name, recorded in measured annotations
	// so a persisted measurement always says which execution model
	// produced it.
	Name() string
	// Deterministic reports whether identical (programs, config) inputs
	// reproduce identical stats. The sim backend is; the goroutine
	// backend measures wall clock and is not.
	Deterministic() bool
	// EffectiveTrials resolves how many trials a request for `trials`
	// under fluctuation mm will actually run. The sim backend collapses
	// fluctuation-free repeats to one (every trial would be
	// bit-identical); the goroutine backend never collapses (real
	// executions always differ). Callers bill and run exactly this
	// number, so library, CLI and HTTP traffic all share one semantics.
	EffectiveTrials(trials, fluct int) int
	// RunTrials executes progs over g `cfg.Trials` times and aggregates
	// the spread. iterations is the scheduled iteration count, used for
	// the sequential baseline.
	RunTrials(g *graph.Graph, progs []program.Program, iterations int, cfg TrialConfig) (*TrialStats, error)
}

// ForName resolves a backend wire name ("" and "sim" mean the simulated
// machine, "gort" the goroutine runtime, "csim" the calibrated
// simulator with no profile loaded — callers holding a fitted CostModel
// substitute Calibrated{Model: m} themselves).
func ForName(name string) (Backend, error) {
	switch name {
	case "", "sim":
		return Sim{}, nil
	case "gort":
		return Goroutine{}, nil
	case "csim":
		return Calibrated{}, nil
	}
	return nil, fmt.Errorf("exec: unknown backend %q (want sim, gort or csim)", name)
}
