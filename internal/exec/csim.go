package exec

import (
	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// CostModel is a fitted linear map from the simulated machine's
// accounting to wall-clock nanoseconds on this host: what one simulated
// cycle of critical-path work costs, what one cross-processor message
// costs beyond the cycles the sim already bills it, and what one loop
// iteration costs in channel/runtime overhead the sim does not model at
// all. internal/calib fits the coefficients by least squares against
// measured gort makespans; the zero value means "no profile" and leaves
// the calibrated backend transparent (raw sim passthrough).
type CostModel struct {
	// ComputeNsPerCycle scales simulated makespan cycles to nanoseconds.
	ComputeNsPerCycle float64 `json:"compute_ns_per_cycle"`
	// CommNsPerMessage is the per-message wall-clock cost (channel send,
	// blocking receive, goroutine wakeup) beyond the sim's k cycles.
	CommNsPerMessage float64 `json:"comm_ns_per_message"`
	// IterOverheadNs is the per-iteration runtime overhead (loop
	// bookkeeping, value tagging) invisible to the simulator.
	IterOverheadNs float64 `json:"iter_overhead_ns"`
	// SeqNsPerCycle scales the *sequential* schedule's cycles to
	// nanoseconds. It is fitted separately from ComputeNsPerCycle
	// because the two executions cost differently per simulated cycle:
	// a parallel cycle carries channel blocking and scheduler wakeups,
	// a sequential cycle is a bare map-interpreted operation — one
	// shared coefficient would split the difference and mispredict
	// both (dragging the plan fit toward zero compute).
	SeqNsPerCycle float64 `json:"seq_ns_per_cycle"`
}

// IsZero reports whether the model is unfitted.
func (m CostModel) IsZero() bool {
	return m == CostModel{}
}

// PlanNs maps one simulated run to predicted wall-clock nanoseconds.
func (m CostModel) PlanNs(cycles float64, messages, iterations int) float64 {
	return m.ComputeNsPerCycle*cycles + m.CommNsPerMessage*float64(messages) +
		m.IterOverheadNs*float64(iterations)
}

// SequentialNs maps the sequential baseline to predicted wall-clock
// nanoseconds, so csim Sp compares like with like.
func (m CostModel) SequentialNs(cycles float64, iterations int) float64 {
	_ = iterations // the sequential interpreter's per-iteration cost is ∝ cycles
	return m.SeqNsPerCycle * cycles
}

// Calibrated ("csim") is the calibrated simulator: it runs the exact
// deterministic sim trials and then rescales every makespan through a
// fitted CostModel, so plans are ranked in predicted nanoseconds — the
// gort backend's units and, when the fit is good, its ordering — at sim
// cost. Deterministic like Sim, billed like Sim (fluctuation-free
// repeats collapse to one trial). With a zero model it degrades to the
// raw Sim backend byte-identically: same stats, same "sim" label, so an
// unprofiled csim request is exactly a sim request.
type Calibrated struct {
	Model CostModel
}

// Name implements Backend.
func (Calibrated) Name() string { return "csim" }

// Deterministic implements Backend: the underlying sim trials replay
// exactly and the rescaling is a pure function.
func (Calibrated) Deterministic() bool { return true }

// EffectiveTrials implements Backend with Sim's collapse rule — the
// rescaling adds no per-trial variation.
func (Calibrated) EffectiveTrials(trials, fluct int) int {
	return Sim{}.EffectiveTrials(trials, fluct)
}

// RunTrials implements Backend: run Sim, then map cycles to nanoseconds
// through the model. Utilization is unit-free and passes through;
// Messages is the same physical count.
//
// Grain-chunked plans rescale correctly with no grain-specific fitting:
// the sim already bills fused compute cycles and the chunk-space
// programs carry fewer messages, so PlanNs sees exactly the reduced
// message count and grown per-instance cycles that make coarse grains
// cheap — the calibrated prediction inherits grain awareness from the
// quantities it rescales.
func (c Calibrated) RunTrials(g *graph.Graph, progs []program.Program, iterations int, cfg TrialConfig) (*TrialStats, error) {
	ts, err := Sim{}.RunTrials(g, progs, iterations, cfg)
	if err != nil || c.Model.IsZero() {
		return ts, err
	}
	ts.Backend = "csim"
	for i, cycles := range ts.Makespans {
		ts.Makespans[i] = c.Model.PlanNs(cycles, ts.Messages, iterations)
	}
	ts.Sequential = c.Model.SequentialNs(ts.Sequential, iterations)
	return ts, nil
}
