package exec

import (
	"math"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// fig7Programs lowers the Figure 7 loop at the paper's (p=2, k=2) point.
func fig7Programs(t testing.TB, iters int) (*graph.Graph, []program.Program) {
	t.Helper()
	g := workload.Figure7().Graph
	ls, err := core.ScheduleLoop(g, core.Options{Processors: 2, CommCost: 2}, iters)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		t.Fatal(err)
	}
	return g, progs
}

// TestSimBackendPinsMachineTrials pins the extraction: the sim backend's
// trial stats must be byte-for-byte the seeded machine.RunTrials
// protocol — same samples, same digest, same message count.
func TestSimBackendPinsMachineTrials(t *testing.T) {
	g, progs := fig7Programs(t, 50)
	cfg := TrialConfig{Trials: 5, Fluct: 3, Seed: 7}
	ts, err := Sim{}.RunTrials(g, progs, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := machine.RunTrials(g, progs, machine.Config{Fluct: 3, Seed: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Backend != "sim" || ts.Trials != want.Trials || ts.Messages != want.Messages {
		t.Fatalf("sim stats header drifted: %+v vs %+v", ts, want)
	}
	if len(ts.Makespans) != len(want.Makespans) {
		t.Fatalf("sample count %d, want %d", len(ts.Makespans), len(want.Makespans))
	}
	for i, m := range want.Makespans {
		if ts.Makespans[i] != float64(m) {
			t.Fatalf("trial %d makespan %v, machine ran %d", i, ts.Makespans[i], m)
		}
	}
	if ts.Min() != float64(want.MakespanMin) || ts.Max() != float64(want.MakespanMax) ||
		ts.Mean() != want.MakespanMean || ts.Utilization != want.Utilization {
		t.Fatalf("digest drifted: %+v vs %+v", ts, want)
	}
	if ts.Sequential != float64(50*g.TotalLatency()) {
		t.Fatalf("sequential baseline %v, want %d", ts.Sequential, 50*g.TotalLatency())
	}
}

// TestTrialStatsP95 pins the nearest-rank percentile on known samples.
func TestTrialStatsP95(t *testing.T) {
	for _, tc := range []struct {
		samples []float64
		want    float64
	}{
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 3},       // n <= 20: p95 is the max
		{[]float64{5, 4, 3, 2, 1}, 5}, //
		{manySamples(100), 95},        // exact rank: ceil(95) = 95th sorted sample
		// n = 100 with an outlier in the top 5%: p95 excludes it — the
		// robustness over EvalWorst that makes the p95 objective useful.
		{append(manySamples(99), 1000), 95},
	} {
		ts := &TrialStats{Makespans: tc.samples}
		if got := ts.P95(); got != tc.want {
			t.Errorf("P95(%d samples) = %v, want %v", len(tc.samples), got, tc.want)
		}
	}
}

func manySamples(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestEffectiveTrials pins the collapse rules: the sim backend runs one
// trial when fluctuation is off (every trial would be bit-identical);
// the goroutine backend never collapses.
func TestEffectiveTrials(t *testing.T) {
	for _, tc := range []struct {
		be            Backend
		trials, fluct int
		want          int
	}{
		{Sim{}, 8, 0, 1},
		{Sim{}, 8, 1, 1},
		{Sim{}, 8, 2, 8},
		{Goroutine{}, 8, 0, 8},
		{Goroutine{}, 8, 3, 8},
	} {
		if got := tc.be.EffectiveTrials(tc.trials, tc.fluct); got != tc.want {
			t.Errorf("%s.EffectiveTrials(%d, %d) = %d, want %d",
				tc.be.Name(), tc.trials, tc.fluct, got, tc.want)
		}
	}
	if !(Sim{}).Deterministic() || (Goroutine{}).Deterministic() {
		t.Error("determinism metadata drifted")
	}
}

// TestGoroutineBackendFigure7 is the acceptance pin: the gort backend
// executes the Figure 7 loop's programs for real, value-checks them
// against the sequential interpretation, and reports a finite, positive
// wall-clock distribution with a finite Sp-convertible baseline.
func TestGoroutineBackendFigure7(t *testing.T) {
	g, progs := fig7Programs(t, 60)
	ts, err := Goroutine{}.RunTrials(g, progs, 60, TrialConfig{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Backend != "gort" || ts.Trials != 3 || len(ts.Makespans) != 3 {
		t.Fatalf("stats header: %+v", ts)
	}
	for i, m := range ts.Makespans {
		if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
			t.Fatalf("trial %d wall-clock %v ns", i, m)
		}
	}
	if ts.Sequential <= 0 || math.IsInf(ts.Sequential, 0) {
		t.Fatalf("sequential baseline %v ns", ts.Sequential)
	}
	if ts.Messages <= 0 {
		t.Fatalf("no cross-processor messages counted: %+v", ts)
	}
	if ts.Min() > ts.P95() || ts.P95() > ts.Max() {
		t.Fatalf("spread out of order: min %v p95 %v max %v", ts.Min(), ts.P95(), ts.Max())
	}
}

// TestGoroutineBackendRejectsBadInput: trial and iteration counts are
// validated before any goroutine spawns.
func TestGoroutineBackendRejectsBadInput(t *testing.T) {
	g, progs := fig7Programs(t, 10)
	if _, err := (Goroutine{}).RunTrials(g, progs, 10, TrialConfig{Trials: 0}); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := (Goroutine{}).RunTrials(g, progs, 0, TrialConfig{Trials: 1}); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

// TestBackendForName pins the wire-name registry.
func TestBackendForName(t *testing.T) {
	for name, want := range map[string]string{"": "sim", "sim": "sim", "gort": "gort", "csim": "csim"} {
		be, err := ForName(name)
		if err != nil || be.Name() != want {
			t.Errorf("ForName(%q) = %v, %v", name, be, err)
		}
	}
	if _, err := ForName("fpga"); err == nil {
		t.Error("unknown backend accepted")
	}
}
