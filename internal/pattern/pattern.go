// Package pattern implements the configuration-window machinery of the
// paper's Section 2.3: it watches a growing schedule, hashes fixed-size
// "configurations" (a window of width p processors and height k+1 cycles,
// with iteration indices normalized), and reports when a configuration
// repeats — the signal that the greedy schedule has entered its steady
// state. A candidate repeat is accepted only after the whole period between
// the two windows replays exactly (slot-by-slot with a uniform iteration
// shift), which guards against hash coincidences and against anomalies when
// the processor count is too small for the paper's sufficiency assumption.
package pattern

import (
	"encoding/binary"
	"fmt"
)

// Slot describes one (cycle, processor) cell of the schedule grid: which
// node instance occupies it and which cycle of that instance's execution
// (Phase) this is. An empty cell has Node == -1.
type Slot struct {
	Node  int
	Iter  int
	Phase int
}

// Empty is the unoccupied slot.
var Empty = Slot{Node: -1}

// Match is a verified repetition: the schedule segment [Start, End) repeats
// forever with iteration indices advancing by IterShift per repetition.
type Match struct {
	Start     int // first cycle of the period
	End       int // one past the last cycle of the period
	IterShift int // d: iterations advanced per period
}

// Cycles returns the period length in cycles.
func (m Match) Cycles() int { return m.End - m.Start }

func (m Match) String() string {
	return fmt.Sprintf("pattern[%d,%d) d=%d", m.Start, m.End, m.IterShift)
}

type candidate struct {
	t1, t2 int
	shift  int
}

// Detector accumulates placements into a cycle×processor grid and searches
// for repeating configurations. It must only be consulted with a
// stableTime: the cycle below which the schedule can no longer change (no
// future placement can start earlier).
type Detector struct {
	procs  int
	height int

	grid      [][]Slot // grid[cycle][proc]
	firstSeen map[string]int
	nextScan  int
	pending   []candidate
}

// NewDetector creates a detector for a schedule over procs processors using
// configuration windows of the given height (the paper's k+1; callers use
// k + max latency so that multi-cycle operations are fully visible).
func NewDetector(procs, height int) *Detector {
	if procs < 1 {
		panic("pattern: detector needs at least one processor")
	}
	if height < 1 {
		height = 1
	}
	return &Detector{procs: procs, height: height, firstSeen: make(map[string]int)}
}

// Add records that iteration iter of node occupies processor proc during
// cycles [start, start+latency).
func (d *Detector) Add(node, iter, proc, start, latency int) {
	if proc < 0 || proc >= d.procs {
		panic(fmt.Sprintf("pattern: placement on processor %d of %d", proc, d.procs))
	}
	end := start + latency
	for len(d.grid) < end {
		row := make([]Slot, d.procs)
		for i := range row {
			row[i] = Empty
		}
		d.grid = append(d.grid, row)
	}
	for c := start; c < end; c++ {
		if d.grid[c][proc].Node != -1 {
			panic(fmt.Sprintf("pattern: slot (%d, P%d) double-booked", c, proc))
		}
		d.grid[c][proc] = Slot{Node: node, Iter: iter, Phase: c - start}
	}
}

// slot returns the grid cell, Empty beyond the recorded frontier.
func (d *Detector) slot(cycle, proc int) Slot {
	if cycle >= len(d.grid) {
		return Empty
	}
	return d.grid[cycle][proc]
}

// windowKey canonicalizes the window with top row t: iteration numbers are
// rebased to the window's minimum iteration so that shifted twins hash
// identically. ok is false for fully-empty windows, which are excluded from
// matching (they carry no phase information and would match trivially).
func (d *Detector) windowKey(t int) (string, int, bool) {
	minIter := -1
	for r := t; r < t+d.height; r++ {
		for p := 0; p < d.procs; p++ {
			s := d.slot(r, p)
			if s.Node != -1 && (minIter == -1 || s.Iter < minIter) {
				minIter = s.Iter
			}
		}
	}
	if minIter == -1 {
		return "", 0, false
	}
	buf := make([]byte, 0, d.height*d.procs*12)
	var scratch [12]byte
	for r := t; r < t+d.height; r++ {
		for p := 0; p < d.procs; p++ {
			s := d.slot(r, p)
			if s.Node == -1 {
				buf = append(buf, 0xff)
				continue
			}
			binary.LittleEndian.PutUint32(scratch[0:4], uint32(s.Node))
			binary.LittleEndian.PutUint32(scratch[4:8], uint32(s.Iter-minIter))
			binary.LittleEndian.PutUint32(scratch[8:12], uint32(s.Phase))
			buf = append(buf, scratch[:]...)
		}
	}
	return string(buf), minIter, true
}

// segmentRepeats verifies that grid rows [t1, t1+n) equal rows [t2, t2+n)
// with all iteration indices shifted by d.
func (d *Detector) segmentRepeats(t1, t2, n, shift int) bool {
	for r := 0; r < n; r++ {
		for p := 0; p < d.procs; p++ {
			a := d.slot(t1+r, p)
			b := d.slot(t2+r, p)
			if a.Node == -1 || b.Node == -1 {
				if a.Node != b.Node {
					return false
				}
				continue
			}
			if a.Node != b.Node || a.Phase != b.Phase || a.Iter+shift != b.Iter {
				return false
			}
		}
	}
	return true
}

// Find scans newly-stable rows for a repeated configuration and verifies
// candidates whose full period has stabilized. stableTime is the cycle
// below which the schedule is final. It returns the first verified match.
func (d *Detector) Find(stableTime int) (Match, bool) {
	// First try to settle pending candidates. Verification replays two
	// full periods: a single period can coincide in schedules that merely
	// repeat locally (e.g. geometrically slowing ones).
	kept := d.pending[:0]
	for _, c := range d.pending {
		period := c.t2 - c.t1
		if stableTime < c.t2+2*period {
			kept = append(kept, c)
			continue
		}
		if d.segmentRepeats(c.t1, c.t2, period, c.shift) &&
			d.segmentRepeats(c.t2, c.t2+period, period, c.shift) {
			d.pending = nil
			return Match{Start: c.t1, End: c.t2, IterShift: c.shift}, true
		}
		// Coincidence — drop it.
	}
	d.pending = kept

	// Scan new fully-stable window positions.
	for t := d.nextScan; t+d.height <= stableTime; t++ {
		d.nextScan = t + 1
		key, minIter, ok := d.windowKey(t)
		if !ok {
			continue
		}
		t1, seen := d.firstSeen[key]
		if !seen {
			d.firstSeen[key] = t
			continue
		}
		_, prevMin, _ := d.windowKey(t1)
		shift := minIter - prevMin
		if shift < 1 {
			continue
		}
		period := t - t1
		if period < 1 {
			continue
		}
		if stableTime >= t+2*period {
			if d.segmentRepeats(t1, t, period, shift) &&
				d.segmentRepeats(t, t+period, period, shift) {
				return Match{Start: t1, End: t, IterShift: shift}, true
			}
			continue
		}
		if len(d.pending) < 64 {
			d.pending = append(d.pending, candidate{t1: t1, t2: t, shift: shift})
		}
	}
	return Match{}, false
}

// Rows returns the number of grid rows recorded so far.
func (d *Detector) Rows() int { return len(d.grid) }
