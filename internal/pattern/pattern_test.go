package pattern

import "testing"

func TestDetectorFindsSimpleRepetition(t *testing.T) {
	// One node per iteration on one processor, latency 1: period 1.
	d := NewDetector(1, 2)
	for i := 0; i < 8; i++ {
		d.Add(0, i, 0, i, 1)
	}
	m, ok := d.Find(8)
	if !ok {
		t.Fatal("no match")
	}
	if m.IterShift < 1 || m.Cycles() < 1 {
		t.Fatalf("match = %v", m)
	}
	if m.Cycles() != m.IterShift {
		t.Fatalf("rate = %d/%d, want 1 cycle/iter", m.Cycles(), m.IterShift)
	}
}

func TestDetectorRespectsStability(t *testing.T) {
	d := NewDetector(1, 2)
	for i := 0; i < 8; i++ {
		d.Add(0, i, 0, i, 1)
	}
	// Nothing stable: nothing found.
	if _, ok := d.Find(0); ok {
		t.Fatal("found a match in an unstable schedule")
	}
	// Stability reveals it.
	if _, ok := d.Find(8); !ok {
		t.Fatal("no match after stabilization")
	}
}

func TestDetectorTwoProcessorAlternation(t *testing.T) {
	// Node 0 alternates processors by iteration parity: the shift must be
	// even so the twin windows agree on placement.
	d := NewDetector(2, 2)
	for i := 0; i < 12; i++ {
		d.Add(0, i, i%2, i, 1)
	}
	m, ok := d.Find(12)
	if !ok {
		t.Fatal("no match")
	}
	if m.IterShift%2 != 0 {
		t.Fatalf("shift = %d, want even", m.IterShift)
	}
}

func TestDetectorRejectsNonRepeating(t *testing.T) {
	// Geometrically slowing schedule: gaps grow, no repetition.
	d := NewDetector(1, 2)
	tcur := 0
	for i := 0; i < 12; i++ {
		d.Add(0, i, 0, tcur, 1)
		tcur += 1 + i // widening gaps
	}
	if m, ok := d.Find(tcur); ok {
		t.Fatalf("matched a non-periodic schedule: %v", m)
	}
}

func TestDetectorMultiCyclePhases(t *testing.T) {
	// Latency-3 node: slots carry phases; period 3 with shift 1.
	d := NewDetector(1, 3)
	for i := 0; i < 8; i++ {
		d.Add(0, i, 0, 3*i, 3)
	}
	m, ok := d.Find(24)
	if !ok {
		t.Fatal("no match")
	}
	if got := float64(m.Cycles()) / float64(m.IterShift); got != 3 {
		t.Fatalf("rate = %v, want 3", got)
	}
}

func TestDetectorSlotConflictPanics(t *testing.T) {
	d := NewDetector(1, 1)
	d.Add(0, 0, 0, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("double booking did not panic")
		}
	}()
	d.Add(1, 0, 0, 1, 1)
}

func TestDetectorBadProcPanics(t *testing.T) {
	d := NewDetector(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range processor did not panic")
		}
	}()
	d.Add(0, 0, 5, 0, 1)
}

func TestMatchString(t *testing.T) {
	m := Match{Start: 3, End: 9, IterShift: 2}
	if m.Cycles() != 6 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRows(t *testing.T) {
	d := NewDetector(2, 2)
	if d.Rows() != 0 {
		t.Fatal("rows before Add")
	}
	d.Add(0, 0, 1, 4, 2)
	if d.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", d.Rows())
	}
}
