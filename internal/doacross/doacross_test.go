package doacross

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// figure7 is the paper's Figure 7 loop (see internal/core tests).
func figure7(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure8DoacrossGainsNothing(t *testing.T) {
	// Paper, Figure 8: for the Figure 7 loop the (E,A) loop-carried
	// dependence makes pipelining useless; DOACROSS is no better than
	// sequential, percentage parallelism 0.
	g := figure7(t)
	n := 40
	res, err := Schedule(g, Options{MaxProcessors: 4, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	seq := plan.Sequential(g, res.Schedule.Timing, n)
	if res.Schedule.Makespan() != seq.Makespan() {
		t.Fatalf("DOACROSS makespan = %d, sequential = %d; expected equality",
			res.Schedule.Makespan(), seq.Makespan())
	}
	if res.Processors != 1 {
		t.Fatalf("chose %d processors, want 1 (pipelining gains nothing)", res.Processors)
	}
	if err := res.Schedule.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8ReorderingDoesNotHelpEither(t *testing.T) {
	g := figure7(t)
	res, err := Schedule(g, Options{MaxProcessors: 4, CommCost: 2, BestReorder: true}, 40)
	if err != nil {
		t.Fatal(err)
	}
	seq := plan.Sequential(g, res.Schedule.Timing, 40)
	if res.Schedule.Makespan() != seq.Makespan() {
		t.Fatalf("reordered DOACROSS = %d, sequential = %d", res.Schedule.Makespan(), seq.Makespan())
	}
}

func TestDoacrossPipelinesWhenSkewAllows(t *testing.T) {
	// A[i] = A[i-1] (1 cycle) followed by heavy independent work: DOACROSS
	// pipelines well. Body: A (lcd self), then W1..W4 depending on A.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	for i := 0; i < 4; i++ {
		w := b.AddNode("W", 2)
		b.AddEdge(a, w, 0)
	}
	b.AddEdge(a, a, 1)
	g := b.MustBuild()
	n := 60
	res, err := Schedule(g, Options{MaxProcessors: 8, CommCost: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	seq := plan.Sequential(g, res.Schedule.Timing, n)
	if res.Schedule.Makespan() >= seq.Makespan() {
		t.Fatalf("DOACROSS %d not faster than sequential %d", res.Schedule.Makespan(), seq.Makespan())
	}
	if res.Processors < 2 {
		t.Fatalf("chose %d processors, want >= 2", res.Processors)
	}
	if err := res.Schedule.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Steady-state delay: A's chain allows an iteration every
	// fin(A)+k = 1+1 = 2 cycles with enough processors.
	if res.Delay != 2 {
		t.Fatalf("delay = %d, want 2", res.Delay)
	}
}

func TestOrderValidation(t *testing.T) {
	g := figure7(t)
	if _, err := Schedule(g, Options{Order: []int{0, 1}}, 5); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Schedule(g, Options{Order: []int{0, 0, 1, 2, 3}}, 5); err == nil {
		t.Fatal("non-permutation accepted")
	}
	// B before A violates A->B.
	if _, err := Schedule(g, Options{Order: []int{1, 0, 2, 3, 4}}, 5); err == nil {
		t.Fatal("dependence-violating order accepted")
	}
	if _, err := Schedule(g, Options{}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Schedule(g, Options{MaxProcessors: -1}, 5); err == nil {
		t.Fatal("negative processors accepted")
	}
	if _, err := Schedule(g, Options{CommCost: -1}, 5); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestIterationDelayFormula(t *testing.T) {
	// Chain X(1) -> Y(1), lcd Y -> X distance 1, k=2: delay =
	// off(Y)+1+2-off(X) = 1+3-0 = 4.
	b := graph.NewBuilder()
	x := b.AddNode("X", 1)
	y := b.AddNode("Y", 1)
	b.AddEdge(x, y, 0)
	b.AddEdge(y, x, 1)
	g := b.MustBuild()
	if got := iterationDelay(g, 2, []int{0, 1}); got != 4 {
		t.Fatalf("delay = %d, want 4", got)
	}
	// Distance 2 halves the per-iteration cost (ceil(4/2) = 2).
	b2 := graph.NewBuilder()
	x = b2.AddNode("X", 1)
	y = b2.AddNode("Y", 1)
	b2.AddEdge(x, y, 0)
	b2.AddEdge(y, x, 2)
	g2 := b2.MustBuild()
	if got := iterationDelay(g2, 2, []int{0, 1}); got != 2 {
		t.Fatalf("distance-2 delay = %d, want 2", got)
	}
}

func TestBestReorderImproves(t *testing.T) {
	// Body: A, B, C with C -> A lcd. Canonical order A,B,C leaves C last
	// (delay = 3+k). Reordering C earlier is impossible (A->C 0-dist?) —
	// build it so reordering helps: A; B (independent, heavy); C depends
	// on A; lcd C->A. Order A,B,C has off(C)=3; order A,C,B has off(C)=1,
	// cutting the delay by 2.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 2)
	c := b.AddNode("C", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 1)
	g := b.MustBuild()
	_ = bb

	natural := iterationDelay(g, 1, []int{0, 1, 2})
	improved := bestOrder(g, 1, []int{0, 1, 2}, 1000)
	if got := iterationDelay(g, 1, improved); got >= natural {
		t.Fatalf("best order delay %d not better than natural %d", got, natural)
	}
}

func TestPropertyDoacrossValidAndNeverWorseThanSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1+rng.Intn(3))
		}
		sd := rng.Intn(2 * n)
		for i := 0; i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		lcd := rng.Intn(n + 1)
		for i := 0; i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(2))
		}
		g := b.MustBuild()
		iters := 3 + rng.Intn(20)
		res, err := Schedule(g, Options{MaxProcessors: 1 + rng.Intn(6), CommCost: rng.Intn(4)}, iters)
		if err != nil {
			return false
		}
		if err := res.Schedule.Validate(true); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		seq := plan.Sequential(g, res.Schedule.Timing, iters)
		return res.Schedule.Makespan() <= seq.Makespan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
