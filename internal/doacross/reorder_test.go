package doacross

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/graph"
)

func TestHeuristicOrderIsTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1)
		}
		for i, sd := 0, rng.Intn(2*n); i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		for i, lcd := 0, rng.Intn(n); i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.MustBuild()
		order := HeuristicOrder(g)
		return checkOrder(g, order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicOrderPlacesSourcesEarly(t *testing.T) {
	// A (lcd source, no constraints) vs B,C (plain): A must come first.
	b := graph.NewBuilder()
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	a := b.AddNode("A", 1)
	sink := b.AddNode("S", 1)
	b.AddEdge(a, sink, 1) // A is an lcd source, S an lcd sink
	_ = bb
	_ = c
	g := b.MustBuild()
	order := HeuristicOrder(g)
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	if pos[a] != 0 {
		t.Fatalf("lcd source at position %d, want 0 (order %v)", pos[a], order)
	}
	if pos[sink] != g.N()-1 {
		t.Fatalf("lcd sink at position %d, want last (order %v)", pos[sink], order)
	}
}

func TestHeuristicOrderNeverWorseOnSuite(t *testing.T) {
	// On random cyclic graphs, the heuristic's analytic delay is no worse
	// than the canonical body order's in at least the aggregate.
	rng := rand.New(rand.NewSource(11))
	better, worse := 0, 0
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(15)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1+rng.Intn(3))
		}
		for i, sd := 0, rng.Intn(2*n); i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		for i, lcd := 0, 1+rng.Intn(n); i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.MustBuild()
		nat := iterationDelay(g, 3, g.BodyOrder())
		heu := iterationDelay(g, 3, HeuristicOrder(g))
		switch {
		case heu < nat:
			better++
		case heu > nat:
			worse++
		}
	}
	if worse > better {
		t.Fatalf("heuristic worse on %d graphs, better on %d", worse, better)
	}
}

func TestBestOrderSkipsLargeBodies(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 13; i++ {
		b.AddNode("n", 1)
	}
	b.AddEdge(0, 12, 1)
	g := b.MustBuild()
	fallback := g.BodyOrder()
	got := bestOrder(g, 2, fallback, 100)
	for i := range fallback {
		if got[i] != fallback[i] {
			t.Fatal("bestOrder did not fall back on a 13-node body")
		}
	}
}

func TestHeuristicReorderOptionWiring(t *testing.T) {
	// Figure 7 loop: heuristic reorder cannot help (the loop is
	// unpipelinable), but the option must produce a valid schedule.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g := b.MustBuild()
	res, err := Schedule(g, Options{MaxProcessors: 4, CommCost: 2, HeuristicReorder: true}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(true); err != nil {
		t.Fatal(err)
	}
}
