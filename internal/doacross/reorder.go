package doacross

import "mimdloop/internal/graph"

// bestOrder enumerates topological orders of the intra-iteration DAG (up to
// limit of them) and returns the one minimizing the analytic steady-state
// iteration delay; ties keep the earlier enumeration, which starts from the
// canonical order. This reproduces the paper's exhaustively-reordered
// DOACROSS variant (Figure 8(b)); the paper notes optimal reordering is
// NP-hard in general, hence the enumeration cap.
func bestOrder(g *graph.Graph, k int, fallback []int, limit int) []int {
	n := g.N()
	if n > 12 {
		// 12! alone exceeds any sensible cap; don't pretend to search.
		return fallback
	}
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	var (
		cur      = make([]int, 0, n)
		used     = make([]bool, n)
		best     []int
		bestCost = int(^uint(0) >> 1)
		count    int
	)
	var rec func()
	rec = func() {
		if count >= limit {
			return
		}
		if len(cur) == n {
			count++
			if c := iterationDelay(g, k, cur); c < bestCost {
				bestCost = c
				best = append([]int(nil), cur...)
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] || indeg[v] != 0 {
				continue
			}
			used[v] = true
			cur = append(cur, v)
			for _, ei := range g.Out(v) {
				e := g.Edges[ei]
				if e.Distance == 0 {
					indeg[e.To]--
				}
			}
			rec()
			for _, ei := range g.Out(v) {
				e := g.Edges[ei]
				if e.Distance == 0 {
					indeg[e.To]++
				}
			}
			cur = cur[:len(cur)-1]
			used[v] = false
			if count >= limit {
				return
			}
		}
	}
	rec()
	if best == nil {
		return fallback
	}
	return best
}

// HeuristicOrder builds a topological body order that favors pipelining:
// among ready nodes it prefers sources of loop-carried dependences (placing
// them early shrinks their skew contribution) and defers their sinks
// (placing them late absorbs the skew), with node ID as the deterministic
// tie-break. It is the practical stand-in for exhaustive reordering on
// bodies too large to enumerate.
func HeuristicOrder(g *graph.Graph) []int {
	n := g.N()
	isSource := make([]bool, n)
	isSink := make([]bool, n)
	for _, e := range g.Edges {
		if e.Distance > 0 {
			isSource[e.From] = true
			isSink[e.To] = true
		}
	}
	class := func(v int) int {
		switch {
		case isSource[v] && !isSink[v]:
			return 0
		case isSource[v] && isSink[v]:
			return 1
		case !isSource[v] && !isSink[v]:
			return 2
		default:
			return 3
		}
	}
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] || indeg[v] != 0 {
				continue
			}
			if best == -1 || class(v) < class(best) {
				best = v
			}
		}
		order = append(order, best)
		inOrder[best] = true
		for _, ei := range g.Out(best) {
			e := g.Edges[ei]
			if e.Distance == 0 {
				indeg[e.To]--
			}
		}
	}
	return order
}

// iterationDelay computes, for a given body order, the minimum steady-state
// offset D between consecutive iteration starts under DOACROSS with every
// cross-iteration dependence paying the communication cost k (consecutive
// iterations always sit on different processors for p >= 2):
//
//	D = max over edges with distance >= 1 of
//	    ceil((offset(u) + lat(u) + k - offset(v)) / distance)
//
// where offset(x) is x's start within the sequential body.
func iterationDelay(g *graph.Graph, k int, order []int) int {
	off := make([]int, g.N())
	t := 0
	for _, v := range order {
		off[v] = t
		t += g.Nodes[v].Latency
	}
	d := 0
	for _, e := range g.Edges {
		if e.Distance == 0 {
			continue
		}
		cost := graph.EdgeCost(e, k)
		need := off[e.From] + g.Nodes[e.From].Latency + cost - off[e.To]
		if need <= 0 {
			continue
		}
		per := (need + e.Distance - 1) / e.Distance
		if per > d {
			d = per
		}
	}
	return d
}
