// Package doacross implements the iteration-pipelining baseline the paper
// compares against [Cytron86]: iterations are dealt round-robin to
// processors, each iteration executes its body sequentially in a fixed
// statement order, and loop-carried dependences are honored by
// synchronization whose cost equals the communication cost k.
//
// As in the paper's discussion of Figure 8, DOACROSS degenerates to
// sequential execution when synchronization cost erases the pipelining
// gain; Schedule therefore tries every processor count from 1 to
// MaxProcessors and keeps the best, so the baseline is never reported worse
// than sequential (percentage parallelism >= 0).
package doacross

import (
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// Options configures the baseline.
type Options struct {
	// MaxProcessors is the largest processor count to try; the result uses
	// whichever p in [1, MaxProcessors] minimizes makespan (ties to the
	// smaller p). 0 means 8.
	MaxProcessors int
	// CommCost is the synchronization/communication cost k.
	CommCost int
	// CommFromStart selects the overlapped-communication ablation model.
	CommFromStart bool
	// Order fixes the body statement order; nil means the canonical
	// topological body order.
	Order []int
	// BestReorder searches topological orders of the body for the one
	// minimizing the steady-state iteration delay (the paper's "optimal
	// reordering ... obtained by an exhaustive search", Figure 8(b)).
	BestReorder bool
	// ReorderLimit caps the number of orders enumerated (0 = 20000).
	ReorderLimit int
	// HeuristicReorder uses HeuristicOrder as the body order: sources of
	// loop-carried dependences early, sinks late. The paper's Section 4
	// baseline separates non-Cyclic nodes "through reordering of
	// operations" (footnote 16); this is the equivalent courtesy on large
	// bodies where exhaustive search is infeasible. Ignored when Order is
	// set or BestReorder finds a better order.
	HeuristicReorder bool
}

// Result is a DOACROSS schedule and the parameters that produced it.
type Result struct {
	Schedule   *plan.Schedule
	Processors int   // chosen processor count
	Order      []int // body order used
	// Delay is the measured steady-state offset between consecutive
	// iteration start times at the chosen processor count (0 when fewer
	// than 2 iterations were scheduled).
	Delay int
}

// Schedule builds the best DOACROSS schedule for n iterations of g.
func Schedule(g *graph.Graph, opts Options, n int) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("doacross: schedule %d iterations", n)
	}
	if opts.MaxProcessors < 0 {
		return nil, fmt.Errorf("doacross: negative processor bound")
	}
	if opts.CommCost < 0 {
		return nil, fmt.Errorf("doacross: negative communication cost")
	}
	if opts.MaxProcessors == 0 {
		opts.MaxProcessors = 8
	}
	order := opts.Order
	if order == nil {
		if opts.HeuristicReorder {
			order = HeuristicOrder(g)
		} else {
			order = g.BodyOrder()
		}
	}
	if err := checkOrder(g, order); err != nil {
		return nil, err
	}
	if opts.BestReorder {
		limit := opts.ReorderLimit
		if limit == 0 {
			limit = 20000
		}
		order = bestOrder(g, opts.CommCost, order, limit)
	}

	timing := plan.Timing{CommCost: opts.CommCost, CommFromStart: opts.CommFromStart}
	var best *Result
	for p := 1; p <= opts.MaxProcessors; p++ {
		s := buildFixed(g, timing, order, p, n)
		if best == nil || s.Makespan() < best.Schedule.Makespan() {
			best = &Result{Schedule: s, Processors: p, Order: order}
		}
	}
	best.Delay = measureDelay(best.Schedule, order[0])
	return best, nil
}

// buildFixed constructs the DOACROSS schedule for exactly p processors:
// iteration i runs on processor i mod p, statements in the given order,
// each starting as soon as its processor is free and its dependences are
// available under the timing model.
func buildFixed(g *graph.Graph, timing plan.Timing, order []int, p, n int) *plan.Schedule {
	s := &plan.Schedule{Graph: g, Timing: timing, Processors: p}
	idx := make(map[graph.InstanceID]int, n*g.N())
	clock := make([]int, p)
	for iter := 0; iter < n; iter++ {
		proc := iter % p
		for _, v := range order {
			start := clock[proc]
			for _, ei := range g.In(v) {
				e := g.Edges[ei]
				srcIter := iter - e.Distance
				if srcIter < 0 {
					continue
				}
				prod := s.Placements[idx[graph.InstanceID{Node: e.From, Iter: srcIter}]]
				if a := timing.Avail(prod, g.Nodes[prod.Node].Latency, e, proc); a > start {
					start = a
				}
			}
			pl := plan.Placement{Node: v, Iter: iter, Proc: proc, Start: start}
			idx[pl.Key()] = len(s.Placements)
			s.Placements = append(s.Placements, pl)
			clock[proc] = start + g.Nodes[v].Latency
		}
	}
	return s
}

// measureDelay reports the start-time gap between the first statement of
// the last two iterations — the achieved pipeline initiation interval.
func measureDelay(s *plan.Schedule, firstStmt int) int {
	iters := s.Iterations()
	if iters < 2 {
		return 0
	}
	var prev, last = -1, -1
	for _, pl := range s.Placements {
		if pl.Node != firstStmt {
			continue
		}
		switch pl.Iter {
		case iters - 2:
			prev = pl.Start
		case iters - 1:
			last = pl.Start
		}
	}
	if prev < 0 || last < 0 {
		return 0
	}
	return last - prev
}

func checkOrder(g *graph.Graph, order []int) error {
	if len(order) != g.N() {
		return fmt.Errorf("doacross: order covers %d of %d nodes", len(order), g.N())
	}
	pos := make([]int, g.N())
	seen := make([]bool, g.N())
	for i, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			return fmt.Errorf("doacross: order is not a permutation")
		}
		seen[v] = true
		pos[v] = i
	}
	for _, e := range g.Edges {
		if e.Distance == 0 && pos[e.From] >= pos[e.To] {
			return fmt.Errorf("doacross: order violates intra-iteration dependence %s -> %s",
				g.Nodes[e.From].Name, g.Nodes[e.To].Name)
		}
	}
	return nil
}
