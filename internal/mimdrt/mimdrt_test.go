package mimdrt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/core"
	"mimdloop/internal/doacross"
	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

func figure7(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func valuesEqual(t testing.TB, got, want map[graph.InstanceID]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("value count %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missing value for %+v", k)
		}
		if math.Abs(g-w) > 1e-9*math.Max(1, math.Abs(w)) {
			t.Fatalf("value %+v = %v, want %v", k, g, w)
		}
	}
}

func TestParallelExecutionMatchesSequential(t *testing.T) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	s, err := res.Expand(n)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, progs, MixSemantics{})
	if err != nil {
		t.Fatal(err)
	}
	valuesEqual(t, got, Sequential(g, MixSemantics{}, n))
}

func TestDoacrossExecutionMatchesSequential(t *testing.T) {
	g := figure7(t)
	res, err := doacross.Schedule(g, doacross.Options{MaxProcessors: 3, CommCost: 1}, 25)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, progs, MixSemantics{})
	if err != nil {
		t.Fatal(err)
	}
	valuesEqual(t, got, Sequential(g, MixSemantics{}, 25))
}

func TestRunReportsInvalidProgram(t *testing.T) {
	g := figure7(t)
	// A compute whose operand was never produced locally or received.
	progs := []program.Program{
		{Proc: 0, Instrs: []program.Instr{{Kind: program.OpCompute, Node: 1, Iter: 0}}},
	}
	if _, err := Run(g, progs, MixSemantics{}); err == nil {
		t.Fatal("invalid program accepted")
	}
	// A send of an unknown value.
	progs = []program.Program{
		{Proc: 0, Instrs: []program.Instr{{Kind: program.OpSend, Node: 0, Iter: 0, Peer: 1}}},
		{Proc: 1},
	}
	if _, err := Run(g, progs, MixSemantics{}); err == nil {
		t.Fatal("send of unknown value accepted")
	}
}

func TestPropertyFullPipelineSemanticsPreserved(t *testing.T) {
	// End-to-end: random loop -> full ScheduleLoop composition -> programs
	// -> concurrent goroutine execution == sequential interpretation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1+rng.Intn(3))
		}
		for i, sd := 0, rng.Intn(2*n); i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		for i, lcd := 0, rng.Intn(n+1); i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(2))
		}
		g := b.MustBuild()
		iters := 2 + rng.Intn(12)
		ls, err := core.ScheduleLoop(g, core.Options{Processors: 3, CommCost: rng.Intn(3), FoldNonCyclic: seed%2 == 0}, iters)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		progs, err := program.Build(ls.Full)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := Run(g, progs, MixSemantics{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := Sequential(g, MixSemantics{}, iters)
		if len(got) != len(want) {
			return false
		}
		for k, w := range want {
			if math.Abs(got[k]-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Logf("seed %d: %+v differs", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
