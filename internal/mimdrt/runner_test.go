package mimdrt

import (
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/program"
)

// TestRunnerReusesWorkersAcrossTrials: repeated Runner.Run calls on one
// program set all compute the sequential values — the link buffers and
// worker goroutines carry no state between passes.
func TestRunnerReusesWorkersAcrossTrials(t *testing.T) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := 30
	s, err := res.Expand(n)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g, MixSemantics{}, n)
	r := NewRunner(g, progs, MixSemantics{})
	defer r.Close()
	for trial := 0; trial < 5; trial++ {
		got, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		valuesEqual(t, got, want)
	}
}

// TestRunnerMatchesRun: one Runner pass is the package-level Run.
func TestRunnerMatchesRun(t *testing.T) {
	g := figure7(t)
	res, err := core.CyclicSched(g, core.Options{Processors: 3, CommCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Expand(20)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, progs, MixSemantics{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(g, progs, MixSemantics{})
	defer r.Close()
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	valuesEqual(t, got, want)
}

// TestRunnerDiesCleanlyOnInvalidProgram: a failed pass reports its
// error, releases every worker (even ones blocked on the failed peer's
// messages), and marks the runner dead for subsequent passes.
func TestRunnerDiesCleanlyOnInvalidProgram(t *testing.T) {
	g := figure7(t)
	// PE1 waits forever for a message PE0 never sends; PE0 fails
	// immediately on a compute with an unavailable operand.
	progs := []program.Program{
		{Proc: 0, Instrs: []program.Instr{{Kind: program.OpCompute, Node: 1, Iter: 0}}},
		{Proc: 1, Instrs: []program.Instr{{Kind: program.OpRecv, Node: 0, Iter: 0, Peer: 0}}},
	}
	r := NewRunner(g, progs, MixSemantics{})
	defer r.Close()
	if _, err := r.Run(); err == nil {
		t.Fatal("invalid program accepted")
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("dead runner accepted another pass")
	}
}

// TestRunnerClosedRejectsRun: Close is idempotent and a closed runner
// refuses to run.
func TestRunnerClosedRejectsRun(t *testing.T) {
	g := figure7(t)
	progs := []program.Program{{Proc: 0}}
	r := NewRunner(g, progs, MixSemantics{})
	r.Close()
	r.Close()
	if _, err := r.Run(); err == nil {
		t.Fatal("closed runner accepted a pass")
	}
}
