// Package mimdrt executes lowered loop programs on a real MIMD machine:
// one goroutine per simulated processor, one channel per directed processor
// pair, values tagged with their (node, iteration) identity and matched in
// a per-processor inbox. It is the existence proof that the partitioned
// loops the scheduler emits actually run — and compute the same values as
// sequential execution — on asynchronous hardware, independent of any
// timing assumption made at compile time.
package mimdrt

import (
	"fmt"
	"sync"

	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// Semantics supplies the meaning of nodes so programs can run over real
// data.
type Semantics interface {
	// Eval computes instance (node, iter) from its operand values, which
	// arrive in the order of the graph's incoming edge list for the node
	// (graph.Graph.In). Operands whose source iteration would be negative
	// are boundary values.
	Eval(node, iter int, args []float64) float64
	// Boundary supplies the value read through edge e when the source
	// iteration iter - e.Distance is negative (loop-entry state).
	Boundary(e graph.Edge, iter int) float64
}

// message carries one tagged value between processors. Grain-chunked
// executions tag messages with the chunk index and ship the chunk's
// whole value block in vals (val is then unused); plain executions keep
// the single-float payload, untouched on the grain-1 fast path.
type message struct {
	node, iter int
	val        float64
	vals       []float64
}

// buildLinks allocates the channel matrix for one program set: a channel
// per directed pair, buffered to the exact number of messages the link
// carries in one run. Sends then never block, which both mirrors the
// paper's fully-overlapped communication and rules out buffer-pressure
// deadlocks by construction.
func buildLinks(progs []program.Program) [][]chan message {
	n := len(progs)
	linkCount := make(map[[2]int]int)
	for _, prog := range progs {
		for _, in := range prog.Instrs {
			if in.Kind == program.OpSend {
				linkCount[[2]int{prog.Proc, in.Peer}]++
			}
		}
	}
	chans := make([][]chan message, n)
	for i := range chans {
		chans[i] = make([]chan message, n)
		for j := range chans[i] {
			if i != j {
				cap := linkCount[[2]int{i, j}]
				if cap < 1 {
					cap = 1
				}
				chans[i][j] = make(chan message, cap)
			}
		}
	}
	return chans
}

// Run executes the programs concurrently and returns every computed value
// keyed by instance. It returns an error if any processor needs a value it
// never computed or received (an invalid program), closing down cleanly.
// For repeated executions of the same programs — a trial harness timing
// run after run — use a Runner, which keeps the processor goroutines and
// link channels alive across runs.
func Run(g *graph.Graph, progs []program.Program, sem Semantics) (map[graph.InstanceID]float64, error) {
	n := len(progs)
	chans := buildLinks(progs)
	results := make([]map[graph.InstanceID]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = runProc(g, progs[p], sem, chans, p, nil)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mimdrt: PE%d: %w", p, err)
		}
	}
	merged := make(map[graph.InstanceID]float64)
	for _, r := range results {
		for k, v := range r {
			merged[k] = v
		}
	}
	return merged, nil
}

// RunChunked executes a grain-chunked program set (instructions in chunk
// space, per plan.Schedule with Grain = grain) for a loop of iters real
// iterations, and returns every computed value keyed by REAL iteration —
// directly comparable to Sequential(g, sem, iters). The graph must be
// the original (un-chunked) dependence graph.
func RunChunked(g *graph.Graph, progs []program.Program, sem Semantics, grain, iters int) (map[graph.InstanceID]float64, error) {
	r := NewChunkedRunner(g, progs, sem, grain, iters)
	defer r.Close()
	return r.Run()
}

func runProc(
	g *graph.Graph,
	prog program.Program,
	sem Semantics,
	chans [][]chan message,
	self int,
	abort <-chan struct{},
) (map[graph.InstanceID]float64, error) {
	local := make(map[graph.InstanceID]float64) // everything known on this PE
	computed := make(map[graph.InstanceID]float64)
	for _, in := range prog.Instrs {
		switch in.Kind {
		case program.OpCompute:
			args := make([]float64, 0, len(g.In(in.Node)))
			for _, ei := range g.In(in.Node) {
				e := g.Edges[ei]
				srcIter := in.Iter - e.Distance
				if srcIter < 0 {
					args = append(args, sem.Boundary(e, in.Iter))
					continue
				}
				v, ok := local[graph.InstanceID{Node: e.From, Iter: srcIter}]
				if !ok {
					return nil, fmt.Errorf("compute (%s, iter %d): operand (%s, iter %d) not available locally",
						g.Nodes[in.Node].Name, in.Iter, g.Nodes[e.From].Name, srcIter)
				}
				args = append(args, v)
			}
			id := graph.InstanceID{Node: in.Node, Iter: in.Iter}
			v := sem.Eval(in.Node, in.Iter, args)
			local[id] = v
			computed[id] = v
		case program.OpSend:
			id := graph.InstanceID{Node: in.Node, Iter: in.Iter}
			v, ok := local[id]
			if !ok {
				return nil, fmt.Errorf("send of unknown value (%s, iter %d)", g.Nodes[in.Node].Name, in.Iter)
			}
			chans[self][in.Peer] <- message{node: in.Node, iter: in.Iter, val: v}
		case program.OpRecv:
			want := graph.InstanceID{Node: in.Node, Iter: in.Iter}
			if _, have := local[want]; have {
				break
			}
			// Drain the link until the wanted tag shows up, keeping
			// everything read (later receives may want it). A nil abort
			// channel blocks forever on its case, so Run's behaviour is
			// unchanged; a Runner passes its quit channel so a processor
			// blocked on a peer that died can be released.
		drain:
			for {
				select {
				case m, ok := <-chans[in.Peer][self]:
					if !ok {
						return nil, fmt.Errorf("recv (%s, iter %d): link from PE%d closed",
							g.Nodes[in.Node].Name, in.Iter, in.Peer)
					}
					id := graph.InstanceID{Node: m.node, Iter: m.iter}
					local[id] = m.val
					if id == want {
						break drain
					}
				case <-abort:
					return nil, fmt.Errorf("recv (%s, iter %d): runner closed while waiting on PE%d",
						g.Nodes[in.Node].Name, in.Iter, in.Peer)
				}
			}
		}
	}
	return computed, nil
}

// runProcChunked executes one processor's chunk-space program under
// grain G: each COMPUTE expands to the chunk's real iterations (clamped
// to iters for the final partial chunk) evaluated in ascending order
// against the ORIGINAL graph's incoming-edge order — identical operand
// semantics to Sequential — and each SEND ships the chunk's value block
// as one message. Computed values are keyed by real iteration, so the
// caller's value cross-check against the sequential interpretation works
// unchanged; chunk arrival is tracked separately in chunk space.
func runProcChunked(
	g *graph.Graph,
	prog program.Program,
	sem Semantics,
	chans [][]chan message,
	self int,
	abort <-chan struct{},
	grain, iters int,
) (map[graph.InstanceID]float64, error) {
	local := make(map[graph.InstanceID]float64)    // real-iteration values known on this PE
	have := make(map[graph.InstanceID]bool)        // chunks computed here or fully received
	computed := make(map[graph.InstanceID]float64) // real-iteration values computed here
	span := func(chunk int) (int, int) {
		lo := chunk * grain
		hi := lo + grain
		if hi > iters {
			hi = iters
		}
		return lo, hi
	}
	for _, in := range prog.Instrs {
		switch in.Kind {
		case program.OpCompute:
			lo, hi := span(in.Iter)
			for i := lo; i < hi; i++ {
				args := make([]float64, 0, len(g.In(in.Node)))
				for _, ei := range g.In(in.Node) {
					e := g.Edges[ei]
					srcIter := i - e.Distance
					if srcIter < 0 {
						args = append(args, sem.Boundary(e, i))
						continue
					}
					v, ok := local[graph.InstanceID{Node: e.From, Iter: srcIter}]
					if !ok {
						return nil, fmt.Errorf("compute (%s, iter %d): operand (%s, iter %d) not available locally",
							g.Nodes[in.Node].Name, i, g.Nodes[e.From].Name, srcIter)
					}
					args = append(args, v)
				}
				id := graph.InstanceID{Node: in.Node, Iter: i}
				v := sem.Eval(in.Node, i, args)
				local[id] = v
				computed[id] = v
			}
			have[graph.InstanceID{Node: in.Node, Iter: in.Iter}] = true
		case program.OpSend:
			lo, hi := span(in.Iter)
			vals := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				v, ok := local[graph.InstanceID{Node: in.Node, Iter: i}]
				if !ok {
					return nil, fmt.Errorf("send of unknown value (%s, iter %d)", g.Nodes[in.Node].Name, i)
				}
				vals[i-lo] = v
			}
			chans[self][in.Peer] <- message{node: in.Node, iter: in.Iter, vals: vals}
		case program.OpRecv:
			want := graph.InstanceID{Node: in.Node, Iter: in.Iter}
			if have[want] {
				break
			}
		drain:
			for {
				select {
				case m, ok := <-chans[in.Peer][self]:
					if !ok {
						return nil, fmt.Errorf("recv (%s, chunk %d): link from PE%d closed",
							g.Nodes[in.Node].Name, in.Iter, in.Peer)
					}
					lo := m.iter * grain
					for j, v := range m.vals {
						local[graph.InstanceID{Node: m.node, Iter: lo + j}] = v
					}
					id := graph.InstanceID{Node: m.node, Iter: m.iter}
					have[id] = true
					if id == want {
						break drain
					}
				case <-abort:
					return nil, fmt.Errorf("recv (%s, chunk %d): runner closed while waiting on PE%d",
						g.Nodes[in.Node].Name, in.Iter, in.Peer)
				}
			}
		}
	}
	return computed, nil
}

// Sequential interprets all n iterations in body order on one processor —
// the ground truth the parallel execution must match.
func Sequential(g *graph.Graph, sem Semantics, n int) map[graph.InstanceID]float64 {
	order := g.BodyOrder()
	vals := make(map[graph.InstanceID]float64, n*g.N())
	for iter := 0; iter < n; iter++ {
		for _, v := range order {
			args := make([]float64, 0, len(g.In(v)))
			for _, ei := range g.In(v) {
				e := g.Edges[ei]
				srcIter := iter - e.Distance
				if srcIter < 0 {
					args = append(args, sem.Boundary(e, iter))
					continue
				}
				args = append(args, vals[graph.InstanceID{Node: e.From, Iter: srcIter}])
			}
			vals[graph.InstanceID{Node: v, Iter: iter}] = sem.Eval(v, iter, args)
		}
	}
	return vals
}

// MixSemantics is a synthetic Semantics that makes every value depend
// sensitively on its node, iteration and operands — any misrouted or
// missing operand changes the result. Useful for verifying program
// correctness without a source-language front end.
type MixSemantics struct{}

// Eval mixes operands with node- and iteration-dependent coefficients.
func (MixSemantics) Eval(node, iter int, args []float64) float64 {
	v := 1.0 + float64(node)*1.31 + float64(iter)*0.73
	for i, a := range args {
		v += a * (0.5 + 0.01*float64(i))
	}
	// Keep magnitudes bounded so long loops stay finite.
	for v > 1e6 || v < -1e6 {
		v /= 1024
	}
	return v
}

// Boundary derives a loop-entry value from the edge identity.
func (MixSemantics) Boundary(e graph.Edge, iter int) float64 {
	return float64(e.From)*0.11 - float64(e.To)*0.07 + float64(iter)*0.005
}
