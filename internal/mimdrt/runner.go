package mimdrt

import (
	"errors"
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/program"
)

// Runner executes one program set repeatedly, reusing the per-processor
// goroutines and the link channels across runs. A timed trial harness
// (the exec package's goroutine backend) calls Run once per trial; the
// expensive setup — one goroutine per processor, one exactly-buffered
// channel per directed pair — happens once in NewRunner, so repeated
// trials measure execution, not allocation and goroutine spawning.
//
// A Runner is single-client: Run must not be called concurrently with
// itself. Close releases the worker goroutines; after a failed run the
// Runner is dead (the link channels may hold stale messages from the
// aborted pass) and every subsequent Run returns the original error.
type Runner struct {
	g     *graph.Graph
	progs []program.Program
	sem   Semantics

	// grain > 1 selects the chunk-space interpreter (runProcChunked):
	// progs are then chunk-space programs over the original graph g, and
	// iters is the real iteration count the final partial chunk clamps
	// to. grain <= 1 runs the plain per-iteration interpreter untouched.
	grain int
	iters int

	chans [][]chan message
	start []chan struct{}
	// done carries one outcome per processor per pass, in completion
	// order — collection must not assume processor order, because a
	// processor blocked on a failed peer only unblocks once the failure
	// has been observed and quit closed.
	done chan procOutcome
	quit chan struct{}

	dead   error
	closed bool
}

type procOutcome struct {
	proc int
	vals map[graph.InstanceID]float64
	err  error
}

// NewRunner builds the channel matrix and parks one worker goroutine per
// processor, ready to execute the programs on demand.
func NewRunner(g *graph.Graph, progs []program.Program, sem Semantics) *Runner {
	return newRunner(g, progs, sem, 0, 0)
}

// NewChunkedRunner is NewRunner for grain-chunked program sets: progs
// are in chunk space (per plan.Schedule with Grain = grain) over the
// original graph g, and iters is the real iteration count. Run returns
// values keyed by real iteration, comparable to Sequential.
func NewChunkedRunner(g *graph.Graph, progs []program.Program, sem Semantics, grain, iters int) *Runner {
	if grain <= 1 {
		return newRunner(g, progs, sem, 0, 0)
	}
	return newRunner(g, progs, sem, grain, iters)
}

func newRunner(g *graph.Graph, progs []program.Program, sem Semantics, grain, iters int) *Runner {
	n := len(progs)
	r := &Runner{
		g:     g,
		progs: progs,
		sem:   sem,
		grain: grain,
		iters: iters,
		chans: buildLinks(progs),
		start: make([]chan struct{}, n),
		done:  make(chan procOutcome, n),
		quit:  make(chan struct{}),
	}
	for p := 0; p < n; p++ {
		r.start[p] = make(chan struct{})
		go func(p int) {
			for {
				select {
				case <-r.quit:
					return
				case <-r.start[p]:
					var vals map[graph.InstanceID]float64
					var err error
					if r.grain > 1 {
						vals, err = runProcChunked(r.g, r.progs[p], r.sem, r.chans, p, r.quit, r.grain, r.iters)
					} else {
						vals, err = runProc(r.g, r.progs[p], r.sem, r.chans, p, r.quit)
					}
					r.done <- procOutcome{proc: p, vals: vals, err: err}
				}
			}
		}(p)
	}
	return r
}

// Run executes one full pass of the programs on the parked workers and
// returns every computed value keyed by instance — the same contract as
// the package-level Run, minus the per-call setup.
func (r *Runner) Run() (map[graph.InstanceID]float64, error) {
	if r.closed {
		return nil, errors.New("mimdrt: runner is closed")
	}
	if r.dead != nil {
		return nil, fmt.Errorf("mimdrt: runner is dead after a failed run: %w", r.dead)
	}
	for p := range r.start {
		r.start[p] <- struct{}{}
	}
	merged := make(map[graph.InstanceID]float64)
	var firstErr error
	for i := 0; i < len(r.start); i++ {
		out := <-r.done
		if out.err != nil {
			if firstErr == nil {
				// Releasing quit immediately unblocks peers stalled on
				// the failed processor's messages, so the remaining
				// outcomes always arrive.
				firstErr = fmt.Errorf("mimdrt: PE%d: %w", out.proc, out.err)
				r.dead = firstErr
				close(r.quit)
			}
			continue
		}
		for k, v := range out.vals {
			merged[k] = v
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// A valid pass consumes every message a receiver wants, but a link
	// may still hold sends no later receive drained; clear them so the
	// next pass starts from empty buffers.
	for i := range r.chans {
		for _, ch := range r.chans[i] {
			if ch == nil {
				continue
			}
			for {
				select {
				case <-ch:
				default:
					goto next
				}
			}
		next:
		}
	}
	return merged, nil
}

// Close releases the worker goroutines. It is idempotent and safe after
// a failed run (the failure already released them).
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.dead == nil {
		close(r.quit)
	}
}
