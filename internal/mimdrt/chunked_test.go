package mimdrt

import (
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// chunkedProgs schedules g at the given grain and lowers the chunked
// schedule to per-processor programs.
func chunkedProgs(t testing.TB, g *graph.Graph, grain, n, procs int) []program.Program {
	t.Helper()
	ls, err := core.ScheduleLoop(g, core.Options{Processors: procs, CommCost: 2, Grain: grain}, n)
	if err != nil {
		t.Fatalf("grain %d: %v", grain, err)
	}
	if ls.Full.Grain != grain {
		t.Fatalf("schedule grain = %d, want %d", ls.Full.Grain, grain)
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		t.Fatalf("grain %d: %v", grain, err)
	}
	return progs
}

// TestRunChunkedMatchesSequential pins chunked execution against the
// sequential ground truth across grains, including grains that leave a
// partial final chunk and grains larger than the iteration count.
func TestRunChunkedMatchesSequential(t *testing.T) {
	streams, err := workload.Streams(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	braid, err := workload.Braid(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// figure7 itself is not chunkable (its cross-iteration dependence
	// cycle folds to a zero-distance chunk cycle at any grain > 1); the
	// stream family is what the grain axis exists for.
	for _, g := range []*graph.Graph{streams, braid} {
		for _, grain := range []int{2, 3, 4, 8, 16, 64} {
			for _, n := range []int{1, 7, 16, 41} {
				progs := chunkedProgs(t, g, grain, n, 2)
				got, err := RunChunked(g, progs, MixSemantics{}, grain, n)
				if err != nil {
					t.Fatalf("grain %d n %d: %v", grain, n, err)
				}
				valuesEqual(t, got, Sequential(g, MixSemantics{}, n))
			}
		}
	}
}

// TestChunkedRunnerMatchesRunChunked pins the reusable-worker runner
// against the one-shot entry point on the same chunked program.
func TestChunkedRunnerMatchesRunChunked(t *testing.T) {
	g, err := workload.Streams(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const grain, n = 4, 30
	progs := chunkedProgs(t, g, grain, n, 2)
	want, err := RunChunked(g, progs, MixSemantics{}, grain, n)
	if err != nil {
		t.Fatal(err)
	}
	r := NewChunkedRunner(g, progs, MixSemantics{}, grain, n)
	defer r.Close()
	for trial := 0; trial < 3; trial++ {
		got, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		valuesEqual(t, got, want)
	}
}

// TestChunkedRunnerGrainOneIsPlainRun pins the degenerate contract:
// grain <= 1 means no fusion, and NewChunkedRunner on an ungrained
// program behaves exactly like Run.
func TestChunkedRunnerGrainOneIsPlainRun(t *testing.T) {
	g := figure7(t)
	ls, err := core.ScheduleLoop(g, core.Options{Processors: 2, CommCost: 2}, 12)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, progs, MixSemantics{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewChunkedRunner(g, progs, MixSemantics{}, 1, 12)
	defer r.Close()
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	valuesEqual(t, got, want)
}
