package mimdrt

import (
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/program"
)

func BenchmarkGoroutineExecution(b *testing.B) {
	// Real parallel execution of 1000 iterations of the Figure 7 loop:
	// measures the fine-grain synchronization cost the repro notes warn
	// about (channel send/recv per cross-processor value).
	g := figure7(b)
	res, err := core.CyclicSched(g, core.Options{Processors: 2, CommCost: 2})
	if err != nil {
		b.Fatal(err)
	}
	s, err := res.Expand(1000)
	if err != nil {
		b.Fatal(err)
	}
	progs, err := program.Build(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, progs, MixSemantics{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialInterpretation(b *testing.B) {
	g := figure7(b)
	for i := 0; i < b.N; i++ {
		Sequential(g, MixSemantics{}, 1000)
	}
}
