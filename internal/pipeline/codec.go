package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/plan"
	"mimdloop/internal/program"
)

// The durable plan-record format. A record is one JSON object with a
// format/version header, the full cache key and its three ingredients
// (graph fingerprint, options, iterations), the serving summary
// (rate, processor accounting, pattern), the composed schedule in the
// internal/plan wire format (graph embedded, byte-for-byte the same JSON
// Plan.ScheduleJSON serves), and the lowered per-processor programs.
// Everything the serving surface reads off a Plan round-trips; the
// scheduler's intermediate state (per-component Cyclic-sched results,
// classification) deliberately does not — it is re-derivable and only
// needed to *construct* plans, never to serve them.
//
// Version history:
//
//	1 — the PR 3 format: key, ingredients, serving summary, schedule,
//	    programs.
//	2 — adds the optional "measured" block (MeasuredStats): the plan's
//	    most recent measured evaluation on the simulated machine.
//	3 — replaces "measured" with "measured_by": one self-describing
//	    MeasuredStats per execution backend (sim, gort), sorted by
//	    backend name, so annotations from different backends coexist
//	    instead of overwriting each other. Version-1 and -2 records
//	    still decode (a v2 "measured" block is adopted as the sim
//	    backend's annotation); version-3 records without a measurement
//	    are byte-compatible with version 1 apart from the header.
//	4 — adds the grain axis: options carry "Grain" and the embedded
//	    schedule carries "grain" when a plan was scheduled in chunk
//	    space; both fields are omitted at the default (grain 0/1), so
//	    grain-free version-4 records are byte-compatible with version 3
//	    apart from the header, and version <= 3 records decode as
//	    grain 0 with their original keys intact.
//
// Decoded annotations are not codec-internal state: the server includes
// them in /v1/schedule replies as the "measured_by" field, and restoring
// them via SetMeasured advances the plan's measured generation — which
// keys the pre-rendered cache-hit response body (Plan.HitResponseBody),
// so a disk-restored measurement invalidates any stale hit body exactly
// like a fresh one.
const (
	planRecordFormat  = "mimdloop/plan"
	planRecordVersion = 4

	// planRecordMinVersion is the oldest record version DecodePlan still
	// accepts.
	planRecordMinVersion = 1
)

// planRecord is the wire form of one persisted plan.
type planRecord struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	Key        string       `json:"key"`
	GraphHash  string       `json:"graph_hash"`
	Options    core.Options `json:"options"`
	Iterations int          `json:"iterations"`

	Rate     float64 `json:"rate_cycles_per_iteration"`
	Procs    int     `json:"procs"`
	Makespan int     `json:"makespan"`

	CyclicProcs    int  `json:"cyclic_procs"`
	FlowInProcs    int  `json:"flow_in_procs"`
	FlowOutProcs   int  `json:"flow_out_procs"`
	Folded         bool `json:"folded"`
	GreedyFallback bool `json:"greedy_fallback"`

	Pattern *PatternInfo `json:"pattern,omitempty"`

	// Measured is the version-2 single-annotation block, decoded for
	// backward compatibility and never encoded at version 3.
	Measured *MeasuredStats `json:"measured,omitempty"`
	// MeasuredBy is the plan's last measured evaluation per execution
	// backend, sorted by backend name (version >= 3; omitted when the
	// plan was only ever scored statically).
	MeasuredBy []*MeasuredStats `json:"measured_by,omitempty"`

	Schedule json.RawMessage   `json:"schedule"`
	Programs []program.Program `json:"programs"`
}

// EncodePlan serializes a plan to the durable record format. The
// record's key is derived from the plan's own ingredients (PlanKey), so
// a record can never claim to answer a request its content does not
// match.
func EncodePlan(p *Plan) ([]byte, error) {
	sched, err := p.ScheduleJSON()
	if err != nil {
		return nil, fmt.Errorf("pipeline: encode plan schedule: %w", err)
	}
	return json.Marshal(&planRecord{
		Format:         planRecordFormat,
		Version:        planRecordVersion,
		Key:            PlanKey(p.GraphHash, p.Opts, p.Iterations),
		GraphHash:      p.GraphHash,
		Options:        p.Opts,
		Iterations:     p.Iterations,
		Rate:           p.Rate(),
		Procs:          p.Procs(),
		Makespan:       p.Makespan(),
		CyclicProcs:    p.Schedule.CyclicProcs,
		FlowInProcs:    p.Schedule.FlowInProcs,
		FlowOutProcs:   p.Schedule.FlowOutProcs,
		Folded:         p.Schedule.Folded,
		GreedyFallback: p.Schedule.GreedyFallback,
		Pattern:        p.Pattern(),
		MeasuredBy:     p.MeasuredAll(),
		Schedule:       sched,
		Programs:       p.Programs,
	})
}

// DecodePlan reverses EncodePlan, structurally validating the record. It
// returns the plan's full cache key alongside the reconstructed plan.
//
// A decoded plan serves identically to the freshly-built original —
// same accessors, same pattern summary, byte-identical ScheduleJSON —
// but carries no scheduler intermediate state: Schedule.Multi and
// Schedule.Class are nil. Consumers that need those re-schedule; the
// serving surface never does.
func DecodePlan(data []byte) (key string, p *Plan, err error) {
	var rec planRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return "", nil, fmt.Errorf("pipeline: decode plan record: %w", err)
	}
	if rec.Format != planRecordFormat {
		return "", nil, fmt.Errorf("pipeline: plan record format %q, want %q", rec.Format, planRecordFormat)
	}
	if rec.Version < planRecordMinVersion || rec.Version > planRecordVersion {
		return "", nil, fmt.Errorf("pipeline: plan record version %d, want %d..%d",
			rec.Version, planRecordMinVersion, planRecordVersion)
	}
	if rec.Key == "" || rec.GraphHash == "" {
		return "", nil, errors.New("pipeline: plan record missing key")
	}
	full := new(plan.Schedule)
	if err := json.Unmarshal(rec.Schedule, full); err != nil {
		return "", nil, fmt.Errorf("pipeline: decode plan record: %w", err)
	}
	if got := PlanKey(rec.GraphHash, rec.Options, rec.Iterations); got != rec.Key {
		return "", nil, fmt.Errorf("pipeline: plan record key %q does not match its ingredients %q", rec.Key, got)
	}
	// The embedded schedule must actually be for the claimed graph: the
	// composed schedule always embeds the scheduled graph, so its
	// re-derived fingerprint matching GraphHash ties the record's payload
	// to its key, not just its header. A record whose schedule was edited
	// under an intact header fails here and gets quarantined upstream.
	if fp := full.Graph.Fingerprint(); fp != rec.GraphHash {
		return "", nil, fmt.Errorf("pipeline: plan record graph hashes to %s, header claims %s", fp, rec.GraphHash)
	}
	// The schedule's grain must agree with the keyed options (grain 0 and
	// 1 both mean "unchunked"): a mismatch means the record's placements
	// are in a different space than its key claims.
	wantGrain := rec.Options.Grain
	if wantGrain == 1 {
		wantGrain = 0
	}
	gotGrain := full.Grain
	if gotGrain == 1 {
		gotGrain = 0
	}
	if gotGrain != wantGrain {
		return "", nil, fmt.Errorf("pipeline: plan record schedule grain %d, options claim %d", full.Grain, rec.Options.Grain)
	}
	p = &Plan{
		GraphHash:  rec.GraphHash,
		Opts:       rec.Options,
		Iterations: rec.Iterations,
		Schedule: &core.LoopSchedule{
			Graph:          full.Graph,
			Opts:           rec.Options,
			Full:           full,
			Iterations:     rec.Iterations,
			CyclicProcs:    rec.CyclicProcs,
			FlowInProcs:    rec.FlowInProcs,
			FlowOutProcs:   rec.FlowOutProcs,
			Folded:         rec.Folded,
			GreedyFallback: rec.GreedyFallback,
		},
		Programs: rec.Programs,
		makespan: rec.Makespan,
		procs:    rec.Procs,
		rate:     rec.Rate,
		pattern:  rec.Pattern,
	}
	// Version-2 records carry one "measured" block; SetMeasured adopts
	// its empty Backend as "sim" — the only backend that existed then.
	if rec.Measured != nil {
		p.SetMeasured(rec.Measured)
	}
	for _, ms := range rec.MeasuredBy {
		if ms != nil {
			p.SetMeasured(ms)
		}
	}
	// Seed the memoized wire encoding with the record's own bytes, so a
	// disk-loaded plan serves byte-identical schedule JSON without ever
	// re-marshaling.
	p.schedJSONOnce.Do(func() { p.schedJSON = append([]byte(nil), rec.Schedule...) })
	return rec.Key, p, nil
}
