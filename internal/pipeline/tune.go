package pipeline

import (
	"errors"
	"fmt"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
)

// Objective selects what AutoTune optimizes over the (processors, k) grid.
type Objective int

const (
	// ObjectiveMinRate picks the fastest steady state: minimum
	// cycles/iteration, breaking ties toward fewer occupied processors,
	// then the smaller comm-cost estimate.
	ObjectiveMinRate Objective = iota
	// ObjectiveMinProcs picks the cheapest plan whose rate is within
	// Epsilon (relative) of the grid's best rate: minimum occupied
	// processors, breaking ties toward the lower rate, then the smaller
	// comm-cost estimate.
	ObjectiveMinProcs
	// ObjectiveEfficiency maximizes speedup per processor:
	// (sequential cycles/iteration ÷ rate) ÷ occupied processors. Ties
	// break toward fewer processors, then the lower rate.
	ObjectiveEfficiency
)

// String returns the wire name of the objective ("min_rate", "min_procs",
// "efficiency").
func (o Objective) String() string {
	switch o {
	case ObjectiveMinRate:
		return "min_rate"
	case ObjectiveMinProcs:
		return "min_procs"
	case ObjectiveEfficiency:
		return "efficiency"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}

// ParseObjective is the inverse of Objective.String.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "min_rate":
		return ObjectiveMinRate, nil
	case "min_procs":
		return ObjectiveMinProcs, nil
	case "efficiency":
		return ObjectiveEfficiency, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want min_rate, min_procs or efficiency)", s)
}

// TuneOptions configures AutoTune.
type TuneOptions struct {
	// Processors are the candidate p values. Empty means 1..min(N, 8)
	// where N is the graph's node count (p = N is the paper's
	// "sufficient" allocation, already covered when N <= 8).
	Processors []int
	// CommCosts are the candidate comm-cost estimates k. Empty means
	// {1, 2, 3, 4}, bracketing the paper's experimental range.
	CommCosts []int
	// Grains are the candidate chunking grains (core.Options.Grain).
	// Empty means the single unchunked grain — the grid (and every
	// result) is then byte-identical to tuning before the grain axis
	// existed. Grains that make the chunk graph infeasible (a
	// dependence cycle collapsing to distance zero) fail to schedule
	// and are skipped like any other failed point.
	Grains []int
	// SerialThreshold short-circuits tiny loops: when > 0 and the
	// loop's total sequential work (n × total body latency) is below
	// it, AutoTune skips the grid and returns the one-processor
	// sequential plan (grain 0, the smallest candidate comm cost) —
	// for loops this small, channel overhead dwarfs any parallel
	// speedup. 0 disables the fallback.
	SerialThreshold int
	// Base is the Options template; every grid point overwrites its
	// Processors and CommCost fields (same contract as Sweep).
	Base core.Options
	// Objective selects the winner. The zero value is ObjectiveMinRate.
	Objective Objective
	// Epsilon is the relative rate slack of ObjectiveMinProcs: a point
	// qualifies when rate <= bestRate * (1 + Epsilon). 0 means exact —
	// only points achieving the grid's best rate qualify; negative
	// values are treated as 0. Ignored by the other objectives. (The
	// HTTP endpoint defaults an *omitted* epsilon to 0.05.)
	Epsilon float64
	// Workers bounds the sweep pool. 0 means GOMAXPROCS.
	Workers int
	// Evaluator scores every grid point; the objective then ranks the
	// evaluator's rates. nil means StaticEvaluator — today's scheduled
	// rate, byte-identical to tuning before evaluators existed. A
	// MeasuredEvaluator makes AutoTune optimize measured Sp on the
	// simulated machine under communication fluctuation instead of the
	// compile-time estimate.
	Evaluator Evaluator
}

// TuneResult is the outcome of one AutoTune run.
type TuneResult struct {
	// Best is the winning grid point. Best.Plan came through (and now
	// sits in) the pipeline's plan cache.
	Best Result
	// Score is the objective value of Best: cycles/iteration for
	// ObjectiveMinRate, occupied processors for ObjectiveMinProcs, and
	// speedup-per-processor for ObjectiveEfficiency.
	Score float64
	// Results is the full grid in row-major order (Grid order); points
	// that failed to schedule carry Err and a nil Plan.
	Results []Result
	// Evaluated counts the points that scheduled successfully.
	Evaluated int
	// Objective echoes the objective the winner was chosen under.
	Objective Objective
	// Evaluator names the evaluator the grid was scored with ("static",
	// "measured").
	Evaluator string
	// Backend names the execution backend a measured evaluator ran on
	// ("sim", "gort"); empty for static scoring.
	Backend string
	// SerialFallback reports the tune short-circuited below
	// TuneOptions.SerialThreshold: Best is the one-processor sequential
	// plan and the grid was never swept.
	SerialFallback bool
}

// AutoTune rides Sweep over a processors × comm-cost grid, scores every
// point through opt.Evaluator, and returns the best (p, k) plan under
// opt.Objective. Every evaluated plan flows through the plan cache, so a
// later Schedule (or a repeat tune) of the winning point is a lookup;
// points that fail to schedule or evaluate are skipped rather than
// aborting the tune. Selection runs after the sweep, in grid order, so
// the winner is deterministic whatever the worker count. AutoTune fails
// only when the grid is empty after defaulting or no point schedules at
// all.
func (p *Pipeline) AutoTune(g *graph.Graph, n int, opt TuneOptions) (*TuneResult, error) {
	procs := opt.Processors
	if len(procs) == 0 {
		max := g.N()
		if max > 8 {
			max = 8
		}
		for pp := 1; pp <= max; pp++ {
			procs = append(procs, pp)
		}
	}
	costs := opt.CommCosts
	if len(costs) == 0 {
		costs = []int{1, 2, 3, 4}
	}
	if opt.Epsilon < 0 {
		opt.Epsilon = 0
	}
	serial := false
	points := GrainGrid(procs, costs, opt.Grains)
	if opt.SerialThreshold > 0 && n >= 1 && n*g.TotalLatency() < opt.SerialThreshold {
		// Too little total work for parallelism to pay for its messages:
		// evaluate only the one-processor sequential plan. The smallest
		// candidate comm cost keys the plan (it has no messages to bill,
		// but k is part of the plan key, so pick deterministically).
		serial = true
		points = []Point{{Processors: 1, CommCost: costs[0]}}
	}
	if len(points) == 0 {
		return nil, errors.New("pipeline: empty tuning grid")
	}

	ev := opt.Evaluator
	if ev == nil {
		ev = StaticEvaluator{}
	}
	results := p.Sweep(g, points, SweepOptions{
		Base:       opt.Base,
		Iterations: n,
		Workers:    opt.Workers,
		Evaluator:  ev,
	})

	res := &TuneResult{Results: results, Objective: opt.Objective, Evaluator: ev.Name(), SerialFallback: serial}
	if bn, ok := ev.(interface{ BackendName() string }); ok {
		res.Backend = bn.BackendName()
	}
	var firstErr error
	bestRate := 0.0
	for _, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		if res.Evaluated == 0 || r.Score.Rate < bestRate {
			bestRate = r.Score.Rate
		}
		res.Evaluated++
	}
	if res.Evaluated == 0 {
		return nil, fmt.Errorf("pipeline: no tuning point scheduled: %w", firstErr)
	}

	seq := float64(g.TotalLatency())
	first := true
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if opt.Objective == ObjectiveMinProcs && r.Score.Rate > bestRate*(1+opt.Epsilon) {
			continue
		}
		if first || better(opt.Objective, r, res.Best, seq) {
			res.Best = r
			first = false
		}
	}
	res.Score = score(opt.Objective, res.Best, seq)
	return res, nil
}

// score evaluates one successful result under the objective, ranking by
// the evaluator's verdict (Result.Score): the scheduled rate under
// StaticEvaluator, the mean measured rate under MeasuredEvaluator.
func score(o Objective, r Result, seq float64) float64 {
	switch o {
	case ObjectiveMinProcs:
		return float64(r.Score.Procs)
	case ObjectiveEfficiency:
		if r.Score.Rate == 0 || r.Score.Procs == 0 {
			return 0
		}
		return seq / r.Score.Rate / float64(r.Score.Procs)
	default:
		return r.Score.Rate
	}
}

// better reports whether a strictly beats b under the objective. Equal
// points keep the earlier grid entry, so the winner is deterministic and
// independent of sweep worker count.
func better(o Objective, a, b Result, seq float64) bool {
	switch o {
	case ObjectiveMinProcs:
		if a.Score.Procs != b.Score.Procs {
			return a.Score.Procs < b.Score.Procs
		}
		if a.Score.Rate != b.Score.Rate {
			return a.Score.Rate < b.Score.Rate
		}
	case ObjectiveEfficiency:
		sa, sb := score(o, a, seq), score(o, b, seq)
		if sa != sb {
			return sa > sb
		}
		if a.Score.Procs != b.Score.Procs {
			return a.Score.Procs < b.Score.Procs
		}
		if a.Score.Rate != b.Score.Rate {
			return a.Score.Rate < b.Score.Rate
		}
	default: // ObjectiveMinRate
		if a.Score.Rate != b.Score.Rate {
			return a.Score.Rate < b.Score.Rate
		}
		if a.Score.Procs != b.Score.Procs {
			return a.Score.Procs < b.Score.Procs
		}
	}
	if a.Point.CommCost != b.Point.CommCost {
		return a.Point.CommCost < b.Point.CommCost
	}
	// Equal on everything the objective cares about: prefer the finer
	// grain — fewer iterations at risk behind one straggling chunk.
	return a.Point.Grain < b.Point.Grain
}
