package pipeline

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"mimdloop/internal/core"
)

// stubForwarder scripts the cluster seam for server tests: ownership
// and forwarding behaviour are plain fields, no ring or network.
type stubForwarder struct {
	owns     bool
	forward  func(key string, body []byte) (int, []byte, bool)
	forwards int
	lastKey  string
}

func (f *stubForwarder) Owns(string) bool { return f.owns }

func (f *stubForwarder) Forward(key string, body []byte) (int, []byte, bool) {
	f.forwards++
	f.lastKey = key
	if f.forward == nil {
		return 0, nil, false
	}
	return f.forward(key, body)
}

func (f *stubForwarder) ClusterStats() ClusterStats {
	return ClusterStats{Self: "stub", Peers: []string{"stub"}, VNodes: 1}
}

// fig7Key derives the plan key the server computes for fig7Source with
// the given schedule parameters.
func fig7Key(t *testing.T, p *Pipeline, procs, n int) (string, string) {
	t.Helper()
	compiled, err := p.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	fp := compiled.Graph.Fingerprint()
	return fp, PlanKey(fp, core.Options{Processors: procs, CommCost: 2}, n)
}

func fig7Body(t *testing.T, procs, n int) string {
	t.Helper()
	body, err := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: procs, Iterations: n})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServePlanRecord pins the peer-fill wire format: ?key= on the
// plans route returns the durable record for exactly that key, which
// DecodePlan round-trips to a byte-identical schedule.
func TestServePlanRecord(t *testing.T) {
	p := New(Config{})
	srv := NewServer(p)
	if resp, data := postSchedule(t, srv, fig7Body(t, 2, 100)); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, data)
	}
	fp, key := fig7Key(t, p, 2, 100)

	get := func(path, hdr string) (*http.Response, []byte) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if hdr != "" {
			req.Header.Set(PeerFetchHeader, hdr)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Result(), rec.Body.Bytes()
	}

	resp, data := get("/v1/plans/"+fp+"?key="+url.QueryEscape(key), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record fetch: %d %s", resp.StatusCode, data)
	}
	gotKey, plan, err := DecodePlan(bytes.TrimSuffix(data, []byte("\n")))
	if err != nil {
		t.Fatalf("record does not decode: %v", err)
	}
	if gotKey != key {
		t.Fatalf("record key = %q, want %q", gotKey, key)
	}
	want, _ := srv.pipe.Lookup(key)
	wantJSON, err := want.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("record round-trip lost schedule bytes")
	}

	// A key for parameters never scheduled: 404, not an empty record.
	_, coldKey := fig7Key(t, p, 3, 100)
	if resp, _ := get("/v1/plans/"+fp+"?key="+url.QueryEscape(coldKey), ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold key: %d", resp.StatusCode)
	}
	// A key that does not extend the path fingerprint: 400.
	other := strings.Repeat("0", 64)
	if resp, _ := get("/v1/plans/"+other+"?key="+url.QueryEscape(key), ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fingerprint: %d", resp.StatusCode)
	}
}

// TestServePlanRecordOwnershipGate: a peer-marked fetch for a key this
// node does not own answers 404 — under disagreeing rings a fetch must
// never cascade through a non-owner's own peer tier.
func TestServePlanRecordOwnershipGate(t *testing.T) {
	p := New(Config{})
	cl := &stubForwarder{owns: false}
	srv := NewServerWith(p, ServerConfig{Cluster: cl})
	if resp, data := postSchedule(t, srv, fig7Body(t, 2, 100)); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, data)
	}
	// The schedule above was for a non-owned key: the stub recorded one
	// failed forward and the server degraded to local compute.
	if cl.forwards != 1 {
		t.Fatalf("forwards = %d, want 1", cl.forwards)
	}
	fp, key := fig7Key(t, p, 2, 100)

	req := httptest.NewRequest(http.MethodGet, "/v1/plans/"+fp+"?key="+url.QueryEscape(key), nil)
	req.Header.Set(PeerFetchHeader, "node1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("peer fetch for non-owned key: %d, want 404", rec.Code)
	}
	// The same fetch without the peer marker (an operator poking the
	// API) is served: the gate exists only to stop intra-cluster
	// cascades.
	req = httptest.NewRequest(http.MethodGet, "/v1/plans/"+fp+"?key="+url.QueryEscape(key), nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("operator fetch: %d, want 200", rec.Code)
	}
}

// TestScheduleForwardsToOwner: a request for a peer-owned key that
// misses locally is proxied — the owner's reply and status verbatim,
// nothing computed here.
func TestScheduleForwardsToOwner(t *testing.T) {
	p := New(Config{})
	canned := []byte(`{"loop":"f","cache_hit":true}` + "\n")
	cl := &stubForwarder{owns: false, forward: func(key string, body []byte) (int, []byte, bool) {
		return http.StatusOK, canned, true
	}}
	srv := NewServerWith(p, ServerConfig{Cluster: cl})

	resp, data := postSchedule(t, srv, fig7Body(t, 2, 100))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(data, canned) {
		t.Fatalf("proxied reply: %d %q", resp.StatusCode, data)
	}
	if got := p.Stats().Computes; got != 0 {
		t.Fatalf("non-owner computed %d plans", got)
	}
	_, wantKey := fig7Key(t, p, 2, 100)
	if cl.lastKey != wantKey {
		t.Fatalf("forwarded key = %q, want %q", cl.lastKey, wantKey)
	}

	// Owner-side deterministic errors are proxied too, status intact.
	cl.forward = func(string, []byte) (int, []byte, bool) {
		return http.StatusConflict, []byte(`{"error":"no pattern"}` + "\n"), true
	}
	resp, data = postSchedule(t, srv, fig7Body(t, 2, 60))
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(data), "no pattern") {
		t.Fatalf("proxied error: %d %q", resp.StatusCode, data)
	}
}

// TestScheduleOwnedKeyComputesLocally: the owner never forwards its own
// keys.
func TestScheduleOwnedKeyComputesLocally(t *testing.T) {
	p := New(Config{})
	cl := &stubForwarder{owns: true, forward: func(string, []byte) (int, []byte, bool) {
		panic("owner forwarded its own key")
	}}
	srv := NewServerWith(p, ServerConfig{Cluster: cl})
	resp, data := postSchedule(t, srv, fig7Body(t, 2, 100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned schedule: %d %s", resp.StatusCode, data)
	}
	if got := p.Stats().Computes; got != 1 {
		t.Fatalf("owner computed %d plans, want 1", got)
	}
}

// TestForwardedRequestNeverReforwarded: the forwarded marker forces
// local computation even for keys the ring says a peer owns, bounding
// intra-cluster chains to one hop.
func TestForwardedRequestNeverReforwarded(t *testing.T) {
	p := New(Config{})
	cl := &stubForwarder{owns: false, forward: func(string, []byte) (int, []byte, bool) {
		panic("forwarded request forwarded again")
	}}
	srv := NewServerWith(p, ServerConfig{Cluster: cl})

	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(fig7Body(t, 2, 100)))
	req.Header.Set(ForwardedHeader, "node1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded schedule: %d %s", rec.Code, rec.Body.Bytes())
	}
	if got := p.Stats().Computes; got != 1 {
		t.Fatalf("forwarded request computed %d plans, want 1", got)
	}
}

// TestScheduleDegradesWhenForwardFails: an unreachable owner downgrades
// the request to plain local computation — same answer a single node
// would give, no error surfaced to the client.
func TestScheduleDegradesWhenForwardFails(t *testing.T) {
	p := New(Config{})
	cl := &stubForwarder{owns: false} // Forward always reports ok=false
	srv := NewServerWith(p, ServerConfig{Cluster: cl})

	resp, data := postSchedule(t, srv, fig7Body(t, 2, 100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded schedule: %d %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheHit || out.Rate != 3 {
		t.Fatalf("degraded response = %+v", out)
	}
	if cl.forwards != 1 || p.Stats().Computes != 1 {
		t.Fatalf("forwards=%d computes=%d", cl.forwards, p.Stats().Computes)
	}

	// Once the degraded compute populated the local store, repeats are
	// served from it without consulting the cluster again.
	resp, data = postSchedule(t, srv, fig7Body(t, 2, 100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("repeat of degraded compute not served from the local store")
	}
	if cl.forwards != 1 {
		t.Fatalf("local hit still forwarded: forwards=%d", cl.forwards)
	}
}

// TestStatsClusterBlock: /v1/stats grows a "cluster" block exactly when
// the server runs clustered.
func TestStatsClusterBlock(t *testing.T) {
	solo := NewServer(New(Config{}))
	rec := httptest.NewRecorder()
	solo.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var body map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["cluster"]; ok {
		t.Fatal("unclustered server reported a cluster block")
	}

	clustered := NewServerWith(New(Config{}), ServerConfig{Cluster: &stubForwarder{}})
	rec = httptest.NewRecorder()
	clustered.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	var cs ClusterStats
	if err := json.Unmarshal(body["cluster"], &cs); err != nil {
		t.Fatalf("cluster block: %v in %s", err, rec.Body.Bytes())
	}
	if cs.Self != "stub" || len(cs.Peers) != 1 || cs.VNodes != 1 {
		t.Fatalf("cluster stats = %+v", cs)
	}
}
