package pipeline

import (
	"container/list"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"

	"mimdloop/internal/core"
)

// PlanStore is the storage layer behind a Pipeline: a keyed collection of
// completed, immutable plans. The pipeline owns request-level concerns —
// key derivation, singleflight collapsing of concurrent misses, the
// hit/miss accounting of its own Stats — and the store owns retention:
// what is kept, where, and what gets dropped under pressure.
//
// Implementations must be safe for any number of concurrent callers.
// Get must never return a partially-stored plan, and Put must tolerate
// duplicate keys (replace, or keep the existing plan — both are plans for
// the same content-addressed key, so either answer is correct).
//
// The built-in implementations are MemStore (sharded LRU, the default),
// store.DiskStore (durable content-addressed files) and store.TieredStore
// (write-through memory over disk, promoting on disk hit).
type PlanStore interface {
	// Get returns the plan stored under key, or ok = false.
	Get(key string) (p *Plan, ok bool)
	// Put stores a completed plan under key. A store with a size budget
	// may decline to retain it (an oversized plan is served, not cached).
	Put(key string, p *Plan)
	// Delete removes the plan stored under key, if any.
	Delete(key string)
	// Len reports how many plans the store currently holds.
	Len() int
	// Bytes reports the store's approximate retained size in bytes.
	Bytes() int64
	// Flush empties the store.
	Flush() error
	// Close releases the store's resources. The store is unusable after.
	Close() error
	// Stats snapshots the store's counters (and, for composite stores,
	// those of each tier).
	Stats() StoreStats
}

// PlanLister is implemented by stores that can enumerate their contents;
// the HTTP /v1/plans endpoints and `loopsched store ls` require it. All
// built-in stores implement it.
type PlanLister interface {
	// Plans returns a summary of every stored plan. The order is
	// unspecified.
	Plans() []PlanInfo
}

// RecordOpener is implemented by stores that hold plans as durable
// encoded records and can hand out a raw reader over one: the server's
// GET /v1/plans/{fingerprint}?key= handler streams the record straight
// to the socket through it, skipping the decode/re-encode round trip
// (and the record-sized response buffer) of the Get + EncodePlan path.
// store.DiskStore implements it over its content-addressed files, and
// store.TieredStore delegates to whichever tier can answer.
type RecordOpener interface {
	// OpenRecord returns a reader over the encoded plan record stored
	// under key, plus the record's size in bytes. The caller must Close
	// the reader. Stores that hold the plan but not as a raw record
	// (e.g. the memory tier) return an error; the caller falls back to
	// Get.
	OpenRecord(key string) (io.ReadCloser, int64, error)
}

// PlanInfo is one stored plan's summary, as listed by a PlanLister and
// served by GET /v1/plans/{fingerprint}.
type PlanInfo struct {
	// Key is the full plan key (fingerprint + options + iterations).
	Key string `json:"key"`
	// GraphHash is the graph-content half of the key.
	GraphHash string `json:"graph_hash"`
	// Options and Iterations complete the key.
	Options    core.Options `json:"options"`
	Iterations int          `json:"iterations"`
	// Rate, Procs and Makespan summarize the plan.
	Rate     float64 `json:"rate_cycles_per_iteration"`
	Procs    int     `json:"procs"`
	Makespan int     `json:"makespan"`
	// Bytes is the plan's approximate in-memory footprint.
	Bytes int64 `json:"bytes"`
}

// StoreStats is a point-in-time snapshot of one store's behaviour. For
// composite stores, Tiers holds one nested snapshot per tier, upper tier
// first.
type StoreStats struct {
	// Kind names the implementation: "memory", "disk", "peer" or
	// "tiered".
	Kind string `json:"kind"`
	// Hits and Misses count Get outcomes against this store.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts Put calls that reached this store.
	Puts uint64 `json:"puts"`
	// Evictions counts plans dropped under size pressure (LRU eviction,
	// disk GC) — not explicit Deletes.
	Evictions uint64 `json:"evictions"`
	// Promotes counts lower-tier hits copied into an upper tier
	// (TieredStore only).
	Promotes uint64 `json:"promotes,omitempty"`
	// Errors counts corrupt or unreadable entries quarantined by a
	// durable store.
	Errors uint64 `json:"errors,omitempty"`
	// Entries and Bytes mirror Len() and Bytes().
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Tiers nests the per-tier snapshots of a composite store.
	Tiers []StoreStats `json:"tiers,omitempty"`
}

// Tier returns the (depth-first) first snapshot of the given kind,
// searching this store and its nested tiers.
func (s StoreStats) Tier(kind string) (StoreStats, bool) {
	if s.Kind == kind {
		return s, true
	}
	for _, t := range s.Tiers {
		if found, ok := t.Tier(kind); ok {
			return found, true
		}
	}
	return StoreStats{}, false
}

// TotalEvictions sums eviction counts across this store and all tiers.
func (s StoreStats) TotalEvictions() uint64 {
	n := s.Evictions
	for _, t := range s.Tiers {
		n += t.TotalEvictions()
	}
	return n
}

// planBytes estimates a plan's resident size: placements dominate (the
// composed schedule plus the pattern copies), with the lowered
// instruction streams second. The estimate only has to be monotone and
// stable — it is a budget weight, not an allocator measurement.
func planBytes(p *Plan) int64 {
	const (
		planBase      = 512
		placementSize = 32
		instrSize     = 24
	)
	n := int64(planBase)
	if p.Schedule != nil && p.Schedule.Full != nil {
		n += placementSize * int64(len(p.Schedule.Full.Placements))
	}
	for i := range p.Programs {
		n += instrSize * int64(len(p.Programs[i].Instrs))
	}
	return n
}

// maxMemShards caps lock striping; small stores use fewer shards so the
// configured MaxEntries is honored exactly.
const maxMemShards = 16

// MemConfig bounds a MemStore.
type MemConfig struct {
	// MaxEntries bounds stored plans across all shards. <= 0 means 1024.
	MaxEntries int
	// MaxBytes bounds the approximate resident plan bytes across all
	// shards (see planBytes). <= 0 means 256 MiB. A shard always keeps
	// its most recent entry even when that entry alone exceeds the
	// budget — except that a plan larger than a whole shard budget is
	// never retained at all (keeping it would drain every warm entry
	// without ever fitting).
	MaxBytes int64
}

// MemStore is the in-memory PlanStore: a sharded, size-weighted LRU. It
// is the pipeline's default store and the upper tier of the serving
// TieredStore. Locking is striped per shard (FNV-32a of the key) so
// concurrent readers of different keys never contend on one mutex.
type MemStore struct {
	shards []memShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// memShard is one lock-striped LRU segment.
type memShard struct {
	mu       sync.Mutex
	limit    int   // per-shard entry capacity; shard limits sum to MaxEntries
	maxBytes int64 // per-shard byte budget; shard budgets sum to MaxBytes
	bytes    int64
	entries  map[string]*list.Element // key -> element whose Value is *memEntry
	order    *list.List               // front = most recently used
}

// memEntry is one stored plan with its budget weight.
type memEntry struct {
	key   string
	plan  *Plan
	bytes int64
}

// NewMemStore returns an empty memory store.
func NewMemStore(cfg MemConfig) *MemStore {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	n := maxMemShards
	if cfg.MaxEntries < n {
		n = cfg.MaxEntries
	}
	m := &MemStore{shards: make([]memShard, n)}
	// Distribute capacity so shard limits sum to exactly MaxEntries, and
	// likewise for the byte budget.
	for i := range m.shards {
		sh := &m.shards[i]
		sh.limit = cfg.MaxEntries / n
		if i < cfg.MaxEntries%n {
			sh.limit++
		}
		sh.maxBytes = cfg.MaxBytes / int64(n)
		if int64(i) < cfg.MaxBytes%int64(n) {
			sh.maxBytes++
		}
		sh.entries = make(map[string]*list.Element)
		sh.order = list.New()
	}
	return m
}

func (m *MemStore) shard(key string) *memShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &m.shards[h.Sum32()%uint32(len(m.shards))]
}

// Get returns the stored plan and refreshes its recency.
func (m *MemStore) Get(key string) (*Plan, bool) {
	sh := m.shard(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		m.misses.Add(1)
		return nil, false
	}
	sh.order.MoveToFront(el)
	p := el.Value.(*memEntry).plan
	sh.mu.Unlock()
	m.hits.Add(1)
	return p, true
}

// Put stores p under key, replacing any previous plan, then trims the
// shard to its budgets. A plan that alone exceeds the whole shard budget
// is not retained.
func (m *MemStore) Put(key string, p *Plan) {
	m.puts.Add(1)
	w := planBytes(p)
	sh := m.shard(key)
	sh.mu.Lock()
	if w > sh.maxBytes {
		// Never cache what can never fit; evict a stale duplicate so the
		// map does not keep serving an entry Put was asked to replace.
		evicted := sh.removeLocked(key)
		sh.mu.Unlock()
		m.evictions.Add(evicted)
		return
	}
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*memEntry)
		sh.bytes += w - e.bytes
		e.plan, e.bytes = p, w
		sh.order.MoveToFront(el)
	} else {
		sh.entries[key] = sh.order.PushFront(&memEntry{key: key, plan: p, bytes: w})
		sh.bytes += w
	}
	evicted := sh.evictLocked()
	sh.mu.Unlock()
	m.evictions.Add(evicted)
}

// Delete removes the plan stored under key.
func (m *MemStore) Delete(key string) {
	sh := m.shard(key)
	sh.mu.Lock()
	sh.removeLocked(key)
	sh.mu.Unlock()
}

// removeLocked drops key from the shard, reporting 1 if it was present.
// Caller holds sh.mu.
func (sh *memShard) removeLocked(key string) uint64 {
	el, ok := sh.entries[key]
	if !ok {
		return 0
	}
	sh.bytes -= el.Value.(*memEntry).bytes
	sh.order.Remove(el)
	delete(sh.entries, key)
	return 1
}

// evictLocked trims the shard to its entry capacity and byte budget
// (always keeping at least one entry) and returns how many were dropped.
// Caller holds sh.mu.
func (sh *memShard) evictLocked() uint64 {
	var n uint64
	for sh.order.Len() > sh.limit ||
		(sh.bytes > sh.maxBytes && sh.order.Len() > 1) {
		el := sh.order.Back()
		e := el.Value.(*memEntry)
		sh.order.Remove(el)
		delete(sh.entries, e.key)
		sh.bytes -= e.bytes
		n++
	}
	return n
}

// Len reports the stored plan count.
func (m *MemStore) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// Bytes reports the approximate resident plan bytes.
func (m *MemStore) Bytes() int64 {
	var n int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Flush empties the store. It never fails.
func (m *MemStore) Flush() error {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*list.Element)
		sh.order.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
	return nil
}

// Close releases nothing: a MemStore holds only heap memory.
func (m *MemStore) Close() error { return nil }

// Stats snapshots the store's counters.
func (m *MemStore) Stats() StoreStats {
	s := StoreStats{
		Kind:      "memory",
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Puts:      m.puts.Load(),
		Evictions: m.evictions.Load(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		s.Entries += sh.order.Len()
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// Plans enumerates the stored plans.
func (m *MemStore) Plans() []PlanInfo {
	var out []PlanInfo
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*memEntry)
			out = append(out, planInfo(e.key, e.plan, e.bytes))
		}
		sh.mu.Unlock()
	}
	return out
}

// planInfo builds one listing row from a stored plan.
func planInfo(key string, p *Plan, bytes int64) PlanInfo {
	return PlanInfo{
		Key:        key,
		GraphHash:  p.GraphHash,
		Options:    p.Opts,
		Iterations: p.Iterations,
		Rate:       p.Rate(),
		Procs:      p.Procs(),
		Makespan:   p.Makespan(),
		Bytes:      bytes,
	}
}
