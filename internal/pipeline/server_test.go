package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mimdloop/internal/plan"
)

const fig7Source = `loop f(N = 100) {
    A[i] = A[i-1] + E[i-1]
    B[i] = A[i]
    C[i] = B[i]
    D[i] = D[i-1] + C[i-1]
    E[i] = D[i]
}`

func postSchedule(t *testing.T, srv *Server, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Result(), rec.Body.Bytes()
}

func TestServerScheduleJSON(t *testing.T) {
	srv := NewServer(New(Config{}))
	body, err := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.Loop != "f" || out.Nodes != 5 || out.Rate != 3 || out.CacheHit {
		t.Fatalf("response = %+v", out)
	}
	if out.Pattern == nil || out.Pattern.Rate != 3 {
		t.Fatalf("pattern = %+v", out.Pattern)
	}
	// The embedded schedule round-trips through the plan wire format.
	var sched plan.Schedule
	if err := json.Unmarshal(out.Schedule, &sched); err != nil {
		t.Fatalf("embedded schedule: %v", err)
	}
	if err := sched.Validate(true); err != nil {
		t.Fatalf("embedded schedule invalid: %v", err)
	}
	if sched.Iterations() != 100 {
		t.Fatalf("embedded schedule iterations = %d", sched.Iterations())
	}

	// Same request again: served from cache.
	resp, data = postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("repeat request not served from cache")
	}
}

func TestServerScheduleRawSource(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postSchedule(t, srv, fig7Source)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Loop != "f" || out.Iterations != 100 {
		t.Fatalf("response = %+v", out)
	}
}

func TestServerScheduleErrors(t *testing.T) {
	srv := NewServer(New(Config{}))
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty", http.MethodPost, "   ", http.StatusBadRequest},
		{"bad json", http.MethodPost, `{"source": 12}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"source":"x","nope":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, `{"source":"x"}{"source":"y"}`, http.StatusBadRequest},
		{"missing source", http.MethodPost, `{"iterations":5}`, http.StatusBadRequest},
		{"bad loop", http.MethodPost, "loop ???", http.StatusUnprocessableEntity},
		{"negative processors", http.MethodPost, `{"source":"x","processors":-1}`, http.StatusBadRequest},
		{"negative comm cost", http.MethodPost, `{"source":"x","comm_cost":-1}`, http.StatusBadRequest},
		{"huge iterations", http.MethodPost, `{"source":"x","iterations":1000000000}`, http.StatusBadRequest},
		{"negative iterations", http.MethodPost, `{"source":"x","iterations":-1}`, http.StatusBadRequest},
		{"huge processors", http.MethodPost, `{"source":"x","processors":1000000}`, http.StatusBadRequest},
		{"huge comm cost", http.MethodPost, `{"source":"x","comm_cost":2000000}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/v1/schedule", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error envelope %q (%v)", tc.name, rec.Body, err)
		}
	}
}

// TestServerWorkCaps checks the resource dimensions a request body cannot
// blow up: graph node count and the iterations x nodes product.
func TestServerWorkCaps(t *testing.T) {
	srv := NewServer(New(Config{}))

	bigLoop := func(stmts int) string {
		var sb strings.Builder
		sb.WriteString("loop big(N = 10) {\n")
		for i := 0; i < stmts; i++ {
			fmt.Fprintf(&sb, "    X%d[i] = X%d[i-1] + U[i]\n", i, i)
		}
		sb.WriteString("}")
		return sb.String()
	}

	resp, data := postSchedule(t, srv, bigLoop(600))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("600-node loop: status %d: %.200s", resp.StatusCode, data)
	}

	// Pre-parse caps fire before any compilation work.
	if resp, data = postSchedule(t, srv, bigLoop(1200)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("1200-line loop: status %d: %.200s", resp.StatusCode, data)
	}
	longLine := "loop big(N = 10) {\n A[i] = A[i-1] + " + strings.Repeat("U", 70_000) + "[i]\n}"
	if resp, data = postSchedule(t, srv, longLine); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("70 KB source: status %d: %.200s", resp.StatusCode, data)
	}

	body, _ := json.Marshal(ScheduleRequest{Source: bigLoop(60), Iterations: 10000})
	resp, data = postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("60 nodes x 10000 iters: status %d: %.200s", resp.StatusCode, data)
	}

	// The same loop within the work cap schedules fine.
	body, _ = json.Marshal(ScheduleRequest{Source: bigLoop(60), Iterations: 100})
	if resp, data = postSchedule(t, srv, string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("60 nodes x 100 iters: status %d: %.200s", resp.StatusCode, data)
	}
}

func ptr[T any](v T) *T { return &v }

func postJSON(t *testing.T, srv *Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(data)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Result(), rec.Body.Bytes()
}

// TestServerBatchIsolation: N items with one invalid source come back as
// N-1 plan summaries plus one structured error, all in input order.
func TestServerBatchIsolation(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postJSON(t, srv, "/v1/batch", BatchRequest{Items: []ScheduleRequest{
		{Source: "loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}"},
		{Source: "loop ??? not a loop"},
		{Source: fig7Source, Processors: 2},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || out.Succeeded != 2 || out.Failed != 1 {
		t.Fatalf("counts = %+v", out)
	}
	for i, r := range out.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
	if out.Results[0].Loop != "a" || out.Results[0].Rate != 1 || out.Results[0].Error != "" {
		t.Fatalf("item 0 = %+v", out.Results[0])
	}
	if out.Results[1].Error == "" || out.Results[1].GraphHash != "" {
		t.Fatalf("item 1 = %+v", out.Results[1])
	}
	if out.Results[2].Loop != "f" || out.Results[2].Rate != 3 || out.Results[2].Procs != 2 {
		t.Fatalf("item 2 = %+v", out.Results[2])
	}

	// Batch plans land in the shared cache: scheduling item 2's loop
	// directly is a hit.
	body, _ := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2})
	resp, data = postSchedule(t, srv, string(body))
	var sched ScheduleResponse
	if err := json.Unmarshal(data, &sched); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !sched.CacheHit {
		t.Fatalf("follow-up schedule: status %d hit %v", resp.StatusCode, sched.CacheHit)
	}
}

// TestServerBatchCaps: request-level and per-item caps fire before any
// scheduling work; per-item violations are isolated, not fatal.
func TestServerBatchCaps(t *testing.T) {
	srv := NewServer(New(Config{}))

	oversized := BatchRequest{Items: make([]ScheduleRequest, maxBatchItems+1)}
	for i := range oversized.Items {
		oversized.Items[i] = ScheduleRequest{Source: "loop a(N=5) {\n A[i] = A[i-1] + U[i]\n}"}
	}
	if resp, data := postJSON(t, srv, "/v1/batch", oversized); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d: %.200s", resp.StatusCode, data)
	}
	if s := srv.pipe.Stats(); s.Computes != 0 {
		t.Fatalf("oversized batch scheduled %d plans", s.Computes)
	}

	for name, body := range map[string]string{
		"empty items":   `{"items": []}`,
		"missing items": `{}`,
		"unknown field": `{"items": [], "nope": 1}`,
		"bad json":      `{"items": 12}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s)", name, rec.Code, rec.Body)
		}
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: status %d", rec.Code)
	}

	// Per-item cap violations (iterations over cap, oversize product) are
	// per-item errors; the valid neighbour still schedules.
	resp, data := postJSON(t, srv, "/v1/batch", BatchRequest{Items: []ScheduleRequest{
		{Source: "loop a(N=5) {\n A[i] = A[i-1] + U[i]\n}", Iterations: maxIterations + 1},
		{Source: "loop b(N=5) {\n B[i] = B[i-1] + U[i]\n}"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error == "" || !strings.Contains(out.Results[0].Error, "iterations") {
		t.Fatalf("item 0 = %+v", out.Results[0])
	}
	if out.Results[1].Error != "" || out.Results[1].Loop != "b" {
		t.Fatalf("item 1 = %+v", out.Results[1])
	}
}

func TestServerTune(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
		Source:     fig7Source,
		Processors: []int{1, 2, 3},
		CommCosts:  []int{2},
		Objective:  "min_procs",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out TuneResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Loop != "f" || out.Nodes != 5 || out.Objective != "min_procs" {
		t.Fatalf("response = %+v", out)
	}
	if out.Best.Processors != 2 || out.Best.CommCost != 2 || out.Best.Rate != 3 {
		t.Fatalf("best = %+v", out.Best)
	}
	if out.Evaluated != 3 || len(out.Results) != 3 {
		t.Fatalf("grid = %d evaluated, %d results", out.Evaluated, len(out.Results))
	}

	// The tuned winner is in the shared plan cache.
	body, _ := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2})
	_, data = postSchedule(t, srv, string(body))
	var sched ScheduleResponse
	if err := json.Unmarshal(data, &sched); err != nil {
		t.Fatal(err)
	}
	if !sched.CacheHit {
		t.Fatal("tuned winner not served from cache")
	}
}

// TestServerTuneCaps: over-grid and malformed tune requests are rejected
// before any scheduling work.
func TestServerTuneCaps(t *testing.T) {
	srv := NewServer(New(Config{}))
	wide := make([]int, 32)
	for i := range wide {
		wide[i] = i + 1
	}
	cases := []struct {
		name   string
		req    TuneRequest
		status int
	}{
		{"over-grid", TuneRequest{Source: "x", Processors: wide, CommCosts: []int{1, 2, 3, 4, 5}},
			http.StatusRequestEntityTooLarge},
		// An empty axis counts at its default length (4 comm costs here),
		// so a wide explicit list cannot slip past a 0-length other axis.
		{"over-grid via default axis", TuneRequest{Source: "x", Processors: append(append([]int{}, wide...), 33)},
			http.StatusRequestEntityTooLarge},
		{"missing source", TuneRequest{}, http.StatusBadRequest},
		{"bad objective", TuneRequest{Source: "x", Objective: "fastest"}, http.StatusBadRequest},
		{"bad epsilon", TuneRequest{Source: "x", Epsilon: ptr(-0.5)}, http.StatusBadRequest},
		{"huge iterations", TuneRequest{Source: "x", Iterations: maxIterations + 1}, http.StatusBadRequest},
		{"huge processor", TuneRequest{Source: "x", Processors: []int{maxProcessors + 1}}, http.StatusBadRequest},
		{"huge comm cost", TuneRequest{Source: "x", CommCosts: []int{maxCommCost + 1}}, http.StatusBadRequest},
		{"bad loop", TuneRequest{Source: "loop ???"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, srv, "/v1/tune", tc.req)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%.200s)", tc.name, resp.StatusCode, tc.status, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error envelope %.200q (%v)", tc.name, data, err)
		}
	}
	if s := srv.pipe.Stats(); s.Computes != 0 {
		t.Fatalf("rejected tunes scheduled %d plans", s.Computes)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tune", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET tune: status %d", rec.Code)
	}
}

func TestServerRoutes(t *testing.T) {
	srv := NewServer(New(Config{}))
	want := map[Route]bool{
		{Method: "POST", Path: "/v1/schedule"}:              true,
		{Method: "POST", Path: "/v1/batch"}:                 true,
		{Method: "POST", Path: "/v1/tune"}:                  true,
		{Method: "GET", Path: "/v1/stats"}:                  true,
		{Method: "GET", Path: "/healthz"}:                   true,
		{Method: "GET", Path: "/v1/plans/{fingerprint}"}:    true,
		{Method: "DELETE", Path: "/v1/plans/{fingerprint}"}: true,
	}
	routes := srv.Routes()
	if len(routes) != len(want) {
		t.Fatalf("routes = %v", routes)
	}
	for _, r := range routes {
		if !want[r] {
			t.Fatalf("unexpected route %+v", r)
		}
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	srv := NewServer(New(Config{}))
	for i := 0; i < 3; i++ {
		if resp, data := postSchedule(t, srv, fig7Source); resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: %d %s", i, resp.StatusCode, data)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats struct {
		Stats
		HitRate     float64 `json:"hit_rate"`
		Streamed    uint64  `json:"streamed"`
		StreamBytes uint64  `json:"stream_bytes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 2 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.HitRate < 0.66 || stats.HitRate > 0.67 {
		t.Fatalf("hit rate = %v", stats.HitRate)
	}
	// Under-threshold replies never ride the streaming lane (see
	// TestStreamStatsCounters for the non-zero side).
	if stats.Streamed != 0 || stats.StreamBytes != 0 {
		t.Fatalf("streamed=%d stream_bytes=%d for buffered-only traffic", stats.Streamed, stats.StreamBytes)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body)
	}
}

// TestServerPlansEndpoints drives the stored-plan routes: schedule two
// parameterizations of one loop, list them by fingerprint, delete them,
// and confirm the next request reschedules.
func TestServerPlansEndpoints(t *testing.T) {
	srv := NewServer(New(Config{}))

	var hash string
	for _, body := range []string{
		fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source),
		fmt.Sprintf(`{"source": %q, "processors": 3}`, fig7Source),
	} {
		resp, data := postSchedule(t, srv, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule: status %d: %s", resp.StatusCode, data)
		}
		var out ScheduleResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		hash = out.GraphHash
	}

	// GET lists both stored parameterizations.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/plans/"+hash, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET plans: status %d: %s", rec.Code, rec.Body)
	}
	var listed PlansResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if listed.GraphHash != hash || listed.Count != 2 || len(listed.Plans) != 2 {
		t.Fatalf("plans = %+v", listed)
	}
	procs := map[int]bool{}
	for _, info := range listed.Plans {
		if info.GraphHash != hash || info.Iterations != 100 || info.Rate <= 0 || info.Bytes <= 0 {
			t.Fatalf("plan info = %+v", info)
		}
		procs[info.Options.Processors] = true
	}
	if !procs[2] || !procs[3] {
		t.Fatalf("listed parameterizations = %v", procs)
	}

	// Bad fingerprints are rejected before the store is consulted.
	for _, fp := range []string{"zzzz", strings.Repeat("A", 64), strings.Repeat("a", 63)} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/plans/"+fp, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("fingerprint %q: status %d", fp, rec.Code)
		}
	}

	// An unknown (but well-formed) fingerprint is a 404.
	unknown := strings.Repeat("0", 64)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/plans/"+unknown, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d", rec.Code)
	}

	// DELETE drops both plans…
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/plans/"+hash, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE plans: status %d: %s", rec.Code, rec.Body)
	}
	var deleted PlansDeleteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &deleted); err != nil {
		t.Fatal(err)
	}
	if deleted.Deleted != 2 {
		t.Fatalf("deleted = %+v", deleted)
	}
	if s := srv.pipe.Stats(); s.Entries != 0 {
		t.Fatalf("entries after delete = %d", s.Entries)
	}
	// …so a repeat DELETE is a 404 and the next schedule is a fresh miss.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/plans/"+hash, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("repeat DELETE: status %d", rec.Code)
	}
	resp, data := postSchedule(t, srv, fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-schedule: status %d", resp.StatusCode)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("deleted plan still served from the store")
	}
}

// TestServerStatsStoreBlock checks /v1/stats carries the storage-layer
// snapshot.
func TestServerStatsStoreBlock(t *testing.T) {
	srv := NewServer(New(Config{}))
	if resp, data := postSchedule(t, srv, fig7Source); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", resp.StatusCode, data)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var stats struct {
		Stats
		HitRate     float64 `json:"hit_rate"`
		Streamed    uint64  `json:"streamed"`
		StreamBytes uint64  `json:"stream_bytes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store.Kind != "memory" || stats.Store.Puts != 1 || stats.Store.Entries != 1 {
		t.Fatalf("store block = %+v", stats.Store)
	}
	if stats.Streamed != 0 || stats.StreamBytes != 0 {
		t.Fatalf("streamed=%d stream_bytes=%d for buffered-only traffic", stats.Streamed, stats.StreamBytes)
	}
}
