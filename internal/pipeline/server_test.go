package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mimdloop/internal/plan"
)

const fig7Source = `loop f(N = 100) {
    A[i] = A[i-1] + E[i-1]
    B[i] = A[i]
    C[i] = B[i]
    D[i] = D[i-1] + C[i-1]
    E[i] = D[i]
}`

func postSchedule(t *testing.T, srv *Server, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Result(), rec.Body.Bytes()
}

func TestServerScheduleJSON(t *testing.T) {
	srv := NewServer(New(Config{}))
	body, err := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.Loop != "f" || out.Nodes != 5 || out.Rate != 3 || out.CacheHit {
		t.Fatalf("response = %+v", out)
	}
	if out.Pattern == nil || out.Pattern.Rate != 3 {
		t.Fatalf("pattern = %+v", out.Pattern)
	}
	// The embedded schedule round-trips through the plan wire format.
	var sched plan.Schedule
	if err := json.Unmarshal(out.Schedule, &sched); err != nil {
		t.Fatalf("embedded schedule: %v", err)
	}
	if err := sched.Validate(true); err != nil {
		t.Fatalf("embedded schedule invalid: %v", err)
	}
	if sched.Iterations() != 100 {
		t.Fatalf("embedded schedule iterations = %d", sched.Iterations())
	}

	// Same request again: served from cache.
	resp, data = postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("repeat request not served from cache")
	}
}

func TestServerScheduleRawSource(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postSchedule(t, srv, fig7Source)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Loop != "f" || out.Iterations != 100 {
		t.Fatalf("response = %+v", out)
	}
}

func TestServerScheduleErrors(t *testing.T) {
	srv := NewServer(New(Config{}))
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty", http.MethodPost, "   ", http.StatusBadRequest},
		{"bad json", http.MethodPost, `{"source": 12}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"source":"x","nope":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, `{"source":"x"}{"source":"y"}`, http.StatusBadRequest},
		{"missing source", http.MethodPost, `{"iterations":5}`, http.StatusBadRequest},
		{"bad loop", http.MethodPost, "loop ???", http.StatusUnprocessableEntity},
		{"negative processors", http.MethodPost, `{"source":"x","processors":-1}`, http.StatusBadRequest},
		{"negative comm cost", http.MethodPost, `{"source":"x","comm_cost":-1}`, http.StatusBadRequest},
		{"huge iterations", http.MethodPost, `{"source":"x","iterations":1000000000}`, http.StatusBadRequest},
		{"negative iterations", http.MethodPost, `{"source":"x","iterations":-1}`, http.StatusBadRequest},
		{"huge processors", http.MethodPost, `{"source":"x","processors":1000000}`, http.StatusBadRequest},
		{"huge comm cost", http.MethodPost, `{"source":"x","comm_cost":2000000}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/v1/schedule", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error envelope %q (%v)", tc.name, rec.Body, err)
		}
	}
}

// TestServerWorkCaps checks the resource dimensions a request body cannot
// blow up: graph node count and the iterations x nodes product.
func TestServerWorkCaps(t *testing.T) {
	srv := NewServer(New(Config{}))

	bigLoop := func(stmts int) string {
		var sb strings.Builder
		sb.WriteString("loop big(N = 10) {\n")
		for i := 0; i < stmts; i++ {
			fmt.Fprintf(&sb, "    X%d[i] = X%d[i-1] + U[i]\n", i, i)
		}
		sb.WriteString("}")
		return sb.String()
	}

	resp, data := postSchedule(t, srv, bigLoop(600))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("600-node loop: status %d: %.200s", resp.StatusCode, data)
	}

	// Pre-parse caps fire before any compilation work.
	if resp, data = postSchedule(t, srv, bigLoop(1200)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("1200-line loop: status %d: %.200s", resp.StatusCode, data)
	}
	longLine := "loop big(N = 10) {\n A[i] = A[i-1] + " + strings.Repeat("U", 70_000) + "[i]\n}"
	if resp, data = postSchedule(t, srv, longLine); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("70 KB source: status %d: %.200s", resp.StatusCode, data)
	}

	body, _ := json.Marshal(ScheduleRequest{Source: bigLoop(60), Iterations: 10000})
	resp, data = postSchedule(t, srv, string(body))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("60 nodes x 10000 iters: status %d: %.200s", resp.StatusCode, data)
	}

	// The same loop within the work cap schedules fine.
	body, _ = json.Marshal(ScheduleRequest{Source: bigLoop(60), Iterations: 100})
	if resp, data = postSchedule(t, srv, string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("60 nodes x 100 iters: status %d: %.200s", resp.StatusCode, data)
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	srv := NewServer(New(Config{}))
	for i := 0; i < 3; i++ {
		if resp, data := postSchedule(t, srv, fig7Source); resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: %d %s", i, resp.StatusCode, data)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats struct {
		Stats
		HitRate float64 `json:"hit_rate"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 2 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.HitRate < 0.66 || stats.HitRate > 0.67 {
		t.Fatalf("hit rate = %v", stats.HitRate)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body)
	}
}
