package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mimdloop/internal/core"
	"mimdloop/internal/exec"
)

// maxRequestBody bounds a request body on every POST route. Loop sources
// are tiny, so a megabyte is generous for typical batches; note it binds
// before the per-item source cap for large batches — 64 items cannot
// each carry a near-64 KiB source in one request.
const maxRequestBody = 1 << 20

// Server-side parameter caps: schedules cost O(iterations x nodes)
// placements (and the reply embeds them all), and the greedy scheduler
// considers every offered processor per placement, so an unauthenticated
// request must not pick unbounded values in any dimension — including the
// node count of the compiled graph, which also bounds the "sufficient"
// processor default.
// maxCommCost is deliberately small: the configuration-window height and
// drift bound both scale with k (see core.Options.withDefaults), making
// scheduling cost superlinear in k — k=10,000 already takes ~30s of CPU
// on a 5-node loop. The paper's experiments use k <= 7.
const (
	maxIterations = 10_000
	maxProcessors = 1024
	maxCommCost   = 256
	maxGrain      = 64
	maxGraphNodes = 512
	maxPlacements = 500_000 // iterations x nodes ceiling

	// Pre-parse caps: compilation itself is superlinear in source size,
	// so the source is bounded cheaply before Compile runs. The loop
	// language puts one statement per line, so a line cap of twice the
	// node cap leaves comfortable room for braces and blank lines while
	// keeping worst-case compile (and compile-cache retention) small.
	maxSourceBytes = 64 << 10
	maxSourceLines = 2 * maxGraphNodes

	// Aggregate-endpoint caps: a batch is at most maxBatchItems loops
	// (each under the per-item caps above), and a tune grid at most
	// maxTunePoints (p, k) cells. Both reject before any scheduling work.
	maxBatchItems = 64
	maxTunePoints = 128

	// Measured-evaluation caps. Each trial is one full simulated-machine
	// run of a plan — O(iterations × nodes) work again on top of
	// scheduling — so the trial count is capped per request and the
	// total simulation budget of a tune (grid points × trials, the grid
	// sized as AutoTune will actually run it) is capped alongside the
	// grid cap: a request can spend its 128 points statically, or fewer
	// points measured more thoroughly, but never 128 × 32 simulations.
	// Fluctuation amplitude is capped like the comm cost it perturbs.
	maxEvalTrials     = 32
	maxTuneTrialCells = 1024 // grid points × trials ceiling
	maxEvalFluct      = maxCommCost

	// Goroutine-backend caps, much tighter than the simulator's: a gort
	// trial spawns real goroutines and burns wall-clock CPU on the
	// serving host (it cannot be compressed by simulation shortcuts), so
	// an unauthenticated request gets a handful of real executions, not
	// a thousand.
	maxGortEvalTrials     = 8
	maxGortTuneTrialCells = 64 // grid points × trials ceiling, gort backend

	// aggregateWorkers bounds the internal pool of one batch or tune
	// computation, so an admitted aggregate request cannot fan out to
	// unbounded parallel scheduling on its own.
	aggregateWorkers = 4
)

// ScheduleRequest is the POST /v1/schedule body (and one item of a
// /v1/batch request, and one entry of a warm-up corpus). The same fields
// are accepted as a JSON object; a body that does not start with '{' is
// taken to be raw loop source with default parameters.
type ScheduleRequest struct {
	// Source is the loop-language program to schedule.
	Source string `json:"source"`
	// CommCost is k (default 2, matching cmd/loopsched).
	CommCost *int `json:"comm_cost"`
	// Processors for the Cyclic subset (0 = sufficient).
	Processors int `json:"processors"`
	// Iterations to schedule (default 100).
	Iterations int `json:"iterations"`
	// Fold applies the Section 3 non-Cyclic folding heuristic.
	Fold bool `json:"fold"`
	// Grain fuses this many consecutive iterations per placement chunk
	// (0 and 1 both mean unchunked — the default).
	Grain int `json:"grain"`
}

// params resolves the request's scheduling parameters, applying the
// serving defaults (k = 2, 100 iterations).
func (r *ScheduleRequest) params() (core.Options, int) {
	k := 2
	if r.CommCost != nil {
		k = *r.CommCost
	}
	n := r.Iterations
	if n == 0 {
		n = 100
	}
	return core.Options{Processors: r.Processors, CommCost: k, FoldNonCyclic: r.Fold, Grain: r.Grain}, n
}

// check validates the request's scalar parameters and source against the
// serving caps; on failure the int is the HTTP status to report.
func (r *ScheduleRequest) check() (int, error) {
	opts, n := r.params()
	if status, err := checkScheduleParams(n, []int{opts.Processors}, []int{opts.CommCost}, []int{opts.Grain}); err != nil {
		return status, err
	}
	return checkSource(r.Source)
}

// checkScheduleParams is the one scalar-range validator behind every
// scheduling endpoint: iterations plus any number of candidate processor
// budgets, comm-cost estimates and grains (single-valued for schedule
// and batch items, whole grid axes for tune). On failure the int is the
// HTTP status to report.
func checkScheduleParams(n int, procs, costs, grains []int) (int, error) {
	if n < 0 || n > maxIterations {
		return http.StatusBadRequest,
			fmt.Errorf("iterations %d out of range [1, %d]", n, maxIterations)
	}
	for _, p := range procs {
		if p < 0 || p > maxProcessors {
			return http.StatusBadRequest,
				fmt.Errorf("processors %d out of range [0, %d]", p, maxProcessors)
		}
	}
	for _, k := range costs {
		if k < 0 || k > maxCommCost {
			return http.StatusBadRequest,
				fmt.Errorf("comm_cost %d out of range [0, %d]", k, maxCommCost)
		}
	}
	for _, g := range grains {
		if g < 0 || g > maxGrain {
			return http.StatusBadRequest,
				fmt.Errorf("grain %d out of range [0, %d]", g, maxGrain)
		}
	}
	return http.StatusOK, nil
}

// checkSource applies the pre-parse caps.
func checkSource(src string) (int, error) {
	switch {
	case len(src) > maxSourceBytes:
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("source is %d bytes, over the serving cap %d", len(src), maxSourceBytes)
	case strings.Count(src, "\n") >= maxSourceLines:
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("source has over %d lines, over the serving cap", maxSourceLines)
	}
	return http.StatusOK, nil
}

// checkGraphCaps applies the post-compile caps: graph size and the
// iterations x nodes work/reply bound.
func checkGraphCaps(nodes, n int) error {
	switch {
	case nodes > maxGraphNodes:
		return fmt.Errorf("loop has %d nodes, over the serving cap %d", nodes, maxGraphNodes)
	case n*nodes > maxPlacements:
		return fmt.Errorf("iterations x nodes = %d over the serving cap %d", n*nodes, maxPlacements)
	}
	return nil
}

// ScheduleResponse is the POST /v1/schedule reply.
type ScheduleResponse struct {
	Loop       string  `json:"loop"`
	Nodes      int     `json:"nodes"`
	GraphHash  string  `json:"graph_hash"`
	Iterations int     `json:"iterations"`
	Rate       float64 `json:"rate_cycles_per_iteration"`
	Makespan   int     `json:"makespan"`

	CyclicProcs    int  `json:"cyclic_procs"`
	FlowInProcs    int  `json:"flow_in_procs"`
	FlowOutProcs   int  `json:"flow_out_procs"`
	Folded         bool `json:"folded"`
	GreedyFallback bool `json:"greedy_fallback"`

	Pattern *PatternInfo `json:"pattern,omitempty"`

	// CacheHit reports the plan was served without rescheduling.
	CacheHit bool `json:"cache_hit"`

	// Simulated is the measured evaluation requested with ?simulate=1
	// (omitted otherwise).
	Simulated *MeasuredStats `json:"simulated,omitempty"`

	// MeasuredBy carries the plan's persisted measured annotations, one
	// per execution backend in backend-name order (omitted when the plan
	// was only ever scored statically). Unlike Simulated — a transient
	// probe's result — these are the measurements tunes and simulate
	// requests attached to the stored plan, the same block plan records
	// persist (codec v3).
	MeasuredBy []*MeasuredStats `json:"measured_by,omitempty"`

	// Schedule is the composed schedule in the internal/plan wire format
	// (graph embedded, so the reply is self-contained).
	Schedule json.RawMessage `json:"schedule"`
}

// PatternInfo summarizes the verified steady state.
type PatternInfo struct {
	Cycles    int     `json:"cycles"`
	IterShift int     `json:"iter_shift"`
	Rate      float64 `json:"rate"`
	Forced    bool    `json:"forced"`
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	// Items are scheduled independently; one invalid item never fails
	// its neighbours.
	Items []ScheduleRequest `json:"items"`
}

// BatchItemResult is one item's outcome in a BatchResponse. Error is
// empty exactly when the item scheduled; the reply carries plan summaries
// only — re-POST an item to /v1/schedule to fetch its full placement
// list, which the warm plan cache answers without rescheduling.
type BatchItemResult struct {
	Index      int     `json:"index"`
	Loop       string  `json:"loop,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	GraphHash  string  `json:"graph_hash,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Rate       float64 `json:"rate_cycles_per_iteration,omitempty"`
	Makespan   int     `json:"makespan,omitempty"`
	Procs      int     `json:"procs,omitempty"`
	CacheHit   bool    `json:"cache_hit,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch reply.
type BatchResponse struct {
	Count     int               `json:"count"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
	Results   []BatchItemResult `json:"results"`
}

// TuneRequest is the POST /v1/tune body.
type TuneRequest struct {
	// Source is the loop to tune.
	Source string `json:"source"`
	// Processors and CommCosts span the grid. Empty lists take the
	// AutoTune defaults (1..min(nodes, 8) and {1, 2, 3, 4}).
	Processors []int `json:"processors"`
	CommCosts  []int `json:"comm_costs"`
	// Grains adds a chunking-grain axis to the grid. Empty means the
	// single unchunked grain (today's grid, byte-identical).
	Grains []int `json:"grains"`
	// SerialThreshold short-circuits tiny loops: when > 0 and the
	// loop's total sequential work (iterations × total body latency)
	// is below it, the tune skips the grid and returns the
	// one-processor sequential plan. 0 (the default) disables it.
	SerialThreshold int `json:"serial_threshold"`
	// Iterations per grid point (default 100).
	Iterations int `json:"iterations"`
	// Objective is "min_rate" (default), "min_procs" or "efficiency".
	Objective string `json:"objective"`
	// Epsilon is the min_procs relative rate slack. Omitted means 0.05;
	// an explicit 0 means exact (only best-rate points qualify).
	Epsilon *float64 `json:"epsilon"`
	// Fold applies the folding heuristic at every point.
	Fold bool `json:"fold"`
	// Eval selects how grid points are scored. Omitted means static (the
	// scheduled rate).
	Eval *EvalRequest `json:"eval"`
}

// EvalRequest is the `eval` block of a tune request: which evaluator
// scores the grid, which execution backend runs it, and — for measured
// evaluation — the trial count, distribution objective and fluctuation
// model.
type EvalRequest struct {
	// Mode is "static" (default) or "measured".
	Mode string `json:"mode"`
	// Backend selects the execution model of a measured evaluation:
	// "sim" (default, the deterministic simulated machine), "gort" (the
	// real goroutine runtime, timed on the wall clock) or "csim" (the
	// calibrated simulator: sim trials rescaled to predicted nanoseconds
	// through the server's live fitted profile — deterministic and
	// billed like sim).
	Backend string `json:"backend"`
	// Objective selects the distribution statistic the grid is ranked
	// by: "mean" (default), "worst" or "p95".
	Objective string `json:"objective"`
	// Trials per grid point for measured evaluation. 0 means 5.
	Trials int `json:"trials"`
	// Fluct is the paper's mm: per-message extra delay in [0, mm-1]
	// (sim backend only).
	Fluct int `json:"fluct"`
	// Seed selects the fluctuation streams (sim backend only).
	Seed int64 `json:"seed"`
}

// measuredEvaluator resolves the block to the measured evaluator it
// describes. Callers must have validated it via checkEvalRequest first.
func (r *EvalRequest) measuredEvaluator() *MeasuredEvaluator {
	be, _ := exec.ForName(r.Backend)
	obj, _ := ParseEvalObjective(r.Objective)
	return &MeasuredEvaluator{
		Trials:    r.Trials,
		Fluct:     r.Fluct,
		Seed:      r.Seed,
		Backend:   be,
		Objective: obj,
	}
}

// evaluator resolves the block (nil = static) to the Evaluator AutoTune
// runs. Callers must have validated it via checkEvalRequest first.
func (r *EvalRequest) evaluator() Evaluator {
	if r.trials() > 0 {
		return r.measuredEvaluator()
	}
	return StaticEvaluator{}
}

// trials returns the per-point execution cost of the block (0 when
// static: no runs at all). The count is resolved by the evaluator/
// backend layer itself — default trials, then the backend's collapse
// rule (the sim backend runs one trial when fluctuation is off) — so
// the admission budget prices exactly what will run, with the same
// semantics library and CLI callers get.
func (r *EvalRequest) trials() int {
	if r == nil || r.Mode != "measured" {
		return 0
	}
	return r.measuredEvaluator().EffectiveTrials()
}

// checkEvalRequest validates an eval block against the serving caps.
func checkEvalRequest(r *EvalRequest) (int, error) {
	if r == nil {
		return http.StatusOK, nil
	}
	switch r.Mode {
	case "", "static", "measured":
	default:
		return http.StatusBadRequest,
			fmt.Errorf("unknown eval mode %q (want static or measured)", r.Mode)
	}
	if _, err := exec.ForName(r.Backend); err != nil {
		return http.StatusBadRequest,
			fmt.Errorf("unknown eval backend %q (want sim, gort or csim)", r.Backend)
	}
	if _, err := ParseEvalObjective(r.Objective); err != nil {
		return http.StatusBadRequest, fmt.Errorf("eval objective: %w", err)
	}
	if r.Trials < 0 || r.Trials > maxEvalTrials {
		return http.StatusBadRequest,
			fmt.Errorf("eval trials %d out of range [1, %d] (0 means the default %d)",
				r.Trials, maxEvalTrials, DefaultEvalTrials)
	}
	if r.Fluct < 0 || r.Fluct > maxEvalFluct {
		return http.StatusBadRequest,
			fmt.Errorf("eval fluct %d out of range [0, %d]", r.Fluct, maxEvalFluct)
	}
	if r.Backend == "gort" {
		// The goroutine runtime burns real CPU per trial and has no
		// fluctuation model to seed — its noise is physical.
		if r.Trials > maxGortEvalTrials {
			return http.StatusBadRequest,
				fmt.Errorf("eval trials %d over the gort backend cap %d", r.Trials, maxGortEvalTrials)
		}
		if r.Fluct != 0 {
			return http.StatusBadRequest,
				fmt.Errorf("eval fluct is a sim-backend parameter; omit it with backend gort")
		}
	}
	return http.StatusOK, nil
}

// params resolves the tune request's defaulted parameters. Callers must
// have validated the objective via checkTuneRequest first.
func (r *TuneRequest) params() (Objective, int, float64) {
	obj, _ := ParseObjective(r.Objective)
	n := r.Iterations
	if n == 0 {
		n = 100
	}
	eps := 0.05
	if r.Epsilon != nil {
		eps = *r.Epsilon
	}
	return obj, n, eps
}

// TunePointResult is one grid cell of a TuneResponse. Rate is always the
// scheduled (static) rate; Measured carries the trial spread when the
// tune ran under a measured evaluator.
type TunePointResult struct {
	Processors int            `json:"processors"`
	CommCost   int            `json:"comm_cost"`
	Grain      int            `json:"grain,omitempty"`
	Rate       float64        `json:"rate_cycles_per_iteration,omitempty"`
	Procs      int            `json:"procs,omitempty"`
	CacheHit   bool           `json:"cache_hit,omitempty"`
	Measured   *MeasuredStats `json:"measured,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// TuneResponse is the POST /v1/tune reply.
type TuneResponse struct {
	Loop      string          `json:"loop"`
	Nodes     int             `json:"nodes"`
	GraphHash string          `json:"graph_hash"`
	Objective string          `json:"objective"`
	Evaluator string          `json:"evaluator"`
	Backend   string          `json:"backend,omitempty"`
	Best      TunePointResult `json:"best"`
	Score     float64         `json:"score"`
	Evaluated int             `json:"evaluated"`
	// SerialFallback reports the tune short-circuited below the request's
	// serial_threshold: Best is the one-processor sequential plan and the
	// grid was never swept.
	SerialFallback bool              `json:"serial_fallback,omitempty"`
	Results        []TunePointResult `json:"results"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Route is one registered endpoint, as "METHOD /path".
type Route struct {
	Method string
	Path   string
}

// Server exposes a Pipeline over HTTP:
//
//	POST   /v1/schedule             schedule loop source, returning the JSON plan
//	POST   /v1/batch                schedule many loops, per-item error isolation
//	POST   /v1/tune                 auto-tune (processors, k) over a grid
//	GET    /v1/plans/{fingerprint}  list the stored plans for one graph
//	DELETE /v1/plans/{fingerprint}  drop the stored plans for one graph
//	GET    /v1/stats                store and hit-rate statistics
//	GET    /healthz                 liveness probe
type Server struct {
	pipe   *Pipeline
	mux    *http.ServeMux
	routes []Route
	// sem bounds concurrent schedule computations: the per-request caps
	// bound individual cost, this bounds aggregate cost — N distinct
	// near-cap requests must not each hold an in-flight plan at once. A
	// batch or tune holds one slot for its whole (internally bounded)
	// computation.
	sem chan struct{}
	// cluster, when non-nil, makes this server one node of a loopsched
	// cluster (see cluster.go): schedule requests for keys owned by a
	// peer are forwarded there instead of computed here, and peer-fill
	// record fetches are answered only for owned keys.
	cluster ScheduleForwarder
	// calib, when non-nil, supplies the live fitted cost model that
	// csim evaluations are scaled by (see calib.go).
	calib Calibration
	// streamThreshold is the embedded-schedule size above which a reply
	// streams (envelope prefix, memoized schedule bytes, suffix — chunked)
	// instead of buffering the whole body; streamed / streamBytes count
	// those replies for /v1/stats.
	streamThreshold int
	streamed        atomic.Uint64
	streamBytes     atomic.Uint64
}

// ServerConfig tunes the serving layer; the zero value is the default
// configuration NewServer applies.
type ServerConfig struct {
	// ComputeSlots bounds concurrent schedule/batch/tune computations
	// (the admission semaphore ahead of every compute section). Values
	// <= 0 mean 4 × GOMAXPROCS: enough concurrency for cache misses to
	// saturate the cores — scheduling is CPU-bound, so slots beyond a
	// small multiple of the processor count only add queue memory — while
	// cache hits never block on it for long (the fast lane holds a slot
	// only for a store lookup and a memoized-body fetch).
	ComputeSlots int
	// Cluster, when non-nil, runs the server as one node of a cluster:
	// the forwarder decides plan-key ownership under the consistent-hash
	// ring and proxies non-owned schedule requests to their owner. The
	// standard implementation is a store.PeerStore, which should also be
	// slotted into the pipeline's TieredStore as the peer-fill tier.
	Cluster ScheduleForwarder
	// Calibration, when non-nil, supplies the fitted cost model behind
	// `eval.backend=csim` and the "calib" block of /v1/stats. The
	// standard implementation is a calib.Manager, usually persisting
	// its profile in the disk plan store's directory and refreshed by
	// `loopsched serve -calibrate-every`.
	Calibration Calibration
	// StreamThreshold is the embedded-schedule byte size above which a
	// /v1/schedule reply is streamed to the socket (chunked transfer)
	// instead of rendered into one heap buffer. Values <= 0 mean 1 MiB —
	// aligned with maxPooledRespBuf, so every reply too large to recycle
	// its encode buffer streams instead of allocating and discarding one.
	StreamThreshold int
}

// slots resolves the admission bound.
func (c ServerConfig) slots() int {
	if c.ComputeSlots > 0 {
		return c.ComputeSlots
	}
	return 4 * runtime.GOMAXPROCS(0)
}

// streamLimit resolves the streaming threshold.
func (c ServerConfig) streamLimit() int {
	if c.StreamThreshold > 0 {
		return c.StreamThreshold
	}
	return maxPooledRespBuf
}

// NewServer wraps p in an http.Handler with the default configuration.
func NewServer(p *Pipeline) *Server { return NewServerWith(p, ServerConfig{}) }

// NewServerWith wraps p in an http.Handler configured by cfg.
func NewServerWith(p *Pipeline, cfg ServerConfig) *Server {
	s := &Server{
		pipe:            p,
		mux:             http.NewServeMux(),
		sem:             make(chan struct{}, cfg.slots()),
		cluster:         cfg.Cluster,
		calib:           cfg.Calibration,
		streamThreshold: cfg.streamLimit(),
	}
	for _, rt := range []struct {
		method, path string
		handler      http.HandlerFunc
	}{
		{http.MethodPost, "/v1/schedule", s.handleSchedule},
		{http.MethodPost, "/v1/batch", s.handleBatch},
		{http.MethodPost, "/v1/tune", s.handleTune},
		{http.MethodGet, "/v1/stats", s.handleStats},
		{http.MethodGet, "/healthz", s.handleHealthz},
	} {
		s.routes = append(s.routes, Route{Method: rt.method, Path: rt.path})
		s.mux.HandleFunc(rt.path, rt.handler)
	}
	// The plan routes carry a path parameter and differ by method, so
	// they register with method patterns (the mux then answers a stray
	// method on the path with its own 405).
	for _, rt := range []struct {
		method  string
		handler http.HandlerFunc
	}{
		{http.MethodGet, s.handlePlansGet},
		{http.MethodDelete, s.handlePlansDelete},
	} {
		s.routes = append(s.routes, Route{Method: rt.method, Path: "/v1/plans/{fingerprint}"})
		s.mux.HandleFunc(rt.method+" /v1/plans/{fingerprint}", rt.handler)
	}
	return s
}

// ComputeSlots reports the admission bound the server runs with.
func (s *Server) ComputeSlots() int { return cap(s.sem) }

// Routes returns every registered endpoint. docs/API.md must document
// each one; TestAPIDocCoversRoutes enforces the correspondence.
func (s *Server) Routes() []Route {
	out := make([]Route, len(s.routes))
	copy(out, s.routes)
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// readPost enforces the method and body cap shared by the POST
// endpoints. It reports ok = false after writing the error reply.
func readPost(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST " + r.URL.Path})
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return nil, false
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{"request body over 1 MiB"})
		return nil, false
	}
	return body, true
}

// admit blocks until a computation slot is free, honoring client
// cancellation while queued. It reports false when the client went away.
func (s *Server) admit(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	body, ok := readPost(w, r)
	if !ok {
		return
	}
	req, err := parseScheduleRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if status, err := req.check(); err != nil {
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	var sim *MeasuredEvaluator
	if r.URL.RawQuery != "" {
		// Only parse the query when one is present: the steady-state
		// cache-hit request has none, and ParseQuery allocates even for
		// the empty string.
		sim, err = parseSimulateQuery(r.URL.Query())
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
		if sim != nil {
			s.calibrate(sim)
		}
	}
	// Admission: compile, schedule, and marshal under the in-flight
	// bound. The slot is released before the (possibly large, possibly
	// slow) response write so a stalled reader cannot starve scheduling.
	// A forwarded request (sent by a non-owner peer) is always computed
	// locally — never forwarded again — so intra-cluster chains are
	// bounded to one hop.
	if !s.admit(r) {
		return
	}
	forwarded := r.Header.Get(ForwardedHeader) != ""
	rep, status, err := s.scheduleResponse(req, body, sim, forwarded)
	<-s.sem
	switch {
	case err != nil:
		writeJSON(w, status, errorResponse{err.Error()})
	case rep.raw != nil:
		// The fast lane (and the cluster proxy): pre-rendered wire bytes
		// — a memoized cache-hit body, or the owner's reply verbatim —
		// served without re-encoding anything.
		writeRawJSON(w, status, rep.raw)
	case rep.stream != nil:
		// The streaming lane: a reply whose embedded schedule is over the
		// threshold never materializes as one buffer — the envelope prefix
		// goes out first, then the memoized schedule bytes, then the
		// closing suffix.
		s.writeStreamed(w, status, rep.stream)
	default:
		writeJSON(w, http.StatusOK, rep.resp)
	}
}

// parseSimulateQuery reads the ?simulate=1 parameters of /v1/schedule:
// simulate turns measured evaluation of the served plan on, and trials
// (default 1, capped like a tune's eval block), backend (sim, gort or csim),
// objective (mean/worst/p95), fluct and seed shape it. nil means no
// simulation was requested.
func parseSimulateQuery(q url.Values) (*MeasuredEvaluator, error) {
	switch q.Get("simulate") {
	case "", "0", "false":
		return nil, nil
	case "1", "true":
	default:
		return nil, fmt.Errorf("simulate=%q (want 1 or 0)", q.Get("simulate"))
	}
	// The probe is an EvalRequest so the tune eval block's validator
	// enforces the caps — one validator, one set of error messages.
	req := EvalRequest{
		Mode:      "measured",
		Backend:   q.Get("backend"),
		Objective: q.Get("objective"),
	}
	for name, dst := range map[string]*int{"trials": &req.Trials, "fluct": &req.Fluct} {
		if s := q.Get(name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("%s=%q is not an integer", name, s)
			}
			*dst = v
		}
	}
	if s := q.Get("seed"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed=%q is not an integer", s)
		}
		req.Seed = seed
	}
	if req.Trials == 0 {
		req.Trials = 1 // a probe defaults to a single trial, not the tune default
	}
	if _, err := checkEvalRequest(&req); err != nil {
		return nil, err
	}
	// Transient: a simulate probe reports its measurement but never
	// annotates the plan or rewrites stored records — the reply is the
	// only place the numbers land.
	ev := req.measuredEvaluator()
	ev.Transient = true
	return ev, nil
}

// scheduleReply is the outcome of a schedule request's compute section.
// Exactly one field is set on success: pre-rendered wire bytes when the
// request rode the cache-hit fast lane or was proxied to its cluster
// owner, a split streamed reply when the embedded schedule is over the
// streaming threshold, a response value to encode otherwise.
type scheduleReply struct {
	raw    []byte
	stream *streamedReply
	resp   *ScheduleResponse
}

// scheduleResponse runs the compute section of a schedule request; on
// failure it returns the HTTP status to report.
func (s *Server) scheduleResponse(req *ScheduleRequest, rawBody []byte, sim *MeasuredEvaluator, forwarded bool) (scheduleReply, int, error) {
	compiled, err := s.pipe.Compile(req.Source)
	if err != nil {
		return scheduleReply{}, http.StatusUnprocessableEntity, err
	}
	opts, n := req.params()
	if err := checkGraphCaps(compiled.Graph.N(), n); err != nil {
		return scheduleReply{}, http.StatusRequestEntityTooLarge, err
	}

	// Cluster routing: a request for a key owned by a peer is served
	// from the local store when possible (the peer-fill tier makes that
	// one record fetch away), and forwarded to the owner otherwise, so
	// the owner's singleflight collapses cold misses fleet-wide.
	// Forwarded requests, simulate probes, and requests this node owns
	// all take the normal local path below; a failed forward degrades to
	// local computation — the cluster never refuses a request a single
	// node could have answered.
	if cl := s.cluster; cl != nil && sim == nil && !forwarded {
		key := PlanKey(compiled.Graph.Fingerprint(), opts, n)
		if !cl.Owns(key) {
			if plan, ok := s.pipe.Lookup(key); ok {
				return s.hitReply(plan, compiled.Loop.Name)
			}
			if status, body, ok := cl.Forward(key, rawBody); ok {
				// The owner's reply verbatim — including deterministic
				// owner-side errors (409 no-pattern, 422), which would
				// reproduce identically here.
				return scheduleReply{raw: body}, status, nil
			}
		}
	}

	plan, hit, err := s.pipe.Schedule(compiled.Graph, opts, n)
	if err != nil {
		if errors.Is(err, core.ErrNoPattern) {
			return scheduleReply{}, http.StatusConflict, err
		}
		return scheduleReply{}, http.StatusUnprocessableEntity, err
	}

	if hit && sim == nil {
		return s.hitReply(plan, compiled.Loop.Name)
	}

	var measured *MeasuredStats
	if sim != nil {
		score, err := s.pipe.Evaluate(sim, plan)
		if err != nil {
			return scheduleReply{}, http.StatusUnprocessableEntity, err
		}
		measured = score.Measured
	}

	resp, err := buildScheduleResponse(plan, compiled.Loop.Name, hit, measured)
	if err != nil {
		return scheduleReply{}, http.StatusInternalServerError, err
	}
	if st, ok, err := s.streamScheduleResponse(resp); err != nil {
		return scheduleReply{}, http.StatusInternalServerError, err
	} else if ok {
		return scheduleReply{stream: st}, http.StatusOK, nil
	}
	return scheduleReply{resp: resp}, http.StatusOK, nil
}

// hitReply serves a cache hit. Small plans go through the memoized
// pre-rendered hit body; plans whose schedule bytes are over the
// streaming threshold split for streaming instead — rendering (and
// memoizing) a multi-MB hit body would pin exactly the allocation the
// streaming path exists to avoid.
func (s *Server) hitReply(plan *Plan, loop string) (scheduleReply, int, error) {
	sched, err := plan.ScheduleJSON()
	if err != nil {
		return scheduleReply{}, http.StatusInternalServerError, err
	}
	if len(sched) > s.streamThreshold {
		resp, err := buildScheduleResponse(plan, loop, true, nil)
		if err != nil {
			return scheduleReply{}, http.StatusInternalServerError, err
		}
		st, _, err := s.streamScheduleResponse(resp)
		if err != nil {
			return scheduleReply{}, http.StatusInternalServerError, err
		}
		return scheduleReply{stream: st}, http.StatusOK, nil
	}
	body, err := renderHitBody(plan, loop)
	if err != nil {
		return scheduleReply{}, http.StatusInternalServerError, err
	}
	return scheduleReply{raw: body}, http.StatusOK, nil
}

// streamedReply is a schedule response split for streaming: the JSON
// envelope up to (and including) the `"schedule":` key, the memoized
// schedule bytes, and the closing `}` plus newline. Concatenated, the
// three parts are byte-identical to the buffered rendering — the
// schedule bytes are already compact JSON with nothing the encoder
// would re-escape (TestStreamedReplyByteIdentical pins this).
type streamedReply struct {
	prefix []byte
	sched  []byte
	suffix []byte
}

// streamedSuffix closes a streamed schedule reply: Schedule is the last
// envelope field, so after the raw schedule bytes only the object brace
// and writeJSON's newline framing remain.
var streamedSuffix = []byte("}\n")

// streamScheduleResponse splits resp for streaming when its embedded
// schedule exceeds the server's threshold. The split marshals the
// envelope with a nil schedule — yielding `…,"schedule":null}` — and
// strips the trailing `null}`, leaving everything up to the value
// position; the memoized schedule bytes then flow to the socket via
// io.Copy without ever joining the envelope in one buffer.
func (s *Server) streamScheduleResponse(resp *ScheduleResponse) (*streamedReply, bool, error) {
	if len(resp.Schedule) <= s.streamThreshold {
		return nil, false, nil
	}
	env := *resp
	sched := env.Schedule
	env.Schedule = nil
	data, err := json.Marshal(&env)
	if err != nil {
		return nil, false, err
	}
	tail := []byte("null}")
	if !bytes.HasSuffix(data, tail) {
		// Unreachable while Schedule stays the final, non-omitempty field
		// of ScheduleResponse; fail closed rather than emit a torn body.
		return nil, false, fmt.Errorf("schedule envelope does not end in %q", tail)
	}
	return &streamedReply{
		prefix: data[:len(data)-len(tail)],
		sched:  sched,
		suffix: streamedSuffix,
	}, true, nil
}

// writeStreamed writes a split schedule reply without ever buffering the
// whole body: the envelope prefix goes out and is flushed (first byte on
// the wire before any schedule copying starts), then the memoized
// schedule bytes, then the closing suffix. No Content-Length is set, so
// HTTP/1.1 replies go out chunked. The streamed / stream_bytes counters
// feed /v1/stats.
func (s *Server) writeStreamed(w http.ResponseWriter, status int, st *streamedReply) {
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	total, err := w.Write(st.prefix)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if err == nil {
		// bytes.Reader implements WriterTo, so io.Copy hands the schedule
		// slice to the socket in one Write — no intermediate copy window.
		n, cerr := io.Copy(w, bytes.NewReader(st.sched))
		total += int(n)
		err = cerr
	}
	if err == nil {
		n, _ := w.Write(st.suffix)
		total += n
	}
	s.streamed.Add(1)
	s.streamBytes.Add(uint64(total))
}

// renderHitBody returns the plan's memoized cache-hit wire bytes. The
// fast lane: every field of the hit response is a pure function of
// (plan, loop name), so the wire bytes are memoized on the plan itself
// — rendered on the first hit, invalidated when a measured annotation
// lands, byte-identical across repeat hits. ScheduleJSON was already
// memoized; this extends the idea to the whole envelope, fixing the
// latent double-encode where the embedded raw schedule was re-compacted
// through the outer marshal on every hit.
func renderHitBody(plan *Plan, loop string) ([]byte, error) {
	return plan.HitResponseBody(loop, func() ([]byte, error) {
		resp, err := buildScheduleResponse(plan, loop, true, nil)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		// writeJSON's encoder terminates bodies with a newline; the
		// pre-rendered body matches so hits and misses differ only in
		// content, never framing.
		return append(body, '\n'), nil
	})
}

// buildScheduleResponse assembles the /v1/schedule reply for a plan. The
// fast lane and the dynamic path both come through here, so the two can
// never drift apart field-wise.
func buildScheduleResponse(plan *Plan, loop string, hit bool, measured *MeasuredStats) (*ScheduleResponse, error) {
	sched, err := plan.ScheduleJSON()
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Loop:           loop,
		Nodes:          plan.Schedule.Graph.N(),
		GraphHash:      plan.GraphHash,
		Iterations:     plan.Iterations,
		Rate:           plan.Rate(),
		Makespan:       plan.Makespan(),
		CyclicProcs:    plan.Schedule.CyclicProcs,
		FlowInProcs:    plan.Schedule.FlowInProcs,
		FlowOutProcs:   plan.Schedule.FlowOutProcs,
		Folded:         plan.Schedule.Folded,
		GreedyFallback: plan.Schedule.GreedyFallback,
		CacheHit:       hit,
		Simulated:      measured,
		MeasuredBy:     plan.MeasuredAll(),
		Schedule:       sched,
		// The pattern summary is denormalized onto the plan so plans
		// loaded from a durable store serve the same block.
		Pattern: plan.Pattern(),
	}, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readPost(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	switch {
	case len(req.Items) == 0:
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty batch: want \"items\""})
		return
	case len(req.Items) > maxBatchItems:
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("batch has %d items, over the serving cap %d", len(req.Items), maxBatchItems)})
		return
	}
	if !s.admit(r) {
		return
	}
	resp := s.batchResponse(&req)
	<-s.sem
	writeJSON(w, http.StatusOK, resp)
}

// batchResponse validates, compiles and schedules every batch item with
// per-item error isolation: whatever goes wrong with one item lands in
// its own result slot and never affects the others.
func (s *Server) batchResponse(req *BatchRequest) *BatchResponse {
	resp := &BatchResponse{
		Count:   len(req.Items),
		Results: make([]BatchItemResult, len(req.Items)),
	}
	var items []BatchItem
	var idx []int // items[j] corresponds to Results[idx[j]]
	for i := range req.Items {
		it := &req.Items[i]
		out := &resp.Results[i]
		out.Index = i
		if strings.TrimSpace(it.Source) == "" {
			out.Error = "missing \"source\""
			continue
		}
		if _, err := it.check(); err != nil {
			out.Error = err.Error()
			continue
		}
		opts, n := it.params()
		compiled, err := s.pipe.Compile(it.Source)
		if err != nil {
			out.Error = err.Error()
			continue
		}
		if err := checkGraphCaps(compiled.Graph.N(), n); err != nil {
			out.Error = err.Error()
			continue
		}
		out.Loop = compiled.Loop.Name
		out.Nodes = compiled.Graph.N()
		out.Iterations = n
		items = append(items, BatchItem{Graph: compiled.Graph, Opts: opts, Iterations: n})
		idx = append(idx, i)
	}
	for j, br := range s.pipe.Batch(items, BatchOptions{Workers: aggregateWorkers}) {
		out := &resp.Results[idx[j]]
		if br.Err != nil {
			out.Error = br.Err.Error()
			continue
		}
		// Summaries are scored through the evaluator abstraction like
		// every other consumer of plan goodness (static here: batch
		// replies stay cheap, and static scoring cannot fail), so
		// Stats.Evals sees batch traffic too.
		score, _ := s.pipe.Evaluate(nil, br.Plan)
		out.GraphHash = br.Plan.GraphHash
		out.Rate = score.Rate
		out.Makespan = br.Plan.Makespan()
		out.Procs = score.Procs
		out.CacheHit = br.CacheHit
	}
	for i := range resp.Results {
		if resp.Results[i].Error == "" {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	return resp
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	body, ok := readPost(w, r)
	if !ok {
		return
	}
	var req TuneRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if status, err := checkTuneRequest(&req); err != nil {
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	if !s.admit(r) {
		return
	}
	resp, status, err := s.tuneResponse(&req)
	<-s.sem
	if err != nil {
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkTuneRequest validates a tune request against the serving caps
// before any compilation or scheduling work.
func checkTuneRequest(req *TuneRequest) (int, error) {
	if strings.TrimSpace(req.Source) == "" {
		return http.StatusBadRequest, errors.New("missing \"source\"")
	}
	if _, err := ParseObjective(req.Objective); err != nil {
		return http.StatusBadRequest, err
	}
	if req.Epsilon != nil && (*req.Epsilon < 0 || *req.Epsilon > 1) {
		return http.StatusBadRequest, fmt.Errorf("epsilon %v out of range [0, 1]", *req.Epsilon)
	}
	if req.SerialThreshold < 0 {
		return http.StatusBadRequest,
			fmt.Errorf("serial_threshold %d is negative", req.SerialThreshold)
	}
	_, n, _ := req.params()
	if status, err := checkScheduleParams(n, req.Processors, req.CommCosts, req.Grains); err != nil {
		return status, err
	}
	if status, err := checkEvalRequest(req.Eval); err != nil {
		return status, err
	}
	// The grid is sized as AutoTune will actually run it: an empty axis
	// takes its default length (at most 8 processor values, 4 comm
	// costs, 1 grain), so an explicit list on one axis cannot smuggle
	// an over-cap grid past a 0-length other axis.
	pl, kl, gl := len(req.Processors), len(req.CommCosts), len(req.Grains)
	if pl == 0 {
		pl = 8
	}
	if kl == 0 {
		kl = 4
	}
	if gl == 0 {
		gl = 1
	}
	if pl*kl*gl > maxTunePoints {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("tuning grid has %d points, over the serving cap %d", pl*kl*gl, maxTunePoints)
	}
	// The trial budget counts against the same grid sizing: points ×
	// trials bounds the total execution-backend runs a tune can demand.
	// The gort budget is far tighter than the simulator's — each cell is
	// a real goroutine execution on the serving host.
	cells := pl * kl * gl * req.Eval.trials()
	if req.Eval != nil && req.Eval.Backend == "gort" {
		if cells > maxGortTuneTrialCells {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("tune costs %d goroutine-runtime trials (points x trials), over the serving cap %d",
					cells, maxGortTuneTrialCells)
		}
	} else if cells > maxTuneTrialCells {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("tune costs %d simulation trials (points x trials), over the serving cap %d",
				cells, maxTuneTrialCells)
	}
	return checkSource(req.Source)
}

// calibrate substitutes the server's live fitted cost model into a
// measured evaluator that requested the csim backend without bringing a
// model of its own. With no Calibration configured (or none fitted yet)
// the evaluator keeps its zero model and csim degrades to raw sim — the
// request still succeeds, it just isn't scaled.
func (s *Server) calibrate(ev *MeasuredEvaluator) {
	if s.calib == nil {
		return
	}
	if cb, ok := ev.Backend.(exec.Calibrated); ok && cb.Model.IsZero() {
		if m, ok := s.calib.Model(); ok {
			ev.Backend = exec.Calibrated{Model: m}
		}
	}
}

// calibrated applies calibrate when the evaluator is measured; static
// evaluators pass through untouched.
func (s *Server) calibrated(ev Evaluator) Evaluator {
	if me, ok := ev.(*MeasuredEvaluator); ok {
		s.calibrate(me)
	}
	return ev
}

// tuneResponse runs the compute section of a tune request.
func (s *Server) tuneResponse(req *TuneRequest) (*TuneResponse, int, error) {
	compiled, err := s.pipe.Compile(req.Source)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	objective, n, eps := req.params()
	if err := checkGraphCaps(compiled.Graph.N(), n); err != nil {
		return nil, http.StatusRequestEntityTooLarge, err
	}
	tuned, err := s.pipe.AutoTune(compiled.Graph, n, TuneOptions{
		Processors:      req.Processors,
		CommCosts:       req.CommCosts,
		Grains:          req.Grains,
		SerialThreshold: req.SerialThreshold,
		Base:            core.Options{FoldNonCyclic: req.Fold},
		Objective:       objective,
		Epsilon:         eps,
		Workers:         aggregateWorkers,
		Evaluator:       s.calibrated(req.Eval.evaluator()),
	})
	if err != nil {
		if errors.Is(err, core.ErrNoPattern) {
			return nil, http.StatusConflict, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := &TuneResponse{
		Loop:           compiled.Loop.Name,
		Nodes:          compiled.Graph.N(),
		GraphHash:      tuned.Best.Plan.GraphHash,
		Objective:      tuned.Objective.String(),
		Evaluator:      tuned.Evaluator,
		Backend:        tuned.Backend,
		Best:           tunePoint(tuned.Best),
		Score:          tuned.Score,
		Evaluated:      tuned.Evaluated,
		SerialFallback: tuned.SerialFallback,
		Results:        make([]TunePointResult, len(tuned.Results)),
	}
	for i, tr := range tuned.Results {
		resp.Results[i] = tunePoint(tr)
	}
	return resp, http.StatusOK, nil
}

// tunePoint converts one sweep result to its wire form.
func tunePoint(r Result) TunePointResult {
	out := TunePointResult{
		Processors: r.Point.Processors,
		CommCost:   r.Point.CommCost,
		Grain:      r.Point.Grain,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	out.Rate = r.Rate
	out.Procs = r.Procs
	out.CacheHit = r.CacheHit
	out.Measured = r.Score.Measured
	return out
}

// parseScheduleRequest accepts either the JSON envelope or raw loop
// source (anything not starting with '{').
func parseScheduleRequest(body []byte) (*ScheduleRequest, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, errors.New("empty request body")
	}
	if trimmed[0] != '{' {
		return &ScheduleRequest{Source: string(trimmed)}, nil
	}
	var req ScheduleRequest
	if err := decodeStrict(trimmed, &req); err != nil {
		return nil, err
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, errors.New("missing \"source\"")
	}
	return &req, nil
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// content, so client typos fail loudly instead of being ignored. It
// reads body in place — no copies on the near-cap hot path.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return errors.New("trailing content after the request object")
	}
	return nil
}

// PlansResponse is the GET /v1/plans/{fingerprint} reply.
type PlansResponse struct {
	GraphHash string     `json:"graph_hash"`
	Count     int        `json:"count"`
	Plans     []PlanInfo `json:"plans"`
}

// PlansDeleteResponse is the DELETE /v1/plans/{fingerprint} reply.
type PlansDeleteResponse struct {
	GraphHash string `json:"graph_hash"`
	Deleted   int    `json:"deleted"`
}

// checkFingerprint validates the path parameter: graph fingerprints are
// lowercase hex SHA-256 (see graph.Fingerprint), so anything else can be
// rejected before touching the store.
func checkFingerprint(fp string) error {
	if len(fp) != 64 {
		return fmt.Errorf("fingerprint %q is not a 64-character sha256 hex digest", fp)
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("fingerprint %q is not lowercase hex", fp)
		}
	}
	return nil
}

// storedPlans lists the store's plans for one graph fingerprint. The
// boolean reports whether the store supports enumeration at all.
func (s *Server) storedPlans(fp string) ([]PlanInfo, bool) {
	lister, ok := s.pipe.Store().(PlanLister)
	if !ok {
		return nil, false
	}
	var out []PlanInfo
	for _, info := range lister.Plans() {
		if info.GraphHash == fp {
			out = append(out, info)
		}
	}
	return out, true
}

func (s *Server) handlePlansGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	if err := checkFingerprint(fp); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if key := r.URL.Query().Get("key"); key != "" {
		s.servePlanRecord(w, r, fp, key)
		return
	}
	plans, ok := s.storedPlans(fp)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{"the configured plan store cannot enumerate plans"})
		return
	}
	if len(plans) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"no stored plans for fingerprint " + fp})
		return
	}
	writeJSON(w, http.StatusOK, PlansResponse{GraphHash: fp, Count: len(plans), Plans: plans})
}

// servePlanRecord answers GET /v1/plans/{fingerprint}?key=... with the
// single stored plan under that full plan key, in the durable plan
// record format (the same bytes EncodePlan persists — DecodePlan
// re-validates key and graph content on the receiving side, so a
// corrupted or mismatched record can never poison a peer's cache).
// This is the peer-fill wire format of cluster mode, and works on any
// server regardless of cluster configuration.
func (s *Server) servePlanRecord(w http.ResponseWriter, r *http.Request, fp, key string) {
	if !strings.HasPrefix(key, fp) {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{"key does not start with the path fingerprint"})
		return
	}
	// A peer-originated fetch is answered only for keys this node owns:
	// the requester consulted its ring, so a non-owned key here means
	// the rings disagree, and answering (through this node's own peer
	// tier) could cascade fetches around the ring. Refusing bounds every
	// peer fetch to one hop.
	if r.Header.Get(PeerFetchHeader) != "" && s.cluster != nil && !s.cluster.Owns(key) {
		writeJSON(w, http.StatusNotFound, errorResponse{"this node does not own key " + key})
		return
	}
	// Stream the content-addressed record file straight to the socket
	// when the store can open it raw: no decode, no re-encode, no
	// record-sized buffer. The durable bytes are the wire format, so the
	// streamed reply matches the encode path byte for byte (plus the
	// newline framing both share); an exact Content-Length is known from
	// the file size, so this reply is never chunked. Any open failure
	// falls through to the decode-and-encode path below — a plan held
	// only in the memory tier is still served.
	if op, ok := s.pipe.Store().(RecordOpener); ok {
		if rc, size, err := op.OpenRecord(key); err == nil {
			defer rc.Close()
			h := w.Header()
			h["Content-Type"] = jsonContentType
			h["Content-Length"] = []string{strconv.FormatInt(size+1, 10)}
			w.WriteHeader(http.StatusOK)
			if n, err := io.Copy(w, rc); err == nil {
				_, _ = w.Write([]byte{'\n'})
				s.streamed.Add(1)
				s.streamBytes.Add(uint64(n) + 1)
			}
			return
		}
	}
	plan, ok := s.pipe.Store().Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"no stored plan for key " + key})
		return
	}
	rec, err := EncodePlan(plan)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeRawJSON(w, http.StatusOK, append(rec, '\n'))
}

func (s *Server) handlePlansDelete(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	if err := checkFingerprint(fp); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	plans, ok := s.storedPlans(fp)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{"the configured plan store cannot enumerate plans"})
		return
	}
	if len(plans) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"no stored plans for fingerprint " + fp})
		return
	}
	st := s.pipe.Store()
	for _, info := range plans {
		st.Delete(info.Key)
	}
	writeJSON(w, http.StatusOK, PlansDeleteResponse{GraphHash: fp, Deleted: len(plans)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET /v1/stats"})
		return
	}
	stats := s.pipe.Stats()
	var cluster *ClusterStats
	if s.cluster != nil {
		cs := s.cluster.ClusterStats()
		cluster = &cs
	}
	var calib *CalibStats
	if s.calib != nil {
		cs := s.calib.CalibStats()
		calib = &cs
	}
	writeJSON(w, http.StatusOK, struct {
		Stats
		HitRate float64 `json:"hit_rate"`
		// Streamed counts replies served through the streaming lane
		// (over-threshold schedules and raw record files), StreamBytes
		// their cumulative body bytes.
		Streamed    uint64        `json:"streamed"`
		StreamBytes uint64        `json:"stream_bytes"`
		Cluster     *ClusterStats `json:"cluster,omitempty"`
		Calib       *CalibStats   `json:"calib,omitempty"`
	}{stats, stats.HitRate(), s.streamed.Load(), s.streamBytes.Load(), cluster, calib})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// respBufPool recycles the encode buffers behind every dynamic JSON
// response. Encoding into a pooled buffer (instead of straight at the
// ResponseWriter) costs one copy to the socket but buys three things:
// steady-state responses reuse one grown buffer instead of re-growing
// per request, an encode error is caught before any status line is
// written, and the reply carries an exact Content-Length.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledRespBuf bounds what returns to the pool: a near-cap schedule
// reply runs to tens of MB, and parking buffers that size in the pool
// would pin the worst response ever served as permanent ballast.
const maxPooledRespBuf = 1 << 20

// writeJSON emits compact JSON: schedule replies embed up to hundreds of
// thousands of placements, and indentation would multiply their size.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Unreachable for the response types the handlers pass (all
		// marshal without error); keep the envelope contract anyway.
		status = http.StatusInternalServerError
		buf.Reset()
		_ = json.NewEncoder(buf).Encode(errorResponse{err.Error()})
	}
	writeRawJSON(w, status, buf.Bytes())
	if buf.Cap() <= maxPooledRespBuf {
		respBufPool.Put(buf)
	}
}

// jsonContentType is the shared Content-Type header value; assigning it
// directly (the keys are already canonical) spares the fast lane a
// per-request []string allocation and the MIME canonicalization walk.
var jsonContentType = []string{"application/json; charset=utf-8"}

// writeRawJSON writes pre-rendered response bytes (trailing newline
// included) without re-encoding — the cache-hit fast lane's exit. The
// explicit Content-Length keeps large replies out of chunked encoding.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = jsonContentType
	h["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
