package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"

	"mimdloop/internal/core"
)

// maxRequestBody bounds a schedule request: loop sources are tiny, so a
// megabyte is already generous.
const maxRequestBody = 1 << 20

// Server-side parameter caps: schedules cost O(iterations x nodes)
// placements (and the reply embeds them all), and the greedy scheduler
// considers every offered processor per placement, so an unauthenticated
// request must not pick unbounded values in any dimension — including the
// node count of the compiled graph, which also bounds the "sufficient"
// processor default.
// maxCommCost is deliberately small: the configuration-window height and
// drift bound both scale with k (see core.Options.withDefaults), making
// scheduling cost superlinear in k — k=10,000 already takes ~30s of CPU
// on a 5-node loop. The paper's experiments use k <= 7.
const (
	maxIterations = 10_000
	maxProcessors = 1024
	maxCommCost   = 256
	maxGraphNodes = 512
	maxPlacements = 500_000 // iterations x nodes ceiling

	// Pre-parse caps: compilation itself is superlinear in source size,
	// so the source is bounded cheaply before Compile runs. The loop
	// language puts one statement per line, so a line cap of twice the
	// node cap leaves comfortable room for braces and blank lines while
	// keeping worst-case compile (and compile-cache retention) small.
	maxSourceBytes = 64 << 10
	maxSourceLines = 2 * maxGraphNodes
)

// ScheduleRequest is the POST /v1/schedule body. The same fields are
// accepted as a JSON object; a body that does not start with '{' is taken
// to be raw loop source with default parameters.
type ScheduleRequest struct {
	// Source is the loop-language program to schedule.
	Source string `json:"source"`
	// CommCost is k (default 2, matching cmd/loopsched).
	CommCost *int `json:"comm_cost"`
	// Processors for the Cyclic subset (0 = sufficient).
	Processors int `json:"processors"`
	// Iterations to schedule (default 100).
	Iterations int `json:"iterations"`
	// Fold applies the Section 3 non-Cyclic folding heuristic.
	Fold bool `json:"fold"`
}

// ScheduleResponse is the POST /v1/schedule reply.
type ScheduleResponse struct {
	Loop       string  `json:"loop"`
	Nodes      int     `json:"nodes"`
	GraphHash  string  `json:"graph_hash"`
	Iterations int     `json:"iterations"`
	Rate       float64 `json:"rate_cycles_per_iteration"`
	Makespan   int     `json:"makespan"`

	CyclicProcs    int  `json:"cyclic_procs"`
	FlowInProcs    int  `json:"flow_in_procs"`
	FlowOutProcs   int  `json:"flow_out_procs"`
	Folded         bool `json:"folded"`
	GreedyFallback bool `json:"greedy_fallback"`

	Pattern *PatternInfo `json:"pattern,omitempty"`

	// CacheHit reports the plan was served without rescheduling.
	CacheHit bool `json:"cache_hit"`

	// Schedule is the composed schedule in the internal/plan wire format
	// (graph embedded, so the reply is self-contained).
	Schedule json.RawMessage `json:"schedule"`
}

// PatternInfo summarizes the verified steady state.
type PatternInfo struct {
	Cycles    int     `json:"cycles"`
	IterShift int     `json:"iter_shift"`
	Rate      float64 `json:"rate"`
	Forced    bool    `json:"forced"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Server exposes a Pipeline over HTTP:
//
//	POST /v1/schedule  schedule loop source, returning the JSON plan
//	GET  /v1/stats     cache-hit statistics
//	GET  /healthz      liveness probe
type Server struct {
	pipe *Pipeline
	mux  *http.ServeMux
	// sem bounds concurrent schedule computations: the per-request caps
	// bound individual cost, this bounds aggregate cost — N distinct
	// near-cap requests must not each hold an in-flight plan at once.
	sem chan struct{}
}

// NewServer wraps p in an http.Handler.
func NewServer(p *Pipeline) *Server {
	s := &Server{
		pipe: p,
		mux:  http.NewServeMux(),
		sem:  make(chan struct{}, 4*runtime.GOMAXPROCS(0)),
	}
	s.mux.HandleFunc("/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST a loop to /v1/schedule"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{"request body over 1 MiB"})
		return
	}
	req, err := parseScheduleRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	k := 2
	if req.CommCost != nil {
		k = *req.CommCost
	}
	n := req.Iterations
	if n == 0 {
		n = 100
	}
	switch {
	case n < 0 || n > maxIterations:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{fmt.Sprintf("iterations %d out of range [1, %d]", n, maxIterations)})
		return
	case req.Processors < 0 || req.Processors > maxProcessors:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{fmt.Sprintf("processors %d out of range [0, %d]", req.Processors, maxProcessors)})
		return
	case k < 0 || k > maxCommCost:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{fmt.Sprintf("comm_cost %d out of range [0, %d]", k, maxCommCost)})
		return
	}
	switch {
	case len(req.Source) > maxSourceBytes:
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("source is %d bytes, over the serving cap %d", len(req.Source), maxSourceBytes)})
		return
	case strings.Count(req.Source, "\n") >= maxSourceLines:
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("source has over %d lines, over the serving cap", maxSourceLines)})
		return
	}
	// Admission: compile, schedule, and marshal under the in-flight
	// bound, honoring client cancellation while queued. The slot is
	// released before the (possibly large, possibly slow) response write
	// so a stalled reader cannot starve scheduling.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	resp, status, err := s.scheduleResponse(req, k, n)
	<-s.sem
	if err != nil {
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// scheduleResponse runs the compute section of a schedule request; on
// failure it returns the HTTP status to report.
func (s *Server) scheduleResponse(req *ScheduleRequest, k, n int) (*ScheduleResponse, int, error) {
	compiled, err := s.pipe.Compile(req.Source)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	switch {
	case compiled.Graph.N() > maxGraphNodes:
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("loop has %d nodes, over the serving cap %d", compiled.Graph.N(), maxGraphNodes)
	case n*compiled.Graph.N() > maxPlacements:
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("iterations x nodes = %d over the serving cap %d", n*compiled.Graph.N(), maxPlacements)
	}
	opts := core.Options{Processors: req.Processors, CommCost: k, FoldNonCyclic: req.Fold}
	plan, hit, err := s.pipe.Schedule(compiled.Graph, opts, n)
	if err != nil {
		if errors.Is(err, core.ErrNoPattern) {
			return nil, http.StatusConflict, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}

	sched, err := plan.ScheduleJSON()
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	resp := &ScheduleResponse{
		Loop:           compiled.Loop.Name,
		Nodes:          compiled.Graph.N(),
		GraphHash:      plan.GraphHash,
		Iterations:     n,
		Rate:           plan.Rate(),
		Makespan:       plan.Makespan(),
		CyclicProcs:    plan.Schedule.CyclicProcs,
		FlowInProcs:    plan.Schedule.FlowInProcs,
		FlowOutProcs:   plan.Schedule.FlowOutProcs,
		Folded:         plan.Schedule.Folded,
		GreedyFallback: plan.Schedule.GreedyFallback,
		CacheHit:       hit,
		Schedule:       sched,
	}
	if pat := plan.Schedule.Pattern(); pat != nil {
		resp.Pattern = &PatternInfo{
			Cycles:    pat.Cycles(),
			IterShift: pat.IterShift,
			Rate:      pat.RatePerIteration(),
			Forced:    pat.Forced,
		}
	}
	return resp, http.StatusOK, nil
}

// parseScheduleRequest accepts either the JSON envelope or raw loop
// source (anything not starting with '{').
func parseScheduleRequest(body []byte) (*ScheduleRequest, error) {
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return nil, errors.New("empty request body")
	}
	if !strings.HasPrefix(trimmed, "{") {
		return &ScheduleRequest{Source: trimmed}, nil
	}
	var req ScheduleRequest
	dec := json.NewDecoder(strings.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return nil, errors.New("trailing content after the request object")
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, errors.New("missing \"source\"")
	}
	return &req, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET /v1/stats"})
		return
	}
	stats := s.pipe.Stats()
	writeJSON(w, http.StatusOK, struct {
		Stats
		HitRate float64 `json:"hit_rate"`
	}{stats, stats.HitRate()})
}

// writeJSON emits compact JSON: schedule replies embed up to hundreds of
// thousands of placements, and indentation would multiply their size.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
