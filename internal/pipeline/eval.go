package pipeline

import (
	"fmt"

	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
)

// Evaluator scores a plan's "goodness". Every consumer of plan quality —
// Sweep, AutoTune objectives, batch summaries, the HTTP tune endpoint,
// the experiments — goes through this interface instead of reading the
// scheduled rate directly, so how a plan is judged is a pluggable policy:
//
//   - StaticEvaluator reports the compile-time scheduled rate (the
//     paper's cycles/iteration from the verified pattern) — free, exact
//     for the cost model, blind to communication fluctuation.
//   - MeasuredEvaluator lowers the plan to per-processor programs and
//     executes them on the simulated MIMD machine for R seeded trials
//     under a fluctuation model, reporting what actually happens when the
//     communication estimate is wrong (the paper's Table 1 protocol).
//
// Evaluators must be pure per (evaluator value, plan): deterministic and
// safe for concurrent use, which is what lets Sweep fan evaluations out
// on a worker pool without changing results.
type Evaluator interface {
	// Name is the evaluator's wire name ("static", "measured"), echoed in
	// tune replies and stats.
	Name() string
	// Evaluate scores one plan. Implementations must not mutate the plan
	// beyond Plan.SetMeasured.
	Evaluate(p *Plan) (Score, error)
}

// Score is one evaluator's verdict on a plan. Rate is the quantity
// AutoTune objectives rank by: for StaticEvaluator it equals Plan.Rate()
// exactly; for MeasuredEvaluator it is the mean simulated makespan per
// iteration, so tuning optimizes measured Sp rather than the scheduled
// rate (Sp and Rate are inverse views of the same measurement: lower
// measured rate ⇔ higher measured Sp).
type Score struct {
	// Rate is cycles/iteration under this evaluator.
	Rate float64
	// Procs is the processors the plan occupies (same for all evaluators).
	Procs int
	// Measured carries the trial spread for evaluators that executed the
	// plan; nil for static scoring.
	Measured *MeasuredStats
}

// MeasuredStats is the wire form of a measured evaluation: the machine
// parameters it ran under and the Sp/makespan spread over the trials.
// It is embedded in tune replies, `?simulate=1` schedule replies, and
// version-2 plan records.
type MeasuredStats struct {
	// Trials, Fluct and Seed echo the evaluation parameters, making the
	// stats self-describing wherever they are persisted.
	Trials int   `json:"trials"`
	Fluct  int   `json:"fluct"`
	Seed   int64 `json:"seed"`
	// Sp spread: percentage parallelism vs the sequential schedule,
	// clamped at 0 like the paper's tables. SpMin corresponds to the
	// worst (largest) makespan.
	SpMin  float64 `json:"sp_min"`
	SpMean float64 `json:"sp_mean"`
	SpMax  float64 `json:"sp_max"`
	// Makespan spread over the trials, in cycles.
	MakespanMin  int     `json:"makespan_min"`
	MakespanMax  int     `json:"makespan_max"`
	MakespanMean float64 `json:"makespan_mean"`
	// Utilization is mean busy/(makespan×procs) over the trials.
	Utilization float64 `json:"utilization"`
}

// StaticEvaluator scores plans by their compile-time scheduled rate —
// the exact math Sweep and AutoTune used before evaluators existed,
// extracted behind the interface and test-pinned to produce identical
// results.
type StaticEvaluator struct{}

// Name implements Evaluator.
func (StaticEvaluator) Name() string { return "static" }

// Evaluate implements Evaluator.
func (StaticEvaluator) Evaluate(p *Plan) (Score, error) {
	return Score{Rate: p.Rate(), Procs: p.Procs()}, nil
}

// MeasuredEvaluator scores plans by executing their lowered programs on
// the simulated MIMD machine (internal/machine) for Trials repeated runs
// under a seeded fluctuation model. The returned Score.Rate is the mean
// measured makespan per iteration, so AutoTune under any objective ranks
// by what the machine actually did — including communication-cost
// fluctuation the static cost model cannot see. Evaluations are
// deterministic per (evaluator, plan) and safe to run concurrently.
type MeasuredEvaluator struct {
	// Trials is the number of seeded runs to aggregate. 0 means 5.
	Trials int
	// Fluct is the paper's mm: per-message extra delay in [0, mm-1].
	Fluct int
	// Seed selects the fluctuation streams (trial t runs under
	// machine.TrialSeed(Seed, t)).
	Seed int64
	// Base supplies the remaining machine settings (LinkFIFO, Override);
	// its Fluct and Seed fields are overwritten by the evaluator's own.
	Base machine.Config
	// Transient marks a probe: the plan is measured and the score
	// reported, but the plan is not annotated and nothing is persisted.
	// The /v1/schedule?simulate=1 path sets it so an ad-hoc 1-trial
	// probe never overwrites a tune's stored measurement.
	Transient bool
}

// DefaultEvalTrials is the trial count a measured evaluation runs when
// none is given — here, in the HTTP eval block, and in the CLI.
const DefaultEvalTrials = 5

// NewMeasuredEvaluator returns a measured evaluator running `trials`
// seeded simulations per plan with fluctuation mm.
func NewMeasuredEvaluator(trials, fluct int, seed int64) *MeasuredEvaluator {
	return &MeasuredEvaluator{Trials: trials, Fluct: fluct, Seed: seed}
}

// Name implements Evaluator.
func (e *MeasuredEvaluator) Name() string { return "measured" }

// Evaluate implements Evaluator: it runs the plan's programs through
// machine.RunTrials and converts the makespan spread to Sp against the
// sequential schedule of the plan's own graph and iteration count. The
// stats are also attached to the plan (Plan.Measured), so durable stores
// persist the last measurement alongside the schedule (plan codec v2).
func (e *MeasuredEvaluator) Evaluate(p *Plan) (Score, error) {
	trials := e.Trials
	if trials == 0 {
		trials = DefaultEvalTrials
	}
	// Without fluctuation every trial is bit-identical (FluctModel is the
	// only per-trial variation), so one run measures them all — the
	// spread collapses and the stats honestly report the single trial.
	if e.Fluct <= 1 {
		trials = 1
	}
	g := p.Schedule.Graph
	cfg := e.Base
	cfg.Fluct = e.Fluct
	cfg.Seed = e.Seed
	ts, err := machine.RunTrials(g, p.Programs, cfg, trials)
	if err != nil {
		return Score{}, fmt.Errorf("pipeline: measured evaluation: %w", err)
	}
	if p.Iterations <= 0 {
		return Score{}, fmt.Errorf("pipeline: measured evaluation of a %d-iteration plan", p.Iterations)
	}
	seq := p.Iterations * g.TotalLatency()
	ms := &MeasuredStats{
		Trials:       ts.Trials,
		Fluct:        e.Fluct,
		Seed:         e.Seed,
		SpMin:        metrics.ClampZero(metrics.PercentParallelism(seq, ts.MakespanMax)),
		SpMean:       metrics.ClampZero(metrics.PercentParallelismF(seq, ts.MakespanMean)),
		SpMax:        metrics.ClampZero(metrics.PercentParallelism(seq, ts.MakespanMin)),
		MakespanMin:  ts.MakespanMin,
		MakespanMax:  ts.MakespanMax,
		MakespanMean: ts.MakespanMean,
		Utilization:  ts.Utilization,
	}
	if !e.Transient {
		p.SetMeasured(ms)
	}
	return Score{
		Rate:     ts.MakespanMean / float64(p.Iterations),
		Procs:    p.Procs(),
		Measured: ms,
	}, nil
}

// Evaluate scores plan under ev (nil means StaticEvaluator), counting
// the evaluation — and, for measured evaluators, its trials — in the
// pipeline's Stats. All pipeline consumers (Sweep, AutoTune, the HTTP
// server's tune/simulate/batch paths) evaluate through here, so the
// counters are a complete picture of scoring activity.
func (p *Pipeline) Evaluate(ev Evaluator, plan *Plan) (Score, error) {
	if ev == nil {
		ev = StaticEvaluator{}
	}
	prev := plan.Measured()
	score, err := ev.Evaluate(plan)
	if err != nil {
		return score, err
	}
	if score.Measured != nil {
		p.measuredEvals.Add(1)
		p.evalTrials.Add(uint64(score.Measured.Trials))
		// Re-put the plan when the evaluation annotated it (transient
		// probes do not), so durable tiers rewrite its record with the
		// measurement: the original Put ran at compute time, before any
		// evaluation, so without this write-through the codec's v2
		// measured block would never reach disk. Repeat evaluations are
		// deterministic, so an unchanged annotation skips the rewrite
		// (with a disk tier each Put is an fsync'd file).
		if m := plan.Measured(); m != nil && !p.cfg.DisableCache && (prev == nil || *prev != *m) {
			p.store.Put(PlanKey(plan.GraphHash, plan.Opts, plan.Iterations), plan)
		}
	} else {
		p.staticEvals.Add(1)
	}
	return score, nil
}
