package pipeline

import (
	"fmt"

	"mimdloop/internal/exec"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
)

// Evaluator scores a plan's "goodness". Every consumer of plan quality —
// Sweep, AutoTune objectives, batch summaries, the HTTP tune endpoint,
// the experiments — goes through this interface instead of reading the
// scheduled rate directly, so how a plan is judged is a pluggable policy:
//
//   - StaticEvaluator reports the compile-time scheduled rate (the
//     paper's cycles/iteration from the verified pattern) — free, exact
//     for the cost model, blind to communication fluctuation.
//   - MeasuredEvaluator lowers the plan to per-processor programs and
//     executes them on a pluggable exec.Backend for R trials — the
//     deterministic simulated MIMD machine under a seeded fluctuation
//     model ("sim", the paper's Table 1 protocol), or the real
//     goroutine-per-processor runtime timed on the wall clock ("gort").
//
// Static and sim-backend evaluators are pure per (evaluator value, plan):
// deterministic and safe for concurrent use, which is what lets Sweep fan
// evaluations out on a worker pool without changing results. The gort
// backend is safe for concurrent use but measures wall-clock time, so its
// scores are honest samples rather than replayable constants.
type Evaluator interface {
	// Name is the evaluator's wire name ("static", "measured"), echoed in
	// tune replies and stats.
	Name() string
	// Evaluate scores one plan. Implementations must not mutate the plan
	// beyond Plan.SetMeasured.
	Evaluate(p *Plan) (Score, error)
}

// Score is one evaluator's verdict on a plan. Rate is the quantity
// AutoTune objectives rank by: for StaticEvaluator it equals Plan.Rate()
// exactly; for MeasuredEvaluator it is the selected statistic of the
// measured makespan distribution per iteration (mean by default, worst
// or p95 under a spread-aware EvalObjective), so tuning optimizes
// measured Sp rather than the scheduled rate (Sp and Rate are inverse
// views of the same measurement: lower measured rate ⇔ higher measured
// Sp).
type Score struct {
	// Rate is cycles/iteration under this evaluator (backend-native
	// units per iteration for measured scores: cycles for sim,
	// nanoseconds for gort).
	Rate float64
	// Procs is the processors the plan occupies (same for all evaluators).
	Procs int
	// Measured carries the trial spread for evaluators that executed the
	// plan; nil for static scoring.
	Measured *MeasuredStats
}

// MeasuredStats is the wire form of a measured evaluation: which backend
// ran it, the parameters it ran under and the Sp/makespan spread over
// the trials. It is embedded in tune replies, `?simulate=1` schedule
// replies, and version-3 plan records. Makespans are in the backend's
// native units (sim: cycles, gort: wall-clock nanoseconds); Sp is
// unit-free and comparable across backends.
type MeasuredStats struct {
	// Backend identifies the execution model that produced the stats
	// ("sim", "gort"). Empty in records written before the backend layer
	// existed; DecodePlan normalizes those to "sim", the only backend
	// that could have produced them.
	Backend string `json:"backend,omitempty"`
	// Trials, Fluct and Seed echo the evaluation parameters, making the
	// stats self-describing wherever they are persisted. Fluct and Seed
	// are sim-backend concepts; the gort backend's variation is physical.
	Trials int   `json:"trials"`
	Fluct  int   `json:"fluct"`
	Seed   int64 `json:"seed"`
	// Sp spread: percentage parallelism vs the sequential schedule,
	// clamped at 0 like the paper's tables. SpMin corresponds to the
	// worst (largest) makespan; SpP95 to the nearest-rank 95th-percentile
	// makespan (the near-worst tail the p95 objective ranks by).
	SpMin  float64 `json:"sp_min"`
	SpMean float64 `json:"sp_mean"`
	SpP95  float64 `json:"sp_p95"`
	SpMax  float64 `json:"sp_max"`
	// Makespan spread over the trials, in the backend's native units.
	MakespanMin  int     `json:"makespan_min"`
	MakespanMax  int     `json:"makespan_max"`
	MakespanMean float64 `json:"makespan_mean"`
	MakespanP95  float64 `json:"makespan_p95"`
	// Utilization is mean busy/(makespan×procs) over the trials; 0 when
	// the backend cannot account it (gort).
	Utilization float64 `json:"utilization"`
}

// EvalObjective selects which statistic of the measured makespan
// distribution a MeasuredEvaluator reports as its Score.Rate — and
// therefore what AutoTune optimizes when tuning measured. The spread
// matters because two plans with equal mean Sp can differ wildly in how
// badly their worst trials degrade (cf. the run-it-both-ways validation
// stance of McKenney, arXiv:1701.00854).
type EvalObjective int

const (
	// EvalMean ranks by the mean makespan — the PR 4 behaviour, and the
	// default.
	EvalMean EvalObjective = iota
	// EvalWorst ranks by the worst (largest) trial makespan: optimize
	// what the unluckiest run delivers.
	EvalWorst
	// EvalP95 ranks by the nearest-rank 95th-percentile makespan: the
	// tail-latency view; robust to a single outlier trial.
	EvalP95
)

// String returns the wire name of the objective ("mean", "worst", "p95").
func (o EvalObjective) String() string {
	switch o {
	case EvalMean:
		return "mean"
	case EvalWorst:
		return "worst"
	case EvalP95:
		return "p95"
	}
	return fmt.Sprintf("eval_objective(%d)", int(o))
}

// ParseEvalObjective is the inverse of EvalObjective.String; "" means
// EvalMean.
func ParseEvalObjective(s string) (EvalObjective, error) {
	switch s {
	case "", "mean":
		return EvalMean, nil
	case "worst":
		return EvalWorst, nil
	case "p95":
		return EvalP95, nil
	}
	return 0, fmt.Errorf("unknown eval objective %q (want mean, worst or p95)", s)
}

// StaticEvaluator scores plans by their compile-time scheduled rate —
// the exact math Sweep and AutoTune used before evaluators existed,
// extracted behind the interface and test-pinned to produce identical
// results.
type StaticEvaluator struct{}

// Name implements Evaluator.
func (StaticEvaluator) Name() string { return "static" }

// Evaluate implements Evaluator.
func (StaticEvaluator) Evaluate(p *Plan) (Score, error) {
	return Score{Rate: p.Rate(), Procs: p.Procs()}, nil
}

// MeasuredEvaluator scores plans by executing their lowered programs on
// an exec.Backend for Trials repeated runs. With the default sim backend
// the trials run on the simulated MIMD machine under a seeded
// fluctuation model — deterministic per (evaluator, plan) and safe to
// run concurrently. With the gort backend they run for real on the
// goroutine-per-processor runtime, timed on the wall clock and
// value-checked against the sequential interpretation. The returned
// Score.Rate is the Objective's statistic of the measured makespan
// distribution per iteration, so AutoTune under any objective ranks by
// what the chosen execution model actually did.
type MeasuredEvaluator struct {
	// Trials is the number of runs to aggregate. 0 means 5. The backend
	// may collapse the count (the sim backend runs one trial when
	// fluctuation is off — every trial would be bit-identical).
	Trials int
	// Fluct is the paper's mm: per-message extra delay in [0, mm-1]
	// (sim backend only).
	Fluct int
	// Seed selects the fluctuation streams (sim backend only; trial t
	// runs under machine.TrialSeed(Seed, t)).
	Seed int64
	// Base supplies the remaining machine settings (LinkFIFO, Override)
	// for the sim backend; its Fluct and Seed fields are overwritten by
	// the evaluator's own.
	Base machine.Config
	// Backend selects the execution model. nil means exec.Sim — the
	// simulated machine, byte-for-byte the pre-backend behaviour.
	Backend exec.Backend
	// Objective selects the distribution statistic Score.Rate reports:
	// mean (default), worst, or p95.
	Objective EvalObjective
	// Transient marks a probe: the plan is measured and the score
	// reported, but the plan is not annotated and nothing is persisted.
	// The /v1/schedule?simulate=1 path sets it so an ad-hoc 1-trial
	// probe never overwrites a tune's stored measurement.
	Transient bool
}

// DefaultEvalTrials is the trial count a measured evaluation runs when
// none is given — here, in the HTTP eval block, and in the CLI.
const DefaultEvalTrials = 5

// NewMeasuredEvaluator returns a measured evaluator running `trials`
// seeded simulations per plan with fluctuation mm on the sim backend.
func NewMeasuredEvaluator(trials, fluct int, seed int64) *MeasuredEvaluator {
	return &MeasuredEvaluator{Trials: trials, Fluct: fluct, Seed: seed}
}

// Name implements Evaluator.
func (e *MeasuredEvaluator) Name() string { return "measured" }

// backend resolves the evaluator's execution model (nil = sim).
func (e *MeasuredEvaluator) backend() exec.Backend {
	if e.Backend != nil {
		return e.Backend
	}
	return exec.Sim{}
}

// BackendName returns the wire name of the evaluator's execution model.
func (e *MeasuredEvaluator) BackendName() string { return e.backend().Name() }

// Deterministic reports whether repeated evaluations replay identical
// scores — the backend's own determinism. Sweep serializes evaluation
// when this is false, so wall-clock measurements never time each other's
// CPU contention.
func (e *MeasuredEvaluator) Deterministic() bool { return e.backend().Deterministic() }

// EffectiveTrials resolves the trial count the evaluation will actually
// run (and should be billed at): the default applied, then the backend's
// collapse rule — the sim backend runs a single trial when fluctuation
// is off, since every trial would be bit-identical. This is the one
// place the collapse lives; library, CLI and HTTP callers all share it.
func (e *MeasuredEvaluator) EffectiveTrials() int {
	trials := e.Trials
	if trials == 0 {
		trials = DefaultEvalTrials
	}
	return e.backend().EffectiveTrials(trials, e.Fluct)
}

// Evaluate implements Evaluator: it runs the plan's programs through the
// backend's trial harness and converts the makespan spread to Sp against
// the backend's own sequential baseline (the sequential schedule length
// for sim, a timed sequential interpretation for gort). The stats are
// also attached to the plan under the backend's name (Plan.SetMeasured),
// so durable stores persist the last measurement per backend alongside
// the schedule (plan codec v3) — a gort measurement never overwrites a
// sim one, or vice versa.
func (e *MeasuredEvaluator) Evaluate(p *Plan) (Score, error) {
	if p.Iterations <= 0 {
		return Score{}, fmt.Errorf("pipeline: measured evaluation of a %d-iteration plan", p.Iterations)
	}
	be := e.backend()
	cfg := exec.TrialConfig{
		Trials:  e.EffectiveTrials(),
		Fluct:   e.Fluct,
		Seed:    e.Seed,
		Grain:   p.Opts.Grain,
		Machine: e.Base,
	}
	ts, err := be.RunTrials(p.Schedule.Graph, p.Programs, p.Iterations, cfg)
	if err != nil {
		return Score{}, fmt.Errorf("pipeline: measured evaluation: %w", err)
	}
	seq := ts.Sequential
	sp := func(par float64) float64 {
		return metrics.ClampZero(metrics.PercentParallelismFloat(seq, par))
	}
	ms := &MeasuredStats{
		Backend:      ts.Backend,
		Trials:       ts.Trials,
		Fluct:        e.Fluct,
		Seed:         e.Seed,
		SpMin:        sp(ts.Max()),
		SpMean:       sp(ts.Mean()),
		SpP95:        sp(ts.P95()),
		SpMax:        sp(ts.Min()),
		MakespanMin:  int(ts.Min()),
		MakespanMax:  int(ts.Max()),
		MakespanMean: ts.Mean(),
		MakespanP95:  ts.P95(),
		Utilization:  ts.Utilization,
	}
	if !e.Transient {
		p.SetMeasured(ms)
	}
	ranked := ts.Mean()
	switch e.Objective {
	case EvalWorst:
		ranked = ts.Max()
	case EvalP95:
		ranked = ts.P95()
	}
	return Score{
		Rate:     ranked / float64(p.Iterations),
		Procs:    p.Procs(),
		Measured: ms,
	}, nil
}

// Evaluate scores plan under ev (nil means StaticEvaluator), counting
// the evaluation — and, for measured evaluators, its trials — in the
// pipeline's Stats. All pipeline consumers (Sweep, AutoTune, the HTTP
// server's tune/simulate/batch paths) evaluate through here, so the
// counters are a complete picture of scoring activity.
func (p *Pipeline) Evaluate(ev Evaluator, plan *Plan) (Score, error) {
	if ev == nil {
		ev = StaticEvaluator{}
	}
	var prev *MeasuredStats
	if me, ok := ev.(*MeasuredEvaluator); ok {
		prev = plan.MeasuredBy(me.BackendName())
	}
	score, err := ev.Evaluate(plan)
	if err != nil {
		return score, err
	}
	if score.Measured != nil {
		p.measuredEvals.Add(1)
		p.evalTrials.Add(uint64(score.Measured.Trials))
		// Re-put the plan when the evaluation annotated it (transient
		// probes do not), so durable tiers rewrite its record with the
		// measurement: the original Put ran at compute time, before any
		// evaluation, so without this write-through the codec's measured
		// block would never reach disk. Sim evaluations are
		// deterministic, so an unchanged annotation skips the rewrite
		// (with a disk tier each Put is an fsync'd file).
		if m := plan.MeasuredBy(score.Measured.Backend); m != nil && !p.cfg.DisableCache && (prev == nil || *prev != *m) {
			p.store.Put(PlanKey(plan.GraphHash, plan.Opts, plan.Iterations), plan)
		}
	} else {
		p.staticEvals.Add(1)
	}
	return score, nil
}
