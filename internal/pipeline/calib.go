package pipeline

import "mimdloop/internal/exec"

// Calibration is the seam serve mode uses to plug a live fitted cost
// model into the server: any measured evaluation requesting the "csim"
// backend with no model of its own gets the provider's current fit
// substituted, and /v1/stats reports the profile's health. Like
// ScheduleForwarder, the interface is declared here rather than in the
// implementing package because internal/calib imports pipeline (for
// this stats type); the standard implementation is calib.Manager, which
// also persists profiles beside the disk plan store and refreshes them
// from a background goroutine under `loopsched serve -calibrate-every`.
//
// Implementations must be safe for concurrent use: Model is read on
// every csim tune while a refresh may be storing a new fit.
type Calibration interface {
	// Model returns the current fitted cost model, false when no
	// profile has been loaded or fitted yet.
	Model() (exec.CostModel, bool)
	// CalibStats snapshots the profile's health for /v1/stats.
	CalibStats() CalibStats
}

// CalibStats is the "calib" block of /v1/stats: the age and fit quality
// of the profile csim evaluations are being scaled by, and how many
// background refreshes have replaced it since startup.
type CalibStats struct {
	// Present reports whether a fitted profile is live (false: csim
	// requests degrade to raw sim).
	Present bool `json:"present"`
	// AgeSeconds is the time since the live profile was fitted.
	AgeSeconds float64 `json:"age_seconds"`
	// Samples is the number of probe observations behind the fit.
	Samples int `json:"samples"`
	// RMSENs is the fit's root-mean-square residual in nanoseconds.
	RMSENs float64 `json:"rmse_ns"`
	// FitError is the mean absolute relative residual (0.10 = the model
	// mispredicts probe makespans by 10% on average).
	FitError float64 `json:"fit_error"`
	// Refreshes counts successful profile replacements since startup.
	Refreshes uint64 `json:"refreshes"`
	// Model echoes the live coefficients.
	Model exec.CostModel `json:"model"`
}
