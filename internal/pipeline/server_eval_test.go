package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServerTuneMeasured(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
		Source:     fig7Source,
		Processors: []int{1, 2, 3},
		CommCosts:  []int{2, 3},
		Eval:       &EvalRequest{Mode: "measured", Trials: 5, Fluct: 3, Seed: 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out TuneResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.Evaluator != "measured" {
		t.Fatalf("evaluator echo %q", out.Evaluator)
	}
	if out.Best.Measured == nil || out.Best.Measured.Trials != 5 || out.Best.Measured.Fluct != 3 {
		t.Fatalf("best carries no measured stats: %+v", out.Best)
	}
	for _, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("point %+v failed: %s", r, r.Error)
		}
		m := r.Measured
		if m == nil {
			t.Fatalf("point p=%d k=%d has no measured block", r.Processors, r.CommCost)
		}
		if m.SpMin > m.SpMean || m.SpMean > m.SpMax || m.MakespanMin > m.MakespanMax {
			t.Fatalf("spread out of order: %+v", m)
		}
		if r.Rate == 0 {
			t.Fatal("static rate missing from measured tune point")
		}
	}
	// The best point's measured Sp is the grid's maximum under min_rate.
	for _, r := range out.Results {
		if r.Measured.SpMean > out.Best.Measured.SpMean {
			t.Fatalf("point p=%d k=%d Sp %.2f beats the winner's %.2f",
				r.Processors, r.CommCost, r.Measured.SpMean, out.Best.Measured.SpMean)
		}
	}

	// A static tune of the same loop carries no measured blocks.
	resp, data = postJSON(t, srv, "/v1/tune", TuneRequest{
		Source: fig7Source, Processors: []int{1, 2}, CommCosts: []int{2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("static status %d: %s", resp.StatusCode, data)
	}
	var static TuneResponse
	if err := json.Unmarshal(data, &static); err != nil {
		t.Fatal(err)
	}
	if static.Evaluator != "static" || static.Best.Measured != nil {
		t.Fatalf("static tune: evaluator %q, measured %+v", static.Evaluator, static.Best.Measured)
	}
}

func TestServerTuneEvalCaps(t *testing.T) {
	srv := NewServer(New(Config{}))
	for _, tc := range []struct {
		name   string
		eval   *EvalRequest
		status int
	}{
		{"unknown mode", &EvalRequest{Mode: "oracle"}, http.StatusBadRequest},
		{"trials over cap", &EvalRequest{Mode: "measured", Trials: maxEvalTrials + 1}, http.StatusBadRequest},
		{"negative trials", &EvalRequest{Mode: "measured", Trials: -1}, http.StatusBadRequest},
		{"fluct over cap", &EvalRequest{Mode: "measured", Fluct: maxEvalFluct + 1}, http.StatusBadRequest},
		{"trial budget", &EvalRequest{Mode: "measured", Trials: 32, Fluct: 3}, http.StatusRequestEntityTooLarge},
	} {
		req := TuneRequest{Source: fig7Source, Eval: tc.eval}
		if tc.name == "trial budget" {
			// 64 points x 32 trials = 2048 > 1024, grid itself under cap.
			req.Processors = []int{1, 2, 3, 4, 5, 2, 3, 4}
			req.CommCosts = []int{1, 2, 3, 4, 1, 2, 3, 4}
		} else {
			req.Processors = []int{2}
			req.CommCosts = []int{2}
		}
		resp, data := postJSON(t, srv, "/v1/tune", req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
	// A static tune ignores the trial budget entirely: the full 128-point
	// grid stays admissible.
	req := TuneRequest{Source: fig7Source}
	resp, data := postJSON(t, srv, "/v1/tune", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default static tune rejected: %d %s", resp.StatusCode, data)
	}
	// Fluctuation-free measured tuning collapses to one trial per point,
	// and the budget bills what actually runs: a request that would blow
	// the budget at face value (32 default points x 16 requested trials)
	// is admitted because it costs 32 simulations.
	resp, data = postJSON(t, srv, "/v1/tune", TuneRequest{
		Source: fig7Source,
		Eval:   &EvalRequest{Mode: "measured", Trials: 16, Fluct: 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fluct-free measured tune over-billed: %d %s", resp.StatusCode, data)
	}
}

// TestServerTuneGortBackend is the end-to-end acceptance pin: a tune
// with eval.backend=gort ranks the grid on the real goroutine runtime,
// echoes the backend identity, returns a winner whose measured block
// carries it — and the annotation persists through the plan store.
func TestServerTuneGortBackend(t *testing.T) {
	pipe := New(Config{})
	srv := NewServer(pipe)
	resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
		Source:     fig7Source,
		Processors: []int{1, 2},
		CommCosts:  []int{2},
		Eval:       &EvalRequest{Mode: "measured", Backend: "gort", Objective: "worst", Trials: 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out TuneResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.Evaluator != "measured" || out.Backend != "gort" {
		t.Fatalf("echo: evaluator %q backend %q", out.Evaluator, out.Backend)
	}
	if out.Best.Measured == nil || out.Best.Measured.Backend != "gort" || out.Best.Measured.Trials != 2 {
		t.Fatalf("winner's measured block: %+v", out.Best.Measured)
	}
	for _, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("point %+v failed: %s", r, r.Error)
		}
		if r.Measured == nil || r.Measured.Backend != "gort" {
			t.Fatalf("point p=%d k=%d measured block: %+v", r.Processors, r.CommCost, r.Measured)
		}
		if r.Measured.MakespanMin <= 0 {
			t.Fatalf("implausible wall-clock makespan: %+v", r.Measured)
		}
	}
	// The annotation reached the plan store under the backend's name.
	lister := pipe.Store().(PlanLister)
	annotated := 0
	for _, info := range lister.Plans() {
		plan, ok := pipe.Store().Get(info.Key)
		if !ok {
			t.Fatalf("stored plan %q vanished", info.Key)
		}
		if m := plan.MeasuredBy("gort"); m != nil {
			annotated++
			if m.Backend != "gort" {
				t.Fatalf("stored annotation backend %q", m.Backend)
			}
		}
	}
	if annotated != len(out.Results) {
		t.Fatalf("%d stored plans carry the gort annotation, want %d", annotated, len(out.Results))
	}
}

// TestServerGortCaps: the goroutine backend's tighter serving caps and
// parameter rules reject before any real execution.
func TestServerGortCaps(t *testing.T) {
	srv := NewServer(New(Config{}))
	for _, tc := range []struct {
		name   string
		req    TuneRequest
		status int
	}{
		{"unknown backend",
			TuneRequest{Source: fig7Source, Processors: []int{2}, CommCosts: []int{2},
				Eval: &EvalRequest{Mode: "measured", Backend: "fpga"}},
			http.StatusBadRequest},
		{"unknown objective",
			TuneRequest{Source: fig7Source, Processors: []int{2}, CommCosts: []int{2},
				Eval: &EvalRequest{Mode: "measured", Objective: "median"}},
			http.StatusBadRequest},
		{"gort trials over cap",
			TuneRequest{Source: fig7Source, Processors: []int{2}, CommCosts: []int{2},
				Eval: &EvalRequest{Mode: "measured", Backend: "gort", Trials: maxGortEvalTrials + 1}},
			http.StatusBadRequest},
		{"gort rejects fluct",
			TuneRequest{Source: fig7Source, Processors: []int{2}, CommCosts: []int{2},
				Eval: &EvalRequest{Mode: "measured", Backend: "gort", Fluct: 3}},
			http.StatusBadRequest},
		{"gort trial budget",
			// 24 points x 3 trials = 72 > 64, admissible on the sim budget.
			TuneRequest{Source: fig7Source,
				Processors: []int{1, 2, 3, 4, 5, 1, 2, 3}, CommCosts: []int{1, 2, 3},
				Eval: &EvalRequest{Mode: "measured", Backend: "gort", Trials: 3}},
			http.StatusRequestEntityTooLarge},
		{"same budget fine on sim",
			TuneRequest{Source: fig7Source,
				Processors: []int{1, 2, 3, 4, 5, 1, 2, 3}, CommCosts: []int{1, 2, 3},
				Eval: &EvalRequest{Mode: "measured", Fluct: 3, Trials: 3}},
			http.StatusOK},
	} {
		resp, data := postJSON(t, srv, "/v1/tune", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
}

// TestServerScheduleSimulateGort: the ?simulate=1 probe runs on the
// goroutine backend when asked, reporting wall-clock stats without
// annotating the served plan.
func TestServerScheduleSimulateGort(t *testing.T) {
	pipe := New(Config{})
	srv := NewServer(pipe)
	body, err := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost,
		"/v1/schedule?simulate=1&backend=gort&objective=worst&trials=2", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var out ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	sim := out.Simulated
	if sim == nil || sim.Backend != "gort" || sim.Trials != 2 || sim.MakespanMin <= 0 {
		t.Fatalf("simulated block %+v", sim)
	}
	// Transient: the probe never annotated the stored plan.
	for _, info := range pipe.Store().(PlanLister).Plans() {
		plan, _ := pipe.Store().Get(info.Key)
		if plan != nil && plan.MeasuredBy("gort") != nil {
			t.Fatal("gort probe annotated the stored plan")
		}
	}
}

func TestServerScheduleSimulate(t *testing.T) {
	srv := NewServer(New(Config{}))
	body, err := json.Marshal(ScheduleRequest{Source: fig7Source, Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	post := func(query string) (*http.Response, []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule"+query, strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Result(), rec.Body.Bytes()
	}

	resp, data := post("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Simulated != nil {
		t.Fatal("unsolicited simulation in plain reply")
	}

	resp, data = post("?simulate=1&trials=4&fluct=3&seed=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	sim := out.Simulated
	if sim == nil || sim.Trials != 4 || sim.Fluct != 3 || sim.Seed != 7 {
		t.Fatalf("simulated block %+v", sim)
	}
	if sim.MakespanMin <= 0 || sim.SpMean <= 0 {
		t.Fatalf("implausible simulation: %+v", sim)
	}
	if !out.CacheHit {
		t.Fatal("simulate should still serve the cached plan")
	}

	for _, bad := range []string{
		"?simulate=yes",
		"?simulate=1&trials=99",
		fmt.Sprintf("?simulate=1&fluct=%d", maxEvalFluct+1),
		"?simulate=1&seed=abc",
	} {
		if resp, data := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", bad, resp.StatusCode, data)
		}
	}

	// Evaluator counters surface in /v1/stats.
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var stats struct {
		Evals EvalStats `json:"evals"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Evals.Measured != 1 || stats.Evals.Trials != 4 {
		t.Fatalf("stats evals %+v", stats.Evals)
	}
}
