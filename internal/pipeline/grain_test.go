package pipeline

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/workload"
)

// TestGrainZeroKeyByteIdentity is the golden pin of the grain axis:
// grain-0 (and the normalized grain-1) keys render byte-identical to
// the pre-grain format, so every plan record persisted before the axis
// existed keeps its key and replays with zero recomputes; a fusing
// grain joins the key as an explicit token.
func TestGrainZeroKeyByteIdentity(t *testing.T) {
	opts := core.Options{Processors: 2, CommCost: 2}
	// The literal pre-grain suffix: fmt %+v over the full options struct
	// as it existed before the Grain field.
	want := "h|{Processors:2 CommCost:2 CommFromStart:false WindowHeight:0" +
		" MaxIterations:0 AppendOnly:false FIFOOrder:false FoldNonCyclic:false" +
		" DriftBound:0}|n30"
	if got := PlanKey("h", opts, 30); got != want {
		t.Fatalf("grain-0 key drifted:\n got %s\nwant %s", got, want)
	}
	four := opts
	four.Grain = 4
	if got, want := PlanKey("h", four, 30), "|grain4|n30"; !strings.HasSuffix(got, want) {
		t.Fatalf("grain-4 key %q does not end in %q", got, want)
	}
}

// TestGrainOneNormalizedToZero pins the key-stability normalization:
// Schedule treats grain 1 as grain 0 (the two schedule identically), so
// both share one cache entry and one key.
func TestGrainOneNormalizedToZero(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	defer p.Close()
	zero, hit0, err := p.Schedule(g, core.Options{Processors: 2, CommCost: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	one, hit1, err := p.Schedule(g, core.Options{Processors: 2, CommCost: 2, Grain: 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if hit0 || !hit1 {
		t.Fatalf("hits = %v, %v; want miss then hit", hit0, hit1)
	}
	if zero != one {
		t.Fatal("grain 0 and grain 1 produced distinct cached plans")
	}
	if one.Opts.Grain != 0 {
		t.Fatalf("cached plan keeps grain %d, want normalized 0", one.Opts.Grain)
	}
}

// TestLegacyKeyOptionsMirror pins legacyKeyOptions against core.Options
// drifting: the mirror must carry exactly the exported fields of
// core.Options except Grain, in declaration order, with identical names
// and types — that equality is what keeps the %+v rendering of grain-0
// keys byte-identical to the pre-grain format. A new core.Options field
// showing up here means: add it to legacyKeyOptions ONLY if plans are
// allowed to alias across its values; otherwise mirror it and accept
// that historical keys change (and say so in the codec version notes).
func TestLegacyKeyOptionsMirror(t *testing.T) {
	var legacyFields []reflect.StructField
	lt := reflect.TypeOf(legacyKeyOptions{})
	for i := 0; i < lt.NumField(); i++ {
		legacyFields = append(legacyFields, lt.Field(i))
	}
	var optFields []reflect.StructField
	ot := reflect.TypeOf(core.Options{})
	for i := 0; i < ot.NumField(); i++ {
		f := ot.Field(i)
		if !f.IsExported() {
			// Unexported fields (chunkLocality) are scheduler-internal,
			// derived deterministically from Grain; they cannot be set
			// by callers and must not join the key.
			continue
		}
		if f.Name == "Grain" {
			continue // joins the key as the explicit "|grainG" token
		}
		optFields = append(optFields, f)
	}
	if len(legacyFields) != len(optFields) {
		t.Fatalf("legacyKeyOptions has %d fields, core.Options minus Grain has %d",
			len(legacyFields), len(optFields))
	}
	for i := range optFields {
		if legacyFields[i].Name != optFields[i].Name || legacyFields[i].Type != optFields[i].Type {
			t.Fatalf("field %d: mirror has %s %v, core.Options has %s %v",
				i, legacyFields[i].Name, legacyFields[i].Type, optFields[i].Name, optFields[i].Type)
		}
	}
}

// TestPlanRecordV3Decodes pins backward compatibility: a version-3
// record (no grain fields anywhere) decodes to the same key and plan a
// grain-0 version-4 record does — replaying a pre-grain durable store
// recomputes nothing.
func TestPlanRecordV3Decodes(t *testing.T) {
	key, p := buildFig7Plan(t, 25)
	data, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("Grain")) || bytes.Contains(data, []byte("grain")) {
		t.Fatalf("grain-0 record mentions grain: %s", data)
	}
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if string(rec["version"]) != "4" {
		t.Fatalf("record version = %s, want 4", rec["version"])
	}
	// Rewrite the header to version 3: byte-compatible by construction.
	v3 := bytes.Replace(data, []byte(`"version":4`), []byte(`"version":3`), 1)
	gotKey, got, err := DecodePlan(v3)
	if err != nil {
		t.Fatalf("v3 record rejected: %v", err)
	}
	if gotKey != key {
		t.Fatalf("v3 key %q, want %q", gotKey, key)
	}
	if got.Opts.Grain != 0 || got.Schedule.Full.Grain != 0 {
		t.Fatalf("v3 record decoded with grain %d/%d", got.Opts.Grain, got.Schedule.Full.Grain)
	}
	js1, _ := p.ScheduleJSON()
	js2, err := got.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("schedule JSON differs after a v3 decode")
	}
}

// TestGrainPlanCodecRoundTrip pins the version-4 record on a fused
// plan: the grain survives both the options and the schedule, the key
// carries the grain token, and re-encoding reproduces the record.
func TestGrainPlanCodecRoundTrip(t *testing.T) {
	g, err := workload.Streams(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Processors: 2, CommCost: 2, Grain: 4}
	p := New(Config{DisableCache: true})
	defer p.Close()
	plan, _, err := p.Schedule(g, opts, 24)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	key, got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := PlanKey(g.Fingerprint(), opts, 24); key != want {
		t.Fatalf("key %q, want %q", key, want)
	}
	if got.Opts.Grain != 4 || got.Schedule.Full.Grain != 4 {
		t.Fatalf("grain lost in round trip: %d/%d", got.Opts.Grain, got.Schedule.Full.Grain)
	}
	data2, err := EncodePlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded grain record not byte-identical")
	}
	// A mismatching grain between options and schedule is tampering.
	bad := bytes.Replace(data, []byte(`"Grain":4`), []byte(`"Grain":8`), 1)
	if _, _, err := DecodePlan(bad); err == nil {
		t.Fatal("record with options/schedule grain disagreement accepted")
	}
}

// TestGrainStoreReplayZeroRecomputes pins the durable-replay guarantee
// across the grain axis: a second pipeline sharing the first one's
// store serves both grain-0 and grain-4 requests as pure store hits.
func TestGrainStoreReplayZeroRecomputes(t *testing.T) {
	g, err := workload.Streams(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore(MemConfig{})
	p1 := New(Config{Store: store})
	zeroOpts := core.Options{Processors: 2, CommCost: 2}
	grainOpts := core.Options{Processors: 2, CommCost: 2, Grain: 4}
	if _, _, err := p1.Schedule(g, zeroOpts, 24); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.Schedule(g, grainOpts, 24); err != nil {
		t.Fatal(err)
	}

	p2 := New(Config{Store: store})
	for _, opts := range []core.Options{zeroOpts, grainOpts} {
		_, hit, err := p2.Schedule(g, opts, 24)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("grain %d request recomputed on replay", opts.Grain)
		}
	}
	if misses := p2.Stats().Misses; misses != 0 {
		t.Fatalf("replay pipeline recorded %d misses, want 0", misses)
	}
}

// streamChainSource is a chunk-friendly loop in the server DSL: every
// statement carries a distance-1 self-recurrence and consumes the
// previous statement's current-iteration value.
const streamChainSource = `loop chain(N = 100) {
    A[i] = A[i-1] + U[i]
    B[i] = B[i-1] + A[i]
    C[i] = C[i-1] + B[i]
    D[i] = D[i-1] + C[i]
}`

// TestTuneGrainAxisHTTP drives the grain axis end to end over the HTTP
// surface: grains widens the grid, every cell reports its grain, and
// serial_threshold short-circuits to the sequential fallback.
func TestTuneGrainAxisHTTP(t *testing.T) {
	srv := NewServer(New(Config{}))
	resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
		Source: streamChainSource, Iterations: 32,
		Processors: []int{2}, CommCosts: []int{2}, Grains: []int{1, 4},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rep TuneResponse
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("grid evaluated %d cells, want 2", len(rep.Results))
	}
	grains := map[int]bool{}
	for _, r := range rep.Results {
		grains[r.Grain] = true
	}
	// Cells echo the requested grain axis verbatim (the grain-1 plan is
	// normalized to grain 0 internally, but the grid point keeps 1).
	if !grains[1] || !grains[4] {
		t.Fatalf("grid grains = %v, want {1, 4}", grains)
	}
	if rep.SerialFallback {
		t.Fatal("tune without a threshold reported a serial fallback")
	}

	resp, data = postJSON(t, srv, "/v1/tune", TuneRequest{
		Source: streamChainSource, Iterations: 4, SerialThreshold: 1000,
		Processors: []int{2}, CommCosts: []int{2}, Grains: []int{1, 4},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	rep = TuneResponse{}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.SerialFallback {
		t.Fatal("serial_threshold above total work did not trip the fallback")
	}
	if rep.Best.Processors != 1 || rep.Best.Grain != 0 {
		t.Fatalf("fallback best = %+v, want the one-processor sequential plan", rep.Best)
	}

	// Out-of-range grains are a client error, checked before scheduling.
	resp, data = postJSON(t, srv, "/v1/tune", TuneRequest{
		Source: streamChainSource, Iterations: 8,
		Processors: []int{2}, CommCosts: []int{2}, Grains: []int{65},
	})
	if resp.StatusCode != 400 {
		t.Fatalf("grain 65: status %d: %s", resp.StatusCode, data)
	}
}
