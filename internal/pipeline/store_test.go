package pipeline

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mimdloop/internal/workload"
)

// buildFig7Plan builds one uncached Figure 7 plan for store-level tests.
func buildFig7Plan(t *testing.T, n int) (key string, p *Plan) {
	t.Helper()
	g := workload.Figure7().Graph
	plan, _, err := New(Config{DisableCache: true}).Schedule(g, fig7Opts, n)
	if err != nil {
		t.Fatal(err)
	}
	return PlanKey(g.Fingerprint(), fig7Opts, n), plan
}

func TestMemStoreBasics(t *testing.T) {
	m := NewMemStore(MemConfig{})
	key, plan := buildFig7Plan(t, 20)

	if _, ok := m.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	m.Put(key, plan)
	got, ok := m.Get(key)
	if !ok || got != plan {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if m.Len() != 1 || m.Bytes() != planBytes(plan) {
		t.Fatalf("Len=%d Bytes=%d", m.Len(), m.Bytes())
	}

	s := m.Stats()
	if s.Kind != "memory" || s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}

	infos := m.Plans()
	if len(infos) != 1 || infos[0].Key != key || infos[0].GraphHash != plan.GraphHash ||
		infos[0].Rate != plan.Rate() || infos[0].Bytes != planBytes(plan) {
		t.Fatalf("plans = %+v", infos)
	}

	// Put replaces in place (same key, new plan value).
	_, plan2 := buildFig7Plan(t, 20)
	m.Put(key, plan2)
	if got, _ := m.Get(key); got != plan2 {
		t.Fatal("replacement Put kept the old plan")
	}
	if m.Len() != 1 {
		t.Fatalf("replacement changed Len to %d", m.Len())
	}

	m.Delete(key)
	if _, ok := m.Get(key); ok || m.Len() != 0 || m.Bytes() != 0 {
		t.Fatalf("after Delete: ok=%v Len=%d Bytes=%d", ok, m.Len(), m.Bytes())
	}
	m.Delete(key) // deleting a missing key is a no-op

	m.Put(key, plan)
	if err := m.Flush(); err != nil || m.Len() != 0 {
		t.Fatalf("Flush: err=%v Len=%d", err, m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestStoreStatsTier(t *testing.T) {
	s := StoreStats{Kind: "tiered", Evictions: 1, Tiers: []StoreStats{
		{Kind: "memory", Hits: 3, Evictions: 2},
		{Kind: "disk", Hits: 7, Evictions: 4},
	}}
	disk, ok := s.Tier("disk")
	if !ok || disk.Hits != 7 {
		t.Fatalf("Tier(disk) = %+v, %v", disk, ok)
	}
	if _, ok := s.Tier("tape"); ok {
		t.Fatal("unknown tier found")
	}
	if got := s.TotalEvictions(); got != 7 {
		t.Fatalf("TotalEvictions = %d", got)
	}
}

// TestPlanCodecRoundTrip pins the durable record format: a decoded plan
// reports the same key, summary accessors, pattern block, program count
// and byte-identical schedule JSON as the original.
func TestPlanCodecRoundTrip(t *testing.T) {
	key, plan := buildFig7Plan(t, 30)
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("key %q != %q", gotKey, key)
	}
	if got.GraphHash != plan.GraphHash || got.Opts != plan.Opts || got.Iterations != plan.Iterations {
		t.Fatalf("key ingredients differ: %+v", got)
	}
	if got.Rate() != plan.Rate() || got.Procs() != plan.Procs() || got.Makespan() != plan.Makespan() {
		t.Fatalf("summary differs: rate %v/%v procs %d/%d makespan %d/%d",
			got.Rate(), plan.Rate(), got.Procs(), plan.Procs(), got.Makespan(), plan.Makespan())
	}
	wantPat, gotPat := plan.Pattern(), got.Pattern()
	if wantPat == nil || gotPat == nil || *wantPat != *gotPat {
		t.Fatalf("pattern %+v != %+v", gotPat, wantPat)
	}
	if len(got.Programs) != len(plan.Programs) {
		t.Fatalf("programs %d != %d", len(got.Programs), len(plan.Programs))
	}
	js1, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := got.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("schedule JSON not byte-identical after a codec round trip")
	}
	if got.Schedule.CyclicProcs != plan.Schedule.CyclicProcs ||
		got.Schedule.Folded != plan.Schedule.Folded ||
		got.Schedule.GreedyFallback != plan.Schedule.GreedyFallback {
		t.Fatal("processor accounting differs after a codec round trip")
	}
	// Encoding the decoded plan reproduces the record byte for byte.
	data2, err := EncodePlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded record not byte-identical")
	}
}

func TestPlanCodecRejectsCorruption(t *testing.T) {
	_, plan := buildFig7Plan(t, 10)
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"not json":     func(b []byte) []byte { return []byte("not a record") },
		"wrong format": func(b []byte) []byte { return bytes.Replace(b, []byte("mimdloop/plan"), []byte("other/format"), 1) },
		"wrong version": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"version":4`), []byte(`"version":99`), 1)
		},
		"key mismatch": func(b []byte) []byte {
			// Change the recorded iteration count without re-deriving the
			// key: the ingredients check must catch the inconsistency.
			return bytes.Replace(b, []byte(`"iterations":10`), []byte(`"iterations":11`), 1)
		},
		"schedule tampered under intact header": func(b []byte) []byte {
			// Rename a node inside the embedded schedule only: the
			// re-derived graph fingerprint must contradict GraphHash.
			return bytes.Replace(b, []byte(`"name":"A"`), []byte(`"name":"Z"`), 1)
		},
	} {
		if _, _, err := DecodePlan(mutate(append([]byte(nil), data...))); err == nil {
			t.Errorf("%s record decoded without error", name)
		}
	}
}

// TestEvictionRacesSingleflight hammers a byte-starved store from many
// goroutines (run under -race in CI): evictions chase the singleflight
// loads, so freshly-stored plans are dropped while identical keys are
// still in flight. Every request must still come back with a correct
// plan, and the store must stay within its budget.
func TestEvictionRacesSingleflight(t *testing.T) {
	// Four single-entry shards under six distinct keys: the pigeonhole
	// guarantees shard collisions, so evictions chase the loads no matter
	// how the keys hash. The byte budget admits one plan per shard.
	w := fig7PlanBytes(t, 25)
	p := New(Config{MaxEntries: 4, MaxBytes: 4 * (w + w/4)})
	g := workload.Figure7().Graph

	const (
		goroutines = 12
		rounds     = 10
		distinctN  = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := 20 + (gi+r)%distinctN
				plan, _, err := p.Schedule(g, fig7Opts, n)
				if err != nil {
					errs <- err
					return
				}
				if plan.Rate() != 3 || plan.Iterations != n {
					errs <- fmt.Errorf("wrong plan at n=%d: rate=%v iters=%d", n, plan.Rate(), plan.Iterations)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits+s.Misses != goroutines*rounds {
		t.Fatalf("requests accounted = %d, want %d", s.Hits+s.Misses, goroutines*rounds)
	}
	// Under this much pressure plans are evicted and recomputed; the
	// store must end within its budget with at least one eviction seen.
	if s.Evictions == 0 {
		t.Fatal("no evictions under a one-plan-per-shard budget")
	}
	if budget := 4 * (w + w/4); s.Store.Bytes > budget {
		t.Fatalf("store bytes %d over the %d budget", s.Store.Bytes, budget)
	}
}
