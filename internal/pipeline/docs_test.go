package pipeline

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"mimdloop/internal/loadgen"
)

// TestAPIDocCoversRoutes pins docs/API.md to the server: every route the
// server registers must appear in the doc (as "METHOD /path"), and every
// status code the handlers emit must be discussed. Adding an endpoint
// without documenting it fails here.
func TestAPIDocCoversRoutes(t *testing.T) {
	data, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the HTTP API: %v", err)
	}
	doc := string(data)

	for _, r := range NewServer(New(Config{})).Routes() {
		if !strings.Contains(doc, r.Method+" "+r.Path) {
			t.Errorf("docs/API.md does not document %s %s", r.Method, r.Path)
		}
	}

	// The codes the handlers can produce (see writeJSON call sites).
	for _, code := range []int{400, 404, 405, 409, 413, 422, 501} {
		if !strings.Contains(doc, fmt.Sprintf("%d", code)) {
			t.Errorf("docs/API.md does not mention status %d", code)
		}
	}

	// The caps table must track the constants.
	for name, fragment := range map[string]string{
		"maxBatchItems":         fmt.Sprintf("%d", maxBatchItems),
		"maxTunePoints":         fmt.Sprintf("%d", maxTunePoints),
		"maxGraphNodes":         fmt.Sprintf("%d", maxGraphNodes),
		"maxEvalTrials":         fmt.Sprintf("%d", maxEvalTrials),
		"maxTuneTrialCells":     fmt.Sprintf("%d", maxTuneTrialCells),
		"maxGortEvalTrials":     fmt.Sprintf("trials ≤ %d", maxGortEvalTrials),
		"maxGortTuneTrialCells": fmt.Sprintf("trials ≤ %d", maxGortTuneTrialCells),
		"maxGrain":              fmt.Sprintf("0 … %d", maxGrain),
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not mention %s (fragment %q)", name, fragment)
		}
	}

	// The evaluator surface: the tune eval block, the execution-backend
	// and spread-objective selectors, the schedule simulate query, every
	// JSON field of the measured-stats block, and the evaluator counters
	// in stats.
	for _, fragment := range []string{
		"`eval`", `"mode": "measured"`, "?simulate=1", "`trials`", "`fluct`", "`seed`",
		"`backend`", "`objective`", `"backend": "gort"`, "gort", "`worst`", "`p95`",
		`"sp_min"`, `"sp_mean"`, `"sp_p95"`, `"sp_max"`,
		`"makespan_min"`, `"makespan_max"`, `"makespan_mean"`, `"makespan_p95"`, `"utilization"`,
		`"evals"`, `"simulated"`, `"measured"`, `"evaluator"`, `"trials"`,
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the evaluator surface fragment %s", fragment)
		}
	}

	// The grain axis: the schedule and tune request fields, the grid
	// widening, the per-cell grain echo, the serial fallback, and the
	// record-version break.
	for _, fragment := range []string{
		"`grain`", "`grains`", "`serial_threshold`",
		"The grain axis", `"grain"`, `"serial_fallback": true`,
		"version-4 plan record", "-table 1ad",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the grain fragment %s", fragment)
		}
	}

	// The stats reference must document the storage-layer block: every
	// JSON field StoreStats exposes, and each built-in tier kind.
	for _, fragment := range []string{
		`"store"`, `"promotes"`, `"tiers"`, `"evictions"`, `"puts"`, `"errors"`,
		`"memory"`, `"disk"`, `"tiered"`,
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the store stats field %s", fragment)
		}
	}

	// The cluster surface: the serve flags, the record-fetch query, the
	// loop-prevention headers, and every JSON field of the cluster stats
	// block (plus the peer tier kind).
	for _, fragment := range []string{
		"-peers", "-self", "-vnodes", "?key=", "## Cluster mode",
		ForwardedHeader, PeerFetchHeader,
		`"cluster"`, `"self"`, `"peers"`, `"virtual_nodes"`,
		`"fills"`, `"fill_misses"`, `"fill_errors"`,
		`"forwards"`, `"forward_errors"`, `"breaker_skips"`, `"breaker_open"`,
		`"peer"`,
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the cluster fragment %s", fragment)
		}
	}

	// The serving fast-lane and trajectory surface: the measured_by
	// reply field, the slots configuration, the bench subcommand, and
	// every section of the BENCH_*.json schema (internal/loadgen pins
	// the schema itself with a golden fixture; this pins the reference).
	// The schema heading must carry the current loadgen.Version, so a
	// version bump fails here until the doc notes the break.
	for _, fragment := range []string{
		"`measured_by`", "-slots", "loopsched bench", loadgen.Format,
		fmt.Sprintf("version %d", loadgen.Version),
		`"cold_schedule"`, `"cache_hit"`, `"tune_sim"`, `"tune_gort"`,
		`"tune_csim"`, `"tune_grain"`, `"batch"`, `"http_load"`, `"p50_ns"`, `"p95_ns"`, `"p99_ns"`,
		`"req_per_sec"`, `"loops_per_sec"`, "-against",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the bench/fast-lane fragment %s", fragment)
		}
	}

	// The streaming surface: the reply-splitting section with its
	// threshold and chunked semantics, the raw record fetch, the stats
	// counters, and the trajectory's stream phase.
	for _, fragment := range []string{
		"### Streaming replies", "StreamThreshold", "chunked transfer",
		`"streamed"`, `"stream_bytes"`,
		`"stream"`, `"reply_bytes"`, `"first_byte"`, `"full_body"`,
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the streaming fragment %s", fragment)
		}
	}

	// The calibration surface: the csim backend selector, the calibrate
	// and serve/tune flags, the profile file, and every JSON field of
	// the stats "calib" block (CalibStats plus the nested cost model).
	for _, fragment := range []string{
		"## Cost-model calibration", `"backend": "csim"`, "`csim`",
		"loopsched calibrate", "-calib", "-calibrate-every",
		"calib.profile.json", "quarantine",
		`"calib"`, `"present"`, `"age_seconds"`, `"samples"`,
		`"rmse_ns"`, `"fit_error"`, `"refreshes"`, `"model"`,
		`"compute_ns_per_cycle"`, `"comm_ns_per_message"`,
		`"iter_overhead_ns"`, `"seq_ns_per_cycle"`,
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/API.md does not document the calibration fragment %s", fragment)
		}
	}
}

// TestArchitectureDocCoversFastLane pins the "Serving fast lane" section
// of docs/ARCHITECTURE.md to the mechanisms it documents: the per-plan
// pre-rendered hit body and its invalidation, the pooled encoder, and
// the tests and trajectory files that guard them.
func TestArchitectureDocCoversFastLane(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	for _, fragment := range []string{
		"## Serving fast lane", "Pre-rendered hit bodies", "HitResponseBody",
		"measured-annotation generation", "sync.Pool",
		"TestScheduleCacheHitAllocs", "AllocsPerRun", "BenchmarkServeCacheHit",
		"BENCH_", "loadgen", "loopsched bench",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/ARCHITECTURE.md does not cover the fast-lane fragment %q", fragment)
		}
	}
}

// TestArchitectureDocCoversStreaming pins the streaming-lane extension
// of the fast-lane section: the threshold and envelope split, the
// chunked/first-byte semantics, the raw record read and write sides,
// the mid-stream measurement story, and the tests and benchmark that
// guard the lane.
func TestArchitectureDocCoversStreaming(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	for _, fragment := range []string{
		"streaming lane", "StreamThreshold", "chunked",
		"time-to-first-byte", `"schedule":`,
		"OpenRecord", "RecordSink", "PutRecord", "io.Copy",
		"TestStreamedReplyByteIdentical", "TestStreamedReplyAllocBytes",
		"TestStreamedReplyMidMeasurementRace", "BenchmarkServeNearCapStream",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/ARCHITECTURE.md does not cover the streaming fragment %q", fragment)
		}
	}
}

// TestArchitectureDocCoversCluster pins the "Cluster mode" section of
// docs/ARCHITECTURE.md to the design it documents: the consistent-hash
// ring (with diagram), the PeerStore tier and its placement, the
// cluster-wide singleflight with its loop-prevention headers, the
// degrade-to-local failure story, and the clustertest harness.
func TestArchitectureDocCoversCluster(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	for _, fragment := range []string{
		"## Cluster mode", "Consistent-hash ownership", "virtual",
		"next point clockwise = owner", // the ring diagram
		"PeerStore", "Tiered(mem, Tiered(peer, disk))",
		"singleflight", ForwardedHeader, PeerFetchHeader,
		"circuit breaker", "N independent nodes",
		"ScheduleForwarder", "clustertest", "httptest",
		"race detector",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/ARCHITECTURE.md does not cover the cluster fragment %q", fragment)
		}
	}
}

// TestArchitectureDocCoversGranularity pins the "Granularity" section
// of docs/ARCHITECTURE.md to the design it documents: the chunk-graph
// fold and its infeasibility rule, the sticky chunk placement, the
// chunked runtime, the legacy-key mirror and record-version break, the
// serial fallback, and the adaptive acceptance experiment.
func TestArchitectureDocCoversGranularity(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	for _, fragment := range []string{
		"## Granularity", "graph.Chunked", "infeasible",
		"chunkLocality", "sticky", "TestChunkLocalityStickyPlacement",
		"mimdrt.RunChunked", "chunk boundary",
		"legacyKeyOptions", "|grainG", "version 4",
		"TestGrainStoreReplayZeroRecomputes",
		"SerialThreshold", "SerialFallback",
		"Table1Adaptive", "winner's curse", "TestTable1AdaptiveAcceptance",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/ARCHITECTURE.md does not cover the granularity fragment %q", fragment)
		}
	}
}

// TestArchitectureDocCoversCalibration pins the "Cost-model calibration"
// section of docs/ARCHITECTURE.md to the design it documents: the probe
// fit with its separate sequential coefficient, the csim backend and its
// pass-through degradation, the profile codec with atomic persistence
// and quarantine, the Manager's atomic swap and background refresh, the
// Calibration seam, and the regret-based acceptance experiment.
func TestArchitectureDocCoversCalibration(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	for _, fragment := range []string{
		"## Cost-model calibration", "internal/calib", "exec.CostModel",
		"normal equations", "seq_ns_per_cycle", "fitted separately",
		`exec.Calibrated ("csim")`, "byte-identically",
		"calib.profile.json", "quarantine", "atomic",
		"ResetSequentialBaselines", "calib.Manager", "atomic.Pointer",
		"-calibrate-every", "pipeline.Calibration",
		"Table1Calibrated", "regret", "TestTable1CalibratedAcceptance",
	} {
		if !strings.Contains(doc, fragment) {
			t.Errorf("docs/ARCHITECTURE.md does not cover the calibration fragment %q", fragment)
		}
	}
}
