package pipeline

// Cluster-mode hooks. A Server can run as one node of a loopsched
// cluster: each plan key is owned by exactly one node under a
// consistent-hash ring, non-owners fill store misses from the owner
// (the PeerStore tier in internal/store), and a non-owner that misses
// locally forwards the schedule request to the owner instead of
// computing — extending the per-process singleflight group
// cluster-wide, so a cold popular loop is scheduled exactly once
// across the fleet.
//
// The pipeline package owns the serving side of the protocol (the
// routes, the forwarding decision, the stats block); the ring, the
// peer HTTP client, the retry/backoff and the circuit breaker live in
// internal/store behind the ScheduleForwarder interface, so the two
// packages meet only at this seam (internal/store already imports
// internal/pipeline for the PlanStore interface, so the interface must
// be declared here).

// Cluster wire protocol headers. Both mark intra-cluster requests so a
// node never re-forwards work a peer sent it — chains are bounded to
// one hop even under disagreeing ring configurations.
const (
	// ForwardedHeader marks a schedule request forwarded by a non-owner.
	// The receiving node always computes locally (through its own
	// singleflight), never forwards again.
	ForwardedHeader = "X-Mimdloop-Forwarded"
	// PeerFetchHeader marks a peer-fill record fetch
	// (GET /v1/plans/{fingerprint}?key=...). The receiving node answers
	// only for keys it owns, so a fetch can never cascade through the
	// ring.
	PeerFetchHeader = "X-Mimdloop-Peer-Fetch"
)

// ScheduleForwarder is the cluster hook a Server consults on every
// schedule request: who owns a plan key, and — for keys owned by a
// peer — the forwarding of the request to that owner. The built-in
// implementation is store.PeerStore, which doubles as the peer-fill
// PlanStore tier.
type ScheduleForwarder interface {
	// Owns reports whether this node owns key under the cluster's ring.
	Owns(key string) bool
	// Forward sends the raw schedule request body to key's owner and
	// returns the owner's reply (status and body, proxied verbatim).
	// ok = false means the owner could not answer — unreachable, circuit
	// breaker open, or an owner-side 5xx — and the caller must degrade
	// to local computation; the cluster never serves worse than N
	// independent single nodes.
	Forward(key string, body []byte) (status int, resp []byte, ok bool)
	// ClusterStats snapshots the cluster counters for /v1/stats.
	ClusterStats() ClusterStats
}

// ClusterStats is the "cluster" block of GET /v1/stats: ring identity
// plus the peer-fill and forwarding counters.
type ClusterStats struct {
	// Self is this node's own peer name; Peers is the full ring
	// membership (self included); VNodes the virtual nodes per peer.
	Self   string   `json:"self"`
	Peers  []string `json:"peers"`
	VNodes int      `json:"virtual_nodes"`

	// Fills counts store misses filled from a peer's record; FillMisses
	// counts owners that answered 404 (the owner had not scheduled the
	// key either); FillErrors counts fetch operations that failed after
	// retries (transport errors, owner-side 5xx, undecodable records).
	Fills      uint64 `json:"fills"`
	FillMisses uint64 `json:"fill_misses"`
	FillErrors uint64 `json:"fill_errors"`

	// Forwards counts schedule requests proxied to their owner;
	// ForwardErrors counts forward operations that failed after retries,
	// each one a request that degraded to local computation.
	Forwards      uint64 `json:"forwards"`
	ForwardErrors uint64 `json:"forward_errors"`

	// BreakerSkips counts peer calls skipped outright because the
	// peer's circuit breaker was open; BreakerOpen names the peers
	// currently open (empty when the cluster is healthy).
	BreakerSkips uint64   `json:"breaker_skips"`
	BreakerOpen  []string `json:"breaker_open,omitempty"`
}
