// Package pipeline unifies the compile → classify → schedule → lower flow
// behind one reusable Pipeline value with a content-addressed plan cache.
//
// Every entry point of the library ultimately runs the same stages: parse
// loop source (optional), classify the dependence graph, run Cyclic-sched
// until a steady-state pattern is verified, compose the Flow-in/Flow-out
// fringes, and lower the composed schedule to per-processor programs. The
// stages are deterministic pure functions of (graph content, Options,
// iteration count), so their results are cacheable: a Pipeline hashes the
// graph (graph.Fingerprint) together with the scheduling options and
// iteration count, and serves repeat requests from a sharded LRU cache
// that is safe for any number of concurrent readers. Misses for the same
// key are collapsed into a single computation (singleflight), so a burst
// of identical requests costs one schedule.
//
// On top of plan reuse the package provides Sweep, a worker-pool
// evaluation of processor-count × communication-cost grids (replacing the
// serial parameter loops in internal/experiments and cmd/paperbench), and
// Server, an HTTP front end that schedules POSTed loop source and reports
// cache statistics (see server.go).
package pipeline

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/loopir"
	"mimdloop/internal/program"
)

// Config tunes a Pipeline.
type Config struct {
	// MaxEntries bounds the number of cached plans across all shards, and
	// doubles as the entry bound of the parsed-source compile cache.
	// Values <= 0 mean 1024. Eviction is least-recently-used per shard.
	MaxEntries int
	// MaxPlacements bounds the total scheduled placements retained across
	// all cached plans — an approximate memory bound, since a plan's
	// footprint is O(placements). Values <= 0 mean 4,000,000. A shard
	// always keeps at least one plan even if it alone exceeds the budget.
	MaxPlacements int
	// DisableCache turns the pipeline into a pass-through that schedules
	// every request from scratch (useful for measurement baselines).
	DisableCache bool
}

// Plan is one fully-constructed scheduling artifact: the composed loop
// schedule together with its lowered per-processor programs. Plans are
// shared between cache readers and must be treated as immutable.
type Plan struct {
	// GraphHash is the content fingerprint of the scheduled graph.
	GraphHash string
	// Opts and Iterations complete the cache key.
	Opts       core.Options
	Iterations int

	// Schedule is the composed result of core.ScheduleLoop.
	Schedule *core.LoopSchedule
	// Programs are the lowered COMPUTE/SEND/RECV streams, one per
	// processor of Schedule.Full.
	Programs []program.Program

	// makespan, procs and rate are computed once at build time: all can
	// cost O(placements) scans that must not run per request on the hit
	// path (rate falls back to makespan/iterations for pattern-less
	// plans).
	makespan int
	procs    int
	rate     float64

	// schedJSON memoizes the wire encoding of Schedule.Full so serving a
	// cached plan does not re-marshal the full placement list.
	schedJSONOnce sync.Once
	schedJSON     []byte
	schedJSONErr  error
}

// ScheduleJSON returns the plan's composed schedule in the internal/plan
// wire format, marshaled once per Plan.
func (p *Plan) ScheduleJSON() ([]byte, error) {
	p.schedJSONOnce.Do(func() {
		p.schedJSON, p.schedJSONErr = json.Marshal(p.Schedule.Full)
	})
	return p.schedJSON, p.schedJSONErr
}

// Rate returns the plan's steady-state cycles per iteration.
func (p *Plan) Rate() float64 { return p.rate }

// Procs returns the number of processors the plan occupies.
func (p *Plan) Procs() int { return p.procs }

// Makespan returns the composed schedule's finishing cycle.
func (p *Plan) Makespan() int { return p.makespan }

// Stats is a point-in-time snapshot of cache behaviour.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Computes  uint64 `json:"computes"` // misses that actually scheduled (rest piggybacked on an in-flight computation)
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// maxCacheShards caps lock striping; small caches use fewer shards so the
// configured MaxEntries is honored exactly.
const maxCacheShards = 16

// Pipeline is a concurrency-safe scheduling front end with a plan cache.
// The zero value is not usable; construct with New.
type Pipeline struct {
	cfg    Config
	shards []cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	computes  atomic.Uint64
	evictions atomic.Uint64

	// compileMu guards the compile cache: an LRU of parsed loop sources
	// keyed by source hash (so arbitrarily large request bodies are never
	// retained as map keys), used by CompileAndSchedule and the server.
	compileMu sync.Mutex
	compiled  map[string]*list.Element // sha256(source) -> element of compOrder
	compOrder *list.List               // front = most recently used; Value is *compiledEntry
}

// compiledEntry is one compile-cache slot.
type compiledEntry struct {
	key string
	c   *loopir.Compiled
}

// cacheShard is one lock-striped LRU segment of the plan cache.
type cacheShard struct {
	mu        sync.Mutex
	limit     int                      // fixed per-shard entry capacity; shard limits sum to MaxEntries
	maxWeight int                      // per-shard placement budget; shard budgets sum to MaxPlacements
	weight    int                      // total placements of completed entries in this shard
	entries   map[string]*list.Element // key -> element whose Value is *cacheEntry
	order     *list.List               // front = most recently used
}

// cacheEntry carries the singleflight state for one key: fn is installed
// at insertion, and whichever goroutine reaches get() first runs it; every
// other goroutine for the same key blocks in the Once and shares the
// outcome.
type cacheEntry struct {
	key  string
	once sync.Once
	fn   func() (*Plan, error)
	done atomic.Bool // set after fn completes; distinguishes hits from piggybacks
	plan *Plan
	err  error
	// weight is the plan's placement count, charged against the shard
	// budget once the computation completes (0 while in flight).
	weight int
}

func (e *cacheEntry) get() (*Plan, error) {
	e.once.Do(func() {
		e.plan, e.err = e.fn()
		e.fn = nil
		e.done.Store(true)
	})
	return e.plan, e.err
}

// New returns an empty Pipeline.
func New(cfg Config) *Pipeline {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.MaxPlacements <= 0 {
		cfg.MaxPlacements = 4_000_000
	}
	n := maxCacheShards
	if cfg.MaxEntries < n {
		n = cfg.MaxEntries
	}
	p := &Pipeline{
		cfg:       cfg,
		shards:    make([]cacheShard, n),
		compiled:  make(map[string]*list.Element),
		compOrder: list.New(),
	}
	// Distribute capacity so shard limits sum to exactly MaxEntries, and
	// likewise for the placement budget.
	for i := range p.shards {
		p.shards[i].limit = cfg.MaxEntries / n
		if i < cfg.MaxEntries%n {
			p.shards[i].limit++
		}
		p.shards[i].maxWeight = cfg.MaxPlacements / n
		if i < cfg.MaxPlacements%n {
			p.shards[i].maxWeight++
		}
		p.shards[i].entries = make(map[string]*list.Element)
		p.shards[i].order = list.New()
	}
	return p
}

// planKey derives the full cache key. The whole Options struct is
// formatted (field names included) so a field added to core.Options later
// joins the key automatically instead of silently aliasing plans.
func planKey(hash string, o core.Options, n int) string {
	return fmt.Sprintf("%s|%+v|n%d", hash, o, n)
}

func (p *Pipeline) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &p.shards[h.Sum32()%uint32(len(p.shards))]
}

// Schedule runs the full pipeline on g for n iterations, serving from the
// plan cache when an identical request (same graph content, options and
// iteration count) was seen before. The boolean reports whether the plan
// came from the cache.
func (p *Pipeline) Schedule(g *graph.Graph, opts core.Options, n int) (*Plan, bool, error) {
	hash := g.Fingerprint()
	if p.cfg.DisableCache {
		plan, err := build(g, hash, opts, n)
		p.misses.Add(1)
		p.computes.Add(1)
		return plan, false, err
	}
	key := planKey(hash, opts, n)
	sh := p.shard(key)

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		// The entry may still be in flight: get() then waits for the
		// shared computation. Only a completed entry counts as a hit —
		// a piggybacked request waited the full scheduling latency, so
		// reporting it as a hit would flatter the cache counters.
		wasDone := e.done.Load()
		plan, err := e.get()
		if err != nil {
			p.misses.Add(1)
			return nil, false, err
		}
		if !wasDone {
			p.misses.Add(1)
			return plan, false, nil
		}
		p.hits.Add(1)
		return plan, true, nil
	}
	e := &cacheEntry{key: key}
	e.fn = func() (*Plan, error) {
		p.computes.Add(1)
		return build(g, hash, opts, n)
	}
	el := sh.order.PushFront(e)
	sh.entries[key] = el
	evicted := sh.evictLocked()
	sh.mu.Unlock()
	p.misses.Add(1)
	p.evictions.Add(evicted)

	plan, err := e.get()
	if err != nil {
		// Do not cache failures: drop the entry so a later (possibly
		// fixed) request recomputes.
		sh.mu.Lock()
		if cur, ok := sh.entries[e.key]; ok && cur == el {
			sh.order.Remove(el)
			delete(sh.entries, e.key)
		}
		sh.mu.Unlock()
		return nil, false, err
	}
	// Charge the finished plan against the shard's placement budget and
	// trim (only if the entry is still cached — eviction may have raced
	// the computation). A plan that alone exceeds the budget is served
	// but not cached: keeping it would drain every warm entry in the
	// shard without ever fitting.
	w := len(plan.Schedule.Full.Placements)
	if w < 1 {
		w = 1
	}
	sh.mu.Lock()
	var trimmed uint64
	if cur, ok := sh.entries[e.key]; ok && cur == el {
		if w > sh.maxWeight {
			sh.order.Remove(el)
			delete(sh.entries, e.key)
			trimmed = 1
		} else {
			e.weight = w
			sh.weight += w
			trimmed = sh.evictLocked()
		}
	}
	sh.mu.Unlock()
	p.evictions.Add(trimmed)
	return plan, false, nil
}

// evictLocked trims the shard to its entry capacity and placement budget
// (always keeping at least one entry) and returns how many were dropped.
// Caller holds sh.mu.
func (sh *cacheShard) evictLocked() uint64 {
	var n uint64
	for sh.order.Len() > sh.limit ||
		(sh.weight > sh.maxWeight && sh.order.Len() > 1) {
		el := sh.order.Back()
		e := el.Value.(*cacheEntry)
		sh.order.Remove(el)
		delete(sh.entries, e.key)
		sh.weight -= e.weight
		n++
	}
	return n
}

// build runs the uncached pipeline stages: schedule, then lower.
func build(g *graph.Graph, hash string, opts core.Options, n int) (*Plan, error) {
	ls, err := core.ScheduleLoop(g, opts, n)
	if err != nil {
		return nil, err
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		return nil, err
	}
	return &Plan{
		GraphHash:  hash,
		Opts:       opts,
		Iterations: n,
		Schedule:   ls,
		Programs:   progs,
		makespan:   ls.Full.Makespan(),
		procs:      ls.Full.ProcsUsed(),
		rate:       ls.RatePerIteration(),
	}, nil
}

// CompileAndSchedule parses loop-language source (memoizing compilation by
// source content), then schedules the compiled graph through the plan
// cache.
func (p *Pipeline) CompileAndSchedule(src string, opts core.Options, n int) (*loopir.Compiled, *Plan, bool, error) {
	c, err := p.Compile(src)
	if err != nil {
		return nil, nil, false, err
	}
	plan, hit, err := p.Schedule(c.Graph, opts, n)
	return c, plan, hit, err
}

// Compile parses and analyzes loop-language source through the compile
// cache: repeat sources return the same *Compiled without re-parsing.
func (p *Pipeline) Compile(src string) (*loopir.Compiled, error) {
	key := fmt.Sprintf("%x", sha256.Sum256([]byte(src)))
	p.compileMu.Lock()
	if el, ok := p.compiled[key]; ok {
		p.compOrder.MoveToFront(el)
		c := el.Value.(*compiledEntry).c
		p.compileMu.Unlock()
		return c, nil
	}
	p.compileMu.Unlock()

	l, err := loopir.Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := loopir.Compile(l)
	if err != nil {
		return nil, err
	}

	p.compileMu.Lock()
	if el, ok := p.compiled[key]; ok {
		// A concurrent request compiled the same source first; keep that
		// result so repeat callers keep seeing one pointer.
		p.compOrder.MoveToFront(el)
		c = el.Value.(*compiledEntry).c
	} else {
		p.compiled[key] = p.compOrder.PushFront(&compiledEntry{key: key, c: c})
		for p.compOrder.Len() > p.cfg.MaxEntries {
			back := p.compOrder.Back()
			p.compOrder.Remove(back)
			delete(p.compiled, back.Value.(*compiledEntry).key)
		}
	}
	p.compileMu.Unlock()
	return c, nil
}

// Stats snapshots the cache counters.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Computes:  p.computes.Load(),
		Evictions: p.evictions.Load(),
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		s.Entries += sh.order.Len()
		sh.mu.Unlock()
	}
	return s
}

// Flush empties the plan and compile caches.
func (p *Pipeline) Flush() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*list.Element)
		sh.order.Init()
		sh.weight = 0
		sh.mu.Unlock()
	}
	p.compileMu.Lock()
	p.compiled = make(map[string]*list.Element)
	p.compOrder.Init()
	p.compileMu.Unlock()
}
