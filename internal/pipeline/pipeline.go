// Package pipeline unifies the compile → classify → schedule → lower flow
// behind one reusable Pipeline value with a content-addressed plan store.
//
// Every entry point of the library ultimately runs the same stages: parse
// loop source (optional), classify the dependence graph, run Cyclic-sched
// until a steady-state pattern is verified, compose the Flow-in/Flow-out
// fringes, and lower the composed schedule to per-processor programs. The
// stages are deterministic pure functions of (graph content, Options,
// iteration count), so their results are cacheable: a Pipeline hashes the
// graph (graph.Fingerprint) together with the scheduling options and
// iteration count, and serves repeat requests from a PlanStore — by
// default an in-process sharded LRU (MemStore), optionally backed by a
// durable disk tier (internal/store) so plans survive process restarts.
// Misses for the same key are collapsed into a single computation
// (singleflight), so a burst of identical requests costs one schedule.
//
// On top of plan reuse the package provides Sweep, a worker-pool
// evaluation of processor-count × communication-cost grids (replacing the
// serial parameter loops in internal/experiments and cmd/paperbench), and
// Server, an HTTP front end that schedules POSTed loop source and reports
// store statistics (see server.go).
package pipeline

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/loopir"
	"mimdloop/internal/program"
)

// Config tunes a Pipeline.
type Config struct {
	// MaxEntries bounds the number of stored plans in the default memory
	// store, and doubles as the entry bound of the parsed-source compile
	// cache. Values <= 0 mean 1024. Eviction is least-recently-used per
	// shard. Ignored (except for the compile cache) when Store is set.
	MaxEntries int
	// MaxBytes bounds the approximate resident plan bytes of the default
	// memory store. Values <= 0 mean 256 MiB. Ignored when Store is set.
	MaxBytes int64
	// DisableCache turns the pipeline into a pass-through that schedules
	// every request from scratch (useful for measurement baselines).
	DisableCache bool
	// Store, when non-nil, replaces the default MemStore as the plan
	// storage layer — e.g. a store.TieredStore for restart-durable
	// serving. The pipeline takes ownership: Pipeline.Close closes it.
	Store PlanStore
}

// Plan is one fully-constructed scheduling artifact: the composed loop
// schedule together with its lowered per-processor programs. Plans are
// shared between store readers and must be treated as immutable.
//
// A Plan may have been built by this process or decoded from a durable
// store (see DecodePlan). Both serve identically through the accessors
// below; only a freshly-built plan additionally carries the scheduler's
// intermediate state (Schedule.Multi, Schedule.Class).
type Plan struct {
	// GraphHash is the content fingerprint of the scheduled graph.
	GraphHash string
	// Opts and Iterations complete the cache key.
	Opts       core.Options
	Iterations int

	// Schedule is the composed result of core.ScheduleLoop.
	Schedule *core.LoopSchedule
	// Programs are the lowered COMPUTE/SEND/RECV streams, one per
	// processor of Schedule.Full.
	Programs []program.Program

	// makespan, procs and rate are computed once at build time: all can
	// cost O(placements) scans that must not run per request on the hit
	// path (rate falls back to makespan/iterations for pattern-less
	// plans).
	makespan int
	procs    int
	rate     float64

	// pattern summarizes the verified steady state (nil when none); kept
	// denormalized on the plan so disk-loaded plans — which do not carry
	// Schedule.Multi — serve the same pattern block as built ones.
	pattern *PatternInfo

	// schedJSON memoizes the wire encoding of Schedule.Full so serving a
	// cached plan does not re-marshal the full placement list.
	schedJSONOnce sync.Once
	schedJSON     []byte
	schedJSONErr  error

	// measured holds the most recent measured evaluation per execution
	// backend (empty until a MeasuredEvaluator runs the plan). It is an
	// annotation, not part of the plan's identity: the cache key ignores
	// it, and version-3 plan records persist it so a reloaded plan
	// remembers its last measurement on each backend. Keyed by backend
	// name so a gort measurement never overwrites a sim one; guarded by
	// a mutex because plans are shared between concurrent evaluations.
	// measuredGen counts annotation writes so consumers that render the
	// annotations into derived artifacts (the server's pre-rendered
	// cache-hit body) can detect staleness without comparing contents.
	measuredMu  sync.RWMutex
	measured    map[string]*MeasuredStats
	measuredGen uint64

	// hitBody memoizes the serving layer's pre-rendered cache-hit
	// response body (see Server.scheduleResponse): the full /v1/schedule
	// wire reply for the no-simulate case, rendered once per (plan, loop
	// name, annotation generation) instead of re-marshaled per request.
	// hitLoop records the loop name the body was rendered for — distinct
	// sources can compile to the same graph under different names — and
	// hitGen the measured-annotation generation, so a tune landing a new
	// measurement invalidates the memo instead of serving a stale
	// measured_by block.
	hitMu   sync.Mutex
	hitBody []byte
	hitLoop string
	hitGen  uint64
}

// Measured returns the plan's most recent simulated-machine (sim
// backend) evaluation, or nil if none ran. For other backends use
// MeasuredBy; for every annotation use MeasuredAll.
func (p *Plan) Measured() *MeasuredStats { return p.MeasuredBy("sim") }

// MeasuredBy returns the plan's most recent measured evaluation on the
// named backend, or nil.
func (p *Plan) MeasuredBy(backend string) *MeasuredStats {
	p.measuredMu.RLock()
	defer p.measuredMu.RUnlock()
	return p.measured[backend]
}

// MeasuredAll returns every backend's annotation, sorted by backend name
// so consumers (the plan codec above all) see a deterministic order.
func (p *Plan) MeasuredAll() []*MeasuredStats {
	p.measuredMu.RLock()
	out := make([]*MeasuredStats, 0, len(p.measured))
	for _, ms := range p.measured {
		out = append(out, ms)
	}
	p.measuredMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// SetMeasured attaches a measured evaluation to the plan under its
// backend's name (an empty Backend means "sim": records from before the
// backend layer could only have come from the simulator). The stats must
// not be mutated afterwards (they are shared with concurrent readers).
func (p *Plan) SetMeasured(ms *MeasuredStats) {
	if ms.Backend == "" {
		ms.Backend = "sim"
	}
	p.measuredMu.Lock()
	if p.measured == nil {
		p.measured = make(map[string]*MeasuredStats, 1)
	}
	p.measured[ms.Backend] = ms
	p.measuredGen++
	p.measuredMu.Unlock()
}

// measuredGeneration returns the annotation write counter. A derived
// artifact rendered at generation g is stale iff the current generation
// differs.
func (p *Plan) measuredGeneration() uint64 {
	p.measuredMu.RLock()
	defer p.measuredMu.RUnlock()
	return p.measuredGen
}

// HitResponseBody returns the memoized rendering of the plan under
// (loop, the current annotation generation), calling render to produce
// it on the first request — and again whenever the loop name differs or
// a measured annotation landed since. Repeated calls with the same loop
// name return the identical byte slice, which callers must treat as
// immutable; this is what makes repeated cache hits byte-identical on
// the serving fast lane.
func (p *Plan) HitResponseBody(loop string, render func() ([]byte, error)) ([]byte, error) {
	gen := p.measuredGeneration()
	p.hitMu.Lock()
	if p.hitBody != nil && p.hitLoop == loop && p.hitGen == gen {
		body := p.hitBody
		p.hitMu.Unlock()
		return body, nil
	}
	p.hitMu.Unlock()
	// Render outside the lock: marshaling a near-cap schedule reply is
	// exactly the work the memo exists to avoid serializing requests on.
	// Concurrent first hits may render twice; the bytes are identical
	// (render is a pure function of the plan at one generation), so
	// last-writer-wins is safe.
	body, err := render()
	if err != nil {
		return nil, err
	}
	p.hitMu.Lock()
	p.hitBody, p.hitLoop, p.hitGen = body, loop, gen
	p.hitMu.Unlock()
	return body, nil
}

// ScheduleJSON returns the plan's composed schedule in the internal/plan
// wire format, marshaled once per Plan.
func (p *Plan) ScheduleJSON() ([]byte, error) {
	p.schedJSONOnce.Do(func() {
		p.schedJSON, p.schedJSONErr = p.Schedule.Full.MarshalJSON()
	})
	return p.schedJSON, p.schedJSONErr
}

// Rate returns the plan's steady-state cycles per iteration.
func (p *Plan) Rate() float64 { return p.rate }

// Procs returns the number of processors the plan occupies.
func (p *Plan) Procs() int { return p.procs }

// Makespan returns the composed schedule's finishing cycle.
func (p *Plan) Makespan() int { return p.makespan }

// Pattern returns the plan's steady-state summary, or nil when no
// pattern was verified (Schedule.GreedyFallback is then true, or the
// Cyclic subset spans several components).
func (p *Plan) Pattern() *PatternInfo { return p.pattern }

// Stats is a point-in-time snapshot of pipeline behaviour. The
// request-level counters (hits, misses, computes) are the pipeline's
// own; Store nests the storage layer's per-tier counters.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Computes uint64 `json:"computes"` // misses that actually scheduled (rest piggybacked on an in-flight computation)
	// Evictions aggregates plans dropped under size pressure across
	// every store tier.
	Evictions uint64 `json:"evictions"`
	// Entries mirrors the store's Len.
	Entries int `json:"entries"`
	// Store is the storage layer's own snapshot (nested per-tier for a
	// TieredStore).
	Store StoreStats `json:"store"`
	// Evals counts plan evaluations by evaluator kind.
	Evals EvalStats `json:"evals"`
}

// EvalStats counts how plans were scored: Static and Measured are
// evaluator invocations (every Sweep/AutoTune grid point, batch summary
// and simulate request is one), Trials the simulated machine runs the
// measured evaluations cost.
type EvalStats struct {
	Static   uint64 `json:"static"`
	Measured uint64 `json:"measured"`
	Trials   uint64 `json:"trials"`
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pipeline is a concurrency-safe scheduling front end over a PlanStore.
// The zero value is not usable; construct with New.
type Pipeline struct {
	cfg   Config
	store PlanStore

	hits     atomic.Uint64
	misses   atomic.Uint64
	computes atomic.Uint64

	staticEvals   atomic.Uint64
	measuredEvals atomic.Uint64
	evalTrials    atomic.Uint64

	// flight collapses concurrent misses for one key into a single
	// computation. It wraps the store: the winning goroutine builds the
	// plan, Puts it, and every piggybacked request shares the outcome.
	flight flightGroup

	// compileMu guards the compile cache: an LRU of parsed loop sources
	// keyed by source hash (so arbitrarily large request bodies are never
	// retained as map keys — and the raw digest array, not its hex
	// rendering, so the serving hot path never formats a key string),
	// used by CompileAndSchedule and the server.
	compileMu sync.Mutex
	compiled  map[[sha256.Size]byte]*list.Element // sha256(source) -> element of compOrder
	compOrder *list.List                          // front = most recently used; Value is *compiledEntry
}

// compiledEntry is one compile-cache slot.
type compiledEntry struct {
	key [sha256.Size]byte
	c   *loopir.Compiled
}

// flightGroup is a minimal singleflight: one in-flight computation per
// key, removed as soon as it completes (the completed plan then lives in
// the store, not here — so failures are naturally never cached).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	plan *Plan
	err  error
}

// do runs fn once per key among concurrent callers; late arrivals block
// until the in-flight computation completes and share its outcome.
func (g *flightGroup) do(key string, fn func() (*Plan, error)) (*Plan, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.plan, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.plan, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.plan, c.err
}

// New returns an empty Pipeline over cfg.Store (or a fresh MemStore).
func New(cfg Config) *Pipeline {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	st := cfg.Store
	if st == nil {
		st = NewMemStore(MemConfig{MaxEntries: cfg.MaxEntries, MaxBytes: cfg.MaxBytes})
	}
	return &Pipeline{
		cfg:       cfg,
		store:     st,
		compiled:  make(map[[sha256.Size]byte]*list.Element),
		compOrder: list.New(),
	}
}

// Store returns the pipeline's storage layer.
func (p *Pipeline) Store() PlanStore { return p.store }

// PlanKey derives the canonical store key of a plan from its three
// ingredients: graph fingerprint, scheduling options, iteration count.
// The whole Options struct is formatted (field names included) so a
// field added to core.Options later joins the key automatically instead
// of silently aliasing plans. Every producer — Schedule, Batch, Sweep,
// AutoTune, Warmup — and every PlanStore uses exactly this derivation;
// EncodePlan embeds it in durable records and DecodePlan re-derives it
// to detect tampered or aliased records.
func PlanKey(hash string, o core.Options, n int) string {
	return hash + keySuffix(o, n)
}

// keySuffixes memoizes the formatted "|<options>|n<iterations>" tail of
// plan keys: the reflective %+v rendering of Options costs several
// allocations, and the serving hot path derives a key per request. The
// cardinality of (options, iterations) pairs is tiny in practice (tune
// grids and serving defaults); keySuffixCount stops inserting past a
// ceiling anyway so pathological traffic cannot grow the map without
// bound — over-cap pairs just pay the format cost per call.
var (
	keySuffixes    sync.Map // keySuffixKey -> string
	keySuffixCount atomic.Int64
)

const maxKeySuffixes = 1 << 13

type keySuffixKey struct {
	o core.Options
	n int
}

// legacyKeyOptions mirrors core.Options minus Grain, in field order, so
// the %+v rendering of a grain-0 request is byte-identical to the
// pre-grain key suffix — every plan record persisted before the grain
// axis keeps its key, zero recomputes. Grain joins the key as an
// explicit "|grainG" token only when set (> 1); a reflection test pins
// the mirror against core.Options drifting.
type legacyKeyOptions struct {
	Processors    int
	CommCost      int
	CommFromStart bool
	WindowHeight  int
	MaxIterations int
	AppendOnly    bool
	FIFOOrder     bool
	FoldNonCyclic bool
	DriftBound    int
}

// keySuffix formats (and usually memoizes) the non-hash tail of a plan
// key: byte-identical to the historical fmt.Sprintf("|%+v|n%d", o, n)
// for Grain <= 1, with a "|grainG" token spliced before the iteration
// count otherwise.
func keySuffix(o core.Options, n int) string {
	k := keySuffixKey{o, n}
	if s, ok := keySuffixes.Load(k); ok {
		return s.(string)
	}
	legacy := legacyKeyOptions{
		Processors:    o.Processors,
		CommCost:      o.CommCost,
		CommFromStart: o.CommFromStart,
		WindowHeight:  o.WindowHeight,
		MaxIterations: o.MaxIterations,
		AppendOnly:    o.AppendOnly,
		FIFOOrder:     o.FIFOOrder,
		FoldNonCyclic: o.FoldNonCyclic,
		DriftBound:    o.DriftBound,
	}
	var s string
	if o.Grain > 1 {
		s = fmt.Sprintf("|%+v|grain%d|n%d", legacy, o.Grain, n)
	} else {
		s = fmt.Sprintf("|%+v|n%d", legacy, n)
	}
	if keySuffixCount.Load() < maxKeySuffixes {
		if _, loaded := keySuffixes.LoadOrStore(k, s); !loaded {
			keySuffixCount.Add(1)
		}
	}
	return s
}

// Schedule runs the full pipeline on g for n iterations, serving from the
// plan store when an identical request (same graph content, options and
// iteration count) was seen before — by this process, or, with a durable
// store, by an earlier one. The boolean reports whether the plan came
// from the store.
func (p *Pipeline) Schedule(g *graph.Graph, opts core.Options, n int) (*Plan, bool, error) {
	// Grain 1 and grain 0 schedule identically (no chunking); normalize
	// so they share one cache key — and so the grain-0 key stays
	// byte-identical to pre-grain records.
	if opts.Grain <= 1 {
		opts.Grain = 0
	}
	hash := g.Fingerprint()
	if p.cfg.DisableCache {
		plan, err := build(g, hash, opts, n)
		p.misses.Add(1)
		p.computes.Add(1)
		return plan, false, err
	}
	key := PlanKey(hash, opts, n)
	if plan, ok := p.store.Get(key); ok {
		p.hits.Add(1)
		return plan, true, nil
	}
	// Miss: compute (or piggyback on an identical in-flight computation)
	// and write the result through the store. Either way the request
	// waited the full scheduling latency, so both count as misses —
	// reporting piggybacks as hits would flatter the counters.
	plan, err := p.flight.do(key, func() (*Plan, error) {
		p.computes.Add(1)
		plan, err := build(g, hash, opts, n)
		if err != nil {
			return nil, err
		}
		p.store.Put(key, plan)
		return plan, nil
	})
	p.misses.Add(1)
	if err != nil {
		return nil, false, err
	}
	return plan, false, nil
}

// build runs the uncached pipeline stages: schedule, then lower.
func build(g *graph.Graph, hash string, opts core.Options, n int) (*Plan, error) {
	ls, err := core.ScheduleLoop(g, opts, n)
	if err != nil {
		return nil, err
	}
	progs, err := program.Build(ls.Full)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		GraphHash:  hash,
		Opts:       opts,
		Iterations: n,
		Schedule:   ls,
		Programs:   progs,
		makespan:   ls.Full.Makespan(),
		procs:      ls.Full.ProcsUsed(),
		rate:       ls.RatePerIteration(),
	}
	if pat := ls.Pattern(); pat != nil {
		p.pattern = &PatternInfo{
			Cycles:    pat.Cycles(),
			IterShift: pat.IterShift,
			Rate:      pat.RatePerIteration(),
			Forced:    pat.Forced,
		}
	}
	return p, nil
}

// Lookup probes the plan store for key without scheduling on a miss.
// A found plan counts as a pipeline hit; a miss counts nothing — the
// caller decides what happens next (the cluster serving path forwards
// the request to the key's owner, and only a failed forward falls back
// into Schedule, which then does its own miss accounting).
func (p *Pipeline) Lookup(key string) (*Plan, bool) {
	if p.cfg.DisableCache {
		return nil, false
	}
	plan, ok := p.store.Get(key)
	if ok {
		p.hits.Add(1)
	}
	return plan, ok
}

// CompileAndSchedule parses loop-language source (memoizing compilation by
// source content), then schedules the compiled graph through the plan
// store.
func (p *Pipeline) CompileAndSchedule(src string, opts core.Options, n int) (*loopir.Compiled, *Plan, bool, error) {
	c, err := p.Compile(src)
	if err != nil {
		return nil, nil, false, err
	}
	plan, hit, err := p.Schedule(c.Graph, opts, n)
	return c, plan, hit, err
}

// Compile parses and analyzes loop-language source through the compile
// cache: repeat sources return the same *Compiled without re-parsing.
func (p *Pipeline) Compile(src string) (*loopir.Compiled, error) {
	key := sha256.Sum256([]byte(src))
	p.compileMu.Lock()
	if el, ok := p.compiled[key]; ok {
		p.compOrder.MoveToFront(el)
		c := el.Value.(*compiledEntry).c
		p.compileMu.Unlock()
		return c, nil
	}
	p.compileMu.Unlock()

	l, err := loopir.Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := loopir.Compile(l)
	if err != nil {
		return nil, err
	}

	p.compileMu.Lock()
	if el, ok := p.compiled[key]; ok {
		// A concurrent request compiled the same source first; keep that
		// result so repeat callers keep seeing one pointer.
		p.compOrder.MoveToFront(el)
		c = el.Value.(*compiledEntry).c
	} else {
		p.compiled[key] = p.compOrder.PushFront(&compiledEntry{key: key, c: c})
		for p.compOrder.Len() > p.cfg.MaxEntries {
			back := p.compOrder.Back()
			p.compOrder.Remove(back)
			delete(p.compiled, back.Value.(*compiledEntry).key)
		}
	}
	p.compileMu.Unlock()
	return c, nil
}

// Stats snapshots the pipeline counters and the store's own snapshot.
func (p *Pipeline) Stats() Stats {
	st := p.store.Stats()
	return Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Computes:  p.computes.Load(),
		Evictions: st.TotalEvictions(),
		Entries:   st.Entries,
		Store:     st,
		Evals: EvalStats{
			Static:   p.staticEvals.Load(),
			Measured: p.measuredEvals.Load(),
			Trials:   p.evalTrials.Load(),
		},
	}
}

// Flush empties the plan store and the compile cache. With a durable
// store this removes the persisted plans too — it is the programmatic
// form of `loopsched store flush`, not a cache drop.
func (p *Pipeline) Flush() error {
	err := p.store.Flush()
	p.compileMu.Lock()
	p.compiled = make(map[[sha256.Size]byte]*list.Element)
	p.compOrder.Init()
	p.compileMu.Unlock()
	return err
}

// Close releases the plan store (closing durable tiers). The pipeline
// must not be used afterwards.
func (p *Pipeline) Close() error { return p.store.Close() }
