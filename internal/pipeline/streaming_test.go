package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// nearCapIterations sizes the streaming tests' request: Figure 7 (5
// nodes) at the iteration cap embeds ~2.3 MB of schedule JSON — over
// the default 1 MiB streaming threshold, so a stock server streams it.
const nearCapIterations = 10_000

// nearCapRequest warms srv with the near-cap Figure 7 request (paying
// the one cold schedule) and returns the body bytes, a rewindable
// reader, and a request wrapping it, mirroring hitRequest.
func nearCapRequest(t testing.TB, srv *Server) ([]byte, *bytes.Reader, *http.Request) {
	t.Helper()
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2, "iterations": %d}`,
		fig7Source, nearCapIterations))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm request: status %d: %.200s", rec.Code, rec.Body)
	}
	rd := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, "/v1/schedule", io.NopCloser(rd))
	if err != nil {
		t.Fatal(err)
	}
	return body, rd, req
}

// TestStreamedReplyByteIdentical is the streaming lane's correctness
// anchor: the same request served by a streaming server (threshold
// forced tiny) and a buffered one (threshold forced huge) must produce
// byte-identical bodies, on the cold miss and on cache hits alike — the
// envelope split is a transport optimization, never a format change.
func TestStreamedReplyByteIdentical(t *testing.T) {
	streaming := NewServerWith(New(Config{}), ServerConfig{StreamThreshold: 64})
	buffered := NewServerWith(New(Config{}), ServerConfig{StreamThreshold: 1 << 30})
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))

	post := func(srv *Server) (*httptest.ResponseRecorder, []byte) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %.200s", rec.Code, rec.Body)
		}
		return rec, append([]byte(nil), rec.Body.Bytes()...)
	}

	var total uint64
	for i, want := range []string{`"cache_hit":false`, `"cache_hit":true`, `"cache_hit":true`} {
		srec, sbody := post(streaming)
		_, bbody := post(buffered)
		if !bytes.Contains(sbody, []byte(want)) {
			t.Fatalf("request %d: streamed body lacks %s: %.200s", i, want, sbody)
		}
		if !bytes.Equal(sbody, bbody) {
			t.Fatalf("request %d: streamed and buffered bodies differ (%d vs %d bytes)",
				i, len(sbody), len(bbody))
		}
		// The streamed reply carries no Content-Length (it goes out
		// chunked on a real connection); the buffered one is exact.
		if cl := srec.Header().Get("Content-Length"); cl != "" {
			t.Fatalf("request %d: streamed reply set Content-Length %q", i, cl)
		}
		total += uint64(len(sbody))
	}
	if got := streaming.streamed.Load(); got != 3 {
		t.Fatalf("streamed counter = %d, want 3", got)
	}
	if got := streaming.streamBytes.Load(); got != total {
		t.Fatalf("stream_bytes = %d, want %d", got, total)
	}
	if buffered.streamed.Load() != 0 {
		t.Fatal("buffered server counted a streamed reply")
	}
}

// TestStreamedReplyChunkedOnWire drives a streaming server over a real
// HTTP connection: the over-threshold reply must arrive with chunked
// transfer encoding (no Content-Length), parse as the usual response,
// and embed exactly the memoized schedule bytes. An under-threshold
// reply from the same server keeps the framed fast lane.
func TestStreamedReplyChunkedOnWire(t *testing.T) {
	srv := NewServerWith(New(Config{}), ServerConfig{StreamThreshold: 1 << 10})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Over threshold: the 21 KB figure-7 schedule.
	body := fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source)
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if resp.ContentLength != -1 {
		t.Fatalf("streamed reply has Content-Length %d, want chunked", resp.ContentLength)
	}
	if len(resp.TransferEncoding) != 1 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("transfer encoding = %v, want [chunked]", resp.TransferEncoding)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("streamed body does not parse: %v", err)
	}
	compiled, err := srv.pipe.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	plan, hit, err := srv.pipe.Schedule(compiled.Graph, mustParams(t, []byte(body)), 100)
	if err != nil || !hit {
		t.Fatalf("plan lookup: hit=%v err=%v", hit, err)
	}
	sched, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Schedule, sched) {
		t.Fatal("streamed schedule differs from the memoized ScheduleJSON")
	}

	// Under threshold: a 2-iteration request stays on the framed path.
	small := fmt.Sprintf(`{"source": %q, "processors": 2, "iterations": 2}`, fig7Source)
	resp, err = http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader([]byte(small)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.ContentLength <= 0 {
		t.Fatalf("small reply: status %d Content-Length %d, want framed", resp.StatusCode, resp.ContentLength)
	}
}

// openerStore wraps a PlanStore with a RecordOpener that serves the
// encoded record from memory, standing in for the disk tier so the
// server's raw-record streaming path is testable without a disk store
// (the disk-backed end-to-end test lives in internal/store).
type openerStore struct {
	PlanStore
	opened int
}

func (o *openerStore) OpenRecord(key string) (io.ReadCloser, int64, error) {
	plan, ok := o.PlanStore.Get(key)
	if !ok {
		return nil, 0, fmt.Errorf("no record for key %s", key)
	}
	rec, err := EncodePlan(plan)
	if err != nil {
		return nil, 0, err
	}
	o.opened++
	return io.NopCloser(bytes.NewReader(rec)), int64(len(rec)), nil
}

// TestServePlanRecordStreaming: GET /v1/plans/{fp}?key=… through a
// RecordOpener store must stream bytes identical to the fallback
// (Get + EncodePlan) path, with an exact Content-Length — the record
// wire format cannot depend on which store tier answered.
func TestServePlanRecordStreaming(t *testing.T) {
	opener := &openerStore{PlanStore: NewMemStore(MemConfig{})}
	streaming := NewServer(New(Config{Store: opener}))
	fallback := NewServer(New(Config{}))

	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))
	var fp string
	for _, srv := range []*Server{streaming, fallback} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("schedule: status %d: %.200s", rec.Code, rec.Body)
		}
		var out ScheduleResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		fp = out.GraphHash
	}
	key := PlanKey(fp, mustParams(t, body), 100)

	get := func(srv *Server) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/plans/"+fp+"?key="+url.QueryEscape(key), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET record: status %d: %.200s", rec.Code, rec.Body)
		}
		return rec
	}
	srec, frec := get(streaming), get(fallback)
	if opener.opened != 1 {
		t.Fatalf("OpenRecord called %d times, want 1", opener.opened)
	}
	if !bytes.Equal(srec.Body.Bytes(), frec.Body.Bytes()) {
		t.Fatal("streamed record differs from the encode-path record")
	}
	if cl := srec.Header().Get("Content-Length"); cl != strconv.Itoa(srec.Body.Len()) {
		t.Fatalf("streamed record Content-Length %q, body %d bytes", cl, srec.Body.Len())
	}
	if streaming.streamed.Load() != 1 {
		t.Fatalf("streamed counter = %d, want 1", streaming.streamed.Load())
	}
	if fallback.streamed.Load() != 0 {
		t.Fatal("fallback path counted a streamed reply")
	}
}

// TestStreamedReplyMidMeasurementRace streams near-cap cache hits
// concurrently with measured-annotation generation bumps on the served
// plan. Every reply must parse and embed exactly the plan's memoized
// schedule bytes: the streamed split snapshots its envelope and shares
// the immutable schedule memo, so a measurement landing mid-stream can
// change which annotations a reply carries but can never tear one.
// Run under -race this also proves the split publishes no shared
// mutable state.
func TestStreamedReplyMidMeasurementRace(t *testing.T) {
	srv := NewServer(New(Config{})) // default threshold: near-cap hits stream
	body, _, _ := nearCapRequest(t, srv)

	compiled, err := srv.pipe.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	plan, hit, err := srv.pipe.Schedule(compiled.Graph, mustParams(t, body), nearCapIterations)
	if err != nil || !hit {
		t.Fatalf("plan lookup: hit=%v err=%v", hit, err)
	}
	sched, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 4
		requests = 2
		bumps    = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*requests+bumps)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d", rec.Code)
					return
				}
				var out ScheduleResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					errs <- fmt.Errorf("torn streamed reply: %v", err)
					return
				}
				if !bytes.Equal(out.Schedule, sched) {
					errs <- fmt.Errorf("streamed schedule differs from the memo")
					return
				}
			}
		}()
	}
	for b := 0; b < bumps; b++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if _, err := srv.pipe.Evaluate(NewMeasuredEvaluator(2, 1, seed), plan); err != nil {
				errs <- err
			}
		}(int64(b + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.streamed.Load(); got < readers*requests {
		t.Fatalf("streamed counter = %d, want >= %d", got, readers*requests)
	}
}

// TestStreamedReplyAllocBytes is the PR's acceptance bar: serving a
// near-cap schedule reply through the streaming lane must allocate at
// least 10x fewer bytes than rendering it into one buffer, because the
// streamed path never materializes the body — only the ~1 KB envelope.
// Both servers share one pipeline (and so one plan); the buffered one
// has its memoized hit body dropped per request so each iteration pays
// the full render, which is what every distinct near-cap plan costs.
func TestStreamedReplyAllocBytes(t *testing.T) {
	pipe := New(Config{})
	streaming := NewServerWith(pipe, ServerConfig{})                     // default: streams over 1 MiB
	buffered := NewServerWith(pipe, ServerConfig{StreamThreshold: 1 << 30}) // never streams
	body, _, _ := nearCapRequest(t, streaming)

	compiled, err := pipe.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	plan, hit, err := pipe.Schedule(compiled.Graph, mustParams(t, body), nearCapIterations)
	if err != nil || !hit {
		t.Fatalf("plan lookup: hit=%v err=%v", hit, err)
	}
	sched, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 4
	perRequest := func(srv *Server, dropMemo bool) uint64 {
		rd := bytes.NewReader(nil)
		req, err := http.NewRequest(http.MethodPost, "/v1/schedule", io.NopCloser(rd))
		if err != nil {
			t.Fatal(err)
		}
		w := &discardResponseWriter{h: make(http.Header)}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < rounds; i++ {
			if dropMemo {
				plan.hitMu.Lock()
				plan.hitBody = nil
				plan.hitMu.Unlock()
			}
			rd.Reset(body)
			w.status, w.n = 0, 0
			srv.ServeHTTP(w, req)
			if w.status != http.StatusOK || w.n <= len(sched) {
				t.Fatalf("status %d, wrote %d bytes (schedule alone is %d)", w.status, w.n, len(sched))
			}
		}
		runtime.ReadMemStats(&m1)
		return (m1.TotalAlloc - m0.TotalAlloc) / rounds
	}

	streamed := perRequest(streaming, false)
	rendered := perRequest(buffered, true)
	t.Logf("near-cap reply (%d schedule bytes): streamed %d B/request, buffered %d B/request (%.0fx)",
		len(sched), streamed, rendered, float64(rendered)/float64(streamed))
	if rendered < 10*streamed {
		t.Fatalf("streaming saves only %.1fx over buffering (streamed %d, buffered %d); want >= 10x",
			float64(rendered)/float64(streamed), streamed, rendered)
	}
	const ceiling = 256 << 10
	if streamed > ceiling {
		t.Fatalf("streamed near-cap reply allocates %d B/request, over the %d ceiling", streamed, ceiling)
	}
}

// TestStreamStatsCounters: /v1/stats must report the streaming lane's
// traffic — replies counted and body bytes summed — and servers that
// never stream report zeros.
func TestStreamStatsCounters(t *testing.T) {
	srv := NewServerWith(New(Config{}), ServerConfig{StreamThreshold: 64})
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))
	var total uint64
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("schedule %d: status %d", i, rec.Code)
		}
		total += uint64(rec.Body.Len())
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var stats struct {
		Streamed    uint64 `json:"streamed"`
		StreamBytes uint64 `json:"stream_bytes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Streamed != 3 || stats.StreamBytes != total {
		t.Fatalf("stats streamed=%d stream_bytes=%d, want 3 and %d", stats.Streamed, stats.StreamBytes, total)
	}
}
