package pipeline

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"mimdloop/internal/exec"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// TestStaticEvaluatorPinsScheduledRate pins the extraction: scoring
// through StaticEvaluator is byte-identical to reading the plan's
// scheduled rate and processor count directly, at every Figure-7 grid
// point.
func TestStaticEvaluatorPinsScheduledRate(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	for _, r := range p.Sweep(g, Grid([]int{1, 2, 3, 4}, []int{0, 1, 2, 3}), SweepOptions{}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Score.Rate != r.Plan.Rate() || r.Score.Procs != r.Plan.Procs() {
			t.Fatalf("point %+v: static score %+v != plan rate %v procs %d",
				r.Point, r.Score, r.Plan.Rate(), r.Plan.Procs())
		}
		if r.Score.Measured != nil {
			t.Fatalf("point %+v: static score carries measured stats", r.Point)
		}
		if r.Rate != r.Score.Rate {
			t.Fatalf("point %+v: Result.Rate %v != static score %v", r.Point, r.Rate, r.Score.Rate)
		}
	}
}

// TestMeasuredFluct0RanksLikeStatic is the property test of the issue:
// with no fluctuation and a single trial, the measured evaluator must
// rank every Figure-7 grid point identically to the static evaluator —
// AutoTune under every objective picks the same winner from the same
// grid, and per point the measured makespan never contradicts the static
// ordering that tuning relies on.
func TestMeasuredFluct0RanksLikeStatic(t *testing.T) {
	g := workload.Figure7().Graph
	procs := []int{1, 2, 3, 4, 5}
	costs := []int{0, 1, 2, 3, 4}
	for _, obj := range []Objective{ObjectiveMinRate, ObjectiveMinProcs, ObjectiveEfficiency} {
		static, err := New(Config{}).AutoTune(g, 100, TuneOptions{
			Processors: procs, CommCosts: costs, Objective: obj,
		})
		if err != nil {
			t.Fatalf("%v static: %v", obj, err)
		}
		measured, err := New(Config{}).AutoTune(g, 100, TuneOptions{
			Processors: procs, CommCosts: costs, Objective: obj,
			Evaluator: &MeasuredEvaluator{Trials: 1, Fluct: 0},
		})
		if err != nil {
			t.Fatalf("%v measured: %v", obj, err)
		}
		if static.Best.Point != measured.Best.Point {
			t.Errorf("%v: static winner %+v != fluct-free measured winner %+v",
				obj, static.Best.Point, measured.Best.Point)
		}
		if measured.Evaluator != "measured" || static.Evaluator != "static" {
			t.Errorf("evaluator echo: %q / %q", static.Evaluator, measured.Evaluator)
		}
		// Point by point, the fluctuation-free measured rate is bounded by
		// the static rate (the machine is self-timed: it can beat the
		// static schedule, never lose to it) and the measured block is
		// filled.
		for i, mr := range measured.Results {
			sr := static.Results[i]
			if mr.Err != nil || sr.Err != nil {
				t.Fatalf("point %+v: err %v / %v", mr.Point, mr.Err, sr.Err)
			}
			if mr.Score.Measured == nil || mr.Score.Measured.Trials != 1 {
				t.Fatalf("point %+v: measured stats missing: %+v", mr.Point, mr.Score)
			}
			if mr.SimMakespan != mr.Score.Measured.MakespanMin || mr.Score.Measured.MakespanMin != mr.Score.Measured.MakespanMax {
				t.Fatalf("point %+v: single fluct-free trial has spread: %+v", mr.Point, mr.Score.Measured)
			}
			if mr.SimMakespan > mr.Plan.Makespan() {
				t.Fatalf("point %+v: measured makespan %d beyond static %d",
					mr.Point, mr.SimMakespan, mr.Plan.Makespan())
			}
			if mr.Rate != sr.Rate {
				t.Fatalf("point %+v: static Rate drifted under measured evaluation: %v vs %v",
					mr.Point, mr.Rate, sr.Rate)
			}
		}
	}
}

// TestMeasuredWinnerBeatsStaticWinner is the acceptance criterion: under
// fluctuation (>= 5 seeded trials, fluct > 0), the measured-ranked
// winner's measured Sp must be at least the measured Sp of the
// static-ranked winner on the Figure-7 loop.
func TestMeasuredWinnerBeatsStaticWinner(t *testing.T) {
	g := workload.Figure7().Graph
	procs := []int{1, 2, 3, 4, 5}
	costs := []int{0, 1, 2, 3, 4}
	ev := &MeasuredEvaluator{Trials: 5, Fluct: 3, Seed: 1}

	pipe := New(Config{})
	static, err := pipe.AutoTune(g, 100, TuneOptions{Processors: procs, CommCosts: costs})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := pipe.AutoTune(g, 100, TuneOptions{
		Processors: procs, CommCosts: costs, Evaluator: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Score the static winner with the same measured evaluator.
	staticScore, err := pipe.Evaluate(ev, static.Best.Plan)
	if err != nil {
		t.Fatal(err)
	}
	got := measured.Best.Score.Measured
	if got == nil || got.Trials != 5 {
		t.Fatalf("measured winner carries no 5-trial stats: %+v", measured.Best.Score)
	}
	if got.SpMean < staticScore.Measured.SpMean {
		t.Fatalf("measured-ranked winner Sp %.2f%% < static-ranked winner Sp %.2f%%",
			got.SpMean, staticScore.Measured.SpMean)
	}
	if got.SpMin > got.SpMean || got.SpMean > got.SpMax {
		t.Fatalf("Sp spread out of order: %+v", got)
	}
}

// TestSimulateSweepStillWorks pins the pre-Evaluator Simulate spelling:
// it must behave as a 1-trial measured evaluation with the provided
// machine config.
func TestSimulateSweepStillWorks(t *testing.T) {
	g := workload.Figure7().Graph
	points := Grid([]int{2, 3}, []int{2, 3})
	sim := New(Config{}).Sweep(g, points, SweepOptions{
		Simulate:      true,
		MachineConfig: machine.Config{Fluct: 3, Seed: 7},
	})
	ev := New(Config{}).Sweep(g, points, SweepOptions{
		Evaluator: &MeasuredEvaluator{Trials: 1, Fluct: 3, Seed: 7},
	})
	for i := range sim {
		if sim[i].Err != nil || ev[i].Err != nil {
			t.Fatal(sim[i].Err, ev[i].Err)
		}
		if sim[i].SimMakespan != ev[i].SimMakespan || sim[i].Sp != ev[i].Sp {
			t.Fatalf("point %+v: Simulate %d/%v != evaluator %d/%v",
				sim[i].Point, sim[i].SimMakespan, sim[i].Sp, ev[i].SimMakespan, ev[i].Sp)
		}
		// Like the pre-Evaluator path it replaces, Simulate reads
		// measurements without annotating the plans it touched.
		if sim[i].Plan.Measured() != nil {
			t.Fatalf("point %+v: Simulate sweep annotated the plan", sim[i].Point)
		}
	}
}

// TestEvaluatorCounters checks Stats.Evals: static and measured
// evaluations (and their trials) are counted across Sweep and AutoTune.
func TestEvaluatorCounters(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	points := Grid([]int{2, 3}, []int{2})
	if r := p.Sweep(g, points, SweepOptions{}); r[0].Err != nil || r[1].Err != nil {
		t.Fatal(r[0].Err, r[1].Err)
	}
	st := p.Stats()
	if st.Evals.Static != 2 || st.Evals.Measured != 0 || st.Evals.Trials != 0 {
		t.Fatalf("after static sweep: %+v", st.Evals)
	}
	if r := p.Sweep(g, points, SweepOptions{Evaluator: &MeasuredEvaluator{Trials: 3, Fluct: 2, Seed: 1}}); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	st = p.Stats()
	if st.Evals.Static != 2 || st.Evals.Measured != 2 || st.Evals.Trials != 6 {
		t.Fatalf("after measured sweep: %+v", st.Evals)
	}
}

// TestMeasuredFluctFreeCollapsesTrials: with fluct <= 1 every trial is
// bit-identical, so the evaluator runs (and reports, and counts) one.
func TestMeasuredFluctFreeCollapsesTrials(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	score, err := p.Evaluate(&MeasuredEvaluator{Trials: 8, Fluct: 0}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if score.Measured.Trials != 1 {
		t.Fatalf("fluct-free evaluation ran %d trials, want 1", score.Measured.Trials)
	}
	if st := p.Stats(); st.Evals.Trials != 1 {
		t.Fatalf("counted %d trials, want 1", st.Evals.Trials)
	}
}

// TestMeasuredEvaluationReputsAnnotatedPlan: the plan's original store
// Put happens at compute time, before any evaluation, so Evaluate must
// write the annotated plan through again — that re-put is what carries
// the measurement into durable tiers (codec v2).
func TestMeasuredEvaluationReputsAnnotatedPlan(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	puts := p.Store().Stats().Puts
	if _, err := p.Evaluate(StaticEvaluator{}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts {
		t.Fatalf("static evaluation wrote the store: %d puts, was %d", got, puts)
	}
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+1 {
		t.Fatalf("measured evaluation did not re-put the plan: %d puts, was %d", got, puts)
	}
	// A repeat of the identical (deterministic) evaluation changes
	// nothing and must not rewrite the store again.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+1 {
		t.Fatalf("unchanged annotation re-put the plan: %d puts, want %d", got, puts+1)
	}
	// A different measurement does.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 2}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+2 {
		t.Fatalf("changed annotation not re-put: %d puts, want %d", got, puts+2)
	}
	// The stored plan now carries the measurement, so a durable tier
	// would encode a v2 record with the measured block.
	stored, ok := p.Store().Get(PlanKey(plan.GraphHash, plan.Opts, plan.Iterations))
	if !ok || stored.Measured() == nil {
		t.Fatalf("stored plan lost the annotation (ok=%v)", ok)
	}
}

// TestTransientEvaluationLeavesPlanAlone: a transient probe (the
// ?simulate=1 path) reports its measurement but neither annotates the
// plan nor rewrites the store — an ad-hoc probe must never clobber a
// tune's persisted measurement.
func TestTransientEvaluationLeavesPlanAlone(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberate tune-style measurement annotates the plan first.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 4, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	want := plan.Measured()
	puts := p.Store().Stats().Puts

	score, err := p.Evaluate(&MeasuredEvaluator{Trials: 1, Fluct: 0, Transient: true}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if score.Measured == nil || score.Measured.Trials != 1 {
		t.Fatalf("transient probe returned no measurement: %+v", score)
	}
	if plan.Measured() != want {
		t.Fatalf("transient probe overwrote the annotation: %+v", plan.Measured())
	}
	if got := p.Store().Stats().Puts; got != puts {
		t.Fatalf("transient probe rewrote the store: %d puts, was %d", got, puts)
	}
	if st := p.Stats(); st.Evals.Measured != 2 {
		t.Fatalf("transient probe not counted: %+v", st.Evals)
	}
}

// TestPlanCodecV3MeasuredRoundTrip: a plan annotated with measured
// evaluations from both backends persists them through encode/decode —
// neither overwrites the other — and the decoded plan re-encodes
// byte-identically.
func TestPlanCodecV3MeasuredRoundTrip(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 4, Fluct: 3, Seed: 9}, plan); err != nil {
		t.Fatal(err)
	}
	if plan.Measured() == nil {
		t.Fatal("measured evaluation did not annotate the plan")
	}
	// A second backend's annotation coexists with the simulator's
	// (hand-built so the codec test stays free of wall-clock noise).
	plan.SetMeasured(&MeasuredStats{
		Backend: "gort", Trials: 2,
		SpMin: 10, SpMean: 12, SpP95: 10, SpMax: 14,
		MakespanMin: 4000, MakespanMax: 5000, MakespanMean: 4500, MakespanP95: 5000,
	})
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"version":4`)) || !bytes.Contains(data, []byte(`"measured_by"`)) {
		t.Fatalf("record is not a measured v4 record: %s", data[:120])
	}
	key, got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if key != PlanKey(plan.GraphHash, plan.Opts, plan.Iterations) {
		t.Fatalf("key %q", key)
	}
	if *got.MeasuredBy("sim") != *plan.MeasuredBy("sim") {
		t.Fatalf("sim stats did not round-trip: %+v vs %+v", got.MeasuredBy("sim"), plan.MeasuredBy("sim"))
	}
	if *got.MeasuredBy("gort") != *plan.MeasuredBy("gort") {
		t.Fatalf("gort stats did not round-trip: %+v vs %+v", got.MeasuredBy("gort"), plan.MeasuredBy("gort"))
	}
	data2, err := EncodePlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded v4 record not byte-identical")
	}
}

// TestPlanCodecDecodesV2 pins backward compatibility with the PR 4
// format: a version-2 record's single "measured" block (which predates
// backend identity) must decode as the sim backend's annotation.
func TestPlanCodecDecodesV2(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 4, Fluct: 3, Seed: 9}, plan); err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v3 record into its v2 shape: version header 2, the
	// measured_by array replaced by its single element under "measured",
	// with the (then nonexistent) backend and p95 fields dropped.
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	var measured []map[string]json.RawMessage
	if err := json.Unmarshal(rec["measured_by"], &measured); err != nil {
		t.Fatal(err)
	}
	if len(measured) != 1 {
		t.Fatalf("expected one annotation, got %d", len(measured))
	}
	delete(measured[0], "backend")
	delete(measured[0], "sp_p95")
	delete(measured[0], "makespan_p95")
	single, err := json.Marshal(measured[0])
	if err != nil {
		t.Fatal(err)
	}
	delete(rec, "measured_by")
	rec["measured"] = single
	rec["version"] = json.RawMessage("2")
	v2, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodePlan(v2)
	if err != nil {
		t.Fatalf("v2 record no longer decodes: %v", err)
	}
	ms := got.MeasuredBy("sim")
	if ms == nil {
		t.Fatal("v2 measured block not adopted as the sim backend's annotation")
	}
	want := plan.MeasuredBy("sim")
	if ms.Backend != "sim" || ms.Trials != want.Trials || ms.SpMean != want.SpMean ||
		ms.MakespanMean != want.MakespanMean {
		t.Fatalf("v2 annotation drifted: %+v vs %+v", ms, want)
	}
	if got.MeasuredBy("gort") != nil {
		t.Fatal("v2 record grew a gort annotation from nowhere")
	}
}

// TestGortEvaluatorFigure7 is the acceptance pin for the goroutine
// backend: a measured evaluation on gort executes the Figure 7 plan for
// real (value-checked against the sequential interpretation inside the
// backend), reports a finite measured Sp and a positive wall-clock rate,
// and annotates the plan under the backend's own identity — without
// touching the simulator's annotation.
func TestGortEvaluatorFigure7(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 60)
	if err != nil {
		t.Fatal(err)
	}
	// A sim measurement first, so cross-backend isolation is observable.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 3, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	simStats := plan.MeasuredBy("sim")
	if simStats == nil || simStats.Backend != "sim" {
		t.Fatalf("sim annotation missing: %+v", simStats)
	}

	gort := &MeasuredEvaluator{Trials: 2, Backend: exec.Goroutine{}}
	score, err := p.Evaluate(gort, plan)
	if err != nil {
		t.Fatal(err)
	}
	if score.Rate <= 0 || math.IsInf(score.Rate, 0) || math.IsNaN(score.Rate) {
		t.Fatalf("gort rate %v ns/iteration", score.Rate)
	}
	m := score.Measured
	if m == nil || m.Backend != "gort" || m.Trials != 2 {
		t.Fatalf("gort measured block %+v", m)
	}
	for _, sp := range []float64{m.SpMin, m.SpMean, m.SpP95, m.SpMax} {
		if math.IsInf(sp, 0) || math.IsNaN(sp) {
			t.Fatalf("gort Sp not finite: %+v", m)
		}
	}
	if m.MakespanMin <= 0 || m.MakespanMax < m.MakespanMin {
		t.Fatalf("gort makespan spread %+v", m)
	}
	if got := plan.MeasuredBy("gort"); got != m {
		t.Fatalf("gort annotation %+v, want the evaluation's stats", got)
	}
	if got := plan.MeasuredBy("sim"); got != simStats {
		t.Fatalf("gort evaluation overwrote the sim annotation: %+v", got)
	}
	if st := p.Stats(); st.Evals.Measured != 2 || st.Evals.Trials != 5 {
		t.Fatalf("counters after sim+gort evals: %+v", st.Evals)
	}
}

// TestSpreadObjectivesRankStatistics: the evaluator's Objective selects
// which distribution statistic becomes Score.Rate — mean (default),
// worst, or p95 — while the annotated stats stay identical.
func TestSpreadObjectivesRankStatistics(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	base := MeasuredEvaluator{Trials: 8, Fluct: 4, Seed: 3}
	rates := map[EvalObjective]float64{}
	var stats *MeasuredStats
	for _, obj := range []EvalObjective{EvalMean, EvalWorst, EvalP95} {
		ev := base
		ev.Objective = obj
		score, err := p.Evaluate(&ev, plan)
		if err != nil {
			t.Fatal(err)
		}
		rates[obj] = score.Rate
		if stats == nil {
			stats = score.Measured
		} else if *score.Measured != *stats {
			t.Fatalf("objective %v changed the measured stats: %+v vs %+v", obj, score.Measured, stats)
		}
	}
	n := float64(plan.Iterations)
	if rates[EvalMean] != stats.MakespanMean/n {
		t.Errorf("mean rate %v, want %v", rates[EvalMean], stats.MakespanMean/n)
	}
	if rates[EvalWorst] != float64(stats.MakespanMax)/n {
		t.Errorf("worst rate %v, want %v", rates[EvalWorst], float64(stats.MakespanMax)/n)
	}
	if rates[EvalP95] != stats.MakespanP95/n {
		t.Errorf("p95 rate %v, want %v", rates[EvalP95], stats.MakespanP95/n)
	}
	if rates[EvalWorst] < rates[EvalP95] || rates[EvalWorst] < rates[EvalMean] {
		t.Errorf("worst must bound the other statistics: %+v", rates)
	}
	if stats.SpMin > stats.SpP95 || stats.SpP95 > stats.SpMax {
		t.Errorf("Sp spread out of order: %+v", stats)
	}
	// AutoTune consumes the spread-aware rate through the ordinary
	// objective machinery — a worst-case tune runs end to end and its
	// winner minimizes the worst measured makespan over the grid.
	res, err := p.AutoTune(g, 50, TuneOptions{
		Processors: []int{1, 2, 3}, CommCosts: []int{1, 2, 3},
		Evaluator: &MeasuredEvaluator{Trials: 5, Fluct: 4, Seed: 3, Objective: EvalWorst},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sim" || res.Evaluator != "measured" {
		t.Fatalf("tune echo: evaluator %q backend %q", res.Evaluator, res.Backend)
	}
	for _, r := range res.Results {
		if r.Err == nil && r.Score.Rate < res.Best.Score.Rate {
			t.Fatalf("point %+v beats the worst-case winner: %v < %v", r.Point, r.Score.Rate, res.Best.Score.Rate)
		}
	}
}

// noisyBackend is a fake non-deterministic backend that records how many
// RunTrials calls overlap, for pinning sweep serialization.
type noisyBackend struct {
	mu       sync.Mutex
	cur, max int
}

func (b *noisyBackend) Name() string                      { return "noisy" }
func (b *noisyBackend) Deterministic() bool               { return false }
func (b *noisyBackend) EffectiveTrials(trials, _ int) int { return trials }
func (b *noisyBackend) RunTrials(g *graph.Graph, progs []program.Program, iterations int, cfg exec.TrialConfig) (*exec.TrialStats, error) {
	b.mu.Lock()
	b.cur++
	if b.cur > b.max {
		b.max = b.cur
	}
	b.mu.Unlock()
	time.Sleep(2 * time.Millisecond) // widen any overlap window
	b.mu.Lock()
	b.cur--
	b.mu.Unlock()
	return &exec.TrialStats{
		Backend:    "noisy",
		Trials:     cfg.Trials,
		Makespans:  []float64{100},
		Sequential: float64(iterations * g.TotalLatency()),
	}, nil
}

// TestSweepSerializesNonDeterministicBackends: a sweep scored by a
// wall-clock backend must never time two grid points concurrently —
// parallel timed runs would measure cross-point CPU interference, not
// plan quality — whatever worker count was requested.
func TestSweepSerializesNonDeterministicBackends(t *testing.T) {
	g := workload.Figure7().Graph
	be := &noisyBackend{}
	res := New(Config{}).Sweep(g, Grid([]int{1, 2, 3}, []int{1, 2}), SweepOptions{
		Workers:   8,
		Evaluator: &MeasuredEvaluator{Trials: 1, Backend: be},
	})
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if be.max != 1 {
		t.Fatalf("%d wall-clock evaluations overlapped, want serial execution", be.max)
	}
}

// TestEffectiveTrialsSharedBilling is the regression test for moving the
// fluct<=1 collapse out of server validation: the evaluator/backend
// layer owns it, so the library evaluator, the CLI (which constructs the
// same evaluator) and the HTTP eval block all resolve the same counts.
func TestEffectiveTrialsSharedBilling(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   MeasuredEvaluator
		req  EvalRequest
		want int
	}{
		{"sim fluct-free collapses", MeasuredEvaluator{Trials: 8, Fluct: 0},
			EvalRequest{Mode: "measured", Trials: 8, Fluct: 0}, 1},
		{"sim fluct 1 collapses", MeasuredEvaluator{Trials: 8, Fluct: 1},
			EvalRequest{Mode: "measured", Trials: 8, Fluct: 1}, 1},
		{"sim fluctuating runs all", MeasuredEvaluator{Trials: 8, Fluct: 3},
			EvalRequest{Mode: "measured", Trials: 8, Fluct: 3}, 8},
		{"sim default", MeasuredEvaluator{Fluct: 3},
			EvalRequest{Mode: "measured", Fluct: 3}, DefaultEvalTrials},
		{"gort never collapses", MeasuredEvaluator{Trials: 4, Backend: exec.Goroutine{}},
			EvalRequest{Mode: "measured", Trials: 4, Backend: "gort"}, 4},
		{"gort default", MeasuredEvaluator{Backend: exec.Goroutine{}},
			EvalRequest{Mode: "measured", Backend: "gort"}, DefaultEvalTrials},
	} {
		if got := tc.ev.EffectiveTrials(); got != tc.want {
			t.Errorf("%s: evaluator resolves %d trials, want %d", tc.name, got, tc.want)
		}
		if got := tc.req.trials(); got != tc.want {
			t.Errorf("%s: server bills %d trials, want %d", tc.name, got, tc.want)
		}
	}
}

// TestPlanCodecDecodesV1 pins backward compatibility: a version-1 record
// (the PR 3 format, no measured block) must still decode and serve.
func TestPlanCodecDecodesV1(t *testing.T) {
	g := workload.Figure7().Graph
	plan, _, err := New(Config{}).Schedule(g, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to version 1. The plan was never measured, so
	// the rest of the record is exactly the PR 3 format.
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if _, hasMeasured := rec["measured_by"]; hasMeasured {
		t.Fatal("unmeasured plan encoded a measured block")
	}
	v1 := bytes.Replace(data, []byte(`"version":4`), []byte(`"version":1`), 1)
	key, got, err := DecodePlan(v1)
	if err != nil {
		t.Fatalf("v1 record no longer decodes: %v", err)
	}
	if key != PlanKey(plan.GraphHash, plan.Opts, plan.Iterations) {
		t.Fatalf("v1 key %q", key)
	}
	if got.Measured() != nil {
		t.Fatal("v1 record grew measured stats from nowhere")
	}
	if got.Rate() != plan.Rate() || got.Procs() != plan.Procs() || got.Makespan() != plan.Makespan() {
		t.Fatal("v1 serving summary differs")
	}
	js1, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := got.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("v1 schedule JSON not byte-identical")
	}
}
