package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"mimdloop/internal/machine"
	"mimdloop/internal/workload"
)

// TestStaticEvaluatorPinsScheduledRate pins the extraction: scoring
// through StaticEvaluator is byte-identical to reading the plan's
// scheduled rate and processor count directly, at every Figure-7 grid
// point.
func TestStaticEvaluatorPinsScheduledRate(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	for _, r := range p.Sweep(g, Grid([]int{1, 2, 3, 4}, []int{0, 1, 2, 3}), SweepOptions{}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Score.Rate != r.Plan.Rate() || r.Score.Procs != r.Plan.Procs() {
			t.Fatalf("point %+v: static score %+v != plan rate %v procs %d",
				r.Point, r.Score, r.Plan.Rate(), r.Plan.Procs())
		}
		if r.Score.Measured != nil {
			t.Fatalf("point %+v: static score carries measured stats", r.Point)
		}
		if r.Rate != r.Score.Rate {
			t.Fatalf("point %+v: Result.Rate %v != static score %v", r.Point, r.Rate, r.Score.Rate)
		}
	}
}

// TestMeasuredFluct0RanksLikeStatic is the property test of the issue:
// with no fluctuation and a single trial, the measured evaluator must
// rank every Figure-7 grid point identically to the static evaluator —
// AutoTune under every objective picks the same winner from the same
// grid, and per point the measured makespan never contradicts the static
// ordering that tuning relies on.
func TestMeasuredFluct0RanksLikeStatic(t *testing.T) {
	g := workload.Figure7().Graph
	procs := []int{1, 2, 3, 4, 5}
	costs := []int{0, 1, 2, 3, 4}
	for _, obj := range []Objective{ObjectiveMinRate, ObjectiveMinProcs, ObjectiveEfficiency} {
		static, err := New(Config{}).AutoTune(g, 100, TuneOptions{
			Processors: procs, CommCosts: costs, Objective: obj,
		})
		if err != nil {
			t.Fatalf("%v static: %v", obj, err)
		}
		measured, err := New(Config{}).AutoTune(g, 100, TuneOptions{
			Processors: procs, CommCosts: costs, Objective: obj,
			Evaluator: &MeasuredEvaluator{Trials: 1, Fluct: 0},
		})
		if err != nil {
			t.Fatalf("%v measured: %v", obj, err)
		}
		if static.Best.Point != measured.Best.Point {
			t.Errorf("%v: static winner %+v != fluct-free measured winner %+v",
				obj, static.Best.Point, measured.Best.Point)
		}
		if measured.Evaluator != "measured" || static.Evaluator != "static" {
			t.Errorf("evaluator echo: %q / %q", static.Evaluator, measured.Evaluator)
		}
		// Point by point, the fluctuation-free measured rate is bounded by
		// the static rate (the machine is self-timed: it can beat the
		// static schedule, never lose to it) and the measured block is
		// filled.
		for i, mr := range measured.Results {
			sr := static.Results[i]
			if mr.Err != nil || sr.Err != nil {
				t.Fatalf("point %+v: err %v / %v", mr.Point, mr.Err, sr.Err)
			}
			if mr.Score.Measured == nil || mr.Score.Measured.Trials != 1 {
				t.Fatalf("point %+v: measured stats missing: %+v", mr.Point, mr.Score)
			}
			if mr.SimMakespan != mr.Score.Measured.MakespanMin || mr.Score.Measured.MakespanMin != mr.Score.Measured.MakespanMax {
				t.Fatalf("point %+v: single fluct-free trial has spread: %+v", mr.Point, mr.Score.Measured)
			}
			if mr.SimMakespan > mr.Plan.Makespan() {
				t.Fatalf("point %+v: measured makespan %d beyond static %d",
					mr.Point, mr.SimMakespan, mr.Plan.Makespan())
			}
			if mr.Rate != sr.Rate {
				t.Fatalf("point %+v: static Rate drifted under measured evaluation: %v vs %v",
					mr.Point, mr.Rate, sr.Rate)
			}
		}
	}
}

// TestMeasuredWinnerBeatsStaticWinner is the acceptance criterion: under
// fluctuation (>= 5 seeded trials, fluct > 0), the measured-ranked
// winner's measured Sp must be at least the measured Sp of the
// static-ranked winner on the Figure-7 loop.
func TestMeasuredWinnerBeatsStaticWinner(t *testing.T) {
	g := workload.Figure7().Graph
	procs := []int{1, 2, 3, 4, 5}
	costs := []int{0, 1, 2, 3, 4}
	ev := &MeasuredEvaluator{Trials: 5, Fluct: 3, Seed: 1}

	pipe := New(Config{})
	static, err := pipe.AutoTune(g, 100, TuneOptions{Processors: procs, CommCosts: costs})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := pipe.AutoTune(g, 100, TuneOptions{
		Processors: procs, CommCosts: costs, Evaluator: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Score the static winner with the same measured evaluator.
	staticScore, err := pipe.Evaluate(ev, static.Best.Plan)
	if err != nil {
		t.Fatal(err)
	}
	got := measured.Best.Score.Measured
	if got == nil || got.Trials != 5 {
		t.Fatalf("measured winner carries no 5-trial stats: %+v", measured.Best.Score)
	}
	if got.SpMean < staticScore.Measured.SpMean {
		t.Fatalf("measured-ranked winner Sp %.2f%% < static-ranked winner Sp %.2f%%",
			got.SpMean, staticScore.Measured.SpMean)
	}
	if got.SpMin > got.SpMean || got.SpMean > got.SpMax {
		t.Fatalf("Sp spread out of order: %+v", got)
	}
}

// TestSimulateSweepStillWorks pins the pre-Evaluator Simulate spelling:
// it must behave as a 1-trial measured evaluation with the provided
// machine config.
func TestSimulateSweepStillWorks(t *testing.T) {
	g := workload.Figure7().Graph
	points := Grid([]int{2, 3}, []int{2, 3})
	sim := New(Config{}).Sweep(g, points, SweepOptions{
		Simulate:      true,
		MachineConfig: machine.Config{Fluct: 3, Seed: 7},
	})
	ev := New(Config{}).Sweep(g, points, SweepOptions{
		Evaluator: &MeasuredEvaluator{Trials: 1, Fluct: 3, Seed: 7},
	})
	for i := range sim {
		if sim[i].Err != nil || ev[i].Err != nil {
			t.Fatal(sim[i].Err, ev[i].Err)
		}
		if sim[i].SimMakespan != ev[i].SimMakespan || sim[i].Sp != ev[i].Sp {
			t.Fatalf("point %+v: Simulate %d/%v != evaluator %d/%v",
				sim[i].Point, sim[i].SimMakespan, sim[i].Sp, ev[i].SimMakespan, ev[i].Sp)
		}
		// Like the pre-Evaluator path it replaces, Simulate reads
		// measurements without annotating the plans it touched.
		if sim[i].Plan.Measured() != nil {
			t.Fatalf("point %+v: Simulate sweep annotated the plan", sim[i].Point)
		}
	}
}

// TestEvaluatorCounters checks Stats.Evals: static and measured
// evaluations (and their trials) are counted across Sweep and AutoTune.
func TestEvaluatorCounters(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	points := Grid([]int{2, 3}, []int{2})
	if r := p.Sweep(g, points, SweepOptions{}); r[0].Err != nil || r[1].Err != nil {
		t.Fatal(r[0].Err, r[1].Err)
	}
	st := p.Stats()
	if st.Evals.Static != 2 || st.Evals.Measured != 0 || st.Evals.Trials != 0 {
		t.Fatalf("after static sweep: %+v", st.Evals)
	}
	if r := p.Sweep(g, points, SweepOptions{Evaluator: &MeasuredEvaluator{Trials: 3, Fluct: 2, Seed: 1}}); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	st = p.Stats()
	if st.Evals.Static != 2 || st.Evals.Measured != 2 || st.Evals.Trials != 6 {
		t.Fatalf("after measured sweep: %+v", st.Evals)
	}
}

// TestMeasuredFluctFreeCollapsesTrials: with fluct <= 1 every trial is
// bit-identical, so the evaluator runs (and reports, and counts) one.
func TestMeasuredFluctFreeCollapsesTrials(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	score, err := p.Evaluate(&MeasuredEvaluator{Trials: 8, Fluct: 0}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if score.Measured.Trials != 1 {
		t.Fatalf("fluct-free evaluation ran %d trials, want 1", score.Measured.Trials)
	}
	if st := p.Stats(); st.Evals.Trials != 1 {
		t.Fatalf("counted %d trials, want 1", st.Evals.Trials)
	}
}

// TestMeasuredEvaluationReputsAnnotatedPlan: the plan's original store
// Put happens at compute time, before any evaluation, so Evaluate must
// write the annotated plan through again — that re-put is what carries
// the measurement into durable tiers (codec v2).
func TestMeasuredEvaluationReputsAnnotatedPlan(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	puts := p.Store().Stats().Puts
	if _, err := p.Evaluate(StaticEvaluator{}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts {
		t.Fatalf("static evaluation wrote the store: %d puts, was %d", got, puts)
	}
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+1 {
		t.Fatalf("measured evaluation did not re-put the plan: %d puts, was %d", got, puts)
	}
	// A repeat of the identical (deterministic) evaluation changes
	// nothing and must not rewrite the store again.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+1 {
		t.Fatalf("unchanged annotation re-put the plan: %d puts, want %d", got, puts+1)
	}
	// A different measurement does.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 2, Fluct: 3, Seed: 2}, plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Store().Stats().Puts; got != puts+2 {
		t.Fatalf("changed annotation not re-put: %d puts, want %d", got, puts+2)
	}
	// The stored plan now carries the measurement, so a durable tier
	// would encode a v2 record with the measured block.
	stored, ok := p.Store().Get(PlanKey(plan.GraphHash, plan.Opts, plan.Iterations))
	if !ok || stored.Measured() == nil {
		t.Fatalf("stored plan lost the annotation (ok=%v)", ok)
	}
}

// TestTransientEvaluationLeavesPlanAlone: a transient probe (the
// ?simulate=1 path) reports its measurement but neither annotates the
// plan nor rewrites the store — an ad-hoc probe must never clobber a
// tune's persisted measurement.
func TestTransientEvaluationLeavesPlanAlone(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberate tune-style measurement annotates the plan first.
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 4, Fluct: 3, Seed: 1}, plan); err != nil {
		t.Fatal(err)
	}
	want := plan.Measured()
	puts := p.Store().Stats().Puts

	score, err := p.Evaluate(&MeasuredEvaluator{Trials: 1, Fluct: 0, Transient: true}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if score.Measured == nil || score.Measured.Trials != 1 {
		t.Fatalf("transient probe returned no measurement: %+v", score)
	}
	if plan.Measured() != want {
		t.Fatalf("transient probe overwrote the annotation: %+v", plan.Measured())
	}
	if got := p.Store().Stats().Puts; got != puts {
		t.Fatalf("transient probe rewrote the store: %d puts, was %d", got, puts)
	}
	if st := p.Stats(); st.Evals.Measured != 2 {
		t.Fatalf("transient probe not counted: %+v", st.Evals)
	}
}

// TestPlanCodecV2MeasuredRoundTrip: a plan annotated with a measured
// evaluation persists it through encode/decode, and the decoded plan
// re-encodes byte-identically.
func TestPlanCodecV2MeasuredRoundTrip(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	plan, _, err := p.Schedule(g, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(&MeasuredEvaluator{Trials: 4, Fluct: 3, Seed: 9}, plan); err != nil {
		t.Fatal(err)
	}
	if plan.Measured() == nil {
		t.Fatal("measured evaluation did not annotate the plan")
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"version":2`)) || !bytes.Contains(data, []byte(`"measured"`)) {
		t.Fatalf("record is not a measured v2 record: %s", data[:120])
	}
	key, got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if key != PlanKey(plan.GraphHash, plan.Opts, plan.Iterations) {
		t.Fatalf("key %q", key)
	}
	if *got.Measured() != *plan.Measured() {
		t.Fatalf("measured stats did not round-trip: %+v vs %+v", got.Measured(), plan.Measured())
	}
	data2, err := EncodePlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded v2 record not byte-identical")
	}
}

// TestPlanCodecDecodesV1 pins backward compatibility: a version-1 record
// (the PR 3 format, no measured block) must still decode and serve.
func TestPlanCodecDecodesV1(t *testing.T) {
	g := workload.Figure7().Graph
	plan, _, err := New(Config{}).Schedule(g, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to version 1. The plan was never measured, so
	// the rest of the record is exactly the PR 3 format.
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if _, hasMeasured := rec["measured"]; hasMeasured {
		t.Fatal("unmeasured plan encoded a measured block")
	}
	v1 := bytes.Replace(data, []byte(`"version":2`), []byte(`"version":1`), 1)
	key, got, err := DecodePlan(v1)
	if err != nil {
		t.Fatalf("v1 record no longer decodes: %v", err)
	}
	if key != PlanKey(plan.GraphHash, plan.Opts, plan.Iterations) {
		t.Fatalf("v1 key %q", key)
	}
	if got.Measured() != nil {
		t.Fatal("v1 record grew measured stats from nowhere")
	}
	if got.Rate() != plan.Rate() || got.Procs() != plan.Procs() || got.Makespan() != plan.Makespan() {
		t.Fatal("v1 serving summary differs")
	}
	js1, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := got.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("v1 schedule JSON not byte-identical")
	}
}
