package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mimdloop/internal/core"
)

// discardResponseWriter is a zero-overhead http.ResponseWriter for
// serving-path measurements: it keeps one header map alive across
// requests and throws the body away, so what AllocsPerRun sees is the
// server's own work, not the recorder's.
type discardResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *discardResponseWriter) Header() http.Header { return w.h }
func (w *discardResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *discardResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// hitRequest builds a reusable cache-hit request against srv: the body
// bytes, a rewindable reader, and the request wrapping it. Rewind the
// reader before each ServeHTTP call.
func hitRequest(t testing.TB, srv *Server) ([]byte, *bytes.Reader, *http.Request) {
	t.Helper()
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))
	// Warm the plan cache (and the pre-rendered body memo) first.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %.200s", i, rec.Code, rec.Body)
		}
	}
	rd := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, "/v1/schedule", io.NopCloser(rd))
	if err != nil {
		t.Fatal(err)
	}
	return body, rd, req
}

// TestScheduleCacheHitAllocs pins a per-request allocation budget on the
// cache-hit serving path: request parsing, cache lookup, and the
// pre-rendered response body, end to end through Server.ServeHTTP.
//
// Before the fast lane (PR 6) this path re-marshaled the full
// ScheduleResponse — re-compacting the ~21 KB embedded schedule through
// the outer encoder — at 22 allocs and ~127 µs per request; with the
// pre-rendered body it is a lookup plus a buffer copy. The budget below
// is the measured post-fast-lane count (16) plus slack of 2 for
// map-internal variation; if this fails after a serving change, the fast
// lane has started re-encoding per request — fix the regression rather
// than raising the budget.
func TestScheduleCacheHitAllocs(t *testing.T) {
	srv := NewServer(New(Config{}))
	body, rd, req := hitRequest(t, srv)
	w := &discardResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(500, func() {
		rd.Reset(body)
		w.status = 0
		srv.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	})
	const budget = 18 // post-fast-lane measurement + slack; pre-fast-lane baseline was 22
	t.Logf("cache-hit serving path: %.1f allocs/request (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("cache-hit serving path allocates %.1f/request, over the budget of %d", allocs, budget)
	}
}

// TestScheduleCacheHitBytesIdentical is the double-encode regression
// test: repeated cache hits must serve byte-identical bodies (the
// pre-rendered memo), and the embedded schedule must be byte-identical
// to Plan.ScheduleJSON (the memo TestScheduleJSONMemoized pins) rather
// than a re-compacted copy.
func TestScheduleCacheHitBytesIdentical(t *testing.T) {
	srv := NewServer(New(Config{}))
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))

	post := func() (int, []byte) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		return rec.Code, append([]byte(nil), rec.Body.Bytes()...)
	}

	if code, data := post(); code != http.StatusOK || !bytes.Contains(data, []byte(`"cache_hit":false`)) {
		t.Fatalf("first request: status %d, body %.200s", code, data)
	}
	_, first := post()
	if !bytes.Contains(first, []byte(`"cache_hit":true`)) {
		t.Fatalf("second request not a cache hit: %.200s", first)
	}
	for i := 0; i < 3; i++ {
		if _, again := post(); !bytes.Equal(first, again) {
			t.Fatalf("cache hit %d served different bytes than the first hit", i)
		}
	}

	// The embedded schedule is the memoized wire JSON, not a re-encode.
	var resp ScheduleResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	compiled, err := srv.pipe.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	plan, hit, err := srv.pipe.Schedule(compiled.Graph, mustParams(t, body), 100)
	if err != nil || !hit {
		t.Fatalf("plan lookup: hit=%v err=%v", hit, err)
	}
	sched, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Schedule, sched) {
		t.Fatal("embedded schedule differs from the memoized ScheduleJSON")
	}
}

// mustParams decodes the scheduling options out of a request body the
// same way the server does.
func mustParams(t *testing.T, body []byte) core.Options {
	t.Helper()
	req, err := parseScheduleRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := req.params()
	return opts
}

// TestScheduleCacheHitInvalidatesOnMeasurement: a measured annotation
// landing on the plan (a tune or simulate request measuring it) must
// invalidate the pre-rendered body, so the next hit serves the new
// measured_by block — and repeat hits after that are again identical.
func TestScheduleCacheHitInvalidatesOnMeasurement(t *testing.T) {
	srv := NewServer(New(Config{}))
	body := []byte(fmt.Sprintf(`{"source": %q, "processors": 2}`, fig7Source))

	post := func() []byte {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %.200s", rec.Code, rec.Body)
		}
		return append([]byte(nil), rec.Body.Bytes()...)
	}
	post() // miss
	before := post()
	if bytes.Contains(before, []byte(`"measured_by"`)) {
		t.Fatalf("unmeasured plan serves a measured_by block: %.200s", before)
	}

	// Measure the served plan through the pipeline (what a tune with a
	// measured evaluator does for its winner).
	compiled, err := srv.pipe.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	plan, hit, err := srv.pipe.Schedule(compiled.Graph, mustParams(t, body), 100)
	if err != nil || !hit {
		t.Fatalf("plan lookup: hit=%v err=%v", hit, err)
	}
	if _, err := srv.pipe.Evaluate(NewMeasuredEvaluator(3, 2, 1), plan); err != nil {
		t.Fatal(err)
	}

	after := post()
	if bytes.Equal(before, after) {
		t.Fatal("measured annotation did not invalidate the pre-rendered body")
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(after, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.MeasuredBy) != 1 || resp.MeasuredBy[0].Backend != "sim" || resp.MeasuredBy[0].Trials != 3 {
		t.Fatalf("measured_by = %+v", resp.MeasuredBy)
	}
	if again := post(); !bytes.Equal(after, again) {
		t.Fatal("post-measurement hits are not byte-identical")
	}
}
