package pipeline

import (
	"runtime"
	"sync"
)

// RunPool invokes fn(i) for every i in [0, n) on a bounded pool of
// goroutines. workers <= 0 means GOMAXPROCS; the pool never exceeds n.
// Each index is claimed by exactly one worker, so fn may write to the
// i-th slot of a shared result slice without locking. RunPool returns
// when every call has finished. It is the one worker-pool implementation
// shared by Sweep and experiments.Table1Workers.
func RunPool(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
