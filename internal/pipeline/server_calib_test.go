package pipeline

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mimdloop/internal/exec"
)

// stubCalibration is a fixed-model pipeline.Calibration: the seam is
// tested here against a stub (the real implementation, calib.Manager,
// lives above pipeline in the import graph and is tested in its own
// package, including a -race refresh-vs-tune test).
type stubCalibration struct {
	model exec.CostModel
	stats CalibStats
}

func (s *stubCalibration) Model() (exec.CostModel, bool) { return s.model, !s.model.IsZero() }
func (s *stubCalibration) CalibStats() CalibStats        { return s.stats }

// TestServerTuneCsimBackend pins the calibrated tune path: with a live
// profile, eval.backend=csim ranks the grid in profile-scaled
// nanoseconds — the echo says csim, every measured block says csim, and
// the makespans carry the model's per-message cost (far larger than the
// raw cycle counts).
func TestServerTuneCsimBackend(t *testing.T) {
	model := exec.CostModel{ComputeNsPerCycle: 5, CommNsPerMessage: 1000, IterOverheadNs: 100}
	srv := NewServerWith(New(Config{}), ServerConfig{Calibration: &stubCalibration{model: model}})
	resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
		Source:     fig7Source,
		Processors: []int{1, 2},
		CommCosts:  []int{2},
		Iterations: 40,
		Eval:       &EvalRequest{Mode: "measured", Backend: "csim", Trials: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out TuneResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if out.Evaluator != "measured" || out.Backend != "csim" {
		t.Fatalf("echo: evaluator %q backend %q", out.Evaluator, out.Backend)
	}
	for _, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("point %+v failed: %s", r, r.Error)
		}
		if r.Measured == nil || r.Measured.Backend != "csim" {
			t.Fatalf("point p=%d k=%d measured block: %+v", r.Processors, r.CommCost, r.Measured)
		}
		// 40 iterations × 100 ns overhead alone is 4000 ns; raw sim
		// cycles for this loop are two orders of magnitude below that.
		if r.Measured.MakespanMin < 4000 {
			t.Fatalf("point p=%d k=%d makespan %d not profile-scaled", r.Processors, r.CommCost, r.Measured.MakespanMin)
		}
	}
}

// TestServerTuneCsimNoProfile pins the degradation: with no Calibration
// configured (or none fitted), a csim tune still succeeds and scores
// exactly as raw sim — the measured annotations say "sim", because
// byte-identically that is what ran.
func TestServerTuneCsimNoProfile(t *testing.T) {
	for name, srv := range map[string]*Server{
		"no calibration": NewServer(New(Config{})),
		"unfitted":       NewServerWith(New(Config{}), ServerConfig{Calibration: &stubCalibration{}}),
	} {
		resp, data := postJSON(t, srv, "/v1/tune", TuneRequest{
			Source:     fig7Source,
			Processors: []int{1, 2},
			CommCosts:  []int{2},
			Eval:       &EvalRequest{Mode: "measured", Backend: "csim", Trials: 2, Fluct: 2},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, data)
		}
		var out TuneResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s: decode: %v\n%s", name, err, data)
		}
		if out.Backend != "csim" {
			t.Fatalf("%s: request echo %q", name, out.Backend)
		}
		if out.Best.Measured == nil || out.Best.Measured.Backend != "sim" {
			t.Fatalf("%s: unprofiled csim must degrade to raw sim: %+v", name, out.Best.Measured)
		}
	}
}

// TestServerSimulateCsim pins the schedule-probe path: ?simulate=1
// accepts backend=csim and reports profile-scaled numbers.
func TestServerSimulateCsim(t *testing.T) {
	model := exec.CostModel{ComputeNsPerCycle: 5, CommNsPerMessage: 1000, IterOverheadNs: 100}
	srv := NewServerWith(New(Config{}), ServerConfig{Calibration: &stubCalibration{model: model}})
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule?simulate=1&backend=csim",
		strings.NewReader(`{"source": `+jsonString(fig7Source)+`, "processors": 2, "iterations": 40}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Simulated == nil || out.Simulated.Backend != "csim" || out.Simulated.MakespanMin < 4000 {
		t.Fatalf("simulate probe not csim-scaled: %+v", out.Simulated)
	}
}

// TestServerStatsCalibBlock pins the stats surface: with a Calibration
// configured /v1/stats carries its "calib" block verbatim; without one
// the key is absent.
func TestServerStatsCalibBlock(t *testing.T) {
	stats := CalibStats{
		Present: true, AgeSeconds: 12.5, Samples: 24, RMSENs: 5000, FitError: 0.1,
		Refreshes: 3, Model: exec.CostModel{CommNsPerMessage: 900},
	}
	srv := NewServerWith(New(Config{}), ServerConfig{Calibration: &stubCalibration{stats: stats}})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var out struct {
		Calib *CalibStats `json:"calib"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Calib == nil || *out.Calib != stats {
		t.Fatalf("calib stats block drifted: %+v\n%s", out.Calib, rec.Body)
	}

	rec = httptest.NewRecorder()
	NewServer(New(Config{})).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if strings.Contains(rec.Body.String(), `"calib"`) {
		t.Fatalf("uncalibrated server emits a calib block:\n%s", rec.Body)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
