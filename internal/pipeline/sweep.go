package pipeline

import (
	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
)

// Point is one cell of a machine-parameter grid: a processor budget for
// the Cyclic subset, a communication-cost estimate k, and the chunking
// grain (0 and 1 both mean unchunked).
type Point struct {
	Processors int
	CommCost   int
	Grain      int
}

// Grid returns the cross product procs × commCosts in row-major order
// (all comm costs for the first processor count first), grain 0.
func Grid(procs, commCosts []int) []Point {
	return GrainGrid(procs, commCosts, nil)
}

// GrainGrid returns the cross product procs × commCosts × grains in
// row-major order with grains innermost. nil or empty grains means the
// single unchunked grain (0), recovering Grid exactly.
func GrainGrid(procs, commCosts, grains []int) []Point {
	if len(grains) == 0 {
		grains = []int{0}
	}
	out := make([]Point, 0, len(procs)*len(commCosts)*len(grains))
	for _, p := range procs {
		for _, k := range commCosts {
			for _, g := range grains {
				out = append(out, Point{Processors: p, CommCost: k, Grain: g})
			}
		}
	}
	return out
}

// SweepOptions configures a Sweep run.
type SweepOptions struct {
	// Base is the Options template; each point overwrites Processors and
	// CommCost.
	Base core.Options
	// Iterations to schedule per point. 0 means 100.
	Iterations int
	// Workers bounds pool size. 0 means GOMAXPROCS; 1 recovers the old
	// serial behaviour exactly.
	Workers int
	// Evaluator scores every scheduled point. nil means StaticEvaluator
	// (the scheduled rate; zero simulation cost). A MeasuredEvaluator
	// makes the sweep execute each plan on the simulated machine.
	Evaluator Evaluator
	// Simulate additionally executes each plan on the deterministic
	// simulated machine, filling SimMakespan and Sp. It is the
	// pre-Evaluator spelling of a 1-trial measured evaluation and is
	// ignored when Evaluator is set.
	Simulate bool
	// MachineConfig is the simulated-machine setup used when Simulate is
	// set (fluctuation, seed, overrides).
	MachineConfig machine.Config
}

// evaluator resolves the options to the evaluator Sweep actually runs.
func (o *SweepOptions) evaluator() Evaluator {
	if o.Evaluator != nil {
		return o.Evaluator
	}
	if o.Simulate {
		// Transient like the pre-Evaluator path it replaces: a Simulate
		// sweep reads measurements into its results without annotating
		// plans or rewriting stored records.
		return &MeasuredEvaluator{
			Trials:    1,
			Fluct:     o.MachineConfig.Fluct,
			Seed:      o.MachineConfig.Seed,
			Base:      o.MachineConfig,
			Transient: true,
		}
	}
	return StaticEvaluator{}
}

// Result is the outcome at one grid point. Err is nil exactly when Plan
// is non-nil: scheduling or evaluation failures leave only Point and Err
// set.
type Result struct {
	Point Point
	Plan  *Plan
	Err   error

	// Rate is the steady-state scheduled cycles/iteration of the plan
	// (the static rate, whatever evaluator scored the point).
	Rate float64
	// Procs is the total processors occupied (Cyclic + Flow fringes).
	Procs int
	// CacheHit reports the plan came from the pipeline's cache.
	CacheHit bool

	// Score is the evaluator's verdict: Score.Rate equals Rate under
	// StaticEvaluator and the mean measured cycles/iteration under
	// MeasuredEvaluator (Score.Measured then carries the trial spread).
	Score Score

	// SimMakespan and Sp (percentage parallelism vs the sequential
	// schedule) are filled by measured evaluations; SimMakespan is the
	// mean over the trials (exact for a single trial).
	SimMakespan int
	Sp          float64
}

// Sweep schedules g at every grid point concurrently on a bounded worker
// pool, reusing the plan cache across points and across calls, and scores
// each point through the configured Evaluator. Results are returned in
// the same order as points, so concurrent evaluation is observationally
// identical to the serial loops it replaces.
//
// When the evaluator measures wall-clock time (a MeasuredEvaluator on a
// non-deterministic backend such as gort), the pool collapses to one
// worker whatever Workers says: concurrently timed points contend for
// the same CPUs, so a parallel sweep would rank cross-point interference
// rather than plan quality.
func (p *Pipeline) Sweep(g *graph.Graph, points []Point, opt SweepOptions) []Result {
	if opt.Iterations == 0 {
		opt.Iterations = 100
	}
	ev := opt.evaluator()
	workers := opt.Workers
	if d, ok := ev.(interface{ Deterministic() bool }); ok && !d.Deterministic() {
		workers = 1
	}
	results := make([]Result, len(points))
	RunPool(len(points), workers, func(i int) {
		results[i] = p.evalPoint(g, points[i], opt, ev)
	})
	return results
}

func (p *Pipeline) evalPoint(g *graph.Graph, pt Point, opt SweepOptions, ev Evaluator) Result {
	opts := opt.Base
	opts.Processors = pt.Processors
	opts.CommCost = pt.CommCost
	opts.Grain = pt.Grain
	res := Result{Point: pt}
	plan, hit, err := p.Schedule(g, opts, opt.Iterations)
	if err != nil {
		res.Err = err
		return res
	}
	score, err := p.Evaluate(ev, plan)
	if err != nil {
		return Result{Point: pt, Err: err}
	}
	res.Plan = plan
	res.CacheHit = hit
	res.Rate = plan.Rate()
	res.Procs = plan.Procs()
	res.Score = score
	if m := score.Measured; m != nil {
		res.SimMakespan = int(m.MakespanMean + 0.5)
		res.Sp = m.SpMean
	}
	return res
}
