package pipeline

import (
	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
)

// Point is one cell of a machine-parameter grid: a processor budget for
// the Cyclic subset and a communication-cost estimate k.
type Point struct {
	Processors int
	CommCost   int
}

// Grid returns the cross product procs × commCosts in row-major order
// (all comm costs for the first processor count first).
func Grid(procs, commCosts []int) []Point {
	out := make([]Point, 0, len(procs)*len(commCosts))
	for _, p := range procs {
		for _, k := range commCosts {
			out = append(out, Point{Processors: p, CommCost: k})
		}
	}
	return out
}

// SweepOptions configures a Sweep run.
type SweepOptions struct {
	// Base is the Options template; each point overwrites Processors and
	// CommCost.
	Base core.Options
	// Iterations to schedule per point. 0 means 100.
	Iterations int
	// Workers bounds pool size. 0 means GOMAXPROCS; 1 recovers the old
	// serial behaviour exactly.
	Workers int
	// Simulate additionally executes each plan on the deterministic
	// simulated machine, filling SimMakespan and Sp.
	Simulate bool
	// MachineConfig is the simulated-machine setup used when Simulate is
	// set (fluctuation, seed, overrides).
	MachineConfig machine.Config
}

// Result is the outcome at one grid point. Err is nil exactly when Plan
// is non-nil: scheduling or (when requested) simulation failures leave
// only Point and Err set.
type Result struct {
	Point Point
	Plan  *Plan
	Err   error

	// Rate is the steady-state cycles/iteration of the plan.
	Rate float64
	// Procs is the total processors occupied (Cyclic + Flow fringes).
	Procs int
	// CacheHit reports the plan came from the pipeline's cache.
	CacheHit bool

	// SimMakespan and Sp (percentage parallelism vs the sequential
	// schedule) are filled when SweepOptions.Simulate is set.
	SimMakespan int
	Sp          float64
}

// Sweep schedules g at every grid point concurrently on a bounded worker
// pool, reusing the plan cache across points and across calls. Results
// are returned in the same order as points, so concurrent evaluation is
// observationally identical to the serial loops it replaces.
func (p *Pipeline) Sweep(g *graph.Graph, points []Point, opt SweepOptions) []Result {
	if opt.Iterations == 0 {
		opt.Iterations = 100
	}
	results := make([]Result, len(points))
	seq := opt.Iterations * g.TotalLatency()
	RunPool(len(points), opt.Workers, func(i int) {
		results[i] = p.evalPoint(g, points[i], opt, seq)
	})
	return results
}

func (p *Pipeline) evalPoint(g *graph.Graph, pt Point, opt SweepOptions, seq int) Result {
	opts := opt.Base
	opts.Processors = pt.Processors
	opts.CommCost = pt.CommCost
	res := Result{Point: pt}
	plan, hit, err := p.Schedule(g, opts, opt.Iterations)
	if err != nil {
		res.Err = err
		return res
	}
	res.Plan = plan
	res.CacheHit = hit
	res.Rate = plan.Rate()
	res.Procs = plan.Procs()
	if opt.Simulate {
		stats, err := machine.Run(g, plan.Programs, opt.MachineConfig)
		if err != nil {
			return Result{Point: pt, Err: err}
		}
		res.SimMakespan = stats.Makespan
		res.Sp = metrics.ClampZero(metrics.PercentParallelism(seq, stats.Makespan))
	}
	return res
}
