package pipeline

import (
	"net/http"
	"runtime"
	"testing"

	"mimdloop/internal/exec"
	"mimdloop/internal/workload"
)

// BenchmarkScheduleCold measures the uncached pipeline on the Figure 7
// workload: classify + Cyclic-sched + compose + lower on every request
// (the seed's only mode of operation).
func BenchmarkScheduleCold(b *testing.B) {
	p := New(Config{DisableCache: true})
	g := workload.Figure7().Graph
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Schedule(g, fig7Opts, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleCacheHit measures the steady-state serving path: the
// same request against a warm cache. The acceptance bar for this PR is
// >= 10x faster than BenchmarkScheduleCold; in practice the gap is orders
// of magnitude (a fingerprint plus a sharded map lookup).
func BenchmarkScheduleCacheHit(b *testing.B) {
	p := New(Config{})
	g := workload.Figure7().Graph
	if _, _, err := p.Schedule(g, fig7Opts, 100); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := p.Schedule(g, fig7Opts, 100)
		if err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkScheduleCacheHitParallel is the serving path under concurrent
// clients, as the HTTP server sees it.
func BenchmarkScheduleCacheHitParallel(b *testing.B) {
	p := New(Config{})
	g := workload.Figure7().Graph
	if _, _, err := p.Schedule(g, fig7Opts, 100); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, hit, err := p.Schedule(g, fig7Opts, 100); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

var sweepPoints = Grid([]int{2, 3, 4, 6, 8}, []int{0, 1, 2, 3, 4, 5})

// BenchmarkSweepSerial is the seed-equivalent parameter study: every grid
// point scheduled one after another, no cache.
func BenchmarkSweepSerial(b *testing.B) {
	g := workload.Figure7().Graph
	for i := 0; i < b.N; i++ {
		p := New(Config{DisableCache: true})
		res := p.Sweep(g, sweepPoints, SweepOptions{Iterations: 100, Workers: 1})
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkSweepConcurrent runs the same grid on the worker pool.
func BenchmarkSweepConcurrent(b *testing.B) {
	g := workload.Figure7().Graph
	for i := 0; i < b.N; i++ {
		p := New(Config{DisableCache: true})
		res := p.Sweep(g, sweepPoints, SweepOptions{Iterations: 100, Workers: runtime.GOMAXPROCS(0)})
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// The tune-latency guard pair: static tuning reads plan summaries only,
// measured tuning additionally runs trials on the simulated machine, so
// the measured/static gap is the price of measurement per tune. Run with
// -benchtime=1x in CI so regressions in either path fail loudly; compare
// the two to size eval caps (the serving trial budget assumes a measured
// point costs a small multiple of a static one).
var tuneGrid = TuneOptions{Processors: []int{1, 2, 3, 4}, CommCosts: []int{1, 2, 3}}

// BenchmarkAutoTuneStatic is the PR 2 tuning path: grid scheduling plus
// scheduled-rate ranking, warm cache after the first iteration.
func BenchmarkAutoTuneStatic(b *testing.B) {
	g := workload.Figure7().Graph
	p := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AutoTune(g, 100, tuneGrid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoTuneMeasured is the same grid ranked by measured Sp over
// 5 seeded trials per point.
func BenchmarkAutoTuneMeasured(b *testing.B) {
	g := workload.Figure7().Graph
	p := New(Config{})
	opt := tuneGrid
	opt.Evaluator = &MeasuredEvaluator{Trials: 5, Fluct: 3, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AutoTune(g, 100, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoTuneGort is the same grid ranked on the real goroutine
// runtime (3 wall-clock trials per point). Compare against
// BenchmarkAutoTuneMeasured: the gap is the price of real execution per
// tune, which is what the gort serving caps (trials ≤ 8, points ×
// trials ≤ 64) are sized around — a cost regression here means those
// caps no longer bound what they claim to.
func BenchmarkAutoTuneGort(b *testing.B) {
	g := workload.Figure7().Graph
	p := New(Config{})
	opt := tuneGrid
	opt.Evaluator = &MeasuredEvaluator{Trials: 3, Backend: exec.Goroutine{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AutoTune(g, 100, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoTuneGrain is the adaptive-granularity tune: a
// chunk-friendly stream chain ranked on the goroutine runtime over a
// grain axis, the request shape `/v1/tune` with `grains` produces.
// Compare against BenchmarkAutoTuneGort: the extra cost per grain value
// is one more grid column, and a regression here means the grain cells
// (chunk-graph fold + chunked lowering + chunked execution) got more
// expensive than ordinary cells.
func BenchmarkAutoTuneGrain(b *testing.B) {
	g, err := workload.Streams(1, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := New(Config{})
	opt := TuneOptions{
		Processors: []int{2},
		CommCosts:  []int{2},
		Grains:     []int{1, 4, 8},
		Evaluator:  &MeasuredEvaluator{Trials: 3, Backend: exec.Goroutine{}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AutoTune(g, 64, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheHit drives the full HTTP serving path —
// request parse, cache lookup, pre-rendered body write — for a
// cache-hit /v1/schedule request. Run with -benchmem: together with
// TestScheduleCacheHitAllocs this pins the fast lane (pre-PR 6 the same
// path re-marshaled the response at ~127 µs and 22 allocs per request).
func BenchmarkServeCacheHit(b *testing.B) {
	srv := NewServer(New(Config{}))
	body, rd, req := hitRequest(b, srv)
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		srv.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}

// BenchmarkServeNearCapStream drives the streaming lane: a warm
// near-cap /v1/schedule request (Figure 7 at the iteration cap, ~2.3 MB
// of schedule JSON) served end to end through Server.ServeHTTP. With
// -benchmem the bytes/op column is the lane's whole point: the reply
// goes out as envelope prefix + memoized schedule bytes + suffix, so
// per-request allocation stays in kilobytes while the body is megabytes
// (TestStreamedReplyAllocBytes pins the ratio against buffering).
func BenchmarkServeNearCapStream(b *testing.B) {
	srv := NewServer(New(Config{}))
	body, rd, req := nearCapRequest(b, srv)
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		srv.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}
