package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ParseCorpus decodes a schedule corpus: a JSON array whose elements are
// either loop-language source strings (scheduled with default parameters)
// or /v1/schedule request objects. It is the file format behind
// `loopsched serve -warmup`.
func ParseCorpus(data []byte) ([]ScheduleRequest, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("corpus: want a JSON array of sources or request objects: %w", err)
	}
	reqs := make([]ScheduleRequest, 0, len(raw))
	for i, el := range raw {
		trimmed := strings.TrimSpace(string(el))
		if strings.HasPrefix(trimmed, "\"") {
			var src string
			if err := json.Unmarshal(el, &src); err != nil {
				return nil, fmt.Errorf("corpus entry %d: %w", i, err)
			}
			reqs = append(reqs, ScheduleRequest{Source: src})
			continue
		}
		var req ScheduleRequest
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("corpus entry %d: %w", i, err)
		}
		if strings.TrimSpace(req.Source) == "" {
			return nil, fmt.Errorf("corpus entry %d: missing \"source\"", i)
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

// WarmupStats summarizes a Warmup pass.
type WarmupStats struct {
	// Entries is the corpus size, Warmed the plans now cached, Failed the
	// entries that did not compile or schedule.
	Entries int
	Warmed  int
	Failed  int
	// Scheduled counts the warmed entries that were freshly computed;
	// FromStore counts those already present in the plan store (from an
	// earlier corpus entry compiling to the same graph, or — with a
	// durable store — persisted by an earlier process). FromDisk is the
	// subset of FromStore answered by a disk tier: on a cold restart with
	// `serve -store`, FromDisk ≈ FromStore and Scheduled ≈ 0, which is
	// the whole point of persisting plans.
	Scheduled int
	FromStore int
	FromDisk  int
	// Errors holds one "entry N: ..." message per failed entry.
	Errors []string
}

// Warmup pre-populates the plan (and compile) cache from a corpus: every
// entry is compiled and scheduled through Batch on a bounded pool, with
// the same parameter defaults *and resource caps* the HTTP endpoints
// apply — an entry the serving surface would reject with 400/413 is
// counted as failed instead of burning unbounded startup CPU on a plan
// no request could ever fetch. Failing entries are reported in the
// returned stats, never fatal — a warm-up corpus with one stale loop
// still warms the rest.
func (p *Pipeline) Warmup(reqs []ScheduleRequest, workers int) WarmupStats {
	stats := WarmupStats{Entries: len(reqs)}
	errAt := make([]string, len(reqs))
	var items []BatchItem
	var idx []int // items[j] came from reqs[idx[j]]
	for i := range reqs {
		r := &reqs[i]
		if _, err := r.check(); err != nil {
			errAt[i] = err.Error()
			continue
		}
		opts, n := r.params()
		c, err := p.Compile(r.Source)
		if err != nil {
			errAt[i] = err.Error()
			continue
		}
		if err := checkGraphCaps(c.Graph.N(), n); err != nil {
			errAt[i] = err.Error()
			continue
		}
		items = append(items, BatchItem{Graph: c.Graph, Opts: opts, Iterations: n})
		idx = append(idx, i)
	}
	// The disk-tier attribution diffs the store's own counters around the
	// batch. Warmup runs at process start, before any serving traffic, so
	// the delta is the warmup's alone.
	diskBefore, _ := p.store.Stats().Tier("disk")
	for j, res := range p.Batch(items, BatchOptions{Workers: workers}) {
		switch {
		case res.Err != nil:
			errAt[idx[j]] = res.Err.Error()
		case res.CacheHit:
			stats.FromStore++
		default:
			stats.Scheduled++
		}
	}
	diskAfter, _ := p.store.Stats().Tier("disk")
	stats.FromDisk = int(diskAfter.Hits - diskBefore.Hits)
	for i, msg := range errAt {
		if msg == "" {
			stats.Warmed++
			continue
		}
		stats.Failed++
		stats.Errors = append(stats.Errors, fmt.Sprintf("entry %d: %s", i, msg))
	}
	return stats
}
