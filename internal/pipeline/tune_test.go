package pipeline

import (
	"math"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/workload"
)

// TestAutoTuneMatchesExhaustiveSerial is the acceptance bar: on the
// Figure 7 workload, AutoTune's winner must achieve exactly the best rate
// an exhaustive serial sweep (no pipeline, no cache, no pool) finds over
// the same grid.
func TestAutoTuneMatchesExhaustiveSerial(t *testing.T) {
	g := workload.Figure7().Graph
	procs := []int{1, 2, 3, 4, 5}
	costs := []int{0, 1, 2, 3, 4}

	best := math.Inf(1)
	for _, p := range procs {
		for _, k := range costs {
			ls, err := core.ScheduleLoop(g, core.Options{Processors: p, CommCost: k}, 100)
			if err != nil {
				t.Fatalf("serial p=%d k=%d: %v", p, k, err)
			}
			if r := ls.RatePerIteration(); r < best {
				best = r
			}
		}
	}

	res, err := New(Config{}).AutoTune(g, 100, TuneOptions{Processors: procs, CommCosts: costs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Rate != best {
		t.Fatalf("AutoTune rate %v != exhaustive serial best %v (point %+v)", res.Best.Rate, best, res.Best.Point)
	}
	if res.Evaluated != len(procs)*len(costs) {
		t.Fatalf("evaluated %d of %d points", res.Evaluated, len(procs)*len(costs))
	}
	if res.Score != best {
		t.Fatalf("min_rate score %v != rate %v", res.Score, best)
	}
}

// The winner must not depend on sweep worker count: selection happens in
// grid order after the sweep, so pool scheduling races cannot leak in.
func TestAutoTuneDeterministicAcrossWorkers(t *testing.T) {
	g := workload.Figure7().Graph
	for _, obj := range []Objective{ObjectiveMinRate, ObjectiveMinProcs, ObjectiveEfficiency} {
		var points []Point
		var scores []float64
		for _, w := range []int{1, 4, 13} {
			res, err := New(Config{}).AutoTune(g, 100, TuneOptions{Objective: obj, Workers: w})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", obj, w, err)
			}
			points = append(points, res.Best.Point)
			scores = append(scores, res.Score)
		}
		if points[0] != points[1] || points[1] != points[2] {
			t.Fatalf("%v: winner depends on workers: %v", obj, points)
		}
		if scores[0] != scores[1] || scores[1] != scores[2] {
			t.Fatalf("%v: score depends on workers: %v", obj, scores)
		}
	}
}

func TestAutoTuneMinProcs(t *testing.T) {
	g := workload.Figure7().Graph
	// At k=2: p=1 runs at rate 5 on 1 processor; p>=2 all reach rate 3 on
	// 2 occupied processors. With zero epsilon (exact), min_procs must
	// skip the slow 1-processor point and pick the earliest 2-processor
	// one.
	res, err := New(Config{}).AutoTune(g, 100, TuneOptions{
		Processors: []int{1, 2, 3, 4},
		CommCosts:  []int{2},
		Objective:  ObjectiveMinProcs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point != (Point{Processors: 2, CommCost: 2}) {
		t.Fatalf("best point = %+v", res.Best.Point)
	}
	if res.Best.Rate != 3 || res.Best.Procs != 2 || res.Score != 2 {
		t.Fatalf("best = rate %v procs %d score %v", res.Best.Rate, res.Best.Procs, res.Score)
	}

	// A wide-open epsilon admits the 1-processor point.
	res, err = New(Config{}).AutoTune(g, 100, TuneOptions{
		Processors: []int{1, 2, 3, 4},
		CommCosts:  []int{2},
		Objective:  ObjectiveMinProcs,
		Epsilon:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Procs != 1 {
		t.Fatalf("epsilon=1 best procs = %d, want 1", res.Best.Procs)
	}
}

func TestAutoTuneEfficiency(t *testing.T) {
	g := workload.Figure7().Graph
	// Sequential is 5 cycles/iteration. Speedup per processor: p=1 k=2
	// gives (5/5)/1 = 1.0; p=2 k=2 gives (5/3)/2 ~ 0.83 — the single
	// processor wins on efficiency even though it is slower.
	res, err := New(Config{}).AutoTune(g, 100, TuneOptions{
		Processors: []int{1, 2},
		CommCosts:  []int{2},
		Objective:  ObjectiveEfficiency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point.Processors != 1 {
		t.Fatalf("best point = %+v, want p=1", res.Best.Point)
	}
	if res.Score != 1 {
		t.Fatalf("efficiency score = %v, want 1", res.Score)
	}
}

func TestAutoTuneDefaultsAndCaching(t *testing.T) {
	g := workload.Figure7().Graph
	p := New(Config{})
	res, err := p.AutoTune(g, 100, TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Default grid: 1..min(5, 8) processors x {1, 2, 3, 4} comm costs.
	if len(res.Results) != 20 {
		t.Fatalf("default grid has %d points, want 20", len(res.Results))
	}
	// The winner sits in the plan cache: scheduling it again is a hit.
	opts := core.Options{Processors: res.Best.Point.Processors, CommCost: res.Best.Point.CommCost}
	_, hit, err := p.Schedule(g, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("tuned winner not served from the plan cache")
	}
	// A repeat tune over the same grid is all cache hits.
	res, err = p.AutoTune(g, 100, TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.Err == nil && !r.CacheHit {
			t.Fatalf("repeat tune missed the cache at %+v", r.Point)
		}
	}
}

func TestObjectiveParseRoundTrip(t *testing.T) {
	for _, obj := range []Objective{ObjectiveMinRate, ObjectiveMinProcs, ObjectiveEfficiency} {
		got, err := ParseObjective(obj.String())
		if err != nil || got != obj {
			t.Fatalf("round trip %v: got %v, %v", obj, got, err)
		}
	}
	if def, err := ParseObjective(""); err != nil || def != ObjectiveMinRate {
		t.Fatalf("empty objective: %v, %v", def, err)
	}
	if _, err := ParseObjective("fastest"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}
