package pipeline

import (
	"strings"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/workload"
)

// TestBatchIsolatesErrors is the acceptance bar: a batch of N loops with
// one invalid source returns N-1 plans and exactly one structured error,
// in input order.
func TestBatchIsolatesErrors(t *testing.T) {
	p := New(Config{})
	items := []BatchItem{
		{Source: "loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}"},
		{Source: "loop b(N = 10) {\n B[i] = B[i-2] + V[i]\n}"},
		{Source: "loop ??? not a loop"},
		{Source: "loop d(N = 10) {\n D[i] = D[i-1] * 0.5\n}"},
	}
	results := p.Batch(items, BatchOptions{})
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	plans, errs := 0, 0
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			errs++
			if i != 2 {
				t.Fatalf("item %d failed: %v", i, r.Err)
			}
			if r.Plan != nil {
				t.Fatal("failed item carries a plan")
			}
			continue
		}
		plans++
		if r.Plan == nil || r.Plan.Rate() <= 0 {
			t.Fatalf("item %d: plan %+v", i, r.Plan)
		}
		if r.Loop == "" || r.Compiled == nil {
			t.Fatalf("item %d: missing compile info (%q)", i, r.Loop)
		}
	}
	if plans != 3 || errs != 1 {
		t.Fatalf("plans/errs = %d/%d, want 3/1", plans, errs)
	}
}

func TestBatchDedupsThroughCache(t *testing.T) {
	p := New(Config{})
	src := "loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}"
	// Workers: 1 serializes the batch, so the first duplicate computes
	// and every later one must be a cache hit sharing the same *Plan.
	results := p.Batch([]BatchItem{{Source: src}, {Source: src}, {Source: src}}, BatchOptions{Workers: 1})
	if results[0].CacheHit {
		t.Fatal("first item reported a cache hit")
	}
	for i := 1; i < 3; i++ {
		if !results[i].CacheHit {
			t.Fatalf("duplicate item %d missed the cache", i)
		}
		if results[i].Plan != results[0].Plan {
			t.Fatalf("duplicate item %d got a different plan", i)
		}
	}
	if s := p.Stats(); s.Computes != 1 {
		t.Fatalf("batch of 3 identical loops cost %d computes", s.Computes)
	}
}

func TestBatchGraphItemsAndEmpty(t *testing.T) {
	p := New(Config{})
	results := p.Batch([]BatchItem{
		{Graph: workload.Figure7().Graph, Opts: core.Options{Processors: 2, CommCost: 2}},
		{}, // neither graph nor source
	}, BatchOptions{})
	if results[0].Err != nil || results[0].Plan.Rate() != 3 {
		t.Fatalf("graph item: %+v", results[0])
	}
	if results[0].Loop != "" || results[0].Compiled != nil {
		t.Fatal("graph item invented compile info")
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "neither graph nor source") {
		t.Fatalf("empty item error = %v", results[1].Err)
	}
	if got := p.Batch(nil, BatchOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestParseCorpus(t *testing.T) {
	reqs, err := ParseCorpus([]byte(`[
		"loop a(N = 5) {\n A[i] = A[i-1] + U[i]\n}",
		{"source": "loop b(N = 5) {\n B[i] = B[i-1] + V[i]\n}", "comm_cost": 3, "processors": 2}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d entries", len(reqs))
	}
	if reqs[0].CommCost != nil || !strings.HasPrefix(reqs[0].Source, "loop a") {
		t.Fatalf("string entry = %+v", reqs[0])
	}
	if reqs[1].Processors != 2 || *reqs[1].CommCost != 3 {
		t.Fatalf("object entry = %+v", reqs[1])
	}

	for name, bad := range map[string]string{
		"not an array":   `{"source": "x"}`,
		"unknown field":  `[{"source": "x", "nope": 1}]`,
		"missing source": `[{"iterations": 5}]`,
		"bad element":    `[42]`,
	} {
		if _, err := ParseCorpus([]byte(bad)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestWarmupPopulatesCache(t *testing.T) {
	p := New(Config{})
	k := 2
	reqs := []ScheduleRequest{
		{Source: "loop a(N = 10) {\n A[i] = A[i-1] + U[i]\n}"},
		{Source: fig7Source, Processors: 2, CommCost: &k},
		{Source: "loop broken("},
	}
	stats := p.Warmup(reqs, 0)
	if stats.Entries != 3 || stats.Warmed != 2 || stats.Failed != 1 {
		t.Fatalf("warmup stats = %+v", stats)
	}
	if len(stats.Errors) != 1 || !strings.Contains(stats.Errors[0], "entry 2") {
		t.Fatalf("warmup errors = %v", stats.Errors)
	}
	// Warmup enforces the serving caps: an entry no HTTP request could
	// fetch is rejected before any scheduling work.
	capped := New(Config{})
	cs := capped.Warmup([]ScheduleRequest{
		{Source: fig7Source, Iterations: maxIterations + 1},
	}, 0)
	if cs.Warmed != 0 || cs.Failed != 1 || !strings.Contains(cs.Errors[0], "iterations") {
		t.Fatalf("over-cap warmup = %+v", cs)
	}
	if s := capped.Stats(); s.Computes != 0 {
		t.Fatalf("over-cap warmup scheduled %d plans", s.Computes)
	}

	// A request matching a warmed entry (serving defaults: k=2, n=100) is
	// now a cache hit.
	c, err := p.Compile(fig7Source)
	if err != nil {
		t.Fatal(err)
	}
	_, hit, err := p.Schedule(c.Graph, core.Options{Processors: 2, CommCost: 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warmed plan not served from cache")
	}
}
