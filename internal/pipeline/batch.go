package pipeline

import (
	"errors"

	"mimdloop/internal/core"
	"mimdloop/internal/graph"
	"mimdloop/internal/loopir"
)

// BatchItem is one loop of a Batch call. Exactly one of Graph and Source
// should be set; a set Graph wins (Source is then ignored).
type BatchItem struct {
	// Graph is a pre-compiled dependence graph to schedule.
	Graph *graph.Graph
	// Source is loop-language text, compiled through the pipeline's
	// compile cache when Graph is nil.
	Source string
	// Opts configures scheduling for this item.
	Opts core.Options
	// Iterations to schedule. 0 means 100.
	Iterations int
}

// BatchResult is the outcome of one BatchItem, in input order. Err is nil
// exactly when Plan is non-nil: a failed item isolates its error here and
// never affects its neighbours.
type BatchResult struct {
	// Index is the item's position in the input slice.
	Index int
	// Loop is the parsed loop name when the item was compiled from
	// Source.
	Loop string
	// Compiled is the compile-cache entry for Source items (nil for
	// pre-compiled Graph items).
	Compiled *loopir.Compiled
	// Plan is the scheduling artifact, shared with the plan cache.
	Plan *Plan
	// CacheHit reports the plan was served without rescheduling —
	// including when an identical loop appeared earlier in this batch
	// (items dedup through graph.Fingerprint, so textually different
	// sources compiling to the same graph share one schedule).
	CacheHit bool
	// Err is the item's compile or scheduling failure.
	Err error
}

// BatchOptions configures a Batch call.
type BatchOptions struct {
	// Workers bounds the pool scheduling the items. 0 means GOMAXPROCS;
	// 1 processes the batch serially in input order.
	Workers int
}

// Batch schedules a set of loops concurrently on a bounded worker pool.
// Results arrive in input order. Errors are isolated per item: one loop
// that fails to compile or schedule leaves the other N-1 plans intact.
// Items sharing a dependence graph (same fingerprint, options and
// iteration count) dedup through the plan cache — concurrent duplicates
// collapse into one computation via singleflight, so a batch of identical
// loops costs one schedule.
func (p *Pipeline) Batch(items []BatchItem, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(items))
	RunPool(len(items), opt.Workers, func(i int) {
		results[i] = p.batchOne(i, items[i])
	})
	return results
}

func (p *Pipeline) batchOne(i int, item BatchItem) BatchResult {
	res := BatchResult{Index: i}
	g := item.Graph
	if g == nil {
		if item.Source == "" {
			res.Err = errors.New("pipeline: batch item has neither graph nor source")
			return res
		}
		c, err := p.Compile(item.Source)
		if err != nil {
			res.Err = err
			return res
		}
		res.Compiled = c
		res.Loop = c.Loop.Name
		g = c.Graph
	}
	n := item.Iterations
	if n == 0 {
		n = 100
	}
	plan, hit, err := p.Schedule(g, item.Opts, n)
	if err != nil {
		res.Err = err
		return res
	}
	res.Plan = plan
	res.CacheHit = hit
	return res
}
