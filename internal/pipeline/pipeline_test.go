package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"mimdloop/internal/core"
	"mimdloop/internal/machine"
	"mimdloop/internal/metrics"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

var fig7Opts = core.Options{Processors: 2, CommCost: 2}

func TestScheduleCacheHitMiss(t *testing.T) {
	p := New(Config{})
	g := workload.Figure7().Graph

	plan1, hit, err := p.Schedule(g, fig7Opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported a cache hit")
	}
	if plan1.Rate() != 3 {
		t.Fatalf("rate = %v, want 3 (Figure 7 at p=2, k=2)", plan1.Rate())
	}
	if len(plan1.Programs) == 0 {
		t.Fatal("plan has no lowered programs")
	}

	plan2, hit, err := p.Schedule(g, fig7Opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("identical request missed the cache")
	}
	if plan1 != plan2 {
		t.Fatal("cache hit returned a different plan value")
	}

	// Same content, different graph pointer: still a hit.
	if _, hit, err = p.Schedule(workload.Figure7().Graph, fig7Opts, 100); err != nil || !hit {
		t.Fatalf("content-equal graph: hit=%v err=%v", hit, err)
	}

	// Different options or iteration count: miss.
	if _, hit, err = p.Schedule(g, core.Options{Processors: 3, CommCost: 2}, 100); err != nil || hit {
		t.Fatalf("changed processors: hit=%v err=%v", hit, err)
	}
	if _, hit, err = p.Schedule(g, fig7Opts, 50); err != nil || hit {
		t.Fatalf("changed iterations: hit=%v err=%v", hit, err)
	}

	s := p.Stats()
	if s.Hits != 2 || s.Misses != 3 || s.Computes != 3 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.4 {
		t.Fatalf("hit rate = %v, want 0.4", got)
	}
}

func TestScheduleMatchesDirectPath(t *testing.T) {
	p := New(Config{})
	g := workload.Livermore18().Graph
	opts := core.Options{Processors: 2, CommCost: 2, FoldNonCyclic: true}
	plan, _, err := p.Schedule(g, opts, 60)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ScheduleLoop(g, opts, 60)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rate() != want.RatePerIteration() {
		t.Fatalf("rate %v != direct %v", plan.Rate(), want.RatePerIteration())
	}
	if plan.Schedule.Full.Makespan() != want.Full.Makespan() {
		t.Fatalf("makespan %d != direct %d", plan.Schedule.Full.Makespan(), want.Full.Makespan())
	}
	wantProgs, err := program.Build(want.Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Programs) != len(wantProgs) {
		t.Fatalf("programs %d != direct %d", len(plan.Programs), len(wantProgs))
	}
}

func TestScheduleErrorNotCached(t *testing.T) {
	p := New(Config{})
	g := workload.Figure7().Graph
	if _, _, err := p.Schedule(g, fig7Opts, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := p.Schedule(g, core.Options{Processors: -1}, 10); err == nil {
		t.Fatal("negative processors accepted")
	}
	if s := p.Stats(); s.Entries != 0 {
		t.Fatalf("failed requests left %d cache entries", s.Entries)
	}
}

func TestDisableCache(t *testing.T) {
	p := New(Config{DisableCache: true})
	g := workload.Figure7().Graph
	for i := 0; i < 3; i++ {
		if _, hit, err := p.Schedule(g, fig7Opts, 100); err != nil || hit {
			t.Fatalf("pass-through pipeline: hit=%v err=%v", hit, err)
		}
	}
	if s := p.Stats(); s.Computes != 3 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvictionBoundsEntries(t *testing.T) {
	// MaxEntries below the shard count must still be honored exactly:
	// the shard count shrinks to match.
	for _, max := range []int{4, 16, 40} {
		p := New(Config{MaxEntries: max})
		g := workload.Figure7().Graph
		for n := 1; n <= 64; n++ {
			if _, _, err := p.Schedule(g, fig7Opts, n); err != nil {
				t.Fatal(err)
			}
		}
		s := p.Stats()
		if s.Entries > max {
			t.Fatalf("MaxEntries=%d: entries = %d", max, s.Entries)
		}
		if s.Evictions == 0 {
			t.Fatalf("MaxEntries=%d: no evictions recorded", max)
		}
	}
}

func TestNegativeMaxEntriesDefaults(t *testing.T) {
	p := New(Config{MaxEntries: -5}) // must not panic; treated as default
	if _, hit, err := p.Schedule(workload.Figure7().Graph, fig7Opts, 10); err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if s := p.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d", s.Entries)
	}
}

func TestScheduleJSONMemoized(t *testing.T) {
	p := New(Config{})
	plan, _, err := p.Schedule(workload.Figure7().Graph, fig7Opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := plan.ScheduleJSON()
	if err != nil || len(b1) == 0 {
		t.Fatalf("ScheduleJSON: %v", err)
	}
	b2, _ := plan.ScheduleJSON()
	if &b1[0] != &b2[0] {
		t.Fatal("repeat call re-marshaled the schedule")
	}
}

// fig7PlanBytes builds one Figure 7 plan at n iterations off to the side
// and reports its budget weight, so byte-bound tests track planBytes
// instead of hard-coding its constants.
func fig7PlanBytes(t *testing.T, n int) int64 {
	t.Helper()
	plan, _, err := New(Config{DisableCache: true}).Schedule(workload.Figure7().Graph, fig7Opts, n)
	if err != nil {
		t.Fatal(err)
	}
	return planBytes(plan)
}

// TestByteBudgetBoundsMemory checks the size-weighted eviction: many
// large plans cannot accumulate past the byte budget even when the
// entry-count limit would admit them.
func TestByteBudgetBoundsMemory(t *testing.T) {
	// A per-shard budget of 1.25× the largest plan fits any single plan
	// of n < 120 but never two (weights scale ~linearly with n, and
	// 2 × w(90) > 1.25 × w(119)), so entries stay at one per shard.
	w := fig7PlanBytes(t, 119)
	p := New(Config{MaxEntries: 1024, MaxBytes: maxMemShards * (w + w/4)})
	g := workload.Figure7().Graph
	for n := 90; n < 120; n++ {
		if _, _, err := p.Schedule(g, fig7Opts, n); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Entries > maxMemShards {
		t.Fatalf("entries = %d, want <= one per shard under a tiny budget", s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if s.Store.Bytes > maxMemShards*(w+w/4) {
		t.Fatalf("store bytes %d over budget", s.Store.Bytes)
	}
	// The cache still serves: the most recent request is retained.
	if _, hit, err := p.Schedule(g, fig7Opts, 119); err != nil || !hit {
		t.Fatalf("most recent plan evicted: hit=%v err=%v", hit, err)
	}
}

// TestOversizedPlanNotCached checks a plan exceeding the entire shard
// budget is served but never cached — it must not drain warm entries to
// make room it can never fit in.
func TestOversizedPlanNotCached(t *testing.T) {
	// MaxEntries 1024 spreads MaxBytes over 16 shards, so a budget of
	// half one plan leaves every shard far below a single plan's weight.
	p := New(Config{MaxEntries: 1024, MaxBytes: fig7PlanBytes(t, 100) / 2})
	g := workload.Figure7().Graph
	for i := 0; i < 2; i++ {
		plan, hit, err := p.Schedule(g, fig7Opts, 100)
		if err != nil || hit || plan.Rate() != 3 {
			t.Fatalf("request %d: hit=%v err=%v", i, hit, err)
		}
	}
	if s := p.Stats(); s.Entries != 0 {
		t.Fatalf("oversized plans cached: entries = %d", s.Entries)
	}
}

func TestFlush(t *testing.T) {
	p := New(Config{})
	g := workload.Figure7().Graph
	if _, _, err := p.Schedule(g, fig7Opts, 100); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if s := p.Stats(); s.Entries != 0 {
		t.Fatalf("entries after flush = %d", s.Entries)
	}
	if _, hit, err := p.Schedule(g, fig7Opts, 100); err != nil || hit {
		t.Fatalf("post-flush request: hit=%v err=%v", hit, err)
	}
}

// TestConcurrentSingleflight hammers a small key set from many goroutines
// (run with -race) and checks each distinct key was computed exactly once.
func TestConcurrentSingleflight(t *testing.T) {
	p := New(Config{})
	g := workload.Figure7().Graph
	const (
		goroutines = 16
		distinctN  = 4
		rounds     = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := 10 + (gi+r)%distinctN
				plan, _, err := p.Schedule(g, fig7Opts, n)
				if err != nil {
					errs <- err
					return
				}
				if plan.Rate() != 3 {
					errs <- fmt.Errorf("rate = %v at n=%d", plan.Rate(), n)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Computes != distinctN {
		t.Fatalf("computes = %d, want %d (singleflight)", s.Computes, distinctN)
	}
	if s.Hits+s.Misses != goroutines*rounds {
		t.Fatalf("requests accounted = %d, want %d", s.Hits+s.Misses, goroutines*rounds)
	}
}

func TestCompileAndSchedule(t *testing.T) {
	p := New(Config{})
	const src = `loop f(N = 100) {
	    A[i] = A[i-1] + E[i-1]
	    B[i] = A[i]
	    C[i] = B[i]
	    D[i] = D[i-1] + C[i-1]
	    E[i] = D[i]
	}`
	c1, plan, hit, err := p.CompileAndSchedule(src, fig7Opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hit || plan.Rate() != 3 || c1.Loop.Name != "f" {
		t.Fatalf("first compile: hit=%v rate=%v name=%q", hit, plan.Rate(), c1.Loop.Name)
	}
	c2, _, hit, err := p.CompileAndSchedule(src, fig7Opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second request missed the plan cache")
	}
	if c1 != c2 {
		t.Fatal("compile cache returned a fresh compilation")
	}
	if _, _, _, err := p.CompileAndSchedule("loop ???", fig7Opts, 10); err == nil {
		t.Fatal("bad source accepted")
	}
}

// TestCompileCacheLRU checks overflow evicts the oldest source only, and
// repeat compiles of a retained source keep returning one pointer.
func TestCompileCacheLRU(t *testing.T) {
	p := New(Config{MaxEntries: 2})
	src := func(i int) string {
		return fmt.Sprintf("loop s%d(N = 4) {\n A[i] = A[i-1] + U[i]\n}", i)
	}
	c1, err := p.Compile(src(1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Compile(src(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(src(3)); err != nil { // evicts src(1)
		t.Fatal(err)
	}
	if again, _ := p.Compile(src(2)); again != c2 {
		t.Fatal("retained source was re-compiled")
	}
	if again, _ := p.Compile(src(1)); again == c1 {
		t.Fatal("evicted source returned the stale compilation")
	}
}

func TestGrid(t *testing.T) {
	pts := Grid([]int{2, 4}, []int{1, 3})
	want := []Point{{2, 1, 0}, {2, 3, 0}, {4, 1, 0}, {4, 3, 0}}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

// TestSweepMatchesSerial checks the worker pool reproduces exactly what
// the serial loops it replaced produced: same rates, same simulated
// makespans, in grid order.
func TestSweepMatchesSerial(t *testing.T) {
	g := workload.Figure7().Graph
	points := Grid([]int{2, 3, 4}, []int{1, 2, 3})
	const iters = 40

	p := New(Config{})
	got := p.Sweep(g, points, SweepOptions{Iterations: iters, Simulate: true})
	if len(got) != len(points) {
		t.Fatalf("results = %d, want %d", len(got), len(points))
	}

	seq := iters * g.TotalLatency()
	for i, pt := range points {
		r := got[i]
		if r.Err != nil {
			t.Fatalf("point %v: %v", pt, r.Err)
		}
		if r.Point != pt {
			t.Fatalf("result %d out of order: %v vs %v", i, r.Point, pt)
		}
		ls, err := core.ScheduleLoop(g, core.Options{Processors: pt.Processors, CommCost: pt.CommCost}, iters)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rate != ls.RatePerIteration() {
			t.Fatalf("point %v: rate %v, serial %v", pt, r.Rate, ls.RatePerIteration())
		}
		progs, err := program.Build(ls.Full)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := machine.Run(g, progs, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if r.SimMakespan != stats.Makespan {
			t.Fatalf("point %v: makespan %d, serial %d", pt, r.SimMakespan, stats.Makespan)
		}
		wantSp := metrics.ClampZero(metrics.PercentParallelism(seq, stats.Makespan))
		if r.Sp != wantSp {
			t.Fatalf("point %v: Sp %v, serial %v", pt, r.Sp, wantSp)
		}
	}

	// A second sweep over the same grid is all cache hits.
	again := p.Sweep(g, points, SweepOptions{Iterations: iters, Simulate: true})
	for i, r := range again {
		if !r.CacheHit {
			t.Fatalf("second sweep point %v missed the cache", points[i])
		}
	}
}

func TestSweepWorkerCounts(t *testing.T) {
	g := workload.Figure7().Graph
	points := Grid([]int{2, 4}, []int{1, 2, 4})
	serial := New(Config{}).Sweep(g, points, SweepOptions{Iterations: 20, Workers: 1})
	wide := New(Config{}).Sweep(g, points, SweepOptions{Iterations: 20, Workers: 8})
	for i := range serial {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("point %d errored: %v / %v", i, serial[i].Err, wide[i].Err)
		}
		if serial[i].Rate != wide[i].Rate || serial[i].Procs != wide[i].Procs {
			t.Fatalf("point %d: workers=1 %+v, workers=8 %+v", i, serial[i], wide[i])
		}
	}
}

func TestSweepEmptyAndErrors(t *testing.T) {
	p := New(Config{})
	g := workload.Figure7().Graph
	if res := p.Sweep(g, nil, SweepOptions{}); len(res) != 0 {
		t.Fatalf("empty grid: %v", res)
	}
	res := p.Sweep(g, []Point{{Processors: -1, CommCost: 2}, {Processors: 2, CommCost: 2}}, SweepOptions{Iterations: 10})
	if res[0].Err == nil {
		t.Fatal("invalid point did not error")
	}
	if res[1].Err != nil || res[1].Rate != 3 {
		t.Fatalf("valid point poisoned: %+v", res[1])
	}
}
