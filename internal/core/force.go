package core

import (
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// forcePattern constructs a periodic schedule when no configuration repeat
// was detected within the iteration budget. The paper's Theorem 1
// guarantees a pattern exists, but its Lemma 6 implicitly assumes the
// greedy's decisions depend only on a bounded window of the past; with
// gap-filling placement and rational-rate recurrences the transient can be
// chaotic for a very long time. The fallback is classic modulo scheduling
// seeded by the greedy itself:
//
//  1. take a settled reference iteration i0 from the greedy warm-up and
//     read off each node's processor and relative start offset;
//  2. compute the smallest initiation interval T for which replaying that
//     flat schedule every T cycles (iteration shift 1) satisfies every
//     loop-carried dependence and keeps processors conflict-free;
//  3. emit it as a Forced pattern whose expansion is purely periodic from
//     iteration 0.
//
// The result is validated like any other expansion, so correctness does not
// rest on this reasoning.
func (r *CyclicResult) forcePattern() error {
	g := r.Graph
	timing := r.Greedy.Timing

	// Completion census.
	perIter := map[int]int{}
	for _, pl := range r.Greedy.Placements {
		perIter[pl.Iter]++
	}
	maxComplete := -1
	for i := 0; ; i++ {
		if perIter[i] != g.N() {
			break
		}
		maxComplete = i
	}
	if maxComplete < 1 {
		return fmt.Errorf("core: no complete iteration to force a pattern from")
	}
	i0 := maxComplete * 3 / 4
	if i0 < 1 {
		i0 = maxComplete
	}

	rel := make([]int, g.N())
	proc := make([]int, g.N())
	seen := 0
	minRel := int(^uint(0) >> 1)
	for _, pl := range r.Greedy.Placements {
		if pl.Iter != i0 {
			continue
		}
		rel[pl.Node] = pl.Start
		proc[pl.Node] = pl.Proc
		seen++
		if pl.Start < minRel {
			minRel = pl.Start
		}
	}
	if seen != g.N() {
		return fmt.Errorf("core: reference iteration %d incomplete (%d of %d nodes)", i0, seen, g.N())
	}
	for v := range rel {
		rel[v] -= minRel
	}

	// Availability of u's value on v's processor, in relative offsets.
	relAvail := func(e graph.Edge) int {
		u := e.From
		pu := plan.Placement{Node: u, Iter: 0, Proc: proc[u], Start: rel[u]}
		return timing.Avail(pu, g.Nodes[u].Latency, e, proc[e.To])
	}

	// Lower bound on T from loop-carried dependences:
	// rel(v) + T*dist >= relAvail(u->v).
	tLow := 1
	span := 0
	for v := 0; v < g.N(); v++ {
		if fin := rel[v] + g.Nodes[v].Latency; fin > span {
			span = fin
		}
	}
	for _, e := range g.Edges {
		if e.Distance == 0 {
			continue
		}
		need := relAvail(e) - rel[e.To]
		if need <= 0 {
			continue
		}
		t := (need + e.Distance - 1) / e.Distance
		if t > tLow {
			tLow = t
		}
	}

	// Raise T until processor usage is conflict-free modulo T.
	conflictFree := func(t int) bool {
		for v := 0; v < g.N(); v++ {
			if g.Nodes[v].Latency > t {
				return false // the node would overlap its own next instance
			}
		}
		for a := 0; a < g.N(); a++ {
			for b := a + 1; b < g.N(); b++ {
				if proc[a] != proc[b] {
					continue
				}
				// Circular intervals [rel, rel+lat) mod t must stay
				// disjoint across all period instances: with
				// d = (rel[a]-rel[b]) mod t, instance b reaches into a
				// when d < lat(b), and a wraps into b when t-d < lat(a).
				d := ((rel[a]-rel[b])%t + t) % t
				if d < g.Nodes[b].Latency || t-d < g.Nodes[a].Latency {
					return false
				}
			}
		}
		return true
	}
	// T = max(tLow, span) is always feasible: at T >= span the reference
	// iteration's intervals keep their original, disjoint layout mod T.
	period := -1
	maxT := tLow + span + 1
	for t := tLow; t <= maxT; t++ {
		if conflictFree(t) {
			period = t
			break
		}
	}
	if period < 0 {
		return fmt.Errorf("core: no conflict-free initiation interval up to %d", maxT)
	}

	p := &Pattern{Start: 0, End: period, IterShift: 1, Forced: true}
	for v := 0; v < g.N(); v++ {
		p.Placements = append(p.Placements, plan.Placement{Node: v, Iter: 0, Proc: proc[v], Start: rel[v]})
	}
	r.Pattern = p
	return nil
}
