package core

import (
	"testing"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
	"mimdloop/internal/workload"
)

// chain builds a single grain-friendly stream chain: every node carries
// a distance-1 self-recurrence, consecutive nodes a distance-0 link.
func chain(t testing.TB, nodes int) *graph.Graph {
	t.Helper()
	g, err := workload.Streams(1, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// crossProcDeps counts dependence edges of s whose producer and consumer
// instances sit on different processors — each is one runtime message.
func crossProcDeps(t testing.TB, s *plan.Schedule) int {
	t.Helper()
	g := s.EffectiveGraph()
	procOf := make(map[graph.InstanceID]int, len(s.Placements))
	iters := 0
	for _, pl := range s.Placements {
		procOf[graph.InstanceID{Node: pl.Node, Iter: pl.Iter}] = pl.Proc
		if pl.Iter+1 > iters {
			iters = pl.Iter + 1
		}
	}
	n := 0
	for _, e := range g.Edges {
		for i := e.Distance; i < iters; i++ {
			from, okF := procOf[graph.InstanceID{Node: e.From, Iter: i - e.Distance}]
			to, okT := procOf[graph.InstanceID{Node: e.To, Iter: i}]
			if okF && okT && from != to {
				n++
			}
		}
	}
	return n
}

// TestScheduleChunkedShape pins the grain branch of ScheduleLoop: the
// returned schedule keeps the original graph with Grain = G, covers
// ceil(n/G) chunk iterations per node, and its per-iteration rate stays
// comparable to (and under G-fold fusion, better than) the grain-1 rate.
func TestScheduleChunkedShape(t *testing.T) {
	g := chain(t, 5)
	const n, grain = 40, 4
	base, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2, Grain: grain}, n)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Graph != g || ls.Full.Grain != grain || ls.Iterations != n {
		t.Fatalf("chunked schedule shape: graph %p grain %d iters %d", ls.Graph, ls.Full.Grain, ls.Iterations)
	}
	chunks := make(map[int]int)
	for _, pl := range ls.Full.Placements {
		chunks[pl.Node]++
	}
	for v := 0; v < g.N(); v++ {
		if chunks[v] != (n+grain-1)/grain {
			t.Fatalf("node %d has %d chunk instances, want %d", v, chunks[v], (n+grain-1)/grain)
		}
	}
	if br, cr := base.RatePerIteration(), ls.RatePerIteration(); cr > br {
		t.Fatalf("grain %d scheduled rate %.2f worse than grain-1 rate %.2f", grain, cr, br)
	}
}

// TestChunkLocalityStickyPlacement pins the sticky placement rule for
// chunk graphs: with chunkLocality set, Cyclic-sched keeps each node's
// chunk stream on one processor instead of bouncing it for a cycle or
// two of earlier start, and therefore schedules strictly fewer
// cross-processor dependences on a split stream chain. Grain-0
// scheduling never sets the flag, so the greedy baseline stays
// byte-identical to the pre-grain scheduler.
func TestChunkLocalityStickyPlacement(t *testing.T) {
	g := chain(t, 6)
	cg, err := graph.Chunked(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 32
	run := func(sticky bool) *plan.Schedule {
		t.Helper()
		opts := Options{Processors: 2, CommCost: 2, chunkLocality: sticky}
		ls, err := ScheduleLoop(cg, opts, chunks)
		if err != nil {
			t.Fatal(err)
		}
		return ls.Full
	}
	sticky, loose := crossProcDeps(t, run(true)), crossProcDeps(t, run(false))
	if sticky >= loose {
		t.Fatalf("sticky placement schedules %d cross-processor deps, loose %d — stickiness buys nothing", sticky, loose)
	}
	// The sticky schedule must also keep every node on few processors:
	// a node that settles pays messages only on its chain links, not on
	// its own recurrence ping-ponging home.
	procs := make(map[int]map[int]bool)
	for _, pl := range run(true).Placements {
		if procs[pl.Node] == nil {
			procs[pl.Node] = map[int]bool{}
		}
		procs[pl.Node][pl.Proc] = true
	}
	for v, set := range procs {
		if len(set) > 2 {
			t.Fatalf("node %d spread over %d processors under sticky placement", v, len(set))
		}
	}
}

// TestGrainValidation pins Options.validate on the grain axis.
func TestGrainValidation(t *testing.T) {
	g := chain(t, 3)
	if _, err := ScheduleLoop(g, Options{Grain: -1}, 8); err == nil {
		t.Fatal("negative grain accepted")
	}
	// Infeasible grains must surface the graph error, not panic.
	fig := figure7(t)
	if _, err := ScheduleLoop(fig, Options{Processors: 2, CommCost: 2, Grain: 2}, 8); err == nil {
		t.Fatal("infeasible grain accepted")
	}
}
