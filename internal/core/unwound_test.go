package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/graph"
	"mimdloop/internal/mimdrt"
	"mimdloop/internal/program"
)

// distance2Loop: X(2) -> Y(1) within iteration, Y -> X at distance 3.
// Three iterations can run concurrently; per-iteration rate 1 with enough
// processors (cycle latency 3 over distance 3).
func distance2Loop(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	x := b.AddNode("X", 2)
	y := b.AddNode("Y", 1)
	b.AddEdge(x, y, 0)
	b.AddEdge(y, x, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleUnwoundBasics(t *testing.T) {
	g := distance2Loop(t)
	u, err := ScheduleUnwound(g, Options{Processors: 4, CommCost: 0}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if u.Factor != 3 {
		t.Fatalf("factor = %d, want 3", u.Factor)
	}
	if u.Full.Iterations() != 30 {
		t.Fatalf("iterations = %d", u.Full.Iterations())
	}
	// With zero communication, three independent chains pipeline to ~1
	// cycle per original iteration.
	if rate := u.RatePerIteration(); rate > 1.5 {
		t.Fatalf("rate = %v cycles/original-iteration, want ~1", rate)
	}
}

func TestScheduleUnwoundNoUnwindNeeded(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddNode("X", 1)
	b.AddEdge(x, x, 1)
	g := b.MustBuild()
	u, err := ScheduleUnwound(g, Options{Processors: 2, CommCost: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u.Factor != 1 {
		t.Fatalf("factor = %d, want 1", u.Factor)
	}
	if u.Full.Makespan() != 10 {
		t.Fatalf("makespan = %d, want 10", u.Full.Makespan())
	}
}

func TestScheduleUnwoundNonMultipleTripCount(t *testing.T) {
	g := distance2Loop(t)
	// 31 is not a multiple of the factor 3: the tail copies must be
	// dropped cleanly.
	u, err := ScheduleUnwound(g, Options{Processors: 4, CommCost: 1}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if u.Full.Iterations() != 31 {
		t.Fatalf("iterations = %d, want 31", u.Full.Iterations())
	}
	if err := u.Full.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleUnwoundSemanticsPreserved(t *testing.T) {
	g := distance2Loop(t)
	n := 25
	u, err := ScheduleUnwound(g, Options{Processors: 3, CommCost: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(u.Full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mimdrt.Run(g, progs, mimdrt.MixSemantics{})
	if err != nil {
		t.Fatal(err)
	}
	want := mimdrt.Sequential(g, mimdrt.MixSemantics{}, n)
	if len(got) != len(want) {
		t.Fatalf("values = %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9*math.Max(1, math.Abs(w)) {
			t.Fatalf("%+v = %v, want %v", k, got[k], w)
		}
	}
}

func TestScheduleUnwoundRejectsBadN(t *testing.T) {
	g := distance2Loop(t)
	if _, err := ScheduleUnwound(g, Options{}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestPropertyUnwoundValidAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nn := 2 + rng.Intn(6)
		b := graph.NewBuilder()
		for i := 0; i < nn; i++ {
			b.AddNode("n", 1+rng.Intn(2))
		}
		for i, sd := 0, rng.Intn(nn); i < sd; i++ {
			u := rng.Intn(nn - 1)
			v := u + 1 + rng.Intn(nn-u-1)
			b.AddEdge(u, v, 0)
		}
		for i, lcd := 0, 1+rng.Intn(nn); i < lcd; i++ {
			b.AddEdge(rng.Intn(nn), rng.Intn(nn), 1+rng.Intn(3))
		}
		g := b.MustBuild()
		n := 3 + rng.Intn(15)
		u, err := ScheduleUnwound(g, Options{Processors: 3, CommCost: rng.Intn(3)}, n)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return u.Full.Iterations() == n && u.Full.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
