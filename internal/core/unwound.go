package core

import (
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// UnwoundSchedule is a schedule produced by the paper's prescribed
// normalization path: unwind the loop until all dependence distances are 0
// or 1 [MuSi87], schedule the unwound body, and map placements back to the
// original loop's (node, iteration) coordinates.
type UnwoundSchedule struct {
	// Factor is the unwinding degree (1 when no unwinding was needed).
	Factor int
	// Inner is the schedule of the unwound loop (its own node IDs).
	Inner *LoopSchedule
	// Full is the mapped schedule over the original graph for the
	// requested iteration count.
	Full *plan.Schedule
}

// RatePerIteration returns steady-state cycles per original iteration.
func (u *UnwoundSchedule) RatePerIteration() float64 {
	return u.Inner.RatePerIteration() / float64(u.Factor)
}

// ScheduleUnwound normalizes g's dependence distances to <= 1 by unwinding
// (footnote 2 of the paper), runs the full pipeline on the unwound body,
// and returns both views. The scheduler itself handles distances >= 2
// natively; this entry point exists because unwinding exposes parallelism
// the distance-d formulation hides from DOACROSS-style analyses and is the
// transformation the paper assumes, and because callers may want the
// unwound kernel for code generation.
func ScheduleUnwound(g *graph.Graph, opts Options, n int) (*UnwoundSchedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: schedule %d iterations", n)
	}
	ng, factor, err := g.NormalizeDistances()
	if err != nil {
		return nil, err
	}
	innerIters := (n + factor - 1) / factor
	inner, err := ScheduleLoop(ng, opts, innerIters)
	if err != nil {
		return nil, err
	}

	// Map (copy j of v, unwound iter i) -> (v, i*factor + j). Unwind lays
	// copies out j-major: unwound ID = j*N + v.
	nOrig := g.N()
	full := &plan.Schedule{
		Graph:      g,
		Timing:     inner.Full.Timing,
		Processors: inner.Full.Processors,
	}
	for _, pl := range inner.Full.Placements {
		copyIdx := pl.Node / nOrig
		orig := pl.Node % nOrig
		iter := pl.Iter*factor + copyIdx
		if iter >= n {
			// Tail copies beyond the requested trip count. Dropping them
			// is safe: dependences only flow from lower to higher
			// original iterations, so no kept placement consumes one.
			continue
		}
		full.Placements = append(full.Placements, plan.Placement{
			Node:  orig,
			Iter:  iter,
			Proc:  pl.Proc,
			Start: pl.Start,
		})
	}
	if err := full.Validate(true); err != nil {
		return nil, fmt.Errorf("core: unwound mapping invalid: %w", err)
	}
	return &UnwoundSchedule{Factor: factor, Inner: inner, Full: full}, nil
}
