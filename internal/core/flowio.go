package core

import (
	"fmt"
	"sort"

	"mimdloop/internal/classify"
	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// flowSetLatency returns the total latency L of a node subset: the
// sequential cycles one iteration of the subset needs.
func flowSetLatency(g *graph.Graph, nodes []int) int {
	sum := 0
	for _, v := range nodes {
		sum += g.Nodes[v].Latency
	}
	return sum
}

// flowProcessorCount is the paper's p = ceil(L/H) generalized to patterns
// that advance d iterations per period of T cycles: each processor must
// absorb L cycles of work every p * (T/d) cycles, so p = ceil(L*d / T).
func flowProcessorCount(l, periodCycles, iterShift int) int {
	if l == 0 {
		return 0
	}
	if periodCycles <= 0 || iterShift <= 0 {
		return 1
	}
	p := (l*iterShift + periodCycles - 1) / periodCycles
	if p < 1 {
		p = 1
	}
	return p
}

// placeFlowSet schedules the given subset (Flow-in or Flow-out) for n
// iterations, iteration i on processor procBase + (i mod procCount)
// (algorithm Flow-in-sched / Flow-out-sched, Figure 5), or — when procPick
// is non-nil — on whichever of the listed processors can start each node
// earliest (the Section 3 folding heuristic). Nodes within an iteration go
// in body order; start times respect every already-placed predecessor under
// the timing model. Placements are appended to sched and indexed in idx.
func placeFlowSet(
	sched *plan.Schedule,
	idx map[graph.InstanceID]int,
	lines map[int]*timeline,
	subset []int,
	n, procBase, procCount int,
	procPick []int,
) error {
	g := sched.Graph
	if len(subset) == 0 {
		return nil
	}
	inSubset := make(map[int]bool, len(subset))
	for _, v := range subset {
		inSubset[v] = true
	}
	order := make([]int, 0, len(subset))
	rank := g.BodyRank()
	order = append(order, subset...)
	sort.Slice(order, func(i, j int) bool { return rank[order[i]] < rank[order[j]] })

	readyOn := func(v, iter, q int) (int, error) {
		ready := 0
		for _, ei := range g.In(v) {
			e := g.Edges[ei]
			srcIter := iter - e.Distance
			if srcIter < 0 {
				continue
			}
			pi, ok := idx[graph.InstanceID{Node: e.From, Iter: srcIter}]
			if !ok {
				return 0, fmt.Errorf("core: flow placement of (%s, iter %d) before predecessor (%s, iter %d)",
					g.Nodes[v].Name, iter, g.Nodes[e.From].Name, srcIter)
			}
			pl := sched.Placements[pi]
			if a := sched.Timing.Avail(pl, g.Nodes[pl.Node].Latency, e, q); a > ready {
				ready = a
			}
		}
		return ready, nil
	}

	for iter := 0; iter < n; iter++ {
		for _, v := range order {
			lat := g.Nodes[v].Latency
			var proc, start int
			if procPick != nil {
				proc, start = -1, 0
				for _, q := range procPick {
					ready, err := readyOn(v, iter, q)
					if err != nil {
						return err
					}
					tl := lines[q]
					if tl == nil {
						tl = &timeline{}
						lines[q] = tl
					}
					t := tl.fit(ready, lat, false)
					if proc == -1 || t < start {
						proc, start = q, t
					}
				}
			} else {
				proc = procBase + iter%procCount
				ready, err := readyOn(v, iter, proc)
				if err != nil {
					return err
				}
				tl := lines[proc]
				if tl == nil {
					tl = &timeline{}
					lines[proc] = tl
				}
				start = tl.fit(ready, lat, false)
			}
			lines[proc].insert(start, lat)
			pl := plan.Placement{Node: v, Iter: iter, Proc: proc, Start: start}
			idx[pl.Key()] = len(sched.Placements)
			sched.Placements = append(sched.Placements, pl)
			_ = inSubset
		}
	}
	return nil
}

// flowInDelay computes how many cycles the already-placed Cyclic schedule
// must be delayed so that every Cyclic consumer starts at or after the
// availability of its Flow-in inputs. cyclicSet marks Cyclic node IDs.
func flowInDelay(sched *plan.Schedule, idx map[graph.InstanceID]int, class *classify.Result) int {
	g := sched.Graph
	delay := 0
	for _, pl := range sched.Placements {
		if class.Of[pl.Node] != classify.Cyclic {
			continue
		}
		for _, ei := range g.In(pl.Node) {
			e := g.Edges[ei]
			if class.Of[e.From] != classify.FlowIn {
				continue
			}
			srcIter := pl.Iter - e.Distance
			if srcIter < 0 {
				continue
			}
			pi, ok := idx[graph.InstanceID{Node: e.From, Iter: srcIter}]
			if !ok {
				continue
			}
			prod := sched.Placements[pi]
			avail := sched.Timing.Avail(prod, g.Nodes[prod.Node].Latency, e, pl.Proc)
			if d := avail - pl.Start; d > delay {
				delay = d
			}
		}
	}
	return delay
}
