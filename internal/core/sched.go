package core

import (
	"fmt"
	"sort"

	"mimdloop/internal/graph"
	"mimdloop/internal/pattern"
	"mimdloop/internal/plan"
)

// Pattern is the steady-state segment extracted from the greedy schedule:
// the placements whose start cycle lies in [Start, End) repeat forever,
// with iteration indices advancing by IterShift per period of Cycles()
// cycles.
type Pattern struct {
	Start     int
	End       int
	IterShift int
	// Placements hold the pattern's operations with their absolute cycles
	// and iteration numbers as they first occurred in the greedy schedule,
	// sorted by (start, processor).
	Placements []plan.Placement
	// Forced marks a pattern constructed by the modulo-scheduling fallback
	// (see forcePattern) rather than detected as a configuration repeat;
	// its expansion is purely periodic from iteration 0 with no greedy
	// prologue.
	Forced bool
}

// Cycles returns the period length.
func (p *Pattern) Cycles() int { return p.End - p.Start }

// RatePerIteration returns steady-state cycles per iteration.
func (p *Pattern) RatePerIteration() float64 {
	return float64(p.Cycles()) / float64(p.IterShift)
}

func (p *Pattern) String() string {
	return fmt.Sprintf("pattern cycles [%d,%d) advancing %d iteration(s): %.3g cycles/iteration",
		p.Start, p.End, p.IterShift, p.RatePerIteration())
}

// CyclicResult is the outcome of Cyclic-sched on one graph.
type CyclicResult struct {
	Graph *graph.Graph
	Opts  Options
	// Greedy is the greedy prefix schedule produced up to the point the
	// pattern was verified (or the budget exhausted).
	Greedy *plan.Schedule
	// Pattern is the verified steady state; nil when ErrNoPattern.
	Pattern *Pattern
}

// CyclicSched runs the paper's Figure 4 algorithm on g, which is expected
// to be (but need not be) a Cyclic subset: every dynamic instance is placed
// on the processor that can start it earliest under the communication
// model, in a deterministic ready order, until a configuration repeat is
// verified.
//
// Nodes with no predecessors at all are given an implicit sequential
// self-dependence (iteration i+1 becomes ready when iteration i is placed);
// in a genuine Cyclic subset such nodes cannot occur, but this keeps the
// scheduler total on arbitrary graphs.
func CyclicSched(g *graph.Graph, opts Options) (*CyclicResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)
	timing := plan.Timing{CommCost: opts.CommCost, CommFromStart: opts.CommFromStart}
	res := &CyclicResult{
		Graph: g,
		Opts:  opts,
		Greedy: &plan.Schedule{
			Graph:      g,
			Timing:     timing,
			Processors: opts.Processors,
		},
	}

	rank := g.BodyRank()
	procs := make([]timeline, opts.Processors)
	det := pattern.NewDetector(opts.Processors, opts.WindowHeight)
	placed := make(map[graph.InstanceID]int) // instance -> placement index
	// Sticky placement state (chunk graphs only): the processor that ran
	// each node's most recent iteration. See Options.chunkLocality.
	var lastProc map[int]int
	if opts.chunkLocality {
		lastProc = make(map[int]int, g.N())
	}
	pending := make(map[graph.InstanceID]int)
	queue := &readyQueue{fifo: opts.FIFOOrder}
	gate := newDriftGate(opts.DriftBound, g.N())

	// Seed every instance with no dynamic predecessors: iteration i of v
	// qualifies while i is smaller than v's minimum incoming distance
	// (predecessor-free nodes are seeded one iteration at a time below).
	for v := 0; v < g.N(); v++ {
		if len(g.In(v)) == 0 {
			queue.add(readyEntry{node: v, iter: 0, rank: rank[v]})
			continue
		}
		for i := 0; g.InstancePredCount(v, i) == 0; i++ {
			queue.add(readyEntry{node: v, iter: i, rank: rank[v]})
		}
	}
	if queue.Len() == 0 {
		return nil, fmt.Errorf("core: no schedulable roots (every node has an iteration-0 predecessor)")
	}

	// availOn computes when instance inst's value reaches processor q.
	availOn := func(pl plan.Placement, e graph.Edge, q int) int {
		return timing.Avail(pl, g.Nodes[pl.Node].Latency, e, q)
	}

	for queue.Len() > 0 {
		ent := queue.next()
		if ent.iter >= opts.MaxIterations {
			// No configuration repeat within budget: fall back to the
			// modulo-scheduling construction seeded by the greedy warm-up.
			if ferr := res.forcePattern(); ferr != nil {
				return res, fmt.Errorf("%w (budget %d iterations, %d placements; fallback: %v)",
					ErrNoPattern, opts.MaxIterations, len(res.Greedy.Placements), ferr)
			}
			return res, nil
		}
		if gate.blocked(ent.iter) {
			gate.park(ent)
			continue
		}
		v, iter := ent.node, ent.iter
		lat := g.Nodes[v].Latency

		// Per-processor ready time from predecessors and the drift floor.
		bestProc, bestStart := -1, 0
		prevProc, prevStart := -1, 0
		if lastProc != nil {
			if p, ok := lastProc[v]; ok {
				prevProc = p
			}
		}
		floor := gate.floor(iter)
		for q := 0; q < opts.Processors; q++ {
			ready := floor
			if len(g.In(v)) > 0 {
				for _, ei := range g.In(v) {
					e := g.Edges[ei]
					srcIter := iter - e.Distance
					if srcIter < 0 {
						continue
					}
					pi := placed[graph.InstanceID{Node: e.From, Iter: srcIter}]
					if a := availOn(res.Greedy.Placements[pi], e, q); a > ready {
						ready = a
					}
				}
			} else if iter > 0 {
				// Implicit self-ordering for predecessor-free nodes.
				pi := placed[graph.InstanceID{Node: v, Iter: iter - 1}]
				prev := res.Greedy.Placements[pi]
				if fin := prev.Start + lat; fin > ready {
					ready = fin
				}
			}
			t := procs[q].fit(ready, lat, opts.AppendOnly)
			if q == prevProc {
				prevStart = t
			}
			if bestProc == -1 || t < bestStart {
				bestProc, bestStart = q, t
			}
		}
		// Sticky override: stay where the previous iteration ran unless
		// moving starts this instance more than CommCost cycles earlier
		// — a move pays k on the way out and k again when the node's
		// recurrence pulls the value back, so up to k cycles of delay is
		// repaid before the next chunk boundary.
		if prevProc >= 0 && bestProc != prevProc && prevStart <= bestStart+opts.CommCost {
			bestProc, bestStart = prevProc, prevStart
		}

		pl := plan.Placement{Node: v, Iter: iter, Proc: bestProc, Start: bestStart}
		pi := len(res.Greedy.Placements)
		res.Greedy.Placements = append(res.Greedy.Placements, pl)
		placed[pl.Key()] = pi
		if lastProc != nil {
			lastProc[v] = bestProc
		}
		procs[bestProc].insert(bestStart, lat)
		det.Add(v, iter, bestProc, bestStart, lat)
		for _, rel := range gate.record(iter, bestStart+lat) {
			queue.add(rel)
		}

		// Wake successors.
		for _, ei := range g.Out(v) {
			e := g.Edges[ei]
			child := graph.InstanceID{Node: e.To, Iter: iter + e.Distance}
			left, seen := pending[child]
			if !seen {
				left = g.InstancePredCount(e.To, child.Iter)
			}
			left--
			if left == 0 {
				delete(pending, child)
				queue.add(readyEntry{
					node:  child.Node,
					iter:  child.Iter,
					rank:  rank[child.Node],
					lower: lowerBound(g, res.Greedy.Placements, placed, child),
				})
			} else {
				pending[child] = left
			}
		}
		if len(g.In(v)) == 0 {
			// Implicit self-ordering seeding.
			queue.add(readyEntry{node: v, iter: iter + 1, rank: rank[v], lower: bestStart + lat})
		}

		stable := queue.stableTime()
		if dl := gate.minDeferredLower(); dl < stable {
			stable = dl
		}
		if m, ok := det.Find(stable); ok {
			res.Pattern = extractPattern(res.Greedy, m)
			return res, nil
		}
	}
	// Unreachable for cyclic inputs: the queue cannot drain while
	// unwinding is unbounded. It can drain for finite DAGs only.
	return res, fmt.Errorf("%w (ready queue drained after %d placements)", ErrNoPattern, len(res.Greedy.Placements))
}

// lowerBound returns the cheapest possible start of an unplaced instance:
// the latest local finish among its placed predecessors (cross-processor
// availability can only be later).
func lowerBound(g *graph.Graph, pls []plan.Placement, placed map[graph.InstanceID]int, inst graph.InstanceID) int {
	lb := 0
	for _, ei := range g.In(inst.Node) {
		e := g.Edges[ei]
		srcIter := inst.Iter - e.Distance
		if srcIter < 0 {
			continue
		}
		pl := pls[placed[graph.InstanceID{Node: e.From, Iter: srcIter}]]
		if fin := pl.Start + g.Nodes[pl.Node].Latency; fin > lb {
			lb = fin
		}
	}
	return lb
}

// extractPattern cuts the verified period out of the greedy schedule.
func extractPattern(s *plan.Schedule, m pattern.Match) *Pattern {
	p := &Pattern{Start: m.Start, End: m.End, IterShift: m.IterShift}
	for _, pl := range s.Placements {
		if pl.Start >= m.Start && pl.Start < m.End {
			p.Placements = append(p.Placements, pl)
		}
	}
	sort.Slice(p.Placements, func(i, j int) bool {
		a, b := p.Placements[i], p.Placements[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Proc < b.Proc
	})
	return p
}
