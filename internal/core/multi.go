package core

import (
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// ComponentSchedule is the Cyclic-sched result for one weakly-connected
// component of a Cyclic subgraph.
type ComponentSchedule struct {
	// Result is the per-component scheduling outcome (node IDs local to
	// the component subgraph).
	Result *CyclicResult
	// Map sends component-local node IDs back to the input graph's IDs.
	Map []int
	// ProcBase is the first processor index assigned to this component in
	// the merged schedule.
	ProcBase int
	// Procs is the number of processors reserved for the component.
	Procs int
}

// MultiResult schedules a possibly-disconnected graph by running
// Cyclic-sched on each weakly-connected component independently, as Section
// 2.1 prescribes, and laying the components out on disjoint processor
// blocks.
type MultiResult struct {
	Graph      *graph.Graph
	Opts       Options
	Components []ComponentSchedule
	Processors int
}

// CyclicSchedAll splits g into weakly-connected components, runs
// Cyclic-sched on each, and returns the combined result. opts.Processors is
// the per-component processor budget (0 = one per component node).
func CyclicSchedAll(g *graph.Graph, opts Options) (*MultiResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	m := &MultiResult{Graph: g, Opts: opts}
	for _, comp := range g.ConnectedComponents() {
		sub, back, err := g.InducedSubgraph(comp)
		if err != nil {
			return nil, err
		}
		copts := opts
		if copts.Processors == 0 {
			copts.Processors = sub.N()
		}
		res, err := CyclicSched(sub, copts)
		if err != nil {
			return nil, fmt.Errorf("core: component %v: %w", comp, err)
		}
		m.Components = append(m.Components, ComponentSchedule{
			Result:   res,
			Map:      back,
			ProcBase: m.Processors,
			Procs:    usedProcs(res.Greedy),
		})
		m.Processors += usedProcs(res.Greedy)
	}
	return m, nil
}

// RatePerIteration returns the steady-state cycles per iteration of the
// merged schedule: the slowest component binds the loop.
func (m *MultiResult) RatePerIteration() float64 {
	worst := 0.0
	for _, c := range m.Components {
		if r := c.Result.Pattern.RatePerIteration(); r > worst {
			worst = r
		}
	}
	return worst
}

// slowestPeriod returns the (cycles, iterShift) pair of the component with
// the worst rate, used to size the Flow-in/Flow-out processor pools.
func (m *MultiResult) slowestPeriod() (int, int) {
	bestT, bestD := 0, 1
	worst := -1.0
	for _, c := range m.Components {
		p := c.Result.Pattern
		if r := p.RatePerIteration(); r > worst {
			worst = r
			bestT, bestD = p.Cycles(), p.IterShift
		}
	}
	return bestT, bestD
}

// SinglePattern returns the pattern when the graph has exactly one
// component, else nil.
func (m *MultiResult) SinglePattern() *Pattern {
	if len(m.Components) != 1 {
		return nil
	}
	return m.Components[0].Result.Pattern
}

// Expand merges the per-component n-iteration expansions into one schedule
// over the input graph's node IDs and the disjoint processor blocks.
func (m *MultiResult) Expand(n int) (*plan.Schedule, error) {
	out := &plan.Schedule{
		Graph:      m.Graph,
		Timing:     plan.Timing{CommCost: m.Opts.CommCost, CommFromStart: m.Opts.CommFromStart},
		Processors: m.Processors,
	}
	for _, c := range m.Components {
		part, err := c.Result.Expand(n)
		if err != nil {
			return nil, err
		}
		for _, pl := range part.Placements {
			out.Placements = append(out.Placements, plan.Placement{
				Node:  c.Map[pl.Node],
				Iter:  pl.Iter,
				Proc:  pl.Proc + c.ProcBase,
				Start: pl.Start,
			})
		}
	}
	if err := out.Validate(true); err != nil {
		return nil, fmt.Errorf("core: merged expansion invalid: %w", err)
	}
	return out, nil
}
