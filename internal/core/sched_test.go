package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/classify"
	"mimdloop/internal/graph"
)

// figure7 builds the paper's Figure 7(a) loop:
//
//	A: A[I] = A[I-1] + E[I-1]
//	B: B[I] = A[I]
//	C: C[I] = B[I]
//	D: D[I] = D[I-1] + C[I-1]
//	E: E[I] = D[I]
//
// All latencies 1; all nodes Cyclic.
func figure7(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	c := b.AddNode("C", 1)
	d := b.AddNode("D", 1)
	e := b.AddNode("E", 1)
	b.AddEdge(a, a, 1)
	b.AddEdge(e, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(d, d, 1)
	b.AddEdge(c, d, 1)
	b.AddEdge(d, e, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("figure7: %v", err)
	}
	return g
}

func TestFigure7Pattern(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatalf("CyclicSched: %v", err)
	}
	p := res.Pattern
	if p == nil {
		t.Fatal("no pattern")
	}
	// Paper, Section 3: "in effect, each iteration is completed every
	// three cycles", giving percentage parallelism (5-3)/5 = 40%.
	if got := p.RatePerIteration(); got != 3 {
		t.Fatalf("rate = %v cycles/iteration, want 3 (pattern %v)", got, p)
	}
	if err := res.Greedy.Validate(false); err != nil {
		t.Fatalf("greedy prefix invalid: %v", err)
	}
}

func TestFigure7Expansion(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 10, 50} {
		full, err := res.Expand(n)
		if err != nil {
			t.Fatalf("Expand(%d): %v", n, err)
		}
		if full.Iterations() != n {
			t.Fatalf("Expand(%d) covers %d iterations", n, full.Iterations())
		}
	}
	// Asymptotics: makespan grows ~3 cycles per extra iteration.
	s50, err := res.Expand(50)
	if err != nil {
		t.Fatal(err)
	}
	s100, err := res.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	delta := s100.Makespan() - s50.Makespan()
	if delta != 150 {
		t.Fatalf("makespan delta over 50 iterations = %d, want 150 (3/iter)", delta)
	}
}

func TestFigure7GreedyMatchesExpansionRate(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := res.Expand(60)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyN(g, Options{Processors: 2, CommCost: 2}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Makespan() != greedy.Makespan() {
		t.Fatalf("expanded makespan %d != greedy makespan %d", exp.Makespan(), greedy.Makespan())
	}
}

func TestZeroCommPerfectPipelining(t *testing.T) {
	// With k=0 the algorithm degenerates to Perfect Pipelining: the Fig. 7
	// loop's rate is bounded by its critical cycle, 2 cycles/iteration
	// (A->A is 1, but C->D->...: cycle C? A(1)/1 = 1... the binding cycle
	// is A[i] = A[i-1]+E[i-1] with E fed by D: longest cycle D->E->A->B->C
	// ->D spans 5 latency over 2 iterations = 2.5 -> ceil rate 2.5).
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 5, CommCost: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(5) / 2 // cycle D->E->A->B->C->D: 5 latency, distance 2
	if got := res.Pattern.RatePerIteration(); got != want {
		t.Fatalf("zero-comm rate = %v, want %v", got, want)
	}
	// Lower bound from graph theory (integer ceiling).
	if cpi := g.CriticalPathPerIteration(); float64(cpi) > res.Pattern.RatePerIteration()+0.5 {
		t.Fatalf("rate %v beats critical-path bound %d", res.Pattern.RatePerIteration(), cpi)
	}
}

func TestSelfLoopSingleNode(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddNode("X", 2)
	b.AddEdge(x, x, 1)
	g := b.MustBuild()
	res, err := CyclicSched(g, Options{Processors: 3, CommCost: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A self-dependent node can never overlap itself: 2 cycles/iteration,
	// all on one processor (moving costs communication for no gain).
	if got := res.Pattern.RatePerIteration(); got != 2 {
		t.Fatalf("rate = %v, want 2", got)
	}
	procs := map[int]bool{}
	for _, pl := range res.Greedy.Placements {
		procs[pl.Proc] = true
	}
	if len(procs) != 1 {
		t.Fatalf("self-loop spread over %d processors, want 1", len(procs))
	}
}

func TestCommCostKeepsChainLocal(t *testing.T) {
	// Chain A->B with lcd B->A: with k=3, hopping processors costs more
	// than waiting; everything should stay on processor 0 at 2 cycles/iter.
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, a, 1)
	g := b.MustBuild()
	res, err := CyclicSched(g, Options{Processors: 4, CommCost: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Pattern.RatePerIteration(); got != 2 {
		t.Fatalf("rate = %v, want 2", got)
	}
	for _, pl := range res.Greedy.Placements {
		if pl.Proc != 0 {
			t.Fatalf("placement %+v left processor 0 despite comm cost", pl)
		}
	}
}

func TestTwoIndependentCyclesUseTwoProcessors(t *testing.T) {
	// Two disjoint self-loops should run on different processors and give
	// a combined rate of 1 iteration per max(latency) cycles.
	b := graph.NewBuilder()
	x := b.AddNode("X", 2)
	y := b.AddNode("Y", 2)
	b.AddEdge(x, x, 1)
	b.AddEdge(y, y, 1)
	g := b.MustBuild()
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Pattern.RatePerIteration(); got != 2 {
		t.Fatalf("rate = %v, want 2", got)
	}
	procs := map[int]map[int]bool{}
	for _, pl := range res.Greedy.Placements {
		if procs[pl.Node] == nil {
			procs[pl.Node] = map[int]bool{}
		}
		procs[pl.Node][pl.Proc] = true
	}
	if len(procs[0]) != 1 || len(procs[1]) != 1 {
		t.Fatalf("nodes wander across processors: %v", procs)
	}
}

func TestErrNoPatternBudget(t *testing.T) {
	g := figure7(t)
	_, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, MaxIterations: 1})
	if err == nil || !errors.Is(err, ErrNoPattern) {
		t.Fatalf("err = %v, want ErrNoPattern", err)
	}
}

func TestOptionValidation(t *testing.T) {
	g := figure7(t)
	if _, err := CyclicSched(g, Options{Processors: -1}); err == nil {
		t.Fatal("negative processors accepted")
	}
	if _, err := CyclicSched(g, Options{CommCost: -1}); err == nil {
		t.Fatal("negative comm cost accepted")
	}
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Expand(0); err == nil {
		t.Fatal("Expand(0) accepted")
	}
	if _, err := GreedyN(g, Options{Processors: 2, CommCost: 2}, 0); err == nil {
		t.Fatal("GreedyN(0) accepted")
	}
}

func TestAppendOnlyAblationNoWorseThanSerial(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, AppendOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern.RatePerIteration() > 5 {
		t.Fatalf("append-only rate %v worse than sequential", res.Pattern.RatePerIteration())
	}
}

func TestFIFOOrderAlsoFindsPattern(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, FIFOOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern == nil {
		t.Fatal("FIFO order found no pattern")
	}
	if _, err := res.Expand(20); err != nil {
		t.Fatalf("FIFO expansion: %v", err)
	}
}

// randomCyclicGraph generates a random graph and extracts its Cyclic
// subset, as the paper's experiments do; returns nil if the subset is
// empty.
func randomCyclicGraph(rng *rand.Rand, n, sd, lcd int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("n", 1+rng.Intn(3))
	}
	for i := 0; i < sd; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(u, v, 0)
	}
	for i := 0; i < lcd; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
	}
	g := b.MustBuild()
	cls := classify.Partition(g)
	if cls.IsDOALL() {
		return nil
	}
	sub, _, err := classify.CyclicSubgraph(g, cls)
	if err != nil {
		return nil
	}
	return sub
}

func TestPropertyPatternsEmergeAndValidate(t *testing.T) {
	// Every random Cyclic subset — scheduled per connected component, as
	// Section 2.1 prescribes — must yield a verified pattern whose
	// expansion is a valid complete schedule.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := randomCyclicGraph(rng, n, rng.Intn(2*n), 1+rng.Intn(n))
		if g == nil {
			return true
		}
		opts := Options{Processors: 4, CommCost: rng.Intn(4)}
		multi, err := CyclicSchedAll(g, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		exp, err := multi.Expand(25)
		if err != nil {
			t.Logf("seed %d expand: %v", seed, err)
			return false
		}
		return exp.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExpansionTracksGreedy(t *testing.T) {
	// For connected graphs, the pattern-replicated schedule is the greedy
	// schedule continued: makespans may differ only by boundary effects at
	// the final iterations (greedy of a finite horizon can place tail
	// instances differently), bounded by one pattern period plus a window.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := randomCyclicGraph(rng, n, rng.Intn(n), 1+rng.Intn(n))
		if g == nil || len(g.ConnectedComponents()) != 1 {
			return true
		}
		opts := Options{Processors: 3, CommCost: 1 + rng.Intn(3)}
		res, err := CyclicSched(g, opts)
		if err != nil {
			return false
		}
		iters := 30
		exp, err := res.Expand(iters)
		if err != nil {
			return false
		}
		greedy, err := GreedyN(g, opts, iters)
		if err != nil {
			return false
		}
		slack := res.Pattern.Cycles() + res.Opts.WindowHeight
		diff := exp.Makespan() - greedy.Makespan()
		if diff < 0 {
			diff = -diff
		}
		if diff > slack {
			t.Logf("seed %d: expansion %d vs greedy %d (slack %d)", seed, exp.Makespan(), greedy.Makespan(), slack)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiComponentScheduling(t *testing.T) {
	// Two self-loops with different latencies drift apart forever; a
	// global pattern never forms, but per-component scheduling handles it.
	b := graph.NewBuilder()
	x := b.AddNode("X", 2)
	y := b.AddNode("Y", 3)
	b.AddEdge(x, x, 1)
	b.AddEdge(y, y, 1)
	g := b.MustBuild()
	multi, err := CyclicSchedAll(g, Options{Processors: 2, CommCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(multi.Components))
	}
	if got := multi.RatePerIteration(); got != 3 {
		t.Fatalf("rate = %v, want 3 (slowest component)", got)
	}
	if multi.SinglePattern() != nil {
		t.Fatal("SinglePattern non-nil for two components")
	}
	exp, err := multi.Expand(10)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Makespan() != 30 {
		t.Fatalf("makespan = %d, want 30", exp.Makespan())
	}
}

func TestTimelineFit(t *testing.T) {
	var tl timeline
	if got := tl.fit(3, 2, false); got != 3 {
		t.Fatalf("empty fit = %d, want 3", got)
	}
	tl.insert(3, 2) // [3,5)
	tl.insert(7, 1) // [7,8)
	if got := tl.fit(0, 3, false); got != 0 {
		t.Fatalf("fit before = %d, want 0", got)
	}
	if got := tl.fit(0, 4, false); got != 8 {
		t.Fatalf("fit 4 wide = %d, want 8", got)
	}
	if got := tl.fit(4, 2, false); got != 5 {
		t.Fatalf("fit gap = %d, want 5", got)
	}
	if got := tl.fit(4, 3, false); got != 8 {
		t.Fatalf("fit too wide for gap = %d, want 8", got)
	}
	if got := tl.fit(0, 1, true); got != 8 {
		t.Fatalf("append-only fit = %d, want 8", got)
	}
	if got := tl.end(); got != 8 {
		t.Fatalf("end = %d, want 8", got)
	}
	// Merging.
	tl.insert(5, 2) // fills [5,7): [3,8) now contiguous
	if len(tl.ivs) != 1 || tl.ivs[0].s != 3 || tl.ivs[0].e != 8 {
		t.Fatalf("merge failed: %+v", tl.ivs)
	}
}
