package core

import "container/heap"

// readyEntry is a dynamic node instance whose predecessors have all been
// scheduled. lower is a lower bound on the instance's eventual start cycle
// (the latest local finish of its predecessors); the minimum lower bound
// over the queue is the "stable time" below which the schedule is final.
type readyEntry struct {
	node  int
	iter  int
	rank  int // body-order rank, the deterministic tie-break
	lower int
	seq   int // arrival order, for FIFO mode
}

type readyQueue struct {
	entries []readyEntry
	fifo    bool
	nextSeq int
}

func (q *readyQueue) Len() int { return len(q.entries) }

func (q *readyQueue) Less(i, j int) bool {
	a, b := q.entries[i], q.entries[j]
	if q.fifo {
		return a.seq < b.seq
	}
	if a.iter != b.iter {
		return a.iter < b.iter
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.node < b.node
}

func (q *readyQueue) Swap(i, j int) { q.entries[i], q.entries[j] = q.entries[j], q.entries[i] }

func (q *readyQueue) Push(x any) { q.entries = append(q.entries, x.(readyEntry)) }

func (q *readyQueue) Pop() any {
	old := q.entries
	n := len(old)
	e := old[n-1]
	q.entries = old[:n-1]
	return e
}

func (q *readyQueue) add(e readyEntry) {
	e.seq = q.nextSeq
	q.nextSeq++
	heap.Push(q, e)
}

func (q *readyQueue) next() readyEntry {
	return heap.Pop(q).(readyEntry)
}

// stableTime returns the minimum start lower bound across all queued
// instances. Any cycle strictly below it can no longer receive placements,
// because every unscheduled instance (queued or not yet ready) starts at or
// after some queued instance's lower bound.
func (q *readyQueue) stableTime() int {
	if len(q.entries) == 0 {
		return 1 << 30
	}
	min := q.entries[0].lower
	for _, e := range q.entries[1:] {
		if e.lower < min {
			min = e.lower
		}
	}
	return min
}
