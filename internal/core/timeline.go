package core

import "sort"

// interval is a half-open busy span [s, e) on one processor.
type interval struct{ s, e int }

// timeline tracks the busy intervals of one processor and answers
// earliest-fit queries. Intervals are kept sorted and non-overlapping.
type timeline struct {
	ivs []interval
}

// fit returns the earliest start t >= ready such that [t, t+dur) is free.
// With appendOnly, placement never precedes the last busy interval.
func (tl *timeline) fit(ready, dur int, appendOnly bool) int {
	if appendOnly {
		if n := len(tl.ivs); n > 0 && tl.ivs[n-1].e > ready {
			return tl.ivs[n-1].e
		}
		return ready
	}
	// First interval that ends after ready.
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].e > ready })
	t := ready
	for ; i < len(tl.ivs); i++ {
		if t+dur <= tl.ivs[i].s {
			return t
		}
		if tl.ivs[i].e > t {
			t = tl.ivs[i].e
		}
	}
	return t
}

// insert marks [s, s+dur) busy. It assumes the span is free (as returned by
// fit) and merges with adjacent intervals to keep the list compact.
func (tl *timeline) insert(s, dur int) {
	e := s + dur
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].s >= s })
	tl.ivs = append(tl.ivs, interval{})
	copy(tl.ivs[i+1:], tl.ivs[i:])
	tl.ivs[i] = interval{s: s, e: e}
	// Merge left.
	if i > 0 && tl.ivs[i-1].e == tl.ivs[i].s {
		tl.ivs[i-1].e = tl.ivs[i].e
		tl.ivs = append(tl.ivs[:i], tl.ivs[i+1:]...)
		i--
	}
	// Merge right.
	if i+1 < len(tl.ivs) && tl.ivs[i].e == tl.ivs[i+1].s {
		tl.ivs[i].e = tl.ivs[i+1].e
		tl.ivs = append(tl.ivs[:i+1], tl.ivs[i+2:]...)
	}
}

// end returns the finish time of the last busy interval (0 when idle).
func (tl *timeline) end() int {
	if len(tl.ivs) == 0 {
		return 0
	}
	return tl.ivs[len(tl.ivs)-1].e
}
