package core

import (
	"testing"

	"mimdloop/internal/graph"
	"mimdloop/internal/machine"
	"mimdloop/internal/program"
	"mimdloop/internal/workload"
)

// chaoticGraph is a shape observed to defeat spontaneous configuration
// repetition: multiple recurrences with incommensurate rational rates
// (7/3 vs 3 vs 1) coupled into one component, under gap-filling placement.
func chaoticGraph(t testing.TB) *graph.Graph {
	g, err := workload.Random(workload.PaperSpec, 6)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForcedPatternOnChaoticLoop(t *testing.T) {
	g := chaoticGraph(t)
	multi, err := CyclicSchedAll(g, Options{CommCost: 3})
	if err != nil {
		t.Fatalf("chaotic loop did not schedule: %v", err)
	}
	forced := false
	for _, c := range multi.Components {
		if c.Result.Pattern.Forced {
			forced = true
		}
	}
	// Whether a component needed forcing is an implementation property of
	// the transient; what must hold is that expansion is valid and the
	// rate respects the critical-path bound.
	exp, err := multi.Expand(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(true); err != nil {
		t.Fatal(err)
	}
	cpi := g.CriticalPathPerIteration()
	if rate := multi.RatePerIteration(); rate+0.001 < float64(cpi-1) {
		t.Fatalf("rate %v below critical bound %d", rate, cpi)
	}
	t.Logf("forced=%v rate=%.3g cyc/iter (critical >= %d)", forced, multi.RatePerIteration(), cpi)
}

func TestForcedPatternExecutes(t *testing.T) {
	g := chaoticGraph(t)
	multi, err := CyclicSchedAll(g, Options{CommCost: 3})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := multi.Expand(30)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := program.Build(exp)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := machine.Run(g, progs, machine.Config{Fluct: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan <= 0 {
		t.Fatal("empty simulation")
	}
}

func TestForcedPatternDirectly(t *testing.T) {
	// Exercise forcePattern through a tiny budget on a well-behaved loop:
	// the forced schedule must still be valid, merely possibly slower.
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, MaxIterations: 6})
	if err != nil {
		t.Fatalf("tiny budget: %v", err)
	}
	if res.Pattern == nil {
		t.Fatal("no pattern")
	}
	exp, err := res.Expand(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Forced or detected, the rate cannot beat the recurrence bound (2.5)
	// nor exceed sequential (5).
	rate := res.Pattern.RatePerIteration()
	if rate < 2.5 || rate > 5 {
		t.Fatalf("rate = %v, want within [2.5, 5]", rate)
	}
}

func TestDriftBoundOption(t *testing.T) {
	// An explicit small drift bound still schedules correctly.
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, DriftBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Expand(20); err != nil {
		t.Fatal(err)
	}
	// The generous default must match the paper-exact rate.
	if got := res.Pattern.RatePerIteration(); got != 3 {
		t.Fatalf("rate with tight drift bound = %v, want 3", got)
	}
}

func TestCommFromStartSchedules(t *testing.T) {
	g := figure7(t)
	res, err := CyclicSched(g, Options{Processors: 2, CommCost: 2, CommFromStart: true})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := res.Expand(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(true); err != nil {
		t.Fatal(err)
	}
	// The overlapped model can only help: rate <= the finish+k rate 3.
	if got := res.Pattern.RatePerIteration(); got > 3 {
		t.Fatalf("CommFromStart rate = %v, want <= 3", got)
	}
}
