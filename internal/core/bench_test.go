package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mimdloop/internal/graph"
)

// benchGraph builds a connected cyclic graph of n nodes: a ring of
// recurrences with chords, the scheduler's hot shape.
func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), 1+rng.Intn(3))
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 0)
	}
	b.AddEdge(n-1, 0, 1)
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v, 1+rng.Intn(2))
	}
	return b.MustBuild()
}

func BenchmarkCyclicSched(b *testing.B) {
	for _, n := range []int{8, 20, 40, 80} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CyclicSched(g, Options{Processors: 4, CommCost: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedyN(b *testing.B) {
	g := benchGraph(20)
	for _, iters := range []int{10, 100} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GreedyN(g, Options{Processors: 4, CommCost: 2}, iters); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExpand(b *testing.B) {
	g := benchGraph(20)
	res, err := CyclicSched(g, Options{Processors: 4, CommCost: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, iters := range []int{100, 1000} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := res.Expand(iters); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScheduleLoopComposed(b *testing.B) {
	// Mixed classification workload: fringe + core.
	bld := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		bld.AddNode(fmt.Sprintf("in%d", i), 1)
	}
	x := bld.AddNode("X", 2)
	y := bld.AddNode("Y", 1)
	o := bld.AddNode("O", 1)
	for i := 0; i < 6; i++ {
		bld.AddEdge(i, x, 0)
	}
	bld.AddEdge(x, y, 0)
	bld.AddEdge(y, x, 1)
	bld.AddEdge(y, o, 0)
	g := bld.MustBuild()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimeline(b *testing.B) {
	b.Run("fit-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tl timeline
			for j := 0; j < 200; j++ {
				t := tl.fit(j%17, 2, false)
				tl.insert(t, 2)
			}
		}
	})
}
