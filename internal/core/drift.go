package core

// driftGate enforces the DriftBound: instance (v, i) may not start before
// iteration i-L has completely finished. It tracks per-iteration completion
// and parks ready entries whose gate iteration is still incomplete.
type driftGate struct {
	l        int // L, the bound
	activeN  int // instances per iteration (graph node count)
	count    []int
	maxFin   []int
	deferred map[int][]readyEntry
}

func newDriftGate(l, activeN int) *driftGate {
	return &driftGate{l: l, activeN: activeN, deferred: make(map[int][]readyEntry)}
}

func (d *driftGate) grow(iter int) {
	for len(d.count) <= iter {
		d.count = append(d.count, 0)
		d.maxFin = append(d.maxFin, 0)
	}
}

// blocked reports whether the entry must wait for its gate iteration.
func (d *driftGate) blocked(iter int) bool {
	j := iter - d.l
	if j < 0 {
		return false
	}
	d.grow(j)
	return d.count[j] < d.activeN
}

// park stores a blocked entry until its gate iteration completes.
func (d *driftGate) park(e readyEntry) {
	j := e.iter - d.l
	d.deferred[j] = append(d.deferred[j], e)
}

// floor returns the earliest cycle instance (v, iter) may start: the latest
// finish of its gate iteration (0 when ungated).
func (d *driftGate) floor(iter int) int {
	j := iter - d.l
	if j < 0 {
		return 0
	}
	d.grow(j)
	return d.maxFin[j]
}

// record notes a placement's completion and returns any entries released by
// the iteration finishing.
func (d *driftGate) record(iter, fin int) []readyEntry {
	d.grow(iter)
	d.count[iter]++
	if fin > d.maxFin[iter] {
		d.maxFin[iter] = fin
	}
	if d.count[iter] != d.activeN {
		return nil
	}
	rel := d.deferred[iter]
	delete(d.deferred, iter)
	return rel
}

// minDeferredLower returns the smallest start lower bound among parked
// entries (for the stable-time computation), or a large sentinel.
func (d *driftGate) minDeferredLower() int {
	min := 1 << 30
	for _, list := range d.deferred {
		for _, e := range list {
			if e.lower < min {
				min = e.lower
			}
		}
	}
	return min
}
