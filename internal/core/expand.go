package core

import (
	"fmt"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// Expand materializes a finite schedule for n iterations from the verified
// pattern: the greedy prologue (placements starting before the pattern)
// plus shifted replicas of the pattern period. The result is validated
// against the timing model; Lemma 7 says replication is exact, and the
// validation makes that a checked property rather than an assumption. If a
// detected pattern's replication turns out not to be the greedy schedule's
// true steady state (possible when the processor count is below the
// paper's sufficiency assumption and the repeat was a long-lived
// coincidence), Expand rebuilds the pattern with the modulo-scheduling
// fallback and retries — so a returned schedule is always valid.
func (r *CyclicResult) Expand(n int) (*plan.Schedule, error) {
	s, err := r.expandOnce(n)
	if err == nil {
		return s, nil
	}
	if r.Pattern != nil && !r.Pattern.Forced {
		if ferr := r.forcePattern(); ferr != nil {
			return nil, fmt.Errorf("%v; modulo fallback also failed: %v", err, ferr)
		}
		return r.expandOnce(n)
	}
	return nil, err
}

func (r *CyclicResult) expandOnce(n int) (*plan.Schedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: expand to %d iterations", n)
	}
	if r.Pattern == nil {
		return nil, fmt.Errorf("core: expand called without a pattern")
	}
	g := r.Graph
	p := r.Pattern
	out := &plan.Schedule{
		Graph:      g,
		Timing:     r.Greedy.Timing,
		Processors: r.Greedy.Processors,
	}
	if !p.Forced {
		for _, pl := range r.Greedy.Placements {
			if pl.Start < p.Start && pl.Iter < n {
				out.Placements = append(out.Placements, pl)
			}
		}
	}
	period := p.Cycles()
	for rep := 0; ; rep++ {
		minIter := -1
		added := false
		for _, pl := range p.Placements {
			iter := pl.Iter + rep*p.IterShift
			if minIter == -1 || iter < minIter {
				minIter = iter
			}
			if iter >= n {
				continue
			}
			out.Placements = append(out.Placements, plan.Placement{
				Node:  pl.Node,
				Iter:  iter,
				Proc:  pl.Proc,
				Start: pl.Start + rep*period,
			})
			added = true
		}
		if minIter >= n || (!added && minIter == -1) {
			break
		}
	}
	if len(out.Placements) != n*g.N() {
		return nil, fmt.Errorf("core: expansion produced %d placements for %d iterations of %d nodes",
			len(out.Placements), n, g.N())
	}
	if err := out.Validate(true); err != nil {
		return nil, fmt.Errorf("core: expanded schedule invalid: %w", err)
	}
	return out, nil
}

// GreedyN schedules exactly n iterations of g with the same greedy rule as
// CyclicSched but no pattern machinery. It is the fallback when no pattern
// is found, the reference the pattern expansion is compared against in
// tests, and the scheduler for DOALL-ish graphs.
func GreedyN(g *graph.Graph, opts Options, n int) (*plan.Schedule, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: schedule %d iterations", n)
	}
	opts = opts.withDefaults(g)
	timing := plan.Timing{CommCost: opts.CommCost, CommFromStart: opts.CommFromStart}
	out := &plan.Schedule{Graph: g, Timing: timing, Processors: opts.Processors}

	rank := g.BodyRank()
	procs := make([]timeline, opts.Processors)
	placed := make(map[graph.InstanceID]int)
	pending := make(map[graph.InstanceID]int)
	queue := &readyQueue{fifo: opts.FIFOOrder}
	gate := newDriftGate(opts.DriftBound, g.N())
	for v := 0; v < g.N(); v++ {
		if len(g.In(v)) == 0 {
			queue.add(readyEntry{node: v, iter: 0, rank: rank[v]})
			continue
		}
		for i := 0; i < n && g.InstancePredCount(v, i) == 0; i++ {
			queue.add(readyEntry{node: v, iter: i, rank: rank[v]})
		}
	}
	for queue.Len() > 0 {
		ent := queue.next()
		if ent.iter >= n {
			continue
		}
		if gate.blocked(ent.iter) {
			gate.park(ent)
			continue
		}
		v, iter := ent.node, ent.iter
		lat := g.Nodes[v].Latency
		bestProc, bestStart := -1, 0
		floor := gate.floor(iter)
		for q := 0; q < opts.Processors; q++ {
			// Unlike CyclicSched, predecessor-free nodes get no implicit
			// sequential self-dependence here: with a finite horizon and
			// the drift gate there is no runaway to prevent, and DOALL
			// iterations should spread across processors freely.
			ready := floor
			for _, ei := range g.In(v) {
				e := g.Edges[ei]
				srcIter := iter - e.Distance
				if srcIter < 0 {
					continue
				}
				pl := out.Placements[placed[graph.InstanceID{Node: e.From, Iter: srcIter}]]
				if a := timing.Avail(pl, g.Nodes[pl.Node].Latency, e, q); a > ready {
					ready = a
				}
			}
			t := procs[q].fit(ready, lat, opts.AppendOnly)
			if bestProc == -1 || t < bestStart {
				bestProc, bestStart = q, t
			}
		}
		pl := plan.Placement{Node: v, Iter: iter, Proc: bestProc, Start: bestStart}
		placed[pl.Key()] = len(out.Placements)
		out.Placements = append(out.Placements, pl)
		procs[bestProc].insert(bestStart, lat)
		for _, rel := range gate.record(iter, bestStart+lat) {
			queue.add(rel)
		}
		for _, ei := range g.Out(v) {
			e := g.Edges[ei]
			child := graph.InstanceID{Node: e.To, Iter: iter + e.Distance}
			if child.Iter >= n {
				continue
			}
			left, seen := pending[child]
			if !seen {
				left = g.InstancePredCount(e.To, child.Iter)
			}
			left--
			if left == 0 {
				delete(pending, child)
				queue.add(readyEntry{node: child.Node, iter: child.Iter, rank: rank[child.Node]})
			} else {
				pending[child] = left
			}
		}
		if len(g.In(v)) == 0 && iter+1 < n {
			queue.add(readyEntry{node: v, iter: iter + 1, rank: rank[v]})
		}
	}
	if len(out.Placements) != n*g.N() {
		return nil, fmt.Errorf("core: greedy placed %d of %d instances", len(out.Placements), n*g.N())
	}
	if err := out.Validate(true); err != nil {
		return nil, fmt.Errorf("core: greedy schedule invalid: %w", err)
	}
	return out, nil
}
