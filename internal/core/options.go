// Package core implements the paper's scheduling algorithms: Cyclic-sched
// (greedy earliest-start placement of the infinitely unwound Cyclic subset
// under a communication-cost model, with pattern detection), Flow-in-sched
// and Flow-out-sched (round-robin placement of the acyclic fringe on extra
// processors), and the composition of the three into a complete loop
// schedule.
package core

import (
	"errors"
	"fmt"

	"mimdloop/internal/graph"
)

// Options configures the scheduler.
type Options struct {
	// Processors is p, the number of processors offered to the Cyclic
	// subset. 0 means "sufficient": one per node of the scheduled graph,
	// matching the paper's sufficiency assumption in Section 2.3.
	Processors int

	// CommCost is k, the compile-time estimate of inter-processor
	// communication cost in cycles. Edges with explicit costs override it;
	// k must upper-bound them for the pattern-existence argument.
	CommCost int

	// CommFromStart selects the ablation timing model in which a value is
	// available remotely at producerStart + cost rather than
	// producerFinish + cost.
	CommFromStart bool

	// WindowHeight overrides the configuration window height. 0 means
	// k + max node latency (the paper's k+1 generalized to non-unit
	// latencies).
	WindowHeight int

	// MaxIterations bounds how far the conceptually infinite unwinding may
	// proceed before Cyclic-sched stops waiting for a configuration repeat
	// and switches to the modulo-scheduling fallback. 0 means 256.
	MaxIterations int

	// AppendOnly disables gap-filling placement: each processor's next
	// operation starts no earlier than its previous one finished. Kept as
	// an ablation of the placement rule.
	AppendOnly bool

	// FIFOOrder processes ready instances in arrival order rather than the
	// default (iteration, body-rank) priority. Both are "consistent"
	// orders in the paper's sense (footnote 7).
	FIFOOrder bool

	// FoldNonCyclic enables the Section 3 heuristic: try to place Flow-in
	// and Flow-out nodes into idle slots of the Cyclic processors instead
	// of dedicated extra processors, and keep whichever composition has
	// the smaller makespan.
	FoldNonCyclic bool

	// Grain is the number of consecutive loop iterations fused into one
	// placement instance (chunk). Values <= 1 mean no fusion — today's
	// one-iteration-per-instance behaviour, byte-identical. With Grain G
	// the scheduler runs on the grain-G chunk graph (graph.Chunked):
	// each node instance does G iterations of compute, cross-iteration
	// dependences internal to a chunk become local, and only
	// chunk-boundary dependences pay communication. Callers normalize
	// G <= 1 to 0 so the plan-cache key is stable; the JSON tag omits
	// the default so pre-grain plan records decode unchanged.
	Grain int `json:"Grain,omitempty"`

	// DriftBound is L, the maximum number of iterations any node may run
	// ahead of the slowest part of its component: instance (v, i) may not
	// start before iteration i-L has completely finished. The paper's
	// Lemma 3 asserts bounded same-configuration iteration skew, but its
	// proof implicitly assumes no part of a connected component can run
	// unboundedly ahead (false for, e.g., a fast self-loop feeding a slow
	// one). The drift bound makes the premise true by construction; it
	// does not change the steady-state rate, because work that runs ahead
	// of the binding cycle only buffers values. 0 means 2N + 2k + 8,
	// generous enough never to bind on rate-balanced graphs.
	DriftBound int

	// chunkLocality switches Cyclic-sched's placement to the sticky
	// variant used for chunk graphs: an instance stays on the processor
	// that ran its previous iteration whenever that costs at most
	// CommCost extra start cycles. Greedy earliest-start is myopic
	// about chunk traffic — moving a chunk to a processor that is free
	// a cycle or two earlier pays k for the move and k again when the
	// recurrence returns, and under grain G every such message carries
	// a G-value block — so keeping a node's chunk stream on one
	// processor is worth up to k cycles of start delay by construction.
	// Only scheduleChunked sets this; grain-0 scheduling is untouched,
	// keeping pre-grain schedules byte-identical. The field is
	// unexported so it can never leak into plan keys, JSON records or
	// the HTTP surface.
	chunkLocality bool
}

// ErrNoPattern is returned when no repeating configuration was verified
// within the iteration budget.
var ErrNoPattern = errors.New("core: no pattern emerged within the iteration budget")

func (o Options) withDefaults(g *graph.Graph) Options {
	if o.Processors == 0 {
		o.Processors = g.N()
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 256
	}
	if o.WindowHeight == 0 {
		maxLat := 1
		for _, nd := range g.Nodes {
			if nd.Latency > maxLat {
				maxLat = nd.Latency
			}
		}
		o.WindowHeight = o.CommCost + maxLat
	}
	if o.DriftBound == 0 {
		o.DriftBound = 2*g.N() + 2*o.CommCost + 8
	}
	return o
}

func (o Options) validate() error {
	if o.Processors < 0 {
		return fmt.Errorf("core: negative processor count %d", o.Processors)
	}
	if o.CommCost < 0 {
		return fmt.Errorf("core: negative communication cost %d", o.CommCost)
	}
	if o.Grain < 0 {
		return fmt.Errorf("core: negative grain %d", o.Grain)
	}
	return nil
}
