package core

import (
	"errors"
	"fmt"

	"mimdloop/internal/classify"
	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

// LoopSchedule is the complete result of scheduling a loop for n
// iterations: classification, the Cyclic pattern(s), and the composed full
// schedule over Cyclic + Flow-in + Flow-out processors.
type LoopSchedule struct {
	Graph *graph.Graph
	Class *classify.Result
	Opts  Options

	// Multi holds the per-component Cyclic-sched results over the induced
	// Cyclic subgraph (node IDs renumbered; CyclicMap maps them back). Nil
	// for DOALL loops and for the greedy fallback.
	Multi     *MultiResult
	CyclicMap []int

	// Full is the composed schedule for Iterations iterations, in original
	// node IDs.
	Full       *plan.Schedule
	Iterations int

	// Processor accounting.
	CyclicProcs  int
	FlowInProcs  int
	FlowOutProcs int
	// Folded reports that the Section 3 heuristic placed the non-Cyclic
	// nodes into idle slots of the Cyclic processors.
	Folded bool
	// GreedyFallback reports that no pattern was verified and the whole
	// loop was scheduled by bounded greedy instead.
	GreedyFallback bool
}

// Pattern returns the steady-state pattern when the Cyclic subset is a
// single connected component, else nil.
func (ls *LoopSchedule) Pattern() *Pattern {
	if ls.Multi == nil {
		return nil
	}
	return ls.Multi.SinglePattern()
}

// RatePerIteration returns the steady-state cycles per iteration of the
// composed schedule: the pattern rate when patterns exist, otherwise the
// measured average over the scheduled iterations. For grain-G schedules
// the pattern rate is per chunk and is divided by G, so rates stay
// comparable across grains (the makespan branch already divides by the
// real iteration count).
func (ls *LoopSchedule) RatePerIteration() float64 {
	if ls.Multi != nil {
		r := ls.Multi.RatePerIteration()
		if g := ls.Opts.Grain; g > 1 {
			r /= float64(g)
		}
		return r
	}
	if ls.Iterations == 0 {
		return 0
	}
	return float64(ls.Full.Makespan()) / float64(ls.Iterations)
}

// TotalProcs returns the number of processors the composed schedule uses.
func (ls *LoopSchedule) TotalProcs() int {
	if ls.Full == nil {
		return 0
	}
	return ls.Full.ProcsUsed()
}

// ScheduleLoop runs the paper's full pipeline (Figure 6) on g for n
// iterations:
//
//  1. classify nodes into Flow-in / Cyclic / Flow-out;
//  2. schedule the Cyclic subset with Cyclic-sched — one run per
//     weakly-connected component, per Section 2.1 — and expand the verified
//     patterns to n iterations;
//  3. schedule the Flow-in subset on ceil(L*d/T) extra processors,
//     round-robin by iteration, then delay the Cyclic schedule by the
//     minimal constant offset that makes every Flow-in value arrive in
//     time (the paper's "schedule Flow-in so as not to delay the Cyclic
//     subset", made explicit);
//  4. schedule the Flow-out subset symmetrically on its own processors.
//
// DOALL loops (no Cyclic nodes) and loops where no pattern is verified
// within the budget are scheduled by bounded greedy over the whole graph.
func ScheduleLoop(g *graph.Graph, opts Options, n int) (*LoopSchedule, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: schedule %d iterations", n)
	}
	if opts.Grain > 1 {
		return scheduleChunked(g, opts, n)
	}
	class := classify.Partition(g)
	ls := &LoopSchedule{Graph: g, Class: class, Opts: opts, Iterations: n}

	if class.IsDOALL() {
		full, err := GreedyN(g, opts, n)
		if err != nil {
			return nil, err
		}
		ls.Full = full
		ls.CyclicProcs = full.Processors
		return ls, nil
	}

	sub, back, err := classify.CyclicSubgraph(g, class)
	if err != nil {
		return nil, err
	}
	multi, err := CyclicSchedAll(sub, opts)
	if err != nil {
		if errors.Is(err, ErrNoPattern) {
			full, gerr := GreedyN(g, opts, n)
			if gerr != nil {
				return nil, fmt.Errorf("core: %v; greedy fallback also failed: %w", err, gerr)
			}
			ls.Full = full
			ls.CyclicProcs = full.Processors
			ls.GreedyFallback = true
			return ls, nil
		}
		return nil, err
	}
	ls.Multi = multi
	ls.CyclicMap = back

	cycPlan, err := multi.Expand(n)
	if err != nil {
		return nil, err
	}

	separate, sepErr := composeVariant(ls, cycPlan, n, false)
	if !opts.FoldNonCyclic {
		if sepErr != nil {
			return nil, sepErr
		}
		ls.apply(separate)
		return ls, nil
	}
	folded, foldErr := composeVariant(ls, cycPlan, n, true)
	switch {
	case sepErr != nil && foldErr != nil:
		return nil, sepErr
	case sepErr != nil:
		ls.apply(folded)
	case foldErr != nil:
		ls.apply(separate)
	default:
		// Prefer the fold when it does not cost more than ~5% makespan
		// ("with only small amount of delay", Section 3).
		if folded.sched.Makespan()*20 <= separate.sched.Makespan()*21 {
			ls.apply(folded)
		} else {
			ls.apply(separate)
		}
	}
	return ls, nil
}

// scheduleChunked is the grain-G branch of ScheduleLoop: it runs the
// ordinary pipeline on the grain-G chunk graph (graph.Chunked) for
// ceil(n/G) chunk iterations, then re-anchors the result on the original
// graph — the returned schedule keeps Graph = g with chunk-space
// placements and Full.Grain = G, so every consumer that walks placements
// against node latencies or dependence edges does so through
// plan.Schedule.EffectiveGraph. Classification and the Cyclic pattern
// (Multi) remain in chunk space; they describe the schedule that
// actually ran.
func scheduleChunked(g *graph.Graph, opts Options, n int) (*LoopSchedule, error) {
	grain := opts.Grain
	cg, err := graph.Chunked(g, grain)
	if err != nil {
		return nil, err
	}
	inner := opts
	inner.Grain = 0
	// Chunk placement is locality-sticky: a chunk message carries a
	// G-value block, so bouncing a node's chunk stream between
	// processors for a cycle or two of earlier start is a bad trade the
	// myopic greedy rule would otherwise make constantly.
	inner.chunkLocality = true
	// The chunk graph's window/drift defaults derive from its own G-fold
	// latencies inside the recursive call.
	chunks := (n + grain - 1) / grain
	ils, err := ScheduleLoop(cg, inner, chunks)
	if err != nil {
		return nil, err
	}
	full := &plan.Schedule{
		Graph:      g,
		Grain:      grain,
		Timing:     ils.Full.Timing,
		Processors: ils.Full.Processors,
		Placements: ils.Full.Placements,
	}
	return &LoopSchedule{
		Graph:          g,
		Class:          ils.Class,
		Opts:           opts,
		Multi:          ils.Multi,
		CyclicMap:      ils.CyclicMap,
		Full:           full,
		Iterations:     n,
		CyclicProcs:    ils.CyclicProcs,
		FlowInProcs:    ils.FlowInProcs,
		FlowOutProcs:   ils.FlowOutProcs,
		Folded:         ils.Folded,
		GreedyFallback: ils.GreedyFallback,
	}, nil
}

// variant is one composed full schedule candidate.
type variant struct {
	sched        *plan.Schedule
	flowInProcs  int
	flowOutProcs int
	cyclicProcs  int
	folded       bool
}

func (ls *LoopSchedule) apply(v *variant) {
	ls.Full = v.sched
	ls.FlowInProcs = v.flowInProcs
	ls.FlowOutProcs = v.flowOutProcs
	ls.CyclicProcs = v.cyclicProcs
	ls.Folded = v.folded
}

// composeVariant builds the full schedule from the expanded Cyclic plan,
// either on dedicated Flow processors (fold=false, Figure 5) or folded into
// the Cyclic processors' idle slots (fold=true, Section 3 heuristic).
func composeVariant(ls *LoopSchedule, cycPlan *plan.Schedule, n int, fold bool) (*variant, error) {
	g := ls.Graph
	class := ls.Class
	back := ls.CyclicMap
	periodT, periodD := ls.Multi.slowestPeriod()

	cyclicProcs := usedProcs(cycPlan)
	lIn := flowSetLatency(g, class.FlowIn)
	lOut := flowSetLatency(g, class.FlowOut)
	pIn := flowProcessorCount(lIn, periodT, periodD)
	pOut := flowProcessorCount(lOut, periodT, periodD)

	totalProcs := cyclicProcs + pIn + pOut
	if fold {
		totalProcs = cyclicProcs
	}
	v := &variant{cyclicProcs: cyclicProcs, folded: fold}
	if !fold {
		v.flowInProcs = pIn
		v.flowOutProcs = pOut
	}

	var foldPick []int
	if fold {
		foldPick = make([]int, cyclicProcs)
		for i := range foldPick {
			foldPick[i] = i
		}
	}

	// The Flow-in placement and Cyclic delay interact when folding (both
	// live on the same processors), so iterate: place Flow-in against the
	// current Cyclic offset, compute the residual delay, shift, retry.
	shift := 0
	for attempt := 0; ; attempt++ {
		sched := &plan.Schedule{Graph: g, Timing: cycPlan.Timing, Processors: totalProcs}
		idx := make(map[graph.InstanceID]int)
		lines := make(map[int]*timeline)

		// Cyclic placements, mapped to original IDs, shifted.
		for _, pl := range cycPlan.Placements {
			orig := back[pl.Node]
			npl := plan.Placement{Node: orig, Iter: pl.Iter, Proc: pl.Proc, Start: pl.Start + shift}
			idx[npl.Key()] = len(sched.Placements)
			sched.Placements = append(sched.Placements, npl)
			tl := lines[npl.Proc]
			if tl == nil {
				tl = &timeline{}
				lines[npl.Proc] = tl
			}
			tl.insert(npl.Start, g.Nodes[orig].Latency)
		}

		// Flow-in.
		if lIn > 0 {
			var err error
			if fold {
				err = placeFlowSet(sched, idx, lines, class.FlowIn, n, 0, 0, foldPick)
			} else {
				err = placeFlowSet(sched, idx, lines, class.FlowIn, n, cyclicProcs, pIn, nil)
			}
			if err != nil {
				return nil, err
			}
		}

		d := flowInDelay(sched, idx, class)
		if d > 0 {
			shift += d
			if attempt >= 8 {
				return nil, fmt.Errorf("core: flow-in delay did not converge (last shift %d)", shift)
			}
			continue
		}

		// Flow-out.
		if lOut > 0 {
			var err error
			if fold {
				err = placeFlowSet(sched, idx, lines, class.FlowOut, n, 0, 0, foldPick)
			} else {
				err = placeFlowSet(sched, idx, lines, class.FlowOut, n, cyclicProcs+pIn, pOut, nil)
			}
			if err != nil {
				return nil, err
			}
		}

		if err := sched.Validate(true); err != nil {
			return nil, fmt.Errorf("core: composed schedule invalid: %w", err)
		}
		v.sched = sched
		return v, nil
	}
}

// usedProcs returns 1 + the highest processor index in the schedule.
func usedProcs(s *plan.Schedule) int {
	n := 0
	for _, p := range s.Placements {
		if p.Proc+1 > n {
			n = p.Proc + 1
		}
	}
	return n
}
