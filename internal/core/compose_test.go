package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mimdloop/internal/classify"
	"mimdloop/internal/graph"
)

// mixedLoop builds a loop with all three node classes:
//
//	I1 -> I2 -> X (cyclic, self loop) -> O1 -> O2
func mixedLoop(t testing.TB) *graph.Graph {
	b := graph.NewBuilder()
	i1 := b.AddNode("I1", 1)
	i2 := b.AddNode("I2", 1)
	x := b.AddNode("X", 2)
	o1 := b.AddNode("O1", 1)
	o2 := b.AddNode("O2", 1)
	b.AddEdge(i1, i2, 0)
	b.AddEdge(i2, x, 0)
	b.AddEdge(x, x, 1)
	b.AddEdge(x, o1, 0)
	b.AddEdge(o1, o2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("mixedLoop: %v", err)
	}
	return g
}

func TestScheduleLoopMixed(t *testing.T) {
	g := mixedLoop(t)
	ls, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ls.GreedyFallback {
		t.Fatal("unexpected greedy fallback")
	}
	if ls.Pattern() == nil {
		t.Fatal("no pattern for single cyclic component")
	}
	// X alone binds the rate: 2 cycles/iteration.
	if got := ls.RatePerIteration(); got != 2 {
		t.Fatalf("rate = %v, want 2", got)
	}
	if err := ls.Full.Validate(true); err != nil {
		t.Fatalf("full schedule: %v", err)
	}
	if fi, _, fo := ls.Class.Counts(); fi != 2 || fo != 2 {
		t.Fatalf("classification: %v", ls.Class)
	}
	if ls.FlowInProcs < 1 || ls.FlowOutProcs < 1 {
		t.Fatalf("flow procs = %d/%d, want >= 1 each", ls.FlowInProcs, ls.FlowOutProcs)
	}
	// Steady-state makespan should track the cyclic rate, not the flow
	// fringe: 20 iterations at 2 cycles + bounded prologue.
	if ms := ls.Full.Makespan(); ms > 2*20+30 {
		t.Fatalf("makespan = %d, flow fringe is delaying the cyclic core", ms)
	}
}

func TestScheduleLoopAllCyclic(t *testing.T) {
	g := figure7(t)
	ls, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ls.FlowInProcs != 0 || ls.FlowOutProcs != 0 {
		t.Fatalf("flow procs = %d/%d, want 0/0", ls.FlowInProcs, ls.FlowOutProcs)
	}
	if got := ls.RatePerIteration(); got != 3 {
		t.Fatalf("rate = %v, want 3", got)
	}
	// Sequential is 5 cycles/iteration; percentage parallelism ~40%.
	seq := 5 * 50
	sp := float64(seq-ls.Full.Makespan()) / float64(seq) * 100
	if sp < 35 || sp > 45 {
		t.Fatalf("percentage parallelism = %.1f, want ~40", sp)
	}
}

func TestScheduleLoopDOALL(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	g := b.MustBuild()
	ls, err := ScheduleLoop(g, Options{Processors: 4, CommCost: 1}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Multi != nil {
		t.Fatal("DOALL produced cyclic results")
	}
	if err := ls.Full.Validate(true); err != nil {
		t.Fatal(err)
	}
	// 40 iterations x 2 cycles over 4 processors: ideally ~20 cycles.
	if ms := ls.Full.Makespan(); ms > 30 {
		t.Fatalf("DOALL makespan = %d, want near 20", ms)
	}
}

func TestScheduleLoopFold(t *testing.T) {
	g := mixedLoop(t)
	plain, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 2, FoldNonCyclic: true}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := folded.Full.Validate(true); err != nil {
		t.Fatalf("folded schedule: %v", err)
	}
	if folded.Folded {
		if folded.TotalProcs() >= plain.TotalProcs() {
			t.Fatalf("fold used %d procs, separate used %d", folded.TotalProcs(), plain.TotalProcs())
		}
		// 5% makespan tolerance enforced by the chooser.
		if folded.Full.Makespan()*20 > plain.Full.Makespan()*21 {
			t.Fatalf("fold makespan %d too far above separate %d", folded.Full.Makespan(), plain.Full.Makespan())
		}
	}
}

func TestScheduleLoopRejectsBadArgs(t *testing.T) {
	g := mixedLoop(t)
	if _, err := ScheduleLoop(g, Options{Processors: 2}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ScheduleLoop(g, Options{Processors: -2}, 5); err == nil {
		t.Fatal("negative procs accepted")
	}
}

func TestPropertyScheduleLoopValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("n", 1+rng.Intn(3))
		}
		sd := rng.Intn(2 * n)
		for i := 0; i < sd; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(u, v, 0)
		}
		lcd := 1 + rng.Intn(n)
		for i := 0; i < lcd; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.MustBuild()
		fold := seed%2 == 0
		ls, err := ScheduleLoop(g, Options{Processors: 3, CommCost: rng.Intn(4), FoldNonCyclic: fold}, 12)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := ls.Full.Validate(true); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Flow-in never delays the cyclic core's rate: makespan grows at
		// most linearly in the cyclic rate plus a constant prologue.
		if ls.Multi != nil && !ls.GreedyFallback {
			if float64(ls.Full.Makespan()) > ls.RatePerIteration()*12+200 {
				t.Logf("seed %d: makespan %d vs rate %v", seed, ls.Full.Makespan(), ls.RatePerIteration())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyConsistencyInLoopSchedule(t *testing.T) {
	g := mixedLoop(t)
	ls, err := ScheduleLoop(g, Options{Processors: 2, CommCost: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := classify.Check(g, ls.Class); err != nil {
		t.Fatal(err)
	}
}
