// Package plan defines the schedule representation shared by the pattern
// scheduler (internal/core), the DOACROSS baseline (internal/doacross), the
// code generator (internal/program) and the machine simulator
// (internal/machine): a set of timed placements of dynamic node instances
// onto processors, plus the timing model used to judge their validity.
package plan

import (
	"fmt"
	"sort"

	"mimdloop/internal/graph"
)

// Placement records that iteration Iter of node Node runs on processor Proc
// during cycles [Start, Finish).
type Placement struct {
	Node  int
	Iter  int
	Proc  int
	Start int
}

// Key returns the instance identity of the placement.
func (p Placement) Key() graph.InstanceID { return graph.InstanceID{Node: p.Node, Iter: p.Iter} }

// Timing captures the communication model under which a schedule is
// constructed and validated.
type Timing struct {
	// CommCost is the machine-wide estimate k; edges may override it.
	CommCost int
	// CommFromStart, when true, makes a value available on a remote
	// processor at producerStart + cost instead of producerFinish + cost
	// (communication fully overlapped with the producing operation). This
	// is the alternative reading of the paper's figures, kept as an
	// ablation.
	CommFromStart bool
}

// Avail returns the cycle at which the value produced by placement p (of a
// node with the given latency) becomes usable on processor q via edge e.
func (t Timing) Avail(p Placement, latency int, e graph.Edge, q int) int {
	fin := p.Start + latency
	if p.Proc == q {
		return fin
	}
	c := graph.EdgeCost(e, t.CommCost)
	if t.CommFromStart {
		return p.Start + c
	}
	return fin + c
}

// Schedule is a static assignment of dynamic instances to processors.
//
// With Grain G > 1 the placements live in chunk space: placement
// iteration c stands for original iterations [c*G, (c+1)*G), Graph stays
// the original dependence graph, and every structural judgement —
// makespan, busy cycles, validation, program lowering — runs against
// EffectiveGraph (the grain-G chunk graph) instead of Graph directly.
type Schedule struct {
	Graph      *graph.Graph
	Timing     Timing
	Processors int // number of processors the schedule may use
	Placements []Placement
	// Grain is the number of consecutive original iterations each
	// placement instance fuses; values <= 1 mean plain iteration-space
	// placements (the schedule's Graph is its effective graph).
	Grain int
}

// EffectiveGraph returns the graph the placements are scheduled against:
// Graph itself for grain <= 1, the grain-G chunk graph otherwise. The
// chunk graph is a pure derivation of (Graph, Grain); a grain the
// schedule was actually built under always chunks successfully, so a
// failure here means the schedule was corrupted after construction.
func (s *Schedule) EffectiveGraph() *graph.Graph {
	if s.Grain <= 1 {
		return s.Graph
	}
	cg, err := graph.Chunked(s.Graph, s.Grain)
	if err != nil {
		panic("plan: chunk graph for scheduled grain failed: " + err.Error())
	}
	return cg
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	cp := *s
	cp.Placements = append([]Placement(nil), s.Placements...)
	return &cp
}

// Makespan returns the cycle at which the last operation finishes.
func (s *Schedule) Makespan() int {
	g := s.EffectiveGraph()
	end := 0
	for _, p := range s.Placements {
		fin := p.Start + g.Nodes[p.Node].Latency
		if fin > end {
			end = fin
		}
	}
	return end
}

// Iterations returns 1 + the largest iteration index placed (0 if empty).
func (s *Schedule) Iterations() int {
	n := 0
	for _, p := range s.Placements {
		if p.Iter+1 > n {
			n = p.Iter + 1
		}
	}
	return n
}

// ProcsUsed returns the number of distinct processors with at least one
// placement.
func (s *Schedule) ProcsUsed() int {
	seen := map[int]bool{}
	for _, p := range s.Placements {
		seen[p.Proc] = true
	}
	return len(seen)
}

// ByProc returns placement indices grouped by processor, each group sorted
// by start cycle. The outer slice has length s.Processors (or the max proc
// index + 1 if larger).
func (s *Schedule) ByProc() [][]int {
	n := s.Processors
	for _, p := range s.Placements {
		if p.Proc+1 > n {
			n = p.Proc + 1
		}
	}
	out := make([][]int, n)
	for i, p := range s.Placements {
		out[p.Proc] = append(out[p.Proc], i)
	}
	for _, grp := range out {
		sort.Slice(grp, func(a, b int) bool {
			pa, pb := s.Placements[grp[a]], s.Placements[grp[b]]
			if pa.Start != pb.Start {
				return pa.Start < pb.Start
			}
			return pa.Iter < pb.Iter
		})
	}
	return out
}

// Index returns a map from instance to placement index.
func (s *Schedule) Index() map[graph.InstanceID]int {
	idx := make(map[graph.InstanceID]int, len(s.Placements))
	for i, p := range s.Placements {
		idx[p.Key()] = i
	}
	return idx
}

// BusyCycles returns the total number of processor-cycles spent computing.
func (s *Schedule) BusyCycles() int {
	g := s.EffectiveGraph()
	total := 0
	for _, p := range s.Placements {
		total += g.Nodes[p.Node].Latency
	}
	return total
}

// Utilization returns busy cycles / (makespan * processors used), in [0,1].
func (s *Schedule) Utilization() float64 {
	ms, pu := s.Makespan(), s.ProcsUsed()
	if ms == 0 || pu == 0 {
		return 0
	}
	return float64(s.BusyCycles()) / float64(ms*pu)
}

// Validate checks the schedule against the graph and timing model:
//
//   - every placement references a valid node and non-negative iteration;
//   - no instance is placed twice;
//   - placements on one processor do not overlap in time;
//   - every dependence with a source iteration >= 0 has its producer placed,
//     and the consumer starts no earlier than the producer's availability on
//     the consumer's processor;
//   - if complete is true, additionally: every instance (v, i) for
//     i < Iterations() is placed (the schedule covers whole iterations).
//
// It returns nil if the schedule is valid. Grain-G schedules validate
// against the chunk graph: placements are chunk instances and the
// dependences checked are the chunk-boundary ones.
func (s *Schedule) Validate(complete bool) error {
	g := s.EffectiveGraph()
	idx := make(map[graph.InstanceID]int, len(s.Placements))
	for i, p := range s.Placements {
		if p.Node < 0 || p.Node >= g.N() {
			return fmt.Errorf("plan: placement %d references unknown node %d", i, p.Node)
		}
		if p.Iter < 0 {
			return fmt.Errorf("plan: placement %d has negative iteration", i)
		}
		if p.Start < 0 {
			return fmt.Errorf("plan: placement %d starts at negative cycle %d", i, p.Start)
		}
		if p.Proc < 0 {
			return fmt.Errorf("plan: placement %d on negative processor", i)
		}
		if s.Processors > 0 && p.Proc >= s.Processors {
			return fmt.Errorf("plan: placement %d on processor %d, schedule declares %d", i, p.Proc, s.Processors)
		}
		if prev, dup := idx[p.Key()]; dup {
			return fmt.Errorf("plan: instance (%s, iter %d) placed twice (placements %d and %d)",
				g.Nodes[p.Node].Name, p.Iter, prev, i)
		}
		idx[p.Key()] = i
	}
	// Processor overlap.
	for proc, grp := range s.ByProc() {
		for j := 1; j < len(grp); j++ {
			prev := s.Placements[grp[j-1]]
			cur := s.Placements[grp[j]]
			if prev.Start+g.Nodes[prev.Node].Latency > cur.Start {
				return fmt.Errorf("plan: processor %d overlap: (%s,%d)@%d and (%s,%d)@%d",
					proc, g.Nodes[prev.Node].Name, prev.Iter, prev.Start,
					g.Nodes[cur.Node].Name, cur.Iter, cur.Start)
			}
		}
	}
	// Dependences.
	for i, p := range s.Placements {
		for _, ei := range g.In(p.Node) {
			e := g.Edges[ei]
			srcIter := p.Iter - e.Distance
			if srcIter < 0 {
				continue
			}
			pi, ok := idx[graph.InstanceID{Node: e.From, Iter: srcIter}]
			if !ok {
				return fmt.Errorf("plan: placement %d (%s, iter %d) depends on unplaced (%s, iter %d)",
					i, g.Nodes[p.Node].Name, p.Iter, g.Nodes[e.From].Name, srcIter)
			}
			prod := s.Placements[pi]
			avail := s.Timing.Avail(prod, g.Nodes[prod.Node].Latency, e, p.Proc)
			if p.Start < avail {
				return fmt.Errorf("plan: (%s, iter %d)@%d on P%d starts before (%s, iter %d) is available (cycle %d)",
					g.Nodes[p.Node].Name, p.Iter, p.Start, p.Proc, g.Nodes[e.From].Name, srcIter, avail)
			}
		}
	}
	if complete {
		iters := s.Iterations()
		if len(s.Placements) != iters*g.N() {
			return fmt.Errorf("plan: %d placements for %d iterations of %d nodes (want %d)",
				len(s.Placements), iters, g.N(), iters*g.N())
		}
	}
	return nil
}

// Sequential returns the schedule that runs all N iterations of the whole
// graph on processor 0 in body order: the baseline "s" in the percentage
// parallelism metric. Its makespan is N * TotalLatency().
func Sequential(g *graph.Graph, timing Timing, n int) *Schedule {
	order := g.BodyOrder()
	s := &Schedule{Graph: g, Timing: timing, Processors: 1}
	t := 0
	for it := 0; it < n; it++ {
		for _, v := range order {
			s.Placements = append(s.Placements, Placement{Node: v, Iter: it, Proc: 0, Start: t})
			t += g.Nodes[v].Latency
		}
	}
	return s
}
